// Quickstart: start a 4-replica PoE cluster in-process, submit a few
// transactions, and inspect the replicated ledger.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/poexec/poe"
)

func main() {
	cluster, err := poe.NewCluster(poe.ClusterConfig{Replicas: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Write a key. Submit returns once the client holds a proof of
	// execution: identical replies from nf = n − f distinct replicas.
	if _, err := client.Submit(ctx, []poe.Op{
		{Kind: poe.OpWrite, Key: "greeting", Value: []byte("hello, consensus")},
	}); err != nil {
		log.Fatal(err)
	}

	// Read it back through consensus.
	res, err := client.Submit(ctx, []poe.Op{{Kind: poe.OpRead, Key: "greeting"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", res.Values[0])

	// Every replica maintains the same hash-chained ledger.
	for id := poe.ReplicaID(0); id < 4; id++ {
		fmt.Printf("replica %d: ledger height %d, chain valid: %v\n",
			id, cluster.LedgerHeight(id), cluster.VerifyLedger(id))
	}
	if b, ok := cluster.LedgerBlock(0, 1); ok {
		fmt.Printf("block 1: seq=%d view=%d digest=%v\n", b.Seq, b.View, b.Digest)
	}
}
