// Banking: concurrent clients transfer money between accounts through a PoE
// cluster. Because every replica executes the same transactions in the same
// order (speculative non-divergence), total balance is conserved on every
// replica — even with a crashed backup.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"github.com/poexec/poe"
)

const (
	accounts       = 64
	initialBalance = 1000
	transfers      = 200
	clients        = 8
)

func accountKey(i int) string { return fmt.Sprintf("acct%04d", i) }

func encode(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func main() {
	// Pre-load every replica with identical account balances.
	table := make(map[string][]byte, accounts)
	for i := 0; i < accounts; i++ {
		table[accountKey(i)] = encode(initialBalance)
	}
	cluster, err := poe.NewCluster(poe.ClusterConfig{Replicas: 4, InitialTable: table})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// One backup crashes mid-run; PoE keeps going (no twin paths to fall
	// off of).
	time.AfterFunc(300*time.Millisecond, func() { cluster.CrashReplica(3) })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		client, err := cluster.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			// Each client owns a disjoint slice of accounts: transfers are
			// read-compute-write pairs of transactions, so cross-client
			// conflicts on the same account would be lost updates. (A
			// production system would put the read and the conditional
			// write in one transaction.)
			lo := idx * (accounts / clients)
			hi := lo + accounts/clients
			rng := rand.New(rand.NewSource(int64(idx)))
			for t := 0; t < transfers/clients; t++ {
				from := lo + rng.Intn(hi-lo)
				to := lo + rng.Intn(hi-lo)
				amount := uint64(rng.Intn(20) + 1)
				if err := transfer(ctx, client, from, to, amount); err != nil {
					log.Printf("transfer failed: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Audit each live replica: balances must sum to the initial total.
	ctxAudit, cancelAudit := context.WithTimeout(context.Background(), time.Minute)
	defer cancelAudit()
	auditor, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	var total uint64
	for i := 0; i < accounts; i++ {
		res, err := auditor.Submit(ctxAudit, []poe.Op{{Kind: poe.OpRead, Key: accountKey(i)}})
		if err != nil {
			log.Fatal(err)
		}
		total += binary.BigEndian.Uint64(res.Values[0])
	}
	fmt.Printf("total balance after %d transfers: %d (expected %d)\n",
		transfers, total, uint64(accounts*initialBalance))
	for id := poe.ReplicaID(0); id < 3; id++ {
		digest := cluster.StateDigest(id)
		fmt.Printf("replica %d state digest: %x...\n", id, digest[:8])
	}
	if total != accounts*initialBalance {
		log.Fatal("balance not conserved!")
	}
	fmt.Println("balance conserved across the byzantine fault-tolerant cluster ✓")
}

// transfer reads both balances through consensus and writes the updated
// ones as a second transaction. (Transactions are executed atomically; the
// read-compute-write split keeps the example simple and is safe here since
// each account pair is touched by one client at a time per round.)
func transfer(ctx context.Context, client *poe.Client, from, to int, amount uint64) error {
	res, err := client.Submit(ctx, []poe.Op{
		{Kind: poe.OpRead, Key: accountKey(from)},
		{Kind: poe.OpRead, Key: accountKey(to)},
	})
	if err != nil {
		return err
	}
	fromBal := binary.BigEndian.Uint64(res.Values[0])
	toBal := binary.BigEndian.Uint64(res.Values[1])
	if fromBal < amount || from == to {
		return nil // insufficient funds or self-transfer: skip
	}
	_, err = client.Submit(ctx, []poe.Op{
		{Kind: poe.OpWrite, Key: accountKey(from), Value: encode(fromBal - amount)},
		{Kind: poe.OpWrite, Key: accountKey(to), Value: encode(toBal + amount)},
	})
	return err
}
