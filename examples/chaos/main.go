// Chaos: a guided tour of the fault-injection fabric. Three acts, all on a
// 4-replica PoE cluster under continuous client load:
//
//  1. An equivocating primary (Example 3(1) of the paper): conflicting,
//     validly signed batches split the support quorum, nothing commits, the
//     failure detector fires, and the cluster changes views to an honest
//     primary — without ever executing two different batches at one
//     sequence number.
//  2. A full quorum-loss partition {0,1} | {2,3}: no side can decide, the
//     run stalls; on heal the queued traffic is flushed and throughput
//     resumes with all prefixes in agreement.
//  3. A lossy-link soak: every replica link drops, delays, and reorders
//     messages for the whole run while the protocol's retransmission and
//     state transfer keep the ledger converging.
//
// Run it with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/poexec/poe/internal/harness"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

func base() harness.Options {
	return harness.Options{
		Protocol: harness.PoE, N: 4,
		BatchSize: 10, Clients: 8, Outstanding: 4,
		Warmup: 300 * time.Millisecond, Measure: 2 * time.Second,
		ViewTimeout:   300 * time.Millisecond,
		ClientTimeout: 300 * time.Millisecond,
	}
}

func report(title string, rep harness.ChaosReport, err error) {
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	verdict := "all honest replicas share one digest prefix"
	if !rep.PrefixMatch {
		verdict = "SAFETY VIOLATION: " + rep.Divergence
	}
	fmt.Printf("%s\n  %.0f txn/s overall, %d txns after the disruption ended, %d view changes\n  %s\n  network: %d sent, %d dropped, %d queued, %d flushed\n\n",
		title, rep.Throughput, rep.CompletedAfterEvent, rep.ViewChanges, verdict,
		rep.Net.Sent, rep.Net.Dropped, rep.Net.Queued, rep.Net.Flushed)
}

func main() {
	fmt.Println("act 1: equivocating primary — quorum split, view change, recovery")
	rep, err := harness.RunChaos(harness.ChaosOptions{
		Options: base(),
		Attack:  harness.AttackEquivocate, // replica 0, the view-0 primary
	})
	report("equivocation", rep, err)

	fmt.Println("act 2: partition {0,1} | {2,3} at t=300ms, heal at t=900ms")
	rep, err = harness.RunChaos(harness.ChaosOptions{
		Options:           base(),
		Isolate:           []int{0, 1},
		PartitionAt:       300 * time.Millisecond,
		HealAt:            900 * time.Millisecond,
		ReliablePartition: true, // blocked traffic queues and flushes on heal
	})
	report("partition+heal", rep, err)

	fmt.Println("act 3: lossy soak — 2% drop, 5% reorder, jittered delays, plus a scripted mid-run crash")
	rep, err = harness.RunChaos(harness.ChaosOptions{
		Options: base(),
		Faults: network.LinkFaults{
			Drop:    0.02,
			Reorder: 0.05,
			Delay:   200 * time.Microsecond,
			Jitter:  100 * time.Microsecond,
		},
		// A custom plan composes with everything above: crash the last
		// backup at t=600ms and bring it back at t=1.2s.
		Plan: network.NewPlan().
			CrashAt(600*time.Millisecond, types.ReplicaNode(3)).
			RecoverAt(1200*time.Millisecond, types.ReplicaNode(3)),
	})
	report("lossy soak + crash/recover", rep, err)
}
