// Viewchange: crash the primary mid-run and watch PoE's view-change
// algorithm (§II-C) replace it — requests keep completing, and no
// client-visible transaction is lost (Proposition 5).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/poexec/poe"
)

func main() {
	cluster, err := poe.NewCluster(poe.ClusterConfig{
		Replicas:    4,
		ViewTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: normal operation under the view-0 primary (replica 0).
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("pre/%d", i)
		if _, err := client.Submit(ctx, []poe.Op{{Kind: poe.OpWrite, Key: key, Value: []byte("v")}}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("phase 1: 5 transactions executed under the initial primary")

	// Phase 2: the primary crashes. Clients time out, broadcast their
	// requests, backups detect the failure, exchange VC-REQUESTs, and
	// replica 1 installs view 1 via NV-PROPOSE.
	cluster.CrashReplica(0)
	fmt.Println("phase 2: primary (replica 0) crashed — submitting through the outage")
	start := time.Now()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("post/%d", i)
		if _, err := client.Submit(ctx, []poe.Op{{Kind: poe.OpWrite, Key: key, Value: []byte("v")}}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  post/%d executed %.0fms after the crash\n", i, time.Since(start).Seconds()*1000)
	}

	// Phase 3: audit. All pre-crash writes survived the view change.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("pre/%d", i)
		res, err := client.Submit(ctx, []poe.Op{{Kind: poe.OpRead, Key: key}})
		if err != nil {
			log.Fatal(err)
		}
		if string(res.Values[0]) != "v" {
			log.Fatalf("lost transaction %s across the view change!", key)
		}
	}
	fmt.Println("phase 3: every client-visible transaction survived the view change ✓")
	for id := poe.ReplicaID(1); id < 4; id++ {
		fmt.Printf("replica %d executed %d transactions, ledger valid: %v\n",
			id, cluster.ExecutedTxns(id), cluster.VerifyLedger(id))
	}
}
