// YCSB: drive a PoE cluster with the paper's benchmark workload — a table
// of records accessed with Zipfian skew 0.9 and 90% writes (§IV) — and
// report client-visible throughput and latency.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

func main() {
	replicas := flag.Int("n", 4, "replicas")
	records := flag.Int("records", 10000, "YCSB table size")
	clients := flag.Int("clients", 16, "concurrent clients")
	outstanding := flag.Int("outstanding", 8, "requests in flight per client")
	dur := flag.Duration("duration", 3*time.Second, "measurement duration")
	protoName := flag.String("protocol", "poe", "poe|pbft|sbft|hotstuff|zyzzyva")
	flag.Parse()

	wcfg := workload.DefaultConfig(*records)
	cluster, err := poe.NewCluster(poe.ClusterConfig{
		Replicas:     *replicas,
		Protocol:     poe.Protocol(*protoName),
		InitialTable: workload.InitialTable(wcfg),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var done atomic.Int64
	var latNanos atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		cl, err := cluster.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		gen := workload.NewGenerator(wcfg, types.ClientID(c))
		var genMu sync.Mutex
		for j := 0; j < *outstanding; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					genMu.Lock()
					txn := gen.Next()
					genMu.Unlock()
					start := time.Now()
					if _, err := cl.SubmitTxn(ctx, poe.Transaction{Ops: txn.Ops}); err != nil {
						return
					}
					done.Add(1)
					latNanos.Add(int64(time.Since(start)))
				}
			}()
		}
	}

	fmt.Printf("running %s with n=%d, %d clients × %d outstanding, %d-record table...\n",
		*protoName, *replicas, *clients, *outstanding, *records)
	time.Sleep(*dur)
	total := done.Load()
	cancel()
	wg.Wait()

	fmt.Printf("throughput: %.0f txn/s\n", float64(total)/dur.Seconds())
	if total > 0 {
		fmt.Printf("avg latency: %.2f ms\n", float64(latNanos.Load()/total)/1e6)
	}
	fmt.Printf("ledger height on replica 0: %d (chain valid: %v)\n",
		cluster.LedgerHeight(0), cluster.VerifyLedger(0))
}
