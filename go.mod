module github.com/poexec/poe

go 1.21
