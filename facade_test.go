package poe

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestClusterFacadePoE(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Replicas: 4, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl.Submit(ctx, []Op{{Kind: OpWrite, Key: "a", Value: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Submit(ctx, []Op{{Kind: OpRead, Key: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Values[0]) != "1" {
		t.Fatalf("read %q", res.Values[0])
	}
	for id := ReplicaID(0); id < 4; id++ {
		if !cluster.VerifyLedger(id) {
			t.Fatalf("replica %d ledger invalid", id)
		}
	}
}

func TestClusterFacadeAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtocolPoE, ProtocolPBFT, ProtocolSBFT, ProtocolHotStuff, ProtocolZyzzyva} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cluster, err := NewCluster(ClusterConfig{Replicas: 4, Protocol: p, BatchSize: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()
			cl, err := cluster.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < 3; i++ {
				key := fmt.Sprintf("k%d", i)
				if _, err := cl.Submit(ctx, []Op{{Kind: OpWrite, Key: key, Value: []byte("v")}}); err != nil {
					t.Fatalf("%s submit %d: %v", p, i, err)
				}
			}
		})
	}
}

func TestClusterFacadeRejectsBadConfig(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Replicas: 3, Faults: 1}); err == nil {
		t.Fatal("n=3, f=1 violates n > 3f and must be rejected")
	}
	if _, err := NewCluster(ClusterConfig{Replicas: 4, Protocol: "nonsense"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := NewCluster(ClusterConfig{Replicas: 4, Scheme: "nonsense"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
