// Package poe is a Go implementation of the Proof-of-Execution (PoE)
// Byzantine fault-tolerant consensus protocol (Gupta, Hellings, Rahnama,
// Sadoghi — EDBT 2021), together with the four baseline protocols the paper
// evaluates against (PBFT, Zyzzyva, SBFT, HotStuff), a ResilientDB-style
// replica fabric (batching, pipelining, checkpoints, a blockchain ledger, a
// deterministic key-value execution layer), a YCSB-style workload generator,
// and the paper's full benchmark harness.
//
// The quickest way in:
//
//	cluster, _ := poe.NewCluster(poe.ClusterConfig{Replicas: 4})
//	defer cluster.Stop()
//	client, _ := cluster.NewClient()
//	res, _ := client.Submit(ctx, []poe.Op{{Kind: poe.OpWrite, Key: "k", Value: []byte("v")}})
//
// Submit returns once the client holds a proof-of-execution: identical
// replies from nf = n − f distinct replicas, which the protocol guarantees
// will survive any view change (Proposition 5 of the paper).
package poe

import (
	"context"
	"fmt"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/hotstuff"
	"github.com/poexec/poe/internal/consensus/pbft"
	poecore "github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/consensus/sbft"
	"github.com/poexec/poe/internal/consensus/zyzzyva"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// Re-exported building blocks of the public API.
type (
	// Op is a single key-value operation inside a transaction.
	Op = types.Op
	// OpKind is the kind of operation.
	OpKind = types.OpKind
	// Transaction is a client-issued unit of work.
	Transaction = types.Transaction
	// Result is the outcome of an executed transaction.
	Result = types.Result
	// Block is one ledger entry.
	Block = ledger.Block
	// ReplicaID identifies a replica.
	ReplicaID = types.ReplicaID
)

// Operation kinds.
const (
	OpRead  = types.OpRead
	OpWrite = types.OpWrite
	OpNoop  = types.OpNoop
)

// Protocol selects the consensus protocol a cluster runs.
type Protocol string

// The five protocols of the paper.
const (
	ProtocolPoE      Protocol = "poe"
	ProtocolPBFT     Protocol = "pbft"
	ProtocolZyzzyva  Protocol = "zyzzyva"
	ProtocolSBFT     Protocol = "sbft"
	ProtocolHotStuff Protocol = "hotstuff"
)

// Scheme selects the authentication instantiation (the paper's ingredient
// I3: PoE is signature-scheme agnostic).
type Scheme string

// Authentication schemes (§IV-C).
const (
	SchemeMAC  Scheme = "mac"  // pairwise HMACs; all-to-all SUPPORT phase
	SchemeTS   Scheme = "ts"   // threshold signatures; linear phases
	SchemeED   Scheme = "ed"   // Ed25519 signatures on every message
	SchemeNone Scheme = "none" // no authentication (benchmarking only)
)

func (s Scheme) internal() (crypto.Scheme, error) {
	switch s {
	case SchemeMAC, "":
		return crypto.SchemeMAC, nil
	case SchemeTS:
		return crypto.SchemeTS, nil
	case SchemeED:
		return crypto.SchemeED, nil
	case SchemeNone:
		return crypto.SchemeNone, nil
	default:
		return 0, fmt.Errorf("poe: unknown scheme %q", s)
	}
}

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// Replicas is n; Faults is f. Defaults: n = 4, f = (n−1)/3. The system
	// model requires n > 3f.
	Replicas int
	Faults   int
	// Protocol defaults to ProtocolPoE.
	Protocol Protocol
	// Scheme defaults to SchemeMAC below 16 replicas and SchemeTS at or
	// above (the paper's guidance in ingredient I3).
	Scheme Scheme
	// BatchSize defaults to 100 (the paper's default).
	BatchSize int
	// Window is the out-of-order window; 1 disables out-of-order processing.
	Window int
	// ViewTimeout is the failure-detection timeout (doubles per view change).
	ViewTimeout time.Duration
	// InitialTable pre-loads every replica's store.
	InitialTable map[string][]byte
	// Seed makes key material and the network deterministic.
	Seed int64
}

// Cluster is an in-process cluster of replicas on a fault-injectable
// network. It is the programmatic equivalent of the paper's testbed.
type Cluster struct {
	cfg     ClusterConfig
	scheme  crypto.Scheme
	net     *network.ChanNet
	ring    *crypto.KeyRing
	handles []interface {
		Run(ctx context.Context)
		Runtime() *protocol.Runtime
	}
	cancel     context.CancelFunc
	ctx        context.Context
	nextClient int
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 4
	}
	if cfg.Faults == 0 {
		cfg.Faults = (cfg.Replicas - 1) / 3
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolPoE
	}
	if cfg.Scheme == "" {
		if cfg.Replicas >= 16 {
			cfg.Scheme = SchemeTS
		} else {
			cfg.Scheme = SchemeMAC
		}
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	scheme, err := cfg.Scheme.internal()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:    cfg,
		scheme: scheme,
		net:    network.NewChanNet(network.WithSeed(cfg.Seed)),
		ring:   crypto.NewKeyRing(cfg.Replicas, []byte(fmt.Sprintf("cluster-%d", cfg.Seed))),
		cancel: cancel,
		ctx:    ctx,
	}
	for i := 0; i < cfg.Replicas; i++ {
		pcfg := protocol.Config{
			ID: types.ReplicaID(i), N: cfg.Replicas, F: cfg.Faults,
			Scheme:      scheme,
			BatchSize:   cfg.BatchSize,
			Window:      cfg.Window,
			ViewTimeout: cfg.ViewTimeout,
		}
		ropts := protocol.RuntimeOptions{InitialTable: cfg.InitialTable}
		tr := c.net.Join(types.ReplicaNode(pcfg.ID))
		var h interface {
			Run(ctx context.Context)
			Runtime() *protocol.Runtime
		}
		switch cfg.Protocol {
		case ProtocolPoE:
			h, err = poecore.New(pcfg, c.ring, tr, poecore.Options{RuntimeOptions: ropts})
		case ProtocolPBFT:
			h, err = pbft.New(pcfg, c.ring, tr, pbft.Options{RuntimeOptions: ropts})
		case ProtocolZyzzyva:
			h, err = zyzzyva.New(pcfg, c.ring, tr, zyzzyva.Options{RuntimeOptions: ropts})
		case ProtocolSBFT:
			h, err = sbft.New(pcfg, c.ring, tr, sbft.Options{RuntimeOptions: ropts})
		case ProtocolHotStuff:
			h, err = hotstuff.New(pcfg, c.ring, tr, hotstuff.Options{RuntimeOptions: ropts})
		default:
			err = fmt.Errorf("poe: unknown protocol %q", cfg.Protocol)
		}
		if err != nil {
			cancel()
			c.net.Close()
			return nil, err
		}
		c.handles = append(c.handles, h)
		go h.Run(ctx)
	}
	return c, nil
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	c.cancel()
	c.net.Close()
}

// CrashReplica simulates a crash of the given replica: all its traffic is
// dropped.
func (c *Cluster) CrashReplica(id ReplicaID) { c.net.Crash(types.ReplicaNode(id)) }

// RecoverReplica undoes CrashReplica.
func (c *Cluster) RecoverReplica(id ReplicaID) { c.net.Recover(types.ReplicaNode(id)) }

// LedgerHeight returns the block height of a replica's ledger.
func (c *Cluster) LedgerHeight(id ReplicaID) int {
	return c.handles[id].Runtime().Exec.Chain().Height()
}

// LedgerBlock returns one block of a replica's ledger.
func (c *Cluster) LedgerBlock(id ReplicaID, seq uint64) (Block, bool) {
	return c.handles[id].Runtime().Exec.Chain().Get(types.SeqNum(seq))
}

// VerifyLedger checks the hash chain of a replica's ledger.
func (c *Cluster) VerifyLedger(id ReplicaID) bool {
	_, ok := c.handles[id].Runtime().Exec.Chain().Verify()
	return ok
}

// StateDigest returns the execution-state digest of a replica; non-faulty
// replicas that executed the same prefix report identical digests.
func (c *Cluster) StateDigest(id ReplicaID) [32]byte {
	return c.handles[id].Runtime().Exec.StateDigest()
}

// ExecutedTxns returns the number of transactions a replica has executed.
func (c *Cluster) ExecutedTxns(id ReplicaID) int64 {
	return c.handles[id].Runtime().Metrics.ExecutedTxns.Load()
}

// Client is a handle for submitting transactions to the cluster.
type Client struct {
	inner interface {
		SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error)
		NextSeq() uint64
		Start(ctx context.Context)
	}
	id types.ClientID
}

// NewClient creates a client attached to the cluster, configured with the
// protocol's reply rule (nf identical replies for PoE — the proof of
// execution; f+1 for PBFT/HotStuff; all n for Zyzzyva; one certified reply
// for SBFT).
func (c *Cluster) NewClient() (*Client, error) {
	i := c.nextClient
	c.nextClient++
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	tr := c.net.Join(types.ClientNode(id))
	n, f := c.cfg.Replicas, c.cfg.Faults
	var inner interface {
		SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error)
		NextSeq() uint64
		Start(ctx context.Context)
	}
	var err error
	switch c.cfg.Protocol {
	case ProtocolZyzzyva:
		inner, err = zyzzyva.NewClient(zyzzyva.ClientConfig{ID: id, N: n, F: f, Scheme: c.scheme}, c.ring, tr)
	case ProtocolSBFT:
		verifier := crypto.NewVerifier(c.ring, n-f, c.scheme == crypto.SchemeTS || c.scheme == crypto.SchemeED)
		inner, err = client.New(client.Config{
			ID: id, N: n, F: f, Scheme: c.scheme, Quorum: 1,
			CertAccept: func(m *protocol.Inform) bool {
				return len(m.Cert) > 0 && verifier.Verify(sbft.ExecPayload(m.Seq, m.OrderProof), m.Cert)
			},
		}, c.ring, tr)
	case ProtocolPBFT:
		inner, err = client.New(client.Config{ID: id, N: n, F: f, Scheme: c.scheme, Quorum: f + 1}, c.ring, tr)
	case ProtocolHotStuff:
		inner, err = client.New(client.Config{ID: id, N: n, F: f, Scheme: c.scheme, Quorum: f + 1, BroadcastRequests: true}, c.ring, tr)
	default:
		inner, err = client.New(client.Config{ID: id, N: n, F: f, Scheme: c.scheme, Quorum: n - f}, c.ring, tr)
	}
	if err != nil {
		return nil, err
	}
	inner.Start(c.ctx)
	return &Client{inner: inner, id: id}, nil
}

// Submit sends the operations as one transaction and blocks until the
// protocol's completion rule is met.
func (cl *Client) Submit(ctx context.Context, ops []Op) (Result, error) {
	txn := types.Transaction{
		Client:    cl.id,
		Seq:       cl.inner.NextSeq(),
		Ops:       ops,
		TimeNanos: time.Now().UnixNano(),
	}
	return cl.inner.SubmitTxn(ctx, txn)
}

// SubmitTxn submits a pre-built transaction; its Client and Seq fields are
// assigned by the client.
func (cl *Client) SubmitTxn(ctx context.Context, txn Transaction) (Result, error) {
	txn.Client = cl.id
	txn.Seq = cl.inner.NextSeq()
	if txn.TimeNanos == 0 {
		txn.TimeNanos = time.Now().UnixNano()
	}
	return cl.inner.SubmitTxn(ctx, txn)
}
