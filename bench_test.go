// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV). Each benchmark prints the same rows/series the paper reports and
// exports throughput as the "txn/s" metric. Replica counts and durations
// are scaled down so the full suite runs on a laptop; `go run ./cmd/poebench
// -full` runs the larger configurations (up to the paper's n = 91).
//
// Absolute numbers differ from the paper (its substrate was a 91-machine
// Google Cloud deployment; ours is an in-process fabric) — the claims under
// test are the *shapes*: who wins, by roughly what factor, and where the
// crossovers are. EXPERIMENTS.md records paper-vs-measured for each figure.
package poe

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	poeimpl "github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/harness"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/sim"
	"github.com/poexec/poe/internal/types"
)

// benchScales holds the scaled-down experiment dimensions.
var (
	benchNs         = []int{4, 8, 16, 32}
	benchBatchSizes = []int{10, 50, 100, 200, 400}
	benchWarmup     = 400 * time.Millisecond
	benchMeasure    = 800 * time.Millisecond
)

func runOnce(b *testing.B, opts harness.Options) harness.Result {
	b.Helper()
	opts.Warmup = benchWarmup
	opts.Measure = benchMeasure
	res, err := harness.Run(opts)
	if err != nil {
		b.Fatalf("harness: %v", err)
	}
	return res
}

// BenchmarkFig01CostModel regenerates the analytic comparison table (Fig 1).
func BenchmarkFig01CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = protocol.FormatCostTable(91, 30)
	}
	b.Log("\n" + protocol.FormatCostTable(91, 30))
}

// BenchmarkFig07UpperBound measures the fabric ceiling without consensus:
// primary-only no-execution vs execution (Fig 7).
func BenchmarkFig07UpperBound(b *testing.B) {
	for _, execute := range []bool{false, true} {
		name := "NoExec"
		if execute {
			name = "Exec"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.RunUpperBound(harness.UpperBoundOptions{
					Execute: execute, Warmup: benchWarmup, Measure: benchMeasure,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "txn/s")
				b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
			}
		})
	}
}

// BenchmarkFig08Signatures runs PBFT under the three signature schemes of
// Fig 8 (None, ED, CMAC→HMAC) at n = 16.
func BenchmarkFig08Signatures(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme crypto.Scheme
	}{{"None", crypto.SchemeNone}, {"ED", crypto.SchemeED}, {"CMAC", crypto.SchemeMAC}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, harness.Options{
					Protocol: harness.PBFT, N: 16, Scheme: tc.scheme,
					BatchSize: 50, Clients: 32, Outstanding: 16,
				})
				b.ReportMetric(res.Throughput, "txn/s")
				b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
			}
		})
	}
}

func scalabilityBench(b *testing.B, crash, zeroPayload bool) {
	for _, p := range harness.AllProtocols {
		for _, n := range benchNs {
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runOnce(b, harness.Options{
						Protocol: p, N: n,
						BatchSize: 50, Clients: 32, Outstanding: 16,
						CrashBackup: crash, ZeroPayload: zeroPayload,
					})
					b.ReportMetric(res.Throughput, "txn/s")
					b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
				}
			})
		}
	}
}

// BenchmarkFig09abScalabilityFailure: standard payload, one crashed backup.
func BenchmarkFig09abScalabilityFailure(b *testing.B) { scalabilityBench(b, true, false) }

// BenchmarkFig09cdScalabilityNoFailure: standard payload, fault-free.
func BenchmarkFig09cdScalabilityNoFailure(b *testing.B) { scalabilityBench(b, false, false) }

// BenchmarkFig09efZeroPayloadFailure: zero payload, one crashed backup.
func BenchmarkFig09efZeroPayloadFailure(b *testing.B) { scalabilityBench(b, true, true) }

// BenchmarkFig09ghZeroPayloadNoFailure: zero payload, fault-free.
func BenchmarkFig09ghZeroPayloadNoFailure(b *testing.B) { scalabilityBench(b, false, true) }

// BenchmarkFig09ijBatching sweeps the batch size under a single backup
// failure (paper: n = 32; scaled to n = 8 here).
func BenchmarkFig09ijBatching(b *testing.B) {
	for _, p := range harness.AllProtocols {
		for _, bs := range benchBatchSizes {
			b.Run(fmt.Sprintf("%s/batch=%d", p, bs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runOnce(b, harness.Options{
						Protocol: p, N: 8,
						// The client pool must be able to fill the largest
						// batches (the paper drives this sweep with 320k
						// clients).
						BatchSize: bs, Clients: 64, Outstanding: 16,
						CrashBackup: true,
					})
					b.ReportMetric(res.Throughput, "txn/s")
					b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
				}
			})
		}
	}
}

// BenchmarkFig09klNoOutOfOrder disables out-of-order processing: the window
// is 1 and every client runs closed-loop (one outstanding request). A 5 ms
// link delay stands in for the paper's real network: without delay the
// window never binds. HotStuff keeps its natural 4-deep chained pipeline,
// which is why the paper shows it ahead in this experiment.
func BenchmarkFig09klNoOutOfOrder(b *testing.B) {
	for _, p := range harness.AllProtocols {
		for _, n := range benchNs {
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runOnce(b, harness.Options{
						Protocol: p, N: n,
						BatchSize: 100, Clients: 64, Outstanding: 1,
						Window:   1,
						NetDelay: 5 * time.Millisecond,
					})
					b.ReportMetric(res.Throughput, "txn/s")
					b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
				}
			})
		}
	}
}

// BenchmarkFig10ViewChange crashes the primary mid-run and reports the
// throughput timeline around the view change (PoE vs PBFT, paper n = 32;
// scaled to n = 8).
func BenchmarkFig10ViewChange(b *testing.B) {
	for _, p := range []harness.Protocol{harness.PoE, harness.PBFT} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Options{
					Protocol: p, N: 8,
					BatchSize: 50, Clients: 32, Outstanding: 16,
					Warmup: benchWarmup, Measure: 2 * time.Second,
					CrashPrimaryAfter: 500 * time.Millisecond,
					SampleEvery:       100 * time.Millisecond,
					ViewTimeout:       300 * time.Millisecond,
					ClientTimeout:     300 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, pt := range res.Timeline {
						b.Logf("%s t=%5.1fs %10.0f txn/s", p, pt.Offset.Seconds(), pt.Throughput)
					}
				}
				b.ReportMetric(res.Throughput, "txn/s")
				b.ReportMetric(float64(res.ViewChanges), "viewchanges")
			}
		})
	}
}

// BenchmarkFig11Simulation runs the discrete-event simulation: decisions/s
// as a function of message delay for 4/16/128 replicas, sequential and
// out-of-order (paper: 500 decisions, 250-deep window).
func BenchmarkFig11Simulation(b *testing.B) {
	delays := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for _, n := range []int{4, 16, 128} {
		for _, p := range []sim.Protocol{sim.PoE, sim.PBFT, sim.HotStuff} {
			for _, d := range delays {
				b.Run(fmt.Sprintf("seq/n=%d/%v/delay=%v", n, p, d), func(b *testing.B) {
					var res sim.Result
					for i := 0; i < b.N; i++ {
						res = sim.Run(sim.Config{Protocol: p, N: n, Delay: d, Decisions: 500, Window: 1})
					}
					b.ReportMetric(res.DecisionsPS, "decisions/s")
				})
			}
		}
	}
	// The out-of-order plot (only PoE* and PBFT* in the paper).
	for _, p := range []sim.Protocol{sim.PoE, sim.PBFT} {
		for _, d := range delays {
			b.Run(fmt.Sprintf("ooo/n=128/%v/delay=%v", p, d), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.Run(sim.Config{Protocol: p, N: 128, Delay: d, Decisions: 500, Window: 250})
				}
				b.ReportMetric(res.DecisionsPS, "decisions/s")
			})
		}
	}
}

// --- ablation benches for the design choices called out in DESIGN.md §5 ---

// BenchmarkAblationSpeculation contrasts speculative execution (PoE: execute
// after prepare, saving one phase before the client sees a result) with
// commit-phase execution (PBFT) at identical scheme and batch settings —
// isolating ingredient I1. A link delay makes the phase count visible in
// client latency.
func BenchmarkAblationSpeculation(b *testing.B) {
	for _, p := range []harness.Protocol{harness.PoE, harness.PBFT} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, harness.Options{
					Protocol: p, N: 8, Scheme: crypto.SchemeMAC,
					BatchSize: 50, Clients: 32, Outstanding: 16,
					NetDelay: 5 * time.Millisecond,
				})
				b.ReportMetric(res.Throughput, "txn/s")
				b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
			}
		})
	}
}

// BenchmarkAblationSignatureScheme sweeps PoE's scheme across replica counts
// (ingredient I3: MAC favoured at small n, TS at larger n).
func BenchmarkAblationSignatureScheme(b *testing.B) {
	for _, scheme := range []crypto.Scheme{crypto.SchemeMAC, crypto.SchemeTS} {
		for _, n := range benchNs {
			b.Run(fmt.Sprintf("%v/n=%d", scheme, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runOnce(b, harness.Options{
						Protocol: harness.PoE, N: n, Scheme: scheme,
						BatchSize: 50, Clients: 32, Outstanding: 16,
					})
					b.ReportMetric(res.Throughput, "txn/s")
				}
			})
		}
	}
}

// BenchmarkAblationWindow sweeps the out-of-order window (§II-F) under a
// link delay, where the window size directly bounds the number of decisions
// in flight.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, harness.Options{
					Protocol: harness.PoE, N: 8, Window: w,
					BatchSize: 10, Clients: 32, Outstanding: 32,
					NetDelay: 5 * time.Millisecond,
				})
				b.ReportMetric(res.Throughput, "txn/s")
			}
		})
	}
}

// BenchmarkAblationBatchZeroPayload crosses batching with zero payload.
func BenchmarkAblationBatchZeroPayload(b *testing.B) {
	for _, zero := range []bool{false, true} {
		for _, bs := range []int{10, 100} {
			name := fmt.Sprintf("zero=%v/batch=%d", zero, bs)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := runOnce(b, harness.Options{
						Protocol: harness.PoE, N: 8, BatchSize: bs,
						ZeroPayload: zero, Clients: 16, Outstanding: 8,
					})
					b.ReportMetric(res.Throughput, "txn/s")
				}
			})
		}
	}
}

// BenchmarkDurableWAL measures durable-mode throughput (DataDir + fsync):
// group commit — a burst of in-order executed batches framed in one buffered
// write and one fsync, replies released after the group is durable — against
// the per-record-sync baseline it replaced. The gap is the amortized fsync.
func BenchmarkDurableWAL(b *testing.B) {
	for _, tc := range []struct {
		name    string
		noGroup bool
	}{{"group-commit", false}, {"per-record-sync", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Small batches and deep client pipelining: the record rate —
				// and so the fsync rate the baseline pays — is high, and the
				// in-flight window keeps the cluster busy while groups sync.
				res := runOnce(b, harness.Options{
					Protocol: harness.PoE, N: 4,
					BatchSize: 20, Clients: 64, Outstanding: 32,
					DataDir: b.TempDir(), Fsync: true, NoGroupCommit: tc.noGroup,
				})
				b.ReportMetric(res.Throughput, "txn/s")
				b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "ms/lat")
				b.ReportMetric(res.WALGroupMean(), "recs/group")
			}
		})
	}
}

// BenchmarkAblationCheckpointInterval varies the checkpoint cadence, which
// trades undo-log/view-change size against checkpoint traffic (§II-D).
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, interval := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, harness.Options{
					Protocol: harness.PoE, N: 8,
					BatchSize: 50, Clients: 32, Outstanding: 16,
					CheckpointInterval: interval,
				})
				b.ReportMetric(res.Throughput, "txn/s")
			}
		})
	}
}

// BenchmarkTCPLoopbackCluster runs a PoE cluster over real TCP connections
// on localhost — wire-codec framing, marshal-once broadcast fan-out, and
// write(2) syscalls included — so serialization wins are visible outside the
// in-process ChanNet fabric (whose send-cost model they calibrate,
// DESIGN.md §3). Reported txn/s is end-to-end client throughput.
func BenchmarkTCPLoopbackCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(runTCPCluster(b), "txn/s")
	}
}

func runTCPCluster(b *testing.B) float64 {
	b.Helper()
	const n, f, nClients, outstanding = 4, 1, 8, 8
	ring := crypto.NewKeyRing(n, []byte("tcp-bench"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Bind every node on an ephemeral port first, then rebuild the final
	// transports over the shared address book (TCPNet dials lazily).
	addrs := make(map[types.NodeID]string, n+nClients)
	probe := make([]*network.TCPNet, 0, n+nClients)
	nodes := make([]types.NodeID, 0, n+nClients)
	for i := 0; i < n; i++ {
		nodes = append(nodes, types.ReplicaNode(types.ReplicaID(i)))
	}
	for i := 0; i < nClients; i++ {
		nodes = append(nodes, types.NthClient(i))
	}
	for _, node := range nodes {
		tn, err := network.NewTCPNet(node, map[types.NodeID]string{node: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		probe = append(probe, tn)
		addrs[node] = tn.Addr()
	}
	for _, tn := range probe {
		tn.Close()
	}
	book := func() map[types.NodeID]string {
		m := make(map[types.NodeID]string, len(addrs))
		for k, v := range addrs {
			m[k] = v
		}
		return m
	}

	for i := 0; i < n; i++ {
		tn, err := network.NewTCPNet(types.ReplicaNode(types.ReplicaID(i)), book())
		if err != nil {
			b.Fatal(err)
		}
		defer tn.Close()
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: crypto.SchemeMAC,
			BatchSize: 50, BatchLinger: time.Millisecond,
			Window: 64, CheckpointInterval: 64,
			ViewTimeout: 2 * time.Second,
		}
		r, err := poeimpl.New(cfg, ring, tn, poeimpl.Options{})
		if err != nil {
			b.Fatal(err)
		}
		go r.Run(ctx)
	}

	var completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < nClients; c++ {
		cn, err := network.NewTCPNet(types.NthClient(c), book())
		if err != nil {
			b.Fatal(err)
		}
		defer cn.Close()
		cl, err := client.New(client.Config{
			ID: types.ClientIDBase + types.ClientID(c), N: n, F: f,
			Scheme: crypto.SchemeMAC, Timeout: 2 * time.Second,
		}, ring, cn)
		if err != nil {
			b.Fatal(err)
		}
		cl.Start(ctx)
		// Pipeline several submissions per client so the cluster is CPU-
		// bound (where serialization shows) rather than round-trip-bound.
		for o := 0; o < outstanding; o++ {
			wg.Add(1)
			go func(c, o int, cl *client.Client) {
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					ops := []types.Op{{Kind: types.OpWrite, Key: fmt.Sprintf("k%d-%d-%d", c, o, j%64), Value: []byte("value-payload-0123456789abcdef")}}
					if _, err := cl.Submit(ctx, ops); err == nil {
						completed.Add(1)
					}
				}
			}(c, o, cl)
		}
	}

	warmup := 500 * time.Millisecond
	measure := 1500 * time.Millisecond
	time.Sleep(warmup)
	start := completed.Load()
	time.Sleep(measure)
	delta := completed.Load() - start
	close(stop)
	cancel()
	wg.Wait()
	return float64(delta) / measure.Seconds()
}

// BenchmarkSendCostModel contrasts ChanNet's two sender-cost models on the
// PBFT quadratic fan-out at n=16: the flat 10 µs/message charge the
// harness has used since PR 1, and the size-calibrated model (Options.
// WireCost) in which every logical message pays one real wire-codec encode
// plus a per-destination write cost scaled by its true encoded size —
// ChanNet's analogue of TCPNet's marshal-once broadcast (DESIGN.md §3).
// Under the calibrated model the small all-to-all share messages stop being
// charged like full batches, which is the honest version of the cost
// structure the flat model approximated.
func BenchmarkSendCostModel(b *testing.B) {
	for _, tc := range []struct {
		name string
		wire bool
	}{{"flat", false}, {"wire-calibrated", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, harness.Options{
					Protocol: harness.PBFT, N: 16,
					BatchSize: 50, Clients: 32, Outstanding: 16,
					WireCost: tc.wire,
				})
				b.ReportMetric(res.Throughput, "txn/s")
			}
		})
	}
}
