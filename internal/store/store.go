// Package store implements the deterministic execution substrate the
// protocols order transactions for: a key-value table (the paper's YCSB
// table, §IV) with an undo log that supports the safe rollbacks PoE's
// speculative execution requires (ingredient I2).
//
// All mutating operations are deterministic: on identical inputs applied in
// identical order, every replica produces identical results and identical
// state digests (the paper's non-faulty replica determinism assumption,
// §II-A). Determinism is also what makes crash recovery exact: replaying
// the same batches against a table restored from a checkpoint snapshot
// (SnapshotAt/Restore) reproduces the pre-crash state digest bit for bit.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/poexec/poe/internal/types"
)

// KV is a deterministic key-value store with sequence-number-granular undo.
//
// Apply executes a batch at a sequence number and records undo information;
// Rollback reverts every batch applied after a given sequence number;
// Checkpoint discards undo information up to a stable sequence number.
//
// KV is safe for concurrent use. The state digest is maintained
// incrementally as an XOR of per-entry hashes (a set-homomorphic hash), so
// checkpoint digests are O(1) regardless of table size; this substitutes for
// hashing a full state snapshot and preserves the property that equal states
// have equal digests.
type KV struct {
	mu    sync.RWMutex
	data  map[string][]byte
	marks []seqMark
	undo  []undoEntry
	last  types.SeqNum // highest applied sequence number; 0 = none (seq starts at 1)
	state [32]byte     // incremental state digest

	// zeroWork is the per-operation dummy work for zero-payload execution.
	zeroWork int
}

type undoEntry struct {
	key     string
	prev    []byte
	existed bool
}

type seqMark struct {
	seq   types.SeqNum
	start int // index into undo of this batch's first entry
}

// ZeroWork is the per-operation dummy-instruction count of zero-payload and
// no-op execution. The parallel execution engine (internal/exec) replicates
// exactly this amount of work per operation so its execution cost — though
// not its state effects, of which there are none — matches the serial path.
const ZeroWork = 64

// New creates an empty store.
func New() *KV {
	return &KV{data: make(map[string][]byte), zeroWork: ZeroWork}
}

// Load bulk-loads initial records without recording undo information or
// advancing the applied sequence number. Used to pre-populate the YCSB table
// identically on every replica before the experiment starts.
func (kv *KV) Load(records map[string][]byte) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	for k, v := range records {
		old, existed := kv.data[k]
		kv.state = xorDigest(kv.state, entryHash(k, old, existed))
		val := append([]byte(nil), v...)
		kv.data[k] = val
		kv.state = xorDigest(kv.state, entryHash(k, val, true))
	}
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Get reads a key outside any transaction (for tests and tooling).
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// LastApplied returns the highest applied sequence number (0 if none).
func (kv *KV) LastApplied() types.SeqNum {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.last
}

// ErrOutOfOrder is returned when a batch is applied at a sequence number that
// is not exactly LastApplied()+1.
type ErrOutOfOrder struct {
	Want, Got types.SeqNum
}

func (e *ErrOutOfOrder) Error() string {
	return fmt.Sprintf("store: apply out of order: want seq %d, got %d", e.Want, e.Got)
}

// Apply executes batch as the seq-th batch. Sequence numbers start at 1 and
// must be applied consecutively; replicas enforce ordered execution before
// calling Apply (Fig 3, Line 20 of the paper).
func (kv *KV) Apply(seq types.SeqNum, batch *types.Batch) ([]types.Result, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if seq != kv.last+1 {
		return nil, &ErrOutOfOrder{Want: kv.last + 1, Got: seq}
	}
	kv.marks = append(kv.marks, seqMark{seq: seq, start: len(kv.undo)})
	kv.last = seq

	if batch.ZeroPayload {
		// The paper's zero-payload mode: execute dummy instructions, touch
		// no state. Results are still produced so clients receive INFORMs.
		var scratch [8]byte
		for i := 0; i < batch.ZeroCount; i++ {
			for j := 0; j < kv.zeroWork; j++ {
				binary.BigEndian.PutUint64(scratch[:], uint64(i)^uint64(j))
			}
		}
		_ = scratch
		results := make([]types.Result, len(batch.Requests))
		for i := range batch.Requests {
			results[i] = types.Result{Client: batch.Requests[i].Txn.Client, Seq: batch.Requests[i].Txn.Seq}
		}
		return results, nil
	}

	results := make([]types.Result, len(batch.Requests))
	for i := range batch.Requests {
		txn := &batch.Requests[i].Txn
		res := types.Result{Client: txn.Client, Seq: txn.Seq}
		for _, op := range txn.Ops {
			switch op.Kind {
			case types.OpRead:
				v, ok := kv.data[op.Key]
				if ok {
					res.Values = append(res.Values, append([]byte(nil), v...))
				} else {
					res.Values = append(res.Values, nil)
				}
			case types.OpWrite:
				old, existed := kv.data[op.Key]
				kv.undo = append(kv.undo, undoEntry{key: op.Key, prev: old, existed: existed})
				kv.state = xorDigest(kv.state, entryHash(op.Key, old, existed))
				val := append([]byte(nil), op.Value...)
				kv.data[op.Key] = val
				kv.state = xorDigest(kv.state, entryHash(op.Key, val, true))
				res.Values = append(res.Values, nil)
			case types.OpNoop:
				var scratch [8]byte
				for j := 0; j < kv.zeroWork; j++ {
					binary.BigEndian.PutUint64(scratch[:], uint64(j))
				}
				res.Values = append(res.Values, nil)
			}
		}
		results[i] = res
	}
	return results, nil
}

// Rollback reverts every batch applied with sequence number greater than
// toSeq. It is the paper's "rollback any executed transactions not in
// NV-PROPOSE" (Fig 5, Line 14). Rolling back below the last checkpoint is an
// error: undo information before a checkpoint has been discarded.
func (kv *KV) Rollback(toSeq types.SeqNum) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if toSeq >= kv.last {
		return nil
	}
	// Find the first mark with seq > toSeq.
	idx := len(kv.marks)
	for i, m := range kv.marks {
		if m.seq > toSeq {
			idx = i
			break
		}
	}
	if idx == len(kv.marks) {
		// kv.last > toSeq but no retained mark exceeds toSeq: the undo
		// information was discarded by a checkpoint.
		return fmt.Errorf("store: cannot rollback to seq %d: undo log truncated by checkpoint", toSeq)
	}
	if kv.marks[idx].seq != toSeq+1 {
		// A checkpoint discarded the batches immediately above toSeq; the
		// retained suffix is not contiguous with toSeq.
		return fmt.Errorf("store: cannot rollback to seq %d: oldest undo mark is seq %d", toSeq, kv.marks[idx].seq)
	}
	cut := len(kv.undo)
	if idx < len(kv.marks) {
		cut = kv.marks[idx].start
	}
	for i := len(kv.undo) - 1; i >= cut; i-- {
		e := kv.undo[i]
		cur, curExisted := kv.data[e.key]
		kv.state = xorDigest(kv.state, entryHash(e.key, cur, curExisted))
		if e.existed {
			kv.data[e.key] = e.prev
			kv.state = xorDigest(kv.state, entryHash(e.key, e.prev, true))
		} else {
			delete(kv.data, e.key)
		}
	}
	kv.undo = kv.undo[:cut]
	kv.marks = kv.marks[:idx]
	kv.last = toSeq
	return nil
}

// Checkpoint declares every batch up to and including seq stable and
// discards their undo information (the paper's periodic checkpoint protocol,
// §II-D). After Checkpoint(seq), Rollback below seq fails.
func (kv *KV) Checkpoint(seq types.SeqNum) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	idx := len(kv.marks)
	for i, m := range kv.marks {
		if m.seq > seq {
			idx = i
			break
		}
	}
	if idx == 0 {
		return
	}
	cut := len(kv.undo)
	if idx < len(kv.marks) {
		cut = kv.marks[idx].start
	}
	kv.undo = append([]undoEntry(nil), kv.undo[cut:]...)
	kv.marks = append([]seqMark(nil), kv.marks[idx:]...)
	for i := range kv.marks {
		kv.marks[i].start -= cut
	}
}

// SnapshotAt returns a copy of the table exactly as of seq: writes from
// batches applied above seq are rewound through the undo log, without
// touching the live state. It powers durable checkpoint snapshots — the
// store may already have executed speculatively past the stable checkpoint,
// and persisting that speculative suffix would let a crash resurrect state
// the cluster later rolled back. Call it before Checkpoint(seq) discards the
// undo entries it needs.
func (kv *KV) SnapshotAt(seq types.SeqNum) (map[string][]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if seq > kv.last {
		return nil, fmt.Errorf("store: snapshot at seq %d beyond last applied %d", seq, kv.last)
	}
	data := make(map[string][]byte, len(kv.data))
	for k, v := range kv.data {
		data[k] = append([]byte(nil), v...)
	}
	if seq == kv.last {
		return data, nil
	}
	idx := len(kv.marks)
	for i, m := range kv.marks {
		if m.seq > seq {
			idx = i
			break
		}
	}
	if idx == len(kv.marks) || kv.marks[idx].seq != seq+1 {
		return nil, fmt.Errorf("store: cannot snapshot at seq %d: undo log truncated by checkpoint", seq)
	}
	for i := len(kv.undo) - 1; i >= kv.marks[idx].start; i-- {
		e := kv.undo[i]
		if e.existed {
			data[e.key] = append([]byte(nil), e.prev...)
		} else {
			delete(data, e.key)
		}
	}
	return data, nil
}

// Restore replaces the store's contents with a snapshot taken by SnapshotAt:
// the table is loaded, the applied sequence number is set to seq, and the
// incremental state digest is recomputed, so a restored replica reports the
// same StateDigest the snapshotting replica did at seq. The undo log starts
// empty — everything at or below a durable snapshot is stable by definition.
func (kv *KV) Restore(records map[string][]byte, seq types.SeqNum) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.data = make(map[string][]byte, len(records))
	kv.state = [32]byte{}
	for k, v := range records {
		val := append([]byte(nil), v...)
		kv.data[k] = val
		kv.state = xorDigest(kv.state, entryHash(k, val, true))
	}
	kv.undo = nil
	kv.marks = nil
	kv.last = seq
}

// --- parallel execution support (internal/exec) ---
//
// The conflict-aware parallel execution engine computes a batch's effects —
// read results, write effects with their preimages, and the net state-digest
// delta — on a worker pool against a frozen view of the table, then installs
// them here in sequence order. InstallPrepared must leave the store
// bit-identical to an Apply of the same batch: same data, same undo entries
// in the same order, same incremental digest. The undo-entry equivalence is
// what keeps Rollback and SnapshotAt working unchanged over parallel-executed
// history.

// WriteEffect is one write precomputed by the parallel execution engine:
// the value to install (an owned copy, exactly as Apply would have made) and
// the value it overwrites (the undo preimage, shared — values are immutable
// once installed).
type WriteEffect struct {
	Key         string
	Val         []byte
	Prev        []byte
	PrevExisted bool
}

// EntryDelta returns the incremental state-digest contribution of
// overwriting key's previous value with val — the XOR Apply folds into the
// running digest per write. Engine workers call it in parallel; XOR is
// commutative and associative, so per-write deltas combine into a batch
// delta in any order.
func EntryDelta(key string, prev []byte, prevExisted bool, val []byte) [32]byte {
	return xorDigest(entryHash(key, prev, prevExisted), entryHash(key, val, true))
}

// Preimage returns the live value of key without copying. Callers (engine
// workers) must treat the returned slice as immutable; installed values are
// never mutated in place, so the reference stays valid across installs.
func (kv *KV) Preimage(key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	return v, ok
}

// InstallPrepared applies one batch's precomputed write effects as the
// seq-th batch. writes must be in the batch's serial operation order with
// preimages as of serial execution, and delta their combined digest
// contribution; the engine guarantees both. Like Apply, sequence numbers
// must be installed consecutively.
func (kv *KV) InstallPrepared(seq types.SeqNum, writes []WriteEffect, delta [32]byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if seq != kv.last+1 {
		return &ErrOutOfOrder{Want: kv.last + 1, Got: seq}
	}
	kv.marks = append(kv.marks, seqMark{seq: seq, start: len(kv.undo)})
	kv.last = seq
	for i := range writes {
		w := &writes[i]
		kv.undo = append(kv.undo, undoEntry{key: w.Key, prev: w.Prev, existed: w.PrevExisted})
		kv.data[w.Key] = w.Val
	}
	kv.state = xorDigest(kv.state, delta)
	return nil
}

// DigestOf computes the state digest a replica would report after restoring
// the given table at seq, without touching any live store. State-transfer
// fetchers use it to check a received snapshot against checkpoint-certificate
// digests before installing it.
func DigestOf(records map[string][]byte, seq types.SeqNum) types.Digest {
	var state [32]byte
	for k, v := range records {
		state = xorDigest(state, entryHash(k, v, true))
	}
	var buf [40]byte
	copy(buf[:32], state[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(seq))
	return sha256.Sum256(buf[:])
}

// UndoLen returns the number of pending undo entries (for the checkpoint
// ablation benchmark).
func (kv *KV) UndoLen() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.undo)
}

// StateDigest returns the incremental digest of the current table state
// combined with the last applied sequence number. Two replicas with equal
// digests have applied the same writes.
func (kv *KV) StateDigest() types.Digest {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var buf [40]byte
	copy(buf[:32], kv.state[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(kv.last))
	return sha256.Sum256(buf[:])
}

func entryHash(key string, val []byte, existed bool) [32]byte {
	if !existed {
		return [32]byte{} // absent entries contribute nothing
	}
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(key)))
	h.Write(lenBuf[:])
	h.Write([]byte(key))
	h.Write(val)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

func xorDigest(a, b [32]byte) [32]byte {
	var out [32]byte
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}
