package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func writeBatch(kvs ...string) *types.Batch {
	b := &types.Batch{}
	for i := 0; i+1 < len(kvs); i += 2 {
		b.Requests = append(b.Requests, types.Request{Txn: types.Transaction{
			Client: types.ClientIDBase, Seq: uint64(i + 1),
			Ops: []types.Op{{Kind: types.OpWrite, Key: kvs[i], Value: []byte(kvs[i+1])}},
		}})
	}
	return b
}

func TestApplyOrdering(t *testing.T) {
	kv := New()
	if _, err := kv.Apply(2, writeBatch("a", "1")); err == nil {
		t.Fatal("applying seq 2 first should fail")
	}
	if _, err := kv.Apply(1, writeBatch("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Apply(1, writeBatch("a", "2")); err == nil {
		t.Fatal("re-applying seq 1 should fail")
	}
	if v, _ := kv.Get("a"); string(v) != "1" {
		t.Fatalf("got %q", v)
	}
}

func TestReadResults(t *testing.T) {
	kv := New()
	kv.Load(map[string][]byte{"x": []byte("init")})
	b := &types.Batch{Requests: []types.Request{{Txn: types.Transaction{
		Client: types.ClientIDBase, Seq: 1,
		Ops: []types.Op{{Kind: types.OpRead, Key: "x"}, {Kind: types.OpRead, Key: "missing"}},
	}}}}
	res, err := kv.Apply(1, b)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0].Values[0]) != "init" || res[0].Values[1] != nil {
		t.Fatalf("unexpected read results: %v", res[0].Values)
	}
}

func TestRollbackRestoresStateAndDigest(t *testing.T) {
	kv := New()
	kv.Load(map[string][]byte{"a": []byte("base")})
	d0 := kv.StateDigest()
	if _, err := kv.Apply(1, writeBatch("a", "1", "b", "2")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Apply(2, writeBatch("a", "3", "c", "4")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if kv.StateDigest() != d0 {
		t.Fatal("digest not restored by rollback")
	}
	if v, _ := kv.Get("a"); string(v) != "base" {
		t.Fatalf("a = %q after rollback", v)
	}
	if _, ok := kv.Get("b"); ok {
		t.Fatal("b should not exist after rollback")
	}
	if kv.LastApplied() != 0 {
		t.Fatalf("last applied %d", kv.LastApplied())
	}
}

func TestCheckpointBlocksDeepRollback(t *testing.T) {
	kv := New()
	for s := types.SeqNum(1); s <= 4; s++ {
		if _, err := kv.Apply(s, writeBatch("k", fmt.Sprint(s))); err != nil {
			t.Fatal(err)
		}
	}
	kv.Checkpoint(2)
	if err := kv.Rollback(1); err == nil {
		t.Fatal("rollback below checkpoint must fail")
	}
	if err := kv.Rollback(2); err != nil {
		t.Fatalf("rollback to checkpoint: %v", err)
	}
	if v, _ := kv.Get("k"); string(v) != "2" {
		t.Fatalf("k = %q", v)
	}
}

func TestZeroPayloadApply(t *testing.T) {
	kv := New()
	d0 := kv.StateDigest()
	b := &types.Batch{ZeroPayload: true, ZeroCount: 100, Requests: []types.Request{
		{Txn: types.Transaction{Client: types.ClientIDBase, Seq: 1}},
	}}
	res, err := kv.Apply(1, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	// Zero-payload execution touches no state, but the applied sequence
	// number advances (it participates in the digest).
	if kv.LastApplied() != 1 {
		t.Fatal("seq did not advance")
	}
	if kv.StateDigest() == d0 {
		t.Fatal("digest should incorporate the applied seq")
	}
}

// TestQuickRollbackIsInverse: applying any random batch sequence and rolling
// it back restores the exact state digest — the invariant PoE's safe
// rollbacks (ingredient I2) rest on.
func TestQuickRollbackIsInverse(t *testing.T) {
	f := func(seed int64, nBatches uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kv := New()
		base := map[string][]byte{}
		for i := 0; i < 16; i++ {
			base[fmt.Sprintf("k%d", i)] = []byte{byte(rng.Intn(256))}
		}
		kv.Load(base)
		d0 := kv.StateDigest()
		n := int(nBatches%8) + 1
		for s := 1; s <= n; s++ {
			b := &types.Batch{}
			ops := rng.Intn(4) + 1
			txn := types.Transaction{Client: types.ClientIDBase, Seq: uint64(s)}
			for o := 0; o < ops; o++ {
				key := fmt.Sprintf("k%d", rng.Intn(24)) // may create new keys
				if rng.Intn(3) == 0 {
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key})
				} else {
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key, Value: []byte{byte(rng.Intn(256))}})
				}
			}
			b.Requests = append(b.Requests, types.Request{Txn: txn})
			if _, err := kv.Apply(types.SeqNum(s), b); err != nil {
				return false
			}
		}
		if err := kv.Rollback(0); err != nil {
			return false
		}
		return kv.StateDigest() == d0 && kv.UndoLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartialRollback: rolling back to an intermediate point equals
// never having applied the suffix.
func TestQuickPartialRollback(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		total := 6
		k := int(cut%uint8(total)) + 1

		mk := func(r *rand.Rand, s int) *types.Batch {
			txn := types.Transaction{Client: types.ClientIDBase, Seq: uint64(s)}
			for o := 0; o < 3; o++ {
				txn.Ops = append(txn.Ops, types.Op{
					Kind: types.OpWrite, Key: fmt.Sprintf("k%d", r.Intn(8)),
					Value: []byte{byte(r.Intn(256))},
				})
			}
			return &types.Batch{Requests: []types.Request{{Txn: txn}}}
		}

		// World A: apply all, roll back to k.
		rngA := rand.New(rand.NewSource(seed))
		a := New()
		for s := 1; s <= total; s++ {
			if _, err := a.Apply(types.SeqNum(s), mk(rngA, s)); err != nil {
				return false
			}
		}
		if err := a.Rollback(types.SeqNum(k)); err != nil {
			return false
		}
		// World B: apply only the prefix.
		rngB := rand.New(rand.NewSource(seed))
		bst := New()
		for s := 1; s <= k; s++ {
			if _, err := bst.Apply(types.SeqNum(s), mk(rngB, s)); err != nil {
				return false
			}
		}
		return a.StateDigest() == bst.StateDigest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyOutOfOrderError pins the ErrOutOfOrder contract directly: the
// error type, its Want/Got fields, and that a failed apply leaves no trace
// (no state change, no undo entries, no sequence advance).
func TestApplyOutOfOrderError(t *testing.T) {
	kv := New()
	if _, err := kv.Apply(1, writeBatch("a", "1")); err != nil {
		t.Fatal(err)
	}
	before := kv.StateDigest()
	_, err := kv.Apply(3, writeBatch("b", "2"))
	var oo *ErrOutOfOrder
	if !errors.As(err, &oo) {
		t.Fatalf("err = %v, want *ErrOutOfOrder", err)
	}
	if oo.Want != 2 || oo.Got != 3 {
		t.Fatalf("ErrOutOfOrder{Want:%d Got:%d}, want {2 3}", oo.Want, oo.Got)
	}
	// Replaying an old sequence number is equally out of order.
	if _, err := kv.Apply(1, writeBatch("c", "3")); err == nil {
		t.Fatal("replaying seq 1 accepted")
	}
	if kv.LastApplied() != 1 || kv.StateDigest() != before || kv.UndoLen() != 1 {
		t.Fatal("failed apply mutated the store")
	}
}

// TestSnapshotAtRewindsSpeculativeSuffix: SnapshotAt must capture the table
// as of the requested sequence number while the live store keeps the newer
// writes, and Restore of that snapshot must reproduce the digest the store
// had at that point.
func TestSnapshotAtRewindsSpeculativeSuffix(t *testing.T) {
	kv := New()
	digests := map[types.SeqNum]types.Digest{}
	for s := types.SeqNum(1); s <= 6; s++ {
		if _, err := kv.Apply(s, writeBatch("k", fmt.Sprintf("v%d", s), "extra", fmt.Sprintf("e%d", s))); err != nil {
			t.Fatal(err)
		}
		digests[s] = kv.StateDigest()
	}
	for _, at := range []types.SeqNum{3, 6} {
		snap, err := kv.SnapshotAt(at)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", at, err)
		}
		if got := string(snap["k"]); got != fmt.Sprintf("v%d", at) {
			t.Fatalf("snapshot at %d has k=%q", at, got)
		}
		restored := New()
		restored.Restore(snap, at)
		if restored.StateDigest() != digests[at] {
			t.Fatalf("restored digest at %d diverges", at)
		}
		if restored.LastApplied() != at {
			t.Fatalf("restored LastApplied = %d, want %d", restored.LastApplied(), at)
		}
	}
	// The live store must be untouched by the rewind.
	if kv.StateDigest() != digests[6] {
		t.Fatal("SnapshotAt mutated the live store")
	}
	// A restored store continues applying normally.
	snap, _ := kv.SnapshotAt(6)
	r := New()
	r.Restore(snap, 6)
	if _, err := kv.Apply(7, writeBatch("k", "v7", "extra", "e7")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(7, writeBatch("k", "v7", "extra", "e7")); err != nil {
		t.Fatal(err)
	}
	if r.StateDigest() != kv.StateDigest() {
		t.Fatal("restored store diverged on the next apply")
	}
}

// TestSnapshotAtBelowCheckpointFails: the rewind needs undo information, so
// a snapshot below the last store checkpoint must be refused, as must one
// beyond the applied prefix.
func TestSnapshotAtBelowCheckpointFails(t *testing.T) {
	kv := New()
	for s := types.SeqNum(1); s <= 5; s++ {
		kv.Apply(s, writeBatch("k", fmt.Sprintf("v%d", s)))
	}
	kv.Checkpoint(3)
	if _, err := kv.SnapshotAt(2); err == nil {
		t.Fatal("snapshot below the checkpoint accepted")
	}
	if _, err := kv.SnapshotAt(9); err == nil {
		t.Fatal("snapshot beyond LastApplied accepted")
	}
	if _, err := kv.SnapshotAt(3); err != nil {
		t.Fatalf("snapshot exactly at the checkpoint must work: %v", err)
	}
}
