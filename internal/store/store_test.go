package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func writeBatch(kvs ...string) *types.Batch {
	b := &types.Batch{}
	for i := 0; i+1 < len(kvs); i += 2 {
		b.Requests = append(b.Requests, types.Request{Txn: types.Transaction{
			Client: types.ClientIDBase, Seq: uint64(i + 1),
			Ops: []types.Op{{Kind: types.OpWrite, Key: kvs[i], Value: []byte(kvs[i+1])}},
		}})
	}
	return b
}

func TestApplyOrdering(t *testing.T) {
	kv := New()
	if _, err := kv.Apply(2, writeBatch("a", "1")); err == nil {
		t.Fatal("applying seq 2 first should fail")
	}
	if _, err := kv.Apply(1, writeBatch("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Apply(1, writeBatch("a", "2")); err == nil {
		t.Fatal("re-applying seq 1 should fail")
	}
	if v, _ := kv.Get("a"); string(v) != "1" {
		t.Fatalf("got %q", v)
	}
}

func TestReadResults(t *testing.T) {
	kv := New()
	kv.Load(map[string][]byte{"x": []byte("init")})
	b := &types.Batch{Requests: []types.Request{{Txn: types.Transaction{
		Client: types.ClientIDBase, Seq: 1,
		Ops: []types.Op{{Kind: types.OpRead, Key: "x"}, {Kind: types.OpRead, Key: "missing"}},
	}}}}
	res, err := kv.Apply(1, b)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0].Values[0]) != "init" || res[0].Values[1] != nil {
		t.Fatalf("unexpected read results: %v", res[0].Values)
	}
}

func TestRollbackRestoresStateAndDigest(t *testing.T) {
	kv := New()
	kv.Load(map[string][]byte{"a": []byte("base")})
	d0 := kv.StateDigest()
	if _, err := kv.Apply(1, writeBatch("a", "1", "b", "2")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Apply(2, writeBatch("a", "3", "c", "4")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if kv.StateDigest() != d0 {
		t.Fatal("digest not restored by rollback")
	}
	if v, _ := kv.Get("a"); string(v) != "base" {
		t.Fatalf("a = %q after rollback", v)
	}
	if _, ok := kv.Get("b"); ok {
		t.Fatal("b should not exist after rollback")
	}
	if kv.LastApplied() != 0 {
		t.Fatalf("last applied %d", kv.LastApplied())
	}
}

func TestCheckpointBlocksDeepRollback(t *testing.T) {
	kv := New()
	for s := types.SeqNum(1); s <= 4; s++ {
		if _, err := kv.Apply(s, writeBatch("k", fmt.Sprint(s))); err != nil {
			t.Fatal(err)
		}
	}
	kv.Checkpoint(2)
	if err := kv.Rollback(1); err == nil {
		t.Fatal("rollback below checkpoint must fail")
	}
	if err := kv.Rollback(2); err != nil {
		t.Fatalf("rollback to checkpoint: %v", err)
	}
	if v, _ := kv.Get("k"); string(v) != "2" {
		t.Fatalf("k = %q", v)
	}
}

func TestZeroPayloadApply(t *testing.T) {
	kv := New()
	d0 := kv.StateDigest()
	b := &types.Batch{ZeroPayload: true, ZeroCount: 100, Requests: []types.Request{
		{Txn: types.Transaction{Client: types.ClientIDBase, Seq: 1}},
	}}
	res, err := kv.Apply(1, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	// Zero-payload execution touches no state, but the applied sequence
	// number advances (it participates in the digest).
	if kv.LastApplied() != 1 {
		t.Fatal("seq did not advance")
	}
	if kv.StateDigest() == d0 {
		t.Fatal("digest should incorporate the applied seq")
	}
}

// TestQuickRollbackIsInverse: applying any random batch sequence and rolling
// it back restores the exact state digest — the invariant PoE's safe
// rollbacks (ingredient I2) rest on.
func TestQuickRollbackIsInverse(t *testing.T) {
	f := func(seed int64, nBatches uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kv := New()
		base := map[string][]byte{}
		for i := 0; i < 16; i++ {
			base[fmt.Sprintf("k%d", i)] = []byte{byte(rng.Intn(256))}
		}
		kv.Load(base)
		d0 := kv.StateDigest()
		n := int(nBatches%8) + 1
		for s := 1; s <= n; s++ {
			b := &types.Batch{}
			ops := rng.Intn(4) + 1
			txn := types.Transaction{Client: types.ClientIDBase, Seq: uint64(s)}
			for o := 0; o < ops; o++ {
				key := fmt.Sprintf("k%d", rng.Intn(24)) // may create new keys
				if rng.Intn(3) == 0 {
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key})
				} else {
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key, Value: []byte{byte(rng.Intn(256))}})
				}
			}
			b.Requests = append(b.Requests, types.Request{Txn: txn})
			if _, err := kv.Apply(types.SeqNum(s), b); err != nil {
				return false
			}
		}
		if err := kv.Rollback(0); err != nil {
			return false
		}
		return kv.StateDigest() == d0 && kv.UndoLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartialRollback: rolling back to an intermediate point equals
// never having applied the suffix.
func TestQuickPartialRollback(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		total := 6
		k := int(cut%uint8(total)) + 1

		mk := func(r *rand.Rand, s int) *types.Batch {
			txn := types.Transaction{Client: types.ClientIDBase, Seq: uint64(s)}
			for o := 0; o < 3; o++ {
				txn.Ops = append(txn.Ops, types.Op{
					Kind: types.OpWrite, Key: fmt.Sprintf("k%d", r.Intn(8)),
					Value: []byte{byte(r.Intn(256))},
				})
			}
			return &types.Batch{Requests: []types.Request{{Txn: txn}}}
		}

		// World A: apply all, roll back to k.
		rngA := rand.New(rand.NewSource(seed))
		a := New()
		for s := 1; s <= total; s++ {
			if _, err := a.Apply(types.SeqNum(s), mk(rngA, s)); err != nil {
				return false
			}
		}
		if err := a.Rollback(types.SeqNum(k)); err != nil {
			return false
		}
		// World B: apply only the prefix.
		rngB := rand.New(rand.NewSource(seed))
		bst := New()
		for s := 1; s <= k; s++ {
			if _, err := bst.Apply(types.SeqNum(s), mk(rngB, s)); err != nil {
				return false
			}
		}
		return a.StateDigest() == bst.StateDigest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
