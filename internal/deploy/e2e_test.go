package deploy

// Process-level end-to-end battery: these tests build the real cmd/
// binaries once, launch real poeserver OS processes through the Runner,
// and drive them over real TCP — the deployment shape the paper evaluates,
// as opposed to the in-process harness scenarios. Synchronization is
// poll-with-deadline throughout (WaitHealthy polls accept-ability, client
// submissions retry with backoff until their context expires); there are no
// fixed sleeps standing in for "the cluster is probably ready now".
//
// Environments that cannot build or exec binaries, or cannot bind TCP
// ports, skip with a reason instead of failing, so `go test ./...` stays
// green in restricted sandboxes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/types"
)

var (
	e2eBinDir   string
	e2eBuildErr error
)

func TestMain(m *testing.M) {
	code := func() int {
		dir, err := os.MkdirTemp("", "poe-e2e-bin-*")
		if err != nil {
			e2eBuildErr = err
			return m.Run()
		}
		defer os.RemoveAll(dir)
		for _, name := range []string{"poeserver", "poerun", "poeload"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name),
				"github.com/poexec/poe/cmd/"+name)
			if out, err := cmd.CombinedOutput(); err != nil {
				e2eBuildErr = fmt.Errorf("go build %s: %v\n%s", name, err, out)
				return m.Run()
			}
		}
		e2eBinDir = dir
		return m.Run()
	}()
	os.Exit(code)
}

// requireE2E skips the test when the environment cannot run the battery.
func requireE2E(t *testing.T) {
	t.Helper()
	if e2eBuildErr != nil {
		t.Skipf("skipping process-level e2e: cannot build binaries here: %v", e2eBuildErr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("skipping process-level e2e: sandbox blocks TCP listen: %v", err)
	}
	ln.Close()
}

// e2eConfig is the battery's base cluster shape: small batches and tight
// checkpoints so a few dozen writes cross several checkpoint boundaries.
func e2eConfig(t *testing.T, durable bool) ClusterConfig {
	t.Helper()
	cfg := ClusterConfig{
		Replicas:           4,
		Scheme:             "mac",
		Batch:              8,
		CheckpointInterval: 4,
		ViewTimeout:        Duration(500 * time.Millisecond),
		Seed:               "e2e-" + t.Name(),
		RunDir:             filepath.Join(t.TempDir(), "run"),
		ServerBin:          filepath.Join(e2eBinDir, "poeserver"),
	}
	if durable {
		cfg.DataRoot = filepath.Join(t.TempDir(), "data")
	}
	return cfg
}

// startE2ECluster launches the cluster, waits for health, builds a client
// pool, and registers cleanup that hard-kills whatever the test left
// running.
func startE2ECluster(t *testing.T, cfg ClusterConfig, clients int) (*Runner, []LoadClient) {
	t.Helper()
	r, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.killAll)
	if err := r.WaitHealthy(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool, closePool, err := NewTCPClients(ctx, ClientPoolOptions{
		Addrs:  r.Addrs(),
		Scheme: cfg.Scheme,
		Seed:   cfg.Seed,
		Count:  clients,
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); closePool() })
	submitDebug = r
	t.Cleanup(func() { submitDebug = nil })
	return r, pool
}

// submit drives one transaction to quorum completion with a deadline. The
// client retransmits internally, so this doubles as the battery's
// poll-with-deadline primitive: "the cluster (including any replica that
// must first catch up) can commit my transaction within d".
var submitDebug *Runner // set by startE2ECluster so submit failures dump replica logs

func submit(t *testing.T, c LoadClient, d time.Duration, ops ...types.Op) types.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	txn := types.Transaction{
		Client:    c.ID,
		Seq:       c.Sub.NextSeq(),
		Ops:       ops,
		TimeNanos: time.Now().UnixNano(),
	}
	res, err := c.Sub.SubmitTxn(ctx, txn)
	if err != nil {
		if submitDebug != nil {
			for id := 0; id < submitDebug.N(); id++ {
				t.Logf("replica %d (alive=%v) log tail:\n%s", id, submitDebug.Alive(id), submitDebug.TailLog(id, 12))
			}
		}
		t.Fatalf("submit %v: %v", ops, err)
	}
	return res
}

func writeOp(key, val string) types.Op {
	return types.Op{Kind: types.OpWrite, Key: key, Value: []byte(val)}
}

// writeKeys writes key<i> = <prefix><i> across the pool and returns the
// acked values. Every returned entry was acknowledged by a full quorum.
func writeKeys(t *testing.T, pool []LoadClient, base, n int, prefix string, d time.Duration) map[string]string {
	t.Helper()
	acked := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", base+i)
		val := fmt.Sprintf("%s%03d", prefix, base+i)
		submit(t, pool[i%len(pool)], d, writeOp(key, val))
		acked[key] = val
	}
	return acked
}

// verifyKeys quorum-reads every key and asserts it holds the last acked
// value — the client-observed correctness contract: every acknowledged
// write is readable, and nothing (a replayed duplicate, a lost suffix)
// replaced it.
func verifyKeys(t *testing.T, pool []LoadClient, want map[string]string, d time.Duration) {
	t.Helper()
	i := 0
	for key, val := range want {
		res := submit(t, pool[i%len(pool)], d, types.Op{Kind: types.OpRead, Key: key})
		if len(res.Values) != 1 || string(res.Values[0]) != val {
			got := "<missing>"
			if len(res.Values) == 1 {
				got = string(res.Values[0])
			}
			t.Fatalf("key %s: read %q, want last acked write %q", key, got, val)
		}
		i++
	}
}

// TestE2ESteadyState: a real 4-process cluster serves writes and reads
// correctly, overwrites are last-acked-wins, a deliberately re-submitted
// transaction is not applied twice, and graceful shutdown leaves every
// replica's exit metrics on disk with a consistent executed count.
func TestE2ESteadyState(t *testing.T) {
	requireE2E(t)
	r, pool := startE2ECluster(t, e2eConfig(t, false), 2)

	acked := writeKeys(t, pool, 0, 20, "v1-", 20*time.Second)
	// Overwrite a prefix; the read-back below must see the second value.
	for k, v := range writeKeys(t, pool, 0, 8, "v2-", 20*time.Second) {
		acked[k] = v
	}

	// No-duplicate-application probe: re-submit an already-executed
	// transaction verbatim (same client, same client-sequence). Replicas
	// must deduplicate it rather than re-apply it. While the transaction is
	// within the per-client reply ring (the last 8 replies), the duplicate
	// is answered from the cache — the original reply, no re-execution;
	// once later writes evict it from the ring, the duplicate gets no reply
	// and the short submission context expiring is the expected outcome.
	// In both cases, what must NOT happen is key000 reverting to the
	// duplicate's value.
	c := pool[0]
	dupSeq := c.Sub.NextSeq()
	dup := types.Transaction{
		Client:    c.ID,
		Seq:       dupSeq,
		Ops:       []types.Op{writeOp("key000", "dup-value")},
		TimeNanos: time.Now().UnixNano(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	if _, err := c.Sub.SubmitTxn(ctx, dup); err != nil {
		t.Fatalf("first submission of dup txn: %v", err)
	}
	cancel()
	acked["key000"] = "dup-value"
	submit(t, c, 20*time.Second, writeOp("key000", "after-dup"))
	acked["key000"] = "after-dup"
	// One later write leaves dupSeq inside the ring: replayed, not re-run.
	replayCtx, replayCancel := context.WithTimeout(context.Background(), 10*time.Second)
	if _, err := c.Sub.SubmitTxn(replayCtx, dup); err != nil {
		t.Fatalf("in-ring duplicate was not answered from the reply cache: %v", err)
	}
	replayCancel()
	// Eight more writes from the same client evict dupSeq from the ring;
	// now the duplicate can draw neither a cached reply nor a fresh quorum.
	for i := 0; i < 8; i++ {
		v := fmt.Sprintf("evict-%d", i)
		submit(t, c, 20*time.Second, writeOp("key000", v))
		acked["key000"] = v
	}
	dupCtx, dupCancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	if _, err := c.Sub.SubmitTxn(dupCtx, dup); err == nil {
		t.Fatal("evicted duplicate transaction unexpectedly completed")
	}
	dupCancel()

	verifyKeys(t, pool, acked, 20*time.Second)

	// Tiered read-back at a 90% SPECULATIVE / 10% ORDERED mix: the fast
	// read path over real processes and sockets. Speculative answers come
	// from one backup's executed prefix, so a momentarily trailing replica
	// may serve an older value — retry until the freshest write is visible
	// (it must become visible: every write above was quorum-acked long ago).
	orderedReads := 0
	specReads := 0
	i := 0
	for key, val := range acked {
		c := pool[i%len(pool)]
		rd, ok := c.Sub.(TieredReader)
		if !ok {
			t.Fatalf("pool client %d does not implement TieredReader", i%len(pool))
		}
		tier := types.ConsistencySpeculative
		if i%10 == 0 {
			tier = types.ConsistencyOrdered
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			txn := types.Transaction{
				Client:      c.ID,
				Ops:         []types.Op{{Kind: types.OpRead, Key: key}},
				Consistency: tier,
				TimeNanos:   time.Now().UnixNano(),
			}
			var ans client.ReadAnswer
			var err error
			rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
			if tier == types.ConsistencyOrdered {
				txn.Seq = c.Sub.NextSeq()
				ans.Result, err = c.Sub.SubmitTxn(rctx, txn)
				ans.Fallback = true
			} else {
				txn.Seq = rd.NextReadSeq()
				ans, err = rd.ReadTxn(rctx, txn)
			}
			rcancel()
			if err == nil && len(ans.Result.Values) == 1 && string(ans.Result.Values[0]) == val {
				if tier == types.ConsistencySpeculative && !ans.Fallback {
					if ans.ExecSeq == 0 {
						t.Fatalf("speculative answer for %s carries no prefix tag", key)
					}
					specReads++
				} else {
					orderedReads++
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tiered read of %s (tier %v): err=%v values=%q, want %q",
					key, tier, err, ans.Result.Values, val)
			}
			time.Sleep(50 * time.Millisecond)
		}
		i++
	}
	if specReads == 0 {
		t.Fatal("no read in the 90% mix was served speculatively")
	}

	// Every submission above that returned was quorum-acked: 28 writes, the
	// dup pair, the 8 eviction writes, one read per key, and the tiered
	// reads that fell back to (or chose) ordering. The in-ring replay and
	// the speculative serves never execute, so they are deliberately absent
	// from the executed-count reconciliation.
	ackedTxns := int64(28 + 2 + 8 + len(acked) + orderedReads)

	if err := r.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	var executed []int64
	for id := 0; id < r.N(); id++ {
		snap, err := r.ReadMetrics(id)
		if err != nil {
			t.Fatalf("replica %d exit metrics: %v\n%s", id, err, r.TailLog(id, 10))
		}
		if snap.ExecutedTxns == 0 {
			t.Errorf("replica %d executed nothing", id)
		}
		executed = append(executed, snap.ExecutedTxns)
	}
	// PoE acks certify execution on a quorum (nf = 3 of 4), so at shutdown
	// the 3rd-highest exit counter must cover every acked transaction; the
	// 4th replica may legitimately trail by an in-flight batch.
	sort.Slice(executed, func(i, j int) bool { return executed[i] > executed[j] })
	if executed[2] < ackedTxns {
		t.Errorf("quorum executed counts %v do not cover the %d acked txns", executed, ackedTxns)
	}
}

// TestE2EKillRestart: SIGKILL a durable replica mid-run, keep the cluster
// serving, restart the replica from its surviving data directory, then
// remove a *different* replica so the restarted one is required for every
// quorum — its participation in fresh writes and in reads of the full
// history is the end-to-end proof it recovered and caught up.
func TestE2EKillRestart(t *testing.T) {
	requireE2E(t)
	r, pool := startE2ECluster(t, e2eConfig(t, true), 2)
	const victim, bystander = 3, 2

	acked := writeKeys(t, pool, 0, 16, "pre-", 20*time.Second)

	if err := r.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// n=4, f=1: the three survivors still form the nf=3 quorum.
	for k, v := range writeKeys(t, pool, 16, 16, "mid-", 30*time.Second) {
		acked[k] = v
	}

	if err := r.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitHealthy(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Make the restarted replica load-bearing: with the bystander down,
	// every quorum needs the victim. The submissions below only complete
	// once it has replayed its WAL and fetched the suffix it missed.
	if err := r.Stop(bystander, 15*time.Second); err != nil {
		t.Fatalf("stopping bystander: %v", err)
	}
	for k, v := range writeKeys(t, pool, 32, 8, "post-", 60*time.Second) {
		acked[k] = v
	}
	verifyKeys(t, pool, acked, 60*time.Second)

	if !strings.Contains(readLog(t, r, victim), "recovered ") {
		t.Errorf("restarted replica's log never reported WAL recovery:\n%s", r.TailLog(victim, 15))
	}

	if err := r.Restart(bystander); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitHealthy(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	snap, err := r.ReadMetrics(victim)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ExecutedTxns == 0 {
		t.Error("restarted replica reported zero executed transactions at exit")
	}
}

// TestE2EWipeRejoin: crash a durable replica, destroy its data directory,
// and restart it with nothing — the process-level cold join. The cluster's
// stable checkpoint has outrun the record-retention horizon (tight
// checkpoint interval, enough committed writes), so the blank replica can
// only converge through certificate-verified snapshot state transfer; it
// is then made quorum-critical exactly as in the kill/restart scenario.
func TestE2EWipeRejoin(t *testing.T) {
	requireE2E(t)
	r, pool := startE2ECluster(t, e2eConfig(t, true), 2)
	const victim, bystander = 3, 1

	// Enough acked writes to push the stable checkpoint (interval 4) far
	// past the retention slack, forcing the snapshot path for a rejoiner.
	acked := writeKeys(t, pool, 0, 40, "base-", 30*time.Second)

	if err := r.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.Wipe(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitHealthy(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(bystander, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// Quorum now requires the wiped replica: completions prove it
	// installed a snapshot and reached the live head.
	for k, v := range writeKeys(t, pool, 40, 8, "rejoin-", 90*time.Second) {
		acked[k] = v
	}
	verifyKeys(t, pool, acked, 90*time.Second)

	if err := r.Restart(bystander); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitHealthy(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	snap, err := r.ReadMetrics(victim)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SnapshotsInstalled == 0 {
		t.Errorf("wiped replica rejoined without installing a snapshot (metrics: %+v)", snap)
	}
}

// TestE2EPoerunBinary: the poerun binary itself supervises a cluster
// through a kill/restart schedule, shuts it down gracefully at the
// duration, exits 0, and leaves logs plus exit metrics for all replicas.
func TestE2EPoerunBinary(t *testing.T) {
	requireE2E(t)
	runDir := filepath.Join(t.TempDir(), "run")
	cmd := exec.Command(filepath.Join(e2eBinDir, "poerun"),
		"-n", "4",
		"-batch", "8",
		"-run-dir", runDir,
		"-server-bin", filepath.Join(e2eBinDir, "poeserver"),
		"-duration", "4s",
		"-at", "1s:kill:3",
		"-at", "2s:restart:3",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("poerun: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "run complete") {
		t.Fatalf("poerun output missing completion line:\n%s", out)
	}
	for id := 0; id < 4; id++ {
		logPath := filepath.Join(runDir, fmt.Sprintf("replica-%d.log", id))
		if _, err := os.Stat(logPath); err != nil {
			t.Errorf("missing replica log: %v", err)
		}
		metricsPath := filepath.Join(runDir, fmt.Sprintf("replica-%d-metrics.json", id))
		if _, err := os.Stat(metricsPath); err != nil {
			t.Errorf("missing exit metrics: %v", err)
		}
	}
}

// TestE2ELoadSweep: the poeload binary sweeps a live 4-process cluster at
// three offered rates and emits a parseable BENCH_PR8-schema snapshot with
// completions and sane latency quantiles at every point.
func TestE2ELoadSweep(t *testing.T) {
	requireE2E(t)
	cfg := e2eConfig(t, false)
	r, _ := startE2ECluster(t, cfg, 1)
	jsonPath := filepath.Join(t.TempDir(), "BENCH_PR8.json")

	cmd := exec.Command(filepath.Join(e2eBinDir, "poeload"),
		"-peers", strings.Join(r.Addrs(), ","),
		"-seed", cfg.Seed,
		"-rates", "40,80,160",
		"-duration", "800ms",
		"-warmup", "200ms",
		"-clients", "4",
		"-base-client", "100", // clear of the pool startE2ECluster built
		"-records", "200",
		"-json", jsonPath,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("poeload: %v\n%s", err, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("poeload wrote no sweep snapshot: %v\n%s", err, out)
	}
	var res SweepResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("parse %s: %v", jsonPath, err)
	}
	if res.Schema != SweepSchema || res.N != 4 {
		t.Fatalf("bad sweep header: %+v", res)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d sweep points, want 3:\n%s", len(res.Points), out)
	}
	for _, p := range res.Points {
		if p.Completed == 0 {
			t.Errorf("offered %.0f/s completed nothing: %+v", p.OfferedTxnS, p)
		}
		if p.P50Ms <= 0 || p.P99Ms < p.P50Ms || p.P999Ms < p.P99Ms {
			t.Errorf("offered %.0f/s: implausible quantiles p50=%.2f p99=%.2f p999=%.2f",
				p.OfferedTxnS, p.P50Ms, p.P99Ms, p.P999Ms)
		}
		if p.AchievedTxnS <= 0 {
			t.Errorf("offered %.0f/s: zero achieved throughput", p.OfferedTxnS)
		}
	}
	if err := r.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

func readLog(t *testing.T, r *Runner, id int) string {
	t.Helper()
	data, err := os.ReadFile(r.LogPath(id))
	if err != nil {
		t.Fatalf("read replica %d log: %v", id, err)
	}
	return string(data)
}
