package deploy

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HDR-style log-linear latency histogram: each power-of-two
// octave of the value range splits into 64 linear sub-buckets, so any
// recorded value lands in a bucket no wider than 1/64 of its magnitude
// (≤ ~1.6% relative quantile error) while the whole histogram is a fixed
// ~32 KB array — no per-sample allocation, no sorting at read time. That
// is the shape the open-loop driver needs: it records hundreds of
// thousands of latencies from many goroutines and asks for p50/p99/p999
// once, at the end of a sweep point.
//
// Record is safe for concurrent use (atomic adds); the read-side methods
// (Quantile, Count, Mean, Max) take atomic snapshots of each bucket and
// may run concurrently with writers, trading a consistent cut for
// lock-freedom — fine for progress reporting, exact once writers stop.
//
// Values are recorded in nanoseconds as time.Duration and must be
// non-negative; negative values clamp to zero.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // nanoseconds; ~292 years of aggregate latency before overflow
	max    atomic.Int64
}

const (
	histSubBits = 6 // 64 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	// 63-histSubBits octaves above the linear range, histSub buckets each,
	// plus the dense [0,histSub) range.
	histBuckets = (63-histSubBits)*histSub + 2*histSub
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - histSubBits
	sub := int(v >> uint(exp)) // in [histSub, 2*histSub)
	return exp*histSub + sub
}

// histValue returns a representative (mid-bucket) value for a bucket index,
// the value quantiles report.
func histValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := idx/histSub - 1
	sub := int64(idx - exp*histSub)
	lo := sub << uint(exp)
	// Mid-bucket without lo+hi overflow in the top octave: the bucket is
	// exactly 2^exp wide.
	return lo + (int64(1)<<uint(exp))/2
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return int64(h.total.Load()) }

// Mean returns the mean recorded latency (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max returns the largest recorded latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the latency at quantile q ∈ [0,1]: the smallest bucket
// value such that at least ceil(q·count) samples are at or below it. Empty
// histograms return 0.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			return time.Duration(histValue(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Merge folds other's samples into h. Not atomic with respect to concurrent
// writers of either histogram; merge after the workers have stopped.
func (h *Hist) Merge(other *Hist) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}
