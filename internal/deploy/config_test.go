package deploy

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestClusterConfigJSONRoundTrip(t *testing.T) {
	cfg := ClusterConfig{
		Replicas:           4,
		Scheme:             "ed",
		Batch:              32,
		CheckpointInterval: 16,
		ViewTimeout:        Duration(250 * time.Millisecond),
		Seed:               "test-seed",
		DataRoot:           "/tmp/x",
		Fault: FaultProfile{
			Drop:  0.01,
			Delay: Duration(5 * time.Millisecond),
		},
	}
	data, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadClusterConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip mismatch:\n  wrote %+v\n  read  %+v", cfg, back)
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil || time.Duration(d) != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil || time.Duration(d) != time.Millisecond {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Fatal("bad duration string must error")
	}
}

func TestServerArgs(t *testing.T) {
	cfg, err := ClusterConfig{
		Replicas:           4,
		Scheme:             "mac",
		Batch:              16,
		CheckpointInterval: 8,
		DataRoot:           "/data",
		Fsync:              true,
		Fault:              FaultProfile{Drop: 0.05, Delay: Duration(2 * time.Millisecond)},
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{"a:1", "b:2", "c:3", "d:4"}
	args := cfg.serverArgs(2, addrs, "/run/m.json")
	joined := strings.Join(args, " ")
	for _, want := range []string{
		"-id 2", "-peers a:1,b:2,c:3,d:4", "-scheme mac", "-batch 16",
		"-checkpoint-interval 8", "-data-dir /data/replica-2", "-fsync",
		"-metrics-json /run/m.json", "-fault-drop 0.05", "-fault-delay 2ms",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("args missing %q: %s", want, joined)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := (ClusterConfig{Replicas: 3}).withDefaults(); err == nil {
		t.Fatal("3 replicas must be rejected (need n ≥ 4)")
	}
	if _, err := (ClusterConfig{Scheme: "rot13"}).withDefaults(); err == nil {
		t.Fatal("unknown scheme must be rejected")
	}
	cfg, err := ClusterConfig{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 4 || cfg.Scheme != "mac" || cfg.Seed == "" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Explicit addresses fix the replica count.
	cfg, err = ClusterConfig{Replicas: 7, Addrs: []string{"a", "b", "c", "d"}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 4 {
		t.Fatalf("Addrs should pin Replicas to 4, got %d", cfg.Replicas)
	}
}

func TestParseEvent(t *testing.T) {
	ev, err := ParseEvent("2s:kill:3")
	if err != nil {
		t.Fatal(err)
	}
	if ev.At != 2*time.Second || ev.Action != "kill" || ev.Replica != 3 {
		t.Fatalf("parsed %+v", ev)
	}
	if _, err := ParseEvent("2s:defenestrate:3"); err == nil {
		t.Fatal("unknown action must be rejected")
	}
	if _, err := ParseEvent("soon:kill:3"); err == nil {
		t.Fatal("bad offset must be rejected")
	}
	if _, err := ParseEvent("2s:kill"); err == nil {
		t.Fatal("missing replica must be rejected")
	}
	if _, err := ParseEvent("2s:kill:x"); err == nil {
		t.Fatal("non-numeric replica must be rejected")
	}
}

func TestFreePorts(t *testing.T) {
	addrs, err := FreePorts(4)
	if err != nil {
		t.Skipf("sandbox blocks TCP listen: %v", err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate port %s in %v", a, addrs)
		}
		seen[a] = true
	}
}
