package deploy

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistQuantileAccuracy(t *testing.T) {
	// Against an exact sorted-sample baseline, every reported quantile must
	// land within the log-linear design error (1/64 relative) of the true
	// order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Hist
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades: exercises many octaves.
		v := int64(1 + rng.ExpFloat64()*float64(rng.Intn(1_000_000)+1))
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(len(samples))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		exact := float64(samples[idx])
		got := float64(h.Quantile(q))
		if relErr := (got - exact) / exact; relErr > 0.04 || relErr < -0.04 {
			t.Errorf("q=%v: hist %v vs exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if h.Count() != 20000 {
		t.Errorf("count %d, want 20000", h.Count())
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back into that bucket,
	// and indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := histIndex(v)
		if idx <= prev && v != 0 {
			// Not strictly increasing across arbitrary gaps, but never
			// decreasing.
			if idx < prev {
				t.Errorf("histIndex(%d)=%d < previous %d", v, idx, prev)
			}
		}
		prev = idx
		rep := histValue(idx)
		if histIndex(rep) != idx {
			t.Errorf("value %d: bucket %d, representative %d maps to bucket %d",
				v, idx, rep, histIndex(rep))
		}
		if idx >= histBuckets {
			t.Fatalf("histIndex(%d)=%d out of range %d", v, idx, histBuckets)
		}
	}
}

func TestHistEmptyAndClamp(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	h.Record(-time.Second) // clamps to 0
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative sample should clamp to zero: count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
}

func TestHistMergeAndConcurrency(t *testing.T) {
	var a, b Hist
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				a.Record(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	for i := 1; i <= 1000; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 5000 {
		t.Fatalf("merged count %d, want 5000", a.Count())
	}
	if got := a.Quantile(0.5); got < 480*time.Microsecond || got > 520*time.Microsecond {
		t.Fatalf("merged p50 %v, want ≈500µs", got)
	}
	if a.Max() != 1000*time.Microsecond {
		t.Fatalf("merged max %v", a.Max())
	}
}
