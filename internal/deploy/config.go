// Package deploy is the multi-process deployment layer: a config-driven
// cluster runner that launches real poeserver processes (os/exec), health
// checks them, forwards signals for graceful shutdown, collects their logs
// and exit metrics, and can kill / restart / wipe a named replica mid-run —
// the process-level analogue of the in-process harness scenarios
// (crash-restart, cold rejoin). The package also carries the open-loop load
// driver (load.go): Poisson arrivals at a target offered rate with an
// HDR-style latency histogram (hist.go), the methodology behind
// cmd/poeload's p50/p99/p999-vs-offered-load sweeps.
//
// cmd/poerun and cmd/poeload are thin flag shells over this package; the
// process-level e2e battery (e2e_test.go) drives the same Runner against
// real binaries built by the test itself.
package deploy

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("150ms", "2s") in JSON cluster configs.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting either a duration
// string or a bare number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("deploy: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("deploy: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// FaultProfile mirrors poeserver's -fault-* flags: a WAN emulation profile
// applied to every replica's outbound links through the chaos fabric
// (network.FaultNet). The zero value arms nothing.
type FaultProfile struct {
	Drop      float64  `json:"drop,omitempty"`
	Duplicate float64  `json:"duplicate,omitempty"`
	Reorder   float64  `json:"reorder,omitempty"`
	Delay     Duration `json:"delay,omitempty"`
	Jitter    Duration `json:"jitter,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
}

// IsZero reports whether the profile arms any fault.
func (p FaultProfile) IsZero() bool {
	return p.Drop == 0 && p.Duplicate == 0 && p.Reorder == 0 &&
		p.Delay == 0 && p.Jitter == 0
}

// args renders the profile as poeserver flags.
func (p FaultProfile) args() []string {
	if p.IsZero() {
		return nil
	}
	a := []string{
		"-fault-drop", fmt.Sprint(p.Drop),
		"-fault-dup", fmt.Sprint(p.Duplicate),
		"-fault-reorder", fmt.Sprint(p.Reorder),
		"-fault-delay", time.Duration(p.Delay).String(),
		"-fault-jitter", time.Duration(p.Jitter).String(),
	}
	if p.Seed != 0 {
		a = append(a, "-fault-seed", strconv.FormatInt(p.Seed, 10))
	}
	return a
}

// ClusterConfig describes one multi-process cluster: how many replicas,
// where they listen, how they are tuned, where their state and logs live,
// and which fault profile (if any) shapes their links. It loads from JSON
// (LoadClusterConfig) or is built by flags in cmd/poerun.
type ClusterConfig struct {
	// Replicas is the cluster size (n). Ignored when Addrs is set.
	Replicas int `json:"replicas,omitempty"`
	// Addrs lists explicit listen addresses, index = replica id. Empty
	// means "allocate free 127.0.0.1 ports at Start".
	Addrs []string `json:"addrs,omitempty"`
	// F is the fault tolerance; 0 means (n-1)/3.
	F int `json:"f,omitempty"`
	// Scheme is the authentication scheme: mac|ts|ed|none (default mac).
	Scheme string `json:"scheme,omitempty"`
	// Batch is the proposal batch size (default: poeserver's default).
	Batch int `json:"batch,omitempty"`
	// CheckpointInterval, Window, and ViewTimeout tune the protocol; zero
	// leaves poeserver's defaults.
	CheckpointInterval int      `json:"checkpoint_interval,omitempty"`
	Window             int      `json:"window,omitempty"`
	ViewTimeout        Duration `json:"view_timeout,omitempty"`
	// Seed is the shared deterministic key-ring seed.
	Seed string `json:"seed,omitempty"`
	// DataRoot, when set, gives each replica a durable data directory
	// (DataRoot/replica-<id>) — required for crash-restart and wipe-rejoin
	// scenarios. Empty runs the cluster volatile.
	DataRoot string `json:"data_root,omitempty"`
	// Fsync makes the WAL fsync on commit.
	Fsync bool `json:"fsync,omitempty"`
	// Fault is the WAN-emulation profile forwarded as -fault-* flags.
	Fault FaultProfile `json:"fault,omitempty"`
	// ServerBin is the poeserver binary to launch. Empty resolves, in
	// order: a "poeserver" next to the calling executable, then $PATH.
	ServerBin string `json:"server_bin,omitempty"`
	// RunDir collects per-replica stdout logs and exit-metrics JSON. Empty
	// means a fresh temp directory (reported by Runner.RunDir).
	RunDir string `json:"run_dir,omitempty"`
	// ExtraArgs are appended verbatim to every replica's command line.
	ExtraArgs []string `json:"extra_args,omitempty"`
}

// LoadClusterConfig reads a JSON ClusterConfig from path.
func LoadClusterConfig(path string) (ClusterConfig, error) {
	var cfg ClusterConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("deploy: parse %s: %w", path, err)
	}
	return cfg, nil
}

// withDefaults validates and completes the config.
func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	if len(c.Addrs) > 0 {
		c.Replicas = len(c.Addrs)
	}
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.Replicas < 4 {
		return c, fmt.Errorf("deploy: need at least 4 replicas, got %d", c.Replicas)
	}
	if c.Scheme == "" {
		c.Scheme = "mac"
	}
	switch c.Scheme {
	case "mac", "ts", "ed", "none":
	default:
		return c, fmt.Errorf("deploy: unknown scheme %q", c.Scheme)
	}
	if c.Seed == "" {
		c.Seed = "poe-demo-seed"
	}
	return c, nil
}

// serverArgs builds replica id's poeserver command line.
func (c ClusterConfig) serverArgs(id int, addrs []string, metricsPath string) []string {
	args := []string{
		"-id", strconv.Itoa(id),
		"-peers", strings.Join(addrs, ","),
		"-scheme", c.Scheme,
		"-seed", c.Seed,
	}
	if c.F > 0 {
		args = append(args, "-f", strconv.Itoa(c.F))
	}
	if c.Batch > 0 {
		args = append(args, "-batch", strconv.Itoa(c.Batch))
	}
	if c.CheckpointInterval > 0 {
		args = append(args, "-checkpoint-interval", strconv.Itoa(c.CheckpointInterval))
	}
	if c.Window > 0 {
		args = append(args, "-window", strconv.Itoa(c.Window))
	}
	if c.ViewTimeout > 0 {
		args = append(args, "-view-timeout", time.Duration(c.ViewTimeout).String())
	}
	if c.DataRoot != "" {
		args = append(args, "-data-dir", filepath.Join(c.DataRoot, fmt.Sprintf("replica-%d", id)))
	}
	if c.Fsync {
		args = append(args, "-fsync")
	}
	if metricsPath != "" {
		args = append(args, "-metrics-json", metricsPath)
	}
	args = append(args, c.Fault.args()...)
	args = append(args, c.ExtraArgs...)
	return args
}

// resolveServerBin locates the poeserver binary per ClusterConfig.ServerBin.
func (c ClusterConfig) resolveServerBin() (string, error) {
	if c.ServerBin != "" {
		return c.ServerBin, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "poeserver")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("poeserver"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("deploy: poeserver binary not found (set ServerBin / -server-bin)")
}

// FreePorts reserves n distinct 127.0.0.1 TCP ports by binding and
// releasing ephemeral listeners. The usual race applies — another process
// may grab a port between release and reuse — so callers launching on these
// addresses should treat a bind failure as retryable.
func FreePorts(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("deploy: allocate port: %w", err)
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
