package deploy

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// Submitter is the client surface the load driver needs; *client.Client
// satisfies it (via ClusterClient), and tests can substitute fakes.
type Submitter interface {
	SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error)
	NextSeq() uint64
}

// TieredReader is the optional fast-read surface of a submitter
// (*client.Client satisfies it). When the workload tags a read-only
// transaction SPECULATIVE or STRONG and the submitter supports it, the
// driver routes it here instead of through ordering; otherwise the tag is
// dropped and the read orders like any write.
type TieredReader interface {
	ReadTxn(ctx context.Context, txn types.Transaction) (client.ReadAnswer, error)
	NextReadSeq() uint64
}

// LoadClient pairs a submitter with the client identity its transactions
// must carry.
type LoadClient struct {
	ID  types.ClientID
	Sub Submitter
}

// LoadOptions parameterize one open-loop measurement point.
//
// Open vs closed loop: the harness's closed-loop clients wait for each
// reply before sending the next request, so when the cluster slows down the
// offered load politely slows with it and queueing collapse is invisible.
// This driver is open-loop — arrivals fire on a Poisson schedule at the
// target rate whether or not earlier requests completed — and latency is
// measured from each request's *scheduled arrival time*, so time spent
// queueing behind a saturated cluster is charged to the request
// (coordinated omission is not possible by construction). Poisson arrivals
// rather than a fixed-interval ticker because p999 is a tail statistic:
// bursts are what expose it, and exponential inter-arrival gaps produce the
// bursts a uniform ticker never would.
type LoadOptions struct {
	// Rate is the offered load in transactions per second.
	Rate float64
	// Duration is the measured window; Warmup precedes it unmeasured.
	Duration time.Duration
	Warmup   time.Duration
	// MaxInFlight bounds concurrently outstanding requests; an arrival that
	// finds the bound exhausted is shed (counted, not sent) rather than
	// blocking the arrival process — blocking would silently turn the
	// driver closed-loop exactly when the measurement matters most.
	// Default 4096.
	MaxInFlight int
	// RequestTimeout bounds one request (the client retransmits within it).
	// Timed-out requests count as errors. Default 15s.
	RequestTimeout time.Duration
	// Workload generates the transaction mix (default: paper YCSB config
	// over 1000 records).
	Workload workload.Config
	// Seed drives the arrival process.
	Seed int64
}

func (o LoadOptions) withDefaults() (LoadOptions, error) {
	if o.Rate <= 0 {
		return o, fmt.Errorf("deploy: load rate must be positive, got %v", o.Rate)
	}
	if o.Duration <= 0 {
		return o, fmt.Errorf("deploy: load duration must be positive, got %v", o.Duration)
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 4096
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 15 * time.Second
	}
	if o.Workload.Records == 0 {
		o.Workload = workload.DefaultConfig(1000)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// LoadPoint is one sweep point's result: offered vs achieved throughput and
// the latency distribution, in the units BENCH_PR8.json reports.
type LoadPoint struct {
	OfferedTxnS  float64 `json:"offered_txn_s"`
	AchievedTxnS float64 `json:"achieved_txn_s"`
	DurationS    float64 `json:"duration_s"`
	Sent         int64   `json:"sent"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	MeanMs       float64 `json:"mean_ms"`
	MaxMs        float64 `json:"max_ms"`
	// Tiered reads completed via the fast read path, and how many of those
	// were answered through ordering anyway (lease lapse, wrong replica).
	Reads         int64 `json:"reads,omitempty"`
	ReadsFallback int64 `json:"reads_fallback,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// RunLoad drives one open-loop measurement point against the cluster
// behind clients. Arrivals round-robin across the clients (each client
// keeps its own deterministic workload generator); the call returns once
// every in-flight request has completed, errored, or timed out.
func RunLoad(ctx context.Context, clients []LoadClient, opts LoadOptions) (LoadPoint, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return LoadPoint{}, err
	}
	if len(clients) == 0 {
		return LoadPoint{}, fmt.Errorf("deploy: no load clients")
	}
	gens := make([]*workload.Generator, len(clients))
	for i, c := range clients {
		gens[i] = workload.NewGenerator(opts.Workload, c.ID)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var (
		hist          Hist
		sent          atomic.Int64
		completed     atomic.Int64
		errors        atomic.Int64
		reads         atomic.Int64
		readsFallback atomic.Int64
		shed          int64
		wg            sync.WaitGroup
	)
	sem := make(chan struct{}, opts.MaxInFlight)

	start := time.Now()
	measureStart := start.Add(opts.Warmup)
	end := measureStart.Add(opts.Duration)
	next := start
	for i := 0; ; i++ {
		if ctx.Err() != nil {
			break
		}
		now := time.Now()
		if now.After(end) {
			break
		}
		if wait := next.Sub(now); wait > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
			continue
		}
		// One arrival is due. Generate on the dispatcher goroutine (the
		// generators are not concurrency-safe), then hand off.
		ci := i % len(clients)
		arrival := next
		measured := !arrival.Before(measureStart)
		// Schedule the following arrival before dispatching: Poisson
		// inter-arrival gaps, independent of how long dispatch takes.
		next = next.Add(time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second)))

		select {
		case sem <- struct{}{}:
		default:
			if measured {
				shed++
			}
			continue
		}
		txn := gens[ci].Next()
		sub := clients[ci].Sub
		rd, tiered := sub.(TieredReader)
		tiered = tiered && txn.Consistency != types.ConsistencyOrdered
		if tiered {
			txn.Seq = rd.NextReadSeq()
		} else {
			txn.Consistency = types.ConsistencyOrdered
			txn.Seq = sub.NextSeq()
		}
		if measured {
			sent.Add(1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sctx, cancel := context.WithTimeout(ctx, opts.RequestTimeout)
			defer cancel()
			var err error
			if tiered {
				var ans client.ReadAnswer
				ans, err = rd.ReadTxn(sctx, txn)
				if err == nil && measured {
					reads.Add(1)
					if ans.Fallback {
						readsFallback.Add(1)
					}
				}
			} else {
				_, err = sub.SubmitTxn(sctx, txn)
			}
			if !measured {
				return
			}
			if err != nil {
				errors.Add(1)
				return
			}
			completed.Add(1)
			// Latency from the scheduled arrival, not the send: queueing
			// delay accumulated behind a saturated cluster is part of what
			// an open-loop observer experiences.
			hist.Record(time.Since(arrival))
		}()
	}
	wg.Wait()

	elapsed := opts.Duration.Seconds()
	point := LoadPoint{
		OfferedTxnS:   opts.Rate,
		AchievedTxnS:  float64(completed.Load()) / elapsed,
		DurationS:     elapsed,
		Sent:          sent.Load(),
		Completed:     completed.Load(),
		Errors:        errors.Load(),
		Shed:          shed,
		P50Ms:         ms(hist.Quantile(0.50)),
		P99Ms:         ms(hist.Quantile(0.99)),
		P999Ms:        ms(hist.Quantile(0.999)),
		MeanMs:        ms(hist.Mean()),
		MaxMs:         ms(hist.Max()),
		Reads:         reads.Load(),
		ReadsFallback: readsFallback.Load(),
	}
	return point, ctx.Err()
}

// SweepResult is the machine-readable sweep snapshot cmd/poeload emits
// (BENCH_PR8.json): one LoadPoint per offered rate, plus enough
// configuration to reproduce the run.
type SweepResult struct {
	Schema   string  `json:"schema"`
	N        int     `json:"n"`
	Scheme   string  `json:"scheme"`
	Clients  int     `json:"clients"`
	Records  int     `json:"records"`
	WriteMix float64 `json:"write_fraction"`
	// Consistency mix of read-only transactions (workload.Config).
	SpecMix   float64     `json:"speculative_fraction,omitempty"`
	StrongMix float64     `json:"strong_fraction,omitempty"`
	Points    []LoadPoint `json:"points"`
}

// SweepSchema identifies the BENCH_PR8.json format.
const SweepSchema = "poe-load-sweep-1"

// RunSweep measures each offered rate in turn over the same client pool,
// reporting the points completed so far even on error (so a sweep that dies
// at the highest rate still yields its lower points).
func RunSweep(ctx context.Context, clients []LoadClient, rates []float64, opts LoadOptions, progress func(LoadPoint)) ([]LoadPoint, error) {
	points := make([]LoadPoint, 0, len(rates))
	for _, rate := range rates {
		opts.Rate = rate
		p, err := RunLoad(ctx, clients, opts)
		if err != nil {
			return points, err
		}
		points = append(points, p)
		if progress != nil {
			progress(p)
		}
	}
	return points, nil
}
