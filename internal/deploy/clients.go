package deploy

import (
	"context"
	"fmt"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// SchemeFromName maps a cluster config scheme name to the crypto scheme.
func SchemeFromName(name string) (crypto.Scheme, error) {
	switch name {
	case "mac":
		return crypto.SchemeMAC, nil
	case "ts":
		return crypto.SchemeTS, nil
	case "ed":
		return crypto.SchemeED, nil
	case "none":
		return crypto.SchemeNone, nil
	default:
		return 0, fmt.Errorf("deploy: unknown scheme %q", name)
	}
}

// ClientPoolOptions configure NewTCPClients.
type ClientPoolOptions struct {
	// Addrs are the replica addresses, index = replica id.
	Addrs []string
	// Scheme is the cluster scheme name (mac|ts|ed|none).
	Scheme string
	// Seed is the shared key-ring seed.
	Seed string
	// Count is the number of clients (default 1).
	Count int
	// BaseIndex offsets the client identities so concurrent pools (e.g.
	// parallel tests against one cluster) do not collide.
	BaseIndex int
	// Timeout is the per-client retransmission timeout (default 500ms).
	Timeout time.Duration
	// Listen is the clients' bind address (default "127.0.0.1:0").
	Listen string
}

// NewTCPClients builds a pool of protocol clients over real TCP transports
// against a multi-process cluster — the client side cmd/poeload and the e2e
// battery share. The returned close function shuts every transport down;
// ctx bounds the clients' reply loops.
func NewTCPClients(ctx context.Context, opts ClientPoolOptions) ([]LoadClient, func(), error) {
	n := len(opts.Addrs)
	if n < 4 {
		return nil, nil, fmt.Errorf("deploy: need at least 4 replicas, got %d", n)
	}
	if opts.Count == 0 {
		opts.Count = 1
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	scheme, err := SchemeFromName(opts.Scheme)
	if err != nil {
		return nil, nil, err
	}
	// Clients sign requests with Ed25519 under every scheme but none; the
	// reply MAC check likewise keys off the scheme (see client.Config).
	clientScheme := crypto.SchemeMAC
	if scheme == crypto.SchemeNone {
		clientScheme = crypto.SchemeNone
	}
	ring := crypto.NewKeyRing(n, []byte(opts.Seed))
	f := (n - 1) / 3

	var pool []LoadClient
	var transports []*network.TCPNet
	closeAll := func() {
		for _, tr := range transports {
			tr.Close()
		}
	}
	for i := 0; i < opts.Count; i++ {
		id := types.ClientID(types.ClientIDBase) + types.ClientID(opts.BaseIndex+i)
		peers := make(map[types.NodeID]string, n+1)
		for r, a := range opts.Addrs {
			peers[types.ReplicaNode(types.ReplicaID(r))] = a
		}
		peers[types.ClientNode(id)] = opts.Listen
		tr, err := network.NewTCPNet(types.ClientNode(id), peers)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("deploy: client %d transport: %w", i, err)
		}
		transports = append(transports, tr)
		cl, err := client.New(client.Config{
			ID: id, N: n, F: f, Scheme: clientScheme,
			Timeout: opts.Timeout,
		}, ring, tr)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		cl.Start(ctx)
		pool = append(pool, LoadClient{ID: id, Sub: cl})
	}
	return pool, closeAll, nil
}
