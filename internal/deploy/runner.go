package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
)

// Runner owns one multi-process cluster: it launches a poeserver process
// per replica, tracks their lifecycles, and exposes the kill / restart /
// wipe operations the process-level crash and cold-rejoin scenarios are
// built from. All methods are safe for concurrent use.
//
// Lifecycle contract: Start spawns the processes and returns; call
// WaitHealthy before offering load. Shutdown SIGTERMs every live replica
// (poeserver's graceful path: stop the event loop, flush the WAL group,
// close listeners, dump metrics) and escalates to SIGKILL only past the
// grace deadline, so a clean run ends with every replica's exit-metrics
// JSON on disk.
type Runner struct {
	cfg    ClusterConfig
	bin    string
	addrs  []string
	runDir string

	mu    sync.Mutex
	procs []*replicaProc
}

// replicaProc is one replica slot; launch replaces its fields on restart.
type replicaProc struct {
	id      int
	cmd     *exec.Cmd
	logFile *os.File
	exited  chan struct{} // closed when Wait returns
	waitErr error         // valid after exited closes
}

// Start launches the cluster described by cfg. On error, any replicas
// already launched are killed.
func Start(cfg ClusterConfig) (*Runner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	bin, err := cfg.resolveServerBin()
	if err != nil {
		return nil, err
	}
	runDir := cfg.RunDir
	if runDir == "" {
		runDir, err = os.MkdirTemp("", "poerun-*")
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(runDir, 0o755); err != nil {
		return nil, err
	}
	addrs := cfg.Addrs
	if len(addrs) == 0 {
		addrs, err = FreePorts(cfg.Replicas)
		if err != nil {
			return nil, err
		}
	}
	if cfg.DataRoot != "" {
		if err := os.MkdirAll(cfg.DataRoot, 0o755); err != nil {
			return nil, err
		}
	}
	r := &Runner{
		cfg:    cfg,
		bin:    bin,
		addrs:  addrs,
		runDir: runDir,
		procs:  make([]*replicaProc, cfg.Replicas),
	}
	for id := 0; id < cfg.Replicas; id++ {
		if err := r.launch(id); err != nil {
			r.killAll()
			return nil, err
		}
	}
	return r, nil
}

// Addrs returns the replica listen addresses, index = replica id.
func (r *Runner) Addrs() []string { return append([]string(nil), r.addrs...) }

// RunDir returns the directory holding per-replica logs and exit metrics.
func (r *Runner) RunDir() string { return r.runDir }

// N returns the cluster size.
func (r *Runner) N() int { return len(r.addrs) }

// LogPath returns replica id's stdout+stderr log file (appended across
// restarts, so one file tells the replica's whole story).
func (r *Runner) LogPath(id int) string {
	return filepath.Join(r.runDir, fmt.Sprintf("replica-%d.log", id))
}

// MetricsPath returns the file replica id dumps its exit metrics to.
func (r *Runner) MetricsPath(id int) string {
	return filepath.Join(r.runDir, fmt.Sprintf("replica-%d-metrics.json", id))
}

// DataDir returns replica id's durable data directory ("" when volatile).
func (r *Runner) DataDir(id int) string {
	if r.cfg.DataRoot == "" {
		return ""
	}
	return filepath.Join(r.cfg.DataRoot, fmt.Sprintf("replica-%d", id))
}

// launch starts (or restarts) replica id's process. Caller must not hold
// r.mu.
func (r *Runner) launch(id int) error {
	if id < 0 || id >= len(r.addrs) {
		return fmt.Errorf("deploy: replica %d out of range [0,%d)", id, len(r.addrs))
	}
	logFile, err := os.OpenFile(r.LogPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	args := r.cfg.serverArgs(id, r.addrs, r.MetricsPath(id))
	cmd := exec.Command(r.bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("deploy: start replica %d: %w", id, err)
	}
	p := &replicaProc{id: id, cmd: cmd, logFile: logFile, exited: make(chan struct{})}
	go func() {
		p.waitErr = cmd.Wait()
		logFile.Close()
		close(p.exited)
	}()
	r.mu.Lock()
	r.procs[id] = p
	r.mu.Unlock()
	return nil
}

// current returns replica id's latest launch, nil if never launched.
func (r *Runner) current(id int) *replicaProc {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.procs) {
		return nil
	}
	return r.procs[id]
}

// Alive reports whether replica id's process is currently running.
func (r *Runner) Alive(id int) bool {
	p := r.current(id)
	if p == nil {
		return false
	}
	select {
	case <-p.exited:
		return false
	default:
		return true
	}
}

// WaitHealthy polls until every replica accepts TCP connections, failing
// fast if any process exits early and failing with the laggards named when
// the deadline passes. No fixed sleeps: a healthy cluster clears this in a
// few poll rounds.
func (r *Runner) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	healthy := make([]bool, len(r.addrs))
	for {
		all := true
		for id, addr := range r.addrs {
			if healthy[id] {
				continue
			}
			if p := r.current(id); p != nil {
				select {
				case <-p.exited:
					return fmt.Errorf("deploy: replica %d exited during startup (%v)\n%s",
						id, p.waitErr, r.TailLog(id, 10))
				default:
				}
			}
			conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
			if err != nil {
				all = false
				continue
			}
			conn.Close()
			healthy[id] = true
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			var lag []string
			for id, ok := range healthy {
				if !ok {
					lag = append(lag, strconv.Itoa(id))
				}
			}
			return fmt.Errorf("deploy: replicas %s not accepting connections after %v",
				strings.Join(lag, ","), timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Stop SIGTERMs replica id and waits up to grace for a clean exit,
// escalating to SIGKILL past the deadline. It returns the process's wait
// error: nil means the replica took the graceful path and exited 0.
func (r *Runner) Stop(id int, grace time.Duration) error {
	p := r.current(id)
	if p == nil {
		return fmt.Errorf("deploy: replica %d never launched", id)
	}
	select {
	case <-p.exited:
		return p.waitErr
	default:
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		// Exited between the check and the signal.
		<-p.exited
		return p.waitErr
	}
	select {
	case <-p.exited:
		return p.waitErr
	case <-time.After(grace):
		p.cmd.Process.Kill()
		<-p.exited
		return fmt.Errorf("deploy: replica %d ignored SIGTERM for %v, killed", id, grace)
	}
}

// Kill crash-stops replica id (SIGKILL, no flush, no metrics dump) and
// waits for the process to reap — the process-level analogue of the
// harness's crash fault.
func (r *Runner) Kill(id int) error {
	p := r.current(id)
	if p == nil {
		return fmt.Errorf("deploy: replica %d never launched", id)
	}
	select {
	case <-p.exited:
		return nil
	default:
	}
	p.cmd.Process.Kill()
	<-p.exited
	return nil
}

// Restart relaunches replica id with its original flags (same address,
// same data directory). The previous process must have exited.
func (r *Runner) Restart(id int) error {
	if p := r.current(id); p != nil {
		select {
		case <-p.exited:
		default:
			return fmt.Errorf("deploy: replica %d still running; Stop or Kill it first", id)
		}
	}
	return r.launch(id)
}

// Wipe removes replica id's data directory — the cold-rejoin scenario's
// disk loss. The replica must be down and the cluster durable.
func (r *Runner) Wipe(id int) error {
	if r.Alive(id) {
		return fmt.Errorf("deploy: refusing to wipe running replica %d", id)
	}
	dir := r.DataDir(id)
	if dir == "" {
		return fmt.Errorf("deploy: cluster is volatile (no DataRoot); nothing to wipe")
	}
	return os.RemoveAll(dir)
}

// Shutdown gracefully stops every live replica in parallel (SIGTERM, grace
// deadline, SIGKILL escalation) and reports the first failure. After a nil
// return, every replica exited cleanly and its exit-metrics JSON is on
// disk.
func (r *Runner) Shutdown(grace time.Duration) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.addrs))
	for id := range r.addrs {
		if !r.Alive(id) {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = r.Stop(id, grace)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			return fmt.Errorf("deploy: replica %d shutdown: %w\n%s", id, err, r.TailLog(id, 10))
		}
	}
	return nil
}

// killAll hard-kills everything; used on failed startup.
func (r *Runner) killAll() {
	for id := range r.addrs {
		if r.current(id) != nil {
			r.Kill(id)
		}
	}
}

// ReadMetrics parses replica id's exit-metrics JSON (written by poeserver
// on graceful shutdown).
func (r *Runner) ReadMetrics(id int) (protocol.MetricsSnapshot, error) {
	var snap protocol.MetricsSnapshot
	data, err := os.ReadFile(r.MetricsPath(id))
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("deploy: parse %s: %w", r.MetricsPath(id), err)
	}
	return snap, nil
}

// TailLog returns the last n lines of replica id's log, for error context.
func (r *Runner) TailLog(id int, n int) string {
	data, err := os.ReadFile(r.LogPath(id))
	if err != nil {
		return ""
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// Event is one scheduled process-fault action in a poerun scenario:
// at offset At, apply Action to replica Replica.
type Event struct {
	At      time.Duration
	Action  string // kill | stop | restart | wipe-restart
	Replica int
}

// ParseEvent parses poerun's "-at" flag syntax: "<offset>:<action>:<id>",
// e.g. "2s:kill:3" or "5s:wipe-restart:3".
func ParseEvent(s string) (Event, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Event{}, fmt.Errorf("deploy: event %q: want <offset>:<action>:<replica>", s)
	}
	at, err := time.ParseDuration(parts[0])
	if err != nil {
		return Event{}, fmt.Errorf("deploy: event %q: bad offset: %w", s, err)
	}
	switch parts[1] {
	case "kill", "stop", "restart", "wipe-restart":
	default:
		return Event{}, fmt.Errorf("deploy: event %q: unknown action %q (kill|stop|restart|wipe-restart)", s, parts[1])
	}
	id, err := strconv.Atoi(parts[2])
	if err != nil {
		return Event{}, fmt.Errorf("deploy: event %q: bad replica id: %w", s, err)
	}
	return Event{At: at, Action: parts[1], Replica: id}, nil
}

// Apply executes one scheduled event against the cluster.
func (r *Runner) Apply(ev Event) error {
	switch ev.Action {
	case "kill":
		return r.Kill(ev.Replica)
	case "stop":
		return r.Stop(ev.Replica, 10*time.Second)
	case "restart":
		return r.Restart(ev.Replica)
	case "wipe-restart":
		if r.Alive(ev.Replica) {
			if err := r.Kill(ev.Replica); err != nil {
				return err
			}
		}
		if err := r.Wipe(ev.Replica); err != nil {
			return err
		}
		return r.Restart(ev.Replica)
	default:
		return fmt.Errorf("deploy: unknown action %q", ev.Action)
	}
}

// RunSchedule sleeps through the events in order (offsets are absolute from
// start) and applies each, stopping early when ctx ends. Events must be
// sorted by At.
func (r *Runner) RunSchedule(ctx context.Context, start time.Time, events []Event) error {
	for _, ev := range events {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		if err := r.Apply(ev); err != nil {
			return fmt.Errorf("deploy: event %v:%s:%d: %w", ev.At, ev.Action, ev.Replica, err)
		}
	}
	return nil
}
