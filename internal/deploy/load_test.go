package deploy

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// fakeSubmitter models a cluster with a fixed service latency.
type fakeSubmitter struct {
	id      types.ClientID
	latency time.Duration
	seq     atomic.Uint64
	calls   atomic.Int64
}

func (f *fakeSubmitter) NextSeq() uint64 { return f.seq.Add(1) }

func (f *fakeSubmitter) SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error) {
	f.calls.Add(1)
	if txn.Client != f.id {
		panic("transaction routed to the wrong client")
	}
	select {
	case <-ctx.Done():
		return types.Result{}, ctx.Err()
	case <-time.After(f.latency):
		return types.Result{Client: txn.Client, Seq: txn.Seq}, nil
	}
}

func fakePool(n int, latency time.Duration) []LoadClient {
	pool := make([]LoadClient, n)
	for i := range pool {
		id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
		pool[i] = LoadClient{ID: id, Sub: &fakeSubmitter{id: id, latency: latency}}
	}
	return pool
}

func TestRunLoadOpenLoopRate(t *testing.T) {
	// At 500/s offered with 2ms service time and a wide in-flight bound,
	// the driver must achieve ≈ the offered rate and report ≈ service-time
	// latency: open loop means throughput is set by arrivals, not by the
	// completion round-trip.
	pool := fakePool(4, 2*time.Millisecond)
	p, err := RunLoad(context.Background(), pool, LoadOptions{
		Rate:     500,
		Duration: 1500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Workload: workload.DefaultConfig(100),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Errors != 0 || p.Shed != 0 {
		t.Fatalf("unexpected errors=%d shed=%d", p.Errors, p.Shed)
	}
	if p.AchievedTxnS < 0.8*p.OfferedTxnS || p.AchievedTxnS > 1.2*p.OfferedTxnS {
		t.Fatalf("achieved %.0f/s vs offered %.0f/s: open-loop driver not holding its rate",
			p.AchievedTxnS, p.OfferedTxnS)
	}
	if p.P50Ms < 1.5 || p.P50Ms > 20 {
		t.Fatalf("p50 %.2fms implausible for a 2ms service time", p.P50Ms)
	}
	if p.P999Ms < p.P99Ms || p.P99Ms < p.P50Ms {
		t.Fatalf("quantiles not monotone: p50=%.2f p99=%.2f p999=%.2f", p.P50Ms, p.P99Ms, p.P999Ms)
	}
}

func TestRunLoadShedsWhenSaturated(t *testing.T) {
	// 1 in-flight slot and a service time far above the inter-arrival gap:
	// an open-loop driver must shed arrivals, not block the arrival process
	// (blocking would silently degrade to closed loop).
	pool := fakePool(1, 50*time.Millisecond)
	p, err := RunLoad(context.Background(), pool, LoadOptions{
		Rate:        300,
		Duration:    500 * time.Millisecond,
		MaxInFlight: 1,
		Workload:    workload.DefaultConfig(100),
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shed == 0 {
		t.Fatalf("saturated run shed nothing: %+v", p)
	}
	if p.Completed == 0 {
		t.Fatalf("saturated run completed nothing: %+v", p)
	}
	if p.AchievedTxnS > 0.25*p.OfferedTxnS {
		t.Fatalf("achieved %.0f/s should collapse far below offered %.0f/s", p.AchievedTxnS, p.OfferedTxnS)
	}
}

func TestRunSweepCollectsPoints(t *testing.T) {
	pool := fakePool(2, time.Millisecond)
	var seen []float64
	points, err := RunSweep(context.Background(), pool, []float64{100, 200}, LoadOptions{
		Duration: 300 * time.Millisecond,
		Workload: workload.DefaultConfig(100),
		Seed:     3,
	}, func(p LoadPoint) { seen = append(seen, p.OfferedTxnS) })
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(seen) != 2 {
		t.Fatalf("got %d points, %d progress calls; want 2 each", len(points), len(seen))
	}
	if points[0].OfferedTxnS != 100 || points[1].OfferedTxnS != 200 {
		t.Fatalf("points out of order: %+v", points)
	}
	// The sweep snapshot must round-trip as JSON (the BENCH_PR8 contract).
	res := SweepResult{Schema: SweepSchema, N: 4, Scheme: "mac", Points: points}
	data, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SweepSchema || len(back.Points) != 2 {
		t.Fatalf("sweep JSON did not round-trip: %s", data)
	}
}

func TestRunLoadValidation(t *testing.T) {
	pool := fakePool(1, 0)
	if _, err := RunLoad(context.Background(), pool, LoadOptions{Duration: time.Second}); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := RunLoad(context.Background(), pool, LoadOptions{Rate: 10}); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := RunLoad(context.Background(), nil, LoadOptions{Rate: 10, Duration: time.Second}); err == nil {
		t.Fatal("empty client pool must be rejected")
	}
}

func TestRunLoadContextCancel(t *testing.T) {
	pool := fakePool(1, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunLoad(ctx, pool, LoadOptions{
			Rate: 100, Duration: time.Hour,
			Workload: workload.DefaultConfig(100),
		})
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunLoad did not return after context cancellation")
	}
}
