package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// WAL record framing: every record is
//
//	[4-byte big-endian payload length][4-byte CRC-32C of payload][payload]
//
// where the payload is one format byte followed by the record body:
// formatWire2 (0x02) marks the current hand-written wire codec of
// types.ExecRecord (types/wire.go) — the only format the append path writes.
// formatWire (0x01) marked the same codec before transactions carried a
// consistency-tier byte; its records no longer decode under the current
// layout and recovery refuses them explicitly rather than mis-decoding.
// Payloads whose first byte is anything else are the version-0 gob encoding
// from before the codec existed and are decoded by the recovery fallback
// (legacy.go); the discrimination is sound because a gob stream opens with a
// type-definition message whose leading length byte is tens of bytes, never a
// small format byte (see legacy.go). The framing gives the log two properties
// crash recovery depends on:
//
//   - A torn final record — the tail the process was writing when it died,
//     cut at an arbitrary byte — is recognized (the remaining bytes are
//     shorter than the header, or shorter than the declared length) and
//     tolerated: replay stops at the last complete record and the tail is
//     truncated away before the log is reopened for appends.
//   - Corruption anywhere else — a bit flip inside a complete record — fails
//     the CRC and is reported as ErrCorrupt; the replica must not silently
//     replay damaged history.
const walHeaderSize = 8

// formatWire is the payload format byte of wire-codec snapshots and of WAL
// records written before transactions carried a consistency tier; formatWire2
// is the current WAL record format (the transaction layout gained a byte, so
// old records must be refused, not decoded under the new layout — snapshots
// encode raw table state only and were unaffected). Version-0 (gob) payloads
// carry no format byte.
const (
	formatWire  = 0x01
	formatWire2 = 0x02
)

// maxRecordSize bounds a single WAL record. A declared length beyond it is
// treated as corruption rather than as an enormous torn tail.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a CRC or structural failure in the middle of a WAL or
// snapshot file — damage that truncation cannot explain.
var ErrCorrupt = errors.New("storage: corrupt data")

// frameRecord appends the framed payload to buf and returns the result.
func frameRecord(buf []byte, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// appendFramedRecord appends one complete frame — header, format byte, wire
// body — to buf in place: the header is reserved up front and patched once
// the payload length and CRC are known, so framing a record performs no
// intermediate allocation. This is the only encoder on the append path
// (group commit pools buf, so steady-state appends allocate nothing).
func appendFramedRecord(buf []byte, rec *types.ExecRecord) []byte {
	wire.CountMarshal()
	hdrAt := len(buf)
	buf = append(buf, make([]byte, walHeaderSize)...)
	buf = append(buf, formatWire2)
	buf = rec.AppendWire(buf)
	payload := buf[hdrAt+walHeaderSize:]
	binary.BigEndian.PutUint32(buf[hdrAt:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[hdrAt+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// decodeRecord decodes one framed payload, dispatching on the format byte:
// wire-codec records decode through the zero-reflection path; anything else
// falls back to the version-0 gob decoder kept for pre-codec logs.
func decodeRecord(payload []byte) (types.ExecRecord, error) {
	if len(payload) > 0 && payload[0] == formatWire2 {
		var rec types.ExecRecord
		if err := rec.Unmarshal(payload[1:]); err != nil {
			return types.ExecRecord{}, fmt.Errorf("%w: record decode: %v", ErrCorrupt, err)
		}
		return rec, nil
	}
	if len(payload) > 0 && payload[0] == formatWire {
		// Pre-consistency-tier transaction layout: the record body does not
		// decode under the current codec. Refusing is deliberate — silently
		// mis-decoding durable history would be far worse than requiring the
		// replica to rejoin via snapshot state transfer.
		return types.ExecRecord{}, fmt.Errorf("%w: record written by an older storage format (0x01); wipe the data directory and rejoin via state transfer", ErrCorrupt)
	}
	return decodeRecordGob(payload)
}

// walEntry is the file offset one record's frame starts at, kept so
// rollbacks can physically truncate the log.
type walEntry struct {
	seq types.SeqNum
	off int64
}

// walRec is one decoded record plus the offset of its frame.
type walRec struct {
	rec types.ExecRecord
	off int64
}

// readWAL reads every complete record from a WAL file. It returns the
// decoded records with their frame offsets, the offset just past the last
// complete record (the torn tail, if any, starts there), and an error only
// for mid-log corruption.
func readWAL(path string) (recs []walRec, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < walHeaderSize {
			// Torn header: tolerated, replay stops here.
			return recs, off, nil
		}
		length := binary.BigEndian.Uint32(rest[0:4])
		crc := binary.BigEndian.Uint32(rest[4:8])
		if length > maxRecordSize {
			return nil, off, fmt.Errorf("%w: %s: record at offset %d declares %d bytes", ErrCorrupt, path, off, length)
		}
		if len(rest)-walHeaderSize < int(length) {
			// Torn payload: the write was cut mid-record. Tolerated.
			return recs, off, nil
		}
		payload := rest[walHeaderSize : walHeaderSize+int(length)]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, off, fmt.Errorf("%w: %s: CRC mismatch at offset %d", ErrCorrupt, path, off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return nil, off, fmt.Errorf("%s: offset %d: %w", path, off, derr)
		}
		recs = append(recs, walRec{rec: rec, off: off})
		off += int64(walHeaderSize) + int64(length)
	}
}

// writeFileAtomic writes data to path via a temp file + rename so readers
// never observe a half-written file.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dirOf(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i]
		}
	}
	return "."
}

// syncDir fsyncs a directory so renames and creations inside it survive a
// machine crash, not just a process crash. Without it, writeFileAtomic's
// rename is atomic but not durable: the new name may vanish with the page
// cache, taking every subsequently acknowledged append with it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
