package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/poexec/poe/internal/types"
)

// WAL record framing: every record is
//
//	[4-byte big-endian payload length][4-byte CRC-32C of payload][payload]
//
// where the payload is one gob-encoded types.ExecRecord. The framing gives
// the log two properties crash recovery depends on:
//
//   - A torn final record — the tail the process was writing when it died,
//     cut at an arbitrary byte — is recognized (the remaining bytes are
//     shorter than the header, or shorter than the declared length) and
//     tolerated: replay stops at the last complete record and the tail is
//     truncated away before the log is reopened for appends.
//   - Corruption anywhere else — a bit flip inside a complete record — fails
//     the CRC and is reported as ErrCorrupt; the replica must not silently
//     replay damaged history.
const walHeaderSize = 8

// maxRecordSize bounds a single WAL record. A declared length beyond it is
// treated as corruption rather than as an enormous torn tail.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a CRC or structural failure in the middle of a WAL or
// snapshot file — damage that truncation cannot explain.
var ErrCorrupt = errors.New("storage: corrupt data")

// frameRecord appends the framed payload to buf and returns the result.
func frameRecord(buf []byte, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecord gob-encodes one execution record.
func encodeRecord(rec *types.ExecRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("storage: encode record seq %d: %w", rec.Seq, err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(payload []byte) (types.ExecRecord, error) {
	var rec types.ExecRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return types.ExecRecord{}, fmt.Errorf("%w: record decode: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// walEntry is the file offset one record's frame starts at, kept so
// rollbacks can physically truncate the log.
type walEntry struct {
	seq types.SeqNum
	off int64
}

// walRec is one decoded record plus the offset of its frame.
type walRec struct {
	rec types.ExecRecord
	off int64
}

// readWAL reads every complete record from a WAL file. It returns the
// decoded records with their frame offsets, the offset just past the last
// complete record (the torn tail, if any, starts there), and an error only
// for mid-log corruption.
func readWAL(path string) (recs []walRec, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < walHeaderSize {
			// Torn header: tolerated, replay stops here.
			return recs, off, nil
		}
		length := binary.BigEndian.Uint32(rest[0:4])
		crc := binary.BigEndian.Uint32(rest[4:8])
		if length > maxRecordSize {
			return nil, off, fmt.Errorf("%w: %s: record at offset %d declares %d bytes", ErrCorrupt, path, off, length)
		}
		if len(rest)-walHeaderSize < int(length) {
			// Torn payload: the write was cut mid-record. Tolerated.
			return recs, off, nil
		}
		payload := rest[walHeaderSize : walHeaderSize+int(length)]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, off, fmt.Errorf("%w: %s: CRC mismatch at offset %d", ErrCorrupt, path, off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return nil, off, fmt.Errorf("%s: offset %d: %w", path, off, derr)
		}
		recs = append(recs, walRec{rec: rec, off: off})
		off += int64(walHeaderSize) + int64(length)
	}
}

// appendFramed writes one framed payload to the file and optionally syncs.
func appendFramed(f *os.File, payload []byte, sync bool) error {
	frame := frameRecord(make([]byte, 0, walHeaderSize+len(payload)), payload)
	if _, err := f.Write(frame); err != nil {
		return err
	}
	if sync {
		return f.Sync()
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file + rename so readers
// never observe a half-written file.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dirOf(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i]
		}
	}
	return "."
}

// syncDir fsyncs a directory so renames and creations inside it survive a
// machine crash, not just a process crash. Without it, writeFileAtomic's
// rename is atomic but not durable: the new name may vanish with the page
// cache, taking every subsequently acknowledged append with it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
