package storage

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
)

func groupRec(seq types.SeqNum) *types.ExecRecord {
	return &types.ExecRecord{Seq: seq, Batch: types.Batch{Requests: []types.Request{
		{Txn: types.Transaction{Client: types.ClientIDBase, Seq: uint64(seq)}},
	}}}
}

// TestGroupCommitBatchesRecords: a burst of async appends lands in fewer
// groups than records, in order, and Flush makes them all durable.
func TestGroupCommitBatchesRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the committer so the whole burst accumulates into one group.
	hold := make(chan struct{})
	st.gqMu.Lock()
	st.gqHold = hold
	st.gqMu.Unlock()

	const n = 16
	var acked atomic.Int64
	for seq := types.SeqNum(1); seq <= n; seq++ {
		st.AppendAsync(groupRec(seq), func(err error) {
			if err != nil {
				t.Errorf("append: %v", err)
			}
			acked.Add(1)
		})
	}
	st.gqMu.Lock()
	st.gqHold = nil
	st.gqMu.Unlock()
	close(hold)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := acked.Load(); got != n {
		t.Fatalf("acked %d records, want %d", got, n)
	}
	groups, recs := st.GroupStats()
	if recs != n {
		t.Fatalf("grouped %d records, want %d", recs, n)
	}
	if groups >= n {
		t.Fatalf("wrote %d groups for %d records: no batching happened", groups, n)
	}
	if st.LastSeq() != n {
		t.Fatalf("LastSeq = %d, want %d", st.LastSeq(), n)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered().LastSeq != n {
		t.Fatalf("recovered LastSeq = %d, want %d", st2.Recovered().LastSeq, n)
	}
}

// TestGroupCommitCrashLosesUnackedTail pins the crash-consistency contract:
// records queued but not yet group-committed are lost by a crash — and that
// is fine, because their durability callbacks never fired, so the replica
// never answered the clients. Records acknowledged before the crash are
// recovered in full.
func TestGroupCommitCrashLosesUnackedTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: two records committed and acknowledged.
	for seq := types.SeqNum(1); seq <= 2; seq++ {
		st.AppendAsync(groupRec(seq), nil)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: stall the committer — the crash window between execute and
	// group-sync — and queue three more records. Their callbacks must not
	// fire while the group is un-synced.
	hold := make(chan struct{})
	st.gqMu.Lock()
	st.gqHold = hold
	st.gqMu.Unlock()
	var acked atomic.Int64
	for seq := types.SeqNum(3); seq <= 5; seq++ {
		st.AppendAsync(groupRec(seq), func(error) { acked.Add(1) })
	}
	time.Sleep(20 * time.Millisecond)
	if got := acked.Load(); got != 0 {
		t.Fatalf("%d records acknowledged before their group was written", got)
	}

	// Crash: recover the directory as a fresh process would, with the tail
	// still trapped in the queue. Only the acknowledged prefix survives.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Recovered().LastSeq; got != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2 (the acknowledged prefix)", got)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Release the stalled committer so the first store shuts down cleanly;
	// the test's point — unacked tail lost, acked prefix kept — is already
	// made.
	st.gqMu.Lock()
	st.gqHold = nil
	st.gqMu.Unlock()
	close(hold)
	st.Close()
}

// TestGroupCommitTruncateDrainsQueue: a rollback truncation drains queued
// appends first, so the cut is total — nothing queued can land after it.
func TestGroupCommitTruncateDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for seq := types.SeqNum(1); seq <= 6; seq++ {
		st.AppendAsync(groupRec(seq), nil)
	}
	if err := st.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if st.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d after truncate, want 3", st.LastSeq())
	}
	// Appends continue past the cut.
	st.AppendAsync(groupRec(4), nil)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", st.LastSeq())
	}
}

// TestAppendAsyncNoGroupCommit: the per-record baseline mode syncs inline on
// the caller and acknowledges immediately.
func TestAppendAsyncNoGroupCommit(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: true, NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var acked int
	st.AppendAsync(groupRec(1), func(err error) {
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		acked++
	})
	if acked != 1 {
		t.Fatal("per-record append did not acknowledge synchronously")
	}
	if st.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", st.LastSeq())
	}
	groups, _ := st.GroupStats()
	if groups != 0 {
		t.Fatalf("NoGroupCommit wrote %d groups", groups)
	}
}
