package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Snapshot is the durable image of a replica's executed state at a stable
// checkpoint: everything a restarted replica needs, besides WAL replay and
// state transfer, to rejoin the cluster with the exact state it had when the
// checkpoint stabilized (§II-D of the paper).
type Snapshot struct {
	// Seq is the stable checkpoint sequence number the snapshot captures.
	Seq types.SeqNum
	// Head is the ledger block at Seq; the restored chain is rooted at it,
	// so hash-link verification keeps covering post-restart appends.
	Head ledger.Block
	// Data is the key-value table exactly as of Seq — writes from batches
	// executed speculatively above the checkpoint are rewound before the
	// snapshot is taken, so recovery never resurrects uncommitted state.
	Data map[string][]byte
	// LastCli is the client-deduplication history as of Seq: the highest
	// client-local sequence number executed per client. Without it a
	// restarted replica could re-execute a transaction the cluster already
	// answered, diverging from replicas that dedup it.
	LastCli map[types.ClientID]uint64
}

// AppendWire appends the snapshot's wire encoding. Both maps are emitted in
// sorted key order so the encoding is canonical (encode → decode → encode is
// byte-identical); snapshots are written once per checkpoint, so the sort is
// far off the hot path.
func (s *Snapshot) AppendWire(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(s.Seq))
	buf = s.Head.AppendWire(buf)

	keys := make([]string, 0, len(s.Data))
	for k := range s.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = wire.AppendU32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = wire.AppendString(buf, k)
		buf = wire.AppendBytes(buf, s.Data[k])
	}

	clients := make([]types.ClientID, 0, len(s.LastCli))
	for c := range s.LastCli {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = wire.AppendU32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = wire.AppendI32(buf, int32(c))
		buf = wire.AppendU64(buf, s.LastCli[c])
	}
	return buf
}

// ReadWire decodes one snapshot.
func (s *Snapshot) ReadWire(r *wire.Reader) {
	s.Seq = types.SeqNum(r.U64())
	s.Head.ReadWire(r)
	n := r.Count(8) // two u32 length prefixes per entry
	s.Data = make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.Bytes()
		if r.Err() != nil {
			return
		}
		s.Data[k] = v
	}
	m := r.Count(12) // i32 client + u64 seq
	s.LastCli = make(map[types.ClientID]uint64, m)
	for i := 0; i < m; i++ {
		c := types.ClientID(r.I32())
		v := r.U64()
		if r.Err() != nil {
			return
		}
		s.LastCli[c] = v
	}
}

// writeSnapshotFile writes the snapshot to path atomically, framed with the
// same length+CRC header as WAL records so corruption is detectable at load.
// The payload is the format byte plus the wire encoding; the encode buffer
// is pooled.
func writeSnapshotFile(path string, snap *Snapshot) error {
	wire.CountMarshal()
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()
	buf = append(buf, formatWire)
	buf = snap.AppendWire(buf)
	payload := buf
	return writeFileAtomic(path, func(w io.Writer) error {
		var hdr [walHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
}

// readSnapshotFile loads and validates a snapshot file. Wire-format
// snapshots (format byte 0x01) decode through the zero-reflection codec;
// anything else is a version-0 gob snapshot and takes the recovery fallback.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < walHeaderSize {
		return nil, fmt.Errorf("%w: %s: short snapshot header", ErrCorrupt, path)
	}
	length := binary.BigEndian.Uint32(data[0:4])
	crc := binary.BigEndian.Uint32(data[4:8])
	if int(length) != len(data)-walHeaderSize {
		return nil, fmt.Errorf("%w: %s: snapshot length mismatch", ErrCorrupt, path)
	}
	payload := data[walHeaderSize:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: %s: snapshot CRC mismatch", ErrCorrupt, path)
	}
	if len(payload) > 0 && payload[0] == formatWire {
		var snap Snapshot
		r := wire.NewReader(payload[1:])
		snap.ReadWire(r)
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("%w: %s: snapshot decode: %v", ErrCorrupt, path, err)
		}
		return &snap, nil
	}
	return decodeSnapshotGob(path, payload)
}
