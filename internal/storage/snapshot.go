package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/types"
)

// Snapshot is the durable image of a replica's executed state at a stable
// checkpoint: everything a restarted replica needs, besides WAL replay and
// state transfer, to rejoin the cluster with the exact state it had when the
// checkpoint stabilized (§II-D of the paper).
type Snapshot struct {
	// Seq is the stable checkpoint sequence number the snapshot captures.
	Seq types.SeqNum
	// Head is the ledger block at Seq; the restored chain is rooted at it,
	// so hash-link verification keeps covering post-restart appends.
	Head ledger.Block
	// Data is the key-value table exactly as of Seq — writes from batches
	// executed speculatively above the checkpoint are rewound before the
	// snapshot is taken, so recovery never resurrects uncommitted state.
	Data map[string][]byte
	// LastCli is the client-deduplication history as of Seq: the highest
	// client-local sequence number executed per client. Without it a
	// restarted replica could re-execute a transaction the cluster already
	// answered, diverging from replicas that dedup it.
	LastCli map[types.ClientID]uint64
}

// writeSnapshotFile writes the snapshot to path atomically, framed with the
// same length+CRC header as WAL records so corruption is detectable at load.
func writeSnapshotFile(path string, snap *Snapshot) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("storage: encode snapshot seq %d: %w", snap.Seq, err)
	}
	payload := buf.Bytes()
	return writeFileAtomic(path, func(w io.Writer) error {
		var hdr [walHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
}

// readSnapshotFile loads and validates a snapshot file.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < walHeaderSize {
		return nil, fmt.Errorf("%w: %s: short snapshot header", ErrCorrupt, path)
	}
	length := binary.BigEndian.Uint32(data[0:4])
	crc := binary.BigEndian.Uint32(data[4:8])
	if int(length) != len(data)-walHeaderSize {
		return nil, fmt.Errorf("%w: %s: snapshot length mismatch", ErrCorrupt, path)
	}
	payload := data[walHeaderSize:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: %s: snapshot CRC mismatch", ErrCorrupt, path)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %s: snapshot decode: %v", ErrCorrupt, path, err)
	}
	return &snap, nil
}
