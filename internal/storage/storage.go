// Package storage is the durability subsystem of a replica: a
// length-prefixed, CRC-checked append-only write-ahead log of executed
// batches plus checkpoint snapshots of the executed state, with log
// truncation at snapshot time.
//
// The in-memory execution substrate (store.KV, ledger.Chain, the executor's
// undo log) reproduces the paper's protocol faithfully but evaporates at
// process exit, so a crashed replica could never rejoin — exactly the
// failure class §II-D's checkpoints exist to bound. This package makes the
// executed prefix durable:
//
//   - Every executed batch is appended to the WAL (as its types.ExecRecord,
//     certificate included) before the replica answers clients, so the
//     replied-to prefix always survives a crash. Appends flow through a
//     group-commit queue (group.go): a burst of in-order executed batches is
//     framed into one buffered write and one fsync, and each record's
//     durability callback — which is what releases the batch's client
//     replies — fires only after its group is on disk.
//   - When a checkpoint becomes stable, the replica writes a Snapshot — the
//     key-value table, the ledger head, the client-dedup history, all as of
//     the checkpoint sequence number — and rotates the WAL, carrying the
//     still-speculative suffix into the fresh log. Snapshots are written
//     atomically (temp file + rename) and the previous snapshot generation
//     is retained until the next one lands, so a crash at any byte of the
//     rotation leaves a recoverable directory.
//   - Open replays snapshot + WAL back into memory. A torn final WAL record
//     (the append the process died inside) is tolerated and truncated; any
//     other damage fails the CRC and surfaces as ErrCorrupt rather than as
//     silently divergent state.
//
// Speculative rollback (a view change discarding an executed suffix,
// ingredient I2 of the paper) maps onto Truncate: the WAL is physically cut
// back to the rollback point, keeping disk and memory in lockstep. Rolling
// back below a stable checkpoint is impossible, so a snapshot is never
// invalidated.
//
// Recovery ends at the replica's last durable sequence number; the gap to
// the live cluster is closed by the protocols' existing Fetch state
// transfer, which needs no extra trust: replayed records carry the same
// certificates a fetched record does.
package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Options tune a Store.
type Options struct {
	// Sync fsyncs the WAL after every commit group (or every append, with
	// NoGroupCommit) and snapshot rotation. Without it durability is bounded
	// by the OS page cache (process crashes are still fully recoverable;
	// machine crashes may lose the cached suffix).
	Sync bool
	// NoGroupCommit makes AppendAsync degrade to a synchronous per-record
	// append + sync on the caller. It exists as the baseline the
	// group-commit benchmarks compare against; production durable replicas
	// leave it off.
	NoGroupCommit bool
}

// Recovered is the state Open rebuilt from disk.
type Recovered struct {
	// Snapshot is the newest valid checkpoint snapshot, nil if none.
	Snapshot *Snapshot
	// Records are the WAL records above the snapshot, contiguous and in
	// sequence order, ready to be re-executed.
	Records []types.ExecRecord
	// LastSeq is the last durable sequence number: the snapshot's if the
	// WAL is empty, the last WAL record's otherwise, 0 for a fresh dir.
	LastSeq types.SeqNum
}

// Store manages one replica's data directory: the active WAL, the snapshot
// generations, and the recovered state from the last Open. It is safe for
// concurrent use, though the executor serializes calls in practice.
type Store struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	wal       *os.File
	walPath   string
	base      types.SeqNum // snapshot generation the active WAL belongs to
	next      types.SeqNum // sequence number the next append must carry
	index     []walEntry   // offsets of records in the active WAL, in order
	walSize   int64
	recovered Recovered
	closed    bool

	// Group-commit queue (see group.go). gqMu guards the queue state; the
	// committer goroutine takes s.mu only inside writeGroup, so queueing
	// never blocks behind file I/O.
	gqMu   sync.Mutex
	gqCond *sync.Cond
	gq     []queuedRec
	gqBusy bool
	gqStop bool
	gqErr  error
	gqDone chan struct{}
	// gqHold, when set by a test, stalls the committer before each group
	// write — the "crash between execute and group-sync" window.
	gqHold chan struct{}

	groups  atomic.Int64
	grouped atomic.Int64
}

func walName(base types.SeqNum) string { return fmt.Sprintf("wal-%016x.log", uint64(base)) }
func snapName(seq types.SeqNum) string { return fmt.Sprintf("snap-%016x.ckpt", uint64(seq)) }

func parseGen(name, prefix, suffix string) (types.SeqNum, bool) {
	var v uint64
	if _, err := fmt.Sscanf(name, prefix+"%016x"+suffix, &v); err != nil {
		return 0, false
	}
	return types.SeqNum(v), true
}

// Open opens (or initializes) a replica data directory and recovers its
// durable state: the newest valid snapshot plus the contiguous WAL suffix
// above it. A torn final WAL record is truncated away; mid-log corruption
// returns an error wrapping ErrCorrupt. The returned Store is ready for
// appends continuing at Recovered().LastSeq+1.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeqs, walBases []types.SeqNum
	for _, e := range entries {
		if seq, ok := parseGen(e.Name(), "snap-", ".ckpt"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if base, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			walBases = append(walBases, base)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	sort.Slice(walBases, func(i, j int) bool { return walBases[i] > walBases[j] })

	s := &Store{dir: dir, opts: opts}

	// Newest valid snapshot wins; an unreadable newer one falls back to the
	// retained previous generation (recovering a shorter — but still
	// correct — durable prefix; Fetch closes the rest of the gap).
	var snapErr error
	for _, seq := range snapSeqs {
		snap, err := readSnapshotFile(filepath.Join(dir, snapName(seq)))
		if err != nil {
			snapErr = err
			continue
		}
		s.recovered.Snapshot = snap
		break
	}
	if s.recovered.Snapshot == nil && len(snapSeqs) > 0 {
		return nil, snapErr
	}
	snapSeq := types.SeqNum(0)
	if s.recovered.Snapshot != nil {
		snapSeq = s.recovered.Snapshot.Seq
	}

	// The active WAL is the one with the largest base not above the chosen
	// snapshot. A crash between snapshot write and WAL rotation leaves the
	// previous generation's WAL active; its records at or below the
	// snapshot are simply skipped during replay.
	s.base = snapSeq
	s.next = snapSeq + 1
	s.walPath = filepath.Join(dir, walName(snapSeq))
	for _, b := range walBases {
		if b > snapSeq {
			continue
		}
		path := filepath.Join(dir, walName(b))
		recs, good, err := readWAL(path)
		if err != nil {
			return nil, err
		}
		// Truncate the torn tail (if any) so the reopened log ends at the
		// last complete record.
		if info, err := os.Stat(path); err == nil && info.Size() > good {
			if err := os.Truncate(path, good); err != nil {
				return nil, err
			}
		}
		for _, r := range recs {
			if r.rec.Seq <= snapSeq {
				continue
			}
			// An append-ordered log can only violate contiguity through
			// damage the CRC did not catch; refuse to replay past it.
			if r.rec.Seq != s.next {
				return nil, fmt.Errorf("%w: %s: record seq %d, want %d", ErrCorrupt, path, r.rec.Seq, s.next)
			}
			s.recovered.Records = append(s.recovered.Records, r.rec)
			s.next = r.rec.Seq + 1
		}
		s.walPath = path
		s.base = b
		s.walSize = good
		for _, r := range recs {
			s.index = append(s.index, walEntry{seq: r.rec.Seq, off: r.off})
		}
		break
	}
	s.recovered.LastSeq = s.next - 1

	f, err := os.OpenFile(s.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// Persist the (possibly just-created) WAL's directory entry, so appends
	// acknowledged after this Open cannot vanish with an unsynced name.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	s.wal = f
	s.gqCond = sync.NewCond(&s.gqMu)
	s.startCommitter()
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Recovered returns the state rebuilt by Open. The caller replays it into
// the executor before attaching the store for new appends.
func (s *Store) Recovered() *Recovered {
	return &s.recovered
}

// Append logs one executed batch synchronously. Records must arrive in
// execution order (contiguous sequence numbers). Durable replicas use
// AppendAsync (group commit) instead; Append remains for recovery tooling
// and tests, and drains any queued group first so the two can be mixed.
func (s *Store) Append(rec *types.ExecRecord) error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: append on closed store")
	}
	if rec.Seq != s.next {
		return fmt.Errorf("storage: append out of order: want seq %d, got %d", s.next, rec.Seq)
	}
	frame := appendFramedRecord(wire.GetBuf(), rec)
	_, err := s.wal.Write(frame)
	if err == nil && s.opts.Sync {
		err = s.wal.Sync()
	}
	if err != nil {
		wire.PutBuf(frame)
		return fmt.Errorf("storage: append seq %d: %w", rec.Seq, err)
	}
	s.index = append(s.index, walEntry{seq: rec.Seq, off: s.walSize})
	s.walSize += int64(len(frame))
	s.next = rec.Seq + 1
	wire.PutBuf(frame)
	return nil
}

// LastSeq returns the last durable sequence number. Records still queued for
// group commit are not durable and are not counted.
func (s *Store) LastSeq() types.SeqNum {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next - 1
}

// Truncate discards every logged record with sequence number above toSeq,
// mirroring a speculative-execution rollback so the disk never resurrects a
// suffix the protocol abandoned. Truncating below the active WAL's base is
// an error: that prefix is frozen by a stable checkpoint.
func (s *Store) Truncate(toSeq types.SeqNum) error {
	// Drain the commit queue first: queued records above the cut would
	// otherwise be written after the truncation and resurrect the abandoned
	// suffix.
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: truncate on closed store")
	}
	if toSeq >= s.next-1 {
		return nil
	}
	if toSeq < s.base {
		return fmt.Errorf("storage: cannot truncate to seq %d below WAL base %d", toSeq, s.base)
	}
	cut := s.walSize
	keep := len(s.index)
	for i, e := range s.index {
		if e.seq > toSeq {
			cut, keep = e.off, i
			break
		}
	}
	if err := s.wal.Truncate(cut); err != nil {
		return err
	}
	s.index = s.index[:keep]
	s.walSize = cut
	s.next = toSeq + 1
	return nil
}

// WriteSnapshot persists the stable-checkpoint snapshot and rotates the WAL:
// the new log is seeded with tail (the executed records above the snapshot,
// in order), written aside and renamed into place so a crash at any point
// leaves either the old generation or the complete new one. The previous
// snapshot generation is retained as a fallback; older generations are
// removed.
func (s *Store) WriteSnapshot(snap *Snapshot, tail []types.ExecRecord) error {
	// Drain the commit queue first: the rotation must not interleave with
	// group appends, and the tail passed in covers everything queued.
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: snapshot on closed store")
	}
	if snap.Seq < s.base {
		return fmt.Errorf("storage: snapshot seq %d below WAL base %d", snap.Seq, s.base)
	}
	if err := writeSnapshotFile(filepath.Join(s.dir, snapName(snap.Seq)), snap); err != nil {
		return err
	}
	// Build the successor WAL aside, then rename: until the rename lands,
	// recovery uses the old WAL (whose records span the tail and more).
	newPath := filepath.Join(s.dir, walName(snap.Seq))
	var index []walEntry
	var size int64
	err := writeFileAtomic(newPath, func(w io.Writer) error {
		// Frame the whole tail into one pooled buffer and issue one write.
		buf := wire.GetBuf()
		defer func() { wire.PutBuf(buf) }()
		next := snap.Seq + 1
		for i := range tail {
			rec := &tail[i]
			if rec.Seq <= snap.Seq {
				continue
			}
			if rec.Seq != next {
				return fmt.Errorf("storage: snapshot tail out of order: want seq %d, got %d", next, rec.Seq)
			}
			index = append(index, walEntry{seq: rec.Seq, off: int64(len(buf))})
			buf = appendFramedRecord(buf, rec)
			next++
		}
		size = int64(len(buf))
		_, err := w.Write(buf)
		return err
	})
	if err != nil {
		return err
	}
	// Make the two renames themselves durable before retiring the previous
	// generation; rotation is per-checkpoint, so the directory fsync is off
	// the append hot path.
	if err := syncDir(s.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	oldBase := s.base
	s.wal.Close()
	s.wal = f
	s.walPath = newPath
	s.base = snap.Seq
	s.index = index
	s.walSize = size
	// For a locally-taken checkpoint the tail ends where the executor is and
	// s.next is already right. Installing a transferred snapshot jumps the
	// executor forward past everything the WAL ever held, so the next
	// expected sequence number must jump with it.
	if s.next < snap.Seq+1 {
		s.next = snap.Seq + 1
	}
	s.dropStaleLocked(oldBase)
	return nil
}

// dropStaleLocked removes generations older than the retained fallback: the
// previous snapshot (prevBase) and its WAL stay; everything before goes.
func (s *Store) dropStaleLocked(prevBase types.SeqNum) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if seq, ok := parseGen(e.Name(), "snap-", ".ckpt"); ok && seq < prevBase {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
		if base, ok := parseGen(e.Name(), "wal-", ".log"); ok && base < prevBase {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Close drains the commit queue, stops the committer, and releases the WAL
// file handle. The directory remains recoverable.
func (s *Store) Close() error {
	flushErr := s.Flush()
	s.stopCommitter()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return flushErr
	}
	s.closed = true
	if err := s.wal.Close(); err != nil {
		return err
	}
	return flushErr
}
