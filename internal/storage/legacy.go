package storage

// Version-0 recovery fallback. Before the wire codec (internal/wire), WAL
// record payloads and snapshots were gob-encoded. The append path never
// writes that format anymore — this file is the only remaining gob use in
// the durability subsystem, and it runs exclusively during Open, so a
// replica that carries a pre-codec data directory across the upgrade still
// recovers its full durable prefix. The first post-upgrade snapshot rotation
// then retires the old generations naturally.
//
// Format discrimination: wire payloads open with the formatWire byte (0x01).
// A gob stream opens with a type-definition message, and gob frames every
// message with its byte length in gob's unsigned encoding — a single literal
// byte for lengths below 128, a 0x80+ count marker above. A type definition
// for these structs is always tens of bytes long, so a version-0 payload's
// first byte is ≥ 2 and can never collide with formatWire.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/poexec/poe/internal/types"
)

// decodeRecordGob decodes a version-0 (gob) WAL record payload.
func decodeRecordGob(payload []byte) (types.ExecRecord, error) {
	var rec types.ExecRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return types.ExecRecord{}, fmt.Errorf("%w: record decode: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// decodeSnapshotGob decodes a version-0 (gob) snapshot payload.
func decodeSnapshotGob(path string, payload []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %s: snapshot decode: %v", ErrCorrupt, path, err)
	}
	return &snap, nil
}
