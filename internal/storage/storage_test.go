package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/types"
)

func testRecord(seq types.SeqNum) types.ExecRecord {
	req := types.Request{
		Txn: types.Transaction{
			Client: types.ClientIDBase,
			Seq:    uint64(seq),
			Ops: []types.Op{
				{Kind: types.OpWrite, Key: "k", Value: []byte{byte(seq), byte(seq >> 8)}},
			},
		},
		Sig: []byte{0xAA, byte(seq)},
	}
	batch := types.Batch{Requests: []types.Request{req}}
	return types.ExecRecord{
		Seq:    seq,
		View:   types.View(seq / 10),
		Digest: batch.Digest(),
		Proof:  []byte{0xCE, byte(seq)},
		Batch:  batch,
	}
}

func appendN(t *testing.T, s *Store, from, to types.SeqNum) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		rec := testRecord(seq)
		if err := s.Append(&rec); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 20)
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if rec.LastSeq != 20 || len(rec.Records) != 20 {
		t.Fatalf("recovered LastSeq=%d records=%d, want 20/20", rec.LastSeq, len(rec.Records))
	}
	for i, r := range rec.Records {
		want := testRecord(types.SeqNum(i + 1))
		if r.Seq != want.Seq || r.Digest != want.Batch.Digest() || string(r.Proof) != string(want.Proof) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
		if len(r.Batch.Requests) != 1 || r.Batch.Requests[0].Txn.Seq != uint64(i+1) {
			t.Fatalf("record %d batch mismatch", i)
		}
	}
	// Appends continue where the log left off.
	if err := s2.Append(&types.ExecRecord{Seq: 5}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	appendN(t, s2, 21, 21)
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 1, 3)
	rec := testRecord(5)
	if err := s.Append(&rec); err == nil {
		t.Fatal("gap accepted")
	}
}

func TestSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 12)
	snap := &Snapshot{
		Seq:     8,
		Head:    ledger.Block{Seq: 8, Digest: types.DigestBytes([]byte("h8"))},
		Data:    map[string][]byte{"k": {8}},
		LastCli: map[types.ClientID]uint64{types.ClientIDBase: 8},
	}
	var tail []types.ExecRecord
	for seq := types.SeqNum(9); seq <= 12; seq++ {
		tail = append(tail, testRecord(seq))
	}
	if err := s.WriteSnapshot(snap, tail); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 13, 15)
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if got.Snapshot == nil || got.Snapshot.Seq != 8 {
		t.Fatalf("snapshot not recovered: %+v", got.Snapshot)
	}
	if string(got.Snapshot.Data["k"]) != string([]byte{8}) {
		t.Fatal("snapshot data lost")
	}
	if got.Snapshot.LastCli[types.ClientIDBase] != 8 {
		t.Fatal("snapshot dedup history lost")
	}
	if got.Snapshot.Head.Digest != types.DigestBytes([]byte("h8")) {
		t.Fatal("snapshot ledger head lost")
	}
	if got.LastSeq != 15 || len(got.Records) != 7 {
		t.Fatalf("recovered LastSeq=%d records=%d, want 15/7 (tail 9..12 + appends 13..15)", got.LastSeq, len(got.Records))
	}
	if got.Records[0].Seq != 9 || got.Records[6].Seq != 15 {
		t.Fatalf("record range %d..%d, want 9..15", got.Records[0].Seq, got.Records[6].Seq)
	}
}

func TestSecondRotationDropsStaleGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 30)
	if err := s.WriteSnapshot(&Snapshot{Seq: 10}, nil); err != nil {
		t.Fatal(err)
	}
	// The fallback generation (base 0) must survive the first rotation...
	if _, err := os.Stat(filepath.Join(dir, walName(0))); err != nil {
		t.Fatalf("previous WAL generation dropped too early: %v", err)
	}
	if err := s.WriteSnapshot(&Snapshot{Seq: 20}, nil); err != nil {
		t.Fatal(err)
	}
	// ...and be dropped by the second.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatal("generation 0 WAL not cleaned up")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(10))); err != nil {
		t.Fatal("previous snapshot must be retained as fallback")
	}
	s.Close()
}

func TestTruncateMirrorsRollback(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 10)
	if err := s.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if s.LastSeq() != 6 {
		t.Fatalf("LastSeq=%d after truncate, want 6", s.LastSeq())
	}
	// Re-execution after rollback writes different records at 7+.
	rec := testRecord(7)
	rec.Proof = []byte("new-proof")
	if err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if got.LastSeq != 7 || len(got.Records) != 7 {
		t.Fatalf("LastSeq=%d records=%d, want 7/7", got.LastSeq, len(got.Records))
	}
	if string(got.Records[6].Proof) != "new-proof" {
		t.Fatal("rolled-back record resurrected instead of replacement")
	}
}

func TestTruncateBelowBaseRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 1, 10)
	if err := s.WriteSnapshot(&Snapshot{Seq: 8}, []types.ExecRecord{testRecord(9), testRecord(10)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(5); err == nil {
		t.Fatal("truncate below stable snapshot accepted")
	}
}

// TestTornTailTolerated is the byte-truncation fuzz of the acceptance
// criteria: whatever byte the crash cuts the WAL at, Open must succeed and
// recover exactly the records whose frames survived in full.
func TestTornTailTolerated(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	appendN(t, s, 1, n)
	s.Close()
	walPath := filepath.Join(master, walName(0))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, to know how many records each cut preserves.
	recs, _, err := readWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("master log has %d records, want %d", len(recs), n)
	}
	wantAt := func(cut int64) int {
		count := 0
		for i, r := range recs {
			end := int64(len(full))
			if i+1 < len(recs) {
				end = recs[i+1].off
			}
			if end <= cut {
				count = i + 1
			}
			_ = r
		}
		return count
	}
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at byte %d: open: %v", cut, err)
		}
		got := s2.Recovered()
		if want := wantAt(int64(cut)); len(got.Records) != want {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, len(got.Records), want)
		}
		// The torn tail must have been truncated so appends go through.
		next := testRecord(got.LastSeq + 1)
		if err := s2.Append(&next); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		s2.Close()
	}
}

// TestMidLogCorruptionDetected flips one byte inside every non-final record
// and requires Open to refuse the log each time.
func TestMidLogCorruptionDetected(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 5)
	s.Close()
	walPath := filepath.Join(master, walName(0))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := readWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lastOff := recs[len(recs)-1].off
	for _, tamper := range []int64{
		recs[0].off + walHeaderSize,     // first record payload
		recs[1].off + walHeaderSize + 3, // middle record payload
		lastOff - 1,                     // last byte before the final record
	} {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[tamper] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, walName(0)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tamper at byte %d: open err = %v, want ErrCorrupt", tamper, err)
		}
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 20)
	tailFor := func(from, to types.SeqNum) []types.ExecRecord {
		var tail []types.ExecRecord
		for seq := from; seq <= to; seq++ {
			tail = append(tail, testRecord(seq))
		}
		return tail
	}
	if err := s.WriteSnapshot(&Snapshot{Seq: 10, Data: map[string][]byte{"g": {10}}}, tailFor(11, 20)); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 21, 25)
	if err := s.WriteSnapshot(&Snapshot{Seq: 20, Data: map[string][]byte{"g": {20}}}, tailFor(21, 25)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the newest snapshot; recovery must fall back to seq 10 and
	// replay the generation-10 WAL. That WAL was rotated away, so the
	// recovered prefix ends at 10 — shorter, never wrong.
	path := filepath.Join(dir, snapName(20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if got.Snapshot == nil || got.Snapshot.Seq != 10 {
		t.Fatalf("fallback snapshot seq = %+v, want 10", got.Snapshot)
	}
	if string(got.Snapshot.Data["g"]) != string([]byte{10}) {
		t.Fatal("fallback snapshot data wrong")
	}
	// The fallback generation's WAL still holds 11..25, so nothing beyond
	// the corrupted snapshot itself is lost.
	if got.LastSeq != 25 || len(got.Records) != 15 {
		t.Fatalf("fallback recovered LastSeq=%d records=%d, want 25/15", got.LastSeq, len(got.Records))
	}
}

func TestCrashBetweenSnapshotAndRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1, 12)
	s.Close()
	// Simulate a crash after the snapshot file landed but before the WAL
	// was rotated: write the snapshot by hand, leave wal-0 as-is.
	if err := writeSnapshotFile(filepath.Join(dir, snapName(8)), &Snapshot{Seq: 8}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if got.Snapshot == nil || got.Snapshot.Seq != 8 {
		t.Fatal("snapshot not used")
	}
	// Records ≤ 8 are covered by the snapshot; 9..12 replay from the old
	// generation's WAL.
	if len(got.Records) != 4 || got.Records[0].Seq != 9 || got.LastSeq != 12 {
		t.Fatalf("recovered %d records LastSeq=%d, want 4 records ending at 12", len(got.Records), got.LastSeq)
	}
}

func TestFreshDirIsEmpty(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Recovered()
	if got.Snapshot != nil || len(got.Records) != 0 || got.LastSeq != 0 {
		t.Fatalf("fresh dir recovered %+v", got)
	}
}
