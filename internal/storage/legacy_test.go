package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/poexec/poe/internal/types"
)

// writeGobWAL writes a version-0 (pre-codec) WAL file: gob payloads, no
// format byte — exactly what an upgraded replica finds on disk.
func writeGobWAL(t *testing.T, path string, recs []types.ExecRecord) {
	t.Helper()
	var buf []byte
	for i := range recs {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
		buf = frameRecord(buf, payload.Bytes())
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeGobSnapshot writes a version-0 snapshot file.
func writeGobSnapshot(t *testing.T, path string, snap *Snapshot) {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		t.Fatal(err)
	}
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	if err := os.WriteFile(path, append(hdr[:], payload.Bytes()...), 0o644); err != nil {
		t.Fatal(err)
	}
}

func legacyRec(seq types.SeqNum) types.ExecRecord {
	b := types.Batch{Requests: []types.Request{{Txn: types.Transaction{
		Client: types.ClientIDBase, Seq: uint64(seq),
		Ops: []types.Op{{Kind: types.OpWrite, Key: "k", Value: []byte{byte(seq)}}},
	}, Sig: []byte{1, 2}}}}
	return types.ExecRecord{Seq: seq, View: 0, Digest: b.Digest(), Proof: []byte("proof"), Batch: b}
}

// TestRecoverVersionZeroLog: a directory written entirely by the gob era —
// gob snapshot plus gob WAL records above it — recovers through the
// fallback; subsequent appends are wire-format and a reopened store reads
// the mixed log.
func TestRecoverVersionZeroLog(t *testing.T) {
	dir := t.TempDir()

	snap := &Snapshot{
		Seq:     2,
		Data:    map[string][]byte{"k": {2}},
		LastCli: map[types.ClientID]uint64{types.ClientIDBase: 2},
	}
	writeGobSnapshot(t, filepath.Join(dir, snapName(2)), snap)
	writeGobWAL(t, filepath.Join(dir, walName(2)), []types.ExecRecord{legacyRec(3), legacyRec(4)})

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Recovered()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 2 {
		t.Fatalf("snapshot not recovered: %+v", rec.Snapshot)
	}
	if string(rec.Snapshot.Data["k"]) != string([]byte{2}) {
		t.Fatal("snapshot data lost")
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 3 || rec.Records[1].Seq != 4 {
		t.Fatalf("wal records not recovered: %+v", rec.Records)
	}
	if rec.LastSeq != 4 {
		t.Fatalf("last seq %d", rec.LastSeq)
	}
	// Continue the log in the new format: the same file now holds gob
	// records followed by wire records.
	r5 := legacyRec(5)
	if err := s.Append(&r5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec2 := s2.Recovered()
	if len(rec2.Records) != 3 || rec2.Records[2].Seq != 5 {
		t.Fatalf("mixed-format log did not recover: %+v", rec2.Records)
	}
	if rec2.Records[2].Batch.Digest() != r5.Batch.Digest() {
		t.Fatal("wire-appended record corrupted")
	}
}

// TestWireRecordRoundTripOnDisk pins the new on-disk format: records
// written by the codec recover with identical digests and certificates.
func TestWireRecordRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]types.ExecRecord, 0, 5)
	for seq := types.SeqNum(1); seq <= 5; seq++ {
		r := legacyRec(seq)
		want = append(want, r)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered().Records
	if len(got) != len(want) {
		t.Fatalf("recovered %d records", len(got))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Batch.Digest() != want[i].Batch.Digest() ||
			string(got[i].Proof) != string(want[i].Proof) {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestGroupCommitAllocs guards the pooled encode path: once the buffer pool
// is warm, appending a record must not allocate a fresh encode buffer per
// record. The bound is deliberately loose (map/index bookkeeping varies) —
// the pre-pool baseline was one bytes.Buffer plus one gob encoder state per
// record, far above it.
func TestGroupCommitAllocs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seq := types.SeqNum(0)
	// Warm the pool and the file.
	for i := 0; i < 8; i++ {
		seq++
		r := legacyRec(seq)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		seq++
		r := legacyRec(seq)
		r.Batch.MemoizeDigests()
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	})
	// legacyRec itself allocates (batch, request, digest memo); the append
	// path on top of it must stay within a handful of allocations — no
	// per-record encode buffer.
	if avg > 25 {
		t.Fatalf("Append allocates %.1f objects per record; encode buffers are not pooled", avg)
	}
}

// BenchmarkGroupCommitEncode measures the framed-append path the committer
// runs per group: with pooled buffers and the in-place wire encoder it
// reports zero allocations per record at steady state (the satellite guard
// TestGroupCommitAllocs enforces the bound; this benchmark tracks it).
func BenchmarkGroupCommitEncode(b *testing.B) {
	rec := legacyRec(1)
	rec.Batch.MemoizeDigests()
	buf := appendFramedRecord(nil, &rec)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFramedRecord(buf[:0], &rec)
	}
}
