package storage

import (
	"fmt"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Group commit: the write-side batching that lets a durable replica keep its
// execution pipeline ahead of the disk. The executor hands each executed
// record to AppendAsync, which queues it for the committer goroutine; the
// committer drains whatever has accumulated — one record under light load, a
// whole burst under heavy load — frames every record into a single buffered
// write, and issues ONE fsync (when Options.Sync is set) for the entire
// group. Each record's onDurable callback fires only after its group is on
// disk, which is what lets the replica release client replies without ever
// answering from volatile state (PR 2's invariant) while amortizing the
// per-record sync that used to serialize fsync'd runs.
//
// Ordering: records are committed in queue order, which the executor
// guarantees is execution (sequence) order. Every synchronous Store
// operation that observes or mutates the log — Append, Truncate,
// WriteSnapshot, Close — drains the queue first (Flush), so group commit is
// invisible to the rotation and rollback machinery.

// queuedRec is one record awaiting group commit.
type queuedRec struct {
	rec *types.ExecRecord
	cb  func(error)
}

// startCommitter arms the group-commit queue; called by Open.
func (s *Store) startCommitter() {
	s.gqDone = make(chan struct{})
	go s.commitLoop()
}

// AppendAsync queues one executed record for group commit. onDurable
// (optional) is invoked on the committer goroutine once the record's group
// has been written — and synced, when the store is in Sync mode — or with
// the error that prevented it. Records must be queued in execution order;
// an out-of-order record fails its whole group.
//
// With Options.NoGroupCommit the record is appended (and synced)
// synchronously on the caller — the per-record baseline the group-commit
// benchmarks compare against.
func (s *Store) AppendAsync(rec *types.ExecRecord, onDurable func(error)) {
	if s.opts.NoGroupCommit {
		err := s.Append(rec)
		if onDurable != nil {
			onDurable(err)
		}
		return
	}
	s.gqMu.Lock()
	if s.gqStop {
		s.gqMu.Unlock()
		if onDurable != nil {
			onDurable(fmt.Errorf("storage: append on closed store"))
		}
		return
	}
	s.gq = append(s.gq, queuedRec{rec: rec, cb: onDurable})
	s.gqCond.Signal()
	s.gqMu.Unlock()
}

// Flush blocks until every queued record has been committed (callbacks
// included) and returns the first group-commit error, if any. The error is
// sticky: a store that failed to persist must not quietly resume.
func (s *Store) Flush() error {
	s.gqMu.Lock()
	defer s.gqMu.Unlock()
	for len(s.gq) > 0 || s.gqBusy {
		s.gqCond.Wait()
	}
	return s.gqErr
}

// GroupStats reports how many commit groups have been written and how many
// records they carried; records/groups is the mean group size the harness
// surfaces.
func (s *Store) GroupStats() (groups, records int64) {
	return s.groups.Load(), s.grouped.Load()
}

// commitLoop is the committer goroutine: drain, write, sync, acknowledge.
func (s *Store) commitLoop() {
	defer close(s.gqDone)
	for {
		s.gqMu.Lock()
		for len(s.gq) == 0 && !s.gqStop {
			s.gqCond.Wait()
		}
		if len(s.gq) == 0 {
			s.gqMu.Unlock()
			return
		}
		batch := s.gq
		s.gq = nil
		s.gqBusy = true
		hold := s.gqHold
		s.gqMu.Unlock()

		if hold != nil {
			// Test hook: simulate the window between execute and group-sync.
			<-hold
		}
		err := s.writeGroup(batch)
		// Acknowledge before clearing gqBusy so Flush returns only after
		// every callback of the drained batch has run.
		for _, q := range batch {
			if q.cb != nil {
				q.cb(err)
			}
		}

		s.gqMu.Lock()
		s.gqBusy = false
		if err != nil && s.gqErr == nil {
			s.gqErr = err
		}
		s.gqCond.Broadcast()
		s.gqMu.Unlock()
	}
}

// writeGroup frames the batch into one pooled buffer, appends it with a
// single write (and at most one fsync), and advances the log index. The
// frames are built off the store lock — the committer is the only encoder —
// so queueing executors never wait behind serialization, and the pooled
// buffer means a steady-state group commit allocates only its offset
// bookkeeping, never a fresh encode buffer per record (the allocation
// benchmark in group_test.go pins this down).
func (s *Store) writeGroup(batch []queuedRec) error {
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()
	offs := make([]int64, len(batch))
	for i, q := range batch {
		offs[i] = int64(len(buf))
		buf = appendFramedRecord(buf, q.rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: group append on closed store")
	}
	next := s.next
	for _, q := range batch {
		if q.rec.Seq != next {
			return fmt.Errorf("storage: group append out of order: want seq %d, got %d", next, q.rec.Seq)
		}
		next++
	}
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("storage: group append: %w", err)
	}
	if s.opts.Sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("storage: group sync: %w", err)
		}
	}
	for i, q := range batch {
		s.index = append(s.index, walEntry{seq: q.rec.Seq, off: s.walSize + offs[i]})
	}
	s.walSize += int64(len(buf))
	s.next = next
	s.groups.Add(1)
	s.grouped.Add(int64(len(batch)))
	return nil
}

// stopCommitter signals the committer to exit once the queue is empty and
// waits for it; called by Close after Flush.
func (s *Store) stopCommitter() {
	s.gqMu.Lock()
	if s.gqStop {
		s.gqMu.Unlock()
		<-s.gqDone
		return
	}
	s.gqStop = true
	s.gqCond.Broadcast()
	s.gqMu.Unlock()
	<-s.gqDone
}
