// Package crypto provides the authenticated-communication primitives the PoE
// paper relies on (§II-A, §IV-C): pairwise message authentication codes,
// digital signatures, and threshold signatures, plus SHA-256 digests.
//
// Substitutions relative to the paper's implementation (see DESIGN.md §3):
//
//   - CMAC+AES        → HMAC-SHA256 (same symmetric-authenticator role).
//   - BLS threshold   → Ed25519 multi-signature aggregation: a certificate is
//     the set of nf constituent signatures plus a signer bitmap. It offers
//     the same unforgeability structure (no coalition of f replicas can mint
//     a certificate) behind the same Share/Combine/Verify interface.
//   - An additional HMAC-based threshold scheme is provided for experiments
//     that isolate protocol cost from public-key cost; it is NOT byzantine
//     unforgeable (any key holder can forge) and is clearly marked.
//
// All keys derive deterministically from a master seed held by the trusted
// dealer (KeyRing). In a real deployment the dealer is replaced by a
// distributed key-generation ceremony; the protocol code is agnostic.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/types"
)

// edVerifies counts actual ed25519.Verify invocations (cache misses). Tests
// and benchmarks use it to assert that shares and certificates are verified
// at most once; it is not a correctness mechanism.
var edVerifies atomic.Int64

// EdVerifyCount returns the cumulative number of raw Ed25519 signature
// verifications performed by this package.
func EdVerifyCount() int64 { return edVerifies.Load() }

// Scheme selects how replicas authenticate protocol messages (ingredient I3
// of the paper: PoE is signature-scheme agnostic).
type Scheme int

const (
	// SchemeNone disables authentication. Only for the Fig 8 "None" column;
	// such a system cannot handle malicious behaviour.
	SchemeNone Scheme = iota
	// SchemeMAC authenticates replica messages with pairwise HMACs and uses
	// all-to-all SUPPORT broadcast (Appendix A of the paper).
	SchemeMAC
	// SchemeTS uses threshold signatures to linearize the support phase
	// (§II-B of the paper).
	SchemeTS
	// SchemeED signs every message with Ed25519 digital signatures
	// (the Fig 8 "ED" column).
	SchemeED
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeMAC:
		return "mac"
	case SchemeTS:
		return "ts"
	case SchemeED:
		return "ed"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// KeyRing is the trusted dealer: it derives every key in the system from a
// master seed. Each node receives a NodeKeys view scoped to its identity;
// the protocol code never touches another node's private material.
type KeyRing struct {
	seed    []byte
	n       int
	pubKeys map[types.NodeID]ed25519.PublicKey

	// cliKeys caches lazily derived client public keys. Deriving an Ed25519
	// public key is a scalar-base multiplication — comparable in cost to a
	// verification — so re-deriving it per signature check would double the
	// price of every client-request verification.
	cliMu   sync.RWMutex
	cliKeys map[types.NodeID]ed25519.PublicKey
}

// NewKeyRing creates a dealer for a system of n replicas using the given
// master seed. Clients obtain keys on demand.
func NewKeyRing(n int, seed []byte) *KeyRing {
	if len(seed) == 0 {
		seed = []byte("poe-deterministic-master-seed")
	}
	r := &KeyRing{
		seed:    append([]byte(nil), seed...),
		n:       n,
		pubKeys: make(map[types.NodeID]ed25519.PublicKey),
		cliKeys: make(map[types.NodeID]ed25519.PublicKey),
	}
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		r.pubKeys[node] = r.privKey(node).Public().(ed25519.PublicKey)
	}
	return r
}

// N returns the number of replicas the ring was created for.
func (r *KeyRing) N() int { return r.n }

// derive produces 32 bytes of key material bound to a label.
func (r *KeyRing) derive(label string, parts ...uint64) []byte {
	mac := hmac.New(sha256.New, r.seed)
	mac.Write([]byte(label))
	var buf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(buf[:], p)
		mac.Write(buf[:])
	}
	return mac.Sum(nil)
}

func (r *KeyRing) privKey(node types.NodeID) ed25519.PrivateKey {
	return ed25519.NewKeyFromSeed(r.derive("ed25519", uint64(uint32(node))))
}

// PublicKey returns the Ed25519 public key of a node. Replica keys are
// precomputed; client keys are derived on first use and cached. PublicKey is
// safe for concurrent use.
func (r *KeyRing) PublicKey(node types.NodeID) ed25519.PublicKey {
	if pk, ok := r.pubKeys[node]; ok {
		return pk
	}
	r.cliMu.RLock()
	pk, ok := r.cliKeys[node]
	r.cliMu.RUnlock()
	if ok {
		return pk
	}
	pk = r.privKey(node).Public().(ed25519.PublicKey)
	r.cliMu.Lock()
	if r.cliKeys == nil || len(r.cliKeys) >= 1<<17 {
		r.cliKeys = make(map[types.NodeID]ed25519.PublicKey)
	}
	r.cliKeys[node] = pk
	r.cliMu.Unlock()
	return pk
}

// pairKey returns the symmetric key shared between nodes a and b.
func (r *KeyRing) pairKey(a, b types.NodeID) []byte {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return r.derive("pairmac", uint64(uint32(lo)), uint64(uint32(hi)))
}

// thresholdKey returns replica i's key for the HMAC threshold scheme.
func (r *KeyRing) thresholdKey(i types.ReplicaID) []byte {
	return r.derive("thresh-hmac", uint64(i))
}

// NodeKeys returns the key material visible to one node.
func (r *KeyRing) NodeKeys(node types.NodeID) *NodeKeys {
	return &NodeKeys{
		ring:     r,
		self:     node,
		priv:     r.privKey(node),
		pairKeys: make(map[types.NodeID][]byte),
	}
}

// NodeKeys is one node's view of the key ring: its own private keys plus
// everyone's public keys. NodeKeys is safe for concurrent use (the parallel
// authentication pipeline verifies with it from worker goroutines).
type NodeKeys struct {
	ring *KeyRing
	self types.NodeID
	priv ed25519.PrivateKey

	// pairKeys caches the derived pairwise MAC keys: deriving one costs a
	// full HMAC pass, which would otherwise be paid twice per MAC operation.
	pairMu   sync.RWMutex
	pairKeys map[types.NodeID][]byte
}

// pairKeyCached returns the symmetric key shared with peer, deriving and
// caching it on first use.
func (k *NodeKeys) pairKeyCached(peer types.NodeID) []byte {
	k.pairMu.RLock()
	key, ok := k.pairKeys[peer]
	k.pairMu.RUnlock()
	if ok {
		return key
	}
	key = k.ring.pairKey(k.self, peer)
	k.pairMu.Lock()
	if k.pairKeys == nil || len(k.pairKeys) >= 1<<17 {
		k.pairKeys = make(map[types.NodeID][]byte)
	}
	k.pairKeys[peer] = key
	k.pairMu.Unlock()
	return key
}

// Self returns the owning node.
func (k *NodeKeys) Self() types.NodeID { return k.self }

// Sign produces an Ed25519 signature by this node over msg.
func (k *NodeKeys) Sign(msg []byte) []byte {
	return ed25519.Sign(k.priv, msg)
}

// VerifyFrom checks an Ed25519 signature allegedly produced by node from.
func (k *NodeKeys) VerifyFrom(from types.NodeID, msg, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	edVerifies.Add(1)
	return ed25519.Verify(k.ring.PublicKey(from), msg, sig)
}

// MAC computes the HMAC tag for a message destined to peer.
func (k *NodeKeys) MAC(peer types.NodeID, msg []byte) []byte {
	mac := hmac.New(sha256.New, k.pairKeyCached(peer))
	mac.Write(msg)
	return mac.Sum(nil)
}

// CheckMAC verifies the HMAC tag on a message received from peer.
func (k *NodeKeys) CheckMAC(peer types.NodeID, msg, tag []byte) bool {
	mac := hmac.New(sha256.New, k.pairKeyCached(peer))
	mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), tag)
}

// Share is a threshold-signature share s〈v〉i produced by one replica.
type Share struct {
	Signer types.ReplicaID
	Data   []byte
}

// ErrNotEnoughShares is returned by Combine when fewer than Threshold() valid
// shares from distinct signers are supplied.
var ErrNotEnoughShares = errors.New("crypto: not enough valid threshold shares")

// ThresholdScheme is the signature-share interface the protocols use: any
// replica produces a Share; nf valid shares from distinct replicas Combine
// into a constant certificate verifiable by everyone (§II-A).
type ThresholdScheme interface {
	// Share produces this replica's signature share over msg.
	Share(msg []byte) Share
	// VerifyShare checks a share received from another replica.
	VerifyShare(msg []byte, s Share) bool
	// Combine aggregates at least Threshold() valid shares from distinct
	// replicas into a certificate.
	Combine(msg []byte, shares []Share) ([]byte, error)
	// Verify checks a certificate produced by Combine.
	Verify(msg []byte, cert []byte) bool
	// Threshold returns the number of distinct shares Combine requires.
	Threshold() int
}

// NewThresholdScheme builds the threshold scheme for the given replica. If
// unforgeable is true the Ed25519 multi-signature scheme is returned,
// otherwise the cheap HMAC scheme.
func NewThresholdScheme(ring *KeyRing, self types.ReplicaID, threshold int, unforgeable bool) ThresholdScheme {
	if unforgeable {
		return &EdThreshold{ring: ring, self: self, keys: ring.NodeKeys(types.ReplicaNode(self)), t: threshold}
	}
	return &HMACThreshold{ring: ring, self: self, t: threshold}
}

// NewVerifier builds a verify-only threshold scheme for non-replica parties
// (clients checking aggregated certificates). Calling Share on it panics.
func NewVerifier(ring *KeyRing, threshold int, unforgeable bool) ThresholdScheme {
	if unforgeable {
		return &EdThreshold{ring: ring, self: -1, t: threshold}
	}
	return &HMACThreshold{ring: ring, self: -1, t: threshold}
}

// EdThreshold implements ThresholdScheme as an Ed25519 multi-signature: the
// certificate is a signer bitmap followed by the constituent signatures.
// Stand-in for the paper's BLS signatures (DESIGN.md §3).
//
// EdThreshold is safe for concurrent use and remembers which shares and
// certificates it has already verified: the authentication pipeline verifies
// shares on worker goroutines as they arrive, and the replica event loop's
// later VerifyShare/Combine/Verify calls become cache hits instead of
// repeated Ed25519 operations. A Byzantine replica that forces a retry can
// therefore never make honest shares pay the verification cost twice.
type EdThreshold struct {
	ring *KeyRing
	self types.ReplicaID
	keys *NodeKeys
	t    int

	mu      sync.Mutex
	shareOK map[[32]byte]struct{} // shares proven valid
	certOK  map[[32]byte]struct{} // certificates proven valid
}

// cacheCap bounds the verified-share/certificate memo; exceeding it clears
// the map (a burst of re-verification, amortized away).
const cacheCap = 8192

// Threshold implements ThresholdScheme.
func (e *EdThreshold) Threshold() int { return e.t }

// Share implements ThresholdScheme.
func (e *EdThreshold) Share(msg []byte) Share {
	return Share{Signer: e.self, Data: e.keys.Sign(msg)}
}

// shareCacheKey binds a share to the message it signs.
func shareCacheKey(msg []byte, s Share) [32]byte {
	h := sha256.New()
	var id [4]byte
	binary.BigEndian.PutUint32(id[:], uint32(s.Signer))
	h.Write([]byte("share"))
	h.Write(id[:])
	h.Write(s.Data)
	h.Write(msg)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// certCacheKey binds a certificate to the message it certifies.
func certCacheKey(msg, cert []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("cert"))
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(msg)))
	h.Write(l[:])
	h.Write(msg)
	h.Write(cert)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

func (e *EdThreshold) rememberShare(k [32]byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shareOK == nil || len(e.shareOK) >= cacheCap {
		e.shareOK = make(map[[32]byte]struct{})
	}
	e.shareOK[k] = struct{}{}
}

func (e *EdThreshold) rememberCert(k [32]byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.certOK == nil || len(e.certOK) >= cacheCap {
		e.certOK = make(map[[32]byte]struct{})
	}
	e.certOK[k] = struct{}{}
}

// VerifyShare implements ThresholdScheme. A share is Ed25519-verified at
// most once; subsequent checks of the same (message, share) pair are memo
// lookups.
func (e *EdThreshold) VerifyShare(msg []byte, s Share) bool {
	if s.Signer < 0 || int(s.Signer) >= e.ring.n || len(s.Data) != ed25519.SignatureSize {
		return false
	}
	k := shareCacheKey(msg, s)
	e.mu.Lock()
	_, hit := e.shareOK[k]
	e.mu.Unlock()
	if hit {
		return true
	}
	edVerifies.Add(1)
	if !ed25519.Verify(e.ring.PublicKey(types.ReplicaNode(s.Signer)), msg, s.Data) {
		return false
	}
	e.rememberShare(k)
	return true
}

// Combine implements ThresholdScheme. The certificate layout is:
//
//	uint16 count | count × (uint32 signer | 64-byte signature)
//
// Share validity checks are independent, so they fan out across the
// verification pool; shares the pipeline already verified cost a memo
// lookup.
func (e *EdThreshold) Combine(msg []byte, shares []Share) ([]byte, error) {
	uniq := make([]Share, 0, len(shares))
	seen := make(map[types.ReplicaID]bool, len(shares))
	for _, s := range shares {
		if s.Signer < 0 || int(s.Signer) >= e.ring.n || seen[s.Signer] {
			continue
		}
		seen[s.Signer] = true
		uniq = append(uniq, s)
	}
	ok := VerifySharesParallel(e, msg, uniq)
	var valid []Share
	for i, s := range uniq {
		if !ok[i] {
			continue
		}
		valid = append(valid, s)
		if len(valid) == e.t {
			break
		}
	}
	if len(valid) < e.t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(valid), e.t)
	}
	cert := make([]byte, 2, 2+len(valid)*(4+ed25519.SignatureSize))
	binary.BigEndian.PutUint16(cert, uint16(len(valid)))
	for _, s := range valid {
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(s.Signer))
		cert = append(cert, id[:]...)
		cert = append(cert, s.Data...)
	}
	// The combiner proved every constituent share, so the certificate itself
	// is known-valid: remember it so a later Verify is a memo lookup.
	e.rememberCert(certCacheKey(msg, cert))
	return cert, nil
}

// Verify implements ThresholdScheme. Constituent signatures are checked
// concurrently on the verification pool; a certificate (or share) this
// scheme has already proven costs a memo lookup.
func (e *EdThreshold) Verify(msg []byte, cert []byte) bool {
	if len(cert) < 2 {
		return false
	}
	count := int(binary.BigEndian.Uint16(cert))
	if count < e.t || len(cert) != 2+count*(4+ed25519.SignatureSize) {
		return false
	}
	ck := certCacheKey(msg, cert)
	e.mu.Lock()
	_, hit := e.certOK[ck]
	e.mu.Unlock()
	if hit {
		return true
	}
	entries := make([]Share, 0, count)
	seen := make(map[types.ReplicaID]bool, count)
	off := 2
	for i := 0; i < count; i++ {
		signer := types.ReplicaID(binary.BigEndian.Uint32(cert[off:]))
		sig := cert[off+4 : off+4+ed25519.SignatureSize]
		off += 4 + ed25519.SignatureSize
		if signer < 0 || int(signer) >= e.ring.n || seen[signer] {
			return false
		}
		seen[signer] = true
		entries = append(entries, Share{Signer: signer, Data: sig})
	}
	// Certificate entries are exactly shares over msg, so the share memo is
	// shared between the two paths: a collector that verified the shares
	// gets the certificate check for free, and vice versa.
	if !ParallelAll(len(entries), func(i int) bool { return e.VerifyShare(msg, entries[i]) }) {
		return false
	}
	e.rememberCert(ck)
	return true
}

// HMACThreshold implements ThresholdScheme with per-replica HMAC keys known
// to all replicas. It is cheap (symmetric crypto only) but NOT byzantine
// unforgeable: any replica can forge any other replica's share. It exists to
// isolate protocol cost from public-key cost in experiments, mirroring the
// paper's observation that small deployments favour symmetric schemes.
type HMACThreshold struct {
	ring *KeyRing
	self types.ReplicaID
	t    int
}

// Threshold implements ThresholdScheme.
func (h *HMACThreshold) Threshold() int { return h.t }

func (h *HMACThreshold) shareFor(id types.ReplicaID, msg []byte) []byte {
	mac := hmac.New(sha256.New, h.ring.thresholdKey(id))
	mac.Write(msg)
	return mac.Sum(nil)
}

// Share implements ThresholdScheme.
func (h *HMACThreshold) Share(msg []byte) Share {
	return Share{Signer: h.self, Data: h.shareFor(h.self, msg)}
}

// VerifyShare implements ThresholdScheme.
func (h *HMACThreshold) VerifyShare(msg []byte, s Share) bool {
	if s.Signer < 0 || int(s.Signer) >= h.ring.n {
		return false
	}
	return hmac.Equal(s.Data, h.shareFor(s.Signer, msg))
}

// Combine implements ThresholdScheme. The certificate layout matches
// EdThreshold but with 32-byte HMAC tags.
func (h *HMACThreshold) Combine(msg []byte, shares []Share) ([]byte, error) {
	seen := make(map[types.ReplicaID]bool, len(shares))
	var valid []Share
	for _, s := range shares {
		if seen[s.Signer] || !h.VerifyShare(msg, s) {
			continue
		}
		seen[s.Signer] = true
		valid = append(valid, s)
		if len(valid) == h.t {
			break
		}
	}
	if len(valid) < h.t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(valid), h.t)
	}
	cert := make([]byte, 2, 2+len(valid)*(4+sha256.Size))
	binary.BigEndian.PutUint16(cert, uint16(len(valid)))
	for _, s := range valid {
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(s.Signer))
		cert = append(cert, id[:]...)
		cert = append(cert, s.Data...)
	}
	return cert, nil
}

// Verify implements ThresholdScheme.
func (h *HMACThreshold) Verify(msg []byte, cert []byte) bool {
	if len(cert) < 2 {
		return false
	}
	count := int(binary.BigEndian.Uint16(cert))
	if count < h.t || len(cert) != 2+count*(4+sha256.Size) {
		return false
	}
	seen := make(map[types.ReplicaID]bool, count)
	off := 2
	for i := 0; i < count; i++ {
		signer := types.ReplicaID(binary.BigEndian.Uint32(cert[off:]))
		tag := cert[off+4 : off+4+sha256.Size]
		off += 4 + sha256.Size
		if signer < 0 || int(signer) >= h.ring.n || seen[signer] {
			return false
		}
		seen[signer] = true
		if !hmac.Equal(tag, h.shareFor(signer, msg)) {
			return false
		}
	}
	return true
}
