package crypto

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/poexec/poe/internal/types"
)

// Micro-benchmarks isolating the crypto substrate the consensus benchmarks
// sit on: threshold-share combination, certificate verification, and
// client-request signature checking, each sequential (one worker) vs. pooled
// (GOMAXPROCS workers). Every iteration uses a fresh message so the
// verified-share/certificate memo never hits — these measure raw
// verification throughput, not the memo. On a single-core machine "seq" and
// "pool" converge; the pooled variants show their gain on multi-core
// hardware.

var benchNs = []int{4, 16, 32}

func benchModes(b *testing.B, run func(b *testing.B)) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"pool", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			SetVerifyWorkers(mode.workers)
			defer SetVerifyWorkers(0)
			run(b)
		})
	}
}

func benchMsg(i int) []byte {
	m := make([]byte, 32)
	binary.BigEndian.PutUint64(m, uint64(i))
	return m
}

func BenchmarkEdThresholdCombine(b *testing.B) {
	for _, n := range benchNs {
		thresh := n - (n-1)/3
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ring := NewKeyRing(n, []byte("bench"))
			signers := make([]ThresholdScheme, n)
			for i := range signers {
				signers[i] = NewThresholdScheme(ring, types.ReplicaID(i), thresh, true)
			}
			benchModes(b, func(b *testing.B) {
				combiner := NewThresholdScheme(ring, 0, thresh, true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					msg := benchMsg(i)
					shares := make([]Share, thresh)
					for j := 0; j < thresh; j++ {
						shares[j] = signers[j].Share(msg)
					}
					b.StartTimer()
					if _, err := combiner.Combine(msg, shares); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkEdThresholdVerify(b *testing.B) {
	for _, n := range benchNs {
		thresh := n - (n-1)/3
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ring := NewKeyRing(n, []byte("bench"))
			signers := make([]ThresholdScheme, n)
			for i := range signers {
				signers[i] = NewThresholdScheme(ring, types.ReplicaID(i), thresh, true)
			}
			combiner := NewThresholdScheme(ring, 0, thresh, true)
			benchModes(b, func(b *testing.B) {
				verifier := NewVerifier(ring, thresh, true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					msg := benchMsg(i)
					shares := make([]Share, thresh)
					for j := 0; j < thresh; j++ {
						shares[j] = signers[j].Share(msg)
					}
					cert, err := combiner.Combine(msg, shares)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if !verifier.Verify(msg, cert) {
						b.Fatal("certificate rejected")
					}
				}
			})
		})
	}
}

// BenchmarkVerifyClientRequest measures checking the client signatures of a
// whole batch (n requests from distinct clients), the per-proposal work the
// authentication pipeline fans out.
func BenchmarkVerifyClientRequest(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ring := NewKeyRing(4, []byte("bench"))
			benchModes(b, func(b *testing.B) {
				keys := ring.NodeKeys(types.ReplicaNode(0))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					reqs := make([]types.Request, n)
					for j := range reqs {
						client := types.ClientIDBase + types.ClientID(j)
						reqs[j] = types.Request{Txn: types.Transaction{
							Client: client, Seq: uint64(i + 1),
							Ops: []types.Op{{Kind: types.OpWrite, Key: "k", Value: benchMsg(i)}},
						}}
						d := reqs[j].Digest()
						reqs[j].Sig = ring.NodeKeys(types.ClientNode(client)).Sign(d[:])
					}
					b.StartTimer()
					ok := ParallelAll(len(reqs), func(j int) bool {
						d := reqs[j].Digest()
						return keys.VerifyFrom(types.ClientNode(reqs[j].Txn.Client), d[:], reqs[j].Sig)
					})
					if !ok {
						b.Fatal("signature rejected")
					}
				}
			})
		})
	}
}
