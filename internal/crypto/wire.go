package crypto

import (
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Wire codec helpers for the crypto values embedded in protocol messages.

// AppendShare appends a threshold share: signer, then share bytes.
func AppendShare(buf []byte, s Share) []byte {
	buf = wire.AppendI32(buf, int32(s.Signer))
	return wire.AppendBytes(buf, s.Data)
}

// ReadShare decodes one threshold share.
func ReadShare(r *wire.Reader) Share {
	return Share{Signer: types.ReplicaID(r.I32()), Data: r.Bytes()}
}

// AppendShares appends a count-prefixed slice of shares.
func AppendShares(buf []byte, shares []Share) []byte {
	buf = wire.AppendU32(buf, uint32(len(shares)))
	for _, s := range shares {
		buf = AppendShare(buf, s)
	}
	return buf
}

// ReadShares decodes a count-prefixed slice of shares.
func ReadShares(r *wire.Reader) []Share {
	n := r.Count(8) // i32 signer + u32 length prefix
	if n == 0 {
		return nil
	}
	out := make([]Share, n)
	for i := range out {
		out[i] = ReadShare(r)
	}
	if r.Err() != nil {
		return nil
	}
	return out
}
