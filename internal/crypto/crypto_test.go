package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func ring(n int) *KeyRing { return NewKeyRing(n, []byte("crypto-test")) }

func TestDeterministicKeyDerivation(t *testing.T) {
	a := NewKeyRing(4, []byte("seed"))
	b := NewKeyRing(4, []byte("seed"))
	for i := 0; i < 4; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		if !bytes.Equal(a.PublicKey(node), b.PublicKey(node)) {
			t.Fatalf("replica %d keys differ across identically seeded rings", i)
		}
	}
	c := NewKeyRing(4, []byte("other"))
	if bytes.Equal(a.PublicKey(0), c.PublicKey(0)) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestSignVerify(t *testing.T) {
	r := ring(4)
	k0 := r.NodeKeys(types.ReplicaNode(0))
	k1 := r.NodeKeys(types.ReplicaNode(1))
	msg := []byte("payload")
	sig := k0.Sign(msg)
	if !k1.VerifyFrom(types.ReplicaNode(0), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if k1.VerifyFrom(types.ReplicaNode(1), msg, sig) {
		t.Fatal("signature attributed to wrong signer accepted")
	}
	if k1.VerifyFrom(types.ReplicaNode(0), []byte("other"), sig) {
		t.Fatal("signature over wrong message accepted")
	}
	if k1.VerifyFrom(types.ReplicaNode(0), msg, sig[:10]) {
		t.Fatal("truncated signature accepted")
	}
}

func TestMACPairwise(t *testing.T) {
	r := ring(4)
	k0 := r.NodeKeys(types.ReplicaNode(0))
	k1 := r.NodeKeys(types.ReplicaNode(1))
	k2 := r.NodeKeys(types.ReplicaNode(2))
	msg := []byte("hello")
	tag := k0.MAC(types.ReplicaNode(1), msg)
	if !k1.CheckMAC(types.ReplicaNode(0), msg, tag) {
		t.Fatal("valid MAC rejected")
	}
	if k2.CheckMAC(types.ReplicaNode(0), msg, tag) {
		t.Fatal("MAC for a different pair accepted")
	}
	if k1.CheckMAC(types.ReplicaNode(0), []byte("tampered"), tag) {
		t.Fatal("MAC over wrong message accepted")
	}
}

func testThreshold(t *testing.T, unforgeable bool) {
	t.Helper()
	const n, nf = 4, 3
	r := ring(n)
	schemes := make([]ThresholdScheme, n)
	for i := 0; i < n; i++ {
		schemes[i] = NewThresholdScheme(r, types.ReplicaID(i), nf, unforgeable)
	}
	msg := []byte("proposal-digest")
	var shares []Share
	for i := 0; i < n; i++ {
		sh := schemes[i].Share(msg)
		if !schemes[(i+1)%n].VerifyShare(msg, sh) {
			t.Fatalf("share %d rejected", i)
		}
		shares = append(shares, sh)
	}
	// Too few shares.
	if _, err := schemes[0].Combine(msg, shares[:nf-1]); err == nil {
		t.Fatal("combine with nf-1 shares should fail")
	}
	// Duplicate signers don't count twice.
	if _, err := schemes[0].Combine(msg, []Share{shares[0], shares[0], shares[0]}); err == nil {
		t.Fatal("combine with duplicate signers should fail")
	}
	cert, err := schemes[0].Combine(msg, shares[:nf])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !schemes[i].Verify(msg, cert) {
			t.Fatalf("certificate rejected by replica %d", i)
		}
	}
	if schemes[0].Verify([]byte("other"), cert) {
		t.Fatal("certificate accepted for wrong message")
	}
	if schemes[0].Verify(msg, cert[:len(cert)-1]) {
		t.Fatal("truncated certificate accepted")
	}
	// A flipped byte in a share invalidates the certificate.
	bad := append([]byte(nil), cert...)
	bad[len(bad)-1] ^= 1
	if schemes[0].Verify(msg, bad) {
		t.Fatal("tampered certificate accepted")
	}
}

func TestEdThreshold(t *testing.T)   { testThreshold(t, true) }
func TestHMACThreshold(t *testing.T) { testThreshold(t, false) }

func TestEdThresholdForgeryByCoalition(t *testing.T) {
	// f byzantine replicas (here 1 of 4, nf = 3) cannot mint a certificate:
	// they hold only their own shares.
	const n, nf = 4, 3
	r := ring(n)
	byz := NewThresholdScheme(r, 0, nf, true)
	msg := []byte("forged-proposal")
	own := byz.Share(msg)
	if _, err := byz.Combine(msg, []Share{own}); err == nil {
		t.Fatal("single byzantine replica combined a certificate")
	}
	// Fabricated shares for other signers must be rejected.
	fake := Share{Signer: 1, Data: own.Data}
	if byz.VerifyShare(msg, fake) {
		t.Fatal("share forged in another replica's name accepted")
	}
}

func TestVerifierIsVerifyOnly(t *testing.T) {
	const n, nf = 4, 3
	r := ring(n)
	schemes := make([]ThresholdScheme, nf)
	var shares []Share
	msg := []byte("m")
	for i := 0; i < nf; i++ {
		schemes[i] = NewThresholdScheme(r, types.ReplicaID(i), nf, true)
		shares = append(shares, schemes[i].Share(msg))
	}
	cert, err := schemes[0].Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r, nf, true)
	if !v.Verify(msg, cert) {
		t.Fatal("verifier rejected a valid certificate")
	}
}

// TestQuickThresholdRoundTrip: any nf-subset of valid shares combines into a
// certificate that verifies, for both schemes.
func TestQuickThresholdRoundTrip(t *testing.T) {
	r := ring(7) // n=7, f=2, nf=5
	const nf = 5
	ed := make([]ThresholdScheme, 7)
	hm := make([]ThresholdScheme, 7)
	for i := 0; i < 7; i++ {
		ed[i] = NewThresholdScheme(r, types.ReplicaID(i), nf, true)
		hm[i] = NewThresholdScheme(r, types.ReplicaID(i), nf, false)
	}
	f := func(msg []byte, perm uint8) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		start := int(perm) % 3
		for _, schemes := range [][]ThresholdScheme{ed, hm} {
			var shares []Share
			for i := start; i < start+nf; i++ {
				shares = append(shares, schemes[i].Share(msg))
			}
			cert, err := schemes[0].Combine(msg, shares)
			if err != nil {
				return false
			}
			if !schemes[6].Verify(msg, cert) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
