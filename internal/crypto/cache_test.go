package crypto

import (
	"testing"

	"github.com/poexec/poe/internal/types"
)

// These tests pin the verified-share/certificate memo semantics the parallel
// authentication pipeline relies on: an honest share is Ed25519-verified at
// most once per scheme instance, no matter how many times a Byzantine peer
// forces the surrounding material to be re-checked. EdVerifyCount observes
// raw verifications (memo misses).

func thresholdSetup(t *testing.T, n, thresh int) (*KeyRing, []ThresholdScheme) {
	t.Helper()
	ring := NewKeyRing(n, []byte("cache-test"))
	schemes := make([]ThresholdScheme, n)
	for i := 0; i < n; i++ {
		schemes[i] = NewThresholdScheme(ring, types.ReplicaID(i), thresh, true)
	}
	return ring, schemes
}

func TestByzantineShareDoesNotReverifyHonestShares(t *testing.T) {
	ring, schemes := thresholdSetup(t, 4, 3)
	collector := schemes[0].(*EdThreshold)
	msg := []byte("proposal-digest")

	honest0 := schemes[0].Share(msg)
	honest2 := schemes[2].Share(msg)
	honest3 := schemes[3].Share(msg)
	// A Byzantine replica sends a well-formed share over the wrong message.
	byz := schemes[1].Share([]byte("some-other-digest"))

	// First combine attempt: two honest shares plus the Byzantine one —
	// below threshold, the combine fails, and all three cost one raw
	// verification each.
	base := EdVerifyCount()
	if _, err := collector.Combine(msg, []Share{honest0, byz, honest2}); err == nil {
		t.Fatal("combine should fail below threshold")
	}
	if d := EdVerifyCount() - base; d != 3 {
		t.Fatalf("first combine: %d raw verifications, want 3", d)
	}

	// Retry with one more honest share: the previously verified honest
	// shares are memo hits; only the new share (and the uncached Byzantine
	// failure) pay Ed25519 again. Without the memo this retry would re-pay
	// for every retained share — the O(n²) pattern under Byzantine retries.
	base = EdVerifyCount()
	cert, err := collector.Combine(msg, []Share{honest0, byz, honest2, honest3})
	if err != nil {
		t.Fatalf("combine: %v", err)
	}
	if d := EdVerifyCount() - base; d != 2 {
		t.Fatalf("retry combine: %d raw verifications, want 2 (new share + uncached Byzantine failure)", d)
	}

	// The combiner proved the certificate while building it.
	base = EdVerifyCount()
	if !collector.Verify(msg, cert) {
		t.Fatal("certificate invalid")
	}
	if d := EdVerifyCount() - base; d != 0 {
		t.Fatalf("combiner cert verify: %d raw verifications, want 0", d)
	}

	// A third party (fresh scheme instance, empty memo) pays once for the
	// certificate, then never again.
	verifier := NewVerifier(ring, 3, true)
	base = EdVerifyCount()
	if !verifier.Verify(msg, cert) {
		t.Fatal("third-party verify failed")
	}
	first := EdVerifyCount() - base
	if first != 3 {
		t.Fatalf("third-party verify: %d raw verifications, want 3", first)
	}
	base = EdVerifyCount()
	if !verifier.Verify(msg, cert) {
		t.Fatal("repeat verify failed")
	}
	if d := EdVerifyCount() - base; d != 0 {
		t.Fatalf("repeat verify: %d raw verifications, want 0", d)
	}
}

func TestVerifyShareMemoHitsAcrossCalls(t *testing.T) {
	_, schemes := thresholdSetup(t, 4, 3)
	e := schemes[0].(*EdThreshold)
	msg := []byte("m")
	sh := schemes[2].Share(msg)

	base := EdVerifyCount()
	for i := 0; i < 5; i++ {
		if !e.VerifyShare(msg, sh) {
			t.Fatal("share invalid")
		}
	}
	if d := EdVerifyCount() - base; d != 1 {
		t.Fatalf("%d raw verifications for 5 checks, want 1", d)
	}
	// The same bytes under a different message must not hit the memo.
	if e.VerifyShare([]byte("other"), sh) {
		t.Fatal("share accepted for wrong message")
	}
}
