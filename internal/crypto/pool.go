package crypto

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/types"
)

// This file implements the shared verification pool: asymmetric-crypto
// checks over independent items (threshold shares, certificate signatures,
// per-request client signatures) are fanned out across worker goroutines so
// a single replica event loop never serializes a pile of Ed25519
// verifications. On a single-core system the pool degrades to a plain loop
// with no goroutine overhead.

// verifyWorkers is the fan-out width used by ParallelAll/ParallelEach.
var verifyWorkers atomic.Int32

func init() { verifyWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetVerifyWorkers overrides the verification fan-out width; n < 1 resets it
// to GOMAXPROCS. It exists for the micro-benchmarks that compare sequential
// (n = 1) against pooled verification and for tests; production code leaves
// the default.
func SetVerifyWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	verifyWorkers.Store(int32(n))
}

// ParallelAll reports whether f(i) is true for every i in [0, n). Calls are
// distributed over the verification pool; once any call fails, remaining
// work is abandoned (calls already in flight still finish). f must be safe
// for concurrent use from multiple goroutines.
func ParallelAll(n int, f func(int) bool) bool {
	workers := int(verifyWorkers.Load())
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !f(i) {
				return false
			}
		}
		return true
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !f(i) {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return !failed.Load()
}

// ParallelEach runs f(i) for every i in [0, n) across the verification pool,
// without short-circuiting. f must be safe for concurrent use.
func ParallelEach(n int, f func(int)) {
	workers := int(verifyWorkers.Load())
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// VerifySharesParallel verifies every share against msg under the scheme and
// returns a per-share validity mask. Shares are independent, so the checks
// run concurrently on the pool.
func VerifySharesParallel(s ThresholdScheme, msg []byte, shares []Share) []bool {
	ok := make([]bool, len(shares))
	ParallelEach(len(shares), func(i int) { ok[i] = s.VerifyShare(msg, shares[i]) })
	return ok
}

// FilterValidShares verifies a collection of shares against payload on the
// pool, deletes the invalid ones from the collection, and returns the valid
// shares. Shares the authentication pipeline already proved cost a memo
// lookup. Protocol replicas use this to validate a quorum's worth of shares
// in one pass before combining.
func FilterValidShares(s ThresholdScheme, payload []byte, coll map[types.ReplicaID]Share) []Share {
	ids := make([]types.ReplicaID, 0, len(coll))
	shares := make([]Share, 0, len(coll))
	for id, sh := range coll {
		ids = append(ids, id)
		shares = append(shares, sh)
	}
	ok := VerifySharesParallel(s, payload, shares)
	valid := shares[:0]
	for i, good := range ok {
		if good {
			valid = append(valid, shares[i])
		} else {
			delete(coll, ids[i])
		}
	}
	return valid
}
