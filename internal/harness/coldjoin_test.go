package harness

import (
	"testing"
	"time"
)

// coldJoinOpts sizes the scenario so the cluster genuinely outruns the
// wiped replica: a small checkpoint interval keeps the retained-record
// horizon (RetainSlack = 2×interval) tiny next to what the cluster commits
// during the victim's outage, so the rejoiner cannot bootstrap via Fetch
// and must take the snapshot state-transfer path.
func coldJoinOpts(t *testing.T, p Protocol) ColdJoinOptions {
	opts := quickOpts(p)
	opts.DataDir = t.TempDir()
	opts.CheckpointInterval = 4
	opts.ViewTimeout = 300 * time.Millisecond
	opts.ClientTimeout = 300 * time.Millisecond
	opts.Measure = 3 * time.Second
	return ColdJoinOptions{
		Options:     opts,
		Victim:      2, // a backup in view 0
		CrashAfter:  500 * time.Millisecond,
		RejoinAfter: 1400 * time.Millisecond,
	}
}

func runColdJoin(t *testing.T, p Protocol) {
	t.Helper()
	rep, err := RunColdJoin(coldJoinOpts(t, p))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("%s: crash@%d snapshot@%d final victim=%d live=%d snapInstalled=%d bytes=%d pages=%d retries=%d",
		p, rep.SeqAtCrash, rep.SnapshotSeq, rep.VictimFinalSeq, rep.LiveFinalSeq,
		rep.SnapshotsInstalled, rep.SnapshotBytes, rep.FetchPages, rep.StateSyncRetries)
	if rep.Completed == 0 {
		t.Fatal("cluster made no progress")
	}
	if rep.SeqAtCrash == 0 {
		t.Fatal("victim executed nothing before the crash; scenario vacuous")
	}
	if rep.CompletedAfterRejoin == 0 {
		t.Fatal("cluster stopped committing while the joiner synced")
	}
	// The data dir was wiped, so everything the victim ends with came over
	// the wire — and the gap is only closeable via snapshot transfer.
	if rep.SnapshotsInstalled == 0 {
		t.Fatalf("victim rejoined without installing a snapshot (final seq %d)", rep.VictimFinalSeq)
	}
	if rep.SnapshotSeq == 0 {
		t.Fatal("no snapshot sequence recorded for the joiner")
	}
	if rep.VictimFinalSeq <= rep.SeqAtCrash {
		t.Fatalf("victim never converged past its pre-wipe head (%d → %d)", rep.SeqAtCrash, rep.VictimFinalSeq)
	}
	if !rep.PrefixMatch {
		t.Fatalf("executed prefix diverged: %s", rep.Divergence)
	}
}

// TestColdJoinAllProtocols is the tentpole acceptance scenario: for every
// protocol, a replica is killed mid-run, its data directory deleted, and it
// must rejoin from nothing — detect it is behind via checkpoint
// certificates, install a verified peer snapshot, bridge to the live head
// with record fetch (HotStuff: node fetch), and end digest-prefix-equal with
// the live replicas, all while the cluster keeps committing.
func TestColdJoinAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			runColdJoin(t, p)
		})
	}
}
