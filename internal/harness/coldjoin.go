package harness

// Cold-join scenario: kill one replica mid-run, WIPE its data directory, and
// restart it from nothing while the cluster keeps committing. Unlike the
// crash-restart scenario — where the victim rebuilds a durable prefix from
// its own disk and closes a bounded gap via Fetch — the cold joiner has no
// prefix at all, and by the time it returns the live replicas have pruned
// their execution logs past anything Fetch could serve. Rejoining is only
// possible through the snapshot state-transfer protocol
// (internal/consensus/protocol/statesync.go): detect the gap from checkpoint
// certificates, pull a verified snapshot from a peer, and bridge the rest
// with the ordinary record fetch.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// ColdJoinOptions configure a cold-join run.
type ColdJoinOptions struct {
	Options

	// Victim is the replica to kill, wipe, and restart. Pick a backup:
	// losing a primary additionally rides through a view change, which is a
	// legitimate but noisier variant of the scenario.
	Victim int

	// CrashAfter is when (from run start) the victim is killed and its data
	// directory deleted. RejoinAfter is when the wiped victim is rebuilt
	// and rejoins; the window in between is when the cluster must advance
	// far enough to prune the victim's gap out of Fetch range (size the
	// checkpoint interval and load so it does).
	CrashAfter, RejoinAfter time.Duration
}

// ColdJoinReport is the outcome of a cold-join run.
type ColdJoinReport struct {
	Result

	// SeqAtCrash is the victim's last executed sequence number when it was
	// killed; everything up to it (and beyond) must come back over the wire
	// since the data directory is wiped.
	SeqAtCrash types.SeqNum
	// SnapshotSeq is the sequence number the victim's installed snapshot
	// covered (0 if it never installed one).
	SnapshotSeq types.SeqNum
	// VictimFinalSeq and LiveFinalSeq are the victim's and the live
	// replicas' minimum executed sequence numbers at the end of the run.
	VictimFinalSeq types.SeqNum
	LiveFinalSeq   types.SeqNum
	// CompletedAtRejoin and CompletedAfterRejoin split Completed at
	// RejoinAfter: the cluster holding throughput while the joiner syncs
	// means CompletedAfterRejoin > 0.
	CompletedAtRejoin    int64
	CompletedAfterRejoin int64
	// PrefixMatch reports that every ledger block the victim holds agrees
	// (batch digest, view, hash link) with a live replica's.
	PrefixMatch bool
	Divergence  string
}

// RunColdJoin executes the cold-join scenario. DataDir must be set in the
// embedded Options; client load runs for the whole window so the cluster
// outruns the joiner and keeps committing while it syncs.
func RunColdJoin(opts ColdJoinOptions) (ColdJoinReport, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.DataDir == "" {
		return ColdJoinReport{}, fmt.Errorf("harness: cold-join needs Options.DataDir")
	}
	if opts.Victim < 0 || opts.Victim >= opts.N {
		return ColdJoinReport{}, fmt.Errorf("harness: victim %d out of range", opts.Victim)
	}
	if opts.CrashAfter <= 0 || opts.RejoinAfter <= opts.CrashAfter {
		return ColdJoinReport{}, fmt.Errorf("harness: need 0 < CrashAfter < RejoinAfter")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	net := network.NewChanNet(opts.netOptions()...)
	defer net.Close()
	ring := crypto.NewKeyRing(opts.N, []byte(fmt.Sprintf("harness-%d", opts.Seed)))

	wcfg := workload.DefaultConfig(opts.Records)
	wcfg.Seed = opts.Seed
	var table map[string][]byte
	if !opts.ZeroPayload {
		table = workload.InitialTable(wcfg)
	}

	type runningReplica struct {
		handle replicaHandle
		store  *storage.Store
		cancel context.CancelFunc
		done   chan struct{}
	}
	stores := make([]*storage.Store, opts.N)
	defer func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()
	// Unlike RunCrashRestart, retention is NOT widened: the live replicas
	// prune normally, which is exactly what strands the joiner beyond Fetch
	// and forces the snapshot path.
	start := func(i int) (*runningReplica, error) {
		st, err := storage.Open(replicaDir(opts.DataDir, i), opts.storageOptions())
		if err != nil {
			return nil, err
		}
		stores[i] = st
		ropts := protocol.RuntimeOptions{ZeroPayload: opts.ZeroPayload, InitialTable: table, Storage: st, ParallelExec: opts.ParallelExec, ExecWorkers: opts.ExecWorkers}
		h, err := buildReplica(opts.Options, replicaConfig(opts.Options, i), ring, net.Join(types.ReplicaNode(types.ReplicaID(i))), ropts, nil)
		if err != nil {
			st.Close()
			stores[i] = nil
			return nil, err
		}
		rctx, rcancel := context.WithCancel(ctx)
		r := &runningReplica{handle: h, store: st, cancel: rcancel, done: make(chan struct{})}
		go func() {
			h.Run(rctx)
			close(r.done)
		}()
		return r, nil
	}

	replicas := make([]*runningReplica, opts.N)
	for i := 0; i < opts.N; i++ {
		r, err := start(i)
		if err != nil {
			return ColdJoinReport{}, err
		}
		replicas[i] = r
	}

	var completed atomic.Int64
	var latencySum atomic.Int64
	var measuring atomic.Bool
	clients := make([]submitter, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		s, err := buildClient(opts.Options, i, ring, net)
		if err != nil {
			return ColdJoinReport{}, err
		}
		s.Start(ctx)
		clients[i] = s
	}
	var wg sync.WaitGroup
	startLoad(ctx, &wg, opts.Options, wcfg, clients, &completed, &latencySum, &measuring, newReadStats())

	select {
	case <-time.After(opts.Warmup):
	case <-ctx.Done():
	}
	measuring.Store(true)
	runStart := time.Now()
	report := ColdJoinReport{}
	victimNode := types.ReplicaNode(types.ReplicaID(opts.Victim))

	// Crash and wipe: the victim's network presence, goroutine, storage, AND
	// data directory all disappear — the disk-loss model.
	sleepUntil(ctx, runStart, opts.CrashAfter)
	net.Crash(victimNode)
	replicas[opts.Victim].cancel()
	<-replicas[opts.Victim].done
	report.SeqAtCrash = replicas[opts.Victim].handle.Runtime().Exec.LastExecuted()
	replicas[opts.Victim].store.Close()
	stores[opts.Victim] = nil
	if err := os.RemoveAll(replicaDir(opts.DataDir, opts.Victim)); err != nil {
		return ColdJoinReport{}, fmt.Errorf("harness: wipe victim dir: %w", err)
	}

	// Rejoin from nothing.
	sleepUntil(ctx, runStart, opts.RejoinAfter)
	report.CompletedAtRejoin = completed.Load()
	net.Recover(victimNode)
	restarted, err := start(opts.Victim)
	if err != nil {
		return ColdJoinReport{}, fmt.Errorf("harness: rejoin victim: %w", err)
	}
	replicas[opts.Victim] = restarted

	// Let the run finish under load, then stop everything and compare.
	sleepUntil(ctx, runStart, opts.Measure)
	measuring.Store(false)
	elapsed := time.Since(runStart)
	cancel()
	net.Close()
	wg.Wait()
	for _, r := range replicas {
		<-r.done
	}

	total := completed.Load()
	report.CompletedAfterRejoin = total - report.CompletedAtRejoin
	report.Result = Result{
		Protocol:   opts.Protocol,
		N:          opts.N,
		BatchSize:  opts.BatchSize,
		Completed:  total,
		Throughput: float64(total) / elapsed.Seconds(),
	}
	if total > 0 {
		report.Result.AvgLatency = time.Duration(latencySum.Load() / total)
	}
	for _, r := range replicas {
		report.Result.addReplicaMetrics(r.handle.Runtime().Metrics)
	}

	victim := replicas[opts.Victim].handle.Runtime()
	report.SnapshotSeq = victim.Exec.Chain().Base()
	if victim.Metrics.SnapshotsInstalled.Load() == 0 {
		report.SnapshotSeq = 0
	}
	report.VictimFinalSeq = victim.Exec.LastExecuted()
	for i, r := range replicas {
		if i == opts.Victim {
			continue
		}
		last := r.handle.Runtime().Exec.LastExecuted()
		if report.LiveFinalSeq == 0 || last < report.LiveFinalSeq {
			report.LiveFinalSeq = last
		}
	}
	report.PrefixMatch, report.Divergence = comparePrefix(replicas[opts.Victim].handle, replicas[(opts.Victim+1)%opts.N].handle)
	return report, nil
}
