package harness

// Scenario battery with the conflict-aware parallel execution engine on:
// every replica executes (and crash-recovers) through internal/exec, and the
// existing safety assertions — digest-prefix agreement across replicas,
// recovery to the pre-crash head, cold-join convergence — must hold exactly
// as they do serially. Because the engine is proven bit-identical at the
// executor level (protocol.TestParallel*), any divergence here would point
// at the wiring, not the waves. Test names carry "Parallel" so the CI race
// smoke picks them up.

import (
	"testing"
	"time"
)

func parallelOpts(p Protocol) Options {
	opts := quickOpts(p)
	opts.ParallelExec = true
	opts.ExecWorkers = 4
	return opts
}

// TestParallelRunAllProtocols: every protocol makes progress with the engine
// on, and the engine actually ran (windows drained through it).
func TestParallelRunAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(parallelOpts(p))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Completed == 0 {
				t.Fatal("no transactions completed under parallel execution")
			}
			if res.ParallelWindows == 0 {
				t.Fatal("ParallelExec was set but no windows drained through the engine")
			}
			t.Logf("%v", res)
		})
	}
}

// TestParallelChaosPartitionHeal is the chaos safety check under parallel
// execution: a backup partitioned away and healed mid-run, digest prefixes
// must still agree across all honest replicas.
func TestParallelChaosPartitionHeal(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.ParallelExec = true
	opts.ExecWorkers = 4
	rep, err := RunChaos(ChaosOptions{
		Options:     opts,
		PartitionAt: 400 * time.Millisecond,
		HealAt:      time.Second,
	})
	checkChaos(t, rep, err)
	if rep.ParallelWindows == 0 {
		t.Fatal("chaos run never exercised the parallel engine")
	}
}

// TestParallelChaosEquivocatingPrimary adds a Byzantine primary on top:
// rollback (PoE's speculative repair) must rewind parallel-installed state
// identically, and the cluster must converge under the new view.
func TestParallelChaosEquivocatingPrimary(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.ParallelExec = true
	opts.ExecWorkers = 4
	rep, err := RunChaos(ChaosOptions{
		Options: opts,
		Attack:  AttackEquivocate,
	})
	checkChaos(t, rep, err)
	if rep.ViewChanges == 0 {
		t.Fatal("equivocating primary was never replaced")
	}
}

// TestParallelCrashRestart: the victim crash-recovers by replaying its WAL
// through the parallel engine (one big window) and must land exactly on its
// pre-crash sequence number, then catch up and match the live prefix.
func TestParallelCrashRestart(t *testing.T) {
	cropts := crashRestartOpts(t, PoE)
	cropts.ParallelExec = true
	cropts.ExecWorkers = 4
	rep, err := RunCrashRestart(cropts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("crash@%d recovered@%d final victim=%d live=%d par-windows=%d",
		rep.SeqAtCrash, rep.RecoveredSeq, rep.VictimFinalSeq, rep.LiveFinalSeq, rep.ParallelWindows)
	if rep.Completed == 0 || rep.SeqAtCrash == 0 {
		t.Fatal("scenario vacuous: no progress before the crash")
	}
	if rep.RecoveredSeq != rep.SeqAtCrash {
		t.Fatalf("parallel recovery replayed to %d, executed %d before crash", rep.RecoveredSeq, rep.SeqAtCrash)
	}
	if rep.VictimFinalSeq <= rep.SeqAtCrash {
		t.Fatalf("victim never caught up past its crash point (%d → %d)", rep.SeqAtCrash, rep.VictimFinalSeq)
	}
	if !rep.PrefixMatch {
		t.Fatalf("executed prefix diverged: %s", rep.Divergence)
	}
	if rep.ParallelWindows == 0 {
		t.Fatal("run never exercised the parallel engine")
	}
}

// TestParallelColdJoin: snapshot state transfer plus parallel execution on
// both the servers and the wiped joiner.
func TestParallelColdJoin(t *testing.T) {
	cjopts := coldJoinOpts(t, PoE)
	cjopts.ParallelExec = true
	cjopts.ExecWorkers = 4
	rep, err := RunColdJoin(cjopts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Completed == 0 || rep.SeqAtCrash == 0 {
		t.Fatal("scenario vacuous: no progress before the crash")
	}
	if rep.SnapshotsInstalled == 0 {
		t.Fatalf("victim rejoined without installing a snapshot (final seq %d)", rep.VictimFinalSeq)
	}
	if rep.VictimFinalSeq <= rep.SeqAtCrash {
		t.Fatalf("victim never converged past its pre-wipe head (%d → %d)", rep.SeqAtCrash, rep.VictimFinalSeq)
	}
	if !rep.PrefixMatch {
		t.Fatalf("executed prefix diverged: %s", rep.Divergence)
	}
}

// TestParallelMixedCluster is the sharpest wiring check the harness can run:
// half the replicas execute serially, half through the engine with different
// worker counts, under client-seq-duplicating load — and their executed
// prefixes must still agree, which is only possible if parallel execution is
// bit-identical to serial.
func TestParallelMixedCluster(t *testing.T) {
	opts := quickOpts(PoE)
	opts.Measure = time.Second
	rep, err := RunChaos(ChaosOptions{Options: opts, Mixed: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.PrefixMatch {
		t.Fatalf("mixed serial/parallel cluster diverged: %s", rep.Divergence)
	}
	if rep.Completed == 0 {
		t.Fatal("no progress")
	}
	if rep.ParallelWindows == 0 {
		t.Fatal("no replica ran the parallel engine")
	}
}
