package harness

// Crash-restart scenario: kill one replica mid-run, restart it from its data
// directory, and check that it rejoins the cluster on the same executed
// prefix. This is the failure class the in-memory reproduction could not
// model at all — a crashed replica's state evaporated with the process — and
// the reason the storage subsystem exists: the restarted replica rebuilds
// store, ledger, and executor from snapshot + WAL replay, then closes the
// remaining gap through the ordinary Fetch state transfer.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// CrashRestartOptions configure a crash-restart run.
type CrashRestartOptions struct {
	Options

	// Victim is the replica to kill and restart. Pick a backup: restarting
	// a primary additionally rides through a view change, which is a
	// legitimate but noisier variant of the scenario.
	Victim int

	// CrashAfter is when (from run start) the victim is killed: its
	// goroutine stopped, its network presence dropped, its storage closed
	// — everything except the data directory disappears.
	CrashAfter time.Duration
	// RestartAfter is when (from run start) the victim is rebuilt from the
	// data directory and rejoins. Must be after CrashAfter.
	RestartAfter time.Duration
}

// CrashRestartReport is the outcome of a crash-restart run.
type CrashRestartReport struct {
	Result

	// SeqAtCrash is the victim's last executed sequence number when it was
	// killed; RecoveredSeq is what it rebuilt from disk at restart (≤
	// SeqAtCrash: the OS may not have been told to sync, and in-flight
	// work dies with the process — never more than what was durable).
	SeqAtCrash   types.SeqNum
	RecoveredSeq types.SeqNum
	// VictimFinalSeq and LiveFinalSeq are the victim's and the live
	// replicas' minimum executed sequence numbers at the end of the run.
	VictimFinalSeq types.SeqNum
	LiveFinalSeq   types.SeqNum
	// PrefixMatch reports that every block the victim's ledger holds
	// agrees (batch digest and hash link) with replica liveWitness's.
	PrefixMatch bool
	// Divergence describes the first mismatch when PrefixMatch is false.
	Divergence string
}

// RunCrashRestart executes the crash-restart scenario. DataDir must be set
// in the embedded Options; client load runs for the whole Measure window so
// the restarted replica has traffic to expose its gap against.
func RunCrashRestart(opts CrashRestartOptions) (CrashRestartReport, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.DataDir == "" {
		return CrashRestartReport{}, fmt.Errorf("harness: crash-restart needs Options.DataDir")
	}
	if opts.Victim < 0 || opts.Victim >= opts.N {
		return CrashRestartReport{}, fmt.Errorf("harness: victim %d out of range", opts.Victim)
	}
	if opts.CrashAfter <= 0 || opts.RestartAfter <= opts.CrashAfter {
		return CrashRestartReport{}, fmt.Errorf("harness: need 0 < CrashAfter < RestartAfter")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	net := network.NewChanNet(opts.netOptions()...)
	defer net.Close()
	ring := crypto.NewKeyRing(opts.N, []byte(fmt.Sprintf("harness-%d", opts.Seed)))

	wcfg := workload.DefaultConfig(opts.Records)
	wcfg.Seed = opts.Seed
	var table map[string][]byte
	if !opts.ZeroPayload {
		table = workload.InitialTable(wcfg)
	}

	// Each replica gets its own context so the victim can be stopped alone,
	// and a done channel so its storage is only closed once its goroutine —
	// which may be mid-WAL-append — has fully exited.
	type runningReplica struct {
		handle replicaHandle
		store  *storage.Store
		cancel context.CancelFunc
		done   chan struct{}
	}
	stores := make([]*storage.Store, opts.N)
	defer func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()
	start := func(i int) (*runningReplica, error) {
		st, err := storage.Open(replicaDir(opts.DataDir, i), opts.storageOptions())
		if err != nil {
			return nil, err
		}
		stores[i] = st
		ropts := protocol.RuntimeOptions{ZeroPayload: opts.ZeroPayload, InitialTable: table, Storage: st, ParallelExec: opts.ParallelExec, ExecWorkers: opts.ExecWorkers}
		h, err := buildReplica(opts.Options, replicaConfig(opts.Options, i), ring, net.Join(types.ReplicaNode(types.ReplicaID(i))), ropts, nil)
		if err != nil {
			st.Close()
			stores[i] = nil
			return nil, err
		}
		// Retain the full execution log: the victim comes back with a
		// durable prefix arbitrarily far behind the live checkpoint, and
		// this in-process cluster substitutes full retention for the
		// snapshot-transfer protocol real deployments layer on top.
		h.Runtime().Exec.RetainSlack = 1 << 30
		rctx, rcancel := context.WithCancel(ctx)
		r := &runningReplica{handle: h, store: st, cancel: rcancel, done: make(chan struct{})}
		go func() {
			h.Run(rctx)
			close(r.done)
		}()
		return r, nil
	}

	replicas := make([]*runningReplica, opts.N)
	for i := 0; i < opts.N; i++ {
		r, err := start(i)
		if err != nil {
			return CrashRestartReport{}, err
		}
		replicas[i] = r
	}

	// Client pool, as in Run.
	var completed atomic.Int64
	var latencySum atomic.Int64
	var measuring atomic.Bool
	clients := make([]submitter, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		s, err := buildClient(opts.Options, i, ring, net)
		if err != nil {
			return CrashRestartReport{}, err
		}
		s.Start(ctx)
		clients[i] = s
	}
	var wg sync.WaitGroup
	startLoad(ctx, &wg, opts.Options, wcfg, clients, &completed, &latencySum, &measuring, newReadStats())

	select {
	case <-time.After(opts.Warmup):
	case <-ctx.Done():
	}
	measuring.Store(true)
	runStart := time.Now()
	report := CrashRestartReport{}
	victimNode := types.ReplicaNode(types.ReplicaID(opts.Victim))

	// Crash: drop the victim off the network, stop its goroutine, close its
	// storage. Only the data directory survives — the process-crash model.
	sleepUntil(ctx, runStart, opts.CrashAfter)
	net.Crash(victimNode)
	replicas[opts.Victim].cancel()
	<-replicas[opts.Victim].done
	report.SeqAtCrash = replicas[opts.Victim].handle.Runtime().Exec.LastExecuted()
	replicas[opts.Victim].store.Close()
	stores[opts.Victim] = nil

	// Restart from disk.
	sleepUntil(ctx, runStart, opts.RestartAfter)
	net.Recover(victimNode)
	restarted, err := start(opts.Victim)
	if err != nil {
		return CrashRestartReport{}, fmt.Errorf("harness: restart victim: %w", err)
	}
	replicas[opts.Victim] = restarted
	report.RecoveredSeq = restarted.handle.Runtime().RecoveredSeq

	// Let the run finish under load, then stop everything and compare.
	sleepUntil(ctx, runStart, opts.Measure)
	measuring.Store(false)
	elapsed := time.Since(runStart)
	cancel()
	net.Close()
	wg.Wait()
	for _, r := range replicas {
		<-r.done
	}

	total := completed.Load()
	report.Result = Result{
		Protocol:   opts.Protocol,
		N:          opts.N,
		BatchSize:  opts.BatchSize,
		Completed:  total,
		Throughput: float64(total) / elapsed.Seconds(),
	}
	if total > 0 {
		report.Result.AvgLatency = time.Duration(latencySum.Load() / total)
	}
	for _, r := range replicas {
		report.Result.addReplicaMetrics(r.handle.Runtime().Metrics)
	}

	victim := replicas[opts.Victim].handle.Runtime().Exec
	report.VictimFinalSeq = victim.LastExecuted()
	report.LiveFinalSeq = 0
	for i, r := range replicas {
		if i == opts.Victim {
			continue
		}
		last := r.handle.Runtime().Exec.LastExecuted()
		if report.LiveFinalSeq == 0 || last < report.LiveFinalSeq {
			report.LiveFinalSeq = last
		}
	}
	report.PrefixMatch, report.Divergence = comparePrefix(replicas[opts.Victim].handle, replicas[(opts.Victim+1)%opts.N].handle)
	return report, nil
}

// comparePrefix checks every ledger block the victim holds against a live
// replica: batch digests must agree wherever both chains have the block, and
// the victim's chain must be internally hash-linked.
func comparePrefix(victim, live replicaHandle) (bool, string) {
	return comparePrefixUpTo(victim, live, types.SeqNum(^uint64(0)))
}

// comparePrefixUpTo is comparePrefix capped at limit (inclusive) — used by
// the chaos runner's CompareStable mode to restrict the check to the
// quorum-certified checkpoint prefix.
func comparePrefixUpTo(victim, live replicaHandle, limit types.SeqNum) (bool, string) {
	vc := victim.Runtime().Exec.Chain()
	lc := live.Runtime().Exec.Chain()
	if seq, ok := vc.Verify(); !ok {
		return false, fmt.Sprintf("victim chain hash link broken at seq %d", seq)
	}
	lo := vc.Base()
	hi := types.SeqNum(vc.Height())
	if lh := types.SeqNum(lc.Height()); lh < hi {
		hi = lh
	}
	if limit < hi {
		hi = limit
	}
	for seq := lo; seq <= hi; seq++ {
		vb, vok := vc.Get(seq)
		lb, lok := lc.Get(seq)
		if !vok || !lok {
			continue // below the live replica's retained base
		}
		if vb.Digest != lb.Digest {
			return false, fmt.Sprintf("batch digest mismatch at seq %d", seq)
		}
		if vb.View != lb.View {
			return false, fmt.Sprintf("view mismatch at seq %d", seq)
		}
	}
	return true, ""
}

// sleepUntil sleeps until `offset` past start (no-op if already past).
func sleepUntil(ctx context.Context, start time.Time, offset time.Duration) {
	d := time.Until(start.Add(offset))
	if d <= 0 {
		return
	}
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}
