package harness

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/storage"
)

// reopen opens replica i's data dir read-back for inspection.
func reopen(root string, i int) (*storage.Store, *storage.Recovered, error) {
	st, err := storage.Open(replicaDir(root, i), storage.Options{})
	if err != nil {
		return nil, nil, err
	}
	return st, st.Recovered(), nil
}

func crashRestartOpts(t *testing.T, p Protocol) CrashRestartOptions {
	opts := quickOpts(p)
	opts.DataDir = t.TempDir()
	opts.CheckpointInterval = 16 // make snapshots happen well within the run
	opts.Measure = 2500 * time.Millisecond
	return CrashRestartOptions{
		Options:      opts,
		Victim:       2, // a backup in view 0
		CrashAfter:   600 * time.Millisecond,
		RestartAfter: 1200 * time.Millisecond,
	}
}

func runCrashRestart(t *testing.T, p Protocol) {
	t.Helper()
	rep, err := RunCrashRestart(crashRestartOpts(t, p))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("%s: crash@%d recovered@%d final victim=%d live=%d vc=%d",
		p, rep.SeqAtCrash, rep.RecoveredSeq, rep.VictimFinalSeq, rep.LiveFinalSeq, rep.ViewChanges)
	if rep.Completed == 0 {
		t.Fatal("cluster made no progress")
	}
	if rep.SeqAtCrash == 0 {
		t.Fatal("victim executed nothing before the crash; scenario vacuous")
	}
	// In-process "kill" stops the goroutine after its last completed WAL
	// append, so everything executed is durable.
	if rep.RecoveredSeq != rep.SeqAtCrash {
		t.Fatalf("recovered %d from disk, executed %d before crash", rep.RecoveredSeq, rep.SeqAtCrash)
	}
	if rep.VictimFinalSeq <= rep.SeqAtCrash {
		t.Fatalf("victim never caught up past its crash point (%d → %d)", rep.SeqAtCrash, rep.VictimFinalSeq)
	}
	if !rep.PrefixMatch {
		t.Fatalf("executed prefix diverged: %s", rep.Divergence)
	}
}

// TestPoECrashRestart is the acceptance scenario: a PoE replica killed
// mid-run restarts from its data dir, replays snapshot+WAL, state-transfers
// the remainder, and ends on the same executed-batch digest prefix.
func TestPoECrashRestart(t *testing.T) {
	runCrashRestart(t, PoE)
}

// TestPBFTCrashRestart runs the same scenario for a non-speculative
// protocol.
func TestPBFTCrashRestart(t *testing.T) {
	runCrashRestart(t, PBFT)
}

// TestDurableRunLeavesRecoverableState: a plain Run with DataDir set leaves
// per-replica directories a fresh RunCrashRestart-style recovery can read.
func TestDurableRunPersistsState(t *testing.T) {
	opts := quickOpts(PoE)
	opts.DataDir = t.TempDir()
	opts.CheckpointInterval = 16
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no progress")
	}
	// Every replica must have left a recoverable, non-empty data dir.
	for i := 0; i < opts.N; i++ {
		st, rec, err := reopen(opts.DataDir, i)
		if err != nil {
			t.Fatalf("replica %d dir unrecoverable: %v", i, err)
		}
		if rec.LastSeq == 0 {
			t.Fatalf("replica %d persisted nothing", i)
		}
		st.Close()
	}
}
