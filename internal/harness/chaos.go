package harness

// Chaos scenarios: the harness-level entry point to the fault fabric
// (network.FaultNet) and the cross-protocol Byzantine adversary spec
// (protocol.AdversarySpec). One RunChaos call runs any of the five
// protocols under a scripted combination of a Byzantine leader, dynamic
// partitions with heal, scheduled crashes, and lossy/slow links — then
// checks the two properties every scenario in docs/SCENARIOS.md reduces to:
//
//	safety:   all honest replicas share an executed-batch digest prefix
//	          (pairwise, over every sequence number both retain), and each
//	          honest ledger is internally hash-linked;
//	liveness: client-visible throughput resumes after the last scheduled
//	          disruption (view change completed, partition healed).
//
// The fault taxonomy and which layer injects each fault class are laid out
// in DESIGN.md §6.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// Attack names a Byzantine behaviour for the faulty replica.
type Attack string

// The attack library. Each maps to a protocol.AdversarySpec the faulty
// replica applies whenever it holds the leader role.
const (
	// AttackNone runs every replica honest.
	AttackNone Attack = ""
	// AttackEquivocate is the quorum-splitting equivocator (Example 3(1)):
	// half the backups receive a conflicting, validly signed batch, so
	// neither version can gather n−f support and the view must change.
	AttackEquivocate Attack = "equivocate"
	// AttackDark keeps f backups in the dark (Example 3(2)): the cluster
	// keeps deciding without them; the dark replicas recover via state
	// transfer.
	AttackDark Attack = "dark"
	// AttackSilenceCert withholds leader-distributed certificates (PoE's
	// CERTIFY, SBFT's FULL-COMMIT-PROOF): backups prepare but cannot
	// commit, forcing the failure detector to fire.
	AttackSilenceCert Attack = "silence-cert"
)

// ChaosOptions configure one chaos run. All offsets are measured from the
// start of the measurement window (after warmup), matching the scenario
// notation "at t=2s, partition {0,1} from {2,3}".
type ChaosOptions struct {
	Options

	// Attack is the Byzantine behaviour of replica Faulty (default:
	// replica 0, the view-0 primary — so the attack bites immediately).
	Attack Attack
	Faulty int

	// PartitionAt/HealAt schedule a partition of Isolate against the rest
	// of the replicas and its heal. Both must be set to enable; clients are
	// never partitioned. Isolate defaults to {N-1}; isolating ≥ f+1
	// replicas (e.g. half the cluster) denies everyone a quorum and stalls
	// the run until heal.
	PartitionAt, HealAt time.Duration
	Isolate             []int
	// ReliablePartition queues the blocked traffic and delivers it at heal
	// (a partition over TCP); otherwise it is lost (datagram semantics).
	ReliablePartition bool

	// Faults, when non-zero, is applied to every replica↔replica link for
	// the whole run — the lossy-link soak.
	Faults network.LinkFaults

	// Plan appends extra scheduled fabric steps (offsets from measurement
	// start, like PartitionAt).
	Plan *network.Plan

	// CompareStable caps the final prefix-agreement check at each replica
	// pair's lowest stable checkpoint (the nf-certified prefix). Zyzzyva
	// needs it under view-change storms: its speculative suffix is
	// uncertified by design, and a replica that missed the repairing view
	// change can legitimately end the run with a divergent tail — the
	// quorum-certified checkpoints are its actual agreement guarantee.
	CompareStable bool

	// Mixed overrides Options.ParallelExec per replica: odd replicas run
	// the parallel engine (each with a different worker count), even ones
	// run serially. The prefix-agreement check then directly witnesses that
	// parallel execution is bit-identical to serial — a heterogeneous
	// cluster can only agree on digests if every engine computes the same
	// state.
	Mixed bool
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Result

	// CompletedAtEvent and CompletedAfterEvent split Completed at the
	// moment the last scheduled disruption ended (HealAt, or mid-window for
	// pure-attack runs): liveness means CompletedAfterEvent > 0.
	CompletedAtEvent    int64
	CompletedAfterEvent int64

	// PrefixMatch reports the safety check over every honest replica pair:
	// internally hash-linked ledgers agreeing on batch digest and view
	// wherever both chains hold a block. Divergence describes the first
	// violation.
	PrefixMatch bool
	Divergence  string

	// MinHonestSeq/MaxHonestSeq are the lowest and highest last-executed
	// sequence numbers among honest replicas at the end of the run.
	MinHonestSeq, MaxHonestSeq types.SeqNum

	// Net counts the fabric's decisions (sent/dropped/queued/flushed...).
	Net network.FaultStats
}

// adversaryFor materializes the attack's spec for the faulty replica.
func adversaryFor(opts ChaosOptions) (*protocol.AdversarySpec, error) {
	switch opts.Attack {
	case AttackNone:
		return nil, nil
	case AttackEquivocate:
		return protocol.EquivocateHalf(opts.N, types.ReplicaID(opts.Faulty)), nil
	case AttackDark:
		return protocol.DarkQuorum(opts.N, opts.F, types.ReplicaID(opts.Faulty)), nil
	case AttackSilenceCert:
		return &protocol.AdversarySpec{SilenceCertificates: true}, nil
	default:
		return nil, fmt.Errorf("harness: unknown attack %q", opts.Attack)
	}
}

// RunChaos executes one chaos scenario and reports safety and liveness.
func RunChaos(opts ChaosOptions) (ChaosReport, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.Faulty < 0 || opts.Faulty >= opts.N {
		return ChaosReport{}, fmt.Errorf("harness: faulty replica %d out of range", opts.Faulty)
	}
	if (opts.PartitionAt > 0) != (opts.HealAt > 0) || opts.HealAt < opts.PartitionAt {
		return ChaosReport{}, fmt.Errorf("harness: need 0 < PartitionAt < HealAt (got %v, %v)", opts.PartitionAt, opts.HealAt)
	}
	adv, err := adversaryFor(opts)
	if err != nil {
		return ChaosReport{}, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := network.NewChanNet(opts.netOptions()...)
	defer base.Close()
	fn := network.NewFaultNet(base, network.WithFaultSeed(opts.Seed))
	defer fn.Close()
	if !opts.Faults.IsZero() {
		for i := 0; i < opts.N; i++ {
			for j := 0; j < opts.N; j++ {
				if i != j {
					fn.SetLink(types.ReplicaNode(types.ReplicaID(i)), types.ReplicaNode(types.ReplicaID(j)), opts.Faults)
				}
			}
		}
	}

	// Clone so appending the partition steps never mutates the caller's
	// plan (ChaosOptions stay reusable across runs).
	plan := opts.Plan.Clone()
	if opts.PartitionAt > 0 {
		isolate := opts.Isolate
		if len(isolate) == 0 {
			isolate = []int{opts.N - 1}
		}
		in := make(map[int]bool, len(isolate))
		var a, b []types.NodeID
		for _, i := range isolate {
			if i < 0 || i >= opts.N {
				return ChaosReport{}, fmt.Errorf("harness: isolate replica %d out of range", i)
			}
			in[i] = true
			a = append(a, types.ReplicaNode(types.ReplicaID(i)))
		}
		for i := 0; i < opts.N; i++ {
			if !in[i] {
				b = append(b, types.ReplicaNode(types.ReplicaID(i)))
			}
		}
		plan.PartitionAt(opts.PartitionAt, a, b, opts.ReliablePartition)
		plan.HealAt(opts.HealAt)
	}

	ring := crypto.NewKeyRing(opts.N, []byte(fmt.Sprintf("harness-%d", opts.Seed)))
	wcfg := workload.DefaultConfig(opts.Records)
	wcfg.Seed = opts.Seed
	var table map[string][]byte
	if !opts.ZeroPayload {
		table = workload.InitialTable(wcfg)
	}

	replicas := make([]replicaHandle, opts.N)
	replicaDone := make([]chan struct{}, opts.N)
	for i := 0; i < opts.N; i++ {
		ropts := protocol.RuntimeOptions{ZeroPayload: opts.ZeroPayload, InitialTable: table, ParallelExec: opts.ParallelExec, ExecWorkers: opts.ExecWorkers}
		if opts.Mixed {
			ropts.ParallelExec = i%2 == 1
			ropts.ExecWorkers = i + 1
		}
		if opts.DataDir != "" {
			st, err := storage.Open(replicaDir(opts.DataDir, i), opts.storageOptions())
			if err != nil {
				return ChaosReport{}, err
			}
			defer st.Close()
			ropts.Storage = st
		}
		var radv *protocol.AdversarySpec
		if i == opts.Faulty {
			radv = adv
		}
		tr := fn.Join(types.ReplicaNode(types.ReplicaID(i)))
		h, err := buildReplica(opts.Options, replicaConfig(opts.Options, i), ring, tr, ropts, radv)
		if err != nil {
			return ChaosReport{}, err
		}
		replicas[i] = h
		done := make(chan struct{})
		replicaDone[i] = done
		go func(h replicaHandle) {
			h.Run(ctx)
			close(done)
		}(h)
	}

	var completed atomic.Int64
	var latencySum atomic.Int64
	var measuring atomic.Bool
	clients := make([]submitter, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		s, err := buildClient(opts.Options, i, ring, fn)
		if err != nil {
			return ChaosReport{}, err
		}
		s.Start(ctx)
		clients[i] = s
	}
	var wg sync.WaitGroup
	startLoad(ctx, &wg, opts.Options, wcfg, clients, &completed, &latencySum, &measuring, newReadStats())

	select {
	case <-time.After(opts.Warmup):
	case <-ctx.Done():
	}
	measuring.Store(true)
	runStart := time.Now()
	fn.Execute(ctx, plan)

	// eventAt marks the end of the last scheduled disruption: completions
	// after it are the liveness signal. Pure-attack runs (nothing scheduled)
	// use the window midpoint — by then the view change away from the faulty
	// leader must have happened for the run to count as live.
	eventAt := opts.HealAt
	for _, s := range planOffsets(plan) {
		if s > eventAt {
			eventAt = s
		}
	}
	if eventAt == 0 || eventAt > opts.Measure {
		eventAt = opts.Measure / 2
	}
	sleepUntil(ctx, runStart, eventAt)
	report := ChaosReport{CompletedAtEvent: completed.Load()}

	sleepUntil(ctx, runStart, opts.Measure)
	measuring.Store(false)
	elapsed := time.Since(runStart)
	cancel()
	fn.Close()
	base.Close()
	wg.Wait()
	for _, done := range replicaDone {
		<-done
	}

	total := completed.Load()
	report.CompletedAfterEvent = total - report.CompletedAtEvent
	report.Result = Result{
		Protocol:   opts.Protocol,
		N:          opts.N,
		BatchSize:  opts.BatchSize,
		Completed:  total,
		Throughput: float64(total) / elapsed.Seconds(),
	}
	if total > 0 {
		report.Result.AvgLatency = time.Duration(latencySum.Load() / total)
	}
	for _, h := range replicas {
		report.Result.addReplicaMetrics(h.Runtime().Metrics)
	}
	report.Net = fn.Stats()

	// Safety: every honest ledger internally hash-linked, plus pairwise
	// digest-prefix agreement among honest replicas. The Byzantine replica
	// is excluded — its state is unconstrained. The hash-link check runs
	// per replica (comparePrefix only verifies its first argument, which
	// would leave the highest-index replica's links unchecked).
	report.PrefixMatch = true
	first := true
	for i := 0; i < opts.N; i++ {
		if opts.Attack != AttackNone && i == opts.Faulty {
			continue
		}
		if seq, ok := replicas[i].Runtime().Exec.Chain().Verify(); !ok && report.PrefixMatch {
			report.PrefixMatch = false
			report.Divergence = fmt.Sprintf("replica %d: chain hash link broken at seq %d", i, seq)
		}
		last := replicas[i].Runtime().Exec.LastExecuted()
		if first || last < report.MinHonestSeq {
			report.MinHonestSeq = last
		}
		if first || last > report.MaxHonestSeq {
			report.MaxHonestSeq = last
		}
		first = false
		for j := i + 1; j < opts.N; j++ {
			if opts.Attack != AttackNone && j == opts.Faulty {
				continue
			}
			limit := types.SeqNum(^uint64(0))
			if opts.CompareStable {
				limit = replicas[i].Runtime().Exec.StableCheckpointSeq()
				if s := replicas[j].Runtime().Exec.StableCheckpointSeq(); s < limit {
					limit = s
				}
			}
			if ok, why := comparePrefixUpTo(replicas[i], replicas[j], limit); !ok && report.PrefixMatch {
				report.PrefixMatch = false
				report.Divergence = fmt.Sprintf("replicas %d vs %d: %s", i, j, why)
			}
		}
	}
	return report, nil
}

// FlakyLeaderPlan scripts a view-change storm: each of the first `rounds`
// leaders in view order (replica k leads view k in the fixed-rotation
// protocols) is isolated from the other replicas for `outage`, then healed —
// so every isolation targets exactly the leader the previous view change
// elected, forcing the cluster through one completed view change per round
// while client load continues. Rounds fire `period` apart starting at
// `start`; use outage < period so each heal lands before the next cut.
// Pass the result as ChaosOptions.Plan.
func FlakyLeaderPlan(n, rounds int, start, period, outage time.Duration) *network.Plan {
	plan := network.NewPlan()
	for k := 0; k < rounds; k++ {
		at := start + time.Duration(k)*period
		leader := types.ReplicaNode(types.ReplicaID(k % n))
		rest := make([]types.NodeID, 0, n-1)
		for i := 0; i < n; i++ {
			if i != k%n {
				rest = append(rest, types.ReplicaNode(types.ReplicaID(i)))
			}
		}
		plan.PartitionAt(at, []types.NodeID{leader}, rest, false)
		plan.HealAt(at + outage)
	}
	return plan
}

// planOffsets lists a plan's step offsets (for the event marker).
func planOffsets(p *network.Plan) []time.Duration {
	if p == nil {
		return nil
	}
	return p.Offsets()
}
