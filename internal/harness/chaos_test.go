package harness

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
)

// chaosOpts is the shared scenario configuration: small cluster, short
// timeouts so view changes fit the window, and a client timeout low enough
// that Zyzzyva's slow path cycles several times per second.
func chaosOpts(p Protocol) Options {
	return Options{
		Protocol: p, N: 4,
		BatchSize: 10, Clients: 8, Outstanding: 4,
		Records: 512,
		Warmup:  200 * time.Millisecond, Measure: 2 * time.Second,
		ViewTimeout:   300 * time.Millisecond,
		ClientTimeout: 300 * time.Millisecond,
	}
}

func checkChaos(t *testing.T, rep ChaosReport, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !rep.PrefixMatch {
		t.Fatalf("safety violation: %s", rep.Divergence)
	}
	if rep.Completed == 0 {
		t.Fatal("no transactions completed at all")
	}
	if rep.CompletedAfterEvent == 0 {
		t.Fatalf("no liveness after the disruption ended: %d total, %d before event, vc=%d",
			rep.Completed, rep.CompletedAtEvent, rep.ViewChanges)
	}
	t.Logf("%s: %d txns (%d after event), vc=%d, net=%+v",
		rep.Protocol, rep.Completed, rep.CompletedAfterEvent, rep.ViewChanges, rep.Net)
}

// TestChaosPartitionHealAllProtocols is the cross-protocol scenario matrix:
// one backup is partitioned away mid-run and healed; every protocol must
// keep (or resume) committing, and all honest replicas must agree on their
// executed-batch digest prefix at the end.
func TestChaosPartitionHealAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rep, err := RunChaos(ChaosOptions{
				Options:     chaosOpts(p),
				PartitionAt: 400 * time.Millisecond,
				HealAt:      time.Second,
			})
			checkChaos(t, rep, err)
		})
	}
}

// TestChaosEquivocatingPrimary runs the quorum-splitting equivocator on the
// view-0 primary: no conflicting batch may ever commit (Proposition 2), the
// failure detector must replace the primary, and throughput must resume
// under the new one. PoE and PBFT carry certificates through their view
// change, so the post-attack guarantees are unconditional there.
func TestChaosEquivocatingPrimary(t *testing.T) {
	for _, p := range []Protocol{PoE, PBFT} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rep, err := RunChaos(ChaosOptions{
				Options: chaosOpts(p),
				Attack:  AttackEquivocate,
			})
			checkChaos(t, rep, err)
			if rep.ViewChanges == 0 {
				t.Fatal("equivocating primary was never replaced")
			}
		})
	}
}

// TestChaosEquivocatingLeaderRotates covers the rotating-leader and
// speculative cases: HotStuff's vote split must starve both variants of a
// QC (rounds led by the faulty replica time out; honest rounds commit), and
// Zyzzyva's victims must be rolled back into agreement by the view change.
func TestChaosEquivocatingLeaderRotates(t *testing.T) {
	for _, p := range []Protocol{HotStuff, SBFT} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rep, err := RunChaos(ChaosOptions{
				Options: chaosOpts(p),
				Attack:  AttackEquivocate,
			})
			checkChaos(t, rep, err)
		})
	}
}

// TestChaosDarkBackups runs the selective-silence attack (Example 3(2)):
// the primary keeps f backups in the dark. The cluster must keep deciding
// at full tilt, and the dark replicas must converge through state transfer.
func TestChaosDarkBackups(t *testing.T) {
	rep, err := RunChaos(ChaosOptions{
		Options: chaosOpts(PoE),
		Attack:  AttackDark,
	})
	checkChaos(t, rep, err)
}

// TestChaosSilencedCertificates withholds the leader-distributed
// certificates in PoE's threshold-signature mode: backups support but never
// commit, so the view must change and throughput resume.
func TestChaosSilencedCertificates(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.Scheme = crypto.SchemeTS
	rep, err := RunChaos(ChaosOptions{
		Options: opts,
		Attack:  AttackSilenceCert,
	})
	checkChaos(t, rep, err)
	if rep.ViewChanges == 0 {
		t.Fatal("certificate-withholding primary was never replaced")
	}
}

// TestChaosQuorumLossPartition splits the cluster 2|2 — no side holds a
// quorum, so the run fully stalls — then heals over a reliable partition
// (queued traffic is flushed). Progress must resume and prefixes converge.
func TestChaosQuorumLossPartition(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.Measure = 3 * time.Second
	rep, err := RunChaos(ChaosOptions{
		Options:           opts,
		Isolate:           []int{0, 1},
		PartitionAt:       300 * time.Millisecond,
		HealAt:            900 * time.Millisecond,
		ReliablePartition: true,
	})
	checkChaos(t, rep, err)
	if rep.Net.Queued == 0 || rep.Net.Flushed == 0 {
		t.Fatalf("reliable partition never queued/flushed traffic: %+v", rep.Net)
	}
}

// TestChaosLossySoakDurable combines the omission faults with the
// durability subsystem: every replica link drops, delays, and reorders
// traffic for the whole run while replicas log to disk. Protocol-level
// retransmission and state transfer must keep the cluster live and in
// digest agreement.
func TestChaosLossySoakDurable(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.DataDir = t.TempDir()
	rep, err := RunChaos(ChaosOptions{
		Options: opts,
		Faults: network.LinkFaults{
			Drop:    0.02,
			Reorder: 0.05,
			Delay:   200 * time.Microsecond,
			Jitter:  100 * time.Microsecond,
		},
	})
	checkChaos(t, rep, err)
	if rep.Net.Dropped == 0 {
		t.Fatalf("soak injected no drops: %+v", rep.Net)
	}
}

// TestChaosFlakyLeaderViewChangeStorm is the view-change soak: the leaders
// of the first three views are isolated in turn (each cut outlasting the
// failure-detection timeout), so the cluster must ride through at least
// three completed view changes under continuous client load. Safety (digest
// prefixes agree) and post-disruption liveness are asserted by checkChaos;
// the storm additionally requires the view changes to have COMPLETED —
// ViewChangesDone counts new-view installs, not suspicions.
func TestChaosFlakyLeaderViewChangeStorm(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			opts := chaosOpts(p)
			opts.Measure = 3 * time.Second
			plan := FlakyLeaderPlan(opts.N, 3, 300*time.Millisecond, 700*time.Millisecond, 350*time.Millisecond)
			rep, err := RunChaos(ChaosOptions{
				Options: opts,
				Plan:    plan,
				// Zyzzyva's speculative tail is uncertified and repaired by
				// the NEXT view change's rollback; a storm can end mid-repair,
				// so only its certified checkpoint prefix is asserted.
				CompareStable: p == Zyzzyva,
			})
			checkChaos(t, rep, err)
			if rep.ViewChangesDone < 3 {
				t.Fatalf("storm completed only %d view changes (started %d), want >= 3",
					rep.ViewChangesDone, rep.ViewChanges)
			}
		})
	}
}

// TestChaosCrashBackupMidRun exercises the repaired Fig 9 knob: the last
// replica crashes at a scheduled offset (via the fault plan) instead of
// before the run, and the cluster rides through the transition.
func TestChaosCrashBackupMidRun(t *testing.T) {
	opts := chaosOpts(PoE)
	opts.CrashBackupAfter = 600 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no progress across a mid-run backup crash")
	}
	t.Logf("%v", res)
}
