package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// UpperBoundOptions configure the Fig 7 system-characterization run: no
// consensus, no replication — clients talk to a single primary that either
// just echoes (no execution) or executes each query before replying, with
// two parallel worker threads (the paper bounds the fabric at two workers).
type UpperBoundOptions struct {
	Execute     bool
	Workers     int
	Clients     int
	Outstanding int
	Records     int
	Warmup      time.Duration
	Measure     time.Duration
	Seed        int64
}

// RunUpperBound measures the fabric's no-consensus ceiling (Fig 7).
func RunUpperBound(opts UpperBoundOptions) (Result, error) {
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Clients == 0 {
		opts.Clients = 16
	}
	if opts.Outstanding == 0 {
		opts.Outstanding = 16
	}
	if opts.Records == 0 {
		opts.Records = 4096
	}
	if opts.Warmup == 0 {
		opts.Warmup = 200 * time.Millisecond
	}
	if opts.Measure == 0 {
		opts.Measure = time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := network.NewChanNet()
	defer net.Close()
	ring := crypto.NewKeyRing(1, []byte("upper-bound"))

	wcfg := workload.DefaultConfig(opts.Records)
	wcfg.Seed = opts.Seed
	kv := store.New()
	kv.Load(workload.InitialTable(wcfg))
	keys := ring.NodeKeys(types.ReplicaNode(0))

	// The "primary": workers drain the inbox and reply directly.
	tr := net.Join(types.ReplicaNode(0))
	var kvMu sync.Mutex
	var seq atomic.Uint64
	for w := 0; w < opts.Workers; w++ {
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case env, ok := <-tr.Inbox():
					if !ok {
						return
					}
					cr, ok := env.Msg.(*protocol.ClientRequest)
					if !ok {
						continue
					}
					txn := &cr.Req.Txn
					var values [][]byte
					if opts.Execute {
						kvMu.Lock()
						for _, op := range txn.Ops {
							switch op.Kind {
							case types.OpRead:
								v, _ := kv.Get(op.Key)
								values = append(values, v)
							case types.OpWrite:
								// Direct write, bypassing ordered Apply: no
								// ordering is maintained in this experiment
								// (per the paper's description of Fig 7).
								kv.Load(map[string][]byte{op.Key: op.Value})
								values = append(values, nil)
							}
						}
						kvMu.Unlock()
					}
					msg := &protocol.Inform{
						From:      0,
						Digest:    cr.Req.Digest(),
						Seq:       types.SeqNum(seq.Add(1)),
						ClientSeq: txn.Seq,
						Values:    values,
					}
					key := msg.Key()
					msg.Tag = keys.MAC(types.ClientNode(txn.Client), key.Digest[:])
					tr.Send(types.ClientNode(txn.Client), msg)
				}
			}
		}()
	}

	var completed atomic.Int64
	var latencySum atomic.Int64
	var measuring atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
		cl, err := client.New(client.Config{
			ID: id, N: 1, F: 0, Scheme: crypto.SchemeNone,
			Quorum: 1, Timeout: time.Second,
		}, ring, net.Join(types.ClientNode(id)))
		if err != nil {
			return Result{}, err
		}
		cl.Start(ctx)
		gen := workload.NewGenerator(wcfg, id)
		genMu := &sync.Mutex{}
		for j := 0; j < opts.Outstanding; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					genMu.Lock()
					txn := gen.Next()
					genMu.Unlock()
					txn.Seq = cl.NextSeq()
					start := time.Now()
					if _, err := cl.SubmitTxn(ctx, txn); err != nil {
						return
					}
					if measuring.Load() {
						completed.Add(1)
						latencySum.Add(int64(time.Since(start)))
					}
				}
			}()
		}
	}

	time.Sleep(opts.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opts.Measure)
	measuring.Store(false)
	elapsed := time.Since(start)
	cancel()
	net.Close()
	wg.Wait()

	total := completed.Load()
	res := Result{
		Protocol:   "none",
		N:          1,
		Completed:  total,
		Throughput: float64(total) / elapsed.Seconds(),
	}
	if total > 0 {
		res.AvgLatency = time.Duration(latencySum.Load() / total)
	}
	return res, nil
}
