// Package harness runs in-process clusters of any of the five protocols and
// drives them with YCSB-style client load, reproducing the paper's
// evaluation setups (§IV): warmup + measurement windows, batching, zero
// payload, backup crashes (Fig 9 a/e/i), primary crashes with throughput
// timelines (Fig 10), pipelined or closed-loop clients (Fig 9 k/l), and the
// no-consensus upper-bound runs (Fig 7).
//
// Beyond the paper's figures, the harness opens two scenario families
// (catalogued in docs/SCENARIOS.md). Crash-recovery: with Options.DataDir
// set every replica is durable (WAL + checkpoint snapshots), and
// RunCrashRestart kills a replica mid-run, restarts it from its data
// directory, and checks that it rejoins on the same executed-batch digest
// prefix as the live replicas. Chaos: RunChaos drives any protocol through
// scheduled partitions with heal, lossy/reordering links, mid-run crashes
// (Options.CrashBackupAfter uses the same fault plan), and the Byzantine
// leader attacks of protocol.AdversarySpec, asserting digest-prefix safety
// and post-disruption liveness.
//
// The harness substitutes the paper's Google-Cloud deployment (91 c2
// machines, 320k clients) with goroutines over the in-process channel
// network; see DESIGN.md §3 for why the protocol-relative comparisons
// survive the substitution.
package harness

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/hotstuff"
	"github.com/poexec/poe/internal/consensus/pbft"
	"github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/consensus/sbft"
	"github.com/poexec/poe/internal/consensus/zyzzyva"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

// Protocol names a consensus protocol under test.
type Protocol string

// The five protocols of the paper's evaluation.
const (
	PoE      Protocol = "poe"
	PBFT     Protocol = "pbft"
	Zyzzyva  Protocol = "zyzzyva"
	SBFT     Protocol = "sbft"
	HotStuff Protocol = "hotstuff"
)

// AllProtocols lists the evaluation order used in the paper's figures.
var AllProtocols = []Protocol{PoE, PBFT, SBFT, HotStuff, Zyzzyva}

// Options configure one experiment run.
type Options struct {
	Protocol Protocol
	N, F     int
	Scheme   crypto.Scheme

	BatchSize          int
	Window             int
	CheckpointInterval int

	// Clients is the number of concurrent client identities; Outstanding is
	// how many requests each keeps in flight (1 = closed loop, the Fig 9k/l
	// configuration).
	Clients     int
	Outstanding int

	ZeroPayload bool
	Records     int // YCSB table size (0 = default small table)

	Warmup  time.Duration
	Measure time.Duration

	// CrashBackup crashes the last replica before the run starts. This is
	// the original Fig 9 knob; it under-reproduces the paper's mid-run
	// failure (the cluster never sees the transition), so new code should
	// prefer CrashBackupAfter. Kept for comparability with old numbers.
	CrashBackup bool
	// CrashBackupAfter crashes the last replica this long into the run via
	// a scheduled fault plan (Fig 9's actual mid-run failure: the cluster
	// runs clean, then degrades). Zero means never.
	CrashBackupAfter time.Duration
	// CrashPrimaryAfter crashes the view-0 primary this long into the run
	// (Fig 10). Zero means never.
	CrashPrimaryAfter time.Duration

	ViewTimeout      time.Duration
	ClientTimeout    time.Duration
	CollectorTimeout time.Duration // SBFT only

	// SampleEvery enables a throughput timeline with the given resolution
	// (Fig 10). Zero disables sampling.
	SampleEvery time.Duration

	// SendCost is the per-message CPU cost charged to senders, standing in
	// for the serialization/syscall cost of a real network stack (the cost
	// that penalizes quadratic protocols). Negative disables it.
	SendCost time.Duration

	// WireCost replaces the flat SendCost with the size-calibrated model
	// (network.WithWireCost, DESIGN.md §3): each logical message is encoded
	// once through the real wire codec — so a broadcast pays serialization
	// once, like TCPNet's marshal-once fan-out — and each destination is
	// charged a per-write busy-wait scaled by the true encoded size. The
	// flat default is kept for comparability with the PR 1–4 baselines.
	WireCost bool

	// NetDelay adds a one-way link delay to every message, turning the
	// in-process network into a WAN-ish one. The out-of-order experiments
	// (Fig 9k/l, window ablation) need it: with microsecond links the
	// window never binds.
	NetDelay time.Duration

	// DataDir, when set, makes every replica durable: replica i logs its
	// executed batches and checkpoint snapshots under DataDir/replica-i.
	// Required by the crash-restart scenarios (RunCrashRestart), optional
	// everywhere else.
	DataDir string
	// Fsync makes durable replicas sync the WAL on every commit group
	// (machine-crash durability). Meaningless without DataDir.
	Fsync bool
	// NoGroupCommit disables WAL group commit: every record is appended and
	// synced individually, the pre-group-commit baseline the durable
	// benchmarks compare against.
	NoGroupCommit bool

	// ParallelExec routes every replica's post-ordering execution (and
	// recovery replay) through the conflict-aware parallel engine
	// (internal/exec). Execution output is bit-identical to serial mode, so
	// every safety check the scenarios run is unchanged; only the wall-clock
	// cost of the execute step differs. ExecWorkers sizes the engine's
	// worker pool (0 = GOMAXPROCS).
	ParallelExec bool
	ExecWorkers  int

	// ReadFraction, when > 0, overrides the workload's write fraction so
	// that this fraction of transactions is read-only (YCSB-B is 0.95,
	// YCSB-C is 1.0). SpeculativeFraction and StrongFraction then set the
	// consistency mix among read-only transactions (workload.Config); both
	// zero keeps every read ORDERED — the all-consensus baseline the tiered
	// paths are benchmarked against.
	ReadFraction        float64
	SpeculativeFraction float64
	StrongFraction      float64

	Seed int64
}

// storageOptions derives the storage configuration of a durable run.
func (o Options) storageOptions() storage.Options {
	return storage.Options{Sync: o.Fsync, NoGroupCommit: o.NoGroupCommit}
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 4
	}
	if o.F == 0 {
		o.F = (o.N - 1) / 3
	}
	if o.Scheme == 0 && o.Protocol != "" {
		o.Scheme = DefaultScheme(o.Protocol)
		// Ingredient I3: PoE switches from MACs to threshold signatures for
		// larger clusters (the paper's guidance is around 16 replicas).
		if o.Protocol == PoE && o.N >= 16 {
			o.Scheme = crypto.SchemeTS
		}
	}
	if o.BatchSize == 0 {
		o.BatchSize = 100
	}
	if o.Window == 0 {
		o.Window = 128
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 256
	}
	if o.Clients == 0 {
		o.Clients = 16
	}
	if o.Outstanding == 0 {
		o.Outstanding = 8
	}
	if o.Records == 0 {
		o.Records = 4096
	}
	if o.Warmup == 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = time.Second
	}
	if o.ViewTimeout == 0 {
		// Keep failure detection comfortably above saturated client
		// latencies; the paper makes the same point about timeout
		// calibration in §IV-D.
		o.ViewTimeout = 2 * time.Second
	}
	if o.ClientTimeout == 0 {
		o.ClientTimeout = time.Second
	}
	if o.CollectorTimeout == 0 {
		o.CollectorTimeout = 40 * time.Millisecond
	}
	if o.SendCost == 0 {
		o.SendCost = 10 * time.Microsecond
	}
	if o.SendCost < 0 {
		o.SendCost = 0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// DefaultScheme returns the paper's authentication configuration for each
// protocol (§IV-A): PBFT and Zyzzyva use MACs between replicas, PoE adapts
// (MAC below 16 replicas, TS above — ingredient I3), SBFT and HotStuff are
// threshold-signature protocols.
func DefaultScheme(p Protocol) crypto.Scheme {
	switch p {
	case PBFT, Zyzzyva:
		return crypto.SchemeMAC
	case SBFT, HotStuff:
		return crypto.SchemeTS
	case PoE:
		return crypto.SchemeMAC
	default:
		return crypto.SchemeMAC
	}
}

// TimelinePoint is one sample of a throughput timeline (Fig 10).
type TimelinePoint struct {
	Offset     time.Duration
	Throughput float64 // txn/s over the sampling interval
}

// Result reports one experiment run.
type Result struct {
	Protocol    Protocol
	N           int
	BatchSize   int
	Throughput  float64       // client-visible transactions per second
	AvgLatency  time.Duration // request send → quorum reply
	Completed   int64
	ViewChanges int64
	// ViewChangesDone counts view changes that completed (a new view was
	// entered), summed across replicas; ViewChanges counts starts.
	ViewChangesDone int64
	Rollbacks       int64
	Timeline        []TimelinePoint

	// Snapshot state transfer, summed across replicas: snapshots served to
	// lagging peers, snapshots installed from peers, chunk/byte volume, the
	// Fetch pages used to bridge snapshot → live head, and attempts that
	// timed out or failed verification and were retried on another peer.
	SnapshotsServed    int64
	SnapshotsInstalled int64
	SnapshotChunks     int64
	SnapshotBytes      int64
	FetchPages         int64
	StateSyncRetries   int64

	// Egress pipeline saturation, summed (EgressSigned) and maxed
	// (EgressMaxDepth) across replicas: authenticators computed off the
	// event loops, and the deepest signing backlog any replica accumulated.
	EgressSigned   int64
	EgressMaxDepth int64
	// WAL group commit (durable runs only): groups written and records they
	// carried across all replicas; WALGroupMean = records/groups is the mean
	// group size — how many fsyncs were amortized into one.
	WALGroups         int64
	WALGroupedRecords int64

	// Parallel execution engine (ParallelExec runs only), summed across
	// replicas: windows drained, waves they split into, and transactions
	// executed. ParallelTxns/ParallelWaves is the achieved intra-wave
	// parallelism.
	ParallelWindows int64
	ParallelWaves   int64
	ParallelTxns    int64

	// Hybrid-consistency read path, replica side (summed): reads served
	// locally per tier, reads pushed into ordering instead, speculative
	// serves re-answered after a rollback, and lease grants sent.
	SpecServes    int64
	StrongServes  int64
	ReadFallbacks int64
	ReadRepairs   int64
	LeaseGrants   int64
	// Client side: tiered reads completed, completions that came through
	// the ordering pipeline (Inform quorum), and repair re-answers received.
	ReadsCompleted int64
	ReadsFallback  int64
	ReadsRepaired  int64
	// Digest-prefix safety audit over unrepaired speculative answers: each
	// sampled answer's (ExecSeq, StateDigest) tag is compared against the
	// digests the replicas recorded when that sequence executed. Skipped
	// counts samples whose digests were already pruned (retention window).
	// Mismatches must be zero.
	ReadAuditChecked    int64
	ReadAuditSkipped    int64
	ReadAuditMismatches int64
}

// WALGroupMean is the mean WAL commit-group size across replicas (0 for
// volatile runs).
func (r Result) WALGroupMean() float64 {
	if r.WALGroups == 0 {
		return 0
	}
	return float64(r.WALGroupedRecords) / float64(r.WALGroups)
}

// String formats the result as the paper's table rows do, extended with the
// pipeline-saturation counters bench runs watch.
func (r Result) String() string {
	s := fmt.Sprintf("%-9s n=%-3d batch=%-4d %10.0f txn/s  %8.1fms  vc=%d  egress=%d(maxq %d)",
		r.Protocol, r.N, r.BatchSize, r.Throughput,
		float64(r.AvgLatency.Microseconds())/1000, r.ViewChanges,
		r.EgressSigned, r.EgressMaxDepth)
	if r.WALGroups > 0 {
		s += fmt.Sprintf("  wal-groups=%d(mean %.1f)", r.WALGroups, r.WALGroupMean())
	}
	if r.SnapshotsInstalled > 0 || r.StateSyncRetries > 0 {
		s += fmt.Sprintf("  snap=%d(%dB, retries=%d)", r.SnapshotsInstalled, r.SnapshotBytes, r.StateSyncRetries)
	}
	if r.ParallelWindows > 0 {
		s += fmt.Sprintf("  par=%d windows(%.1f txn/wave)", r.ParallelWindows, r.ParallelismMean())
	}
	if r.SpecServes > 0 || r.StrongServes > 0 || r.ReadFallbacks > 0 {
		s += fmt.Sprintf("  reads=spec:%d strong:%d fb:%d rep:%d audit=%d/%d(miss %d)",
			r.SpecServes, r.StrongServes, r.ReadFallbacks, r.ReadRepairs,
			r.ReadAuditChecked, r.ReadAuditChecked+r.ReadAuditSkipped, r.ReadAuditMismatches)
	}
	return s
}

// ParallelismMean is the mean transactions per conflict-free wave across
// replicas (0 for serial runs) — the intra-wave parallelism the engine
// actually extracted from the workload.
func (r Result) ParallelismMean() float64 {
	if r.ParallelWaves == 0 {
		return 0
	}
	return float64(r.ParallelTxns) / float64(r.ParallelWaves)
}

// replicaHandle abstracts the per-protocol replica for the harness.
type replicaHandle interface {
	Run(ctx context.Context)
	Runtime() *protocol.Runtime
}

// submitter abstracts the two client implementations.
type submitter interface {
	SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error)
	NextSeq() uint64
	Start(ctx context.Context)
}

// tieredReader is the optional read-path side of a submitter. Clients
// without it (the Zyzzyva wrapper) get their reads downgraded to ORDERED.
type tieredReader interface {
	ReadTxn(ctx context.Context, txn types.Transaction) (client.ReadAnswer, error)
	NextReadSeq() uint64
}

// readStats accumulates client-side read-path outcomes and the samples for
// the digest-prefix safety audit. Samples are keyed by (client, read seq) so
// a later repair can retract the original answer from the audit set — a
// repaired serve observed state the cluster abandoned, and its prefix tag is
// deliberately no longer expected to match.
type readStats struct {
	completed atomic.Int64
	fallback  atomic.Int64
	repaired  atomic.Int64

	mu      sync.Mutex
	samples map[readSampleKey]readSample
}

type readSampleKey struct {
	client types.ClientID
	seq    uint64
}

type readSample struct {
	execSeq types.SeqNum
	state   types.Digest
}

// maxReadSamples bounds the audit set; benches at full throughput would
// otherwise retain millions of digests.
const maxReadSamples = 8192

func newReadStats() *readStats {
	return &readStats{samples: make(map[readSampleKey]readSample)}
}

func (s *readStats) observe(txn types.Transaction, ans client.ReadAnswer) {
	s.completed.Add(1)
	if ans.Fallback {
		s.fallback.Add(1)
		return
	}
	// Only unrepaired speculative serves carry an auditable prefix tag;
	// strong serves are covered by the lease argument, and ExecSeq 0 means
	// the serve saw only the initial table (nothing recorded to compare).
	if ans.Tier != types.ConsistencySpeculative || ans.Repaired || ans.ExecSeq == 0 {
		return
	}
	s.mu.Lock()
	if len(s.samples) < maxReadSamples {
		s.samples[readSampleKey{txn.Client, txn.Seq}] = readSample{ans.ExecSeq, ans.StateDigest}
	}
	s.mu.Unlock()
}

func (s *readStats) onRepair(ans client.ReadAnswer) {
	s.repaired.Add(1)
	s.mu.Lock()
	delete(s.samples, readSampleKey{ans.Result.Client, ans.Result.Seq})
	s.mu.Unlock()
}

// audit compares every retained sample against the digests the replicas
// recorded at its executed sequence number: the answer passes if any replica
// still retaining that sequence recorded the same state digest, is skipped
// if every replica already pruned it, and is a safety violation otherwise.
func (s *readStats) audit(replicas []replicaHandle) (checked, skipped, mismatches int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, smp := range s.samples {
		retained, matched := false, false
		for _, h := range replicas {
			state, _, ok := h.Runtime().Exec.DigestsAt(smp.execSeq)
			if !ok {
				continue
			}
			retained = true
			if state == smp.state {
				matched = true
				break
			}
		}
		switch {
		case matched:
			checked++
		case retained:
			checked++
			mismatches++
		default:
			skipped++
		}
	}
	return checked, skipped, mismatches
}

// Calibration of the size-based send-cost model (Options.WireCost): one
// write(2) on a loopback stream costs a few microseconds regardless of
// size, plus a per-KB copy cost. The constants are chosen so a typical
// 50-request PROPOSE frame (~7 KB) costs about what the flat model charged
// per message (≈10 µs) while a 60-byte share message costs ~3 µs — the
// size structure the flat model could not express.
const (
	wireWriteBase  = 3 * time.Microsecond
	wireWritePerKB = time.Microsecond
)

// netOptions translates the harness cost/delay knobs into ChanNet options.
func (o Options) netOptions() []network.ChanNetOption {
	netOpts := []network.ChanNetOption{
		network.WithSeed(o.Seed),
		network.WithDelay(o.NetDelay, 0),
	}
	if o.WireCost {
		netOpts = append(netOpts, network.WithWireCost(wireWriteBase, wireWritePerKB))
	} else {
		netOpts = append(netOpts, network.WithSendCost(o.SendCost))
	}
	return netOpts
}

// Run executes one experiment and reports its result.
func Run(opts Options) (Result, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	net := network.NewChanNet(opts.netOptions()...)
	defer net.Close()
	// Scheduled faults route every send through the fault fabric; plain runs
	// keep the bare ChanNet (no per-message fabric cost on benchmarks).
	var joiner network.Net = net
	var plan *network.Plan
	if opts.CrashBackupAfter > 0 {
		fn := network.NewFaultNet(net, network.WithFaultSeed(opts.Seed))
		defer fn.Close()
		plan = network.NewPlan().CrashAt(opts.CrashBackupAfter,
			types.ReplicaNode(types.ReplicaID(opts.N-1)))
		joiner = fn
	}
	ring := crypto.NewKeyRing(opts.N, []byte(fmt.Sprintf("harness-%d", opts.Seed)))

	wcfg := workload.DefaultConfig(opts.Records)
	wcfg.Seed = opts.Seed
	if opts.ReadFraction > 0 {
		wcfg.WriteFraction = 1 - opts.ReadFraction
	}
	wcfg.SpeculativeFraction = opts.SpeculativeFraction
	wcfg.StrongFraction = opts.StrongFraction
	var table map[string][]byte
	if !opts.ZeroPayload {
		table = workload.InitialTable(wcfg)
	}

	replicas := make([]replicaHandle, opts.N)
	replicaDone := make([]chan struct{}, opts.N)
	for i := 0; i < opts.N; i++ {
		ropts := protocol.RuntimeOptions{ZeroPayload: opts.ZeroPayload, InitialTable: table, ParallelExec: opts.ParallelExec, ExecWorkers: opts.ExecWorkers}
		if opts.DataDir != "" {
			st, err := storage.Open(replicaDir(opts.DataDir, i), opts.storageOptions())
			if err != nil {
				return Result{}, err
			}
			defer st.Close()
			ropts.Storage = st
		}
		tr := joiner.Join(types.ReplicaNode(types.ReplicaID(i)))
		h, err := buildReplica(opts, replicaConfig(opts, i), ring, tr, ropts, nil)
		if err != nil {
			return Result{}, err
		}
		replicas[i] = h
		done := make(chan struct{})
		replicaDone[i] = done
		go func(h replicaHandle) {
			h.Run(ctx)
			close(done)
		}(h)
	}

	if opts.CrashBackup {
		net.Crash(types.ReplicaNode(types.ReplicaID(opts.N - 1)))
	}
	if opts.CrashPrimaryAfter > 0 {
		time.AfterFunc(opts.CrashPrimaryAfter, func() {
			net.Crash(types.ReplicaNode(0))
		})
	}
	if plan != nil {
		joiner.(*network.FaultNet).Execute(ctx, plan)
	}

	// Client pool.
	var completed atomic.Int64
	var latencySum atomic.Int64 // nanoseconds
	var measuring atomic.Bool

	stats := newReadStats()
	clients := make([]submitter, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		s, err := buildClient(opts, i, ring, joiner)
		if err != nil {
			return Result{}, err
		}
		if cc, ok := s.(*client.Client); ok {
			cc.OnRepair = stats.onRepair
		}
		s.Start(ctx)
		clients[i] = s
	}

	var wg sync.WaitGroup
	startLoad(ctx, &wg, opts, wcfg, clients, &completed, &latencySum, &measuring, stats)

	// Warmup, then measure (the paper uses 60 s + 120 s; scaled here).
	select {
	case <-time.After(opts.Warmup):
	case <-ctx.Done():
	}
	measuring.Store(true)
	start := time.Now()

	var timeline []TimelinePoint
	if opts.SampleEvery > 0 {
		ticker := time.NewTicker(opts.SampleEvery)
		defer ticker.Stop()
		var prev int64
		for elapsed := time.Duration(0); elapsed < opts.Measure; {
			<-ticker.C
			elapsed = time.Since(start)
			cur := completed.Load()
			rate := float64(cur-prev) / opts.SampleEvery.Seconds()
			prev = cur
			timeline = append(timeline, TimelinePoint{Offset: elapsed, Throughput: rate})
		}
	} else {
		select {
		case <-time.After(opts.Measure):
		case <-ctx.Done():
		}
	}
	measuring.Store(false)
	elapsed := time.Since(start)
	cancel()
	net.Close()
	wg.Wait()
	// Join the replica goroutines before the deferred storage closes run: a
	// replica may still be inside a WAL append, and closing the store under
	// it would turn an orderly shutdown into a crash-stop panic.
	for _, done := range replicaDone {
		<-done
	}

	total := completed.Load()
	res := Result{
		Protocol:   opts.Protocol,
		N:          opts.N,
		BatchSize:  opts.BatchSize,
		Completed:  total,
		Throughput: float64(total) / elapsed.Seconds(),
		Timeline:   timeline,
	}
	if total > 0 {
		res.AvgLatency = time.Duration(latencySum.Load() / total)
	}
	for _, h := range replicas {
		res.addReplicaMetrics(h.Runtime().Metrics)
	}
	res.ReadsCompleted = stats.completed.Load()
	res.ReadsFallback = stats.fallback.Load()
	res.ReadsRepaired = stats.repaired.Load()
	res.ReadAuditChecked, res.ReadAuditSkipped, res.ReadAuditMismatches = stats.audit(replicas)
	return res, nil
}

// addReplicaMetrics folds one replica's runtime counters into the result.
func (r *Result) addReplicaMetrics(m *protocol.Metrics) {
	r.ViewChanges += m.ViewChanges.Load()
	r.ViewChangesDone += m.ViewChangesDone.Load()
	r.Rollbacks += m.Rollbacks.Load()
	r.SnapshotsServed += m.SnapshotsServed.Load()
	r.SnapshotsInstalled += m.SnapshotsInstalled.Load()
	r.SnapshotChunks += m.SnapshotChunksRecv.Load()
	r.SnapshotBytes += m.SnapshotBytesRecv.Load()
	r.FetchPages += m.FetchPages.Load()
	r.StateSyncRetries += m.StateSyncRetries.Load()
	r.EgressSigned += m.EgressSignedOffLoop.Load()
	if d := m.EgressMaxDepth.Load(); d > r.EgressMaxDepth {
		r.EgressMaxDepth = d
	}
	r.WALGroups += m.WALGroups.Load()
	r.WALGroupedRecords += m.WALGroupedRecords.Load()
	r.ParallelWindows += m.ParallelWindows.Load()
	r.ParallelWaves += m.ParallelWaves.Load()
	r.ParallelTxns += m.ParallelTxns.Load()
	r.SpecServes += m.SpecReads.Load()
	r.StrongServes += m.StrongReads.Load()
	r.ReadFallbacks += m.ReadFallbacks.Load()
	r.ReadRepairs += m.ReadRepairs.Load()
	r.LeaseGrants += m.LeaseGrants.Load()
}

// replicaConfig derives replica i's protocol configuration from the run
// options.
func replicaConfig(opts Options, i int) protocol.Config {
	return protocol.Config{
		ID: types.ReplicaID(i), N: opts.N, F: opts.F, Scheme: opts.Scheme,
		BatchSize: opts.BatchSize, Window: opts.Window,
		CheckpointInterval: types.SeqNum(opts.CheckpointInterval),
		ViewTimeout:        opts.ViewTimeout,
	}
}

// replicaDir is replica i's data directory under a run's DataDir root.
func replicaDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("replica-%d", i))
}

// startLoad spawns the open workload: Outstanding goroutines per client,
// each submitting generated transactions until the context ends, counting
// completions and latency while the measurement window is open.
func startLoad(ctx context.Context, wg *sync.WaitGroup, opts Options, wcfg workload.Config,
	clients []submitter, completed, latencySum *atomic.Int64, measuring *atomic.Bool, stats *readStats) {
	for i, s := range clients {
		gen := workload.NewGenerator(wcfg, types.ClientID(types.ClientIDBase)+types.ClientID(i))
		genMu := &sync.Mutex{}
		for j := 0; j < opts.Outstanding; j++ {
			wg.Add(1)
			go func(s submitter) {
				defer wg.Done()
				rd, canRead := s.(tieredReader)
				for ctx.Err() == nil {
					genMu.Lock()
					txn := gen.Next()
					genMu.Unlock()
					// Tiered reads travel the fast read path with their own
					// sequence space; everything else (including reads on a
					// client without the read API, or zero-payload mode,
					// which strips the ops) orders normally.
					tiered := canRead && !opts.ZeroPayload &&
						txn.Consistency != types.ConsistencyOrdered
					if tiered {
						txn.Seq = rd.NextReadSeq()
					} else {
						txn.Consistency = types.ConsistencyOrdered
						txn.Seq = s.NextSeq()
					}
					if opts.ZeroPayload {
						txn.Ops = nil
					}
					start := time.Now()
					txn.TimeNanos = start.UnixNano()
					if tiered {
						ans, err := rd.ReadTxn(ctx, txn)
						if err != nil {
							return
						}
						stats.observe(txn, ans)
					} else if _, err := s.SubmitTxn(ctx, txn); err != nil {
						return
					}
					if measuring.Load() {
						completed.Add(1)
						latencySum.Add(int64(time.Since(start)))
					}
				}
			}(s)
		}
	}
}

// buildReplica constructs one replica of the selected protocol. A non-nil
// adv installs the shared Byzantine adversary spec on it (chaos scenarios).
func buildReplica(opts Options, cfg protocol.Config, ring *crypto.KeyRing, tr network.Transport, ropts protocol.RuntimeOptions, adv *protocol.AdversarySpec) (replicaHandle, error) {
	switch opts.Protocol {
	case PoE:
		return poe.New(cfg, ring, tr, poe.Options{RuntimeOptions: ropts, Adversary: adv})
	case PBFT:
		return pbft.New(cfg, ring, tr, pbft.Options{RuntimeOptions: ropts, Adversary: adv})
	case Zyzzyva:
		return zyzzyva.New(cfg, ring, tr, zyzzyva.Options{RuntimeOptions: ropts, Adversary: adv})
	case SBFT:
		return sbft.New(cfg, ring, tr, sbft.Options{RuntimeOptions: ropts, Adversary: adv, CollectorTimeout: opts.CollectorTimeout})
	case HotStuff:
		return hotstuff.New(cfg, ring, tr, hotstuff.Options{RuntimeOptions: ropts, Adversary: adv})
	default:
		return nil, fmt.Errorf("harness: unknown protocol %q", opts.Protocol)
	}
}

func buildClient(opts Options, i int, ring *crypto.KeyRing, net network.Net) (submitter, error) {
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	tr := net.Join(types.ClientNode(id))
	switch opts.Protocol {
	case Zyzzyva:
		return zyzzyva.NewClient(zyzzyva.ClientConfig{
			ID: id, N: opts.N, F: opts.F, Scheme: opts.Scheme,
			SpecTimeout: opts.ClientTimeout,
		}, ring, tr)
	case SBFT:
		verifier := crypto.NewVerifier(ring, opts.N-opts.F,
			opts.Scheme == crypto.SchemeTS || opts.Scheme == crypto.SchemeED)
		return client.New(client.Config{
			ID: id, N: opts.N, F: opts.F, Scheme: opts.Scheme,
			Quorum:  1,
			Timeout: opts.ClientTimeout,
			CertAccept: func(m *protocol.Inform) bool {
				return len(m.Cert) > 0 && verifier.Verify(sbft.ExecPayload(m.Seq, m.OrderProof), m.Cert)
			},
		}, ring, tr)
	case PBFT:
		return client.New(client.Config{
			ID: id, N: opts.N, F: opts.F, Scheme: opts.Scheme,
			Quorum: opts.F + 1, Timeout: opts.ClientTimeout,
		}, ring, tr)
	case HotStuff:
		return client.New(client.Config{
			ID: id, N: opts.N, F: opts.F, Scheme: opts.Scheme,
			Quorum: opts.F + 1, Timeout: opts.ClientTimeout,
			BroadcastRequests: true,
		}, ring, tr)
	default: // PoE: nf identical replies — the proof of execution
		return client.New(client.Config{
			ID: id, N: opts.N, F: opts.F, Scheme: opts.Scheme,
			Quorum: opts.N - opts.F, Timeout: opts.ClientTimeout,
		}, ring, tr)
	}
}
