package harness

import (
	"testing"
	"time"
)

func quickOpts(p Protocol) Options {
	return Options{
		Protocol: p, N: 4,
		BatchSize: 10, Clients: 8, Outstanding: 4,
		Records: 512,
		Warmup:  150 * time.Millisecond, Measure: 400 * time.Millisecond,
	}
}

func TestAllProtocolsMakeProgress(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(quickOpts(p))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Completed == 0 {
				t.Fatalf("%s completed no transactions", p)
			}
			t.Logf("%v", res)
		})
	}
}

func TestPoESurvivesBackupFailure(t *testing.T) {
	opts := quickOpts(PoE)
	opts.CrashBackup = true
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no progress under backup failure")
	}
	t.Logf("%v", res)
}

func TestZeroPayload(t *testing.T) {
	opts := quickOpts(PoE)
	opts.ZeroPayload = true
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no progress under zero payload")
	}
}

func TestPrimaryCrashTimeline(t *testing.T) {
	opts := quickOpts(PoE)
	opts.Measure = 2 * time.Second
	opts.CrashPrimaryAfter = 600 * time.Millisecond
	opts.SampleEvery = 100 * time.Millisecond
	opts.ViewTimeout = 300 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ViewChanges == 0 {
		t.Fatal("expected a view change after primary crash")
	}
	if len(res.Timeline) == 0 {
		t.Fatal("expected a throughput timeline")
	}
	// The tail of the timeline (after recovery) must show progress.
	tail := res.Timeline[len(res.Timeline)-3:]
	var rate float64
	for _, p := range tail {
		rate += p.Throughput
	}
	if rate == 0 {
		t.Fatalf("no recovery after view change: %+v", res.Timeline)
	}
}

func TestUpperBound(t *testing.T) {
	noExec, err := RunUpperBound(UpperBoundOptions{Execute: false, Measure: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("no-exec: %v", err)
	}
	withExec, err := RunUpperBound(UpperBoundOptions{Execute: true, Measure: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if noExec.Completed == 0 || withExec.Completed == 0 {
		t.Fatal("upper-bound runs made no progress")
	}
	t.Logf("no-exec: %.0f txn/s, exec: %.0f txn/s", noExec.Throughput, withExec.Throughput)
}
