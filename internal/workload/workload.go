// Package workload generates the client workloads of the paper's evaluation
// (§IV "Configuration and Benchmarking"): a YCSB-style table of records
// accessed with a heavily skewed Zipfian distribution (skew factor 0.9), 90%
// write queries, and configurable payload sizes, plus the zero-payload mode.
//
// Generators are deterministic given their seed, so experiments are
// reproducible and replicas can pre-load identical tables — the same
// determinism contract the fault fabric (network.FaultNet) and the chaos
// scenarios build on.
//
// How generated transactions meet the rest of the system: each one is
// signed by its client and travels as a types.Request; on every replica the
// signature is checked off the event loop by the parallel authentication
// pipeline (protocol.Verifier) — once per replica, memoized thereafter —
// before the batcher aggregates requests into proposals. ValueSize × batch
// size therefore controls the PROPOSE payload the pipeline clones and
// digests at ingress, which is why the harness's measured throughput is
// sensitive to this package's configuration even though no workload code
// runs on the hot path itself. Under chaos runs (harness.RunChaos), the
// open-loop generators double as the liveness probe: completions after a
// heal or view change are what certify the cluster recovered.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"github.com/poexec/poe/internal/types"
)

// Config describes a YCSB-style workload.
type Config struct {
	// Records is the number of active records in the table. The paper uses
	// 500 000; tests use smaller tables.
	Records int
	// WriteFraction is the fraction of operations that are writes. The
	// paper requires 0.9.
	WriteFraction float64
	// Zipf is the Zipfian skew factor (paper: 0.9). Zero means uniform.
	Zipf float64
	// ValueSize is the size in bytes of written values. Together with the
	// batch size this controls the PROPOSE message size (the paper's
	// standard payload is ~5400 B for a batch of 100).
	ValueSize int
	// OpsPerTxn is the number of operations per transaction (default 1).
	OpsPerTxn int
	// SpeculativeFraction and StrongFraction set the consistency mix for
	// read-only transactions: a read-only transaction is tagged SPECULATIVE
	// with probability SpeculativeFraction, STRONG with StrongFraction, and
	// ORDERED (full consensus, the pre-tiering behaviour) otherwise. Both
	// zero — the default — leaves every transaction ORDERED. Transactions
	// containing writes always order.
	SpeculativeFraction float64
	StrongFraction      float64
	// Seed seeds the generator.
	Seed int64
}

// DefaultConfig returns the paper's configuration scaled to the given table
// size (pass 500_000 for the paper's exact setup).
func DefaultConfig(records int) Config {
	return Config{
		Records:       records,
		WriteFraction: 0.9,
		Zipf:          0.9,
		ValueSize:     46, // ≈5400 B / 100 requests of PROPOSE payload + framing
		OpsPerTxn:     1,
		Seed:          42,
	}
}

// YCSBB returns the YCSB-B profile ("read mostly": 95% reads) with all
// reads tagged SPECULATIVE. This is the headline configuration for the
// tiered read path — nearly the whole load bypasses consensus.
func YCSBB(records int) Config {
	cfg := DefaultConfig(records)
	cfg.WriteFraction = 0.05
	cfg.SpeculativeFraction = 1.0
	return cfg
}

// YCSBC returns the YCSB-C profile ("read only": 100% reads) with all reads
// tagged SPECULATIVE.
func YCSBC(records int) Config {
	cfg := DefaultConfig(records)
	cfg.WriteFraction = 0
	cfg.SpeculativeFraction = 1.0
	return cfg
}

// Key returns the i-th record key. Keys are fixed-width so table layout is
// independent of record count.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// InitialTable builds the initial table image loaded into every replica.
func InitialTable(cfg Config) map[string][]byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := make(map[string][]byte, cfg.Records)
	for i := 0; i < cfg.Records; i++ {
		v := make([]byte, cfg.ValueSize)
		rng.Read(v)
		m[Key(i)] = v
	}
	return m
}

// Generator produces transactions for one client.
type Generator struct {
	cfg    Config
	client types.ClientID
	rng    *rand.Rand
	zipf   *zipfian
	nextTS uint64
}

// NewGenerator creates a generator for the given client. Two generators with
// the same config and client produce the same transaction stream.
func NewGenerator(cfg Config, client types.ClientID) *Generator {
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 1
	}
	mix := uint64(cfg.Seed) ^ uint64(uint32(client))*0x9E3779B97F4A7C15
	rng := rand.New(rand.NewSource(int64(mix)))
	g := &Generator{cfg: cfg, client: client, rng: rng}
	if cfg.Zipf > 0 && cfg.Records > 1 {
		g.zipf = newZipfian(rng, cfg.Zipf, cfg.Records)
	}
	return g
}

func (g *Generator) pick() int {
	if g.zipf != nil {
		return g.zipf.next()
	}
	return g.rng.Intn(g.cfg.Records)
}

// Next produces the client's next transaction.
func (g *Generator) Next() types.Transaction {
	g.nextTS++
	txn := types.Transaction{Client: g.client, Seq: g.nextTS}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		key := Key(g.pick())
		if g.rng.Float64() < g.cfg.WriteFraction {
			v := make([]byte, g.cfg.ValueSize)
			binary.BigEndian.PutUint64(v, g.nextTS)
			if len(v) >= 16 {
				binary.BigEndian.PutUint64(v[8:], uint64(g.client))
			}
			txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key, Value: v})
		} else {
			txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key})
		}
	}
	if txn.ReadOnly() && (g.cfg.SpeculativeFraction > 0 || g.cfg.StrongFraction > 0) {
		u := g.rng.Float64()
		switch {
		case u < g.cfg.SpeculativeFraction:
			txn.Consistency = types.ConsistencySpeculative
		case u < g.cfg.SpeculativeFraction+g.cfg.StrongFraction:
			txn.Consistency = types.ConsistencyStrong
		}
	}
	return txn
}

// zipfian samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^theta, using the
// Gray et al. quick method (the same construction YCSB uses), which supports
// the theta < 1 regime the paper's skew factor 0.9 requires.
type zipfian struct {
	rng             *rand.Rand
	n               int
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
	halfPowTheta    float64
}

func newZipfian(rng *rand.Rand, theta float64, n int) *zipfian {
	z := &zipfian{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	z.halfPowTheta = 1.0 + math.Pow(0.5, theta)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
