package workload

import (
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig(1000)
	a := NewGenerator(cfg, types.ClientIDBase)
	b := NewGenerator(cfg, types.ClientIDBase)
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Digest() != tb.Digest() {
			t.Fatalf("generators diverged at txn %d", i)
		}
	}
	c := NewGenerator(cfg, types.ClientIDBase+1)
	ta, tc := a.Next(), c.Next()
	if ta.Digest() == tc.Digest() {
		t.Fatal("different clients produced identical transactions")
	}
}

func TestWriteFraction(t *testing.T) {
	cfg := DefaultConfig(1000)
	g := NewGenerator(cfg, types.ClientIDBase)
	writes, total := 0, 0
	for i := 0; i < 5000; i++ {
		txn := g.Next()
		for _, op := range txn.Ops {
			total++
			if op.Kind == types.OpWrite {
				writes++
			}
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("write fraction %.3f, want ≈0.9 (paper's 90%% writes)", frac)
	}
}

func TestZipfianSkew(t *testing.T) {
	// With skew 0.9 the head of the distribution must be dramatically
	// hotter than a uniform draw: the top 1% of records should absorb well
	// over 10% of accesses (uniform would give 1%).
	cfg := DefaultConfig(10000)
	g := NewGenerator(cfg, types.ClientIDBase)
	counts := make(map[string]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		txn := g.Next()
		counts[txn.Ops[0].Key]++
	}
	hot := 0
	for i := 0; i < 100; i++ { // the Gray et al. method maps low ranks to hot keys
		hot += counts[Key(i)]
	}
	if float64(hot)/draws < 0.10 {
		t.Fatalf("top-100 keys got %.1f%% of accesses; distribution not skewed", 100*float64(hot)/draws)
	}
}

func TestInitialTableShape(t *testing.T) {
	cfg := DefaultConfig(500)
	table := InitialTable(cfg)
	if len(table) != 500 {
		t.Fatalf("got %d records", len(table))
	}
	for k, v := range table {
		if len(v) != cfg.ValueSize {
			t.Fatalf("record %s has %d bytes, want %d", k, len(v), cfg.ValueSize)
		}
	}
}

// TestQuickKeysInRange: every generated operation touches a key inside the
// table, for any table size.
func TestQuickKeysInRange(t *testing.T) {
	f := func(recs uint16, seed int64) bool {
		n := int(recs%5000) + 2
		cfg := DefaultConfig(n)
		cfg.Seed = seed
		g := NewGenerator(cfg, types.ClientIDBase)
		valid := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			valid[Key(i)] = true
		}
		for i := 0; i < 50; i++ {
			for _, op := range g.Next().Ops {
				if !valid[op.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
