package workload

import (
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig(1000)
	a := NewGenerator(cfg, types.ClientIDBase)
	b := NewGenerator(cfg, types.ClientIDBase)
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Digest() != tb.Digest() {
			t.Fatalf("generators diverged at txn %d", i)
		}
	}
	c := NewGenerator(cfg, types.ClientIDBase+1)
	ta, tc := a.Next(), c.Next()
	if ta.Digest() == tc.Digest() {
		t.Fatal("different clients produced identical transactions")
	}
}

func TestWriteFraction(t *testing.T) {
	cfg := DefaultConfig(1000)
	g := NewGenerator(cfg, types.ClientIDBase)
	writes, total := 0, 0
	for i := 0; i < 5000; i++ {
		txn := g.Next()
		for _, op := range txn.Ops {
			total++
			if op.Kind == types.OpWrite {
				writes++
			}
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("write fraction %.3f, want ≈0.9 (paper's 90%% writes)", frac)
	}
}

func TestZipfianSkew(t *testing.T) {
	// With skew 0.9 the head of the distribution must be dramatically
	// hotter than a uniform draw: the top 1% of records should absorb well
	// over 10% of accesses (uniform would give 1%).
	cfg := DefaultConfig(10000)
	g := NewGenerator(cfg, types.ClientIDBase)
	counts := make(map[string]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		txn := g.Next()
		counts[txn.Ops[0].Key]++
	}
	hot := 0
	for i := 0; i < 100; i++ { // the Gray et al. method maps low ranks to hot keys
		hot += counts[Key(i)]
	}
	if float64(hot)/draws < 0.10 {
		t.Fatalf("top-100 keys got %.1f%% of accesses; distribution not skewed", 100*float64(hot)/draws)
	}
}

func TestInitialTableShape(t *testing.T) {
	cfg := DefaultConfig(500)
	table := InitialTable(cfg)
	if len(table) != 500 {
		t.Fatalf("got %d records", len(table))
	}
	for k, v := range table {
		if len(v) != cfg.ValueSize {
			t.Fatalf("record %s has %d bytes, want %d", k, len(v), cfg.ValueSize)
		}
	}
}

// TestZipfianThetaMonotonic: raising the skew factor must concentrate more
// mass on the hot head. This pins the Gray et al. construction against the
// classic failure mode where eta/alpha are mis-derived and extra skew
// flattens (or inverts) the distribution.
func TestZipfianThetaMonotonic(t *testing.T) {
	const draws = 30000
	headMass := func(theta float64) float64 {
		cfg := DefaultConfig(10000)
		cfg.Zipf = theta
		g := NewGenerator(cfg, types.ClientIDBase)
		hot := 0
		hotKeys := make(map[string]bool, 100)
		for i := 0; i < 100; i++ {
			hotKeys[Key(i)] = true
		}
		for i := 0; i < draws; i++ {
			if hotKeys[g.Next().Ops[0].Key] {
				hot++
			}
		}
		return float64(hot) / draws
	}
	thetas := []float64{0.3, 0.6, 0.9, 0.99}
	masses := make([]float64, len(thetas))
	for i, th := range thetas {
		masses[i] = headMass(th)
	}
	for i := 1; i < len(masses); i++ {
		// Strictly increasing with slack well below the expected gaps
		// (≈0.02 → 0.06 → 0.17 → 0.26 for 10k records).
		if masses[i] <= masses[i-1] {
			t.Fatalf("head mass not increasing with skew: theta=%v -> %v gave %.3f -> %.3f",
				thetas[i-1], thetas[i], masses[i-1], masses[i])
		}
	}
	if masses[0] > 0.05 {
		t.Fatalf("theta=0.3 head mass %.3f suspiciously hot", masses[0])
	}
	if masses[len(masses)-1] < 0.15 {
		t.Fatalf("theta=0.99 head mass %.3f not skewed enough", masses[len(masses)-1])
	}
}

// TestSeedDeterminism: the full workload — table image and per-client
// transaction streams — is a pure function of (config, client). Replicas
// pre-load tables independently and the open-loop driver re-creates
// generators across processes, so any hidden global state (time, shared
// rand) would desynchronize them.
func TestSeedDeterminism(t *testing.T) {
	cfg := DefaultConfig(300)
	cfg.Seed = 7

	ta, tb := InitialTable(cfg), InitialTable(cfg)
	if len(ta) != len(tb) {
		t.Fatalf("table sizes differ: %d vs %d", len(ta), len(tb))
	}
	for k, v := range ta {
		if string(tb[k]) != string(v) {
			t.Fatalf("table image differs at %s", k)
		}
	}

	for _, client := range []types.ClientID{types.ClientIDBase, types.ClientIDBase + 9} {
		a, b := NewGenerator(cfg, client), NewGenerator(cfg, client)
		for i := 0; i < 200; i++ {
			ta, tb := a.Next(), b.Next()
			if ta.Digest() != tb.Digest() {
				t.Fatalf("client %d stream diverged at txn %d", client, i)
			}
		}
	}

	// A different seed must actually change the stream (seed is not ignored).
	other := cfg
	other.Seed = 8
	a := NewGenerator(cfg, types.ClientIDBase)
	c := NewGenerator(other, types.ClientIDBase)
	same := 0
	for i := 0; i < 50; i++ {
		ta, tc := a.Next(), c.Next()
		if ta.Digest() == tc.Digest() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("seed change did not alter the transaction stream")
	}
}

// TestReadWriteMix: the mix knob is honored across its range, including the
// degenerate all-read and all-write settings the harness uses for read-only
// probes and the paper's 90% write setting.
func TestReadWriteMix(t *testing.T) {
	for _, tc := range []struct {
		frac   float64
		lo, hi float64
	}{
		{0.0, 0, 0},
		{0.5, 0.46, 0.54},
		{0.9, 0.87, 0.93},
		{1.0, 1, 1},
	} {
		cfg := DefaultConfig(1000)
		cfg.WriteFraction = tc.frac
		g := NewGenerator(cfg, types.ClientIDBase)
		writes, total := 0, 0
		for i := 0; i < 4000; i++ {
			for _, op := range g.Next().Ops {
				total++
				if op.Kind == types.OpWrite {
					writes++
				}
			}
		}
		got := float64(writes) / float64(total)
		if got < tc.lo || got > tc.hi {
			t.Errorf("WriteFraction=%v: measured %.3f, want in [%v, %v]", tc.frac, got, tc.lo, tc.hi)
		}
	}
}

// TestQuickKeysInRange: every generated operation touches a key inside the
// table, for any table size.
func TestQuickKeysInRange(t *testing.T) {
	f := func(recs uint16, seed int64) bool {
		n := int(recs%5000) + 2
		cfg := DefaultConfig(n)
		cfg.Seed = seed
		g := NewGenerator(cfg, types.ClientIDBase)
		valid := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			valid[Key(i)] = true
		}
		for i := 0; i < 50; i++ {
			for _, op := range g.Next().Ops {
				if !valid[op.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
