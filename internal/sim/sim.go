// Package sim is the discrete-event simulator of §IV-I of the paper: it
// processes every message send and receive step of a protocol but replaces
// real computation and real networking with a fixed per-hop message delay.
// The simulated performance is therefore determined entirely by the number
// of communication rounds and the message delay — which is precisely the
// point of Fig 11: for protocols that do not process requests out-of-order,
// round count × delay bounds throughput regardless of replica count or
// bandwidth.
//
// Three protocols are modelled, matching the paper:
//
//   - PoE: PROPOSE → SUPPORT → CERTIFY, 3 one-way hops per decision.
//   - PBFT: PRE-PREPARE → PREPARE (all-to-all) → COMMIT (all-to-all),
//     3 hops per decision but O(n²) messages.
//   - HotStuff: chained rounds of PROPOSE → VOTE, 2 hops per (amortized)
//     decision.
//
// A Window of 1 reproduces the paper's sequential plots; larger windows
// reproduce the out-of-order plot (the paper uses 250 in-flight decisions).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Protocol selects the simulated protocol.
type Protocol int

const (
	// PoE is the paper's protocol: three linear hops.
	PoE Protocol = iota
	// PBFT: three hops, two of them all-to-all.
	PBFT
	// HotStuff: two hops per chained round.
	HotStuff
)

func (p Protocol) String() string {
	switch p {
	case PoE:
		return "PoE"
	case PBFT:
		return "PBFT"
	case HotStuff:
		return "HotStuff"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Protocol  Protocol
	N         int           // replicas
	Delay     time.Duration // one-way message delay
	Decisions int           // how many consensus decisions to simulate (paper: 500)
	// Window is the number of decisions the primary keeps in flight.
	// 1 = no out-of-order processing (Fig 11 plots 1–3); the paper's
	// out-of-order plot uses 250.
	Window int
}

// Result reports a simulation run.
type Result struct {
	Config
	SimTime     time.Duration // simulated wall-clock to finish all decisions
	Messages    int           // total protocol messages exchanged
	DecisionsPS float64       // decisions per simulated second
}

// message kinds
type kind int

const (
	kPropose kind = iota
	kSupport
	kCertify
	kPrepare
	kCommit
	kVote
)

type event struct {
	at   time.Duration
	to   int
	from int
	kind kind
	seq  int
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Run executes the simulation and returns its result.
func Run(cfg Config) Result {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Decisions < 1 {
		cfg.Decisions = 1
	}
	s := &sim{cfg: cfg, nf: cfg.N - (cfg.N-1)/3}
	s.run()
	rate := 0.0
	if s.now > 0 {
		rate = float64(cfg.Decisions) / s.now.Seconds()
	}
	return Result{Config: cfg, SimTime: s.now, Messages: s.messages, DecisionsPS: rate}
}

type sim struct {
	cfg      cfg
	nf       int
	q        eventQueue
	now      time.Duration
	messages int

	// per-decision tallies (keyed by seq)
	supports map[int]int
	prepares map[int]map[int]int // seq → replica → count (PBFT phases at each replica)
	commits  map[int]map[int]int
	votes    map[int]int
	decided  map[int]bool

	started   int // decisions initiated
	completed int
}

type cfg = Config

func (s *sim) send(at time.Duration, from, to int, k kind, seq int) {
	s.messages++
	heap.Push(&s.q, event{at: at + s.cfg.Delay, to: to, from: from, kind: k, seq: seq})
}

// broadcast sends to every replica except from (self-handling is immediate
// and free, matching the paper's zero-computation model).
func (s *sim) broadcast(at time.Duration, from int, k kind, seq int) {
	for i := 0; i < s.cfg.N; i++ {
		if i == from {
			continue
		}
		s.send(at, from, i, k, seq)
	}
}

func (s *sim) run() {
	s.supports = make(map[int]int)
	s.prepares = make(map[int]map[int]int)
	s.commits = make(map[int]map[int]int)
	s.votes = make(map[int]int)
	s.decided = make(map[int]bool)
	heap.Init(&s.q)

	// Kick off the first window of decisions.
	for s.started < s.cfg.Window && s.started < s.cfg.Decisions {
		s.initiate(0)
	}
	for s.completed < s.cfg.Decisions && s.q.Len() > 0 {
		e := heap.Pop(&s.q).(event)
		s.now = e.at
		s.handle(e)
	}
}

// initiate launches the next decision at the given simulated time.
func (s *sim) initiate(at time.Duration) {
	seq := s.started
	s.started++
	switch s.cfg.Protocol {
	case PoE, PBFT:
		// The primary (replica 0) proposes.
		s.broadcast(at, 0, kPropose, seq)
	case HotStuff:
		// The round leader rotates; the proposal pattern is identical from
		// the simulator's point of view.
		leader := seq % s.cfg.N
		s.broadcast(at, leader, kPropose, seq)
	}
}

func (s *sim) complete(seq int, at time.Duration) {
	if s.decided[seq] {
		return
	}
	s.decided[seq] = true
	s.completed++
	// A finished decision frees a window slot.
	if s.started < s.cfg.Decisions {
		s.initiate(at)
	}
}

func (s *sim) handle(e event) {
	switch s.cfg.Protocol {
	case PoE:
		s.handlePoE(e)
	case PBFT:
		s.handlePBFT(e)
	case HotStuff:
		s.handleHotStuff(e)
	}
}

// handlePoE: replicas SUPPORT to the primary; at nf supports the primary
// CERTIFYs; replicas decide on receipt.
func (s *sim) handlePoE(e event) {
	switch e.kind {
	case kPropose:
		s.send(e.at, e.to, 0, kSupport, e.seq)
	case kSupport:
		s.supports[e.seq]++
		// The primary contributes its own share (§II-E), so nf−1 external
		// supports suffice.
		if s.supports[e.seq] == s.nf-1 {
			s.broadcast(e.at, 0, kCertify, e.seq)
		}
	case kCertify:
		// First certify arrival marks the decision (all arrive together in
		// the uniform-delay model).
		s.complete(e.seq, e.at)
	}
}

// handlePBFT: PREPARE and COMMIT are all-to-all; a replica commits at nf
// commit messages.
func (s *sim) handlePBFT(e event) {
	switch e.kind {
	case kPropose:
		s.broadcast(e.at, e.to, kPrepare, e.seq)
	case kPrepare:
		m, ok := s.prepares[e.seq]
		if !ok {
			m = make(map[int]int)
			s.prepares[e.seq] = m
		}
		m[e.to]++
		if m[e.to] == s.nf-1 { // own prepare is free
			s.broadcast(e.at, e.to, kCommit, e.seq)
		}
	case kCommit:
		m, ok := s.commits[e.seq]
		if !ok {
			m = make(map[int]int)
			s.commits[e.seq] = m
		}
		m[e.to]++
		if m[e.to] == s.nf-1 {
			s.complete(e.seq, e.at)
		}
	}
}

// handleHotStuff: votes go to the next leader; at nf votes the next round's
// proposal goes out, and (chained) the previous decision is counted.
func (s *sim) handleHotStuff(e event) {
	switch e.kind {
	case kPropose:
		next := (e.seq + 1) % s.cfg.N
		s.send(e.at, e.to, next, kVote, e.seq)
	case kVote:
		s.votes[e.seq]++
		if s.votes[e.seq] == s.nf-1 {
			// QC formed: the chained pipeline amortizes one decision per
			// round.
			s.complete(e.seq, e.at)
		}
	}
}
