package sim

import (
	"math"
	"testing"
	"time"
)

func TestSequentialRatesMatchRoundModel(t *testing.T) {
	// With zero computation and uniform delay d, sequential throughput is
	// 1/(rounds × d): 3 rounds for PoE and PBFT, 2 for HotStuff (§IV-I).
	for _, tc := range []struct {
		p      Protocol
		rounds float64
	}{{PoE, 3}, {PBFT, 3}, {HotStuff, 2}} {
		for _, n := range []int{4, 16, 128} {
			res := Run(Config{Protocol: tc.p, N: n, Delay: 10 * time.Millisecond, Decisions: 100, Window: 1})
			want := 1.0 / (tc.rounds * 0.010)
			if math.Abs(res.DecisionsPS-want)/want > 0.05 {
				t.Errorf("%v n=%d: got %.1f dec/s, want ≈%.1f", tc.p, n, res.DecisionsPS, want)
			}
		}
	}
}

func TestDoublingDelayHalvesThroughput(t *testing.T) {
	r10 := Run(Config{Protocol: PoE, N: 16, Delay: 10 * time.Millisecond, Decisions: 100, Window: 1})
	r20 := Run(Config{Protocol: PoE, N: 16, Delay: 20 * time.Millisecond, Decisions: 100, Window: 1})
	ratio := r10.DecisionsPS / r20.DecisionsPS
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("expected 2x, got %.2fx", ratio)
	}
}

func TestThroughputIndependentOfN(t *testing.T) {
	// Fig 11: without out-of-order processing, replica count does not
	// matter (bandwidth is not modelled).
	r4 := Run(Config{Protocol: PBFT, N: 4, Delay: 10 * time.Millisecond, Decisions: 100, Window: 1})
	r128 := Run(Config{Protocol: PBFT, N: 128, Delay: 10 * time.Millisecond, Decisions: 100, Window: 1})
	if math.Abs(r4.DecisionsPS-r128.DecisionsPS)/r4.DecisionsPS > 0.05 {
		t.Errorf("n=4: %.1f vs n=128: %.1f", r4.DecisionsPS, r128.DecisionsPS)
	}
}

func TestOutOfOrderMultiplier(t *testing.T) {
	// Fig 11's last plot: a 250-deep window raises throughput by roughly
	// the window factor even with 128 replicas.
	seq := Run(Config{Protocol: PoE, N: 128, Delay: 10 * time.Millisecond, Decisions: 500, Window: 1})
	ooo := Run(Config{Protocol: PoE, N: 128, Delay: 10 * time.Millisecond, Decisions: 500, Window: 250})
	factor := ooo.DecisionsPS / seq.DecisionsPS
	if factor < 100 || factor > 300 {
		t.Errorf("out-of-order factor %.0f outside the paper's ~200x regime", factor)
	}
}

func TestMessageComplexity(t *testing.T) {
	// PBFT exchanges O(n²) messages per decision, PoE O(n).
	poe := Run(Config{Protocol: PoE, N: 16, Delay: time.Millisecond, Decisions: 10, Window: 1})
	pbft := Run(Config{Protocol: PBFT, N: 16, Delay: time.Millisecond, Decisions: 10, Window: 1})
	if pbft.Messages < 5*poe.Messages {
		t.Errorf("PBFT messages (%d) not quadratically above PoE (%d)", pbft.Messages, poe.Messages)
	}
	perDecision := poe.Messages / 10
	if perDecision > 3*16 {
		t.Errorf("PoE per-decision messages %d exceed 3n", perDecision)
	}
}
