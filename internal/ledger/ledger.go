// Package ledger implements the blockchain ledger of §III-A of the PoE
// paper: an immutable hash-chained list of blocks, one block per executed
// batch, rooted in a genesis block derived from the initial primary's
// identity (no communication needed to agree on it).
//
// As the paper notes, hashing the previous block can be expensive; blocks
// therefore also carry the consensus certificate (the threshold signature
// from the CERTIFY message) as an alternative proof-of-acceptance.
//
// A chain either starts at the genesis block (NewChain) or, on a replica
// recovering from a durable checkpoint snapshot, at the snapshot's head
// block (Restore); in both cases the root is immutable and hash-link
// verification covers everything appended after it.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/poexec/poe/internal/types"
)

// Block is one entry in the chain: Bi = {k, d, v, H(B(i-1))} plus the
// consensus certificate for the k-th batch.
type Block struct {
	Seq      types.SeqNum // sequence number k of the batch
	Digest   types.Digest // digest d of the batch
	View     types.View   // view v in which the batch was certified
	PrevHash types.Digest // H(B(i-1))
	Proof    []byte       // certificate: proof-of-accepting the k-th request
}

// Hash returns the block's hash, the value chained into the next block.
// The certificate is deliberately excluded: under the MAC instantiation each
// replica assembles its own certificate from whichever nf shares arrived
// first, so certificates are replica-local while the chain itself must be
// identical on all non-faulty replicas.
func (b *Block) Hash() types.Digest {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(b.Seq))
	h.Write(buf[:])
	h.Write(b.Digest[:])
	binary.BigEndian.PutUint64(buf[:], uint64(b.View))
	h.Write(buf[:])
	h.Write(b.PrevHash[:])
	var d types.Digest
	h.Sum(d[:0])
	return d
}

// Chain is an append-only hash-chained ledger. It is safe for concurrent
// use. Because PoE executes speculatively, blocks appended after the latest
// checkpoint may be truncated again during a view change (TruncateAfter);
// blocks below a checkpoint are immutable.
//
// A chain normally starts at the genesis block (sequence 0), but a replica
// recovering from a durable checkpoint snapshot restarts its chain from the
// snapshot's head block instead (Restore): the prefix below it was frozen by
// a stable checkpoint and lives in the snapshot, so only the base block is
// needed to keep extending — and verifying — the hash chain.
type Chain struct {
	mu     sync.RWMutex
	blocks []Block
	base   types.SeqNum // sequence number of blocks[0]
	stable int          // number of leading blocks frozen by checkpoints
}

// NewChain creates a ledger whose genesis block is derived from the identity
// of the initial primary, information available to every replica without
// communication (§III-A).
func NewChain(initialPrimary types.ReplicaID) *Chain {
	genesis := Block{
		Seq:    0,
		Digest: types.DigestBytes([]byte(fmt.Sprintf("poe-genesis-primary-%d", initialPrimary))),
		View:   0,
	}
	return &Chain{blocks: []Block{genesis}, stable: 1}
}

// Restore creates a chain rooted at a trusted head block, typically the
// ledger head recorded in a durable checkpoint snapshot. The head plays the
// role genesis plays for a fresh chain: it is immutable, and blocks appended
// after it chain off its hash, so hash-link verification still covers every
// block the restored replica appends.
func Restore(head Block) *Chain {
	return &Chain{blocks: []Block{head}, base: head.Seq, stable: 1}
}

// Reset re-roots the chain in place at a trusted head block, discarding all
// retained blocks. It is the state-transfer counterpart of Restore: a replica
// installing a verified checkpoint snapshot from a peer keeps its Chain
// pointer (the runtime and protocol hold references) but replaces the history
// with the snapshot head, exactly as if it had recovered from that snapshot
// on disk. The caller must have verified the head against a checkpoint
// certificate: Reset discards the stable prefix, which is otherwise immutable.
func (c *Chain) Reset(head Block) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks = append(c.blocks[:0], head)
	c.base = head.Seq
	c.stable = 1
}

// Genesis returns the chain's root block: the true genesis for a fresh
// chain, or the snapshot head for a restored one.
func (c *Chain) Genesis() Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[0]
}

// Base returns the sequence number of the chain's root block (0 for a fresh
// chain). Blocks below it are not retained in memory.
func (c *Chain) Base() types.SeqNum {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base
}

// Height returns the sequence number of the head block: the number of
// batches the full chain covers, including any prefix compacted into a
// snapshot.
func (c *Chain) Height() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int(c.blocks[len(c.blocks)-1].Seq)
}

// Head returns the most recent block.
func (c *Chain) Head() Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1]
}

// Append creates and appends the block for the batch executed at seq. The
// block's PrevHash links to the current head. Blocks must be appended in
// sequence order.
func (c *Chain) Append(seq types.SeqNum, digest types.Digest, view types.View, proof []byte) (Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.blocks[len(c.blocks)-1]
	if seq != head.Seq+1 {
		return Block{}, fmt.Errorf("ledger: append out of order: head seq %d, got %d", head.Seq, seq)
	}
	b := Block{Seq: seq, Digest: digest, View: view, PrevHash: head.Hash(), Proof: proof}
	c.blocks = append(c.blocks, b)
	return b, nil
}

// Get returns the block at sequence number seq. Blocks below the chain's
// base (compacted into a snapshot on a restored chain) are not available.
func (c *Chain) Get(seq types.SeqNum) (Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if seq < c.base || int(seq-c.base) >= len(c.blocks) {
		return Block{}, false
	}
	return c.blocks[seq-c.base], true
}

// TruncateAfter removes all blocks with sequence number greater than seq,
// mirroring a speculative-execution rollback. Truncating below a checkpoint
// fails: those blocks are immutable.
func (c *Chain) TruncateAfter(seq types.SeqNum) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < c.base || int(seq-c.base)+1 < c.stable {
		return fmt.Errorf("ledger: cannot truncate to seq %d below stable prefix %d", seq, types.SeqNum(c.stable-1)+c.base)
	}
	if int(seq-c.base)+1 < len(c.blocks) {
		c.blocks = c.blocks[:seq-c.base+1]
	}
	return nil
}

// MarkStable freezes the prefix up to and including seq (checkpoint).
func (c *Chain) MarkStable(seq types.SeqNum) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < c.base {
		return
	}
	if int(seq-c.base)+1 > c.stable && int(seq-c.base) < len(c.blocks) {
		c.stable = int(seq-c.base) + 1
	}
}

// Verify walks the chain and checks every hash link. It returns the first
// broken link's sequence number, or 0 and true if the chain is intact.
func (c *Chain) Verify() (types.SeqNum, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 1; i < len(c.blocks); i++ {
		if c.blocks[i].PrevHash != c.blocks[i-1].Hash() {
			return c.blocks[i].Seq, false
		}
		if c.blocks[i].Seq != c.blocks[i-1].Seq+1 {
			return c.blocks[i].Seq, false
		}
	}
	return 0, true
}
