package ledger

import (
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Wire codec for ledger blocks (embedded in checkpoint snapshots).

// AppendWire appends the block's encoding: seq, digest, view, previous
// hash, certificate.
func (b *Block) AppendWire(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(b.Seq))
	buf = types.AppendDigest(buf, b.Digest)
	buf = wire.AppendU64(buf, uint64(b.View))
	buf = types.AppendDigest(buf, b.PrevHash)
	return wire.AppendBytes(buf, b.Proof)
}

// ReadWire decodes one block.
func (b *Block) ReadWire(r *wire.Reader) {
	b.Seq = types.SeqNum(r.U64())
	b.Digest = types.ReadDigest(r)
	b.View = types.View(r.U64())
	b.PrevHash = types.ReadDigest(r)
	b.Proof = r.Bytes()
}
