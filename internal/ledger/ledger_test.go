package ledger

import (
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func TestGenesisFromPrimaryIdentity(t *testing.T) {
	a := NewChain(0)
	b := NewChain(0)
	ga, gb := a.Genesis(), b.Genesis()
	if ga.Digest != gb.Digest {
		t.Fatal("genesis must be deterministic for the same initial primary")
	}
	c := NewChain(1)
	if gc := c.Genesis(); gc.Digest == ga.Digest {
		t.Fatal("different initial primaries must give different genesis blocks")
	}
}

func TestAppendVerifyTruncate(t *testing.T) {
	c := NewChain(0)
	for s := types.SeqNum(1); s <= 5; s++ {
		if _, err := c.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Verify(); !ok {
		t.Fatal("freshly built chain must verify")
	}
	if c.Height() != 5 {
		t.Fatalf("height %d", c.Height())
	}
	if _, err := c.Append(7, types.ZeroDigest, 0, nil); err == nil {
		t.Fatal("out-of-order append should fail")
	}
	if err := c.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 3 {
		t.Fatalf("height after truncate %d", c.Height())
	}
	// Appending a different block at seq 4 re-links the chain.
	if _, err := c.Append(4, types.DigestBytes([]byte("new4")), 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Verify(); !ok {
		t.Fatal("chain must verify after truncate + re-append")
	}
}

func TestStablePrefixImmutable(t *testing.T) {
	c := NewChain(0)
	for s := types.SeqNum(1); s <= 4; s++ {
		if _, err := c.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.MarkStable(3)
	if err := c.TruncateAfter(2); err == nil {
		t.Fatal("truncating below the stable prefix must fail")
	}
	if err := c.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChainsWithSameBlocksAgree: two chains fed identical appends have
// identical head hashes — the replicated-ledger agreement invariant.
func TestQuickChainsWithSameBlocksAgree(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 32 {
			payloads = payloads[:32]
		}
		a, b := NewChain(0), NewChain(0)
		for i, p := range payloads {
			d := types.DigestBytes(p)
			if _, err := a.Append(types.SeqNum(i+1), d, 0, nil); err != nil {
				return false
			}
			if _, err := b.Append(types.SeqNum(i+1), d, 0, []byte("different-proof")); err != nil {
				return false
			}
		}
		ha, hb := a.Head(), b.Head()
		// Proofs are replica-local (MAC mode) and excluded from hashes.
		return ha.Hash() == hb.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
