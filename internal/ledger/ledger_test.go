package ledger

import (
	"testing"
	"testing/quick"

	"github.com/poexec/poe/internal/types"
)

func TestGenesisFromPrimaryIdentity(t *testing.T) {
	a := NewChain(0)
	b := NewChain(0)
	ga, gb := a.Genesis(), b.Genesis()
	if ga.Digest != gb.Digest {
		t.Fatal("genesis must be deterministic for the same initial primary")
	}
	c := NewChain(1)
	if gc := c.Genesis(); gc.Digest == ga.Digest {
		t.Fatal("different initial primaries must give different genesis blocks")
	}
}

func TestAppendVerifyTruncate(t *testing.T) {
	c := NewChain(0)
	for s := types.SeqNum(1); s <= 5; s++ {
		if _, err := c.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Verify(); !ok {
		t.Fatal("freshly built chain must verify")
	}
	if c.Height() != 5 {
		t.Fatalf("height %d", c.Height())
	}
	if _, err := c.Append(7, types.ZeroDigest, 0, nil); err == nil {
		t.Fatal("out-of-order append should fail")
	}
	if err := c.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 3 {
		t.Fatalf("height after truncate %d", c.Height())
	}
	// Appending a different block at seq 4 re-links the chain.
	if _, err := c.Append(4, types.DigestBytes([]byte("new4")), 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Verify(); !ok {
		t.Fatal("chain must verify after truncate + re-append")
	}
}

func TestStablePrefixImmutable(t *testing.T) {
	c := NewChain(0)
	for s := types.SeqNum(1); s <= 4; s++ {
		if _, err := c.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.MarkStable(3)
	if err := c.TruncateAfter(2); err == nil {
		t.Fatal("truncating below the stable prefix must fail")
	}
	if err := c.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChainsWithSameBlocksAgree: two chains fed identical appends have
// identical head hashes — the replicated-ledger agreement invariant.
func TestQuickChainsWithSameBlocksAgree(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 32 {
			payloads = payloads[:32]
		}
		a, b := NewChain(0), NewChain(0)
		for i, p := range payloads {
			d := types.DigestBytes(p)
			if _, err := a.Append(types.SeqNum(i+1), d, 0, nil); err != nil {
				return false
			}
			if _, err := b.Append(types.SeqNum(i+1), d, 0, []byte("different-proof")); err != nil {
				return false
			}
		}
		ha, hb := a.Head(), b.Head()
		// Proofs are replica-local (MAC mode) and excluded from hashes.
		return ha.Hash() == hb.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateThenAppendSequence pins down the edge cases of the
// rollback-reappend cycle a speculative view change produces: truncation to
// the head is a no-op, repeated truncation is idempotent, and sequence
// numbering restarts exactly after the truncation point.
func TestTruncateThenAppendSequence(t *testing.T) {
	c := NewChain(0)
	for s := types.SeqNum(1); s <= 6; s++ {
		if _, err := c.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.TruncateAfter(6); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 6 {
		t.Fatal("truncating to the head must not drop blocks")
	}
	if err := c.TruncateAfter(4); err != nil {
		t.Fatal(err)
	}
	if err := c.TruncateAfter(4); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 4 {
		t.Fatalf("height %d after idempotent truncate, want 4", c.Height())
	}
	// Sequence numbering must continue at 5, not at the old head.
	if _, err := c.Append(6, types.DigestBytes([]byte("skip")), 1, nil); err == nil {
		t.Fatal("append skipping seq 5 accepted after truncate")
	}
	b5, err := c.Append(5, types.DigestBytes([]byte("new5")), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b4, _ := c.Get(4)
	if b5.PrevHash != b4.Hash() {
		t.Fatal("re-appended block must link to the surviving head")
	}
	if _, ok := c.Verify(); !ok {
		t.Fatal("chain must verify after truncate-then-append")
	}
}

// TestRestoredChainFromSnapshotHead covers the crash-recovery construction:
// a chain rooted at a snapshot head block must index, truncate, and verify
// relative to its base, and refuse to reach below it.
func TestRestoredChainFromSnapshotHead(t *testing.T) {
	orig := NewChain(0)
	for s := types.SeqNum(1); s <= 10; s++ {
		if _, err := orig.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	head, _ := orig.Get(7)
	r := Restore(head)
	if r.Base() != 7 || r.Height() != 7 {
		t.Fatalf("restored base=%d height=%d, want 7/7", r.Base(), r.Height())
	}
	if g := r.Genesis(); g.Hash() != head.Hash() {
		t.Fatal("restored root must be the snapshot head")
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("blocks below the base are not retained")
	}
	// Appends continue the original hash chain exactly.
	for s := types.SeqNum(8); s <= 10; s++ {
		if _, err := r.Append(s, types.DigestBytes([]byte{byte(s)}), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	ro, _ := r.Get(10)
	oo, _ := orig.Get(10)
	if ro.Hash() != oo.Hash() {
		t.Fatal("restored chain diverged from the original")
	}
	if _, ok := r.Verify(); !ok {
		t.Fatal("restored chain must verify")
	}
	// Truncation below the base is refused; at or above works.
	if err := r.TruncateAfter(5); err == nil {
		t.Fatal("truncation below the restored base accepted")
	}
	if err := r.TruncateAfter(8); err != nil {
		t.Fatal(err)
	}
	if r.Height() != 8 {
		t.Fatalf("height %d after truncate, want 8", r.Height())
	}
	r.MarkStable(8)
	if err := r.TruncateAfter(7); err == nil {
		t.Fatal("truncation below a checkpoint on a restored chain accepted")
	}
}
