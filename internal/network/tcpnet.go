package network

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"github.com/poexec/poe/internal/types"
)

// TCPNet is a transport backed by real TCP connections, used by the cmd/
// binaries to run a cluster across processes or machines. Each node listens
// on one address; outgoing connections are dialed lazily and kept open.
// Messages are gob-encoded wireEnvelopes; concrete message types must be
// registered with Register.
type TCPNet struct {
	node     types.NodeID
	peers    map[types.NodeID]string
	listener net.Listener

	mu    sync.Mutex
	conns map[types.NodeID]*tcpPeer

	inMu    sync.Mutex
	inbound map[net.Conn]struct{}

	inbox    chan Envelope
	closedMu sync.Mutex
	closed   bool
	wg       sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

type wireEnvelope struct {
	From types.NodeID
	To   types.NodeID
	Msg  any
}

// NewTCPNet starts a TCP transport for node, listening on peers[node] and
// dialing the other entries on demand.
func NewTCPNet(node types.NodeID, peers map[types.NodeID]string) (*TCPNet, error) {
	addr, ok := peers[node]
	if !ok {
		return nil, fmt.Errorf("network: no listen address for node %v", node)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCPNet{
		node:     node,
		peers:    peers,
		listener: ln,
		conns:    make(map[types.NodeID]*tcpPeer),
		inbound:  make(map[net.Conn]struct{}),
		inbox:    make(chan Envelope, 65536),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful with ":0").
func (t *TCPNet) Addr() string { return t.listener.Addr().String() }

// Node implements Transport.
func (t *TCPNet) Node() types.NodeID { return t.node }

// Inbox implements Transport.
func (t *TCPNet) Inbox() <-chan Envelope { return t.inbox }

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.inMu.Lock()
		t.inbound[conn] = struct{}{}
		t.inMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.inMu.Lock()
		delete(t.inbound, conn)
		t.inMu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var we wireEnvelope
		if err := dec.Decode(&we); err != nil {
			return
		}
		t.closedMu.Lock()
		closed := t.closed
		t.closedMu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- Envelope(we):
		default:
			// Shed load rather than stall the connection; protocols
			// retransmit.
		}
	}
}

func (t *TCPNet) peerConn(to types.NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	p, ok := t.conns[to]
	if !ok {
		p = &tcpPeer{}
		t.conns[to] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("network: unknown peer %v", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.conn = conn
	p.enc = gob.NewEncoder(conn)
	return p, nil
}

// Send implements Transport. Failures (unreachable peer, encoding error)
// drop the message; protocols tolerate loss.
func (t *TCPNet) Send(to types.NodeID, msg any) {
	if to == t.node {
		select {
		case t.inbox <- Envelope{From: t.node, To: to, Msg: msg}:
		default:
		}
		return
	}
	p, err := t.peerConn(to)
	if err != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.enc == nil {
		return
	}
	if err := p.enc.Encode(wireEnvelope{From: t.node, To: to, Msg: msg}); err != nil {
		// Reset the connection so the next Send re-dials.
		p.conn.Close()
		p.conn, p.enc = nil, nil
	}
}

// Close implements Transport.
func (t *TCPNet) Close() error {
	t.closedMu.Lock()
	if t.closed {
		t.closedMu.Unlock()
		return nil
	}
	t.closed = true
	t.closedMu.Unlock()

	t.listener.Close()
	t.mu.Lock()
	for _, p := range t.conns {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	t.mu.Unlock()
	t.inMu.Lock()
	for conn := range t.inbound {
		conn.Close()
	}
	t.inMu.Unlock()
	t.wg.Wait()
	close(t.inbox)
	return nil
}
