package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// TCPNet is a transport backed by real TCP connections, used by the cmd/
// binaries to run a cluster across processes or machines. Each node listens
// on one address; outgoing connections are dialed lazily and kept open.
//
// Messages travel as frames of the hand-written zero-reflection codec:
//
//	[u32 body length][i32 sender][u16 type id][body]
//
// (internal/wire; concrete message types must be wire.Register-ed). The
// framing is stateless — unlike the gob streams it replaced, no per-stream
// type dictionary exists, so any frame decodes on any connection (a
// reconnecting client's first reply is as decodable as its hundredth) and a
// broadcast marshals ONCE and writes the identical bytes to every peer
// (Broadcast below; Encodes counts the marshals so tests can assert the
// fan-out really is marshal-once). The destination is not in the frame: TCP
// links are point-to-point, the receiver is the destination.
type TCPNet struct {
	node     types.NodeID
	peers    map[types.NodeID]string
	listener net.Listener

	mu    sync.Mutex
	conns map[types.NodeID]*tcpPeer

	// learned routes reply over inbound connections to nodes that are not
	// in the static address book — clients, whose listen addresses replicas
	// cannot know in advance. The address book always wins when present.
	learnedMu sync.Mutex
	learned   map[types.NodeID]*tcpPeer

	inMu    sync.Mutex
	inbound map[net.Conn]struct{}

	inbox    chan Envelope
	closedMu sync.Mutex
	closed   bool
	wg       sync.WaitGroup

	encodes     atomic.Int64
	unencodable atomic.Int64

	// warned tracks message types already logged as unencodable, so a
	// missing codec is loud exactly once per type instead of per message.
	warnedMu sync.Mutex
	warned   map[string]bool
}

// tcpPeer is one outgoing (or learned reply) stream. It carries no encoder
// state — frames are self-contained — so the same encoded frame can be
// written to any number of peers.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

// maxFrameSize bounds one decoded frame; a declared length beyond it is
// treated as a corrupt or hostile stream and the connection is dropped.
const maxFrameSize = 64 << 20

// NewTCPNet starts a TCP transport for node, listening on peers[node] and
// dialing the other entries on demand.
func NewTCPNet(node types.NodeID, peers map[types.NodeID]string) (*TCPNet, error) {
	addr, ok := peers[node]
	if !ok {
		return nil, fmt.Errorf("network: no listen address for node %v", node)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCPNet{
		node:     node,
		peers:    peers,
		listener: ln,
		conns:    make(map[types.NodeID]*tcpPeer),
		learned:  make(map[types.NodeID]*tcpPeer),
		inbound:  make(map[net.Conn]struct{}),
		inbox:    make(chan Envelope, 65536),
		warned:   make(map[string]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful with ":0").
func (t *TCPNet) Addr() string { return t.listener.Addr().String() }

// Node implements Transport.
func (t *TCPNet) Node() types.NodeID { return t.node }

// Inbox implements Transport.
func (t *TCPNet) Inbox() <-chan Envelope { return t.inbox }

// Encodes returns the number of frame marshals this transport has performed
// — the counter the marshal-once broadcast contract is asserted on.
func (t *TCPNet) Encodes() int64 { return t.encodes.Load() }

// Unencodable returns how many messages were dropped because their type
// does not implement wire.Message (no codec, so nothing can go on the
// wire). A nonzero value means some message type was never given a wire.go
// implementation — a bug the in-process transports cannot surface, since
// they pass pointers and need no codec.
func (t *TCPNet) Unencodable() int64 { return t.unencodable.Load() }

// noteUnencodable counts a dropped codec-less message and logs the type
// once. The old gob path surfaced this class of bug as a per-type encode
// error; silent dropping would make a missing codec a livelock with no
// diagnostic.
func (t *TCPNet) noteUnencodable(msg any) {
	t.unencodable.Add(1)
	name := fmt.Sprintf("%T", msg)
	t.warnedMu.Lock()
	seen := t.warned[name]
	if !seen {
		t.warned[name] = true
	}
	t.warnedMu.Unlock()
	if !seen {
		log.Printf("network: dropping %s: type does not implement wire.Message (missing wire codec)", name)
	}
}

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		if !t.trackConn(conn) {
			conn.Close()
			return
		}
		go t.readLoop(conn)
	}
}

// trackConn registers a connection for shutdown (inbound sweep + WaitGroup)
// and reports whether the transport is still open. The registration happens
// under closedMu so it cannot race Close: either the connection is recorded
// before Close sweeps (and the sweep closes it, unblocking its readLoop), or
// Close already ran and the caller must discard the connection.
func (t *TCPNet) trackConn(conn net.Conn) bool {
	t.closedMu.Lock()
	defer t.closedMu.Unlock()
	if t.closed {
		return false
	}
	t.wg.Add(1)
	t.inMu.Lock()
	t.inbound[conn] = struct{}{}
	t.inMu.Unlock()
	return true
}

// readFrame reads one length-delimited frame body from br. The returned
// buffer is freshly allocated per frame: the decoded message aliases it and
// owns it (Envelope.Owned).
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length > maxFrameSize {
		return nil, fmt.Errorf("network: frame declares %d bytes", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	var routeFrom types.NodeID
	var routePeer *tcpPeer
	defer func() {
		conn.Close()
		t.inMu.Lock()
		delete(t.inbound, conn)
		t.inMu.Unlock()
		if routePeer != nil {
			// Drop the reply route if this connection still owns it, so a
			// departed client doesn't leak a dead peer entry.
			t.learnedMu.Lock()
			if t.learned[routeFrom] == routePeer {
				delete(t.learned, routeFrom)
			}
			t.learnedMu.Unlock()
		}
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	for {
		body, err := readFrame(br)
		if err != nil {
			return
		}
		from32, msg, err := wire.DecodeFrame(body)
		if err != nil {
			// A frame that does not decode poisons nothing after it — the
			// framing is self-delimiting — but an undecodable peer is a
			// version mismatch or an attack; drop the message and move on.
			continue
		}
		from := types.NodeID(from32)
		t.closedMu.Lock()
		closed := t.closed
		t.closedMu.Unlock()
		if closed {
			return
		}
		if _, known := t.peers[from]; !known && from != t.node {
			// A sender with no static address (a client) is reached back
			// over its own connection. The From field is unauthenticated, so
			// a spoofed connection can steal the route; re-asserting it on
			// every message means the legitimate sender reclaims its route
			// with its next (re)transmission — message-level crypto keeps
			// spoofing a liveness nuisance, never a safety issue. One route
			// per connection: the first unknown sender on this conn owns it.
			if routePeer == nil {
				routeFrom = from
				routePeer = &tcpPeer{conn: conn, bw: bufio.NewWriterSize(conn, 64*1024)}
			}
			if from == routeFrom {
				t.relearnRoute(routeFrom, routePeer)
			}
		}
		select {
		case t.inbox <- Envelope{From: from, To: t.node, Msg: msg, Owned: true}:
		default:
			// Shed load rather than stall the connection; protocols
			// retransmit.
		}
	}
}

// relearnRoute points the reply route for from at p unless it already does.
// The map is capped like every other cache in the system; clearing it only
// costs re-learning on the next message from each live client.
func (t *TCPNet) relearnRoute(from types.NodeID, p *tcpPeer) {
	t.learnedMu.Lock()
	if t.learned[from] != p {
		if len(t.learned) >= 1<<14 {
			t.learned = make(map[types.NodeID]*tcpPeer)
		}
		t.learned[from] = p
	}
	t.learnedMu.Unlock()
}

func (t *TCPNet) peerConn(to types.NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	p, ok := t.conns[to]
	if !ok {
		p = &tcpPeer{}
		t.conns[to] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("network: unknown peer %v", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Read the dialed connection too: peers without our listen address in
	// their book (we are a client to them) reply over this connection.
	if !t.trackConn(conn) {
		conn.Close()
		return nil, fmt.Errorf("network: transport closed")
	}
	go t.readLoop(conn)
	p.conn = conn
	// One frame is one buffered write; Flush per message keeps latency
	// bounded while the buffer coalesces a frame's header and body into a
	// single write(2).
	p.bw = bufio.NewWriterSize(conn, 64*1024)
	return p, nil
}

// writeFrame writes one pre-encoded frame to the peer, resetting the
// connection on failure so the next Send re-dials (or, for a learned route,
// waits for the peer to reconnect).
func (t *TCPNet) writeFrame(to types.NodeID, p *tcpPeer, frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bw == nil {
		return
	}
	_, err := p.bw.Write(frame)
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		p.conn.Close()
		p.conn, p.bw = nil, nil
		t.learnedMu.Lock()
		if t.learned[to] == p {
			delete(t.learned, to)
		}
		t.learnedMu.Unlock()
	}
}

// loopback delivers a self-addressed message without serialization.
func (t *TCPNet) loopback(msg any) {
	select {
	case t.inbox <- Envelope{From: t.node, To: t.node, Msg: msg}:
	default:
	}
}

// encodeFrame marshals one frame into a pooled buffer. Callers must PutBuf.
func (t *TCPNet) encodeFrame(m wire.Message) []byte {
	t.encodes.Add(1)
	return wire.AppendFrame(wire.GetBuf(), int32(t.node), m)
}

// Send implements Transport. Failures (unreachable peer, encoding error,
// unregistered message type) drop the message; protocols tolerate loss.
func (t *TCPNet) Send(to types.NodeID, msg any) {
	if to == t.node {
		t.loopback(msg)
		return
	}
	m, ok := msg.(wire.Message)
	if !ok {
		t.noteUnencodable(msg)
		return
	}
	p, err := t.route(to)
	if err != nil {
		return
	}
	frame := t.encodeFrame(m)
	t.writeFrame(to, p, frame)
	wire.PutBuf(frame)
}

// Broadcast implements Transport: the message is marshaled exactly once and
// the same frame bytes are written to every resolvable peer. A self
// destination short-circuits through the loopback without serialization.
func (t *TCPNet) Broadcast(tos []types.NodeID, msg any) {
	m, ok := msg.(wire.Message)
	if !ok {
		sent := false
		for _, to := range tos {
			if to == t.node {
				t.loopback(msg)
				sent = true
			}
		}
		if !sent {
			t.noteUnencodable(msg)
		}
		return
	}
	var frame []byte
	for _, to := range tos {
		if to == t.node {
			t.loopback(msg)
			continue
		}
		p, err := t.route(to)
		if err != nil {
			continue
		}
		if frame == nil {
			frame = t.encodeFrame(m)
		}
		t.writeFrame(to, p, frame)
	}
	if frame != nil {
		wire.PutBuf(frame)
	}
}

// route resolves the peer to send to: a dialed connection for nodes in the
// address book, otherwise a learned inbound route.
func (t *TCPNet) route(to types.NodeID) (*tcpPeer, error) {
	if _, known := t.peers[to]; known {
		return t.peerConn(to)
	}
	t.learnedMu.Lock()
	p, ok := t.learned[to]
	t.learnedMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: no route to %v", to)
	}
	return p, nil
}

// Close implements Transport.
func (t *TCPNet) Close() error {
	t.closedMu.Lock()
	if t.closed {
		t.closedMu.Unlock()
		return nil
	}
	t.closed = true
	t.closedMu.Unlock()

	t.listener.Close()
	t.mu.Lock()
	for _, p := range t.conns {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	t.mu.Unlock()
	t.inMu.Lock()
	for conn := range t.inbound {
		conn.Close()
	}
	t.inMu.Unlock()
	t.wg.Wait()
	close(t.inbox)
	return nil
}
