package network

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"github.com/poexec/poe/internal/types"
)

// TCPNet is a transport backed by real TCP connections, used by the cmd/
// binaries to run a cluster across processes or machines. Each node listens
// on one address; outgoing connections are dialed lazily and kept open.
// Messages are gob-encoded wireEnvelopes; concrete message types must be
// registered with Register.
type TCPNet struct {
	node     types.NodeID
	peers    map[types.NodeID]string
	listener net.Listener

	mu    sync.Mutex
	conns map[types.NodeID]*tcpPeer

	// learned routes reply over inbound connections to nodes that are not
	// in the static address book — clients, whose listen addresses replicas
	// cannot know in advance. The address book always wins when present.
	learnedMu sync.Mutex
	learned   map[types.NodeID]*tcpPeer

	inMu    sync.Mutex
	inbound map[net.Conn]struct{}

	inbox    chan Envelope
	closedMu sync.Mutex
	closed   bool
	wg       sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
}

type wireEnvelope struct {
	From types.NodeID
	To   types.NodeID
	Msg  any
}

// NewTCPNet starts a TCP transport for node, listening on peers[node] and
// dialing the other entries on demand.
func NewTCPNet(node types.NodeID, peers map[types.NodeID]string) (*TCPNet, error) {
	addr, ok := peers[node]
	if !ok {
		return nil, fmt.Errorf("network: no listen address for node %v", node)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCPNet{
		node:     node,
		peers:    peers,
		listener: ln,
		conns:    make(map[types.NodeID]*tcpPeer),
		learned:  make(map[types.NodeID]*tcpPeer),
		inbound:  make(map[net.Conn]struct{}),
		inbox:    make(chan Envelope, 65536),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful with ":0").
func (t *TCPNet) Addr() string { return t.listener.Addr().String() }

// Node implements Transport.
func (t *TCPNet) Node() types.NodeID { return t.node }

// Inbox implements Transport.
func (t *TCPNet) Inbox() <-chan Envelope { return t.inbox }

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		if !t.trackConn(conn) {
			conn.Close()
			return
		}
		go t.readLoop(conn)
	}
}

// trackConn registers a connection for shutdown (inbound sweep + WaitGroup)
// and reports whether the transport is still open. The registration happens
// under closedMu so it cannot race Close: either the connection is recorded
// before Close sweeps (and the sweep closes it, unblocking its readLoop), or
// Close already ran and the caller must discard the connection.
func (t *TCPNet) trackConn(conn net.Conn) bool {
	t.closedMu.Lock()
	defer t.closedMu.Unlock()
	if t.closed {
		return false
	}
	t.wg.Add(1)
	t.inMu.Lock()
	t.inbound[conn] = struct{}{}
	t.inMu.Unlock()
	return true
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	var routeFrom types.NodeID
	var routePeer *tcpPeer
	defer func() {
		conn.Close()
		t.inMu.Lock()
		delete(t.inbound, conn)
		t.inMu.Unlock()
		if routePeer != nil {
			// Drop the reply route if this connection still owns it, so a
			// departed client doesn't leak a dead peer entry.
			t.learnedMu.Lock()
			if t.learned[routeFrom] == routePeer {
				delete(t.learned, routeFrom)
			}
			t.learnedMu.Unlock()
		}
	}()
	dec := gob.NewDecoder(conn)
	for {
		var we wireEnvelope
		if err := dec.Decode(&we); err != nil {
			return
		}
		t.closedMu.Lock()
		closed := t.closed
		t.closedMu.Unlock()
		if closed {
			return
		}
		if _, known := t.peers[we.From]; !known && we.From != t.node {
			// A sender with no static address (a client) is reached back
			// over its own connection. The From field is unauthenticated, so
			// a spoofed connection can steal the route; re-asserting it on
			// every message means the legitimate sender reclaims its route
			// with its next (re)transmission — message-level crypto keeps
			// spoofing a liveness nuisance, never a safety issue. One route
			// per connection: the first unknown sender on this conn owns it.
			if routePeer == nil {
				bw := bufio.NewWriterSize(conn, 64*1024)
				routeFrom = we.From
				routePeer = &tcpPeer{conn: conn, bw: bw, enc: gob.NewEncoder(bw)}
			}
			if we.From == routeFrom {
				t.relearnRoute(routeFrom, routePeer)
			}
		}
		select {
		case t.inbox <- Envelope(we):
		default:
			// Shed load rather than stall the connection; protocols
			// retransmit.
		}
	}
}

// relearnRoute points the reply route for from at p unless it already does.
// The map is capped like every other cache in the system; clearing it only
// costs re-learning on the next message from each live client.
func (t *TCPNet) relearnRoute(from types.NodeID, p *tcpPeer) {
	t.learnedMu.Lock()
	if t.learned[from] != p {
		if len(t.learned) >= 1<<14 {
			t.learned = make(map[types.NodeID]*tcpPeer)
		}
		t.learned[from] = p
	}
	t.learnedMu.Unlock()
}

func (t *TCPNet) peerConn(to types.NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	p, ok := t.conns[to]
	if !ok {
		p = &tcpPeer{}
		t.conns[to] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("network: unknown peer %v", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Read the dialed connection too: peers without our listen address in
	// their book (we are a client to them) reply over this connection.
	if !t.trackConn(conn) {
		conn.Close()
		return nil, fmt.Errorf("network: transport closed")
	}
	go t.readLoop(conn)
	p.conn = conn
	// Gob emits several small writes per message (type sections, length
	// prefixes, payload); buffering coalesces them so each Send costs one
	// write(2) instead of several, and Flush keeps latency bounded.
	p.bw = bufio.NewWriterSize(conn, 64*1024)
	p.enc = gob.NewEncoder(p.bw)
	return p, nil
}

// Send implements Transport. Failures (unreachable peer, encoding error)
// drop the message; protocols tolerate loss.
func (t *TCPNet) Send(to types.NodeID, msg any) {
	if to == t.node {
		select {
		case t.inbox <- Envelope{From: t.node, To: to, Msg: msg}:
		default:
		}
		return
	}
	p, err := t.route(to)
	if err != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.enc == nil {
		return
	}
	err = p.enc.Encode(wireEnvelope{From: t.node, To: to, Msg: msg})
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		// Reset the connection so the next Send re-dials (or, for a learned
		// route, waits for the peer to reconnect).
		p.conn.Close()
		p.conn, p.bw, p.enc = nil, nil, nil
		t.learnedMu.Lock()
		if t.learned[to] == p {
			delete(t.learned, to)
		}
		t.learnedMu.Unlock()
	}
}

// route resolves the peer to send to: a dialed connection for nodes in the
// address book, otherwise a learned inbound route.
func (t *TCPNet) route(to types.NodeID) (*tcpPeer, error) {
	if _, known := t.peers[to]; known {
		return t.peerConn(to)
	}
	t.learnedMu.Lock()
	p, ok := t.learned[to]
	t.learnedMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: no route to %v", to)
	}
	return p, nil
}

// Close implements Transport.
func (t *TCPNet) Close() error {
	t.closedMu.Lock()
	if t.closed {
		t.closedMu.Unlock()
		return nil
	}
	t.closed = true
	t.closedMu.Unlock()

	t.listener.Close()
	t.mu.Lock()
	for _, p := range t.conns {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	t.mu.Unlock()
	t.inMu.Lock()
	for conn := range t.inbound {
		conn.Close()
	}
	t.inMu.Unlock()
	t.wg.Wait()
	close(t.inbox)
	return nil
}
