package network

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// ChanNet is an in-process network: every joined node owns a buffered inbox
// channel and sends are direct channel writes. It supports the fault
// injection the paper's experiments need — crashed replicas (Fig 9 single
// backup failure, Fig 10 primary failure), link delays (Fig 11's
// message-delay regime), probabilistic drops, and partitions. The richer,
// schedulable fault rules of the chaos scenarios (per-link duplication and
// reordering, reliable partitions, fault plans, Byzantine mutators) live in
// FaultNet, which wraps a ChanNet.
//
// ChanNet is safe for concurrent use.
type ChanNet struct {
	mu         sync.RWMutex
	inboxes    map[types.NodeID]chan Envelope
	crashed    map[types.NodeID]bool
	cut        map[linkKey]bool
	delay      time.Duration
	jitter     time.Duration
	sendCost   time.Duration
	wireCost   bool
	writeBase  time.Duration
	writePerKB time.Duration
	dropProb   float64
	rng        *rand.Rand
	rngMu      sync.Mutex
	buf        int
	closed     bool
	sent       atomic.Int64
	delivered  atomic.Int64
	dropped    atomic.Int64
}

type linkKey struct{ from, to types.NodeID }

// ChanNetOption configures a ChanNet.
type ChanNetOption func(*ChanNet)

// WithBuffer sets the per-node inbox capacity (default 65536).
func WithBuffer(n int) ChanNetOption { return func(c *ChanNet) { c.buf = n } }

// WithDelay sets a uniform one-way link delay applied to every message, with
// optional ±jitter.
func WithDelay(d, jitter time.Duration) ChanNetOption {
	return func(c *ChanNet) { c.delay, c.jitter = d, jitter }
}

// WithDropProb sets an i.i.d. probability of dropping each message.
func WithDropProb(p float64) ChanNetOption { return func(c *ChanNet) { c.dropProb = p } }

// WithSeed seeds the network's randomness (drops, jitter) for reproducibility.
func WithSeed(seed int64) ChanNetOption {
	return func(c *ChanNet) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithSendCost charges the sender this much CPU time per message (busy
// wait). The in-process transport otherwise passes pointers, which makes
// broadcasts free and hides the per-message serialization and syscall cost
// every real deployment pays — the cost that makes quadratic-communication
// protocols lose at scale (see DESIGN.md §3). A few microseconds per message
// restores that cost structure.
func WithSendCost(d time.Duration) ChanNetOption {
	return func(c *ChanNet) { c.sendCost = d }
}

// WithWireCost replaces the flat per-message charge with a model calibrated
// from real encoded sizes (DESIGN.md §3): each logical message is wire-
// encoded once through the actual codec (wire.EncodedSize — the sender pays
// the true serialization CPU, once per broadcast, exactly like TCPNet's
// marshal-once fan-out), and each destination is then charged
// writeBase + writePerKB × size busy-wait, standing for the write(2) syscall
// and kernel copy a real stream pays per peer. Messages that do not
// implement wire.Message (test doubles) are charged writeBase alone.
func WithWireCost(writeBase, writePerKB time.Duration) ChanNetOption {
	return func(c *ChanNet) {
		c.wireCost = true
		c.writeBase, c.writePerKB = writeBase, writePerKB
	}
}

// NewChanNet creates an empty in-process network.
func NewChanNet(opts ...ChanNetOption) *ChanNet {
	c := &ChanNet{
		inboxes: make(map[types.NodeID]chan Envelope),
		crashed: make(map[types.NodeID]bool),
		cut:     make(map[linkKey]bool),
		buf:     65536,
		rng:     rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Join attaches a node and returns its transport. Joining an address twice
// replaces the previous inbox (the old transport keeps draining but receives
// nothing new).
func (c *ChanNet) Join(node types.NodeID) Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan Envelope, c.buf)
	c.inboxes[node] = ch
	return &chanTransport{net: c, node: node, inbox: ch}
}

// Crash marks a node as crashed: all traffic to and from it is dropped. This
// models the paper's crash failures without stopping the node's goroutines.
func (c *ChanNet) Crash(node types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[node] = true
}

// Recover clears a crash mark.
func (c *ChanNet) Recover(node types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.crashed, node)
}

// CutLink drops all messages from → to (one direction).
func (c *ChanNet) CutLink(from, to types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[linkKey{from, to}] = true
}

// HealLink restores a cut link.
func (c *ChanNet) HealLink(from, to types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cut, linkKey{from, to})
}

// Partition cuts every link between group a and group b, both directions.
func (c *ChanNet) Partition(a, b []types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			c.cut[linkKey{x, y}] = true
			c.cut[linkKey{y, x}] = true
		}
	}
}

// Heal removes all cut links.
func (c *ChanNet) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut = make(map[linkKey]bool)
}

// Stats returns cumulative (sent, delivered, dropped) message counts.
func (c *ChanNet) Stats() (sent, delivered, dropped int64) {
	return c.sent.Load(), c.delivered.Load(), c.dropped.Load()
}

// Close shuts the network down; all inboxes are closed.
func (c *ChanNet) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, ch := range c.inboxes {
		close(ch)
	}
	c.inboxes = make(map[types.NodeID]chan Envelope)
}

func (c *ChanNet) randFloat() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64()
}

// busyWait burns d of the caller's CPU, modelling sender-side work the
// in-process transport would otherwise skip.
func busyWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// writeCost returns the modeled per-destination write cost of a message of
// the given encoded size (wireCost mode).
func (c *ChanNet) writeCost(size int) time.Duration {
	d := c.writeBase
	if size > 0 && c.writePerKB > 0 {
		d += time.Duration(int64(c.writePerKB) * int64(size) / 1024)
	}
	return d
}

// payEncode charges the one-per-broadcast serialization cost and returns
// the encoded size. In wireCost mode the charge is the real marshal itself.
func (c *ChanNet) payEncode(msg any) int {
	if !c.wireCost {
		return 0
	}
	return wire.EncodedSize(msg)
}

func (c *ChanNet) send(from, to types.NodeID, msg any) {
	if c.wireCost {
		busyWait(c.writeCost(c.payEncode(msg)))
	} else {
		// Busy-wait on the sender's goroutine: outgoing messages consume
		// the sender's CPU the way marshalling + write(2) would.
		busyWait(c.sendCost)
	}
	c.dispatch(from, to, msg)
}

// broadcast is the marshal-once fan-out: the serialization cost is paid
// once, the per-destination write cost once per peer.
func (c *ChanNet) broadcast(from types.NodeID, tos []types.NodeID, msg any) {
	if c.wireCost {
		size := c.payEncode(msg)
		for _, to := range tos {
			busyWait(c.writeCost(size))
			c.dispatch(from, to, msg)
		}
		return
	}
	for _, to := range tos {
		busyWait(c.sendCost)
		c.dispatch(from, to, msg)
	}
}

// dispatch runs the fault/routing pipeline for one message (cost already
// paid by the caller).
func (c *ChanNet) dispatch(from, to types.NodeID, msg any) {
	c.sent.Add(1)
	c.mu.RLock()
	if c.closed || c.crashed[from] || c.crashed[to] || c.cut[linkKey{from, to}] {
		c.mu.RUnlock()
		c.dropped.Add(1)
		return
	}
	ch, ok := c.inboxes[to]
	delay, jitter, dropProb := c.delay, c.jitter, c.dropProb
	c.mu.RUnlock()
	if !ok {
		c.dropped.Add(1)
		return
	}
	if dropProb > 0 && c.randFloat() < dropProb {
		c.dropped.Add(1)
		return
	}
	env := Envelope{From: from, To: to, Msg: msg}
	if delay == 0 && jitter == 0 {
		c.deliver(to, ch, env)
		return
	}
	d := delay
	if jitter > 0 {
		d += time.Duration((c.randFloat()*2 - 1) * float64(jitter))
		if d < 0 {
			d = 0
		}
	}
	time.AfterFunc(d, func() {
		// Re-check liveness at delivery time: crashes and cuts that happen
		// while the message is "in flight" drop it, like a real network.
		c.mu.RLock()
		dead := c.crashed[to] || c.cut[linkKey{from, to}]
		c.mu.RUnlock()
		if dead {
			c.dropped.Add(1)
			return
		}
		c.deliver(to, ch, env)
	})
}

func (c *ChanNet) deliver(to types.NodeID, ch chan Envelope, env Envelope) {
	// Hold the read lock across the send: Close and transport Close take the
	// write lock before closing an inbox, so a send can never race a close —
	// the re-checks below see any close that happened since the caller
	// looked the inbox up. The send is non-blocking, so the lock is held
	// only momentarily.
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed || c.inboxes[to] != ch {
		c.dropped.Add(1)
		return
	}
	select {
	case ch <- env:
		c.delivered.Add(1)
	default:
		// Inbox full: shed load like a congested switch. Protocols already
		// tolerate loss via timeouts and retransmission.
		c.dropped.Add(1)
	}
}

type chanTransport struct {
	net   *ChanNet
	node  types.NodeID
	inbox chan Envelope
}

func (t *chanTransport) Node() types.NodeID { return t.node }

func (t *chanTransport) Send(to types.NodeID, msg any) { t.net.send(t.node, to, msg) }

func (t *chanTransport) Broadcast(tos []types.NodeID, msg any) { t.net.broadcast(t.node, tos, msg) }

func (t *chanTransport) Inbox() <-chan Envelope { return t.inbox }

func (t *chanTransport) Close() error {
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	if ch, ok := t.net.inboxes[t.node]; ok && ch == t.inbox {
		delete(t.net.inboxes, t.node)
		close(ch)
	}
	return nil
}
