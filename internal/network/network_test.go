package network

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// ping is the test message; it carries a wire codec so it can cross TCPNet.
type ping struct{ N int }

func (p *ping) WireID() uint16 { return 65000 } // test-only id, far from ids.go

func (p *ping) MarshalTo(buf []byte) []byte { return wire.AppendI64(buf, int64(p.N)) }

func (p *ping) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	p.N = int(r.I64())
	return r.Close()
}

func init() { wire.Register(func() wire.Message { return &ping{} }) }

func TestChanNetDelivery(t *testing.T) {
	net := NewChanNet()
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	a.Send(types.ReplicaNode(1), &ping{N: 7})
	select {
	case env := <-b.Inbox():
		if env.From != types.ReplicaNode(0) || env.Msg.(*ping).N != 7 {
			t.Fatalf("bad envelope %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestChanNetCrashDropsTraffic(t *testing.T) {
	net := NewChanNet()
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	net.Crash(types.ReplicaNode(1))
	a.Send(types.ReplicaNode(1), &ping{})
	select {
	case <-b.Inbox():
		t.Fatal("crashed node received a message")
	case <-time.After(50 * time.Millisecond):
	}
	net.Recover(types.ReplicaNode(1))
	a.Send(types.ReplicaNode(1), &ping{})
	select {
	case <-b.Inbox():
	case <-time.After(time.Second):
		t.Fatal("recovered node did not receive")
	}
}

func TestChanNetCutAndHeal(t *testing.T) {
	net := NewChanNet()
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	net.CutLink(types.ReplicaNode(0), types.ReplicaNode(1))
	a.Send(types.ReplicaNode(1), &ping{})
	// The reverse direction still works.
	b.Send(types.ReplicaNode(0), &ping{})
	select {
	case <-a.Inbox():
	case <-time.After(time.Second):
		t.Fatal("reverse direction should be intact")
	}
	select {
	case <-b.Inbox():
		t.Fatal("cut link delivered")
	case <-time.After(50 * time.Millisecond):
	}
	net.HealLink(types.ReplicaNode(0), types.ReplicaNode(1))
	a.Send(types.ReplicaNode(1), &ping{})
	select {
	case <-b.Inbox():
	case <-time.After(time.Second):
		t.Fatal("healed link did not deliver")
	}
}

func TestChanNetDelay(t *testing.T) {
	net := NewChanNet(WithDelay(50*time.Millisecond, 0))
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	start := time.Now()
	a.Send(types.ReplicaNode(1), &ping{})
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥50ms", elapsed)
	}
}

func TestChanNetDrops(t *testing.T) {
	net := NewChanNet(WithDropProb(1.0), WithSeed(7))
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	for i := 0; i < 10; i++ {
		a.Send(types.ReplicaNode(1), &ping{})
	}
	select {
	case <-b.Inbox():
		t.Fatal("p=1 drop delivered a message")
	case <-time.After(50 * time.Millisecond):
	}
	_, _, dropped := net.Stats()
	if dropped != 10 {
		t.Fatalf("dropped %d, want 10", dropped)
	}
}

func TestTCPNetRoundTrip(t *testing.T) {
	// Bootstrap two nodes on ephemeral ports: bind node 0 first, then node
	// 1 with knowledge of 0's address, then reconstruct 0's peer table.
	n0 := types.ReplicaNode(0)
	n1 := types.ReplicaNode(1)
	t0, err := NewTCPNet(n0, map[types.NodeID]string{n0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCPNet(n1, map[types.NodeID]string{n1: "127.0.0.1:0", n0: t0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	t1.Send(n0, &ping{N: 42})
	select {
	case env := <-t0.Inbox():
		if env.Msg.(*ping).N != 42 {
			t.Fatalf("bad payload %+v", env.Msg)
		}
		if env.From != n1 {
			t.Fatalf("from %v", env.From)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tcp message not delivered")
	}
	// Self-send loops back without touching the wire.
	t0.Send(n0, &ping{N: 1})
	select {
	case env := <-t0.Inbox():
		if env.Msg.(*ping).N != 1 {
			t.Fatal("bad self-send")
		}
	case <-time.After(time.Second):
		t.Fatal("self-send not delivered")
	}
}
