package network

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
)

// faultRun drives a fixed message sequence through a freshly built
// FaultNet-over-ChanNet and returns the decision trace plus the payloads
// delivered to each receiver, in arrival order. Everything runs on the test
// goroutine with no delays, so delivery order is deterministic end to end.
func faultRun(t *testing.T, seed int64, lf LinkFaults, plan *Plan) (trace []TraceEvent, got map[types.NodeID][]string) {
	t.Helper()
	var events []TraceEvent
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base, WithFaultSeed(seed), WithTrace(func(ev TraceEvent) {
		events = append(events, ev)
	}))
	fn.SetDefaultFaults(lf)
	fn.ApplyNow(plan)

	nodes := []types.NodeID{types.ReplicaNode(0), types.ReplicaNode(1), types.ReplicaNode(2)}
	trs := make(map[types.NodeID]Transport, len(nodes))
	for _, n := range nodes {
		trs[n] = fn.Join(n)
	}
	// A fixed round-robin send schedule over every directed pair.
	for i := 0; i < 40; i++ {
		for _, from := range nodes {
			for _, to := range nodes {
				if from == to {
					continue
				}
				trs[from].Send(to, fmt.Sprintf("%v->%v#%d", from, to, i))
			}
		}
	}
	got = make(map[types.NodeID][]string, len(nodes))
	for _, n := range nodes {
		for {
			select {
			case env := <-trs[n].Inbox():
				got[n] = append(got[n], env.Msg.(string))
				continue
			default:
			}
			break
		}
	}
	return events, got
}

// TestFaultNetDeterministicTrace pins the fabric's central contract: the
// same seed and the same plan produce an identical decision trace and an
// identical delivery trace, run after run.
func TestFaultNetDeterministicTrace(t *testing.T) {
	lf := LinkFaults{Drop: 0.2, Duplicate: 0.15, Reorder: 0.25}
	tr1, got1 := faultRun(t, 42, lf, nil)
	tr2, got2 := faultRun(t, 42, lf, nil)
	if len(tr1) == 0 {
		t.Fatal("no trace events recorded")
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("decision traces differ between identical runs:\n%v\nvs\n%v", tr1, tr2)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("delivery traces differ between identical runs")
	}
	// And a different seed actually changes the decisions (the faults above
	// make at least one different draw overwhelmingly likely over 240 sends).
	tr3, _ := faultRun(t, 43, lf, nil)
	if reflect.DeepEqual(tr1, tr3) {
		t.Fatal("different seeds produced identical traces; rng is not seeded per net")
	}
}

// TestFaultNetFaultMix sanity-checks that each omission fault actually fires
// under a mixed rule, and that every non-dropped message arrives.
func TestFaultNetFaultMix(t *testing.T) {
	trace, got := faultRun(t, 7, LinkFaults{Drop: 0.2, Duplicate: 0.2, Reorder: 0.2}, nil)
	counts := map[Verdict]int{}
	for _, ev := range trace {
		counts[ev.Verdict]++
	}
	for _, v := range []Verdict{VerdictDrop, VerdictDuplicate, VerdictRelease} {
		if counts[v] == 0 {
			t.Fatalf("verdict %s never fired under a 20%% rule: %v", v, counts)
		}
	}
	delivered := 0
	for _, msgs := range got {
		delivered += len(msgs)
	}
	want := counts[VerdictDeliver] + counts[VerdictDuplicate] + counts[VerdictRelease]
	if delivered != want {
		t.Fatalf("delivered %d messages, trace promised %d", delivered, want)
	}
}

// TestReliablePartitionNeverDrops is the satellite guarantee: messages sent
// across a reliable (queueing) partition are never lost — they are all
// delivered, in send order, when the partition heals.
func TestReliablePartitionNeverDrops(t *testing.T) {
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base, WithFaultSeed(9))
	a, b := types.ReplicaNode(0), types.ReplicaNode(1)
	ta := fn.Join(a)
	tb := fn.Join(b)

	fn.Partition([]types.NodeID{a}, []types.NodeID{b}, true)
	const n = 50
	for i := 0; i < n; i++ {
		ta.Send(b, i)
	}
	select {
	case env := <-tb.Inbox():
		t.Fatalf("message %v crossed an active partition", env.Msg)
	default:
	}
	if st := fn.Stats(); st.Queued != n || st.Dropped != 0 {
		t.Fatalf("want %d queued and 0 dropped, got %+v", n, st)
	}

	fn.Heal()
	for i := 0; i < n; i++ {
		select {
		case env := <-tb.Inbox():
			if env.Msg.(int) != i {
				t.Fatalf("out-of-order flush: got %v at position %d", env.Msg, i)
			}
		default:
			t.Fatalf("message %d dropped by partition+heal", i)
		}
	}
	if st := fn.Stats(); st.Flushed != n {
		t.Fatalf("want %d flushed, got %+v", n, st)
	}
	// The healed link carries fresh traffic normally.
	ta.Send(b, "after")
	if env := <-tb.Inbox(); env.Msg != "after" {
		t.Fatalf("healed link delivered %v", env.Msg)
	}
}

// TestLossyPartitionDrops checks the contrasting default: a lossy partition
// loses the traffic it blocks, even after healing.
func TestLossyPartitionDrops(t *testing.T) {
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base)
	a, b := types.ReplicaNode(0), types.ReplicaNode(1)
	ta := fn.Join(a)
	tb := fn.Join(b)
	fn.Partition([]types.NodeID{a}, []types.NodeID{b}, false)
	ta.Send(b, "lost")
	fn.Heal()
	select {
	case env := <-tb.Inbox():
		t.Fatalf("lossy partition delivered %v after heal", env.Msg)
	default:
	}
	if st := fn.Stats(); st.Dropped != 1 {
		t.Fatalf("want 1 dropped, got %+v", st)
	}
}

// TestFaultNetMutatorSilence checks the sender-side Byzantine hook: a
// mutator can keep a chosen peer dark while other links stay clean.
func TestFaultNetMutatorSilence(t *testing.T) {
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base)
	a, b, c := types.ReplicaNode(0), types.ReplicaNode(1), types.ReplicaNode(2)
	ta := fn.Join(a)
	tb := fn.Join(b)
	tc := fn.Join(c)
	fn.SetMutator(a, func(to types.NodeID, msg any) (any, bool) {
		return msg, to != b // b stays dark
	})
	ta.Send(b, "x")
	ta.Send(c, "x")
	select {
	case env := <-tb.Inbox():
		t.Fatalf("silenced peer received %v", env.Msg)
	default:
	}
	if env := <-tc.Inbox(); env.Msg != "x" {
		t.Fatalf("unsilenced peer got %v", env.Msg)
	}
}

// TestFaultNetCrashAndRecover checks crash markers drop traffic both ways
// until recovery, and that plans schedule them.
func TestFaultNetCrashAndRecover(t *testing.T) {
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base)
	a, b := types.ReplicaNode(0), types.ReplicaNode(1)
	ta := fn.Join(a)
	tb := fn.Join(b)
	fn.ApplyNow(NewPlan().CrashAt(0, b))
	ta.Send(b, "dead")
	tb.Send(a, "dead")
	select {
	case env := <-tb.Inbox():
		t.Fatalf("crashed node received %v", env.Msg)
	case env := <-ta.Inbox():
		t.Fatalf("crashed node sent %v", env.Msg)
	default:
	}
	fn.ApplyNow(NewPlan().RecoverAt(0, b))
	ta.Send(b, "alive")
	if env := <-tb.Inbox(); env.Msg != "alive" {
		t.Fatalf("recovered node got %v", env.Msg)
	}
}

// TestFaultNetDelay checks delayed delivery arrives (late, but intact).
func TestFaultNetDelay(t *testing.T) {
	base := NewChanNet()
	defer base.Close()
	fn := NewFaultNet(base)
	a, b := types.ReplicaNode(0), types.ReplicaNode(1)
	ta := fn.Join(a)
	tb := fn.Join(b)
	fn.SetLink(a, b, LinkFaults{Delay: 5 * time.Millisecond})
	start := time.Now()
	ta.Send(b, "slow")
	select {
	case env := <-tb.Inbox():
		if env.Msg != "slow" {
			t.Fatalf("got %v", env.Msg)
		}
		if since := time.Since(start); since < 4*time.Millisecond {
			t.Fatalf("delayed message arrived after only %v", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed message never arrived")
	}
}
