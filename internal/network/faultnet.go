package network

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"github.com/poexec/poe/internal/types"
)

// Net is the node-joining surface of a network: harnesses hold a Net, nodes
// hold the Transport Join returns. ChanNet implements it directly; FaultNet
// implements it by wrapping another Net, which is how fault injection is
// composed underneath an unmodified cluster.
type Net interface {
	Join(node types.NodeID) Transport
}

// LinkFaults are the omission-class faults of one directed link (DESIGN.md
// §6): each is applied independently per message, with probabilities drawn
// from the link's own seeded stream so a run is reproducible.
type LinkFaults struct {
	// Drop is the i.i.d. probability that a message is silently lost.
	Drop float64
	// Duplicate is the probability that a message is delivered twice.
	Duplicate float64
	// Reorder is the probability that a message is held back and delivered
	// after the next message on the same link (a pairwise swap — the
	// smallest reordering a FIFO transport can exhibit). On a link that
	// then goes quiet the held message waits for the next send; Close
	// releases any still-held messages, and in between the protocols'
	// retransmission covers the gap, like any delayed datagram.
	Reorder float64
	// Delay (± Jitter, uniform) postpones delivery.
	Delay  time.Duration
	Jitter time.Duration
}

// IsZero reports whether the rule injects no faults at all.
func (lf LinkFaults) IsZero() bool {
	return lf.Drop == 0 && lf.Duplicate == 0 && lf.Reorder == 0 && lf.Delay == 0 && lf.Jitter == 0
}

// Verdict classifies what the fabric did with one message.
type Verdict string

// The verdicts a TraceEvent can carry.
const (
	VerdictDeliver   Verdict = "deliver"
	VerdictDrop      Verdict = "drop"      // lost to LinkFaults.Drop
	VerdictDuplicate Verdict = "duplicate" // delivered, then delivered again
	VerdictHold      Verdict = "hold"      // held for a pairwise reorder
	VerdictRelease   Verdict = "release"   // a held message delivered behind its successor
	VerdictCut       Verdict = "cut"       // lost to a lossy partition / cut link
	VerdictQueue     Verdict = "queue"     // buffered by a reliable partition
	VerdictFlush     Verdict = "flush"     // a queued message delivered at heal
	VerdictCrash     Verdict = "crash"     // endpoint crashed
	VerdictSilence   Verdict = "silence"   // suppressed by a sender mutator
	VerdictMutate    Verdict = "mutate"    // rewritten by a sender mutator
)

// TraceEvent records one fault decision. Index is the per-link send counter,
// so a (From, To, Index, Verdict) sequence is a complete delivery trace:
// with the same seed, rules, and per-link send order, two runs produce
// identical traces (the determinism contract FaultNet tests pin down).
type TraceEvent struct {
	From, To types.NodeID
	Index    uint64
	Verdict  Verdict
	Delay    time.Duration
}

// Mutator is a sender-side Byzantine hook at the network layer: it may
// rewrite or suppress (ok=false) any message the node sends. Because
// protocol messages are authenticated above the transport, a mutator cannot
// forge meaningful protocol state — honest verifiers drop what it corrupts —
// so its chief uses are selective silence (keeping a quorum subset dark) and
// robustness tests that tampered bytes die in the authentication pipeline.
// Effective equivocation, which requires re-signing, lives in
// protocol.AdversarySpec instead (DESIGN.md §6).
type Mutator func(to types.NodeID, msg any) (any, bool)

// FaultStats counts fabric decisions.
type FaultStats struct {
	Sent, Delivered, Dropped, Duplicated, Reordered, Queued, Flushed int64
}

// FaultNet is the composable fault-injection fabric (DESIGN.md §6): it wraps
// another Net (usually a ChanNet) and applies deterministic, seeded fault
// rules to every message on the sender's side — per-link drop, delay,
// duplication, and pairwise reordering, dynamic partitions that either lose
// or queue the traffic they block, crash markers, and per-sender Byzantine
// mutators. Rules can be changed at any time, directly or on a schedule via
// a Plan, so a harness can inject "at t=2s, partition {0,1} from {2,3} for
// one second" into a running cluster.
//
// All methods are safe for concurrent use. Determinism: every directed link
// owns an RNG seeded from (seed, from, to), and fault decisions are drawn in
// per-link send order — so runs with the same seed, the same rule schedule,
// and the same per-link send sequences make identical decisions regardless
// of cross-link goroutine interleaving.
type FaultNet struct {
	inner Net
	seed  int64

	mu       sync.Mutex
	closed   bool
	links    map[linkKey]*linkState
	defaults LinkFaults
	cut      map[linkKey]*cutState
	crashed  map[types.NodeID]bool
	mutators map[types.NodeID]Mutator
	trace    func(TraceEvent)
	stats    FaultStats
}

type linkState struct {
	faults    LinkFaults
	hasFaults bool // SetLink was called; overrides the net-wide default
	rng       *rand.Rand
	idx       uint64
	held      *heldMsg
}

type heldMsg struct {
	to    types.NodeID
	msg   any
	tr    Transport
	delay time.Duration
	idx   uint64
}

type cutState struct {
	reliable bool
	queue    []heldMsg
}

// FaultNetOption configures a FaultNet.
type FaultNetOption func(*FaultNet)

// WithFaultSeed seeds the per-link randomness (default 1).
func WithFaultSeed(seed int64) FaultNetOption {
	return func(f *FaultNet) { f.seed = seed }
}

// WithTrace installs a decision-trace callback. It is invoked synchronously
// under the fabric's lock — it must be fast and must not call back into the
// FaultNet. Intended for determinism tests and debugging.
func WithTrace(fn func(TraceEvent)) FaultNetOption {
	return func(f *FaultNet) { f.trace = fn }
}

// NewFaultNet wraps inner in the fault fabric. A nil inner is allowed when
// the fabric is only used through Wrap (e.g. around a TCP transport).
func NewFaultNet(inner Net, opts ...FaultNetOption) *FaultNet {
	f := &FaultNet{
		inner:    inner,
		seed:     1,
		links:    make(map[linkKey]*linkState),
		cut:      make(map[linkKey]*cutState),
		crashed:  make(map[types.NodeID]bool),
		mutators: make(map[types.NodeID]Mutator),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Join joins the inner network and returns a transport whose sends pass
// through the fabric.
func (f *FaultNet) Join(node types.NodeID) Transport {
	if f.inner == nil {
		panic("network: FaultNet.Join needs an inner Net (use Wrap for bare transports)")
	}
	return f.Wrap(f.inner.Join(node))
}

// Wrap routes an existing transport's sends through the fabric. This is how
// the TCP transport (which has no Join; every process owns exactly one
// transport) gets sender-side fault injection in poeserver.
func (f *FaultNet) Wrap(tr Transport) Transport {
	return &faultTransport{net: f, inner: tr}
}

// SetDefaultFaults applies faults to every link without an explicit SetLink
// rule. Passing the zero LinkFaults clears the default.
func (f *FaultNet) SetDefaultFaults(lf LinkFaults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.defaults = lf
}

// SetLink installs a per-link fault rule (overriding the default for that
// link).
func (f *FaultNet) SetLink(from, to types.NodeID, lf LinkFaults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ls := f.link(from, to)
	ls.faults = lf
	ls.hasFaults = true
}

// ClearLink removes a per-link rule; the link falls back to the default.
func (f *FaultNet) ClearLink(from, to types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ls, ok := f.links[linkKey{from, to}]; ok {
		ls.faults = LinkFaults{}
		ls.hasFaults = false
	}
}

// Crash drops all traffic to and from the node until Recover.
func (f *FaultNet) Crash(node types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[node] = true
}

// Recover clears a crash mark.
func (f *FaultNet) Recover(node types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, node)
}

// CutLink blocks the directed link from → to. With reliable set, blocked
// messages are queued and delivered, in order, when the link heals —
// modelling a partition over a reliable transport (TCP retransmission
// outlives the outage). Without it they are lost, modelling datagram loss.
func (f *FaultNet) CutLink(from, to types.NodeID, reliable bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.cut[linkKey{from, to}]; !ok {
		f.cut[linkKey{from, to}] = &cutState{reliable: reliable}
	}
}

// Partition cuts every link between groups a and b, both directions. With
// reliable set the blocked traffic is queued instead of lost (see CutLink).
// Nodes absent from both groups — clients, typically — are unaffected.
func (f *FaultNet) Partition(a, b []types.NodeID, reliable bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			if _, ok := f.cut[linkKey{x, y}]; !ok {
				f.cut[linkKey{x, y}] = &cutState{reliable: reliable}
			}
			if _, ok := f.cut[linkKey{y, x}]; !ok {
				f.cut[linkKey{y, x}] = &cutState{reliable: reliable}
			}
		}
	}
}

// HealLink restores one directed link, flushing any queued messages in send
// order.
func (f *FaultNet) HealLink(from, to types.NodeID) {
	f.mu.Lock()
	flushes := f.takeCut(linkKey{from, to})
	f.mu.Unlock()
	f.flush(flushes)
}

// Heal removes every cut and partition, flushing all reliable queues (per
// link in send order; across links in deterministic key order).
func (f *FaultNet) Heal() {
	f.mu.Lock()
	keys := make([]linkKey, 0, len(f.cut))
	for k := range f.cut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	var flushes []heldMsg
	for _, k := range keys {
		flushes = append(flushes, f.takeCut(k)...)
	}
	f.mu.Unlock()
	f.flush(flushes)
}

// takeCut removes a cut entry and returns its queued messages. Caller holds
// f.mu.
func (f *FaultNet) takeCut(k linkKey) []heldMsg {
	cs, ok := f.cut[k]
	if !ok {
		return nil
	}
	delete(f.cut, k)
	for range cs.queue {
		f.stats.Flushed++
		f.emit(TraceEvent{From: k.from, To: k.to, Verdict: VerdictFlush})
	}
	return cs.queue
}

// flush delivers heal-released messages outside the lock.
func (f *FaultNet) flush(msgs []heldMsg) {
	for _, h := range msgs {
		f.deliver(h.tr, h.to, h.msg, h.delay)
	}
}

// SetMutator installs (or, with nil, removes) the sender-side Byzantine
// mutator for a node.
func (f *FaultNet) SetMutator(from types.NodeID, m Mutator) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m == nil {
		delete(f.mutators, from)
		return
	}
	f.mutators[from] = m
}

// Stats returns cumulative fabric counters.
func (f *FaultNet) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close stops the fabric: subsequent and in-flight (delayed) sends are
// dropped, and reliable queues are discarded. Reorder-held messages are
// released first (their delivery was already decided and traced as a hold),
// so closing cannot convert a reorder into a silent loss. It does not close
// the inner network — the fabric does not own it.
func (f *FaultNet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	keys := make([]linkKey, 0, len(f.links))
	for k, ls := range f.links {
		if ls.held != nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	var held []heldMsg
	for _, k := range keys {
		ls := f.links[k]
		f.stats.Delivered++
		f.stats.Reordered++
		f.emit(TraceEvent{From: k.from, To: k.to, Index: ls.held.idx, Verdict: VerdictRelease, Delay: ls.held.delay})
		held = append(held, *ls.held)
		ls.held = nil
	}
	f.cut = make(map[linkKey]*cutState)
	f.mu.Unlock()
	// Deliver before marking closed so the releases are not self-dropped;
	// sends racing this window behave as if Close happened a moment later.
	for _, h := range held {
		h.tr.Send(h.to, h.msg)
	}
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

// sameMsg reports whether a mutator returned its input unchanged. Interface
// equality panics on uncomparable dynamic types (a by-value struct holding a
// slice), so messages of such types are conservatively treated as mutated.
func sameMsg(a, b any) bool {
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || ta == nil || !ta.Comparable() {
		return false
	}
	return a == b
}

// link returns (lazily creating) the directed link state. Caller holds f.mu.
func (f *FaultNet) link(from, to types.NodeID) *linkState {
	k := linkKey{from, to}
	ls, ok := f.links[k]
	if !ok {
		// Seed each link independently of map iteration and goroutine
		// interleaving: the stream depends only on (seed, from, to).
		mix := f.seed ^ (int64(from)+1)<<20 ^ (int64(to)+1)<<40 ^ 0x5eed
		ls = &linkState{rng: rand.New(rand.NewSource(mix))}
		f.links[k] = ls
	}
	return ls
}

func (f *FaultNet) emit(ev TraceEvent) {
	if f.trace != nil {
		f.trace(ev)
	}
}

// delivery is one post-decision transport action: what decideLocked chose
// to actually put on the inner transport once the lock is released.
type delivery struct {
	tr    Transport
	to    types.NodeID
	msg   any
	delay time.Duration
	// orig marks a delivery whose message the fabric left untouched — the
	// caller's own msg, not a mutation or duplicate. Broadcast batches orig
	// deliveries of one fan-out into shared inner Broadcasts (immediate
	// ones together, delayed ones grouped by delay), preserving the
	// marshal-once path through the fabric even under WAN emulation.
	orig bool
}

// decideLocked runs the fault pipeline for one message and appends the
// resulting deliveries (main, then duplicate, then reorder-release — the
// order the pre-refactor code delivered in) to ds. The decision order per
// link is fixed — mutate, crash, cut, drop, delay, duplicate, reorder — so
// the consumed randomness (and therefore the whole trace) is a function of
// the rule schedule and the per-link send sequence alone. Caller holds f.mu.
func (f *FaultNet) decideLocked(ds []delivery, tr Transport, from, to types.NodeID, msg any) []delivery {
	f.stats.Sent++
	orig := true

	if mut, ok := f.mutators[from]; ok {
		m2, keep := mut(to, msg)
		if !keep {
			f.emit(TraceEvent{From: from, To: to, Verdict: VerdictSilence})
			return ds
		}
		if !sameMsg(m2, msg) {
			f.emit(TraceEvent{From: from, To: to, Verdict: VerdictMutate})
			msg = m2
			orig = false
		}
	}

	if f.crashed[from] || f.crashed[to] {
		f.emit(TraceEvent{From: from, To: to, Verdict: VerdictCrash})
		return ds
	}

	if cs, ok := f.cut[linkKey{from, to}]; ok {
		if cs.reliable {
			cs.queue = append(cs.queue, heldMsg{to: to, msg: msg, tr: tr})
			f.stats.Queued++
			f.emit(TraceEvent{From: from, To: to, Verdict: VerdictQueue})
		} else {
			f.stats.Dropped++
			f.emit(TraceEvent{From: from, To: to, Verdict: VerdictCut})
		}
		return ds
	}

	ls := f.link(from, to)
	lf := ls.faults
	if !ls.hasFaults {
		lf = f.defaults
	}
	idx := ls.idx
	ls.idx++

	// A message held for reordering is released behind the next message on
	// the link, whatever happens to that message.
	released := ls.held
	ls.held = nil
	releaseDelivery := func() []delivery {
		if released == nil {
			return ds
		}
		f.stats.Delivered++
		f.stats.Reordered++
		f.emit(TraceEvent{From: from, To: to, Index: released.idx, Verdict: VerdictRelease, Delay: released.delay})
		return append(ds, delivery{tr: released.tr, to: released.to, msg: released.msg, delay: released.delay})
	}

	if lf.Drop > 0 && ls.rng.Float64() < lf.Drop {
		f.stats.Dropped++
		f.emit(TraceEvent{From: from, To: to, Index: idx, Verdict: VerdictDrop})
		return releaseDelivery()
	}

	delay := lf.Delay
	if lf.Jitter > 0 {
		delay += time.Duration((ls.rng.Float64()*2 - 1) * float64(lf.Jitter))
		if delay < 0 {
			delay = 0
		}
	}

	dup := lf.Duplicate > 0 && ls.rng.Float64() < lf.Duplicate

	if lf.Reorder > 0 && released == nil && ls.rng.Float64() < lf.Reorder {
		ls.held = &heldMsg{to: to, msg: msg, tr: tr, delay: delay, idx: idx}
		f.emit(TraceEvent{From: from, To: to, Index: idx, Verdict: VerdictHold, Delay: delay})
		return ds
	}

	f.stats.Delivered++
	f.emit(TraceEvent{From: from, To: to, Index: idx, Verdict: VerdictDeliver, Delay: delay})
	ds = append(ds, delivery{tr: tr, to: to, msg: msg, delay: delay, orig: orig})
	if dup {
		f.stats.Duplicated++
		f.emit(TraceEvent{From: from, To: to, Index: idx, Verdict: VerdictDuplicate, Delay: delay})
		ds = append(ds, delivery{tr: tr, to: to, msg: msg, delay: delay})
	}
	return releaseDelivery()
}

// send runs the fault pipeline for one message and dispatches the outcome.
func (f *FaultNet) send(tr Transport, from, to types.NodeID, msg any) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	ds := f.decideLocked(make([]delivery, 0, 3), tr, from, to, msg)
	f.mu.Unlock()
	for _, d := range ds {
		f.deliver(d.tr, d.to, d.msg, d.delay)
	}
}

// sendMany runs the fault pipeline for one message to many destinations.
// Destinations whose message the fabric leaves unmutated forward as shared
// inner Broadcasts — the undelayed ones in one immediate fan-out, delayed
// ones grouped per delay value — so a serializing inner transport still
// marshals once per broadcast even under -fault-delay WAN emulation.
// Mutated messages, duplicates, and reorder releases dispatch singly.
func (f *FaultNet) sendMany(tr Transport, from types.NodeID, tos []types.NodeID, msg any) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	ds := make([]delivery, 0, len(tos)+3)
	for _, to := range tos {
		ds = f.decideLocked(ds, tr, from, to, msg)
	}
	f.mu.Unlock()

	var batch []types.NodeID
	var delayed map[time.Duration][]types.NodeID
	for _, d := range ds {
		switch {
		case d.orig && d.delay <= 0:
			batch = append(batch, d.to)
		case d.orig:
			if delayed == nil {
				delayed = make(map[time.Duration][]types.NodeID)
			}
			delayed[d.delay] = append(delayed[d.delay], d.to)
		}
	}
	if len(batch) > 0 {
		tr.Broadcast(batch, msg)
	}
	for delay, group := range delayed {
		f.deliverMany(tr, group, msg, delay)
	}
	for _, d := range ds {
		if !d.orig {
			f.deliver(d.tr, d.to, d.msg, d.delay)
		}
	}
}

// deliverMany hands a group of same-delay destinations to the inner
// transport as one broadcast, now or after the delay — the fan-out analogue
// of deliver, with the same at-fire-time liveness re-check per destination.
func (f *FaultNet) deliverMany(tr Transport, tos []types.NodeID, msg any, delay time.Duration) {
	if delay <= 0 {
		tr.Broadcast(tos, msg)
		return
	}
	time.AfterFunc(delay, func() {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		live := make([]types.NodeID, 0, len(tos))
		for _, to := range tos {
			if !f.crashed[to] {
				live = append(live, to)
			}
		}
		f.mu.Unlock()
		if len(live) > 0 {
			tr.Broadcast(live, msg)
		}
	})
}

// deliver hands the message to the inner transport, now or after a delay.
func (f *FaultNet) deliver(tr Transport, to types.NodeID, msg any, delay time.Duration) {
	if delay <= 0 {
		tr.Send(to, msg)
		return
	}
	time.AfterFunc(delay, func() {
		f.mu.Lock()
		dead := f.closed || f.crashed[to]
		f.mu.Unlock()
		if dead {
			return
		}
		tr.Send(to, msg)
	})
}

type faultTransport struct {
	net   *FaultNet
	inner Transport
}

func (t *faultTransport) Node() types.NodeID { return t.inner.Node() }

func (t *faultTransport) Send(to types.NodeID, msg any) {
	t.net.send(t.inner, t.inner.Node(), to, msg)
}

func (t *faultTransport) Broadcast(tos []types.NodeID, msg any) {
	t.net.sendMany(t.inner, t.inner.Node(), tos, msg)
}

func (t *faultTransport) Inbox() <-chan Envelope { return t.inner.Inbox() }

func (t *faultTransport) Close() error { return t.inner.Close() }

// --- scheduled fault plans ---

// Plan is a schedule of fault-rule changes: each step fires at a fixed
// offset from the moment Execute (or ApplyNow) is called, so a harness can
// script "at t=2s partition {0,1} from {2,3}; at t=3s heal" and replay it
// identically across runs. Steps are applied in offset order (ties in
// insertion order); the builder methods return the Plan for chaining.
type Plan struct {
	steps []planStep
}

type planStep struct {
	at    time.Duration
	label string
	do    func(*FaultNet)
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Clone returns an independent copy of the plan (nil-safe): appending to
// the copy never mutates the original, so a caller's plan can be extended
// per run.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return NewPlan()
	}
	return &Plan{steps: append([]planStep(nil), p.steps...)}
}

// At schedules an arbitrary rule change.
func (p *Plan) At(at time.Duration, label string, do func(*FaultNet)) *Plan {
	p.steps = append(p.steps, planStep{at: at, label: label, do: do})
	return p
}

// PartitionAt schedules a partition between groups a and b.
func (p *Plan) PartitionAt(at time.Duration, a, b []types.NodeID, reliable bool) *Plan {
	return p.At(at, fmt.Sprintf("partition %v | %v", a, b), func(f *FaultNet) { f.Partition(a, b, reliable) })
}

// HealAt schedules a full heal.
func (p *Plan) HealAt(at time.Duration) *Plan {
	return p.At(at, "heal", func(f *FaultNet) { f.Heal() })
}

// CrashAt schedules a crash marker for a node.
func (p *Plan) CrashAt(at time.Duration, node types.NodeID) *Plan {
	return p.At(at, fmt.Sprintf("crash %v", node), func(f *FaultNet) { f.Crash(node) })
}

// RecoverAt schedules the removal of a crash marker.
func (p *Plan) RecoverAt(at time.Duration, node types.NodeID) *Plan {
	return p.At(at, fmt.Sprintf("recover %v", node), func(f *FaultNet) { f.Recover(node) })
}

// LinkAt schedules a per-link fault rule.
func (p *Plan) LinkAt(at time.Duration, from, to types.NodeID, lf LinkFaults) *Plan {
	return p.At(at, fmt.Sprintf("link %v->%v", from, to), func(f *FaultNet) { f.SetLink(from, to, lf) })
}

// DefaultFaultsAt schedules a change of the net-wide default faults.
func (p *Plan) DefaultFaultsAt(at time.Duration, lf LinkFaults) *Plan {
	return p.At(at, "default faults", func(f *FaultNet) { f.SetDefaultFaults(lf) })
}

// Offsets lists every step's firing offset, in schedule order.
func (p *Plan) Offsets() []time.Duration {
	out := make([]time.Duration, 0, len(p.steps))
	for _, s := range p.sorted() {
		out = append(out, s.at)
	}
	return out
}

// sorted returns the steps in firing order without mutating the plan.
func (p *Plan) sorted() []planStep {
	steps := append([]planStep(nil), p.steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })
	return steps
}

// ApplyNow applies every step immediately, in offset order. Used by
// deterministic tests that control time themselves.
func (f *FaultNet) ApplyNow(p *Plan) {
	if p == nil {
		return
	}
	for _, s := range p.sorted() {
		s.do(f)
	}
}

// Execute runs the plan against the fabric on a background goroutine; step
// offsets are measured from the moment Execute is called. Cancelling the
// context abandons the remaining steps.
func (f *FaultNet) Execute(ctx context.Context, p *Plan) {
	if p == nil || len(p.steps) == 0 {
		return
	}
	steps := p.sorted()
	start := time.Now()
	go func() {
		for _, s := range steps {
			d := time.Until(start.Add(s.at))
			if d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			}
			if ctx.Err() != nil {
				return
			}
			s.do(f)
		}
	}()
}
