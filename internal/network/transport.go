// Package network provides the message transports the consensus protocols
// run over: an in-process channel network with fault injection (delays,
// drops, partitions, crashes) used by tests and benchmarks, and a TCP
// transport used by the cmd/ binaries to run a cluster across processes.
//
// Protocols only see the Transport interface; authenticated communication is
// layered above it by the protocols themselves (crypto package), matching the
// paper's model where the network is unreliable and unauthenticated.
package network

import (
	"encoding/gob"

	"github.com/poexec/poe/internal/types"
)

// Envelope is one routed message.
type Envelope struct {
	From types.NodeID
	To   types.NodeID
	Msg  any
}

// Transport is one node's connection to the network.
type Transport interface {
	// Node returns the address this transport was joined as.
	Node() types.NodeID
	// Send delivers msg to the given node. Send never blocks the caller
	// indefinitely; delivery is best-effort (messages may be dropped or
	// delayed by fault injection or by the wire).
	Send(to types.NodeID, msg any)
	// Inbox is the stream of messages addressed to this node. It is closed
	// when the transport is closed.
	Inbox() <-chan Envelope
	// Close detaches the node from the network.
	Close() error
}

// Broadcast sends msg to the replicas [0, n) via t, excluding self if
// skipSelf is set. It mirrors the paper's "broadcast to all replicas".
func Broadcast(t Transport, n int, msg any, skipSelf bool) {
	self := t.Node()
	for i := 0; i < n; i++ {
		to := types.ReplicaNode(types.ReplicaID(i))
		if skipSelf && to == self {
			continue
		}
		t.Send(to, msg)
	}
}

// Register makes a message type encodable on the TCP transport. In-process
// transports pass values directly and do not need registration.
func Register(v any) { gob.Register(v) }
