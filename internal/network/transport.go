// Package network provides the message transports the consensus protocols
// run over, and the fault-injection fabric the robustness scenarios drive
// them through. Three pieces:
//
//   - ChanNet, the in-process channel network used by tests, benchmarks,
//     and the harness: direct channel writes, an optional per-message
//     send cost (restoring the serialization/syscall cost broadcasts pay
//     in a real deployment — DESIGN.md §3; WithWireCost calibrates it from
//     real wire-codec encoded sizes), and basic built-in faults.
//   - TCPNet, the wire-codec-over-TCP transport the cmd/ binaries use to
//     spread a cluster across processes and machines. Messages travel as
//     length-delimited frames of the hand-written zero-reflection codec
//     (internal/wire); concrete message types must be wire.Register-ed.
//   - FaultNet, the composable chaos fabric (DESIGN.md §6): it wraps any
//     Net (or, via Wrap, any bare Transport, including TCPNet) and applies
//     deterministic seeded fault rules on the sender side — per-link
//     drop/delay/duplicate/reorder, dynamic partitions that lose or queue
//     their traffic, crash markers, per-sender Byzantine mutators — with a
//     Plan API for scheduling rule changes mid-run.
//
// Protocols only see the Transport interface; harnesses compose networks
// through Net. Authenticated communication is layered above the transport
// by the protocols themselves (crypto package), matching the paper's model
// where the network is unreliable and unauthenticated. Two consequences
// shape the fault fabric: a receiving replica hands every inbound envelope
// to its parallel authentication pipeline (protocol.Verifier), so whatever
// the fabric corrupts is verified — and dropped — off the replica's event
// loop at full pipeline parallelism; and network-level tampering can never
// forge protocol state, which is why effective equivocation is injected
// above the transport via protocol.AdversarySpec rather than by a FaultNet
// mutator.
package network

import (
	"github.com/poexec/poe/internal/types"
)

// Envelope is one routed message.
type Envelope struct {
	From types.NodeID
	To   types.NodeID
	Msg  any
	// Owned marks a message the receiver owns exclusively — one freshly
	// decoded from wire bytes (TCPNet), never a pointer shared with the
	// sender or other replicas. The authentication pipeline skips its
	// defensive ingress clone for owned envelopes: digest memoization on
	// them can race nobody.
	Owned bool
}

// Transport is one node's connection to the network.
type Transport interface {
	// Node returns the address this transport was joined as.
	Node() types.NodeID
	// Send delivers msg to the given node. Send never blocks the caller
	// indefinitely; delivery is best-effort (messages may be dropped or
	// delayed by fault injection or by the wire).
	Send(to types.NodeID, msg any)
	// Broadcast delivers msg to every node in tos, encoding the message at
	// most once: a transport that serializes (TCPNet) marshals one frame
	// and writes the same bytes to every peer. Delivery semantics per
	// destination are identical to Send. The transport does not retain tos.
	Broadcast(tos []types.NodeID, msg any)
	// Inbox is the stream of messages addressed to this node. It is closed
	// when the transport is closed.
	Inbox() <-chan Envelope
	// Close detaches the node from the network.
	Close() error
}

// Broadcast sends msg to the replicas [0, n) via t, excluding self if
// skipSelf is set. It mirrors the paper's "broadcast to all replicas",
// funneling into the transport's marshal-once Broadcast path.
func Broadcast(t Transport, n int, msg any, skipSelf bool) {
	self := t.Node()
	tos := make([]types.NodeID, 0, n)
	for i := 0; i < n; i++ {
		to := types.ReplicaNode(types.ReplicaID(i))
		if skipSelf && to == self {
			continue
		}
		tos = append(tos, to)
	}
	t.Broadcast(tos, msg)
}
