package network

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
)

// tcpPair builds two TCPNet nodes that know each other's addresses.
func tcpCluster(t *testing.T, n int) []*TCPNet {
	t.Helper()
	addrs := make(map[types.NodeID]string, n)
	tmp := make([]*TCPNet, n)
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		tn, err := NewTCPNet(node, map[types.NodeID]string{node: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = tn
		addrs[node] = tn.Addr()
	}
	for _, tn := range tmp {
		tn.Close()
	}
	nets := make([]*TCPNet, n)
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		book := make(map[types.NodeID]string, n)
		for k, v := range addrs {
			book[k] = v
		}
		// Rebind our own listener (the probe socket is closed).
		book[node] = addrs[node]
		tn, err := NewTCPNet(node, book)
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = tn
		t.Cleanup(func() { tn.Close() })
	}
	return nets
}

// TestTCPBroadcastMarshalsOnce asserts the marshal-once contract: one
// Broadcast to n−1 peers performs exactly one frame encode, and every peer
// still receives the message.
func TestTCPBroadcastMarshalsOnce(t *testing.T) {
	const n = 5
	nets := tcpCluster(t, n)
	sender := nets[0]
	tos := make([]types.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		tos = append(tos, types.ReplicaNode(types.ReplicaID(i)))
	}
	before := sender.Encodes()
	sender.Broadcast(tos, &ping{N: 99})
	if got := sender.Encodes() - before; got != 1 {
		t.Fatalf("broadcast to %d peers performed %d marshals, want exactly 1", n-1, got)
	}
	for i := 1; i < n; i++ {
		select {
		case env := <-nets[i].Inbox():
			if env.Msg.(*ping).N != 99 {
				t.Fatalf("peer %d got %+v", i, env.Msg)
			}
			if !env.Owned {
				t.Fatalf("peer %d: wire-decoded envelope not marked Owned", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("peer %d never received the broadcast", i)
		}
	}
	// A second broadcast re-encodes (no stale frame reuse).
	sender.Broadcast(tos, &ping{N: 100})
	if got := sender.Encodes() - before; got != 2 {
		t.Fatalf("second broadcast: %d total marshals, want 2", got)
	}
}

// TestTCPClientReconnectReplyDecodes is the regression test for the learned
// reply route: with the gob streams each route carried its own encoder whose
// type dictionary was resent per stream, and a reconnecting client's replies
// depended on per-connection encoder state. The stateless codec frames must
// decode cleanly on a brand-new connection — including the FIRST reply after
// a reconnect.
func TestTCPClientReconnectReplyDecodes(t *testing.T) {
	replica := types.ReplicaNode(0)
	client := types.NthClient(0)
	rn, err := NewTCPNet(replica, map[types.NodeID]string{replica: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	connect := func() *TCPNet {
		cn, err := NewTCPNet(client, map[types.NodeID]string{client: "127.0.0.1:0", replica: rn.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		return cn
	}
	exchange := func(cn *TCPNet, n int) {
		t.Helper()
		cn.Send(replica, &ping{N: n})
		select {
		case env := <-rn.Inbox():
			if env.Msg.(*ping).N != n {
				t.Fatalf("replica got %+v", env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("request never arrived")
		}
		// Reply over the learned route; the client must decode it.
		rn.Send(client, &ping{N: -n})
		select {
		case env := <-cn.Inbox():
			if env.Msg.(*ping).N != -n {
				t.Fatalf("client got %+v", env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("reply never decoded")
		}
	}

	cn := connect()
	exchange(cn, 1)
	cn.Close()

	// Reconnect with a fresh transport: the replica re-learns the route from
	// the first message, and the very first reply on the new stream must
	// decode.
	cn2 := connect()
	defer cn2.Close()
	// The old route may linger until the dead connection is noticed; retry
	// until the fresh route wins (re-asserted on every inbound message).
	deadline := time.Now().Add(5 * time.Second)
	for {
		cn2.Send(replica, &ping{N: 2})
		select {
		case <-rn.Inbox():
		case <-time.After(100 * time.Millisecond):
		}
		rn.Send(client, &ping{N: -2})
		select {
		case env := <-cn2.Inbox():
			if env.Msg.(*ping).N != -2 {
				t.Fatalf("client got %+v", env.Msg)
			}
			return
		case <-time.After(200 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("reconnected client never decoded a reply")
			}
		}
	}
}

// TestFaultNetBroadcastForwards: a clean fabric forwards a broadcast to the
// inner transport as one fan-out; crashed/cut destinations are filtered.
func TestFaultNetBroadcastForwards(t *testing.T) {
	inner := NewChanNet()
	defer inner.Close()
	fn := NewFaultNet(inner)
	a := fn.Join(types.ReplicaNode(0))
	inboxes := make([]Transport, 4)
	for i := 1; i < 4; i++ {
		inboxes[i] = fn.Join(types.ReplicaNode(types.ReplicaID(i)))
	}
	fn.Crash(types.ReplicaNode(3))

	tos := []types.NodeID{types.ReplicaNode(1), types.ReplicaNode(2), types.ReplicaNode(3)}
	a.Broadcast(tos, &ping{N: 5})

	for i := 1; i <= 2; i++ {
		select {
		case env := <-inboxes[i].Inbox():
			if env.Msg.(*ping).N != 5 {
				t.Fatalf("peer %d got %+v", i, env.Msg)
			}
		case <-time.After(time.Second):
			t.Fatalf("peer %d missed the broadcast", i)
		}
	}
	select {
	case <-inboxes[3].Inbox():
		t.Fatal("crashed peer received the broadcast")
	case <-time.After(50 * time.Millisecond):
	}
	st := fn.Stats()
	if st.Sent != 3 || st.Delivered != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultNetBroadcastDeterminism: with per-link faults, a broadcast
// consumes per-link randomness exactly like the equivalent sequence of
// sends, so traces stay reproducible.
func TestFaultNetBroadcastDeterminism(t *testing.T) {
	run := func(useBroadcast bool) []TraceEvent {
		var trace []TraceEvent
		inner := NewChanNet()
		defer inner.Close()
		fn := NewFaultNet(inner, WithFaultSeed(7), WithTrace(func(ev TraceEvent) { trace = append(trace, ev) }))
		fn.SetDefaultFaults(LinkFaults{Drop: 0.3})
		a := fn.Join(types.ReplicaNode(0))
		for i := 1; i < 4; i++ {
			fn.Join(types.ReplicaNode(types.ReplicaID(i)))
		}
		tos := []types.NodeID{types.ReplicaNode(1), types.ReplicaNode(2), types.ReplicaNode(3)}
		for round := 0; round < 5; round++ {
			if useBroadcast {
				a.Broadcast(tos, &ping{N: round})
			} else {
				for _, to := range tos {
					a.Send(to, &ping{N: round})
				}
			}
		}
		return trace
	}
	t1 := run(true)
	t2 := run(false)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

// TestChanNetWireCost: the size-calibrated cost model delivers like the
// plain network and only charges senders CPU.
func TestChanNetWireCost(t *testing.T) {
	net := NewChanNet(WithWireCost(time.Microsecond, 10*time.Microsecond))
	defer net.Close()
	a := net.Join(types.ReplicaNode(0))
	b := net.Join(types.ReplicaNode(1))
	start := time.Now()
	a.Send(types.ReplicaNode(1), &ping{N: 1})
	if elapsed := time.Since(start); elapsed < time.Microsecond {
		t.Fatalf("no send cost charged (%v)", elapsed)
	}
	select {
	case env := <-b.Inbox():
		if env.Msg.(*ping).N != 1 {
			t.Fatalf("got %+v", env.Msg)
		}
	case <-time.After(time.Second):
		t.Fatal("message lost")
	}
}

// TestFaultNetDelayedBroadcastMarshalsOnce: under WAN emulation (a default
// link delay, the poeserver -fault-delay configuration) a broadcast through
// the fabric over TCP must still marshal exactly once — delayed
// destinations are grouped into one delayed inner Broadcast.
func TestFaultNetDelayedBroadcastMarshalsOnce(t *testing.T) {
	const n = 4
	nets := tcpCluster(t, n)
	fn := NewFaultNet(nil)
	fn.SetDefaultFaults(LinkFaults{Delay: 20 * time.Millisecond})
	sender := fn.Wrap(nets[0])

	tos := make([]types.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		tos = append(tos, types.ReplicaNode(types.ReplicaID(i)))
	}
	before := nets[0].Encodes()
	sender.Broadcast(tos, &ping{N: 7})
	for i := 1; i < n; i++ {
		select {
		case env := <-nets[i].Inbox():
			if env.Msg.(*ping).N != 7 {
				t.Fatalf("peer %d got %+v", i, env.Msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("peer %d never received the delayed broadcast", i)
		}
	}
	if got := nets[0].Encodes() - before; got != 1 {
		t.Fatalf("delayed broadcast to %d peers performed %d marshals, want exactly 1", n-1, got)
	}
}
