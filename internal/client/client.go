// Package client implements the client role of the protocols (Fig 3,
// Client-role): sign a transaction, send it to the primary, collect
// identical INFORM messages from a protocol-specific number of distinct
// replicas, and — if no timely response arrives — broadcast the request to
// all replicas so they can forward it to the primary and start their
// failure-detection timers (§II-B).
//
// The quorum rule differs per protocol: PoE clients need nf identical
// replies (the proof-of-execution), PBFT clients need f+1, Zyzzyva clients
// need all n (its fast path), and SBFT clients accept a single reply
// carrying a valid threshold certificate. The rule is configured per client;
// the Zyzzyva-specific commit-certificate fallback lives in the zyzzyva
// package.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// Config parameterizes a client.
type Config struct {
	// ID is the client's identity.
	ID types.ClientID
	// N and F describe the replica system.
	N, F int
	// Scheme is the cluster's authentication scheme; clients sign requests
	// with Ed25519 except under SchemeNone (§IV-C).
	Scheme crypto.Scheme
	// Quorum is the number of identical replies from distinct replicas
	// required to accept a result. Zero defaults to nf = n − f (PoE's
	// proof-of-execution rule).
	Quorum int
	// CertAccept, if non-nil, completes a request immediately when a single
	// reply satisfies it (SBFT's aggregated execute-ack).
	CertAccept func(m *protocol.Inform) bool
	// Timeout is how long to wait for a quorum before broadcasting the
	// request to all replicas (paper: clients use coarse timeouts; §IV-D
	// discusses the consequences).
	Timeout time.Duration
	// VerifyReplyMAC enables checking the MAC tag on replies. Defaults on
	// for all schemes but SchemeNone.
	VerifyReplyMAC bool
	// BroadcastRequests sends every request to all replicas immediately
	// instead of to the presumed primary. Rotating-leader protocols
	// (HotStuff) need this: any replica may become the proposer.
	BroadcastRequests bool
	// MaxRetryInterval caps the retransmission backoff. Retries double the
	// wait starting from Timeout — with ±25% jitter so a fleet of clients
	// that timed out together does not re-broadcast in lockstep — up to
	// this cap. Zero defaults to 8×Timeout.
	MaxRetryInterval time.Duration
}

// Client is a protocol client. One Client may have many Submit calls in
// flight concurrently (the paper's out-of-order experiments depend on deep
// client pipelines); each outstanding request is keyed by its client-local
// sequence number.
type Client struct {
	cfg  Config
	keys *crypto.NodeKeys
	net  network.Transport

	nextSeq  atomic.Uint64
	viewHint atomic.Uint64 // latest view observed in replies

	mu      sync.Mutex
	waiters map[uint64]*waiter

	// OnSpeculative, if set, receives speculative replies (Zyzzyva fast
	// path) instead of the normal tally; used by the zyzzyva client
	// wrapper.
	OnSpeculative func(m *protocol.Inform)

	started sync.Once
	done    chan struct{}
}

type waiter struct {
	ch    chan types.Result
	tally map[protocol.ReplyKey]map[types.ReplicaID]bool
	res   map[protocol.ReplyKey]types.Result
}

// New creates a client over the given transport. The transport's node must
// equal ClientNode(cfg.ID).
func New(cfg Config, ring *crypto.KeyRing, net network.Transport) (*Client, error) {
	if cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("client: need n > 3f, got n=%d f=%d", cfg.N, cfg.F)
	}
	if net.Node() != types.ClientNode(cfg.ID) {
		return nil, fmt.Errorf("client: transport joined as %v, want %v", net.Node(), types.ClientNode(cfg.ID))
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = cfg.N - cfg.F
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.MaxRetryInterval == 0 {
		cfg.MaxRetryInterval = 8 * cfg.Timeout
	}
	if cfg.Scheme != crypto.SchemeNone {
		cfg.VerifyReplyMAC = true
	}
	return &Client{
		cfg:     cfg,
		keys:    ring.NodeKeys(types.ClientNode(cfg.ID)),
		net:     net,
		waiters: make(map[uint64]*waiter),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the reply-processing goroutine. It is idempotent.
func (c *Client) Start(ctx context.Context) {
	c.started.Do(func() {
		go c.readLoop(ctx)
	})
}

// Sign produces the signed request 〈T〉c for a transaction.
func (c *Client) Sign(txn types.Transaction) types.Request {
	req := types.Request{Txn: txn}
	if c.cfg.Scheme != crypto.SchemeNone {
		d := req.Digest()
		req.Sig = c.keys.Sign(d[:])
	}
	return req
}

// NextSeq allocates the next client-local sequence number.
func (c *Client) NextSeq() uint64 { return c.nextSeq.Add(1) }

// ErrClosed is returned when the client's transport closed mid-request.
var ErrClosed = errors.New("client: transport closed")

// Submit signs ops as a transaction and drives it to completion: it returns
// once Quorum identical replies (or a certificate-bearing reply) arrived.
// Submit retransmits on timeout — first to the presumed primary, then by
// broadcasting to all replicas — and only fails when ctx is done.
func (c *Client) Submit(ctx context.Context, ops []types.Op) (types.Result, error) {
	txn := types.Transaction{
		Client:    c.cfg.ID,
		Seq:       c.NextSeq(),
		Ops:       ops,
		TimeNanos: time.Now().UnixNano(),
	}
	return c.SubmitTxn(ctx, txn)
}

// SubmitTxn is Submit for a pre-built transaction (the workload generator
// produces these). The transaction's client must be this client and its
// sequence number must be fresh.
func (c *Client) SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error) {
	if txn.Client != c.cfg.ID {
		return types.Result{}, fmt.Errorf("client: transaction for %d submitted via client %d", txn.Client, c.cfg.ID)
	}
	req := c.Sign(txn)
	w := &waiter{
		ch:    make(chan types.Result, 1),
		tally: make(map[protocol.ReplyKey]map[types.ReplicaID]bool),
		res:   make(map[protocol.ReplyKey]types.Result),
	}
	c.mu.Lock()
	c.waiters[txn.Seq] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, txn.Seq)
		c.mu.Unlock()
	}()

	// First attempt goes to the presumed primary (or everywhere, for
	// rotating-leader protocols); retries broadcast.
	if c.cfg.BroadcastRequests {
		network.Broadcast(c.net, c.cfg.N, &protocol.ClientRequest{Req: req}, false)
	} else {
		c.net.Send(c.primaryNode(), &protocol.ClientRequest{Req: req})
	}
	backoff := c.cfg.Timeout
	timer := time.NewTimer(c.retryWait(backoff, txn.Seq, 0))
	defer timer.Stop()
	for attempt := 1; ; attempt++ {
		select {
		case <-ctx.Done():
			return types.Result{}, ctx.Err()
		case <-c.done:
			return types.Result{}, ErrClosed
		case res := <-w.ch:
			return res, nil
		case <-timer.C:
			// §II-B: on timeout, broadcast so replicas forward to the
			// primary and arm their failure detectors. Backoff doubles up
			// to MaxRetryInterval: during a view change (or while this
			// client is partitioned) constant-rate re-broadcasts from the
			// whole closed-loop fleet only add load to the recovery.
			network.Broadcast(c.net, c.cfg.N, &protocol.ClientRequest{Req: req}, false)
			if backoff < c.cfg.MaxRetryInterval {
				backoff *= 2
				if backoff > c.cfg.MaxRetryInterval {
					backoff = c.cfg.MaxRetryInterval
				}
			}
			timer.Reset(c.retryWait(backoff, txn.Seq, attempt))
		}
	}
}

// retryWait jitters a backoff interval by ±25%. The jitter is derived from
// the (client, txn seq, attempt) tuple rather than a shared RNG so no lock
// is taken on the submit path.
func (c *Client) retryWait(backoff time.Duration, seq uint64, attempt int) time.Duration {
	h := types.DigestConcat(
		[]byte("client-retry"),
		[]byte{byte(c.cfg.ID), byte(seq), byte(seq >> 8), byte(seq >> 16), byte(attempt)},
	)
	// Map 16 digest bits onto [-25%, +25%].
	frac := int64(h[0])<<8 | int64(h[1]) // 0..65535
	delta := backoff / 4 * time.Duration(frac-32768) / 32768
	return backoff + delta
}

func (c *Client) primaryNode() types.NodeID {
	v := types.View(c.viewHint.Load())
	return types.ReplicaNode(v.Primary(c.cfg.N))
}

func (c *Client) readLoop(ctx context.Context) {
	defer close(c.done)
	inbox := c.net.Inbox()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			m, ok := env.Msg.(*protocol.Inform)
			if !ok || !env.From.IsReplica() {
				continue
			}
			c.onInform(env.From.Replica(), m)
		}
	}
}

func (c *Client) onInform(from types.ReplicaID, m *protocol.Inform) {
	if m.From != from {
		return
	}
	key := m.Key()
	if c.cfg.VerifyReplyMAC && !c.keys.CheckMAC(types.ReplicaNode(from), key.Digest[:], m.Tag) {
		return
	}
	// Track the view so retransmissions reach the current primary.
	for {
		cur := c.viewHint.Load()
		if uint64(m.View) <= cur || c.viewHint.CompareAndSwap(cur, uint64(m.View)) {
			break
		}
	}
	if m.Speculative && c.OnSpeculative != nil {
		c.OnSpeculative(m)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.waiters[m.ClientSeq]
	if !ok {
		return
	}
	if c.cfg.CertAccept != nil && c.cfg.CertAccept(m) {
		c.finish(w, types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values})
		return
	}
	votes, ok := w.tally[key]
	if !ok {
		votes = make(map[types.ReplicaID]bool)
		w.tally[key] = votes
		w.res[key] = types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values}
	}
	votes[from] = true
	if len(votes) >= c.cfg.Quorum {
		c.finish(w, w.res[key])
	}
}

func (c *Client) finish(w *waiter, res types.Result) {
	select {
	case w.ch <- res:
	default:
	}
}
