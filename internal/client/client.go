// Package client implements the client role of the protocols (Fig 3,
// Client-role): sign a transaction, send it to the primary, collect
// identical INFORM messages from a protocol-specific number of distinct
// replicas, and — if no timely response arrives — broadcast the request to
// all replicas so they can forward it to the primary and start their
// failure-detection timers (§II-B).
//
// The quorum rule differs per protocol: PoE clients need nf identical
// replies (the proof-of-execution), PBFT clients need f+1, Zyzzyva clients
// need all n (its fast path), and SBFT clients accept a single reply
// carrying a valid threshold certificate. The rule is configured per client;
// the Zyzzyva-specific commit-certificate fallback lives in the zyzzyva
// package.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// Config parameterizes a client.
type Config struct {
	// ID is the client's identity.
	ID types.ClientID
	// N and F describe the replica system.
	N, F int
	// Scheme is the cluster's authentication scheme; clients sign requests
	// with Ed25519 except under SchemeNone (§IV-C).
	Scheme crypto.Scheme
	// Quorum is the number of identical replies from distinct replicas
	// required to accept a result. Zero defaults to nf = n − f (PoE's
	// proof-of-execution rule).
	Quorum int
	// CertAccept, if non-nil, completes a request immediately when a single
	// reply satisfies it (SBFT's aggregated execute-ack).
	CertAccept func(m *protocol.Inform) bool
	// Timeout is how long to wait for a quorum before broadcasting the
	// request to all replicas (paper: clients use coarse timeouts; §IV-D
	// discusses the consequences).
	Timeout time.Duration
	// VerifyReplyMAC enables checking the MAC tag on replies. Defaults on
	// for all schemes but SchemeNone.
	VerifyReplyMAC bool
	// BroadcastRequests sends every request to all replicas immediately
	// instead of to the presumed primary. Rotating-leader protocols
	// (HotStuff) need this: any replica may become the proposer.
	BroadcastRequests bool
	// MaxRetryInterval caps the retransmission backoff. Retries double the
	// wait starting from Timeout — with ±25% jitter so a fleet of clients
	// that timed out together does not re-broadcast in lockstep — up to
	// this cap. Zero defaults to 8×Timeout.
	MaxRetryInterval time.Duration
}

// Client is a protocol client. One Client may have many Submit calls in
// flight concurrently (the paper's out-of-order experiments depend on deep
// client pipelines); each outstanding request is keyed by its client-local
// sequence number.
type Client struct {
	cfg  Config
	keys *crypto.NodeKeys
	net  network.Transport

	nextSeq  atomic.Uint64
	viewHint atomic.Uint64 // latest view observed in replies

	// nextReadSeq numbers tiered reads. Reads run in their own client-local
	// sequence space — they bypass ordering, so threading them through the
	// write sequence would leave gaps the dedup watermark treats as lost
	// writes. readRR spreads speculative reads across backups.
	nextReadSeq atomic.Uint64
	readRR      atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]*waiter

	// readMu guards readWaiters: tiered reads are keyed by request digest
	// (their sequence space can collide with write sequences).
	readMu      sync.Mutex
	readWaiters map[types.Digest]*readWaiter

	// OnSpeculative, if set, receives speculative replies (Zyzzyva fast
	// path) instead of the normal tally; used by the zyzzyva client
	// wrapper.
	OnSpeculative func(m *protocol.Inform)

	// OnRepair, if set, receives the re-answer of a speculative read whose
	// serving prefix was rolled back after the original answer was already
	// delivered (the replica-side repair path). Called from the read loop;
	// must not block.
	OnRepair func(ReadAnswer)

	started sync.Once
	done    chan struct{}
}

type waiter struct {
	digest types.Digest // request digest; informs must match it exactly
	ch     chan types.Result
	tally  map[protocol.ReplyKey]map[types.ReplicaID]bool
	res    map[protocol.ReplyKey]types.Result
}

// ReadAnswer is the outcome of a tiered read: the values plus the provenance
// tag — which replica answered, from which executed prefix — that the harness
// uses for the digest-prefix safety audit.
type ReadAnswer struct {
	Result      types.Result
	Tier        types.Consistency
	From        types.ReplicaID
	ExecSeq     types.SeqNum
	StateDigest types.Digest
	Repaired    bool
	// Fallback marks an answer that came through the ordering pipeline
	// (Inform quorum) rather than a local serve.
	Fallback bool
}

type readWaiter struct {
	ch    chan ReadAnswer
	tally map[protocol.ReplyKey]map[types.ReplicaID]bool
}

// New creates a client over the given transport. The transport's node must
// equal ClientNode(cfg.ID).
func New(cfg Config, ring *crypto.KeyRing, net network.Transport) (*Client, error) {
	if cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("client: need n > 3f, got n=%d f=%d", cfg.N, cfg.F)
	}
	if net.Node() != types.ClientNode(cfg.ID) {
		return nil, fmt.Errorf("client: transport joined as %v, want %v", net.Node(), types.ClientNode(cfg.ID))
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = cfg.N - cfg.F
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.MaxRetryInterval == 0 {
		cfg.MaxRetryInterval = 8 * cfg.Timeout
	}
	if cfg.Scheme != crypto.SchemeNone {
		cfg.VerifyReplyMAC = true
	}
	return &Client{
		cfg:         cfg,
		keys:        ring.NodeKeys(types.ClientNode(cfg.ID)),
		net:         net,
		waiters:     make(map[uint64]*waiter),
		readWaiters: make(map[types.Digest]*readWaiter),
		done:        make(chan struct{}),
	}, nil
}

// Start launches the reply-processing goroutine. It is idempotent.
func (c *Client) Start(ctx context.Context) {
	c.started.Do(func() {
		go c.readLoop(ctx)
	})
}

// Sign produces the signed request 〈T〉c for a transaction.
func (c *Client) Sign(txn types.Transaction) types.Request {
	req := types.Request{Txn: txn}
	if c.cfg.Scheme != crypto.SchemeNone {
		d := req.Digest()
		req.Sig = c.keys.Sign(d[:])
	}
	return req
}

// NextSeq allocates the next client-local sequence number.
func (c *Client) NextSeq() uint64 { return c.nextSeq.Add(1) }

// NextReadSeq allocates the next sequence number in the tiered-read space.
func (c *Client) NextReadSeq() uint64 { return c.nextReadSeq.Add(1) }

// ErrClosed is returned when the client's transport closed mid-request.
var ErrClosed = errors.New("client: transport closed")

// Submit signs ops as a transaction and drives it to completion: it returns
// once Quorum identical replies (or a certificate-bearing reply) arrived.
// Submit retransmits on timeout — first to the presumed primary, then by
// broadcasting to all replicas — and only fails when ctx is done.
func (c *Client) Submit(ctx context.Context, ops []types.Op) (types.Result, error) {
	txn := types.Transaction{
		Client:    c.cfg.ID,
		Seq:       c.NextSeq(),
		Ops:       ops,
		TimeNanos: time.Now().UnixNano(),
	}
	return c.SubmitTxn(ctx, txn)
}

// SubmitTxn is Submit for a pre-built transaction (the workload generator
// produces these). The transaction's client must be this client and its
// sequence number must be fresh.
func (c *Client) SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error) {
	if txn.Client != c.cfg.ID {
		return types.Result{}, fmt.Errorf("client: transaction for %d submitted via client %d", txn.Client, c.cfg.ID)
	}
	req := c.Sign(txn)
	w := &waiter{
		digest: req.Digest(),
		ch:     make(chan types.Result, 1),
		tally:  make(map[protocol.ReplyKey]map[types.ReplicaID]bool),
		res:    make(map[protocol.ReplyKey]types.Result),
	}
	c.mu.Lock()
	c.waiters[txn.Seq] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, txn.Seq)
		c.mu.Unlock()
	}()

	// First attempt goes to the presumed primary (or everywhere, for
	// rotating-leader protocols); retries broadcast.
	if c.cfg.BroadcastRequests {
		network.Broadcast(c.net, c.cfg.N, &protocol.ClientRequest{Req: req}, false)
	} else {
		c.net.Send(c.primaryNode(), &protocol.ClientRequest{Req: req})
	}
	backoff := c.cfg.Timeout
	timer := time.NewTimer(c.retryWait(backoff, txn.Seq, 0))
	defer timer.Stop()
	for attempt := 1; ; attempt++ {
		select {
		case <-ctx.Done():
			return types.Result{}, ctx.Err()
		case <-c.done:
			return types.Result{}, ErrClosed
		case res := <-w.ch:
			return res, nil
		case <-timer.C:
			// §II-B: on timeout, broadcast so replicas forward to the
			// primary and arm their failure detectors. Backoff doubles up
			// to MaxRetryInterval: during a view change (or while this
			// client is partitioned) constant-rate re-broadcasts from the
			// whole closed-loop fleet only add load to the recovery.
			network.Broadcast(c.net, c.cfg.N, &protocol.ClientRequest{Req: req}, false)
			if backoff < c.cfg.MaxRetryInterval {
				backoff *= 2
				if backoff > c.cfg.MaxRetryInterval {
					backoff = c.cfg.MaxRetryInterval
				}
			}
			timer.Reset(c.retryWait(backoff, txn.Seq, attempt))
		}
	}
}

// retryWait jitters a backoff interval by ±25%. The jitter is derived from
// the (client, txn seq, attempt) tuple rather than a shared RNG so no lock
// is taken on the submit path.
func (c *Client) retryWait(backoff time.Duration, seq uint64, attempt int) time.Duration {
	h := types.DigestConcat(
		[]byte("client-retry"),
		[]byte{byte(c.cfg.ID), byte(seq), byte(seq >> 8), byte(seq >> 16), byte(attempt)},
	)
	// Map 16 digest bits onto [-25%, +25%].
	frac := int64(h[0])<<8 | int64(h[1]) // 0..65535
	delta := backoff / 4 * time.Duration(frac-32768) / 32768
	return backoff + delta
}

func (c *Client) primaryNode() types.NodeID {
	v := types.View(c.viewHint.Load())
	return types.ReplicaNode(v.Primary(c.cfg.N))
}

func (c *Client) readLoop(ctx context.Context) {
	defer close(c.done)
	inbox := c.net.Inbox()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			if !env.From.IsReplica() {
				continue
			}
			switch m := env.Msg.(type) {
			case *protocol.Inform:
				c.onInform(env.From.Replica(), m)
			case *protocol.ReadReply:
				c.onReadReply(env.From.Replica(), m)
			}
		}
	}
}

func (c *Client) onInform(from types.ReplicaID, m *protocol.Inform) {
	if m.From != from {
		return
	}
	key := m.Key()
	if c.cfg.VerifyReplyMAC && !c.keys.CheckMAC(types.ReplicaNode(from), key.Digest[:], m.Tag) {
		return
	}
	// Track the view so retransmissions reach the current primary.
	for {
		cur := c.viewHint.Load()
		if uint64(m.View) <= cur || c.viewHint.CompareAndSwap(cur, uint64(m.View)) {
			break
		}
	}
	if m.Speculative && c.OnSpeculative != nil {
		c.OnSpeculative(m)
		return
	}
	c.mu.Lock()
	w, ok := c.waiters[m.ClientSeq]
	// The digest must match: tiered reads run in their own sequence space,
	// so a read's client-seq can collide with a write's. Without the digest
	// check an Inform for a fallback-ordered read could complete the write
	// waiter that happens to share its number.
	if ok && w.digest == m.Digest {
		defer c.mu.Unlock()
		if c.cfg.CertAccept != nil && c.cfg.CertAccept(m) {
			c.finish(w, types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values})
			return
		}
		votes, ok := w.tally[key]
		if !ok {
			votes = make(map[types.ReplicaID]bool)
			w.tally[key] = votes
			w.res[key] = types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values}
		}
		votes[from] = true
		if len(votes) >= c.cfg.Quorum {
			c.finish(w, w.res[key])
		}
		return
	}
	c.mu.Unlock()
	// No write in flight under this (seq, digest): a tiered read that fell
	// back to ordering comes home as ordinary Informs carrying the read
	// request's digest. Tally those against the digest-keyed read waiters.
	c.tallyReadInform(from, m, key)
}

func (c *Client) finish(w *waiter, res types.Result) {
	select {
	case w.ch <- res:
	default:
	}
}

// --- hybrid-consistency read path ---

// ErrNotReadOnly is returned when a tiered read contains write operations.
var ErrNotReadOnly = errors.New("client: tiered read contains non-read ops")

// Read issues a read-only transaction at the requested consistency tier.
//
//   - ConsistencyOrdered runs the read through full consensus like any
//     write — the baseline tier, and the only one with full BFT guarantees.
//   - ConsistencyStrong is served locally by the primary while it holds a
//     quorum-granted read lease; without one it degrades to Ordered.
//   - ConsistencySpeculative is served by any single replica from its
//     executed prefix; the answer may be repaired later if a view change
//     rolls that prefix back (see OnRepair).
func (c *Client) Read(ctx context.Context, ops []types.Op, tier types.Consistency) (ReadAnswer, error) {
	txn := types.Transaction{
		Client:      c.cfg.ID,
		Ops:         ops,
		TimeNanos:   time.Now().UnixNano(),
		Consistency: tier,
	}
	if tier == types.ConsistencyOrdered {
		// Ordered reads are ordinary transactions: write sequence space,
		// normal dedup, Inform quorum.
		txn.Seq = c.NextSeq()
		res, err := c.SubmitTxn(ctx, txn)
		return ReadAnswer{Result: res, Tier: types.ConsistencyOrdered, Fallback: true}, err
	}
	txn.Seq = c.NextReadSeq()
	return c.ReadTxn(ctx, txn)
}

// ReadTxn is Read for a pre-built transaction (the workload generator
// produces these). The transaction must be read-only with a non-Ordered
// consistency tier and a sequence number fresh in the read space.
func (c *Client) ReadTxn(ctx context.Context, txn types.Transaction) (ReadAnswer, error) {
	if txn.Client != c.cfg.ID {
		return ReadAnswer{}, fmt.Errorf("client: transaction for %d submitted via client %d", txn.Client, c.cfg.ID)
	}
	if !txn.ReadOnly() || txn.Consistency == types.ConsistencyOrdered {
		return ReadAnswer{}, ErrNotReadOnly
	}
	req := c.Sign(txn)
	d := req.Digest()
	w := &readWaiter{
		ch:    make(chan ReadAnswer, 1),
		tally: make(map[protocol.ReplyKey]map[types.ReplicaID]bool),
	}
	c.readMu.Lock()
	c.readWaiters[d] = w
	c.readMu.Unlock()
	defer func() {
		c.readMu.Lock()
		delete(c.readWaiters, d)
		c.readMu.Unlock()
	}()

	c.net.Send(c.readTarget(txn.Consistency), &protocol.ReadRequest{Req: req})
	backoff := c.cfg.Timeout
	timer := time.NewTimer(c.retryWait(backoff, txn.Seq, 0))
	defer timer.Stop()
	for attempt := 1; ; attempt++ {
		select {
		case <-ctx.Done():
			return ReadAnswer{}, ctx.Err()
		case <-c.done:
			return ReadAnswer{}, ErrClosed
		case ans := <-w.ch:
			return ans, nil
		case <-timer.C:
			// Retries broadcast: every replica can serve a speculative
			// read, and a strong read reaching a backup is forwarded to
			// the primary (or falls back into ordering), so flooding is
			// the fastest way out of a stale view hint.
			network.Broadcast(c.net, c.cfg.N, &protocol.ReadRequest{Req: req}, false)
			if backoff < c.cfg.MaxRetryInterval {
				backoff *= 2
				if backoff > c.cfg.MaxRetryInterval {
					backoff = c.cfg.MaxRetryInterval
				}
			}
			timer.Reset(c.retryWait(backoff, txn.Seq, attempt))
		}
	}
}

// readTarget picks the first-attempt destination: STRONG reads go to the
// presumed primary (only the lease holder may serve them locally), while
// SPECULATIVE reads round-robin across the backups so the primary's
// ordering pipeline never sees them.
func (c *Client) readTarget(tier types.Consistency) types.NodeID {
	if tier == types.ConsistencyStrong {
		return c.primaryNode()
	}
	v := types.View(c.viewHint.Load())
	primary := v.Primary(c.cfg.N)
	id := types.ReplicaID(c.readRR.Add(1) % uint64(c.cfg.N))
	if id == primary {
		id = types.ReplicaID((uint64(id) + 1) % uint64(c.cfg.N))
	}
	return types.ReplicaNode(id)
}

// onReadReply completes a tiered read answered locally by a replica. A
// single MAC-verified reply suffices: the tiers deliberately trade the
// inform quorum for latency — SPECULATIVE trusts one replica's executed
// prefix (repairable), STRONG trusts the lease holder.
func (c *Client) onReadReply(from types.ReplicaID, m *protocol.ReadReply) {
	if m.From != from {
		return
	}
	if c.cfg.VerifyReplyMAC {
		p := m.Payload()
		if !c.keys.CheckMAC(types.ReplicaNode(from), p[:], m.Tag) {
			return
		}
	}
	for {
		cur := c.viewHint.Load()
		if uint64(m.View) <= cur || c.viewHint.CompareAndSwap(cur, uint64(m.View)) {
			break
		}
	}
	ans := ReadAnswer{
		Result:      types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values},
		Tier:        m.Tier,
		From:        from,
		ExecSeq:     m.ExecSeq,
		StateDigest: m.StateDigest,
		Repaired:    m.Repaired,
	}
	// Repairs are surfaced even when the original call already returned:
	// the first answer was served from a prefix a view change rolled back,
	// and this reply carries the repaired value.
	if m.Repaired && c.OnRepair != nil {
		c.OnRepair(ans)
	}
	c.readMu.Lock()
	w, ok := c.readWaiters[m.Digest]
	c.readMu.Unlock()
	if ok {
		select {
		case w.ch <- ans:
		default:
		}
	}
}

// tallyReadInform completes a tiered read that a replica pushed through the
// ordering pipeline instead of serving locally (a strong read without a
// lease, or any read reaching a protocol without local-serve support). The
// answer arrives as ordinary Informs matched by request digest; the usual
// quorum / certificate acceptance rules apply.
func (c *Client) tallyReadInform(from types.ReplicaID, m *protocol.Inform, key protocol.ReplyKey) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	w, ok := c.readWaiters[m.Digest]
	if !ok {
		return
	}
	ans := ReadAnswer{
		Result:   types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values},
		Tier:     types.ConsistencyOrdered,
		From:     from,
		ExecSeq:  m.Seq,
		Fallback: true,
	}
	if c.cfg.CertAccept != nil && c.cfg.CertAccept(m) {
		select {
		case w.ch <- ans:
		default:
		}
		return
	}
	votes, ok := w.tally[key]
	if !ok {
		votes = make(map[types.ReplicaID]bool)
		w.tally[key] = votes
	}
	votes[from] = true
	if len(votes) >= c.cfg.Quorum {
		select {
		case w.ch <- ans:
		default:
		}
	}
}
