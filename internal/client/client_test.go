package client

import (
	"context"
	"testing"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// fakeReplica answers every client request with identical informs from a
// configurable set of replicas.
type fakeReplica struct {
	id   types.ReplicaID
	ring *crypto.KeyRing
	tr   network.Transport
}

func (f *fakeReplica) run(ctx context.Context, respond bool) {
	keys := f.ring.NodeKeys(types.ReplicaNode(f.id))
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-f.tr.Inbox():
			if !ok {
				return
			}
			cr, isReq := env.Msg.(*protocol.ClientRequest)
			if !isReq || !respond {
				continue
			}
			txn := &cr.Req.Txn
			msg := &protocol.Inform{
				From: f.id, Digest: cr.Req.Digest(),
				Seq: 1, ClientSeq: txn.Seq,
				Values: [][]byte{[]byte("result")},
			}
			key := msg.Key()
			msg.Tag = keys.MAC(types.ClientNode(txn.Client), key.Digest[:])
			f.tr.Send(types.ClientNode(txn.Client), msg)
		}
	}
}

func setup(t *testing.T, responders int) (*Client, *network.ChanNet, context.CancelFunc) {
	t.Helper()
	const n, f = 4, 1
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("client-test"))
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		fr := &fakeReplica{id: types.ReplicaID(i), ring: ring, tr: net.Join(types.ReplicaNode(types.ReplicaID(i)))}
		go fr.run(ctx, i < responders)
	}
	id := types.ClientID(types.ClientIDBase)
	cl, err := New(Config{
		ID: id, N: n, F: f, Scheme: crypto.SchemeMAC,
		Quorum: 3, Timeout: 100 * time.Millisecond,
	}, ring, net.Join(types.ClientNode(id)))
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(ctx)
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return cl, net, cancel
}

func TestQuorumCompletion(t *testing.T) {
	cl, _, _ := setup(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := cl.Submit(ctx, []types.Op{{Kind: types.OpRead, Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Values[0]) != "result" {
		t.Fatalf("values %v", res.Values)
	}
}

func TestInsufficientQuorumTimesOut(t *testing.T) {
	// Only 2 of 4 replicas answer but the quorum is 3: Submit must not
	// complete.
	cl, _, _ := setup(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := cl.Submit(ctx, []types.Op{{Kind: types.OpRead, Key: "k"}}); err == nil {
		t.Fatal("sub-quorum replies must not complete a request")
	}
}

func TestRejectsWrongClientTxn(t *testing.T) {
	cl, _, _ := setup(t, 4)
	ctx := context.Background()
	_, err := cl.SubmitTxn(ctx, types.Transaction{Client: types.ClientIDBase + 99, Seq: 1})
	if err == nil {
		t.Fatal("transaction for another client accepted")
	}
}

func TestBadMACIgnored(t *testing.T) {
	// A forged inform (wrong MAC) must not count toward the quorum. Build a
	// client with quorum 1 and a replica that sends garbage tags.
	const n = 4
	net := network.NewChanNet()
	defer net.Close()
	ring := crypto.NewKeyRing(n, []byte("client-test"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rtr := net.Join(types.ReplicaNode(0))
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case env, ok := <-rtr.Inbox():
				if !ok {
					return
				}
				if cr, isReq := env.Msg.(*protocol.ClientRequest); isReq {
					msg := &protocol.Inform{
						From: 0, Digest: cr.Req.Digest(),
						Seq: 1, ClientSeq: cr.Req.Txn.Seq,
						Values: [][]byte{[]byte("forged")},
						Tag:    []byte("not-a-mac"),
					}
					rtr.Send(types.ClientNode(cr.Req.Txn.Client), msg)
				}
			}
		}
	}()
	id := types.ClientID(types.ClientIDBase)
	cl, err := New(Config{
		ID: id, N: n, F: 1, Scheme: crypto.SchemeMAC,
		Quorum: 1, Timeout: 100 * time.Millisecond,
	}, ring, net.Join(types.ClientNode(id)))
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer scancel()
	if _, err := cl.Submit(sctx, []types.Op{{Kind: types.OpRead, Key: "k"}}); err == nil {
		t.Fatal("forged inform completed a request")
	}
}
