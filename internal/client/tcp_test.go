package client

import (
	"context"
	"testing"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// tcpCluster joins responders fake replicas and one client over real TCP
// sockets. The replicas' address books deliberately contain no entry for the
// client: an INFORM can only reach it over the learned inbound route (the
// reply rides the connection the request arrived on). This is exactly the
// topology of a deployment — servers cannot dial clients — so a regression
// here breaks every process-level run while remaining invisible to ChanNet
// tests, where routing is a map lookup.
func tcpCluster(t *testing.T, n, responders, quorum int) *Client {
	t.Helper()
	ring := crypto.NewKeyRing(n, []byte("client-tcp-test"))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	book := make(map[types.NodeID]string, n+1)
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		tr, err := network.NewTCPNet(node, map[types.NodeID]string{node: "127.0.0.1:0"})
		if err != nil {
			t.Skipf("sandbox blocks TCP listen: %v", err)
		}
		t.Cleanup(func() { tr.Close() })
		book[node] = tr.Addr()
		fr := &fakeReplica{id: types.ReplicaID(i), ring: ring, tr: tr}
		go fr.run(ctx, i < responders)
	}

	id := types.ClientID(types.ClientIDBase)
	clientNode := types.ClientNode(id)
	book[clientNode] = "127.0.0.1:0"
	ctr, err := network.NewTCPNet(clientNode, book)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctr.Close() })
	cl, err := New(Config{
		ID: id, N: n, F: (n - 1) / 3, Scheme: crypto.SchemeMAC,
		Quorum: quorum, Timeout: 100 * time.Millisecond,
	}, ring, ctr)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(ctx)
	return cl
}

// TestTCPLearnedRouteReply: a full-quorum submit completes over TCP with
// replies delivered exclusively via learned routes, and the MAC on each
// INFORM survives the wire encoding (a framing or field-ordering regression
// in the codec shows up here as a quorum that never forms).
func TestTCPLearnedRouteReply(t *testing.T) {
	cl := tcpCluster(t, 4, 4, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := cl.Submit(ctx, []types.Op{{Kind: types.OpRead, Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "result" {
		t.Fatalf("values %v", res.Values)
	}
}

// TestTCPRetryBroadcastReachesBackups: only the presumed primary receives
// the first transmission; the quorum of 3 can only form after the client's
// timeout fires and the retry broadcast opens connections to the remaining
// replicas. Pins the retransmission path end-to-end: timer → broadcast →
// fresh dials → learned-route replies.
func TestTCPRetryBroadcastReachesBackups(t *testing.T) {
	cl := tcpCluster(t, 4, 4, 3)
	// Sending to the primary first is the default; nothing to rig. Instead
	// prove the broadcast path by demanding a quorum that includes replicas
	// the first unicast cannot have reached, under a short first timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, []types.Op{{Kind: types.OpWrite, Key: "k", Value: []byte("v")}}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// TestTCPSubQuorumTimesOut: with only 2 of 4 replicas answering and a quorum
// of 3, Submit must keep retrying until its context expires — identical
// informs from the same replica (each retry triggers a fresh reply) must not
// be double-counted toward the quorum.
func TestTCPSubQuorumTimesOut(t *testing.T) {
	cl := tcpCluster(t, 4, 2, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	if _, err := cl.Submit(ctx, []types.Op{{Kind: types.OpRead, Key: "k"}}); err == nil {
		t.Fatal("sub-quorum replies completed a request")
	}
}

var _ = protocol.Inform{} // keep the import referenced alongside fakeReplica
