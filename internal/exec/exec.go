// Package exec is the deterministic conflict-aware parallel execution
// engine: it takes a window of ordered, already-decided batches, derives
// read/write sets from their operations, partitions the transactions (within
// and across batches) into conflict-free waves, executes each wave on a
// worker pool, and hands back per-batch effects that install into the store
// bit-identically to serial execution.
//
// The determinism contract (docs/DESIGN.md §7): for any window and any
// worker count, the engine's observable output — read results, write effects
// in serial operation order with serial preimages, and per-batch state-digest
// deltas — equals what executing the window serially through store.KV.Apply
// would have produced. Replay determinism is load-bearing: crash recovery
// replays the WAL through this engine, and the chaos/crash/cold-join safety
// assertions compare digest prefixes across replicas that may have executed
// with different worker counts (or serially). The differential test battery
// (differential_test.go, FuzzConflictSchedule, and the serial-vs-parallel
// twins in internal/consensus/protocol) pins the contract.
//
// Scheduling rule: transactions are scanned in serial order; a transaction's
// wave is one past the highest wave among earlier transactions it conflicts
// with (write-write or read-write on any key, in either direction). Within a
// wave no two transactions touch the same key with a write, so they execute
// concurrently against the overlay of all earlier waves and their effects
// merge in any order. Reads never conflict with reads.
package exec

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// Reader is the base-state lookup the engine executes against: the live
// store as of the sequence number just below the window. Values returned
// must be immutable for the duration of the window (store.KV.Preimage
// satisfies this: installed values are never mutated in place).
type Reader interface {
	Preimage(key string) ([]byte, bool)
}

// Task is one decided batch of the window, already deduplicated by the
// executor (the engine never sees requests the dedup history suppressed).
type Task struct {
	Seq   types.SeqNum
	Batch *types.Batch
}

// BatchResult is one batch's precomputed effects, ready for
// store.KV.InstallPrepared: results in request order, write effects in
// serial operation order with serial preimages, and the batch's combined
// state-digest delta.
type BatchResult struct {
	Results []types.Result
	Writes  []store.WriteEffect
	Delta   [32]byte
}

// Stats reports one window's scheduling shape: Txns/Waves is the achieved
// intra-wave parallelism, Waves the conflict depth of the window.
type Stats struct {
	Txns  int
	Waves int
}

// Engine is a reusable scheduler + worker pool. It is safe for use by one
// executor at a time (the protocol executor serializes windows under its
// lock); the zero worker count means GOMAXPROCS.
type Engine struct {
	workers int
}

// New creates an engine with the given worker-pool size (≤ 0 = GOMAXPROCS).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// unit is one schedulable transaction: a request of one batch, or a whole
// zero-payload batch (which touches no keys and schedules into wave 0).
type unit struct {
	task int // index into the window's tasks
	req  int // request index; -1 = the batch's zero-payload unit
	wave int

	res     types.Result
	zeroRes []types.Result // zero-payload batch: one result per carried request
	writes  []store.WriteEffect
	delta   [32]byte
}

// keyWaves tracks, per key, the wave of the last writer and the highest wave
// of any reader seen so far in the serial scan. -1 = not yet accessed.
type keyWaves struct {
	lastWrite int
	lastRead  int
}

// Run executes a window of ordered batches and returns their effects, one
// BatchResult per task, plus the window's scheduling stats. The tasks must
// be consecutive sequence numbers in order; results install in that order.
func (e *Engine) Run(base Reader, tasks []Task) ([]BatchResult, Stats) {
	units, maxWave := schedule(tasks)
	// Bucket units by wave, preserving serial order inside each wave (not
	// required for correctness — intra-wave units are conflict-free — but it
	// keeps scheduling deterministic and debuggable).
	waves := make([][]int, maxWave+1)
	for i := range units {
		w := units[i].wave
		waves[w] = append(waves[w], i)
	}
	overlay := make(map[string][]byte)
	for _, wave := range waves {
		e.parallelFor(len(wave), func(j int) {
			runUnit(&units[wave[j]], tasks, base, overlay)
		})
		// Barrier: merge the wave's writes into the overlay so the next wave
		// reads them. No two units in one wave write the same key, so merge
		// order within the wave is irrelevant; within one unit, later writes
		// to a key overwrite earlier ones, matching serial order.
		for _, ui := range wave {
			for k := range units[ui].writes {
				w := &units[ui].writes[k]
				overlay[w.Key] = w.Val
			}
		}
	}
	// Assemble per-batch effects in serial unit order.
	out := make([]BatchResult, len(tasks))
	for t := range tasks {
		out[t].Results = make([]types.Result, len(tasks[t].Batch.Requests))
	}
	for i := range units {
		u := &units[i]
		br := &out[u.task]
		if u.req < 0 {
			// Zero-payload: one unit produced the whole batch's results.
			copy(br.Results, u.zeroRes)
			continue
		}
		br.Results[u.req] = u.res
		br.Writes = append(br.Writes, u.writes...)
		br.Delta = xor(br.Delta, u.delta)
	}
	return out, Stats{Txns: len(units), Waves: len(waves)}
}

// schedule derives read/write sets and assigns each unit its wave. It is a
// single serial pass in O(total ops); the conflict structure it encodes is
// exactly "no unit shares a key with a conflicting earlier unit in the same
// or a later wave".
func schedule(tasks []Task) ([]unit, int) {
	total := 0
	for t := range tasks {
		if tasks[t].Batch.ZeroPayload {
			total++
		} else {
			total += len(tasks[t].Batch.Requests)
		}
	}
	units := make([]unit, 0, total)
	waves := make(map[string]*keyWaves, 64)
	maxWave := 0
	for t := range tasks {
		b := tasks[t].Batch
		if b.ZeroPayload {
			// Touches no state: always wave 0.
			units = append(units, unit{task: t, req: -1})
			continue
		}
		for r := range b.Requests {
			ops := b.Requests[r].Txn.Ops
			w := 0
			for i := range ops {
				kw, ok := waves[ops[i].Key]
				if !ok {
					continue
				}
				switch ops[i].Kind {
				case types.OpRead:
					// Read after the last conflicting write.
					if kw.lastWrite+1 > w {
						w = kw.lastWrite + 1
					}
				case types.OpWrite:
					// Write after the last write and after every earlier
					// reader (the anti-dependency: they must see the
					// pre-write value).
					if kw.lastWrite+1 > w {
						w = kw.lastWrite + 1
					}
					if kw.lastRead+1 > w {
						w = kw.lastRead + 1
					}
				}
			}
			for i := range ops {
				if ops[i].Kind != types.OpRead && ops[i].Kind != types.OpWrite {
					continue
				}
				kw, ok := waves[ops[i].Key]
				if !ok {
					kw = &keyWaves{lastWrite: -1, lastRead: -1}
					waves[ops[i].Key] = kw
				}
				switch ops[i].Kind {
				case types.OpRead:
					if w > kw.lastRead {
						kw.lastRead = w
					}
				case types.OpWrite:
					kw.lastWrite = w
				}
			}
			if w > maxWave {
				maxWave = w
			}
			units = append(units, unit{task: t, req: r, wave: w})
		}
	}
	return units, maxWave
}

// runUnit executes one unit on a worker: reads resolve through the unit's
// own writes, then the overlay of earlier waves, then the base store —
// exactly the value serial execution would have seen — and writes record
// their preimage and digest delta. The overlay is read-only during a wave.
func runUnit(u *unit, tasks []Task, base Reader, overlay map[string][]byte) {
	b := tasks[u.task].Batch
	if u.req < 0 {
		runZeroPayload(u, b)
		return
	}
	txn := &b.Requests[u.req].Txn
	u.res = types.Result{Client: txn.Client, Seq: txn.Seq}
	lookup := func(key string) ([]byte, bool) {
		for i := len(u.writes) - 1; i >= 0; i-- {
			if u.writes[i].Key == key {
				return u.writes[i].Val, true
			}
		}
		if v, ok := overlay[key]; ok {
			return v, true
		}
		return base.Preimage(key)
	}
	for i := range txn.Ops {
		op := &txn.Ops[i]
		switch op.Kind {
		case types.OpRead:
			if v, ok := lookup(op.Key); ok {
				u.res.Values = append(u.res.Values, append([]byte(nil), v...))
			} else {
				u.res.Values = append(u.res.Values, nil)
			}
		case types.OpWrite:
			prev, existed := lookup(op.Key)
			val := append([]byte(nil), op.Value...)
			u.writes = append(u.writes, store.WriteEffect{
				Key: op.Key, Val: val, Prev: prev, PrevExisted: existed,
			})
			u.delta = xor(u.delta, store.EntryDelta(op.Key, prev, existed, val))
			u.res.Values = append(u.res.Values, nil)
		case types.OpNoop:
			zeroWork(1)
			u.res.Values = append(u.res.Values, nil)
		}
	}
}

// runZeroPayload executes a zero-payload batch: the dummy instructions plus
// one empty result per carried request, matching store.KV.Apply's
// zero-payload branch byte for byte (there are no bytes: Values stay nil).
func runZeroPayload(u *unit, b *types.Batch) {
	zeroWork(b.ZeroCount)
	u.zeroRes = make([]types.Result, len(b.Requests))
	for i := range b.Requests {
		u.zeroRes[i] = types.Result{Client: b.Requests[i].Txn.Client, Seq: b.Requests[i].Txn.Seq}
	}
}

// zeroWork burns the same dummy instructions per operation as the serial
// store does, so zero-payload throughput comparisons stay fair.
func zeroWork(count int) {
	var scratch [8]byte
	for i := 0; i < count; i++ {
		for j := 0; j < store.ZeroWork; j++ {
			binary.BigEndian.PutUint64(scratch[:], uint64(i)^uint64(j))
		}
	}
	_ = scratch
}

// parallelFor runs fn(0..n-1) across the worker pool and waits for all of
// them. With one worker (or one item) it runs inline — the exact same code
// path, so output cannot depend on the pool size.
func (e *Engine) parallelFor(n int, fn func(int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func xor(a, b [32]byte) [32]byte {
	var out [32]byte
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}
