package exec

// FuzzConflictSchedule fuzzes the read/write-set extraction and wave
// scheduler with arbitrary windows decoded from raw bytes. Three properties
// must hold for every input: the scheduler never panics or deadlocks, no
// pair of conflicting transactions shares a wave (and serial order maps to
// wave order), and executing the schedule — at several worker counts —
// produces output bit-identical to serial store.KV.Apply.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// decodeWindow turns fuzz bytes into a bounded window of batches. Every
// byte pattern decodes to something valid; structure bytes are read
// round-robin so small inputs still produce interesting windows.
func decodeWindow(data []byte) []Task {
	if len(data) == 0 {
		return nil
	}
	next := func() byte {
		b := data[0]
		data = append(data[1:], b) // rotate so short inputs keep yielding
		return b
	}
	nBatches := 1 + int(next())%4
	tasks := make([]Task, 0, nBatches)
	cliSeq := make(map[types.ClientID]uint64)
	for d := 0; d < nBatches; d++ {
		seq := types.SeqNum(d + 1)
		if next()%16 == 0 {
			n := 1 + int(next())%3
			b := &types.Batch{ZeroPayload: true, ZeroCount: n}
			for i := 0; i < n; i++ {
				cli := types.ClientID(next() % 4)
				cliSeq[cli]++
				b.Requests = append(b.Requests, types.Request{Txn: types.Transaction{Client: cli, Seq: cliSeq[cli]}})
			}
			tasks = append(tasks, Task{Seq: seq, Batch: b})
			continue
		}
		b := &types.Batch{}
		nTxns := 1 + int(next())%5
		for i := 0; i < nTxns; i++ {
			cli := types.ClientID(next() % 4)
			cliSeq[cli]++
			txn := types.Transaction{Client: cli, Seq: cliSeq[cli]}
			nOps := 1 + int(next())%4
			for j := 0; j < nOps; j++ {
				key := fmt.Sprintf("k%d", next()%8)
				switch next() % 5 {
				case 0:
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpNoop})
				case 1, 2:
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key})
				default:
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key, Value: []byte{next(), next()}})
				}
			}
			b.Requests = append(b.Requests, types.Request{Txn: txn})
		}
		tasks = append(tasks, Task{Seq: seq, Batch: b})
	}
	return tasks
}

// conflicts reports whether two units touch a common key with at least one
// write — recomputed here from first principles, independent of the
// scheduler's bookkeeping.
func conflicts(a, b *unit, tasks []Task) bool {
	if a.req < 0 || b.req < 0 {
		return false // zero-payload units touch no keys
	}
	akeys := map[string]bool{} // key -> wrote
	for _, op := range tasks[a.task].Batch.Requests[a.req].Txn.Ops {
		if op.Kind == types.OpWrite {
			akeys[op.Key] = true
		} else if op.Kind == types.OpRead {
			if !akeys[op.Key] {
				akeys[op.Key] = false
			}
		}
	}
	for _, op := range tasks[b.task].Batch.Requests[b.req].Txn.Ops {
		if op.Kind != types.OpRead && op.Kind != types.OpWrite {
			continue
		}
		wrote, shared := akeys[op.Key]
		if shared && (wrote || op.Kind == types.OpWrite) {
			return true
		}
	}
	return false
}

func FuzzConflictSchedule(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 0, 2, 1, 1, 0, 4, 4, 4, 200, 7, 1, 3, 3})
	f.Add([]byte("conflict-heavy seed with repeated keys k1 k1 k1"))
	f.Add([]byte{0, 16, 2, 1, 1, 255, 255, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks := decodeWindow(data)
		if len(tasks) == 0 {
			return
		}
		units, maxWave := schedule(tasks)
		// Invariant 1: conflicting units never share a wave, and the earlier
		// unit (serial order) sits in the strictly earlier wave.
		for i := range units {
			if units[i].wave < 0 || units[i].wave > maxWave {
				t.Fatalf("unit %d wave %d out of range [0,%d]", i, units[i].wave, maxWave)
			}
			for j := i + 1; j < len(units); j++ {
				if conflicts(&units[i], &units[j], tasks) && units[j].wave <= units[i].wave {
					t.Fatalf("conflicting units %d (wave %d) and %d (wave %d) not ordered",
						i, units[i].wave, j, units[j].wave)
				}
			}
		}
		// Invariant 2: execution output is bit-identical to serial Apply,
		// for every worker count (1 = inline path, >1 = pooled path).
		serial := store.New()
		wantRes := make([][]types.Result, len(tasks))
		wantDigests := make([]types.Digest, len(tasks))
		for i := range tasks {
			res, err := serial.Apply(tasks[i].Seq, tasks[i].Batch)
			if err != nil {
				t.Fatalf("serial apply: %v", err)
			}
			wantRes[i] = res
			wantDigests[i] = serial.StateDigest()
		}
		for _, workers := range []int{1, 4} {
			kv := store.New()
			out, _ := New(workers).Run(kv, tasks)
			for i := range tasks {
				if !reflect.DeepEqual(out[i].Results, wantRes[i]) {
					t.Fatalf("workers=%d seq %d: results diverge", workers, tasks[i].Seq)
				}
				if err := kv.InstallPrepared(tasks[i].Seq, out[i].Writes, out[i].Delta); err != nil {
					t.Fatalf("workers=%d install: %v", workers, err)
				}
				if kv.StateDigest() != wantDigests[i] {
					t.Fatalf("workers=%d seq %d: digest diverged", workers, tasks[i].Seq)
				}
			}
		}
	})
}
