package exec

// White-box tests of the wave scheduler: the conflict rules (write-write,
// read-write, write-read on a shared key; reads never conflict) must map each
// transaction to the first wave where it sees every conflicting predecessor's
// effects — and the engine's Run must honor those waves so reads observe
// exactly the serial-order value.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// txn builds a single-transaction request for client/seq with the given ops.
func txn(client types.ClientID, seq uint64, ops ...types.Op) types.Request {
	return types.Request{Txn: types.Transaction{Client: client, Seq: seq, Ops: ops}}
}

func read(key string) types.Op           { return types.Op{Kind: types.OpRead, Key: key} }
func write(key, val string) types.Op     { return types.Op{Kind: types.OpWrite, Key: key, Value: []byte(val)} }
func batchOf(reqs ...types.Request) *types.Batch { return &types.Batch{Requests: reqs} }

// oneTask wraps requests into a single-batch window at seq 1.
func oneTask(reqs ...types.Request) []Task {
	return []Task{{Seq: 1, Batch: batchOf(reqs...)}}
}

func wavesOf(t *testing.T, tasks []Task) []int {
	t.Helper()
	units, _ := schedule(tasks)
	out := make([]int, len(units))
	for i := range units {
		out[i] = units[i].wave
	}
	return out
}

func TestScheduleDisjointKeysOneWave(t *testing.T) {
	w := wavesOf(t, oneTask(
		txn(1, 1, write("a", "1")),
		txn(2, 1, write("b", "1")),
		txn(3, 1, read("c")),
	))
	for i, wave := range w {
		if wave != 0 {
			t.Fatalf("unit %d got wave %d, want 0 (disjoint keys)", i, wave)
		}
	}
}

func TestScheduleWriteWriteChains(t *testing.T) {
	w := wavesOf(t, oneTask(
		txn(1, 1, write("a", "1")),
		txn(2, 1, write("a", "2")),
		txn(3, 1, write("a", "3")),
	))
	want := []int{0, 1, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("write-write chain waves %v, want %v", w, want)
		}
	}
}

func TestScheduleReadsShareAWave(t *testing.T) {
	// Concurrent readers of one key do not conflict; a writer after them must
	// wait for all of them (anti-dependency), and a reader after the writer
	// must wait for the write.
	w := wavesOf(t, oneTask(
		txn(1, 1, read("a")),
		txn(2, 1, read("a")),
		txn(3, 1, write("a", "x")),
		txn(4, 1, read("a")),
	))
	want := []int{0, 0, 1, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("read/write waves %v, want %v", w, want)
		}
	}
}

func TestScheduleCrossBatchConflict(t *testing.T) {
	// Conflicts span batch boundaries: the window is one ordered stream.
	tasks := []Task{
		{Seq: 1, Batch: batchOf(txn(1, 1, write("k", "1")))},
		{Seq: 2, Batch: batchOf(txn(2, 1, read("k")), txn(3, 1, write("j", "1")))},
	}
	w := wavesOf(t, tasks)
	want := []int{0, 1, 0}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("cross-batch waves %v, want %v", w, want)
		}
	}
}

func TestScheduleZeroPayloadAlwaysWaveZero(t *testing.T) {
	tasks := []Task{
		{Seq: 1, Batch: batchOf(txn(1, 1, write("k", "1")))},
		{Seq: 2, Batch: &types.Batch{ZeroPayload: true, ZeroCount: 3, Requests: []types.Request{txn(9, 1)}}},
	}
	units, maxWave := schedule(tasks)
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2 (zero-payload batch is one unit)", len(units))
	}
	if units[1].wave != 0 || units[1].req != -1 {
		t.Fatalf("zero-payload unit wave=%d req=%d, want wave 0, req -1", units[1].wave, units[1].req)
	}
	if maxWave != 0 {
		t.Fatalf("maxWave %d, want 0", maxWave)
	}
}

func TestScheduleIntraTxnOpsStayTogether(t *testing.T) {
	// A read-modify-write transaction conflicts through both its ops; a
	// successor touching either key lands strictly later.
	w := wavesOf(t, oneTask(
		txn(1, 1, read("a"), write("b", "1")),
		txn(2, 1, read("b")),
		txn(3, 1, write("a", "2")),
	))
	want := []int{0, 1, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("waves %v, want %v", w, want)
		}
	}
}

// TestRunReadsSeeSerialValues pins the overlay semantics: a transaction's
// reads see its own earlier writes first, then earlier waves' writes, then
// base state — never a later transaction's write.
func TestRunReadsSeeSerialValues(t *testing.T) {
	base := store.New()
	base.Load(map[string][]byte{"k": []byte("base")})
	for _, workers := range []int{1, 4} {
		eng := New(workers)
		tasks := oneTask(
			txn(1, 1, read("k"), write("k", "v1"), read("k")),
			txn(2, 1, read("k"), write("k", "v2")),
			txn(3, 1, read("k")),
		)
		results, stats := eng.Run(base, tasks)
		got := results[0].Results
		check := func(r types.Result, i int, want string) {
			t.Helper()
			if string(r.Values[i]) != want {
				t.Fatalf("workers=%d: read got %q, want %q", workers, r.Values[i], want)
			}
		}
		check(got[0], 0, "base") // before own write
		check(got[0], 2, "v1")   // own write visible
		check(got[1], 0, "v1")   // predecessor wave's write
		check(got[2], 0, "v2")
		if stats.Waves != 3 || stats.Txns != 3 {
			t.Fatalf("stats %+v, want 3 txns in 3 waves", stats)
		}
	}
}

// TestRunInstallMatchesApply is the smallest differential check: one window,
// fixed ops, every observable equal between Apply and Run+InstallPrepared.
func TestRunInstallMatchesApply(t *testing.T) {
	mk := func() []Task {
		return []Task{
			{Seq: 1, Batch: batchOf(txn(1, 1, write("a", "1"), read("b")), txn(2, 1, write("b", "2")))},
			{Seq: 2, Batch: batchOf(txn(1, 2, read("a"), write("a", "3")), txn(3, 1, read("b")))},
		}
	}
	serial := store.New()
	var wantResults [][]types.Result
	for _, task := range mk() {
		res, err := serial.Apply(task.Seq, task.Batch)
		if err != nil {
			t.Fatal(err)
		}
		wantResults = append(wantResults, res)
	}

	par := store.New()
	out, _ := New(4).Run(par, mk())
	for i, task := range mk() {
		if err := par.InstallPrepared(task.Seq, out[i].Writes, out[i].Delta); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", out[i].Results) != fmt.Sprintf("%v", wantResults[i]) {
			t.Fatalf("seq %d results diverge:\n parallel %v\n serial   %v", task.Seq, out[i].Results, wantResults[i])
		}
	}
	if par.StateDigest() != serial.StateDigest() {
		t.Fatal("state digest diverged")
	}
	if par.UndoLen() != serial.UndoLen() {
		t.Fatalf("undo log length diverged: parallel %d, serial %d", par.UndoLen(), serial.UndoLen())
	}
}

func TestNewWorkerDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d, want 3", got)
	}
}
