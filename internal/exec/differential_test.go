package exec

// Differential property test: randomized workloads — skewed key
// distributions, read/write/noop mixes, cross-batch conflicts, zero-payload
// batches, mid-stream rollbacks — executed serially through store.KV.Apply
// and in parallel through Engine.Run + InstallPrepared at several worker
// counts must agree on every observable: per-sequence state digests, reply
// results byte for byte, undo-log depth, and the full table contents. The
// seed is logged on every run; export POE_DIFF_SEED to replay a failure.

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

type diffConfig struct {
	name     string
	keys     int     // key-space size
	hotKeys  int     // size of the hot subset
	hotProb  float64 // probability an op targets the hot subset (skew)
	writeFrac float64
	zeroProb float64 // probability a batch is zero-payload
	windows  int
	maxDepth int // batches per window
	maxTxns  int // txns per batch
	maxOps   int // ops per txn
}

var diffConfigs = []diffConfig{
	{name: "low-conflict", keys: 256, hotKeys: 0, hotProb: 0, writeFrac: 0.5, zeroProb: 0.05, windows: 40, maxDepth: 5, maxTxns: 6, maxOps: 3},
	{name: "skewed", keys: 64, hotKeys: 4, hotProb: 0.6, writeFrac: 0.5, zeroProb: 0, windows: 40, maxDepth: 5, maxTxns: 6, maxOps: 3},
	{name: "write-heavy-hotspot", keys: 8, hotKeys: 2, hotProb: 0.8, writeFrac: 0.9, zeroProb: 0, windows: 30, maxDepth: 4, maxTxns: 8, maxOps: 4},
	{name: "read-mostly", keys: 128, hotKeys: 8, hotProb: 0.3, writeFrac: 0.1, zeroProb: 0.1, windows: 30, maxDepth: 6, maxTxns: 6, maxOps: 3},
}

func diffSeed(t *testing.T) int64 {
	if s := os.Getenv("POE_DIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad POE_DIFF_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

func (c diffConfig) key(rng *rand.Rand) string {
	if c.hotKeys > 0 && rng.Float64() < c.hotProb {
		return fmt.Sprintf("key%05d", rng.Intn(c.hotKeys))
	}
	return fmt.Sprintf("key%05d", rng.Intn(c.keys))
}

// genWindow produces one window of decided batches starting at seq first.
func (c diffConfig) genWindow(rng *rand.Rand, first types.SeqNum, nextCliSeq map[types.ClientID]uint64) []Task {
	depth := 1 + rng.Intn(c.maxDepth)
	tasks := make([]Task, depth)
	for d := 0; d < depth; d++ {
		if rng.Float64() < c.zeroProb {
			n := 1 + rng.Intn(4)
			b := &types.Batch{ZeroPayload: true, ZeroCount: n}
			for i := 0; i < n; i++ {
				cli := types.ClientID(rng.Intn(8))
				nextCliSeq[cli]++
				b.Requests = append(b.Requests, types.Request{Txn: types.Transaction{Client: cli, Seq: nextCliSeq[cli]}})
			}
			tasks[d] = Task{Seq: first + types.SeqNum(d), Batch: b}
			continue
		}
		b := &types.Batch{}
		for i, n := 0, 1+rng.Intn(c.maxTxns); i < n; i++ {
			cli := types.ClientID(rng.Intn(8))
			nextCliSeq[cli]++
			txn := types.Transaction{Client: cli, Seq: nextCliSeq[cli]}
			for j, m := 0, 1+rng.Intn(c.maxOps); j < m; j++ {
				key := c.key(rng)
				switch r := rng.Float64(); {
				case r < 0.05:
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpNoop})
				case r < 0.05+c.writeFrac:
					val := make([]byte, 1+rng.Intn(16))
					rng.Read(val)
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key, Value: val})
				default:
					txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key})
				}
			}
			b.Requests = append(b.Requests, types.Request{Txn: txn})
		}
		tasks[d] = Task{Seq: first + types.SeqNum(d), Batch: b}
	}
	return tasks
}

func (c diffConfig) dumpKeys(kv *store.KV) map[string]string {
	out := make(map[string]string)
	for i := 0; i < c.keys; i++ {
		k := fmt.Sprintf("key%05d", i)
		if v, ok := kv.Get(k); ok {
			out[k] = string(v)
		}
	}
	return out
}

// TestDifferentialSerialVsParallel is the battery's core property test.
func TestDifferentialSerialVsParallel(t *testing.T) {
	seed := diffSeed(t)
	t.Logf("differential seed=%d (replay with POE_DIFF_SEED=%d)", seed, seed)
	workerCounts := []int{1, 2, 4, 8}
	for _, cfg := range diffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			serial := store.New()
			engines := make([]*Engine, len(workerCounts))
			parallel := make([]*store.KV, len(workerCounts))
			for i, w := range workerCounts {
				engines[i] = New(w)
				parallel[i] = store.New()
			}
			nextCliSeq := make(map[types.ClientID]uint64)
			for win := 0; win < cfg.windows; win++ {
				first := serial.LastApplied() + 1
				tasks := cfg.genWindow(rng, first, nextCliSeq)

				serialRes := make([][]types.Result, len(tasks))
				serialDigests := make([]types.Digest, len(tasks))
				for i := range tasks {
					res, err := serial.Apply(tasks[i].Seq, tasks[i].Batch)
					if err != nil {
						t.Fatalf("serial apply seq %d: %v", tasks[i].Seq, err)
					}
					serialRes[i] = res
					serialDigests[i] = serial.StateDigest()
				}

				for wi, eng := range engines {
					kv := parallel[wi]
					out, stats := eng.Run(kv, tasks)
					if stats.Txns == 0 || stats.Waves == 0 {
						t.Fatalf("workers=%d window %d: empty stats %+v", eng.Workers(), win, stats)
					}
					for i := range tasks {
						if !reflect.DeepEqual(out[i].Results, serialRes[i]) {
							t.Fatalf("workers=%d window %d seq %d: results diverge\n parallel %v\n serial   %v",
								eng.Workers(), win, tasks[i].Seq, out[i].Results, serialRes[i])
						}
						if err := kv.InstallPrepared(tasks[i].Seq, out[i].Writes, out[i].Delta); err != nil {
							t.Fatalf("workers=%d install seq %d: %v", eng.Workers(), tasks[i].Seq, err)
						}
						if kv.StateDigest() != serialDigests[i] {
							t.Fatalf("workers=%d window %d: state digest diverged at seq %d", eng.Workers(), win, tasks[i].Seq)
						}
					}
					if kv.UndoLen() != serial.UndoLen() {
						t.Fatalf("workers=%d window %d: undo depth %d, serial %d", eng.Workers(), win, kv.UndoLen(), serial.UndoLen())
					}
				}

				// Every few windows, speculatively roll back a suffix on all
				// twins: the parallel-installed undo log must rewind to the
				// identical state, digest and table contents both.
				if win%3 == 2 && serial.LastApplied() > first {
					toSeq := first + types.SeqNum(rng.Intn(int(serial.LastApplied()-first)))
					if err := serial.Rollback(toSeq); err != nil {
						t.Fatalf("serial rollback to %d: %v", toSeq, err)
					}
					want := serial.StateDigest()
					wantKeys := cfg.dumpKeys(serial)
					for wi := range parallel {
						if err := parallel[wi].Rollback(toSeq); err != nil {
							t.Fatalf("workers=%d rollback to %d: %v", engines[wi].Workers(), toSeq, err)
						}
						if parallel[wi].StateDigest() != want {
							t.Fatalf("workers=%d: digest diverged after rollback to %d", engines[wi].Workers(), toSeq)
						}
						if got := cfg.dumpKeys(parallel[wi]); !reflect.DeepEqual(got, wantKeys) {
							t.Fatalf("workers=%d: table diverged after rollback to %d", engines[wi].Workers(), toSeq)
						}
					}
				}
			}
			// Final full-table comparison.
			want := cfg.dumpKeys(serial)
			for wi := range parallel {
				if got := cfg.dumpKeys(parallel[wi]); !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: final table diverged", engines[wi].Workers())
				}
			}
		})
	}
}
