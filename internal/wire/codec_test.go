package wire_test

// Cross-package codec conformance: every registered message type must
// survive encode → decode → encode byte-identically (the canonical-form
// contract the digest-from-encoding optimization relies on), including
// zero values and oversized edge cases, and the decoder must never panic on
// arbitrary bytes (FuzzWireDecode).

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/poexec/poe/internal/consensus/hotstuff"
	"github.com/poexec/poe/internal/consensus/pbft"
	"github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/consensus/sbft"
	"github.com/poexec/poe/internal/consensus/zyzzyva"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

func sampleRequest(i int) types.Request {
	return types.Request{
		Txn: types.Transaction{
			Client:    types.ClientIDBase + types.ClientID(i),
			Seq:       uint64(i),
			TimeNanos: int64(1000 * i),
			Ops: []types.Op{
				{Kind: types.OpWrite, Key: fmt.Sprintf("key-%d", i), Value: []byte("value")},
				{Kind: types.OpRead, Key: "other"},
				{Kind: types.OpNoop},
			},
		},
		Sig: []byte{byte(i), 2, 3},
	}
}

func sampleRead(i int) types.Request {
	return types.Request{
		Txn: types.Transaction{
			Client:      types.ClientIDBase + types.ClientID(i),
			Seq:         uint64(i),
			TimeNanos:   int64(1000 * i),
			Consistency: types.ConsistencySpeculative,
			Ops: []types.Op{
				{Kind: types.OpRead, Key: fmt.Sprintf("key-%d", i)},
				{Kind: types.OpRead, Key: "other"},
			},
		},
		Sig: []byte{byte(i), 8, 9},
	}
}

func sampleBatch(n int) types.Batch {
	b := types.Batch{}
	for i := 0; i < n; i++ {
		b.Requests = append(b.Requests, sampleRequest(i))
	}
	return b
}

func sampleRecord(seq int) types.ExecRecord {
	return types.ExecRecord{
		Seq:    types.SeqNum(seq),
		View:   2,
		Digest: types.DigestBytes([]byte("batch")),
		Proof:  []byte("certificate"),
		Batch:  sampleBatch(2),
	}
}

func share(i int) crypto.Share {
	return crypto.Share{Signer: types.ReplicaID(i), Data: []byte{9, 9, byte(i)}}
}

// samples returns, per message type, a zero value and a populated value.
// maxSize adds a deliberately large case for the batch-carrying types.
func samples() []wire.Message {
	big := sampleBatch(256)
	big.Requests[0].Txn.Ops[0].Value = bytes.Repeat([]byte("x"), 1<<16)
	auth := [][]byte{[]byte("sig-a"), nil, []byte("sig-b")}
	return []wire.Message{
		// shared
		&protocol.ClientRequest{}, &protocol.ClientRequest{Req: sampleRequest(1)},
		&protocol.ForwardRequest{}, &protocol.ForwardRequest{Req: sampleRequest(2)},
		&protocol.Inform{}, &protocol.Inform{
			From: 3, Digest: types.DigestBytes([]byte("d")), View: 1, Seq: 9,
			ClientSeq: 4, Values: [][]byte{[]byte("v"), nil}, Tag: []byte("mac"),
			Speculative: true, OrderProof: types.DigestBytes([]byte("h")),
			Share: share(3), Cert: []byte("cert"),
		},
		&protocol.Fetch{}, &protocol.Fetch{From: 1, After: 7, Max: 64},
		&protocol.FetchReply{}, &protocol.FetchReply{From: 2, Head: 11, Records: []types.ExecRecord{sampleRecord(1), sampleRecord(2)}},
		&protocol.Checkpoint{}, &protocol.Checkpoint{From: 1, Seq: 100, State: types.DigestBytes([]byte("s")), Ledger: types.DigestBytes([]byte("l")), Sig: []byte("sig")},
		&protocol.SnapshotRequest{}, &protocol.SnapshotRequest{From: 3, Have: 128},
		&protocol.SnapshotOffer{}, &protocol.SnapshotOffer{
			From: 2, Seq: 96, Size: 4096, Chunks: 2,
			Cert: []protocol.Checkpoint{
				{From: 0, Seq: 96, State: types.DigestBytes([]byte("s")), Ledger: types.DigestBytes([]byte("l")), Sig: []byte("sig0")},
				{From: 2, Seq: 96, State: types.DigestBytes([]byte("s")), Ledger: types.DigestBytes([]byte("l")), Sig: []byte("sig2")},
			},
		},
		&protocol.SnapshotChunk{}, &protocol.SnapshotChunk{From: 2, Seq: 96, Index: 1, Data: bytes.Repeat([]byte("z"), 1024)},
		&protocol.ReadRequest{}, &protocol.ReadRequest{Req: sampleRead(3)},
		&protocol.ReadReply{}, &protocol.ReadReply{
			From: 1, Digest: types.DigestBytes([]byte("r")), ClientSeq: 6,
			Values: [][]byte{[]byte("v"), nil}, ExecSeq: 42,
			StateDigest: types.DigestBytes([]byte("s")), View: 2,
			Tier: types.ConsistencySpeculative, Repaired: true, Tag: []byte("mac"),
		},
		&protocol.LeaseGrant{}, &protocol.LeaseGrant{From: 2, View: 3, Seq: 128, DurationNanos: 5e7, Sig: []byte("sig")},
		&types.ExecRecord{}, func() wire.Message { r := sampleRecord(5); return &r }(),
		// poe
		&poe.Propose{}, &poe.Propose{View: 1, Seq: 2, Batch: sampleBatch(3), Auth: auth},
		&poe.Propose{View: 1, Seq: 2, Batch: big, Auth: auth},
		&poe.Support{}, &poe.Support{View: 1, Seq: 2, Share: share(1)},
		&poe.Certify{}, &poe.Certify{View: 1, Seq: 2, Digest: types.DigestBytes([]byte("h")), Cert: []byte("c")},
		&poe.VCRequest{}, &poe.VCRequest{From: 1, View: 2, StableSeq: 3, Executed: []types.ExecRecord{sampleRecord(4)}, Sig: []byte("s")},
		&poe.NVPropose{}, &poe.NVPropose{NewView: 3, Requests: []poe.VCRequest{{From: 1, View: 2, Executed: []types.ExecRecord{sampleRecord(4)}}}},
		// pbft
		&pbft.PrePrepare{}, &pbft.PrePrepare{View: 1, Seq: 2, Batch: sampleBatch(3), Auth: auth},
		&pbft.Prepare{}, &pbft.Prepare{View: 1, Seq: 2, Share: share(2)},
		&pbft.Commit{}, &pbft.Commit{View: 1, Seq: 2, Share: share(3)},
		&pbft.VCRequest{}, &pbft.VCRequest{From: 1, View: 2, StableSeq: 3, Prepared: []pbft.PreparedEntry{{Seq: 4, View: 2, Digest: types.DigestBytes([]byte("d")), Proof: []byte("p"), Batch: sampleBatch(1)}}, Sig: []byte("s")},
		&pbft.NVPropose{}, &pbft.NVPropose{NewView: 3, Requests: []pbft.VCRequest{{From: 0, View: 2}}},
		// sbft
		&sbft.PrePrepare{}, &sbft.PrePrepare{View: 1, Seq: 2, Batch: sampleBatch(3), Auth: auth},
		&sbft.SignShare{}, &sbft.SignShare{View: 1, Seq: 2, Share: share(1)},
		&sbft.Prepare2{}, &sbft.Prepare2{View: 1, Seq: 2, Digest: types.DigestBytes([]byte("h")), Cert: []byte("c")},
		&sbft.Share2{}, &sbft.Share2{View: 1, Seq: 2, Share: share(2)},
		&sbft.FullCommitProof{}, &sbft.FullCommitProof{View: 1, Seq: 2, Digest: types.DigestBytes([]byte("h")), Cert: []byte("c")},
		&sbft.SignState{}, &sbft.SignState{View: 1, Seq: 2, Share: share(3)},
		&sbft.ExecuteAck{}, &sbft.ExecuteAck{View: 1, Seq: 2, Head: types.DigestBytes([]byte("h")), Cert: []byte("c")},
		&sbft.VCRequest{}, &sbft.VCRequest{From: 1, View: 2, StableSeq: 3, Executed: []types.ExecRecord{sampleRecord(4)}, Sig: []byte("s")},
		&sbft.NVPropose{}, &sbft.NVPropose{NewView: 3, Requests: []sbft.VCRequest{{From: 1}}},
		// zyzzyva
		&zyzzyva.OrderReq{}, &zyzzyva.OrderReq{View: 1, Seq: 2, History: types.DigestBytes([]byte("h")), Batch: sampleBatch(3), Auth: auth},
		&zyzzyva.CommitReq{}, &zyzzyva.CommitReq{Client: types.ClientIDBase, ClientSeq: 7, Seq: 9, History: types.DigestBytes([]byte("h")), Shares: []crypto.Share{share(0), share(1), share(2)}},
		&zyzzyva.LocalCommit{}, &zyzzyva.LocalCommit{From: 1, ClientSeq: 7, Seq: 9, Tag: []byte("t")},
		&zyzzyva.VCRequest{}, &zyzzyva.VCRequest{From: 1, View: 2, StableSeq: 3, Executed: []types.ExecRecord{sampleRecord(4)}, Sig: []byte("s")},
		&zyzzyva.NVPropose{}, &zyzzyva.NVPropose{NewView: 3, Requests: []zyzzyva.VCRequest{{From: 1}}},
		// hotstuff
		&hotstuff.Proposal{}, &hotstuff.Proposal{Node: hotstuff.Node{Round: 4, ParentHash: types.DigestBytes([]byte("p")), Batch: sampleBatch(2), Justify: hotstuff.QC{Round: 3, Node: types.DigestBytes([]byte("n")), Cert: []byte("c")}}, Auth: auth},
		&hotstuff.Vote{}, &hotstuff.Vote{Round: 4, Node: types.DigestBytes([]byte("n")), Share: share(1)},
		&hotstuff.NewView{}, &hotstuff.NewView{From: 2, Round: 5, High: hotstuff.QC{Round: 4, Node: types.DigestBytes([]byte("n")), Cert: []byte("c")}},
		&hotstuff.FetchNodes{}, &hotstuff.FetchNodes{From: 1, Hash: types.DigestBytes([]byte("n")), Max: 32},
		&hotstuff.NodeBundle{}, &hotstuff.NodeBundle{Nodes: []hotstuff.Node{{Round: 1, Batch: sampleBatch(1)}, {Round: 2}}},
	}
}

// TestCanonicalRoundTrip: encode → decode (via the registry) → encode must
// be byte-identical for every message type, zero and populated.
func TestCanonicalRoundTrip(t *testing.T) {
	seen := map[uint16]bool{}
	for i, msg := range samples() {
		enc1 := msg.MarshalTo(nil)
		seen[msg.WireID()] = true
		decoded, err := wire.Unmarshal(msg.WireID(), enc1)
		if err != nil {
			t.Fatalf("sample %d (%T): decode: %v", i, msg, err)
		}
		enc2 := decoded.MarshalTo(nil)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("sample %d (%T): re-encode differs (%d vs %d bytes)", i, msg, len(enc1), len(enc2))
		}
	}
	// Every registered protocol id must have been exercised (test-local ids
	// ≥ 65000 excluded).
	for _, id := range wire.RegisteredIDs() {
		if id >= 65000 {
			continue
		}
		if !seen[id] {
			t.Errorf("registered id %d has no round-trip sample", id)
		}
	}
}

// TestFrameRoundTripAllTypes runs each sample through the full transport
// frame path.
func TestFrameRoundTripAllTypes(t *testing.T) {
	for i, msg := range samples() {
		frame := wire.AppendFrame(nil, 42, msg)
		from, decoded, err := wire.DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("sample %d (%T): %v", i, msg, err)
		}
		if from != 42 {
			t.Fatalf("sample %d: from %d", i, from)
		}
		if decoded.WireID() != msg.WireID() {
			t.Fatalf("sample %d: id %d != %d", i, decoded.WireID(), msg.WireID())
		}
	}
}

// TestDigestMatchesEncoding pins the digest-from-canonical-bytes contract:
// a request's digest equals the SHA-256 of its transaction's wire encoding,
// whether the request was built locally or decoded from the wire.
func TestDigestMatchesEncoding(t *testing.T) {
	req := sampleRequest(7)
	enc := req.Txn.AppendWire(nil)
	want := types.DigestBytes(enc)
	if got := req.Digest(); got != want {
		t.Fatalf("local digest %v != hash of encoding %v", got, want)
	}
	cr := &protocol.ClientRequest{Req: sampleRequest(7)}
	body := wire.Marshal(cr)
	decoded, err := wire.Unmarshal(cr.WireID(), body)
	if err != nil {
		t.Fatal(err)
	}
	if got := decoded.(*protocol.ClientRequest).Req.Digest(); got != want {
		t.Fatalf("decoded digest %v != %v", got, want)
	}
}

// FuzzWireDecode: arbitrary bytes must never panic any decoder — not the
// frame decoder, and not any registered message type's Unmarshal.
func FuzzWireDecode(f *testing.F) {
	for _, msg := range samples() {
		f.Add(wire.AppendFrame(nil, 1, msg)[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	ids := wire.RegisteredIDs()
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = wire.DecodeFrame(data)
		for _, id := range ids {
			m, _ := wire.New(id)
			if m == nil {
				continue
			}
			if err := m.Unmarshal(data); err != nil {
				continue
			}
			// Whatever parsed must re-encode canonically: encode → decode →
			// encode is byte-identical even for adversarial input that
			// happens to decode.
			enc := m.MarshalTo(nil)
			m2, _ := wire.New(id)
			if err := m2.Unmarshal(enc); err != nil {
				t.Fatalf("id %d: re-decode of canonical encoding failed: %v", id, err)
			}
			if !bytes.Equal(enc, m2.MarshalTo(nil)) {
				t.Fatalf("id %d: non-canonical re-encode", id)
			}
		}
	})
}
