package wire

// Central wire-id assignment. Ids are part of the on-the-wire and on-disk
// contract: they must never be reused, and new types take fresh numbers at
// the end of their block. Each consensus package owns one block of 16 so a
// frame's id alone names the protocol it belongs to.
const (
	// 1–15: shared runtime messages (internal/consensus/protocol) and
	// storage payloads (internal/types, internal/storage).
	IDClientRequest  uint16 = 1
	IDForwardRequest uint16 = 2
	IDInform         uint16 = 3
	IDFetch          uint16 = 4
	IDFetchReply     uint16 = 5
	IDCheckpoint     uint16 = 6
	IDExecRecord     uint16 = 7
	IDSnapshot       uint16 = 8

	// Snapshot state transfer (internal/consensus/protocol/statesync.go).
	IDSnapshotRequest uint16 = 9
	IDSnapshotOffer   uint16 = 10
	IDSnapshotChunk   uint16 = 11

	// Hybrid-consistency read path (internal/consensus/protocol/readpath.go).
	IDReadRequest uint16 = 12
	IDReadReply   uint16 = 13
	IDLeaseGrant  uint16 = 14

	// 16–31: PoE.
	IDPoePropose   uint16 = 16
	IDPoeSupport   uint16 = 17
	IDPoeCertify   uint16 = 18
	IDPoeVCRequest uint16 = 19
	IDPoeNVPropose uint16 = 20

	// 32–47: PBFT.
	IDPbftPrePrepare uint16 = 32
	IDPbftPrepare    uint16 = 33
	IDPbftCommit     uint16 = 34
	IDPbftVCRequest  uint16 = 35
	IDPbftNVPropose  uint16 = 36

	// 48–63: SBFT.
	IDSbftPrePrepare      uint16 = 48
	IDSbftSignShare       uint16 = 49
	IDSbftPrepare2        uint16 = 50
	IDSbftShare2          uint16 = 51
	IDSbftFullCommitProof uint16 = 52
	IDSbftSignState       uint16 = 53
	IDSbftExecuteAck      uint16 = 54
	IDSbftVCRequest       uint16 = 55
	IDSbftNVPropose       uint16 = 56

	// 64–79: Zyzzyva.
	IDZyzOrderReq    uint16 = 64
	IDZyzCommitReq   uint16 = 65
	IDZyzLocalCommit uint16 = 66
	IDZyzVCRequest   uint16 = 67
	IDZyzNVPropose   uint16 = 68

	// 80–95: HotStuff.
	IDHsProposal   uint16 = 80
	IDHsVote       uint16 = 81
	IDHsNewView    uint16 = 82
	IDHsFetchNodes uint16 = 83
	IDHsNodeBundle uint16 = 84
)
