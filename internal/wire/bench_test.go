package wire_test

// Codec micro-benchmarks: the wire codec against the gob baseline it
// replaced, per hot message type. The headline acceptance number is Batch /
// ExecRecord encode throughput (target ≥3× gob); decode and fan-out shapes
// are measured too. Run:
//
//	go test -bench 'BenchmarkWire|BenchmarkGob' -benchmem ./internal/wire
//
// Fairness: the replaced TCPNet kept one long-lived gob encoder per peer
// stream, paying the type-dictionary transmission once per connection, so
// the gob baselines here reuse a persistent encoder (resetting only the
// byte sink) and amortize the decoder's dictionary over a 64-message
// stream — steady-state per-message cost, not first-message cost.
// docs/BENCHMARKS.md records the PR 5 same-box numbers.

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// benchCases are the payloads that dominate real traffic: a standard
// 50-request batch (PROPOSE body / WAL record), a small share message, and
// a client reply.
func benchBatch() types.Batch { return sampleBatch(50) }
func benchRecord() types.ExecRecord {
	return types.ExecRecord{Seq: 9, View: 1, Digest: types.DigestBytes([]byte("b")), Proof: []byte("certcertcert"), Batch: benchBatch()}
}

func BenchmarkWireEncodeBatchPropose(b *testing.B) {
	m := &poe.Propose{View: 1, Seq: 2, Batch: benchBatch(), Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	m.Batch.MemoizeDigests()
	buf := m.MarshalTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.MarshalTo(buf[:0])
	}
}

func BenchmarkGobEncodeBatchPropose(b *testing.B) {
	m := &poe.Propose{View: 1, Seq: 2, Batch: benchBatch(), Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	benchGobEncode(b, m)
}

func BenchmarkWireDecodeBatchPropose(b *testing.B) {
	m := &poe.Propose{View: 1, Seq: 2, Batch: benchBatch(), Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	buf := m.MarshalTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out poe.Propose
		if err := out.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobDecodeBatchPropose(b *testing.B) {
	m := &poe.Propose{View: 1, Seq: 2, Batch: benchBatch(), Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	benchGobDecode(b, m, func() any { return &poe.Propose{} })
}

func BenchmarkWireEncodeExecRecord(b *testing.B) {
	rec := benchRecord()
	rec.Batch.MemoizeDigests()
	buf := rec.MarshalTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = rec.MarshalTo(buf[:0])
	}
}

func BenchmarkGobEncodeExecRecord(b *testing.B) {
	rec := benchRecord()
	benchGobEncode(b, &rec)
}

func BenchmarkWireDecodeExecRecord(b *testing.B) {
	rec := benchRecord()
	buf := rec.MarshalTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out types.ExecRecord
		if err := out.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobDecodeExecRecord(b *testing.B) {
	rec := benchRecord()
	benchGobDecode(b, &rec, func() any { return &types.ExecRecord{} })
}

func BenchmarkWireEncodeInform(b *testing.B) {
	m := &protocol.Inform{From: 1, Digest: types.DigestBytes([]byte("d")), Seq: 9, ClientSeq: 2, Values: [][]byte{[]byte("v")}, Tag: bytes.Repeat([]byte{7}, 32)}
	buf := m.MarshalTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.MarshalTo(buf[:0])
	}
}

func BenchmarkGobEncodeInform(b *testing.B) {
	m := &protocol.Inform{From: 1, Digest: types.DigestBytes([]byte("d")), Seq: 9, ClientSeq: 2, Values: [][]byte{[]byte("v")}, Tag: bytes.Repeat([]byte{7}, 32)}
	benchGobEncode(b, m)
}

// benchGobEncode measures steady-state gob encoding on one persistent
// stream: the encoder survives across iterations (dictionary sent once,
// like a long-lived peer connection); only the byte sink is reset.
func benchGobEncode(b *testing.B, v any) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil { // dictionary + first value
		b.Fatal(err)
	}
	buf.Reset()
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len())) // steady-state per-message size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGobDecode measures steady-state gob decoding: the dictionary is
// amortized over a 64-message stream, as on a long-lived connection.
func benchGobDecode(b *testing.B, v any, fresh func() any) {
	const streamLen = 64
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	for i := 0; i < streamLen; i++ {
		if err := enc.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
	data := stream.Bytes()
	b.SetBytes(int64(len(data) / streamLen))
	b.ReportAllocs()
	b.ResetTimer()
	dec := gob.NewDecoder(bytes.NewReader(data))
	cnt := 0
	for i := 0; i < b.N; i++ {
		if cnt == streamLen {
			dec = gob.NewDecoder(bytes.NewReader(data))
			cnt = 0
		}
		if err := dec.Decode(fresh()); err != nil {
			b.Fatal(err)
		}
		cnt++
	}
}

// BenchmarkBroadcastFanout contrasts the two fan-out shapes for one PROPOSE
// to n−1 peers: marshal-once (encode a frame once, copy per peer — what
// TCPNet.Broadcast does) vs per-peer encoding (what per-peer gob streams
// did).
func BenchmarkBroadcastFanout(b *testing.B) {
	m := &poe.Propose{View: 1, Seq: 2, Batch: benchBatch(), Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	m.Batch.MemoizeDigests()
	const peers = 15 // n=16
	sink := make([]byte, 0, 1<<16)

	b.Run("marshal-once", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame := wire.AppendFrame(wire.GetBuf(), 0, m)
			for p := 0; p < peers; p++ {
				sink = append(sink[:0], frame...) // the per-peer write(2) copy
			}
			wire.PutBuf(frame)
		}
	})
	b.Run("per-peer-gob", func(b *testing.B) {
		// Persistent per-peer encoders, like the replaced TCPNet: the type
		// dictionary is paid once per stream, so each iteration measures 15
		// steady-state encodes — gob's best case.
		bufs := make([]*bytes.Buffer, peers)
		encs := make([]*gob.Encoder, peers)
		for p := 0; p < peers; p++ {
			bufs[p] = &bytes.Buffer{}
			encs[p] = gob.NewEncoder(bufs[p])
			if err := encs[p].Encode(m); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < peers; p++ {
				bufs[p].Reset()
				if err := encs[p].Encode(m); err != nil {
					b.Fatal(err)
				}
				sink = append(sink[:0], bufs[p].Bytes()...)
			}
		}
	})
}
