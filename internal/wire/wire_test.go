package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendU8(buf, 7)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendU16(buf, 0xbeef)
	buf = AppendU32(buf, 0xdeadbeef)
	buf = AppendU64(buf, 1<<62)
	buf = AppendI32(buf, -5)
	buf = AppendI64(buf, -1)
	buf = AppendBytes(buf, []byte("payload"))
	buf = AppendBytes(buf, nil)
	buf = AppendString(buf, "key")
	buf = AppendBytesSlice(buf, [][]byte{[]byte("a"), nil, []byte("ccc")})

	r := NewReader(buf)
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("u8/bool mismatch")
	}
	if r.U16() != 0xbeef || r.U32() != 0xdeadbeef || r.U64() != 1<<62 {
		t.Fatal("uint mismatch")
	}
	if r.I32() != -5 || r.I64() != -1 {
		t.Fatal("int mismatch")
	}
	if string(r.Bytes()) != "payload" || r.Bytes() != nil || r.String() != "key" {
		t.Fatal("bytes/string mismatch")
	}
	bs := r.BytesSlice()
	if len(bs) != 3 || string(bs[0]) != "a" || bs[1] != nil || string(bs[2]) != "ccc" {
		t.Fatalf("bytes slice mismatch: %q", bs)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	buf := AppendU64(nil, 42)
	for cut := 0; cut < len(buf); cut++ {
		r := NewReader(buf[:cut])
		r.U64()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut %d: err = %v", cut, r.Err())
		}
	}
	// A declared byte-string length beyond the input is truncation, not an
	// allocation.
	r := NewReader(AppendU32(nil, 1<<31))
	if r.Bytes() != nil || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatal("oversized length accepted")
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U8()
	if err := r.Close(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderNonCanonicalBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestCountBoundsAllocation(t *testing.T) {
	// A count claiming 2^31 elements of ≥8 bytes each cannot fit in a
	// 12-byte input; Count must reject it before any allocation happens.
	buf := AppendU32(nil, 1<<31)
	buf = append(buf, make([]byte, 8)...)
	r := NewReader(buf)
	if n := r.Count(8); n != 0 || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("count %d err %v", n, r.Err())
	}
}

func TestReaderSince(t *testing.T) {
	buf := AppendU64(AppendU32(nil, 9), 7)
	r := NewReader(buf)
	start := r.Off()
	r.U32()
	if !bytes.Equal(r.Since(start), buf[:4]) {
		t.Fatal("Since did not capture the consumed range")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// ping-like local message registered under a test id.
	frame := AppendFrame(nil, -3, testMsg{payload: []byte("hi")})
	// Strip the u32 length word, as the transport does.
	from, m, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if from != -3 {
		t.Fatalf("from = %d", from)
	}
	got := m.(*testMsgPtr)
	if string(got.payload) != "hi" {
		t.Fatalf("payload %q", got.payload)
	}
}

func TestDecodeFrameUnknownType(t *testing.T) {
	body := AppendU16(AppendI32(nil, 1), 0x7fff)
	if _, _, err := DecodeFrame(body); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatal("pooled buffer not empty")
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	// Oversized buffers are dropped silently.
	PutBuf(make([]byte, 0, maxPooledBuf+1))
}

// testMsg is a by-value message used by the frame test; it decodes into
// *testMsgPtr through the registry.
type testMsg struct{ payload []byte }

func (m testMsg) WireID() uint16              { return 65100 }
func (m testMsg) MarshalTo(buf []byte) []byte { return AppendBytes(buf, m.payload) }
func (m testMsg) Unmarshal(data []byte) error { return nil }

type testMsgPtr struct{ payload []byte }

func (m *testMsgPtr) WireID() uint16              { return 65100 }
func (m *testMsgPtr) MarshalTo(buf []byte) []byte { return AppendBytes(buf, m.payload) }
func (m *testMsgPtr) Unmarshal(data []byte) error {
	r := NewReader(data)
	m.payload = r.Bytes()
	return r.Close()
}

func init() { Register(func() Message { return &testMsgPtr{} }) }
