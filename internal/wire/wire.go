// Package wire is the hand-written, zero-reflection binary codec every
// cross-replica message travels in: the TCP transport's frames, the WAL's
// record payloads, and the checkpoint snapshots all encode through it.
//
// Why not gob: a reflection codec walks the type graph of every value it
// encodes, and a stream codec re-sends its type dictionary per connection.
// On the replica hot path that cost is paid per message *per peer* — a
// broadcast of one PROPOSE to n−1 replicas gob-encoded the same batch n−1
// times. This package makes encoding a plain append loop over pre-agreed
// field layouts, so a broadcast marshals once and fans the same byte slice
// out to every peer, and a WAL group commit appends records into one pooled
// buffer without allocating per record.
//
// Conventions (all integers big-endian, all layouts fixed by hand):
//
//   - fixed-width integers: u8, u16, u32, u64 (bool is one byte, 0 or 1)
//   - byte strings: u32 length prefix + raw bytes; length 0 decodes as nil
//   - slices: u32 element count + elements back to back
//   - 32-byte digests: raw, no length prefix
//
// The encoding is canonical: for every message type, encode → decode →
// encode is byte-identical (maps are sorted at encode time by their owners;
// nil and empty slices both encode as length 0 and decode as nil). Decoding
// is strict — trailing bytes, truncated fields, and lengths exceeding the
// input are errors, never panics — and zero-copy: decoded byte slices alias
// the input buffer, so a decoded message owns its input and the input must
// not be recycled while the message lives.
//
// Message types register a factory under a fixed 16-bit id (ids.go is the
// central assignment); the TCP transport frames messages as
//
//	[u32 body length][i32 sender node][u16 type id][body]
//
// where the destination is deliberately absent: TCP links are point-to-point,
// the receiver is the destination, and omitting it is what makes one encoded
// frame valid for every peer of a broadcast.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is implemented by every type that crosses the wire. MarshalTo
// appends the message body to buf and returns the extended slice; Unmarshal
// decodes a body produced by MarshalTo, rejecting trailing or truncated
// input. WireID returns the type's registered id (see ids.go).
type Message interface {
	WireID() uint16
	MarshalTo(buf []byte) []byte
	Unmarshal(data []byte) error
}

// ErrTruncated reports input that ended inside a declared field.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing reports leftover bytes after a complete message body.
var ErrTrailing = errors.New("wire: trailing bytes after message")

// ErrUnknownType reports a frame whose type id has no registered factory.
var ErrUnknownType = errors.New("wire: unknown message type")

// --- append primitives ---

// AppendU8 appends one byte.
func AppendU8(buf []byte, v uint8) []byte { return append(buf, v) }

// AppendBool appends a bool as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendU16 appends a big-endian uint16.
func AppendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

// AppendU32 appends a big-endian uint32.
func AppendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendU64 appends a big-endian uint64.
func AppendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendI32 appends a big-endian int32 (two's complement).
func AppendI32(buf []byte, v int32) []byte { return AppendU32(buf, uint32(v)) }

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(buf []byte, v int64) []byte { return AppendU64(buf, uint64(v)) }

// AppendBytes appends a u32 length prefix and the bytes.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = AppendU32(buf, uint32(len(b)))
	return append(buf, b...)
}

// AppendString appends a u32 length prefix and the string bytes.
func AppendString(buf []byte, s string) []byte {
	buf = AppendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

// AppendBytesSlice appends a u32 count and each element as AppendBytes.
func AppendBytesSlice(buf []byte, bs [][]byte) []byte {
	buf = AppendU32(buf, uint32(len(bs)))
	for _, b := range bs {
		buf = AppendBytes(buf, b)
	}
	return buf
}

// --- reader ---

// Reader decodes the primitives appended above. It is bounds-checked and
// never panics: the first failed read latches Err, and every subsequent read
// returns zero values. Byte-slice reads alias the input buffer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Off returns the current read offset. Together with Since it lets a decoder
// capture the exact input range a nested value occupied — the zero-copy way
// to memoize a value's canonical encoding while decoding it.
func (r *Reader) Off() int { return r.off }

// Since returns the input bytes consumed since offset start (from Off),
// aliasing the input buffer; nil once an error is latched.
func (r *Reader) Since(start int) []byte {
	if r.err != nil || start < 0 || start > r.off {
		return nil
	}
	return r.buf[start:r.off:r.off]
}

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, aliasing the input.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool; any byte other than 0 or 1 is an error,
// keeping the encoding canonical.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("wire: non-canonical bool"))
		return false
	}
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 reads a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bytes reads a u32-length-prefixed byte string, aliasing the input buffer.
// Length 0 returns nil (the canonical form).
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if n == 0 {
		return nil
	}
	b := r.take(int(n))
	if len(b) == 0 {
		return nil
	}
	return b
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// BytesSlice reads a u32-count-prefixed slice of byte strings.
func (r *Reader) BytesSlice() [][]byte {
	n := r.Count(4) // each element is at least a u32 length
	if n == 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Bytes())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Raw reads exactly n bytes (no length prefix), aliasing the input.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Count reads a u32 element count and sanity-checks it against the remaining
// input: a count that could not possibly fit (each element needs at least
// minElemSize bytes) is corruption, and rejecting it here keeps adversarial
// counts from driving huge allocations. minElemSize 0 is treated as 1.
func (r *Reader) Count(minElemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if minElemSize <= 0 {
		minElemSize = 1
	}
	if int64(n)*int64(minElemSize) > int64(r.Len()) {
		r.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

// Close finishes a strict decode: it returns the latched error, or
// ErrTrailing if the input was not fully consumed.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return ErrTrailing
	}
	return nil
}

// --- buffer pool ---

// bufPool recycles encode buffers. Buffers are held via pointer-to-slice so
// Put does not allocate, and oversized buffers are dropped rather than
// pinned forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledBuf caps the capacity of buffers returned to the pool; a rare
// huge batch must not permanently inflate the pool's footprint.
const maxPooledBuf = 1 << 20

// GetBuf returns an empty encode buffer from the pool.
func GetBuf() []byte { return (*(bufPool.Get().(*[]byte)))[:0] }

// PutBuf returns a buffer obtained from GetBuf. The caller must not touch
// the buffer afterwards — decoded messages that alias it included.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// --- registry ---

var (
	regMu     sync.RWMutex
	factories = make(map[uint16]func() Message)
)

// Register records the factory for a message type under its WireID. It is
// called from package init functions (like gob.Register used to be);
// duplicate ids panic — the id space in ids.go is a hand-kept contract.
func Register(factory func() Message) {
	id := factory().WireID()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[id]; dup {
		panic(fmt.Sprintf("wire: duplicate registration for id %d", id))
	}
	factories[id] = factory
}

// RegisteredIDs returns every registered wire id (order unspecified). The
// fuzz and round-trip tests use it to cover the whole message surface.
func RegisteredIDs() []uint16 {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := make([]uint16, 0, len(factories))
	for id := range factories {
		ids = append(ids, id)
	}
	return ids
}

// New returns a fresh zero message for a registered id.
func New(id uint16) (Message, bool) {
	regMu.RLock()
	f, ok := factories[id]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(), true
}

// --- framing ---

// frameHeader is [i32 from][u16 type id]; the u32 body length travels ahead
// of it on the stream.
const frameHeader = 4 + 2

// marshals counts every message-body marshal performed through this package
// — the counter the marshal-once broadcast tests assert on.
var marshals atomic.Int64

// Marshals returns the cumulative number of message-body marshals.
func Marshals() int64 { return marshals.Load() }

// CountMarshal records one message-body marshal performed outside
// AppendFrame/Marshal (the WAL append path uses it so the same counter
// covers both encoders).
func CountMarshal() { marshals.Add(1) }

// Marshal encodes a message body into a fresh slice.
func Marshal(m Message) []byte {
	marshals.Add(1)
	return m.MarshalTo(nil)
}

// Unmarshal decodes a message body for a registered id.
func Unmarshal(id uint16, body []byte) (Message, error) {
	m, ok := New(id)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownType, id)
	}
	if err := m.Unmarshal(body); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendFrame appends one complete transport frame — length word, sender,
// type id, body — to buf. The destination is not part of the frame (see the
// package comment), which is what lets a broadcast encode once: the caller
// writes the identical returned bytes to every peer.
func AppendFrame(buf []byte, from int32, m Message) []byte {
	marshals.Add(1)
	lenAt := len(buf)
	buf = AppendU32(buf, 0) // patched below
	buf = AppendI32(buf, from)
	buf = AppendU16(buf, m.WireID())
	buf = m.MarshalTo(buf)
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

// DecodeFrame decodes a frame body (the bytes after the u32 length word):
// the sender and the registered message. The message aliases body.
func DecodeFrame(body []byte) (from int32, m Message, err error) {
	if len(body) < frameHeader {
		return 0, nil, ErrTruncated
	}
	from = int32(binary.BigEndian.Uint32(body[0:4]))
	id := binary.BigEndian.Uint16(body[4:6])
	m, err = Unmarshal(id, body[frameHeader:])
	if err != nil {
		return 0, nil, err
	}
	return from, m, nil
}

// EncodedSize returns the wire-encoded body size of msg, or -1 when msg does
// not implement Message. It performs a real marshal into a pooled buffer —
// callers that use it as a cost model (ChanNet's send-cost recalibration,
// DESIGN.md §3) therefore charge the sender the true serialization CPU.
func EncodedSize(msg any) int {
	m, ok := msg.(Message)
	if !ok {
		return -1
	}
	buf := GetBuf()
	buf = m.MarshalTo(buf)
	n := len(buf)
	PutBuf(buf)
	return n
}
