package pbft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

type cluster struct {
	t        *testing.T
	net      *network.ChanNet
	ring     *crypto.KeyRing
	replicas []*Replica
	cfgs     []protocol.Config
}

func startCluster(t *testing.T, n, f int, scheme crypto.Scheme) *cluster {
	t.Helper()
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("test-seed"))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, net: net, ring: ring}
	for i := 0; i < n; i++ {
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: scheme,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 32, CheckpointInterval: 8,
			ViewTimeout: 200 * time.Millisecond,
		}
		tr := net.Join(types.ReplicaNode(cfg.ID))
		r, err := New(cfg, ring, tr, Options{})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
		go r.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return c
}

func (c *cluster) newClient(i int) *client.Client {
	c.t.Helper()
	cfg := c.cfgs[0]
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	cl, err := client.New(client.Config{
		ID: id, N: cfg.N, F: cfg.F, Scheme: cfg.Scheme,
		Quorum:  cfg.F + 1, // PBFT's client rule
		Timeout: 250 * time.Millisecond,
	}, c.ring, c.net.Join(types.ClientNode(id)))
	if err != nil {
		c.t.Fatalf("client: %v", err)
	}
	cl.Start(context.Background())
	return cl
}

func (c *cluster) awaitConvergence(want types.SeqNum, skip map[types.ReplicaID]bool, within time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(within)
	for {
		var digests []types.Digest
		var seqs []types.SeqNum
		ok := true
		for i, r := range c.replicas {
			if skip[types.ReplicaID(i)] {
				continue
			}
			seq := r.Runtime().Exec.LastExecuted()
			seqs = append(seqs, seq)
			digests = append(digests, r.Runtime().Exec.StateDigest())
			if seq < want {
				ok = false
			}
		}
		if ok {
			for _, d := range digests[1:] {
				if d != digests[0] {
					ok = false
					break
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("no convergence: seqs=%v want=%d", seqs, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeOp(key, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

func TestNormalCaseMAC(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.awaitConvergence(20, nil, 5*time.Second)
	for _, r := range c.replicas {
		if seq, ok := r.Runtime().Exec.Chain().Verify(); !ok {
			t.Fatalf("broken ledger at %d", seq)
		}
	}
}

func TestNormalCaseED(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeED)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.awaitConvergence(10, nil, 5*time.Second)
}

func TestBackupFailure(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	c.net.Crash(types.ReplicaNode(3))
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.awaitConvergence(10, map[types.ReplicaID]bool{3: true}, 5*time.Second)
}

func TestPrimaryFailureViewChange(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("pre%d", i), "v")); err != nil {
			t.Fatalf("submit pre-%d: %v", i, err)
		}
	}
	c.net.Crash(types.ReplicaNode(0))
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("post%d", i), "v")); err != nil {
			t.Fatalf("submit post-%d: %v", i, err)
		}
	}
	c.awaitConvergence(10, map[types.ReplicaID]bool{0: true}, 10*time.Second)
	for i := 1; i < 4; i++ {
		if c.replicas[i].View() == 0 {
			t.Fatalf("replica %d did not change view", i)
		}
	}
}

func TestCheckpointStabilizes(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stable := true
		for _, r := range c.replicas {
			if r.Runtime().Exec.StableCheckpointSeq() < 8 {
				stable = false
			}
		}
		if stable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint did not stabilize")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
