// Package pbft implements the Practical Byzantine Fault Tolerance protocol
// (Castro & Liskov, OSDI'99) as the paper's primary baseline (§IV-A): three
// phases — PRE-PREPARE from the primary, then two all-to-all quadratic
// phases PREPARE and COMMIT — with out-of-order processing, batching,
// checkpoints, and a view-change algorithm. Clients wait for f+1 identical
// replies.
//
// To make view-change messages verifiable by third parties, PREPARE and
// COMMIT messages carry threshold-style shares over the proposal digest (the
// same crypto.Share machinery PoE uses): a replica holding nf prepare shares
// has a compact *prepared certificate*, which is what the view-change
// protocol exchanges. Under the MAC scheme the shares are HMACs, so the cost
// profile matches the paper's MAC-based PBFT (BFTSmart-style with
// ResilientDB's pipelining).
package pbft

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// PrePrepare is the primary's ordering proposal.
type PrePrepare struct {
	View  types.View
	Seq   types.SeqNum
	Batch types.Batch
	Auth  [][]byte
}

// SignedPayload returns the bytes covered by the authenticator.
func (m *PrePrepare) SignedPayload() []byte {
	bd := m.Batch.Digest()
	d := types.ProposalDigest(m.Seq, m.View, bd)
	return d[:]
}

// Prepare is the first all-to-all phase: agreement on the proposal digest.
// The share doubles as authentication and as view-change evidence.
type Prepare struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// Commit is the second all-to-all phase.
type Commit struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// VCRequest is PBFT's VIEW-CHANGE message: the sender's stable checkpoint
// plus its prepared entries (batch + prepared certificate), whether executed
// or not. Carrying prepared (not merely executed) entries is what makes the
// f+1 client quorum safe across view changes.
type VCRequest struct {
	From      types.ReplicaID
	View      types.View // failed view
	StableSeq types.SeqNum
	Prepared  []PreparedEntry
	Sig       []byte
}

// PreparedEntry is one prepared batch with its certificate.
type PreparedEntry struct {
	Seq    types.SeqNum
	View   types.View
	Digest types.Digest
	Proof  []byte
	Batch  types.Batch
}

// SignedPayload returns the bytes covered by the view-change signature.
func (m *VCRequest) SignedPayload() []byte {
	parts := [][]byte{[]byte("pbft-vc"), u64(uint64(m.From)), u64(uint64(m.View)), u64(uint64(m.StableSeq))}
	for i := range m.Prepared {
		e := &m.Prepared[i]
		parts = append(parts, u64(uint64(e.Seq)), u64(uint64(e.View)), e.Digest[:], e.Proof)
	}
	d := types.DigestConcat(parts...)
	return d[:]
}

// NVPropose is PBFT's NEW-VIEW message.
type NVPropose struct {
	NewView  types.View
	Requests []VCRequest
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

// commitDigest derives the distinct digest signed in Commit shares, so
// prepare and commit shares cannot be confused.
func commitDigest(h types.Digest) types.Digest {
	return types.DigestConcat([]byte("pbft-commit"), h[:])
}

func init() {
	wire.Register(func() wire.Message { return &PrePrepare{} })
	wire.Register(func() wire.Message { return &Prepare{} })
	wire.Register(func() wire.Message { return &Commit{} })
	wire.Register(func() wire.Message { return &VCRequest{} })
	wire.Register(func() wire.Message { return &NVPropose{} })
}

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// Options configure a PBFT replica.
type Options struct {
	protocol.RuntimeOptions
	// Adversary makes this replica a Byzantine primary per the shared
	// cross-protocol spec: equivocating or suppressed PRE-PREPAREs toward
	// the listed backups, re-signed with this replica's real keys so honest
	// verifiers accept them. Nil means honest.
	Adversary *protocol.AdversarySpec
	Tick      time.Duration
}

// Replica is one PBFT replica.
type Replica struct {
	rt  *protocol.Runtime
	adv *protocol.AdversarySpec

	view        types.View
	status      status
	nextPropose types.SeqNum
	slots       map[types.SeqNum]*slot

	pendingReqs  map[types.Digest]pendingReq
	lastProgress time.Time
	curTimeout   time.Duration

	vcTarget  types.View
	vcStarted time.Time
	vcResent  time.Time
	vcVotes   map[types.View]map[types.ReplicaID]*VCRequest
	sentVC    map[types.View]bool
	lastNV    *NVPropose

	// catchup marks a replica restarted from durable state: the first tick
	// proactively fetches past the recovered prefix.
	catchup bool

	// strongQ holds STRONG reads the primary deferred because its committed
	// head still trailed its proposals; drained after every execution burst
	// and on the tick, with a bounded wait before falling back to ordering.
	strongQ protocol.StrongReads

	tick time.Duration
}

type slot struct {
	view          types.View
	haveBatch     bool
	batch         types.Batch
	digest        types.Digest // h = D(k||v||D(batch))
	prepares      map[types.ReplicaID]crypto.Share
	commits       map[types.ReplicaID]crypto.Share
	preparedCert  []byte // nf prepare shares combined
	committedCert []byte
	committed     bool
}

type pendingReq struct {
	req   types.Request
	since time.Time
}

// New creates a PBFT replica.
func New(cfg protocol.Config, ring *crypto.KeyRing, net network.Transport, opts Options) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := protocol.NewRuntime(cfg, ring, net, opts.RuntimeOptions)
	tick := opts.Tick
	if tick == 0 {
		// The tick drives both failure detection (needs ≲ ViewTimeout/4)
		// and batch-linger flushing (needs milliseconds).
		tick = cfg.ViewTimeout / 4
		if tick > 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
	}
	r := &Replica{
		rt:           rt,
		adv:          opts.Adversary,
		nextPropose:  rt.Exec.LastExecuted() + 1,
		slots:        make(map[types.SeqNum]*slot),
		pendingReqs:  make(map[types.Digest]pendingReq),
		lastProgress: time.Now(),
		curTimeout:   cfg.ViewTimeout,
		vcVotes:      make(map[types.View]map[types.ReplicaID]*VCRequest),
		sentVC:       make(map[types.View]bool),
		tick:         tick,
	}
	rt.Sync.AfterInstall = r.afterInstall
	if rt.RecoveredSeq > 0 {
		// Crash-restart: resume after the recovered prefix, rejoin in the
		// last durably executed view (view-change catch-up handles any
		// further drift), and fetch proactively on the first tick.
		r.view = rt.Exec.Chain().Head().View
		r.catchup = true
	}
	if rt.Store != nil {
		// Durable (re)start — including a wiped rejoin that recovered
		// nothing: ask peers whether a snapshot is needed rather than wait
		// for checkpoint votes an idle cluster will never emit.
		rt.Sync.Probe()
	}
	return r, nil
}

// Runtime exposes the replica runtime for the harness and tests.
func (r *Replica) Runtime() *protocol.Runtime { return r.rt }

// View returns the current view (racy while running; for tests).
func (r *Replica) View() types.View { return r.view }

// Run processes messages until ctx is cancelled. Inbound messages pass
// through the parallel authentication pipeline (verify.go); outbound
// pre-prepares, prepare/commit shares, checkpoint votes, and reply MACs are
// signed on the egress pipeline, whose Local channel loops the deferred
// self-votes back onto the loop. The loop below performs no asymmetric
// crypto of its own in either direction on the normal-case path.
func (r *Replica) Run(ctx context.Context) {
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	inbox := r.rt.StartPipeline(ctx, r.verifyInbound)
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.rt.Metrics.MessagesIn.Add(1)
			r.dispatch(env)
		case fn := <-r.rt.Egress.Local():
			fn()
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) dispatch(env network.Envelope) {
	switch m := env.Msg.(type) {
	case *protocol.ClientRequest:
		r.onClientRequest(env.From, &m.Req)
	case *protocol.ForwardRequest:
		r.onForwardRequest(&m.Req)
	case *protocol.ReadRequest:
		r.onReadRequest(&m.Req)
	case *protocol.LeaseGrant:
		r.rt.OnLeaseGrant(m)
	case *PrePrepare:
		if env.From.IsReplica() {
			r.handlePrePrepare(env.From.Replica(), m)
		}
	case *Prepare:
		if env.From.IsReplica() {
			r.onPrepare(env.From.Replica(), m)
		}
	case *Commit:
		if env.From.IsReplica() {
			r.onCommit(env.From.Replica(), m)
		}
	case *protocol.Checkpoint:
		r.rt.OnCheckpoint(m)
	case *protocol.Fetch:
		r.rt.HandleFetch(m)
	case *protocol.FetchReply:
		r.onFetchReply(m)
	case *protocol.SnapshotRequest:
		r.rt.HandleSnapshotRequest(m)
	case *protocol.SnapshotOffer:
		r.rt.Sync.OnOffer(m)
	case *protocol.SnapshotChunk:
		r.rt.Sync.OnChunk(m)
	case *VCRequest:
		r.onVCRequest(m)
	case *NVPropose:
		if env.From.IsReplica() {
			r.onNVPropose(env.From.Replica(), m)
		}
	}
}

func (r *Replica) isPrimary() bool { return r.rt.Cfg.IsPrimary(r.view) }

// --- client requests ---

func (r *Replica) onClientRequest(from types.NodeID, req *types.Request) {
	if !from.IsClient() || req.Txn.Client != from.Client() {
		return
	}
	// The request signature was checked by the authentication pipeline.
	if r.rt.ReplayReply(req) {
		return
	}
	if r.status != statusNormal {
		r.trackPending(req)
		return
	}
	if r.isPrimary() {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.trackPending(req)
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

func (r *Replica) onForwardRequest(req *types.Request) {
	if r.status != statusNormal || !r.isPrimary() {
		return
	}
	if r.rt.ReplayReply(req) {
		return
	}
	r.rt.Batcher.Add(*req)
	r.proposeReady(false)
}

func (r *Replica) trackPending(req *types.Request) {
	d := req.Digest()
	if _, ok := r.pendingReqs[d]; !ok {
		r.pendingReqs[d] = pendingReq{req: *req, since: time.Now()}
	}
}

// --- hybrid-consistency read path ---

// onReadRequest serves a tiered read-only request without ordering when the
// tier's precondition holds, falling back to the ordering pipeline otherwise.
// The verify pipeline already checked the client signature and that the
// transaction is read-only with a non-ordered tier.
func (r *Replica) onReadRequest(req *types.Request) {
	switch req.Txn.Consistency {
	case types.ConsistencySpeculative:
		// Any replica answers from its executed prefix. PBFT executes only
		// committed-local batches and never rolls back, so these serves are
		// final; the (seq, state digest) tag still lets the client audit the
		// prefix against checkpoints.
		r.rt.ServeLocalRead(req, types.ConsistencySpeculative, r.view)
	case types.ConsistencyStrong:
		if r.tryServeStrong(req) {
			return
		}
		if r.isPrimary() && r.status == statusNormal {
			r.strongQ.Defer(req, time.Now())
			return
		}
		r.fallbackRead(req)
	default:
		r.fallbackRead(req)
	}
}

// tryServeStrong answers a STRONG read from the committed prefix iff this
// replica is the primary, holds a quorum read lease, and its committed head
// has caught up with its proposals (every write it acknowledged is in the
// answered prefix). Under a valid lease no view change can assemble a quorum
// — every grantor promised not to join a higher view — so no newer view can
// commit writes the serve would miss; without a lease the read pays for
// ordering, so linearizability never rests on clock synchronization.
func (r *Replica) tryServeStrong(req *types.Request) bool {
	if !r.isPrimary() || r.status != statusNormal {
		return false
	}
	if r.rt.Exec.LastExecuted()+1 != r.nextPropose {
		return false
	}
	if !r.rt.Lease.HolderValid(r.view) {
		return false
	}
	r.rt.ServeLocalRead(req, types.ConsistencyStrong, r.view)
	return true
}

// fallbackRead routes a tiered read through the ordering pipeline: the
// primary batches it like any write; a backup forwards it. Fallback reads are
// dedup-exempt end to end (their own client-local sequence space), so they
// pass the batcher watermark, executor dedup, and reply ring without
// colliding with writes.
func (r *Replica) fallbackRead(req *types.Request) {
	r.rt.Metrics.ReadFallbacks.Add(1)
	if r.isPrimary() && r.status == statusNormal {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

// drainStrongReads retries deferred STRONG reads, falling back to ordering
// for any that waited longer than half a lease duration.
func (r *Replica) drainStrongReads(now time.Time) {
	if r.strongQ.Len() == 0 {
		return
	}
	r.strongQ.Drain(now, r.rt.Cfg.LeaseDuration/2, r.tryServeStrong, r.fallbackRead)
}

// --- normal case ---

func (r *Replica) proposeReady(force bool) {
	if !r.isPrimary() || r.status != statusNormal {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	for r.nextPropose <= lastExec+types.SeqNum(r.rt.Cfg.Window) {
		batch, ok := r.rt.Batcher.Take(force)
		if !ok {
			return
		}
		seq := r.nextPropose
		r.nextPropose++
		m := &PrePrepare{View: r.view, Seq: seq, Batch: batch}
		r.rt.Metrics.ProposedBatches.Add(1)
		if r.adv == nil {
			payload := m.SignedPayload() // memoizes the batch digest on the loop
			r.rt.Egress.Enqueue(
				func() { m.Auth = r.rt.AuthBroadcast(payload) },
				func() { r.rt.Broadcast(m) },
				nil)
		} else {
			// Byzantine variants sign inline: the attack path is not the
			// hot path.
			m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
			r.broadcastPrePrepare(m)
		}
		r.handlePrePrepare(r.rt.Cfg.ID, m)
	}
}

// broadcastPrePrepare sends an adversarial proposal to every backup:
// targeted backups receive a conflicting (but correctly signed) variant
// batch or nothing at all.
func (r *Replica) broadcastPrePrepare(m *PrePrepare) {
	if r.adv == nil {
		r.rt.Broadcast(m)
		return
	}
	var variant *PrePrepare
	for i := 0; i < r.rt.Cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == r.rt.Cfg.ID {
			continue
		}
		switch r.adv.ActionFor(id) {
		case protocol.ProposeSilence:
		case protocol.ProposeEquivocate:
			if variant == nil {
				v := *m
				v.Batch = protocol.EquivocateBatch(m.Batch)
				v.Auth = r.rt.AuthBroadcast(v.SignedPayload())
				variant = &v
			}
			r.rt.SendReplica(id, variant)
		default:
			r.rt.SendReplica(id, m)
		}
	}
}

func (r *Replica) slot(seq types.SeqNum) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{
			prepares: make(map[types.ReplicaID]crypto.Share),
			commits:  make(map[types.ReplicaID]crypto.Share),
		}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) handlePrePrepare(from types.ReplicaID, m *PrePrepare) {
	cfg := r.rt.Cfg
	if r.status != statusNormal || m.View != r.view || from != cfg.Primary(r.view) {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec || m.Seq > lastExec+types.SeqNum(8*cfg.Window) {
		return
	}
	s := r.slot(m.Seq)
	if s.haveBatch {
		return
	}
	// Broadcast authenticator and client signatures were verified by the
	// authentication pipeline before dispatch.
	s.view = m.View
	s.haveBatch = true
	s.batch = m.Batch
	s.digest = types.ProposalDigest(m.Seq, m.View, m.Batch.Digest())
	// Register both phase payloads so the pipeline verifies prepare and
	// commit shares for this slot off the event loop.
	cd := commitDigest(s.digest)
	r.rt.Pipeline.NoteDigest(kindPrepare, m.View, m.Seq, s.digest[:])
	r.rt.Pipeline.NoteDigest(kindCommit, m.View, m.Seq, cd[:])
	// Broadcast PREPARE and count our own: the share is signed on the
	// egress pool; the self-vote loops back onto the event loop afterwards,
	// re-checking view/status since the slot may have been abandoned.
	p := &Prepare{View: m.View, Seq: m.Seq}
	digest := s.digest
	view := m.View
	r.rt.Egress.Enqueue(
		func() { p.Share = r.rt.TS.Share(digest[:]) },
		func() { r.rt.Broadcast(p) },
		func() {
			if r.status == statusNormal && r.view == view {
				r.addPrepare(cfg.ID, p, s)
			}
		})
}

func (r *Replica) onPrepare(from types.ReplicaID, m *Prepare) {
	if r.status != statusNormal || m.View != r.view || m.Share.Signer != from {
		return
	}
	s := r.slot(m.Seq)
	r.addPrepare(from, m, s)
}

func (r *Replica) addPrepare(from types.ReplicaID, m *Prepare, s *slot) {
	if s.preparedCert != nil {
		return
	}
	if _, dup := s.prepares[from]; dup {
		return
	}
	s.prepares[from] = m.Share
	r.tryPrepared(m.Seq, s)
}

// tryPrepared fires once the slot has the batch and nf prepare shares: the
// replica is "prepared" and broadcasts COMMIT.
func (r *Replica) tryPrepared(seq types.SeqNum, s *slot) {
	if s.preparedCert != nil || !s.haveBatch || len(s.prepares) < r.rt.Cfg.NF() {
		return
	}
	// Shares may have arrived before the pre-prepare fixed the digest;
	// validate them now (in parallel; pipeline-verified shares are memo
	// hits) and drop mismatches.
	shares := crypto.FilterValidShares(r.rt.TS, s.digest[:], s.prepares)
	if len(shares) < r.rt.Cfg.NF() {
		return
	}
	cert, err := r.rt.TS.Combine(s.digest[:], shares)
	if err != nil {
		return
	}
	s.preparedCert = cert
	r.lastProgress = time.Now()
	cd := commitDigest(s.digest)
	c := &Commit{View: s.view, Seq: seq}
	view := s.view
	r.rt.Egress.Enqueue(
		func() { c.Share = r.rt.TS.Share(cd[:]) },
		func() { r.rt.Broadcast(c) },
		func() {
			if r.status == statusNormal && r.view == view {
				r.addCommit(r.rt.Cfg.ID, c, s)
			}
		})
}

func (r *Replica) onCommit(from types.ReplicaID, m *Commit) {
	if r.status != statusNormal || m.View != r.view || m.Share.Signer != from {
		return
	}
	s := r.slot(m.Seq)
	r.addCommit(from, m, s)
}

func (r *Replica) addCommit(from types.ReplicaID, m *Commit, s *slot) {
	if s.committed {
		return
	}
	if _, dup := s.commits[from]; dup {
		return
	}
	s.commits[from] = m.Share
	r.tryCommitted(m.Seq, s)
}

// tryCommitted fires once the replica is prepared and holds nf commit
// shares: the batch is committed-local and scheduled for execution.
func (r *Replica) tryCommitted(seq types.SeqNum, s *slot) {
	if s.committed || s.preparedCert == nil || len(s.commits) < r.rt.Cfg.NF() {
		return
	}
	cd := commitDigest(s.digest)
	shares := crypto.FilterValidShares(r.rt.TS, cd[:], s.commits)
	if len(shares) < r.rt.Cfg.NF() {
		return
	}
	cert, err := r.rt.TS.Combine(cd[:], shares)
	if err != nil {
		return
	}
	s.committedCert = cert
	s.committed = true
	r.lastProgress = time.Now()
	// The execution record stores the prepared certificate: it is what the
	// view-change protocol needs to carry the batch across views.
	events := r.rt.Exec.Commit(seq, s.view, s.batch, s.preparedCert)
	r.afterExecution(events)
}

func (r *Replica) afterExecution(events []protocol.Executed) {
	if len(events) == 0 {
		return
	}
	for _, ev := range events {
		r.lastProgress = time.Now()
		r.rt.Metrics.ExecutedBatches.Add(1)
		r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
		r.rt.InformBatch(ev.Rec, ev.Results, false, types.ZeroDigest)
		for i := range ev.Rec.Batch.Requests {
			delete(r.pendingReqs, ev.Rec.Batch.Requests[i].Digest())
		}
		delete(r.slots, ev.Rec.Seq)
		r.rt.Pipeline.ForgetDigests(ev.Rec.View, ev.Rec.Seq)
		r.rt.MaybeCheckpoint(ev.Rec.Seq)
	}
	r.proposeReady(false)
	if r.status == statusNormal {
		// Execution progress is the under-load lease carrier (renewals ride
		// next to the checkpoint broadcast) and the moment deferred STRONG
		// reads may have caught up.
		r.rt.MaybeGrantLease(r.view, false)
		r.drainStrongReads(time.Now())
	}
}

// --- housekeeping ---

func (r *Replica) onTick() {
	now := time.Now()
	if r.catchup {
		r.catchup = false
		r.fetchFrom(r.rt.Exec.LastExecuted())
	}
	// Snapshot state transfer runs in every status: a replica too far behind
	// for Fetch needs it exactly when it cannot follow the normal case.
	r.rt.Sync.Tick(now)
	switch r.status {
	case statusNormal:
		if r.isPrimary() && r.rt.Batcher.Ripe(now) {
			r.proposeReady(true)
		}
		r.maybeFetch()
		r.drainStrongReads(now)
		suspect := r.suspectPrimary(now)
		// A suspecting replica stops renewing its lease grant, so the
		// primary's outstanding lease drains within one LeaseDuration.
		r.rt.MaybeGrantLease(r.view, suspect)
		if suspect {
			r.startViewChange(r.view + 1)
		}
	case statusViewChange:
		if now.Sub(r.vcStarted) > r.curTimeout {
			r.startViewChange(r.vcTarget + 1)
		} else if now.Sub(r.vcResent) > r.rt.Cfg.ViewTimeout {
			r.broadcastVC(r.vcTarget)
			r.maybeProposeNewView(r.vcTarget)
		}
	}
}

func (r *Replica) suspectPrimary(now time.Time) bool {
	if now.Sub(r.lastProgress) <= r.curTimeout {
		return false
	}
	if len(r.pendingReqs) > 0 {
		return true
	}
	lastExec := r.rt.Exec.LastExecuted()
	for seq := range r.slots {
		if seq > lastExec {
			return true
		}
	}
	if _, _, gapped := r.rt.Exec.Gap(); gapped {
		return true
	}
	return false
}

func (r *Replica) maybeFetch() {
	after, _, gapped := r.rt.Exec.Gap()
	if !gapped {
		return
	}
	r.fetchFrom(after)
}

// fetchFrom asks the next peer (round-robin) for executed records above after.
func (r *Replica) fetchFrom(after types.SeqNum) {
	r.rt.FetchFrom(after)
}

// afterInstall resumes the protocol around an installed snapshot: per-slot
// state the snapshot superseded is discarded, sequencing and view jump
// forward, and the ordinary record fetch bridges snapshot → live head.
func (r *Replica) afterInstall(snap *storage.Snapshot, events []protocol.Executed) {
	for seq := range r.slots {
		if seq <= snap.Seq {
			delete(r.slots, seq)
		}
	}
	if r.nextPropose <= snap.Seq {
		r.nextPropose = snap.Seq + 1
	}
	if snap.Head.View > r.view {
		r.view = snap.Head.View
		r.status = statusNormal
	}
	r.lastProgress = time.Now()
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.afterExecution(events)
	r.fetchFrom(r.rt.Exec.LastExecuted())
}

func (r *Replica) onFetchReply(m *protocol.FetchReply) {
	for i := range m.Records {
		rec := &m.Records[i]
		if rec.Digest != rec.Batch.Digest() {
			continue
		}
		if len(rec.Proof) == 0 {
			// Only no-op gap fillers travel without a certificate.
			if len(rec.Batch.Requests) != 0 || rec.Batch.ZeroPayload {
				continue
			}
		} else {
			h := types.ProposalDigest(rec.Seq, rec.View, rec.Digest)
			if !r.rt.TS.Verify(h[:], rec.Proof) {
				continue
			}
		}
		events := r.rt.Exec.Commit(rec.Seq, rec.View, rec.Batch, rec.Proof)
		r.afterExecution(events)
	}
	// Paginated transfer: a server whose head is still ahead has more pages.
	r.rt.FetchContinue(m.Head)
}

// --- view change ---

func (r *Replica) startViewChange(target types.View) {
	if target <= r.view {
		return
	}
	if r.status == statusViewChange && target <= r.vcTarget {
		return
	}
	if !r.rt.Lease.CanAdvanceView(target) {
		// An outstanding read-lease promise forbids joining a higher view
		// until it expires (at most one LeaseDuration). Every initiation path
		// retries — the tick re-suspects, VC-REQUESTs are retransmitted — so
		// the view change is delayed, never lost. Applying a completed
		// NV-PROPOSE is never gated: nf replicas advancing proves the lease
		// quorum already drained.
		return
	}
	r.status = statusViewChange
	r.vcTarget = target
	r.vcStarted = time.Now()
	r.curTimeout *= 2
	r.rt.Metrics.ViewChanges.Add(1)
	if r.sentVC[target] {
		return
	}
	r.sentVC[target] = true
	r.broadcastVC(target)
	r.maybeProposeNewView(target)
}

// broadcastVC signs and broadcasts this replica's view-change request for
// target. Called on entry and then periodically while the view change is
// pending: VIEW-CHANGE messages lost to a partition are not otherwise
// retransmitted, and the new-view primary cannot assemble its quorum
// without them.
func (r *Replica) broadcastVC(target types.View) {
	r.vcResent = time.Now()
	req := r.buildVCRequest(target)
	r.recordVCVote(req)
	r.rt.Broadcast(req)
}

// buildVCRequest collects this replica's prepared entries above its stable
// checkpoint: executed batches (their record keeps the prepared cert) plus
// in-flight slots that reached prepared.
func (r *Replica) buildVCRequest(target types.View) *VCRequest {
	stable := r.rt.Exec.StableCheckpointSeq()
	req := &VCRequest{From: r.rt.Cfg.ID, View: target - 1, StableSeq: stable}
	for _, rec := range r.rt.Exec.ExecutedSince(stable) {
		req.Prepared = append(req.Prepared, PreparedEntry{
			Seq: rec.Seq, View: rec.View, Digest: rec.Digest, Proof: rec.Proof, Batch: rec.Batch,
		})
	}
	lastExec := r.rt.Exec.LastExecuted()
	var extra []types.SeqNum
	for seq, s := range r.slots {
		if seq > lastExec && s.preparedCert != nil {
			extra = append(extra, seq)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for _, seq := range extra {
		s := r.slots[seq]
		req.Prepared = append(req.Prepared, PreparedEntry{
			Seq: seq, View: s.view, Digest: s.batch.Digest(), Proof: s.preparedCert, Batch: s.batch,
		})
	}
	req.Sig = r.rt.Keys.Sign(req.SignedPayload())
	return req
}

func (r *Replica) recordVCVote(m *VCRequest) {
	target := m.View + 1
	votes, ok := r.vcVotes[target]
	if !ok {
		votes = make(map[types.ReplicaID]*VCRequest)
		r.vcVotes[target] = votes
	}
	if _, dup := votes[m.From]; !dup {
		votes[m.From] = m
	}
}

// validateVCRequest checks signature and per-entry prepared certificates.
// Entries need not be consecutive (a replica can prepare out of order).
func (r *Replica) validateVCRequest(m *VCRequest) bool {
	if m.From < 0 || int(m.From) >= r.rt.Cfg.N {
		return false
	}
	if !r.rt.Keys.VerifyFrom(types.ReplicaNode(m.From), m.SignedPayload(), m.Sig) {
		return false
	}
	var last types.SeqNum
	for i := range m.Prepared {
		e := &m.Prepared[i]
		if e.Seq <= m.StableSeq || e.Seq <= last {
			return false
		}
		last = e.Seq
		if e.Digest != e.Batch.Digest() {
			return false
		}
		if isNullEntry(e) {
			// No-op batches installed by a previous view change carry no
			// certificate; they are acceptable but can never override a
			// proven entry (see applyNVPropose).
			continue
		}
		// The prepared certificate covers h = D(k||v||D(batch)) — the same
		// digest prepare shares sign.
		h := types.ProposalDigest(e.Seq, e.View, e.Digest)
		if !r.rt.TS.Verify(h[:], e.Proof) {
			return false
		}
	}
	return true
}

// isNullEntry reports whether the entry is a no-op gap filler: an empty
// batch with no certificate.
func isNullEntry(e *PreparedEntry) bool {
	return len(e.Proof) == 0 && len(e.Batch.Requests) == 0 && !e.Batch.ZeroPayload
}

func (r *Replica) onVCRequest(m *VCRequest) {
	target := m.View + 1
	if target <= r.view {
		if r.lastNV != nil && r.lastNV.NewView >= target && r.rt.Cfg.IsPrimary(r.lastNV.NewView) {
			r.rt.SendReplica(m.From, r.lastNV)
		}
		return
	}
	if !r.validateVCRequest(m) {
		return
	}
	r.recordVCVote(m)
	if len(r.vcVotes[target]) >= r.rt.Cfg.FPlus1() {
		if r.status == statusNormal || r.vcTarget < target {
			r.startViewChange(target)
		}
	}
	r.joinDivergedViewChange()
	r.maybeProposeNewView(target)
}

// joinDivergedViewChange applies the Castro-Liskov liveness rule: when f+1
// distinct replicas are view-changing to views beyond this replica's own
// target, at least one of them is honest — adopt the smallest such view
// immediately instead of waiting out the (exponentially backed-off) local
// timer. Without it a storm of staggered leader failures can strand the
// replicas on pairwise-different targets, none of which ever gathers a
// quorum.
func (r *Replica) joinDivergedViewChange() {
	cur := r.view
	if r.status == statusViewChange && r.vcTarget > cur {
		cur = r.vcTarget
	}
	voters := make(map[types.ReplicaID]types.View)
	for target, votes := range r.vcVotes {
		if target <= cur {
			continue
		}
		for id := range votes {
			if t, ok := voters[id]; !ok || target < t {
				voters[id] = target
			}
		}
	}
	if len(voters) < r.rt.Cfg.FPlus1() {
		return
	}
	join := types.View(0)
	for _, target := range voters {
		if join == 0 || target < join {
			join = target
		}
	}
	r.startViewChange(join)
	r.maybeProposeNewView(join)
}

func (r *Replica) maybeProposeNewView(target types.View) {
	cfg := r.rt.Cfg
	if !cfg.IsPrimary(target) || r.status != statusViewChange || r.vcTarget != target {
		return
	}
	if r.lastNV != nil && r.lastNV.NewView >= target {
		return
	}
	votes := r.vcVotes[target]
	if len(votes) < cfg.NF() {
		return
	}
	ids := make([]types.ReplicaID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nv := &NVPropose{NewView: target}
	for _, id := range ids[:cfg.NF()] {
		nv.Requests = append(nv.Requests, *votes[id])
	}
	r.lastNV = nv
	r.rt.Broadcast(nv)
	r.applyNVPropose(nv)
}

func (r *Replica) onNVPropose(from types.ReplicaID, m *NVPropose) {
	if from != r.rt.Cfg.Primary(m.NewView) {
		return
	}
	if m.NewView < r.view || (m.NewView == r.view && r.status == statusNormal) {
		return
	}
	if !r.validateNVPropose(m) {
		r.startViewChange(m.NewView + 1)
		return
	}
	r.applyNVPropose(m)
}

func (r *Replica) validateNVPropose(m *NVPropose) bool {
	if len(m.Requests) < r.rt.Cfg.NF() {
		return false
	}
	seen := make(map[types.ReplicaID]bool, len(m.Requests))
	for i := range m.Requests {
		req := &m.Requests[i]
		if req.View != m.NewView-1 || seen[req.From] {
			return false
		}
		seen[req.From] = true
		if !r.validateVCRequest(req) {
			return false
		}
	}
	return true
}

// applyNVPropose derives the new view's order: for every sequence number
// between the highest stable checkpoint among the requests and the highest
// prepared sequence number, the entry prepared in the highest view wins;
// gaps are filled with no-op batches (PBFT's null requests).
func (r *Replica) applyNVPropose(m *NVPropose) {
	base := types.SeqNum(0)
	maxSeq := types.SeqNum(0)
	for i := range m.Requests {
		req := &m.Requests[i]
		if req.StableSeq > base {
			base = req.StableSeq
		}
		for j := range req.Prepared {
			if req.Prepared[j].Seq > maxSeq {
				maxSeq = req.Prepared[j].Seq
			}
		}
	}
	chosen := make(map[types.SeqNum]*PreparedEntry)
	for i := range m.Requests {
		req := &m.Requests[i]
		for j := range req.Prepared {
			e := &req.Prepared[j]
			if e.Seq <= base {
				continue
			}
			cur, ok := chosen[e.Seq]
			switch {
			case !ok:
				chosen[e.Seq] = e
			case isNullEntry(cur) && !isNullEntry(e):
				// A proven entry always beats an unproven no-op filler: a
				// byzantine replica must not be able to erase a prepared
				// batch by advertising a fake high-view null.
				chosen[e.Seq] = e
			case isNullEntry(e) != isNullEntry(cur):
				// keep cur (proven beats null)
			case e.View > cur.View:
				chosen[e.Seq] = e
			}
		}
	}

	var events [][]protocol.Executed
	myLast := r.rt.Exec.LastExecuted()
	for seq := base + 1; seq <= maxSeq; seq++ {
		e, ok := chosen[seq]
		if seq <= myLast {
			// PBFT never rolls back: committed-local batches must agree
			// with the new view's choice (quorum intersection guarantees
			// it for genuinely committed entries).
			if ok {
				if rec, have := r.rt.Exec.Record(seq); have && rec.Digest != e.Digest {
					panic(fmt.Sprintf("pbft: new-view conflicts with committed seq %d", seq))
				}
			}
			continue
		}
		if !ok {
			// Gap: fill with a no-op batch so execution stays consecutive.
			evs := r.rt.Exec.Commit(seq, m.NewView, types.Batch{}, nil)
			if len(evs) > 0 {
				events = append(events, evs)
			}
			continue
		}
		evs := r.rt.Exec.Commit(e.Seq, e.View, e.Batch, e.Proof)
		if len(evs) > 0 {
			events = append(events, evs)
		}
	}

	r.enterView(m.NewView, maxSeq)
	for _, evs := range events {
		r.afterExecution(evs)
	}
}

func (r *Replica) enterView(v types.View, kmax types.SeqNum) {
	r.view = v
	r.status = statusNormal
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.lastProgress = time.Now()
	r.rt.Metrics.ViewChangesDone.Add(1)
	// Grants from the old view must never validate a lease in the new one,
	// and reads the old primary parked can no longer be lease-served.
	r.rt.Lease.ResetHolder(v)
	r.strongQ.FlushAll(r.fallbackRead)
	r.slots = make(map[types.SeqNum]*slot)
	// Every share payload in the pipeline's digest table belongs to the old
	// view's slots; drop them with the slots.
	r.rt.Pipeline.Reset()
	for target := range r.vcVotes {
		if target <= v {
			delete(r.vcVotes, target)
		}
	}
	for target := range r.sentVC {
		if target <= v {
			delete(r.sentVC, target)
		}
	}
	if r.rt.Cfg.IsPrimary(v) {
		if kmax < r.rt.Exec.LastExecuted() {
			kmax = r.rt.Exec.LastExecuted()
		}
		r.nextPropose = kmax + 1
		r.rt.Batcher.ResetProposed()
		for _, p := range r.pendingReqs {
			r.rt.Batcher.Add(p.req)
		}
		r.proposeReady(true)
	} else {
		for _, p := range r.pendingReqs {
			r.rt.SendReplica(r.rt.Cfg.Primary(v), &protocol.ForwardRequest{Req: p.req})
		}
	}
}
