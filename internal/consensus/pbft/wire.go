package pbft

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for PBFT's messages (ids in wire/ids.go).

// WireID implements wire.Message.
func (m *PrePrepare) WireID() uint16 { return wire.IDPbftPrePrepare }

// MarshalTo implements wire.Message.
func (m *PrePrepare) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = m.Batch.AppendWire(buf)
	return wire.AppendBytesSlice(buf, m.Auth)
}

// Unmarshal implements wire.Message.
func (m *PrePrepare) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.Batch.ReadWire(r)
	m.Auth = r.BytesSlice()
	return r.Close()
}

// WireID implements wire.Message.
func (m *Prepare) WireID() uint16 { return wire.IDPbftPrepare }

// MarshalTo implements wire.Message.
func (m *Prepare) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	return crypto.AppendShare(buf, m.Share)
}

// Unmarshal implements wire.Message.
func (m *Prepare) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.Share = crypto.ReadShare(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *Commit) WireID() uint16 { return wire.IDPbftCommit }

// MarshalTo implements wire.Message.
func (m *Commit) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	return crypto.AppendShare(buf, m.Share)
}

// Unmarshal implements wire.Message.
func (m *Commit) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.Share = crypto.ReadShare(r)
	return r.Close()
}

func appendPreparedEntry(buf []byte, e *PreparedEntry) []byte {
	buf = wire.AppendU64(buf, uint64(e.Seq))
	buf = wire.AppendU64(buf, uint64(e.View))
	buf = types.AppendDigest(buf, e.Digest)
	buf = wire.AppendBytes(buf, e.Proof)
	return e.Batch.AppendWire(buf)
}

func readPreparedEntry(r *wire.Reader, e *PreparedEntry) {
	e.Seq = types.SeqNum(r.U64())
	e.View = types.View(r.U64())
	e.Digest = types.ReadDigest(r)
	e.Proof = r.Bytes()
	e.Batch.ReadWire(r)
}

func appendVCRequest(buf []byte, m *VCRequest) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.StableSeq))
	buf = wire.AppendU32(buf, uint32(len(m.Prepared)))
	for i := range m.Prepared {
		buf = appendPreparedEntry(buf, &m.Prepared[i])
	}
	return wire.AppendBytes(buf, m.Sig)
}

func readVCRequest(r *wire.Reader, m *VCRequest) {
	m.From = types.ReplicaID(r.I32())
	m.View = types.View(r.U64())
	m.StableSeq = types.SeqNum(r.U64())
	n := r.Count(16 + 32 + 4 + 9)
	if n > 0 {
		m.Prepared = make([]PreparedEntry, n)
		for i := range m.Prepared {
			readPreparedEntry(r, &m.Prepared[i])
		}
	} else {
		m.Prepared = nil
	}
	m.Sig = r.Bytes()
}

// WireID implements wire.Message.
func (m *VCRequest) WireID() uint16 { return wire.IDPbftVCRequest }

// MarshalTo implements wire.Message.
func (m *VCRequest) MarshalTo(buf []byte) []byte { return appendVCRequest(buf, m) }

// Unmarshal implements wire.Message.
func (m *VCRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readVCRequest(r, m)
	return r.Close()
}

// WireID implements wire.Message.
func (m *NVPropose) WireID() uint16 { return wire.IDPbftNVPropose }

// MarshalTo implements wire.Message.
func (m *NVPropose) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.NewView))
	buf = wire.AppendU32(buf, uint32(len(m.Requests)))
	for i := range m.Requests {
		buf = appendVCRequest(buf, &m.Requests[i])
	}
	return buf
}

// Unmarshal implements wire.Message.
func (m *NVPropose) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.NewView = types.View(r.U64())
	n := r.Count(24)
	if n > 0 {
		m.Requests = make([]VCRequest, n)
		for i := range m.Requests {
			readVCRequest(r, &m.Requests[i])
		}
	} else {
		m.Requests = nil
	}
	return r.Close()
}
