package pbft

import (
	"github.com/poexec/poe/internal/network"
)

// PBFT's hook into the parallel authentication pipeline: broadcast
// authenticators, per-request client signatures, and (once the pre-prepare
// has registered the slot digest) prepare/commit shares are verified on
// worker goroutines before dispatch. See the poe package's verify.go for the
// pipeline's ownership and concurrency rules.

// Share-payload kinds in the pipeline's digest table.
const (
	kindPrepare uint8 = 0 // h = D(k||v||D(batch))
	kindCommit  uint8 = 1 // D("pbft-commit" || h)
)

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *PrePrepare:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		p := m
		if !env.Owned {
			cp := *m
			cp.Batch = m.Batch.Clone()
			env.Msg = &cp
			p = &cp
		}
		if !rt.VerifyBroadcast(env.From.Replica(), p.SignedPayload(), p.Auth) {
			return false
		}
		return rt.VerifyBatch(&p.Batch)
	case *Prepare:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindPrepare, m.View, m.Seq, m.Share)
	case *Commit:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindCommit, m.View, m.Seq, m.Share)
	case *VCRequest:
		env.Msg = ownVCRequest(m, env.Owned)
		return true
	case *NVPropose:
		if env.Owned {
			for i := range m.Requests {
				ownVCRequest(&m.Requests[i], true)
			}
			return true
		}
		cp := *m
		cp.Requests = make([]VCRequest, len(m.Requests))
		for i := range m.Requests {
			cp.Requests[i] = *ownVCRequest(&m.Requests[i], false)
		}
		env.Msg = &cp
		return true
	}
	return true
}

// ownVCRequest gives the replica its own copy of the prepared entries so
// digest memoization stays local — wire-decoded (owned) requests memoize in
// place. Signatures and certificates are validated by the view-change path
// on the event loop (rare, off the normal case).
func ownVCRequest(m *VCRequest, owned bool) *VCRequest {
	if owned {
		for i := range m.Prepared {
			m.Prepared[i].Batch.MemoizeDigests()
		}
		return m
	}
	cp := *m
	cp.Prepared = append([]PreparedEntry(nil), m.Prepared...)
	for i := range cp.Prepared {
		cp.Prepared[i].Batch = cp.Prepared[i].Batch.Clone()
		cp.Prepared[i].Batch.MemoizeDigests()
	}
	return &cp
}
