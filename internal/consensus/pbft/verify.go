package pbft

import (
	"github.com/poexec/poe/internal/network"
)

// PBFT's hook into the parallel authentication pipeline: broadcast
// authenticators, per-request client signatures, and (once the pre-prepare
// has registered the slot digest) prepare/commit shares are verified on
// worker goroutines before dispatch. See the poe package's verify.go for the
// pipeline's ownership and concurrency rules.

// Share-payload kinds in the pipeline's digest table.
const (
	kindPrepare uint8 = 0 // h = D(k||v||D(batch))
	kindCommit  uint8 = 1 // D("pbft-commit" || h)
)

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *PrePrepare:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		cp := *m
		cp.Batch = m.Batch.Clone()
		env.Msg = &cp
		if !rt.VerifyBroadcast(env.From.Replica(), cp.SignedPayload(), cp.Auth) {
			return false
		}
		return rt.VerifyBatch(&cp.Batch)
	case *Prepare:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindPrepare, m.View, m.Seq, m.Share)
	case *Commit:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindCommit, m.View, m.Seq, m.Share)
	case *VCRequest:
		env.Msg = cloneVCRequest(m)
		return true
	case *NVPropose:
		cp := *m
		cp.Requests = make([]VCRequest, len(m.Requests))
		for i := range m.Requests {
			cp.Requests[i] = *cloneVCRequest(&m.Requests[i])
		}
		env.Msg = &cp
		return true
	}
	return true
}

// cloneVCRequest gives the replica its own copy of the prepared entries so
// digest memoization stays local; signatures and certificates are validated
// by the view-change path on the event loop (rare, off the normal case).
func cloneVCRequest(m *VCRequest) *VCRequest {
	cp := *m
	cp.Prepared = append([]PreparedEntry(nil), m.Prepared...)
	for i := range cp.Prepared {
		cp.Prepared[i].Batch = cp.Prepared[i].Batch.Clone()
		cp.Prepared[i].Batch.MemoizeDigests()
	}
	return &cp
}
