package zyzzyva

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

type cluster struct {
	t        *testing.T
	net      *network.ChanNet
	ring     *crypto.KeyRing
	replicas []*Replica
	cfgs     []protocol.Config
}

func startCluster(t *testing.T, n, f int, scheme crypto.Scheme) *cluster {
	t.Helper()
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("test-seed"))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, net: net, ring: ring}
	for i := 0; i < n; i++ {
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: scheme,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 32, CheckpointInterval: 8,
			ViewTimeout: 300 * time.Millisecond,
		}
		tr := net.Join(types.ReplicaNode(cfg.ID))
		r, err := New(cfg, ring, tr, Options{})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
		go r.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return c
}

func (c *cluster) newClient(i int, specTimeout time.Duration) *Client {
	c.t.Helper()
	cfg := c.cfgs[0]
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	cl, err := NewClient(ClientConfig{
		ID: id, N: cfg.N, F: cfg.F, Scheme: cfg.Scheme,
		SpecTimeout: specTimeout,
	}, c.ring, c.net.Join(types.ClientNode(id)))
	if err != nil {
		c.t.Fatalf("client: %v", err)
	}
	cl.Start(context.Background())
	return cl
}

func writeOp(key, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

func TestFastPath(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	cl := c.newClient(0, 400*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Fast path should complete all 20 without a single spec timeout.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fast path too slow: %v", elapsed)
	}
	// All replicas executed speculatively and agree.
	var digests []types.Digest
	for _, r := range c.replicas {
		if r.Runtime().Exec.LastExecuted() < 20 {
			t.Fatalf("replica behind: %d", r.Runtime().Exec.LastExecuted())
		}
		digests = append(digests, r.Runtime().Exec.StateDigest())
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			t.Fatal("state divergence on fast path")
		}
	}
}

func TestSlowPathUnderBackupFailure(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	// One crashed backup breaks the fast path: the client must fall back to
	// commit certificates, which is exactly the paper's Fig 9(a) collapse.
	c.net.Crash(types.ReplicaNode(3))
	cl := c.newClient(0, 150*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d via slow path: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		r := c.replicas[i]
		if r.Runtime().Exec.LastExecuted() < 5 {
			t.Fatalf("replica %d behind after slow path", i)
		}
	}
}

func TestPrimaryFailureViewChange(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC)
	cl := c.newClient(0, 150*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("pre%d", i), "v")); err != nil {
			t.Fatalf("submit pre-%d: %v", i, err)
		}
	}
	c.net.Crash(types.ReplicaNode(0))
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("post%d", i), "v")); err != nil {
			t.Fatalf("submit post-%d: %v", i, err)
		}
	}
	for i := 1; i < 4; i++ {
		if c.replicas[i].View() == 0 {
			t.Fatalf("replica %d did not change view", i)
		}
	}
}
