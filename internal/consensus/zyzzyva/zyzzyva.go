// Package zyzzyva implements Zyzzyva (Kotla et al., SOSP'07), the paper's
// speculative twin-path baseline (§IV-A): in the fast path the primary
// orders a request with a single ORDER-REQ message, replicas execute it
// immediately — before any agreement — and reply to the client, which
// completes only when all n replies match. Even one crashed replica breaks
// the fast path: the client times out, assembles a commit certificate from
// nf = n − f matching speculative responses, and runs the slow path
// (COMMIT / LOCAL-COMMIT) for every request, which is what collapses
// Zyzzyva's throughput in the paper's single-failure experiments.
//
// The view change follows the same longest-history scheme as PoE but, true
// to the original protocol (and to the paper's Fig 1 "unsafe" annotation and
// [10]), speculative histories carry no certificates, so a faulty replica
// can lie about its history during a view change. We reproduce the protocol
// as evaluated, not a corrected variant.
package zyzzyva

import (
	"context"
	"sort"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// ledgerBlock aliases ledger.Block; Zyzzyva's history digests are ledger
// block hashes.
type ledgerBlock = ledger.Block

func blockHash(b ledger.Block) types.Digest { return b.Hash() }

// OrderReq is the primary's ordering message: sequence number, batch, and
// the expected speculative history digest after executing it.
type OrderReq struct {
	View    types.View
	Seq     types.SeqNum
	History types.Digest // h_k = D(h_{k-1} || d_k)
	Batch   types.Batch
	Auth    [][]byte
}

// SignedPayload returns the bytes covered by the authenticator.
func (m *OrderReq) SignedPayload() []byte {
	bd := m.Batch.Digest()
	d := types.DigestConcat([]byte("zyz-order"), u64(uint64(m.View)), u64(uint64(m.Seq)), bd[:], m.History[:])
	return d[:]
}

// specPayload is the payload replicas sign in speculative-response shares;
// nf of them form the client's commit certificate. The history digest is a
// ledger block hash, which already binds the batch digest and the whole
// prefix before it.
func specPayload(seq types.SeqNum, history types.Digest) []byte {
	d := types.DigestConcat([]byte("zyz-spec"), u64(uint64(seq)), history[:])
	return d[:]
}

// CommitReq is the client's slow-path message: a commit certificate of nf
// speculative-response shares proving that nf replicas speculatively
// executed the same history prefix.
type CommitReq struct {
	Client    types.ClientID
	ClientSeq uint64
	Seq       types.SeqNum
	History   types.Digest
	Shares    []crypto.Share
}

// LocalCommit is a replica's acknowledgement of a commit certificate.
type LocalCommit struct {
	From      types.ReplicaID
	ClientSeq uint64
	Seq       types.SeqNum
	Tag       []byte
}

// VCRequest mirrors PoE's view-change request but its execution summary is
// uncertified (speculative execution produces no certificates).
type VCRequest struct {
	From      types.ReplicaID
	View      types.View
	StableSeq types.SeqNum
	Executed  []types.ExecRecord
	Sig       []byte
}

// SignedPayload returns the bytes covered by the view-change signature.
func (m *VCRequest) SignedPayload() []byte {
	parts := [][]byte{[]byte("zyz-vc"), u64(uint64(m.From)), u64(uint64(m.View)), u64(uint64(m.StableSeq))}
	for i := range m.Executed {
		e := &m.Executed[i]
		parts = append(parts, u64(uint64(e.Seq)), e.Digest[:])
	}
	d := types.DigestConcat(parts...)
	return d[:]
}

// NVPropose is the new primary's new-view message.
type NVPropose struct {
	NewView  types.View
	Requests []VCRequest
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &OrderReq{} })
	wire.Register(func() wire.Message { return &CommitReq{} })
	wire.Register(func() wire.Message { return &LocalCommit{} })
	wire.Register(func() wire.Message { return &VCRequest{} })
	wire.Register(func() wire.Message { return &NVPropose{} })
}

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// Options configure a Zyzzyva replica.
type Options struct {
	protocol.RuntimeOptions
	// Adversary makes this replica a Byzantine primary per the shared
	// cross-protocol spec: targeted backups receive a conflicting ORDER-REQ
	// variant whose history digest is re-derived for the variant batch —
	// so victims speculatively execute it and genuinely diverge, the attack
	// the rollback machinery of §III exists for — or no ORDER-REQ at all.
	// Nil means honest.
	Adversary *protocol.AdversarySpec
	Tick      time.Duration
}

// Replica is one Zyzzyva replica.
type Replica struct {
	rt  *protocol.Runtime
	adv *protocol.AdversarySpec

	view        types.View
	status      status
	nextPropose types.SeqNum
	orders      map[types.SeqNum]*OrderReq

	// primaryHistories caches the primary's predicted history digests for
	// in-flight (proposed but not yet executed) sequence numbers. The
	// history digest of sequence number k is the ledger block hash at k, so
	// histories are identical on all non-faulty replicas by construction
	// and survive view changes and checkpoints.
	primaryHistories map[types.SeqNum]types.Digest

	committedStable types.SeqNum // highest seq covered by a commit certificate

	pendingReqs  map[types.Digest]pendingReq
	lastProgress time.Time
	curTimeout   time.Duration

	vcTarget  types.View
	vcStarted time.Time
	vcResent  time.Time
	vcVotes   map[types.View]map[types.ReplicaID]*VCRequest
	sentVC    map[types.View]bool
	lastNV    *NVPropose

	tick time.Duration
}

type pendingReq struct {
	req   types.Request
	since time.Time
}

// New creates a Zyzzyva replica.
func New(cfg protocol.Config, ring *crypto.KeyRing, net network.Transport, opts Options) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := protocol.NewRuntime(cfg, ring, net, opts.RuntimeOptions)
	tick := opts.Tick
	if tick == 0 {
		// The tick drives both failure detection (needs ≲ ViewTimeout/4)
		// and batch-linger flushing (needs milliseconds).
		tick = cfg.ViewTimeout / 4
		if tick > 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
	}
	r := &Replica{
		rt:               rt,
		adv:              opts.Adversary,
		nextPropose:      rt.Exec.LastExecuted() + 1,
		orders:           make(map[types.SeqNum]*OrderReq),
		primaryHistories: make(map[types.SeqNum]types.Digest),
		pendingReqs:      make(map[types.Digest]pendingReq),
		lastProgress:     time.Now(),
		curTimeout:       cfg.ViewTimeout,
		vcVotes:          make(map[types.View]map[types.ReplicaID]*VCRequest),
		sentVC:           make(map[types.View]bool),
		tick:             tick,
	}
	rt.Sync.AfterInstall = r.afterInstall
	if rt.RecoveredSeq > 0 {
		// Crash-restart: resume sequencing after the durably recovered
		// prefix and rejoin in the view it was executed in. Zyzzyva's
		// catch-up is its view change — the NV-PROPOSE carries the
		// executed records a restarted replica is missing — so no
		// proactive fetch is issued here; buffered order requests above
		// the gap trigger the suspicion timer that gets us there.
		r.view = rt.Exec.Chain().Head().View
		r.committedStable = rt.Exec.StableCheckpointSeq()
	}
	return r, nil
}

// Runtime exposes the replica runtime.
func (r *Replica) Runtime() *protocol.Runtime { return r.rt }

// View returns the current view (racy while running; for tests).
func (r *Replica) View() types.View { return r.view }

// Run processes messages until ctx is cancelled. Inbound messages pass
// through the parallel authentication pipeline (verify.go); outbound
// order requests, speculative-response shares, checkpoint votes, and reply
// MACs are signed on the egress pipeline, whose Local channel loops deferred
// self-votes back onto the loop. The loop below performs no asymmetric
// crypto of its own in either direction on the normal-case path.
func (r *Replica) Run(ctx context.Context) {
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	inbox := r.rt.StartPipeline(ctx, r.verifyInbound)
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.rt.Metrics.MessagesIn.Add(1)
			r.dispatch(env)
		case fn := <-r.rt.Egress.Local():
			fn()
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) dispatch(env network.Envelope) {
	switch m := env.Msg.(type) {
	case *protocol.ClientRequest:
		r.onClientRequest(env.From, &m.Req)
	case *protocol.ForwardRequest:
		r.onForwardRequest(&m.Req)
	case *protocol.ReadRequest:
		// Zyzzyva does not implement the fast read path
		// (protocol.ErrReadPathUnsupported): tiered reads are ordered like
		// any other request. They are dedup-exempt end to end, so their
		// separate client-local sequence space cannot collide with writes.
		r.fallbackRead(&m.Req)
	case *protocol.LeaseGrant:
		// No lease machinery without the fast read path; grants are inert.
	case *OrderReq:
		if env.From.IsReplica() {
			r.handleOrderReq(env.From.Replica(), m)
		}
	case *CommitReq:
		if env.From.IsClient() {
			r.onCommitReq(m)
		}
	case *protocol.Checkpoint:
		r.rt.OnCheckpoint(m)
	case *protocol.Fetch:
		r.rt.HandleFetch(m)
	case *protocol.SnapshotRequest:
		r.rt.HandleSnapshotRequest(m)
	case *protocol.SnapshotOffer:
		r.rt.Sync.OnOffer(m)
	case *protocol.SnapshotChunk:
		r.rt.Sync.OnChunk(m)
	case *VCRequest:
		r.onVCRequest(m)
	case *NVPropose:
		if env.From.IsReplica() {
			r.onNVPropose(env.From.Replica(), m)
		}
	}
}

func (r *Replica) isPrimary() bool { return r.rt.Cfg.IsPrimary(r.view) }

// --- client requests ---

func (r *Replica) onClientRequest(from types.NodeID, req *types.Request) {
	if !from.IsClient() || req.Txn.Client != from.Client() {
		return
	}
	// The request signature was checked by the authentication pipeline.
	if r.rt.ReplayReply(req) {
		return
	}
	if r.status != statusNormal {
		r.trackPending(req)
		return
	}
	if r.isPrimary() {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.trackPending(req)
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

func (r *Replica) onForwardRequest(req *types.Request) {
	if r.status != statusNormal || !r.isPrimary() {
		return
	}
	if r.rt.ReplayReply(req) {
		return
	}
	r.rt.Batcher.Add(*req)
	r.proposeReady(false)
}

// fallbackRead routes a tiered read through the ordering pipeline: the
// primary batches it; a backup forwards it.
func (r *Replica) fallbackRead(req *types.Request) {
	r.rt.Metrics.ReadFallbacks.Add(1)
	if r.isPrimary() && r.status == statusNormal {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

func (r *Replica) trackPending(req *types.Request) {
	d := req.Digest()
	if _, ok := r.pendingReqs[d]; !ok {
		r.pendingReqs[d] = pendingReq{req: *req, since: time.Now()}
	}
}

// --- normal case (fast path) ---

func (r *Replica) proposeReady(force bool) {
	if !r.isPrimary() || r.status != statusNormal {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	for r.nextPropose <= lastExec+types.SeqNum(r.rt.Cfg.Window) {
		batch, ok := r.rt.Batcher.Take(force)
		if !ok {
			return
		}
		seq := r.nextPropose
		r.nextPropose++
		// The history digest for seq is the ledger block hash the batch
		// will produce; the primary predicts it for in-flight proposals.
		bd := batch.Digest()
		prev := r.prevHistory(seq)
		hist := blockHash(ledgerBlock{Seq: seq, Digest: bd, View: r.view, PrevHash: prev})
		r.primaryHistories[seq] = hist
		m := &OrderReq{View: r.view, Seq: seq, History: hist, Batch: batch}
		r.rt.Metrics.ProposedBatches.Add(1)
		if r.adv == nil {
			payload := m.SignedPayload() // memoizes the batch digest on the loop
			r.rt.Egress.Enqueue(
				func() { m.Auth = r.rt.AuthBroadcast(payload) },
				func() { r.rt.Broadcast(m) },
				nil)
		} else {
			// Byzantine variants sign inline: not the hot path.
			m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
			r.broadcastOrderReq(m, prev)
		}
		r.handleOrderReq(r.rt.Cfg.ID, m)
	}
}

// broadcastOrderReq sends the ordering message to every backup, applying the
// Byzantine adversary spec if one is installed. An equivocation variant
// carries a different (validly signed) batch and the matching re-derived
// history digest, so its receivers speculatively execute it — Zyzzyva's
// replicas diverge until the view change rolls the losers back.
func (r *Replica) broadcastOrderReq(m *OrderReq, prev types.Digest) {
	if r.adv == nil {
		r.rt.Broadcast(m)
		return
	}
	var variant *OrderReq
	for i := 0; i < r.rt.Cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == r.rt.Cfg.ID {
			continue
		}
		switch r.adv.ActionFor(id) {
		case protocol.ProposeSilence:
		case protocol.ProposeEquivocate:
			if variant == nil {
				vb := protocol.EquivocateBatch(m.Batch)
				v := *m
				v.Batch = vb
				v.History = blockHash(ledgerBlock{Seq: m.Seq, Digest: vb.Digest(), View: m.View, PrevHash: prev})
				v.Auth = r.rt.AuthBroadcast(v.SignedPayload())
				variant = &v
			}
			r.rt.SendReplica(id, variant)
		default:
			r.rt.SendReplica(id, m)
		}
	}
}

// prevHistory returns the history digest a proposal at seq chains from:
// either a cached in-flight prediction or the executed ledger.
func (r *Replica) prevHistory(seq types.SeqNum) types.Digest {
	if h, ok := r.primaryHistories[seq-1]; ok {
		return h
	}
	if b, ok := r.rt.Exec.Chain().Get(seq - 1); ok {
		return blockHash(b)
	}
	return blockHash(r.rt.Exec.Chain().Head())
}

func (r *Replica) handleOrderReq(from types.ReplicaID, m *OrderReq) {
	cfg := r.rt.Cfg
	if r.status != statusNormal || m.View != r.view || from != cfg.Primary(r.view) {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec || m.Seq > lastExec+types.SeqNum(8*cfg.Window) {
		return
	}
	if _, dup := r.orders[m.Seq]; dup {
		return
	}
	// Authenticator and client signatures were verified by the
	// authentication pipeline before dispatch.
	r.orders[m.Seq] = m
	r.drainOrders()
}

// drainOrders speculatively executes buffered order requests in sequence
// order, verifying the history chain as it goes.
func (r *Replica) drainOrders() {
	for {
		next := r.rt.Exec.LastExecuted() + 1
		m, ok := r.orders[next]
		if !ok {
			return
		}
		delete(r.orders, next)
		head := r.rt.Exec.Chain().Head()
		want := blockHash(ledgerBlock{Seq: m.Seq, Digest: m.Batch.Digest(), View: m.View, PrevHash: blockHash(head)})
		if want != m.History {
			// The primary mis-chained the history: treat as failure.
			r.startViewChange(r.view + 1)
			return
		}
		r.lastProgress = time.Now()
		events := r.rt.Exec.Commit(m.Seq, m.View, m.Batch, nil)
		r.afterExecution(events)
		r.proposeReady(false)
	}
}

// afterExecution performs the per-event bookkeeping shared by the normal
// case, fetched records, and snapshot installs.
func (r *Replica) afterExecution(events []protocol.Executed) {
	for _, ev := range events {
		r.rt.Metrics.ExecutedBatches.Add(1)
		r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
		r.informSpeculative(ev)
		for i := range ev.Rec.Batch.Requests {
			delete(r.pendingReqs, ev.Rec.Batch.Requests[i].Digest())
		}
		delete(r.primaryHistories, ev.Rec.Seq)
		r.rt.MaybeCheckpoint(ev.Rec.Seq)
	}
}

// afterInstall resumes the protocol around an installed snapshot: buffered
// order requests the snapshot superseded are discarded, and sequencing and
// view jump forward. The history digest needs no explicit repair — it is
// derived from the ledger head, which InstallSnapshot re-rooted at the
// certified block. No record fetch bridges snapshot → live head: fetched
// records are uncertified speculative history, and adopting a suffix a peer
// later rolls back would leave this replica divergent if it misses that
// view change. Zyzzyva's own catch-up is the view change — the NV-PROPOSE
// carries the executed records a lagging replica is missing — which the
// order-gap suspicion timer reaches on its own.
func (r *Replica) afterInstall(snap *storage.Snapshot, events []protocol.Executed) {
	for seq := range r.orders {
		if seq <= snap.Seq {
			delete(r.orders, seq)
		}
	}
	for seq := range r.primaryHistories {
		if seq <= snap.Seq {
			delete(r.primaryHistories, seq)
		}
	}
	if r.nextPropose <= snap.Seq {
		r.nextPropose = snap.Seq + 1
	}
	if r.committedStable < snap.Seq {
		r.committedStable = snap.Seq
	}
	if snap.Head.View > r.view {
		r.view = snap.Head.View
		r.status = statusNormal
	}
	r.lastProgress = time.Now()
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.afterExecution(events)
	r.drainOrders()
}

// history returns the current speculative history digest: the ledger head's
// block hash.
func (r *Replica) historyDigest() types.Digest {
	head := r.rt.Exec.Chain().Head()
	return blockHash(head)
}

// informSpeculative stages speculative responses carrying the history digest
// and this replica's share over the ordering (the client's commit
// certificate material). The history digest is fixed on the event loop; the
// threshold share — one Ed25519 sign per batch — and the per-reply MACs are
// computed on the egress pool, and on a durable replica the sends wait for
// the batch's WAL group.
func (r *Replica) informSpeculative(ev protocol.Executed) {
	hist := r.historyDigest()
	payload := specPayload(ev.Rec.Seq, hist)
	byKey := make(map[types.ClientID]map[uint64]types.Result, len(ev.Results))
	for _, res := range ev.Results {
		inner, ok := byKey[res.Client]
		if !ok {
			inner = make(map[uint64]types.Result)
			byKey[res.Client] = inner
		}
		inner[res.Seq] = res
	}
	replies := make([]protocol.Reply, 0, len(ev.Rec.Batch.Requests))
	for i := range ev.Rec.Batch.Requests {
		req := &ev.Rec.Batch.Requests[i]
		res, ok := byKey[req.Txn.Client][req.Txn.Seq]
		if !ok {
			r.rt.ReplayReply(req)
			continue
		}
		replies = append(replies, protocol.Reply{Client: req.Txn.Client, Msg: &protocol.Inform{
			From:        r.rt.Cfg.ID,
			Digest:      req.Digest(),
			View:        ev.Rec.View,
			Seq:         ev.Rec.Seq,
			ClientSeq:   req.Txn.Seq,
			Values:      res.Values,
			Speculative: true,
			OrderProof:  hist,
		}})
	}
	r.rt.SendReplies(ev.Rec.Seq, replies, false, func() {
		share := r.rt.TS.Share(payload)
		for _, rp := range replies {
			rp.Msg.Share = share
		}
	})
}

// --- slow path ---

func (r *Replica) onCommitReq(m *CommitReq) {
	// Verify nf distinct valid shares over the claimed ordering.
	payload := specPayload(m.Seq, m.History)
	seen := make(map[types.ReplicaID]bool, len(m.Shares))
	valid := 0
	for _, sh := range m.Shares {
		if seen[sh.Signer] || !r.rt.TS.VerifyShare(payload, sh) {
			continue
		}
		seen[sh.Signer] = true
		valid++
	}
	if valid < r.rt.Cfg.NF() {
		return
	}
	if m.Seq > r.committedStable {
		r.committedStable = m.Seq
	}
	lc := &LocalCommit{From: r.rt.Cfg.ID, ClientSeq: m.ClientSeq, Seq: m.Seq}
	d := types.DigestConcat([]byte("zyz-lc"), u64(uint64(m.ClientSeq)), u64(uint64(m.Seq)))
	lc.Tag = r.rt.Keys.MAC(types.ClientNode(m.Client), d[:])
	r.rt.Net.Send(types.ClientNode(m.Client), lc)
}

// --- housekeeping & view change ---

func (r *Replica) onTick() {
	now := time.Now()
	// Snapshot state transfer runs in every status: a replica too far behind
	// to receive in-window ORDER-REQs needs it exactly when the normal case
	// (and Zyzzyva's view-change catch-up) cannot reach it.
	r.rt.Sync.Tick(now)
	switch r.status {
	case statusNormal:
		if r.isPrimary() && r.rt.Batcher.Ripe(now) {
			r.proposeReady(true)
		}
		if r.suspect(now) {
			r.startViewChange(r.view + 1)
		}
	case statusViewChange:
		if now.Sub(r.vcStarted) > r.curTimeout {
			r.startViewChange(r.vcTarget + 1)
		} else if now.Sub(r.vcResent) > r.rt.Cfg.ViewTimeout {
			r.broadcastVC(r.vcTarget)
			r.maybeProposeNewView(r.vcTarget)
		}
	}
}

func (r *Replica) suspect(now time.Time) bool {
	if now.Sub(r.lastProgress) <= r.curTimeout {
		return false
	}
	return len(r.pendingReqs) > 0 || len(r.orders) > 0
}

func (r *Replica) startViewChange(target types.View) {
	if target <= r.view {
		return
	}
	if r.status == statusViewChange && target <= r.vcTarget {
		return
	}
	r.status = statusViewChange
	r.vcTarget = target
	r.vcStarted = time.Now()
	r.curTimeout *= 2
	r.rt.Metrics.ViewChanges.Add(1)
	if r.sentVC[target] {
		return
	}
	r.sentVC[target] = true
	r.broadcastVC(target)
	r.maybeProposeNewView(target)
}

// broadcastVC signs and broadcasts this replica's view-change request for
// target. Called on entry and then periodically while the view change is
// pending: VIEW-CHANGE messages lost to a partition are not otherwise
// retransmitted, and the new-view primary cannot assemble its quorum
// without them.
func (r *Replica) broadcastVC(target types.View) {
	r.vcResent = time.Now()
	stable := r.rt.Exec.StableCheckpointSeq()
	req := &VCRequest{
		From:      r.rt.Cfg.ID,
		View:      target - 1,
		StableSeq: stable,
		Executed:  r.rt.Exec.ExecutedSince(stable),
	}
	req.Sig = r.rt.Keys.Sign(req.SignedPayload())
	r.recordVCVote(req)
	r.rt.Broadcast(req)
}

func (r *Replica) recordVCVote(m *VCRequest) {
	target := m.View + 1
	votes, ok := r.vcVotes[target]
	if !ok {
		votes = make(map[types.ReplicaID]*VCRequest)
		r.vcVotes[target] = votes
	}
	if _, dup := votes[m.From]; !dup {
		votes[m.From] = m
	}
}

func (r *Replica) validateVCRequest(m *VCRequest) bool {
	if m.From < 0 || int(m.From) >= r.rt.Cfg.N {
		return false
	}
	if !r.rt.Keys.VerifyFrom(types.ReplicaNode(m.From), m.SignedPayload(), m.Sig) {
		return false
	}
	next := m.StableSeq + 1
	for i := range m.Executed {
		e := &m.Executed[i]
		if e.Seq != next || e.Digest != e.Batch.Digest() {
			return false
		}
		next++
		// NOTE: no certificate to verify — Zyzzyva's speculative histories
		// are uncertified, the root of its known unsafety [10].
	}
	return true
}

func (r *Replica) onVCRequest(m *VCRequest) {
	target := m.View + 1
	if target <= r.view {
		if r.lastNV != nil && r.lastNV.NewView >= target && r.rt.Cfg.IsPrimary(r.lastNV.NewView) {
			r.rt.SendReplica(m.From, r.lastNV)
		}
		return
	}
	if !r.validateVCRequest(m) {
		return
	}
	r.recordVCVote(m)
	if len(r.vcVotes[target]) >= r.rt.Cfg.FPlus1() {
		if r.status == statusNormal || r.vcTarget < target {
			r.startViewChange(target)
		}
	}
	r.joinDivergedViewChange()
	r.maybeProposeNewView(target)
}

// joinDivergedViewChange applies the Castro-Liskov liveness rule: when f+1
// distinct replicas are view-changing to views beyond this replica's own
// target, at least one of them is honest — adopt the smallest such view
// immediately instead of waiting out the (exponentially backed-off) local
// timer. Without it a storm of staggered leader failures can strand the
// replicas on pairwise-different targets, none of which ever gathers a
// quorum.
func (r *Replica) joinDivergedViewChange() {
	cur := r.view
	if r.status == statusViewChange && r.vcTarget > cur {
		cur = r.vcTarget
	}
	voters := make(map[types.ReplicaID]types.View)
	for target, votes := range r.vcVotes {
		if target <= cur {
			continue
		}
		for id := range votes {
			if t, ok := voters[id]; !ok || target < t {
				voters[id] = target
			}
		}
	}
	if len(voters) < r.rt.Cfg.FPlus1() {
		return
	}
	join := types.View(0)
	for _, target := range voters {
		if join == 0 || target < join {
			join = target
		}
	}
	r.startViewChange(join)
	r.maybeProposeNewView(join)
}

func (r *Replica) maybeProposeNewView(target types.View) {
	cfg := r.rt.Cfg
	if !cfg.IsPrimary(target) || r.status != statusViewChange || r.vcTarget != target {
		return
	}
	if r.lastNV != nil && r.lastNV.NewView >= target {
		return
	}
	votes := r.vcVotes[target]
	if len(votes) < cfg.NF() {
		return
	}
	ids := make([]types.ReplicaID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nv := &NVPropose{NewView: target}
	for _, id := range ids[:cfg.NF()] {
		nv.Requests = append(nv.Requests, *votes[id])
	}
	r.lastNV = nv
	r.rt.Broadcast(nv)
	r.applyNVPropose(nv)
}

func (r *Replica) onNVPropose(from types.ReplicaID, m *NVPropose) {
	if from != r.rt.Cfg.Primary(m.NewView) {
		return
	}
	if m.NewView < r.view || (m.NewView == r.view && r.status == statusNormal) {
		return
	}
	if len(m.Requests) < r.rt.Cfg.NF() {
		r.startViewChange(m.NewView + 1)
		return
	}
	for i := range m.Requests {
		if m.Requests[i].View != m.NewView-1 || !r.validateVCRequest(&m.Requests[i]) {
			r.startViewChange(m.NewView + 1)
			return
		}
	}
	r.applyNVPropose(m)
}

func (r *Replica) applyNVPropose(m *NVPropose) {
	best := &m.Requests[0]
	bestEnd := best.StableSeq + types.SeqNum(len(best.Executed))
	for i := 1; i < len(m.Requests); i++ {
		req := &m.Requests[i]
		end := req.StableSeq + types.SeqNum(len(req.Executed))
		if end > bestEnd || (end == bestEnd && req.From < best.From) {
			best, bestEnd = req, end
		}
	}
	kmax := bestEnd

	myLast := r.rt.Exec.LastExecuted()
	rollbackTo := myLast
	if kmax < rollbackTo {
		rollbackTo = kmax
	}
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq > rollbackTo {
			break
		}
		if rec, ok := r.rt.Exec.Record(e.Seq); ok && rec.Digest != e.Digest {
			rollbackTo = e.Seq - 1
			break
		}
	}
	if rollbackTo < myLast {
		if err := r.rt.Exec.Rollback(rollbackTo); err == nil {
			r.rt.Metrics.Rollbacks.Add(1)
		}
	}
	var events [][]protocol.Executed
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq <= r.rt.Exec.LastExecuted() {
			continue
		}
		evs := r.rt.Exec.Commit(e.Seq, e.View, e.Batch, nil)
		if len(evs) > 0 {
			events = append(events, evs)
		}
	}
	r.enterView(m.NewView, kmax)
	for _, evs := range events {
		for _, ev := range evs {
			r.rt.Metrics.ExecutedBatches.Add(1)
			r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
			r.informSpeculative(ev)
		}
	}
}

func (r *Replica) enterView(v types.View, kmax types.SeqNum) {
	r.view = v
	r.status = statusNormal
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.lastProgress = time.Now()
	r.rt.Metrics.ViewChangesDone.Add(1)
	r.orders = make(map[types.SeqNum]*OrderReq)
	r.primaryHistories = make(map[types.SeqNum]types.Digest)
	for target := range r.vcVotes {
		if target <= v {
			delete(r.vcVotes, target)
		}
	}
	for target := range r.sentVC {
		if target <= v {
			delete(r.sentVC, target)
		}
	}
	if r.rt.Cfg.IsPrimary(v) {
		r.nextPropose = kmax + 1
		if r.rt.Exec.LastExecuted() >= r.nextPropose {
			r.nextPropose = r.rt.Exec.LastExecuted() + 1
		}
		r.rt.Batcher.ResetProposed()
		for _, p := range r.pendingReqs {
			r.rt.Batcher.Add(p.req)
		}
		r.proposeReady(true)
	} else {
		for _, p := range r.pendingReqs {
			r.rt.SendReplica(r.rt.Cfg.Primary(v), &protocol.ForwardRequest{Req: p.req})
		}
	}
}
