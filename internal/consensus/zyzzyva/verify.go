package zyzzyva

import (
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// Zyzzyva's hook into the parallel authentication pipeline: order-request
// authenticators, per-request client signatures, and the share bundles of
// client commit certificates are verified on worker goroutines before
// dispatch. See the poe package's verify.go for the pipeline's ownership and
// concurrency rules.

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *OrderReq:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		p := m
		if !env.Owned {
			cp := *m
			cp.Batch = m.Batch.Clone()
			env.Msg = &cp
			p = &cp
		}
		if !rt.VerifyBroadcast(env.From.Replica(), p.SignedPayload(), p.Auth) {
			return false
		}
		return rt.VerifyBatch(&p.Batch)
	case *CommitReq:
		if !env.From.IsClient() {
			return false
		}
		// The commit certificate's shares sign specPayload(seq, history) —
		// both taken from the message itself — so the whole certificate is
		// verifiable here. Drop requests that cannot reach the nf quorum;
		// the handler re-counts through the share memo.
		payload := specPayload(m.Seq, m.History)
		seen := make(map[types.ReplicaID]bool, len(m.Shares))
		valid := 0
		for _, sh := range m.Shares {
			if seen[sh.Signer] || !rt.TS.VerifyShare(payload, sh) {
				continue
			}
			seen[sh.Signer] = true
			valid++
		}
		return valid >= rt.Cfg.NF()
	case *VCRequest:
		env.Msg = ownVCRequest(m, env.Owned)
		return true
	case *NVPropose:
		if env.Owned {
			for i := range m.Requests {
				ownVCRequest(&m.Requests[i], true)
			}
			return true
		}
		cp := *m
		cp.Requests = make([]VCRequest, len(m.Requests))
		for i := range m.Requests {
			cp.Requests[i] = *ownVCRequest(&m.Requests[i], false)
		}
		env.Msg = &cp
		return true
	}
	return true
}

// ownVCRequest gives the replica its own copy of the (uncertified)
// execution records so digest memoization stays local — wire-decoded
// (owned) requests memoize in place. The signature is validated by the
// view-change path on the event loop.
func ownVCRequest(m *VCRequest, owned bool) *VCRequest {
	if !owned {
		cp := *m
		cp.Executed = types.CloneRecords(m.Executed)
		m = &cp
	}
	for i := range m.Executed {
		m.Executed[i].Batch.MemoizeDigests()
	}
	return m
}
