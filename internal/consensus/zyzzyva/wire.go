package zyzzyva

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for Zyzzyva's messages (ids in wire/ids.go).

// WireID implements wire.Message.
func (m *OrderReq) WireID() uint16 { return wire.IDZyzOrderReq }

// MarshalTo implements wire.Message.
func (m *OrderReq) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = types.AppendDigest(buf, m.History)
	buf = m.Batch.AppendWire(buf)
	return wire.AppendBytesSlice(buf, m.Auth)
}

// Unmarshal implements wire.Message.
func (m *OrderReq) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.History = types.ReadDigest(r)
	m.Batch.ReadWire(r)
	m.Auth = r.BytesSlice()
	return r.Close()
}

// WireID implements wire.Message.
func (m *CommitReq) WireID() uint16 { return wire.IDZyzCommitReq }

// MarshalTo implements wire.Message.
func (m *CommitReq) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.Client))
	buf = wire.AppendU64(buf, m.ClientSeq)
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = types.AppendDigest(buf, m.History)
	return crypto.AppendShares(buf, m.Shares)
}

// Unmarshal implements wire.Message.
func (m *CommitReq) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.Client = types.ClientID(r.I32())
	m.ClientSeq = r.U64()
	m.Seq = types.SeqNum(r.U64())
	m.History = types.ReadDigest(r)
	m.Shares = crypto.ReadShares(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *LocalCommit) WireID() uint16 { return wire.IDZyzLocalCommit }

// MarshalTo implements wire.Message.
func (m *LocalCommit) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, m.ClientSeq)
	buf = wire.AppendU64(buf, uint64(m.Seq))
	return wire.AppendBytes(buf, m.Tag)
}

// Unmarshal implements wire.Message.
func (m *LocalCommit) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.ClientSeq = r.U64()
	m.Seq = types.SeqNum(r.U64())
	m.Tag = r.Bytes()
	return r.Close()
}

func appendVCRequest(buf []byte, m *VCRequest) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.StableSeq))
	buf = types.AppendRecords(buf, m.Executed)
	return wire.AppendBytes(buf, m.Sig)
}

func readVCRequest(r *wire.Reader, m *VCRequest) {
	m.From = types.ReplicaID(r.I32())
	m.View = types.View(r.U64())
	m.StableSeq = types.SeqNum(r.U64())
	m.Executed = types.ReadRecords(r)
	m.Sig = r.Bytes()
}

// WireID implements wire.Message.
func (m *VCRequest) WireID() uint16 { return wire.IDZyzVCRequest }

// MarshalTo implements wire.Message.
func (m *VCRequest) MarshalTo(buf []byte) []byte { return appendVCRequest(buf, m) }

// Unmarshal implements wire.Message.
func (m *VCRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readVCRequest(r, m)
	return r.Close()
}

// WireID implements wire.Message.
func (m *NVPropose) WireID() uint16 { return wire.IDZyzNVPropose }

// MarshalTo implements wire.Message.
func (m *NVPropose) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.NewView))
	buf = wire.AppendU32(buf, uint32(len(m.Requests)))
	for i := range m.Requests {
		buf = appendVCRequest(buf, &m.Requests[i])
	}
	return buf
}

// Unmarshal implements wire.Message.
func (m *NVPropose) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.NewView = types.View(r.U64())
	n := r.Count(24)
	if n > 0 {
		m.Requests = make([]VCRequest, n)
		for i := range m.Requests {
			readVCRequest(r, &m.Requests[i])
		}
	} else {
		m.Requests = nil
	}
	return r.Close()
}
