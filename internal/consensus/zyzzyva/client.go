package zyzzyva

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// ClientConfig parameterizes a Zyzzyva client.
type ClientConfig struct {
	ID     types.ClientID
	N, F   int
	Scheme crypto.Scheme
	// SpecTimeout is how long the client waits for all n matching
	// speculative responses before falling back to the commit phase. This
	// is the timeout whose calibration §IV-D discusses (the paper uses 3 s).
	SpecTimeout time.Duration
	// RetryTimeout is how long to wait in the commit phase before
	// retransmitting.
	RetryTimeout time.Duration
}

// Client implements Zyzzyva's client role, which actively participates in
// the protocol: the client is the fast path's only completion point (all n
// matching speculative responses) and drives the slow path by assembling and
// distributing commit certificates. The paper's ingredient I2 discussion
// contrasts this reliance on clients with PoE's design.
type Client struct {
	cfg  ClientConfig
	keys *crypto.NodeKeys
	net  network.Transport

	nextSeq  atomic.Uint64
	viewHint atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]*specWaiter

	started sync.Once
	done    chan struct{}
}

type specWaiter struct {
	full   chan types.Result                            // all n matched
	slow   chan types.Result                            // commit phase completed
	tally  map[specKey]map[types.ReplicaID]crypto.Share // speculative responses
	result map[specKey]types.Result
	lcFrom map[types.ReplicaID]bool // local-commit senders
	lcNeed int
	lcDone bool
}

type specKey struct {
	Digest    types.Digest
	Seq       types.SeqNum
	History   types.Digest
	ValueHash types.Digest
}

// NewClient creates a Zyzzyva client.
func NewClient(cfg ClientConfig, ring *crypto.KeyRing, net network.Transport) (*Client, error) {
	if cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("zyzzyva: need n > 3f, got n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.SpecTimeout == 0 {
		cfg.SpecTimeout = 500 * time.Millisecond
	}
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = cfg.SpecTimeout
	}
	return &Client{
		cfg:     cfg,
		keys:    ring.NodeKeys(types.ClientNode(cfg.ID)),
		net:     net,
		waiters: make(map[uint64]*specWaiter),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the response-processing goroutine (idempotent).
func (c *Client) Start(ctx context.Context) {
	c.started.Do(func() { go c.readLoop(ctx) })
}

// NextSeq allocates a client-local sequence number.
func (c *Client) NextSeq() uint64 { return c.nextSeq.Add(1) }

// ErrClosed mirrors client.ErrClosed.
var ErrClosed = errors.New("zyzzyva: transport closed")

// Submit drives one transaction to completion through the fast or slow path.
func (c *Client) Submit(ctx context.Context, ops []types.Op) (types.Result, error) {
	txn := types.Transaction{Client: c.cfg.ID, Seq: c.NextSeq(), Ops: ops, TimeNanos: time.Now().UnixNano()}
	return c.SubmitTxn(ctx, txn)
}

// SubmitTxn submits a pre-built transaction.
func (c *Client) SubmitTxn(ctx context.Context, txn types.Transaction) (types.Result, error) {
	req := types.Request{Txn: txn}
	if c.cfg.Scheme != crypto.SchemeNone {
		d := req.Digest()
		req.Sig = c.keys.Sign(d[:])
	}
	w := &specWaiter{
		full:   make(chan types.Result, 1),
		slow:   make(chan types.Result, 1),
		tally:  make(map[specKey]map[types.ReplicaID]crypto.Share),
		result: make(map[specKey]types.Result),
		lcFrom: make(map[types.ReplicaID]bool),
		lcNeed: c.cfg.N - c.cfg.F,
	}
	c.mu.Lock()
	c.waiters[txn.Seq] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, txn.Seq)
		c.mu.Unlock()
	}()

	v := types.View(c.viewHint.Load())
	c.net.Send(types.ReplicaNode(v.Primary(c.cfg.N)), &protocol.ClientRequest{Req: req})

	timer := time.NewTimer(c.cfg.SpecTimeout)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return types.Result{}, ctx.Err()
		case <-c.done:
			return types.Result{}, ErrClosed
		case res := <-w.full:
			return res, nil
		case res := <-w.slow:
			return res, nil
		case <-timer.C:
			// The fast path expired. If some key has nf matching spec
			// responses, enter the commit phase; otherwise broadcast the
			// request so replicas forward it and arm failure detection.
			if !c.tryCommitPhase(txn.Seq) {
				network.Broadcast(c.net, c.cfg.N, &protocol.ClientRequest{Req: req}, false)
			}
			timer.Reset(c.cfg.RetryTimeout)
		}
	}
}

// tryCommitPhase sends a commit certificate if any response key reached nf
// matching speculative responses. It reports whether a certificate was sent.
func (c *Client) tryCommitPhase(clientSeq uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.waiters[clientSeq]
	if !ok {
		return false
	}
	for key, votes := range w.tally {
		if len(votes) < c.cfg.N-c.cfg.F {
			continue
		}
		shares := make([]crypto.Share, 0, len(votes))
		for _, sh := range votes {
			shares = append(shares, sh)
		}
		cr := &CommitReq{
			Client:    c.cfg.ID,
			ClientSeq: clientSeq,
			Seq:       key.Seq,
			History:   key.History,
			Shares:    shares,
		}
		network.Broadcast(c.net, c.cfg.N, cr, false)
		return true
	}
	return false
}

func (c *Client) readLoop(ctx context.Context) {
	defer close(c.done)
	inbox := c.net.Inbox()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			if !env.From.IsReplica() {
				continue
			}
			switch m := env.Msg.(type) {
			case *protocol.Inform:
				c.onInform(env.From.Replica(), m)
			case *LocalCommit:
				c.onLocalCommit(m)
			}
		}
	}
}

func (c *Client) onInform(from types.ReplicaID, m *protocol.Inform) {
	if m.From != from || !m.Speculative {
		return
	}
	rk := m.Key()
	if c.cfg.Scheme != crypto.SchemeNone && !c.keys.CheckMAC(types.ReplicaNode(from), rk.Digest[:], m.Tag) {
		return
	}
	for {
		cur := c.viewHint.Load()
		if uint64(m.View) <= cur || c.viewHint.CompareAndSwap(cur, uint64(m.View)) {
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.waiters[m.ClientSeq]
	if !ok {
		return
	}
	// Responses are grouped by (txn digest, seq, history, value hash); the
	// history digest alone is what the commit certificate proves, since it
	// transitively binds the whole ordered prefix.
	key := specKey{Digest: rk.Digest, Seq: m.Seq, History: m.OrderProof, ValueHash: rk.ValueHash}
	votes, okKey := w.tally[key]
	if !okKey {
		votes = make(map[types.ReplicaID]crypto.Share)
		w.tally[key] = votes
		w.result[key] = types.Result{Client: c.cfg.ID, Seq: m.ClientSeq, Values: m.Values}
	}
	votes[from] = m.Share
	if len(votes) >= c.cfg.N {
		select {
		case w.full <- w.result[key]:
		default:
		}
	}
}

func (c *Client) onLocalCommit(m *LocalCommit) {
	d := types.DigestConcat([]byte("zyz-lc"), u64(m.ClientSeq), u64(uint64(m.Seq)))
	if c.cfg.Scheme != crypto.SchemeNone && !c.keys.CheckMAC(types.ReplicaNode(m.From), d[:], m.Tag) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.waiters[m.ClientSeq]
	if !ok || w.lcDone {
		return
	}
	w.lcFrom[m.From] = true
	if len(w.lcFrom) >= w.lcNeed {
		w.lcDone = true
		// Deliver whichever tallied result reached nf speculative votes.
		for key, votes := range w.tally {
			if len(votes) >= c.cfg.N-c.cfg.F {
				select {
				case w.slow <- w.result[key]:
				default:
				}
				return
			}
		}
	}
}
