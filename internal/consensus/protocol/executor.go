package protocol

import (
	"fmt"
	"sort"
	"sync"

	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// Executor is the execute-stage of the replica pipeline (Fig 6 of the
// paper): it accepts batches that the protocol has decided (view-committed,
// prepared, certified — whatever the protocol's rule is) in any order, and
// executes them strictly in sequence order against the store, appending a
// block per batch to the ledger.
//
// For speculative protocols, Rollback reverts the suffix of executed batches
// above a sequence number (store undo log + ledger truncation), implementing
// the paper's ingredient I2.
//
// Executor also performs deterministic client-level deduplication: a
// transaction whose client-local sequence number is not newer than the last
// executed one from that client is skipped (its ops are not re-applied).
// Because the skip decision depends only on executed history, all non-faulty
// replicas skip identically.
type Executor struct {
	mu      sync.Mutex
	kv      *store.KV
	chain   *ledger.Chain
	pending map[types.SeqNum]*decided
	log     map[types.SeqNum]*types.ExecRecord // executed, above the stable checkpoint
	lastCli map[types.ClientID]uint64

	stable types.SeqNum // last stable checkpoint

	// RetainSlack keeps execution records for this many sequence numbers
	// below the stable checkpoint so replicas left in the dark can still
	// catch up via Fetch after the checkpoint stabilized without them.
	// (Deeper darkness would need snapshot transfer, which real systems
	// layer on top of checkpoints.)
	RetainSlack types.SeqNum
}

// Executed reports one batch execution to the replica, which sends INFORMs,
// counts throughput, and triggers checkpoints.
type Executed struct {
	Rec     *types.ExecRecord
	Results []types.Result
}

type decided struct {
	view  types.View
	batch types.Batch
	proof []byte
}

// NewExecutor creates an executor over a store and ledger.
func NewExecutor(kv *store.KV, chain *ledger.Chain) *Executor {
	return &Executor{
		kv:      kv,
		chain:   chain,
		pending: make(map[types.SeqNum]*decided),
		log:     make(map[types.SeqNum]*types.ExecRecord),
		lastCli: make(map[types.ClientID]uint64),
	}
}

// Store returns the underlying key-value store.
func (e *Executor) Store() *store.KV { return e.kv }

// Chain returns the underlying ledger.
func (e *Executor) Chain() *ledger.Chain { return e.chain }

// LastExecuted returns the highest executed sequence number.
func (e *Executor) LastExecuted() types.SeqNum {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kv.LastApplied()
}

// StableCheckpointSeq returns the last stable checkpoint sequence number.
func (e *Executor) StableCheckpointSeq() types.SeqNum {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stable
}

// Commit schedules the batch decided for seq in view view. Batches execute
// as soon as all their predecessors have executed (Fig 3, Line 20). Commit
// is idempotent: re-deciding an already scheduled or executed sequence
// number is a no-op. It returns the executions (possibly several, possibly
// none) this decision unblocked, in order.
func (e *Executor) Commit(seq types.SeqNum, view types.View, batch types.Batch, proof []byte) []Executed {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.kv.LastApplied() {
		return nil
	}
	if _, dup := e.pending[seq]; dup {
		return nil
	}
	e.pending[seq] = &decided{view: view, batch: batch, proof: proof}
	return e.drainLocked()
}

// drainLocked executes contiguous pending batches.
func (e *Executor) drainLocked() []Executed {
	var events []Executed
	for {
		next := e.kv.LastApplied() + 1
		d, ok := e.pending[next]
		if !ok {
			return events
		}
		delete(e.pending, next)
		events = append(events, e.executeLocked(next, d))
	}
}

func (e *Executor) executeLocked(seq types.SeqNum, d *decided) Executed {
	effective := e.dedupLocked(&d.batch)
	results, err := e.kv.Apply(seq, effective)
	if err != nil {
		// Apply can only fail on ordering violations, which drainLocked
		// rules out; treat as a programming error.
		panic(fmt.Sprintf("protocol: executor apply seq %d: %v", seq, err))
	}
	for i := range effective.Requests {
		txn := &effective.Requests[i].Txn
		if txn.Seq > e.lastCli[txn.Client] {
			e.lastCli[txn.Client] = txn.Seq
		}
	}
	digest := d.batch.Digest()
	if _, err := e.chain.Append(seq, digest, d.view, d.proof); err != nil {
		panic(fmt.Sprintf("protocol: ledger append seq %d: %v", seq, err))
	}
	rec := &types.ExecRecord{Seq: seq, View: d.view, Digest: digest, Proof: d.proof, Batch: d.batch}
	e.log[seq] = rec
	return Executed{Rec: rec, Results: results}
}

// Gap reports whether decided batches are waiting on missing predecessors:
// the executor has pending decisions but cannot execute the next sequence
// number. Replicas use it to trigger state transfer (Fetch).
func (e *Executor) Gap() (after types.SeqNum, waiting int, gapped bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pending) == 0 {
		return 0, 0, false
	}
	next := e.kv.LastApplied() + 1
	if _, ok := e.pending[next]; ok {
		return 0, len(e.pending), false
	}
	return e.kv.LastApplied(), len(e.pending), true
}

// dedupLocked filters out transactions already executed for their client.
// Zero-payload batches pass through untouched.
func (e *Executor) dedupLocked(b *types.Batch) *types.Batch {
	if b.ZeroPayload {
		return b
	}
	keep := -1
	for i := range b.Requests {
		if b.Requests[i].Txn.Seq <= e.lastCli[b.Requests[i].Txn.Client] {
			keep = i
			break
		}
	}
	if keep == -1 {
		return b
	}
	eff := &types.Batch{Requests: make([]types.Request, 0, len(b.Requests))}
	for i := range b.Requests {
		if b.Requests[i].Txn.Seq > e.lastCli[b.Requests[i].Txn.Client] {
			eff.Requests = append(eff.Requests, b.Requests[i])
		}
	}
	return eff
}

// AlreadyExecuted reports whether a transaction with the given client-local
// sequence number (or a newer one from the same client) has executed.
// Rotating-leader protocols use it to avoid re-proposing satisfied requests.
func (e *Executor) AlreadyExecuted(client types.ClientID, seq uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return seq <= e.lastCli[client]
}

// Rollback reverts all executed batches above toSeq and discards pending
// decisions above it. The deduplication history is rebuilt from the
// remaining execution log so that rolled-back transactions can execute again.
func (e *Executor) Rollback(toSeq types.SeqNum) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if toSeq < e.stable {
		return fmt.Errorf("protocol: rollback to %d below stable checkpoint %d", toSeq, e.stable)
	}
	if err := e.kv.Rollback(toSeq); err != nil {
		return err
	}
	if err := e.chain.TruncateAfter(toSeq); err != nil {
		return err
	}
	for seq := range e.pending {
		if seq > toSeq {
			delete(e.pending, seq)
		}
	}
	for seq, rec := range e.log {
		if seq > toSeq {
			_ = rec
			delete(e.log, seq)
		}
	}
	// Rebuild client dedup history from scratch: entries from rolled-back
	// batches must not suppress re-execution.
	e.lastCli = make(map[types.ClientID]uint64, len(e.lastCli))
	for _, rec := range e.log {
		for i := range rec.Batch.Requests {
			txn := &rec.Batch.Requests[i].Txn
			if txn.Seq > e.lastCli[txn.Client] {
				e.lastCli[txn.Client] = txn.Seq
			}
		}
	}
	return nil
}

// MarkStable records a stable checkpoint at seq: undo information below it
// is discarded and the ledger prefix is frozen.
func (e *Executor) MarkStable(seq types.SeqNum) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.stable {
		return
	}
	e.stable = seq
	e.kv.Checkpoint(seq)
	e.chain.MarkStable(seq)
	cut := types.SeqNum(0)
	if seq > e.RetainSlack {
		cut = seq - e.RetainSlack
	}
	for s := range e.log {
		if s <= cut {
			delete(e.log, s)
		}
	}
}

// ExecutedSince returns the executed records with sequence numbers in
// (after, lastExecuted], in order. Used to build VC-REQUEST messages and to
// answer Fetch state transfers.
func (e *Executor) ExecutedSince(after types.SeqNum) []types.ExecRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []types.ExecRecord
	for seq, rec := range e.log {
		if seq > after {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Record returns the execution record at seq, if it is still retained.
func (e *Executor) Record(seq types.SeqNum) (types.ExecRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.log[seq]
	if !ok {
		return types.ExecRecord{}, false
	}
	return *rec, true
}

// StateDigest returns the store's state digest (for checkpoints).
func (e *Executor) StateDigest() types.Digest {
	return e.kv.StateDigest()
}
