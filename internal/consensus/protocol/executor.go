package protocol

import (
	"fmt"
	"sort"
	"sync"

	"github.com/poexec/poe/internal/exec"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// Executor is the execute-stage of the replica pipeline (Fig 6 of the
// paper): it accepts batches that the protocol has decided (view-committed,
// prepared, certified — whatever the protocol's rule is) in any order, and
// executes them strictly in sequence order against the store, appending a
// block per batch to the ledger.
//
// For speculative protocols, Rollback reverts the suffix of executed batches
// above a sequence number (store undo log + ledger truncation), implementing
// the paper's ingredient I2.
//
// Executor also performs deterministic client-level deduplication: a
// transaction whose client-local sequence number is not newer than the last
// executed one from that client is skipped (its ops are not re-applied).
// Because the skip decision depends only on executed history, all non-faulty
// replicas skip identically.
type Executor struct {
	mu      sync.Mutex
	kv      *store.KV
	chain   *ledger.Chain
	pending map[types.SeqNum]*decided
	log     map[types.SeqNum]*types.ExecRecord // executed, above the stable checkpoint
	lastCli map[types.ClientID]uint64

	// digests records, per executed sequence number, the (state, ledger-head)
	// digest pair exactly as of that sequence number. Checkpoint votes must
	// quote the digests at the checkpoint boundary — not at broadcast time,
	// when the executor may already have drained past it — or two honest
	// replicas that drained differently would vote different digests for the
	// same checkpoint. Pruned alongside log.
	digests map[types.SeqNum]digestPair

	// cliJournal is the undo log for lastCli, one entry per raised client
	// sequence number, in execution order. Rollback reverts the exact
	// entries above the rollback point, and durable checkpoints use it to
	// reconstruct the dedup history as of the checkpoint sequence number
	// even when execution has speculatively run ahead.
	cliJournal []cliMark

	// wal, when attached, persists every executed batch before the replica
	// replies and writes a checkpoint snapshot when the checkpoint
	// stabilizes. Appends go through the store's group-commit queue: the
	// record is queued here (preserving execution order) and onDurable fires
	// from the committer once its group is on disk, which is what releases
	// the batch's client replies. A durable replica that cannot persist must
	// stop rather than answer clients from volatile state, so persistence
	// failures panic (crash-stop, the fault model replicas already assume).
	wal *storage.Store

	// onDurable is invoked (on the storage committer goroutine) when seq's
	// WAL group has been committed; onRollback when Rollback discarded the
	// suffix above toSeq. Both are set by NewRuntime to drive the reply
	// durability gate.
	onDurable  func(seq types.SeqNum)
	onRollback func(toSeq types.SeqNum)

	// afterRollback fires at the very END of a successful Rollback, once the
	// store, ledger, and dedup history are rewound — the hook the read path
	// uses to re-answer speculative reads served off the discarded suffix.
	// It runs under the executor lock: the hook must not call back into
	// Executor methods (the store's own lock is fine).
	afterRollback func(toSeq types.SeqNum)

	// par, when set, executes drained windows through the conflict-aware
	// parallel execution engine instead of the serial per-batch loop. The
	// engine's determinism contract (package exec) makes the two paths
	// bit-identical in every observable: KV state and per-seq digests,
	// ledger blocks, reply payloads, dedup history and its undo journal, and
	// the WAL byte stream. parMetrics, when additionally set, receives the
	// engine's scheduling counters.
	par        *exec.Engine
	parMetrics *Metrics

	stable types.SeqNum // last stable checkpoint

	// RetainSlack keeps execution records for this many sequence numbers
	// below the stable checkpoint so replicas left in the dark can still
	// catch up via Fetch after the checkpoint stabilized without them.
	// (Deeper darkness would need snapshot transfer, which real systems
	// layer on top of checkpoints.)
	RetainSlack types.SeqNum
}

// Executed reports one batch execution to the replica, which sends INFORMs,
// counts throughput, and triggers checkpoints.
type Executed struct {
	Rec     *types.ExecRecord
	Results []types.Result
}

type decided struct {
	view  types.View
	batch types.Batch
	proof []byte
}

// digestPair is the checkpoint digest material at one sequence number.
type digestPair struct {
	state  types.Digest
	ledger types.Digest
}

// cliMark records that executing seq raised a client's dedup sequence
// number from prev (0 = client unseen before).
type cliMark struct {
	seq    types.SeqNum
	client types.ClientID
	prev   uint64
}

// NewExecutor creates an executor over a store and ledger.
func NewExecutor(kv *store.KV, chain *ledger.Chain) *Executor {
	return &Executor{
		kv:      kv,
		chain:   chain,
		pending: make(map[types.SeqNum]*decided),
		log:     make(map[types.SeqNum]*types.ExecRecord),
		lastCli: make(map[types.ClientID]uint64),
		digests: make(map[types.SeqNum]digestPair),
	}
}

// Store returns the underlying key-value store.
func (e *Executor) Store() *store.KV { return e.kv }

// Chain returns the underlying ledger.
func (e *Executor) Chain() *ledger.Chain { return e.chain }

// LastExecuted returns the highest executed sequence number.
func (e *Executor) LastExecuted() types.SeqNum {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kv.LastApplied()
}

// StableCheckpointSeq returns the last stable checkpoint sequence number.
func (e *Executor) StableCheckpointSeq() types.SeqNum {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stable
}

// Commit schedules the batch decided for seq in view view. Batches execute
// as soon as all their predecessors have executed (Fig 3, Line 20). Commit
// is idempotent: re-deciding an already scheduled or executed sequence
// number is a no-op. It returns the executions (possibly several, possibly
// none) this decision unblocked, in order.
func (e *Executor) Commit(seq types.SeqNum, view types.View, batch types.Batch, proof []byte) []Executed {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.kv.LastApplied() {
		return nil
	}
	if _, dup := e.pending[seq]; dup {
		return nil
	}
	e.pending[seq] = &decided{view: view, batch: batch, proof: proof}
	return e.drainLocked()
}

// EnableParallel routes all subsequent execution — Commit drains, CommitMany
// recovery replay — through the conflict-aware engine. Call before any
// batches execute; metrics may be nil.
func (e *Executor) EnableParallel(eng *exec.Engine, m *Metrics) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.par = eng
	e.parMetrics = m
}

// CommitMany feeds a contiguous run of decided records — recovery replay —
// through the executor in one call. Under the parallel engine the whole run
// drains as a single window, which is exactly the cross-batch scheduling
// shape live execution would have seen had the records still been pending
// together; the result is bit-identical either way.
func (e *Executor) CommitMany(recs []types.ExecRecord) []Executed {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range recs {
		rec := &recs[i]
		if rec.Seq <= e.kv.LastApplied() {
			continue
		}
		if _, dup := e.pending[rec.Seq]; dup {
			continue
		}
		e.pending[rec.Seq] = &decided{view: rec.View, batch: rec.Batch, proof: rec.Proof}
	}
	return e.drainLocked()
}

// drainLocked executes contiguous pending batches — serially, or through
// the parallel engine when one is attached.
func (e *Executor) drainLocked() []Executed {
	if e.par != nil {
		return e.drainParallelLocked()
	}
	var events []Executed
	for {
		next := e.kv.LastApplied() + 1
		d, ok := e.pending[next]
		if !ok {
			return events
		}
		delete(e.pending, next)
		events = append(events, e.executeLocked(next, d))
	}
}

func (e *Executor) executeLocked(seq types.SeqNum, d *decided) Executed {
	effective := e.dedupLocked(&d.batch)
	results, err := e.kv.Apply(seq, effective)
	if err != nil {
		// Apply can only fail on ordering violations, which drainLocked
		// rules out; treat as a programming error.
		panic(fmt.Sprintf("protocol: executor apply seq %d: %v", seq, err))
	}
	e.journalDedupLocked(seq, effective)
	return e.finishExecLocked(seq, d, results)
}

// drainParallelLocked drains every contiguous pending batch as one window
// through the conflict-aware engine: deduplication and the dedup undo
// journal run as a serial pre-pass (they are cheap and order-sensitive), the
// engine computes all read results and write effects on its worker pool, and
// the precomputed effects install per sequence number — so per-seq state
// digests, the ledger, and the WAL byte stream come out exactly as the
// serial loop would have produced them.
func (e *Executor) drainParallelLocked() []Executed {
	first := e.kv.LastApplied() + 1
	var window []*decided
	for {
		d, ok := e.pending[first+types.SeqNum(len(window))]
		if !ok {
			break
		}
		delete(e.pending, first+types.SeqNum(len(window)))
		window = append(window, d)
	}
	if len(window) == 0 {
		return nil
	}
	tasks := make([]exec.Task, len(window))
	for i, d := range window {
		seq := first + types.SeqNum(i)
		effective := e.dedupLocked(&d.batch)
		e.journalDedupLocked(seq, effective)
		tasks[i] = exec.Task{Seq: seq, Batch: effective}
	}
	results, stats := e.par.Run(e.kv, tasks)
	if m := e.parMetrics; m != nil {
		m.ParallelWindows.Add(1)
		m.ParallelWaves.Add(int64(stats.Waves))
		m.ParallelTxns.Add(int64(stats.Txns))
	}
	events := make([]Executed, 0, len(window))
	for i, d := range window {
		seq := first + types.SeqNum(i)
		if err := e.kv.InstallPrepared(seq, results[i].Writes, results[i].Delta); err != nil {
			panic(fmt.Sprintf("protocol: executor install seq %d: %v", seq, err))
		}
		events = append(events, e.finishExecLocked(seq, d, results[i].Results))
	}
	return events
}

// journalDedupLocked raises the per-client dedup sequence numbers for an
// effective batch, journaling each raise for rollback. Serial execution
// calls it per batch after Apply; the parallel window calls it in its serial
// pre-pass — the journal entries come out in the same order either way, and
// nothing observes the intermediate state under the executor lock.
func (e *Executor) journalDedupLocked(seq types.SeqNum, effective *types.Batch) {
	for i := range effective.Requests {
		txn := &effective.Requests[i].Txn
		if dedupExempt(txn) {
			continue
		}
		if txn.Seq > e.lastCli[txn.Client] {
			e.cliJournal = append(e.cliJournal, cliMark{seq: seq, client: txn.Client, prev: e.lastCli[txn.Client]})
			e.lastCli[txn.Client] = txn.Seq
		}
	}
}

// dedupExempt reports whether a transaction is outside the per-client dedup
// history: fallback-ordered fast-path reads use a client-local sequence space
// of their own (the read counter), so comparing their Seq against the write
// watermark would either starve the read or — worse — poison the watermark
// and suppress legitimate writes. Reads are idempotent; re-executing a
// duplicate is harmless.
func dedupExempt(txn *types.Transaction) bool {
	return txn.Consistency != types.ConsistencyOrdered && txn.ReadOnly()
}

// finishExecLocked records one executed batch — ledger append, execution
// log, checkpoint digests, WAL append — and builds its Executed event. The
// store must already hold the batch's effects (Apply or InstallPrepared).
func (e *Executor) finishExecLocked(seq types.SeqNum, d *decided, results []types.Result) Executed {
	digest := d.batch.Digest()
	if _, err := e.chain.Append(seq, digest, d.view, d.proof); err != nil {
		panic(fmt.Sprintf("protocol: ledger append seq %d: %v", seq, err))
	}
	rec := &types.ExecRecord{Seq: seq, View: d.view, Digest: digest, Proof: d.proof, Batch: d.batch}
	e.log[seq] = rec
	head := e.chain.Head()
	e.digests[seq] = digestPair{state: e.kv.StateDigest(), ledger: head.Hash()}
	// Log before reply: the record enters the group-commit queue inside
	// Commit, in execution order, before the replica sees the Executed
	// event. The replies themselves are held by the runtime's durability
	// gate until onDurable reports the record's group committed, so every
	// acknowledged execution survives a crash — at one (amortized) fsync per
	// group instead of one per record. The record is immutable from here on,
	// so the committer can encode it concurrently with the event loop.
	if e.wal != nil {
		notify := e.onDurable
		e.wal.AppendAsync(rec, func(err error) {
			if err != nil {
				panic(fmt.Sprintf("protocol: wal append seq %d: %v", seq, err))
			}
			if notify != nil {
				notify(seq)
			}
		})
	}
	return Executed{Rec: rec, Results: results}
}

// Gap reports whether decided batches are waiting on missing predecessors:
// the executor has pending decisions but cannot execute the next sequence
// number. Replicas use it to trigger state transfer (Fetch).
func (e *Executor) Gap() (after types.SeqNum, waiting int, gapped bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pending) == 0 {
		return 0, 0, false
	}
	next := e.kv.LastApplied() + 1
	if _, ok := e.pending[next]; ok {
		return 0, len(e.pending), false
	}
	return e.kv.LastApplied(), len(e.pending), true
}

// dedupLocked filters out transactions already executed for their client.
// Zero-payload batches pass through untouched.
func (e *Executor) dedupLocked(b *types.Batch) *types.Batch {
	if b.ZeroPayload {
		return b
	}
	keep := -1
	for i := range b.Requests {
		txn := &b.Requests[i].Txn
		if !dedupExempt(txn) && txn.Seq <= e.lastCli[txn.Client] {
			keep = i
			break
		}
	}
	if keep == -1 {
		return b
	}
	eff := &types.Batch{Requests: make([]types.Request, 0, len(b.Requests))}
	for i := range b.Requests {
		txn := &b.Requests[i].Txn
		if dedupExempt(txn) || txn.Seq > e.lastCli[txn.Client] {
			eff.Requests = append(eff.Requests, b.Requests[i])
		}
	}
	return eff
}

// AlreadyExecuted reports whether a transaction with the given client-local
// sequence number (or a newer one from the same client) has executed.
// Rotating-leader protocols use it to avoid re-proposing satisfied requests.
func (e *Executor) AlreadyExecuted(client types.ClientID, seq uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return seq <= e.lastCli[client]
}

// Rollback reverts all executed batches above toSeq and discards pending
// decisions above it. The deduplication history is rebuilt from the
// remaining execution log so that rolled-back transactions can execute again.
func (e *Executor) Rollback(toSeq types.SeqNum) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if toSeq < e.stable {
		return fmt.Errorf("protocol: rollback to %d below stable checkpoint %d", toSeq, e.stable)
	}
	// Replies for the doomed suffix that are still gated on durability must
	// never go out: drop them before the flush inside Truncate would release
	// them ("lose the reply, keep the durability").
	if e.onRollback != nil {
		e.onRollback(toSeq)
	}
	// Cut the durable log first: if the process dies between the two, a
	// too-short WAL merely recovers a shorter prefix (the re-decided suffix
	// arrives via Fetch), whereas a too-long one would durably resurrect
	// batches the cluster abandoned — silent divergence. Truncate drains the
	// group-commit queue before cutting, so no queued append can land after
	// the cut.
	if e.wal != nil {
		if err := e.wal.Truncate(toSeq); err != nil {
			panic(fmt.Sprintf("protocol: wal truncate to %d: %v", toSeq, err))
		}
		// The flush inside Truncate advanced the durability watermark past
		// the cut; pull it back so replies of re-executed sequence numbers
		// gate on their own groups, not the abandoned ones.
		if e.onRollback != nil {
			e.onRollback(toSeq)
		}
	}
	if err := e.kv.Rollback(toSeq); err != nil {
		return err
	}
	if err := e.chain.TruncateAfter(toSeq); err != nil {
		return err
	}
	for seq := range e.pending {
		if seq > toSeq {
			delete(e.pending, seq)
		}
	}
	for seq := range e.log {
		if seq > toSeq {
			delete(e.log, seq)
		}
	}
	for seq := range e.digests {
		if seq > toSeq {
			delete(e.digests, seq)
		}
	}
	// Revert the client dedup history through its undo journal: entries
	// from rolled-back batches must not suppress re-execution, while
	// history from surviving batches — including batches older than the
	// retained execution log — must keep suppressing duplicates.
	cut := len(e.cliJournal)
	for i := len(e.cliJournal) - 1; i >= 0; i-- {
		m := e.cliJournal[i]
		if m.seq <= toSeq {
			break
		}
		if m.prev == 0 {
			delete(e.lastCli, m.client)
		} else {
			e.lastCli[m.client] = m.prev
		}
		cut = i
	}
	e.cliJournal = e.cliJournal[:cut]
	if e.afterRollback != nil {
		e.afterRollback(toSeq)
	}
	return nil
}

// MarkStable records a stable checkpoint at seq: undo information below it
// is discarded and the ledger prefix is frozen. With storage attached, the
// checkpoint is first made durable — a snapshot of the state exactly at seq
// plus a rotated WAL carrying the still-speculative suffix — before the
// in-memory undo information is released.
func (e *Executor) MarkStable(seq types.SeqNum) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.stable {
		return
	}
	// A lagging replica can learn a checkpoint stabilized before executing
	// up to it (nf others vouched; it is catching up via Fetch). It cannot
	// snapshot state it does not have yet — the durable image advances at
	// the next checkpoint it reaches with the state in hand, and the WAL
	// keeps the full prefix recoverable in the meantime.
	if e.wal != nil && seq <= e.kv.LastApplied() {
		if err := e.persistCheckpointLocked(seq); err != nil {
			panic(fmt.Sprintf("protocol: persist checkpoint seq %d: %v", seq, err))
		}
	}
	e.stable = seq
	e.kv.Checkpoint(seq)
	e.chain.MarkStable(seq)
	// Drop journal entries frozen by the checkpoint; rollback can no longer
	// reach below seq.
	idx := len(e.cliJournal)
	for i, m := range e.cliJournal {
		if m.seq > seq {
			idx = i
			break
		}
	}
	e.cliJournal = append([]cliMark(nil), e.cliJournal[idx:]...)
	cut := types.SeqNum(0)
	if seq > e.RetainSlack {
		cut = seq - e.RetainSlack
	}
	for s := range e.log {
		if s <= cut {
			delete(e.log, s)
		}
	}
	for s := range e.digests {
		if s <= cut {
			delete(e.digests, s)
		}
	}
}

// DigestsAt returns the (state, ledger-head) digest pair recorded when seq
// executed, the material a checkpoint vote for seq must quote. ok is false
// when seq has not executed or its digests were pruned with the record log.
func (e *Executor) DigestsAt(seq types.SeqNum) (state, ledgerHead types.Digest, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.digests[seq]
	return p.state, p.ledger, ok
}

// persistCheckpointLocked snapshots the executed state as of seq and rotates
// the WAL. It must run before kv.Checkpoint(seq): rewinding the table to seq
// and reconstructing the dedup history both consume undo information the
// checkpoint is about to discard.
//
// The table copy, encode, and file I/O all happen under e.mu, pausing
// execution for the duration of the snapshot once per checkpoint interval.
// That is deliberate for now — appends must not interleave with the WAL
// rotation — and amortizes to noise at the default interval; if it ever
// shows up in profiles, the copy can be taken under the lock and the
// encode/write moved off it.
func (e *Executor) persistCheckpointLocked(seq types.SeqNum) error {
	snap, err := e.snapshotAtLocked(seq)
	if err != nil {
		return err
	}
	var tail []types.ExecRecord
	for s, rec := range e.log {
		if s > seq {
			tail = append(tail, *rec)
		}
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].Seq < tail[j].Seq })
	return e.wal.WriteSnapshot(snap, tail)
}

// snapshotAtLocked assembles the checkpoint snapshot exactly as of seq: the
// table rewound through the undo log, the ledger block at seq, and the client
// dedup history rewound through the journal.
func (e *Executor) snapshotAtLocked(seq types.SeqNum) (*storage.Snapshot, error) {
	data, err := e.kv.SnapshotAt(seq)
	if err != nil {
		return nil, err
	}
	head, ok := e.chain.Get(seq)
	if !ok {
		return nil, fmt.Errorf("ledger block at %d not retained", seq)
	}
	lastCli := make(map[types.ClientID]uint64, len(e.lastCli))
	for c, s := range e.lastCli {
		lastCli[c] = s
	}
	for i := len(e.cliJournal) - 1; i >= 0; i-- {
		m := e.cliJournal[i]
		if m.seq <= seq {
			break
		}
		if m.prev == 0 {
			delete(lastCli, m.client)
		} else {
			lastCli[m.client] = m.prev
		}
	}
	return &storage.Snapshot{Seq: seq, Head: head, Data: data, LastCli: lastCli}, nil
}

// BuildSnapshot assembles a snapshot of the current stable checkpoint for
// state transfer to a lagging peer. It fails when the replica has no stable
// checkpoint yet, or is itself lagging (stabilized on others' votes without
// having executed to the checkpoint).
func (e *Executor) BuildSnapshot() (*storage.Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stable == 0 {
		return nil, fmt.Errorf("protocol: no stable checkpoint to snapshot")
	}
	if e.stable > e.kv.LastApplied() {
		return nil, fmt.Errorf("protocol: stable checkpoint %d beyond executed head %d", e.stable, e.kv.LastApplied())
	}
	return e.snapshotAtLocked(e.stable)
}

// InstallSnapshot replaces the executor's state with a verified checkpoint
// snapshot received from a peer, exactly as if the replica had taken it
// locally: it is persisted first (snapshot file + rotated WAL), then the
// store, ledger, dedup history, and stable checkpoint jump to the snapshot.
// Pending decisions above the snapshot are drained afterwards, so executions
// they unblock are returned like any Commit. The caller must have verified
// the snapshot against a checkpoint certificate before installing.
func (e *Executor) InstallSnapshot(snap *storage.Snapshot) ([]Executed, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// A replica can have stabilized seq on others' votes without the state in
	// hand (stable == snap.Seq, LastApplied < snap.Seq); installing is then
	// exactly what it needs. Only installs that go backwards are rejected.
	if snap.Seq <= e.kv.LastApplied() || snap.Seq < e.stable {
		return nil, fmt.Errorf("protocol: snapshot at %d not ahead of executed %d / stable %d",
			snap.Seq, e.kv.LastApplied(), e.stable)
	}
	if snap.Head.Seq != snap.Seq {
		return nil, fmt.Errorf("protocol: snapshot head seq %d != snapshot seq %d", snap.Head.Seq, snap.Seq)
	}
	if e.wal != nil {
		// Durability first, mirroring a local checkpoint: if the install
		// lands, a crash recovers from the installed snapshot; if the write
		// fails, volatile state is untouched.
		if err := e.wal.WriteSnapshot(snap, nil); err != nil {
			return nil, err
		}
	}
	e.kv.Restore(snap.Data, snap.Seq)
	e.chain.Reset(snap.Head)
	e.lastCli = make(map[types.ClientID]uint64, len(snap.LastCli))
	for c, s := range snap.LastCli {
		e.lastCli[c] = s
	}
	e.cliJournal = nil
	e.stable = snap.Seq
	for s := range e.log {
		delete(e.log, s)
	}
	for s := range e.digests {
		delete(e.digests, s)
	}
	for s := range e.pending {
		if s <= snap.Seq {
			delete(e.pending, s)
		}
	}
	return e.drainLocked(), nil
}

// ExecutedRange returns one page of executed records for a Fetch: contiguous
// records starting at after+1, bounded by maxCount and (approximately)
// maxBytes — at least one record is returned if after+1 is retained,
// whatever its size. head is the server's last executed sequence number, so
// the fetcher can tell a short page from the end of history and re-request
// from its new head. An empty page means the records just above after are no
// longer retained and the fetcher needs snapshot state transfer instead.
func (e *Executor) ExecutedRange(after types.SeqNum, maxCount, maxBytes int) (recs []types.ExecRecord, head types.SeqNum) {
	e.mu.Lock()
	defer e.mu.Unlock()
	head = e.kv.LastApplied()
	bytes := 0
	for seq := after + 1; seq <= head; seq++ {
		rec, ok := e.log[seq]
		if !ok {
			break
		}
		recs = append(recs, *rec)
		bytes += recordSizeEstimate(rec)
		if (maxCount > 0 && len(recs) >= maxCount) || bytes >= maxBytes {
			break
		}
	}
	return recs, head
}

// recordSizeEstimate approximates one record's wire size cheaply (framing
// overhead is rounded up; payload lengths are exact), for the fetch page
// byte cap.
func recordSizeEstimate(rec *types.ExecRecord) int {
	n := 64 + len(rec.Proof)
	for i := range rec.Batch.Requests {
		req := &rec.Batch.Requests[i]
		n += 32 + len(req.Sig)
		for _, op := range req.Txn.Ops {
			n += 16 + len(op.Key) + len(op.Value)
		}
	}
	return n
}

// AttachStorage arms the executor with a durable store: subsequent
// executions append to its WAL and stable checkpoints write snapshots. The
// caller must first replay the store's recovered state (Restore + Commit of
// the recovered records), so the WAL's next expected sequence number lines
// up with the executor's.
func (e *Executor) AttachStorage(st *storage.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = st
}

// Restore primes a freshly built executor with the durable checkpoint state
// recovered from disk: the stable checkpoint sequence number and the client
// dedup history as of that checkpoint. The store and chain passed to
// NewExecutor must already hold the snapshot state; WAL records above it are
// then replayed through Commit.
func (e *Executor) Restore(stable types.SeqNum, lastCli map[types.ClientID]uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stable = stable
	e.lastCli = make(map[types.ClientID]uint64, len(lastCli))
	for c, s := range lastCli {
		e.lastCli[c] = s
	}
}

// ExecutedSince returns the executed records with sequence numbers in
// (after, lastExecuted], in order. Used to build VC-REQUEST messages and to
// answer Fetch state transfers.
func (e *Executor) ExecutedSince(after types.SeqNum) []types.ExecRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []types.ExecRecord
	for seq, rec := range e.log {
		if seq > after {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Record returns the execution record at seq, if it is still retained.
func (e *Executor) Record(seq types.SeqNum) (types.ExecRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.log[seq]
	if !ok {
		return types.ExecRecord{}, false
	}
	return *rec, true
}

// StateDigest returns the store's state digest (for checkpoints).
func (e *Executor) StateDigest() types.Digest {
	return e.kv.StateDigest()
}
