package protocol

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
)

// Broadcast authenticators. Following the paper's ingredient I4 and §II-E,
// most protocol messages only need MACs: a broadcast message carries a MAC
// vector with one tag per receiving replica (the classic PBFT authenticator),
// while under SchemeED it carries a single signature. Under SchemeNone the
// vector is empty and verification always succeeds.
//
// CERTIFY-style messages that carry a threshold certificate need no extra
// authentication — tampering invalidates the certificate — so protocols skip
// these helpers for them.

// AuthBroadcast produces the authenticator vector for a broadcast of payload
// by this replica.
func (rt *Runtime) AuthBroadcast(payload []byte) [][]byte {
	switch rt.Cfg.Scheme {
	case crypto.SchemeNone:
		return nil
	case crypto.SchemeED:
		return [][]byte{rt.Keys.Sign(payload)}
	default: // SchemeMAC, SchemeTS: MAC vector, one tag per replica
		vec := make([][]byte, rt.Cfg.N)
		for i := 0; i < rt.Cfg.N; i++ {
			if types.ReplicaID(i) == rt.Cfg.ID {
				continue
			}
			vec[i] = rt.Keys.MAC(types.ReplicaNode(types.ReplicaID(i)), payload)
		}
		return vec
	}
}

// VerifyBroadcast checks the slice of authenticators on a broadcast received
// from replica from.
func (rt *Runtime) VerifyBroadcast(from types.ReplicaID, payload []byte, vec [][]byte) bool {
	if from == rt.Cfg.ID {
		return true
	}
	switch rt.Cfg.Scheme {
	case crypto.SchemeNone:
		return true
	case crypto.SchemeED:
		return len(vec) == 1 && rt.Keys.VerifyFrom(types.ReplicaNode(from), payload, vec[0])
	default:
		i := int(rt.Cfg.ID)
		return i < len(vec) && rt.Keys.CheckMAC(types.ReplicaNode(from), payload, vec[i])
	}
}

// AuthP2P produces the authenticator for a point-to-point message to a
// replica.
func (rt *Runtime) AuthP2P(to types.ReplicaID, payload []byte) []byte {
	switch rt.Cfg.Scheme {
	case crypto.SchemeNone:
		return nil
	case crypto.SchemeED:
		return rt.Keys.Sign(payload)
	default:
		return rt.Keys.MAC(types.ReplicaNode(to), payload)
	}
}

// VerifyP2P checks a point-to-point authenticator from replica from.
func (rt *Runtime) VerifyP2P(from types.ReplicaID, payload, tag []byte) bool {
	if from == rt.Cfg.ID {
		return true
	}
	switch rt.Cfg.Scheme {
	case crypto.SchemeNone:
		return true
	case crypto.SchemeED:
		return rt.Keys.VerifyFrom(types.ReplicaNode(from), payload, tag)
	default:
		return rt.Keys.CheckMAC(types.ReplicaNode(from), payload, tag)
	}
}
