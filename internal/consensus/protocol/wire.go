package protocol

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for the shared runtime messages. Every message
// the replicas or clients exchange implements wire.Message; registration in
// init replaces the old gob registration, and the TCP transport refuses
// anything unregistered.

// WireID implements wire.Message.
func (m *ClientRequest) WireID() uint16 { return wire.IDClientRequest }

// MarshalTo implements wire.Message.
func (m *ClientRequest) MarshalTo(buf []byte) []byte { return m.Req.AppendWire(buf) }

// Unmarshal implements wire.Message.
func (m *ClientRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.Req.ReadWire(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *ForwardRequest) WireID() uint16 { return wire.IDForwardRequest }

// MarshalTo implements wire.Message.
func (m *ForwardRequest) MarshalTo(buf []byte) []byte { return m.Req.AppendWire(buf) }

// Unmarshal implements wire.Message.
func (m *ForwardRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.Req.ReadWire(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *Inform) WireID() uint16 { return wire.IDInform }

// MarshalTo implements wire.Message.
func (m *Inform) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = types.AppendDigest(buf, m.Digest)
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = wire.AppendU64(buf, m.ClientSeq)
	buf = wire.AppendBytesSlice(buf, m.Values)
	buf = wire.AppendBytes(buf, m.Tag)
	buf = wire.AppendBool(buf, m.Speculative)
	buf = types.AppendDigest(buf, m.OrderProof)
	buf = crypto.AppendShare(buf, m.Share)
	return wire.AppendBytes(buf, m.Cert)
}

// Unmarshal implements wire.Message.
func (m *Inform) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Digest = types.ReadDigest(r)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.ClientSeq = r.U64()
	m.Values = r.BytesSlice()
	m.Tag = r.Bytes()
	m.Speculative = r.Bool()
	m.OrderProof = types.ReadDigest(r)
	m.Share = crypto.ReadShare(r)
	m.Cert = r.Bytes()
	return r.Close()
}

// WireID implements wire.Message.
func (m *Fetch) WireID() uint16 { return wire.IDFetch }

// MarshalTo implements wire.Message.
func (m *Fetch) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.After))
	return wire.AppendI64(buf, int64(m.Max))
}

// Unmarshal implements wire.Message.
func (m *Fetch) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.After = types.SeqNum(r.U64())
	m.Max = int(r.I64())
	return r.Close()
}

// WireID implements wire.Message.
func (m *FetchReply) WireID() uint16 { return wire.IDFetchReply }

// MarshalTo implements wire.Message.
func (m *FetchReply) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.Head))
	return types.AppendRecords(buf, m.Records)
}

// Unmarshal implements wire.Message.
func (m *FetchReply) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Head = types.SeqNum(r.U64())
	m.Records = types.ReadRecords(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *Checkpoint) WireID() uint16 { return wire.IDCheckpoint }

// MarshalTo implements wire.Message.
func (m *Checkpoint) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = types.AppendDigest(buf, m.State)
	buf = types.AppendDigest(buf, m.Ledger)
	return wire.AppendBytes(buf, m.Sig)
}

// Unmarshal implements wire.Message.
func (m *Checkpoint) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Seq = types.SeqNum(r.U64())
	m.State = types.ReadDigest(r)
	m.Ledger = types.ReadDigest(r)
	m.Sig = r.Bytes()
	return r.Close()
}

// appendCheckpoint appends one checkpoint vote's fields (shared between the
// Checkpoint codec above and the certificate inside SnapshotOffer).
func appendCheckpoint(buf []byte, c *Checkpoint) []byte {
	buf = wire.AppendI32(buf, int32(c.From))
	buf = wire.AppendU64(buf, uint64(c.Seq))
	buf = types.AppendDigest(buf, c.State)
	buf = types.AppendDigest(buf, c.Ledger)
	return wire.AppendBytes(buf, c.Sig)
}

func readCheckpoint(r *wire.Reader, c *Checkpoint) {
	c.From = types.ReplicaID(r.I32())
	c.Seq = types.SeqNum(r.U64())
	c.State = types.ReadDigest(r)
	c.Ledger = types.ReadDigest(r)
	c.Sig = r.Bytes()
}

// WireID implements wire.Message.
func (m *SnapshotRequest) WireID() uint16 { return wire.IDSnapshotRequest }

// MarshalTo implements wire.Message.
func (m *SnapshotRequest) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	return wire.AppendU64(buf, uint64(m.Have))
}

// Unmarshal implements wire.Message.
func (m *SnapshotRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Have = types.SeqNum(r.U64())
	return r.Close()
}

// WireID implements wire.Message.
func (m *SnapshotOffer) WireID() uint16 { return wire.IDSnapshotOffer }

// MarshalTo implements wire.Message.
func (m *SnapshotOffer) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = wire.AppendI64(buf, m.Size)
	buf = wire.AppendI64(buf, int64(m.Chunks))
	buf = wire.AppendU32(buf, uint32(len(m.Cert)))
	for i := range m.Cert {
		buf = appendCheckpoint(buf, &m.Cert[i])
	}
	return buf
}

// Unmarshal implements wire.Message.
func (m *SnapshotOffer) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Seq = types.SeqNum(r.U64())
	m.Size = r.I64()
	m.Chunks = int(r.I64())
	n := r.Count(4 + 8 + 64 + 4) // per-vote floor: i32 + u64 + two digests + sig length
	m.Cert = make([]Checkpoint, n)
	for i := 0; i < n; i++ {
		readCheckpoint(r, &m.Cert[i])
		if r.Err() != nil {
			break
		}
	}
	return r.Close()
}

// WireID implements wire.Message.
func (m *ReadRequest) WireID() uint16 { return wire.IDReadRequest }

// MarshalTo implements wire.Message.
func (m *ReadRequest) MarshalTo(buf []byte) []byte { return m.Req.AppendWire(buf) }

// Unmarshal implements wire.Message.
func (m *ReadRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.Req.ReadWire(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *ReadReply) WireID() uint16 { return wire.IDReadReply }

// MarshalTo implements wire.Message.
func (m *ReadReply) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = types.AppendDigest(buf, m.Digest)
	buf = wire.AppendU64(buf, m.ClientSeq)
	buf = wire.AppendBytesSlice(buf, m.Values)
	buf = wire.AppendU64(buf, uint64(m.ExecSeq))
	buf = types.AppendDigest(buf, m.StateDigest)
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU8(buf, uint8(m.Tier))
	buf = wire.AppendBool(buf, m.Repaired)
	return wire.AppendBytes(buf, m.Tag)
}

// Unmarshal implements wire.Message.
func (m *ReadReply) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Digest = types.ReadDigest(r)
	m.ClientSeq = r.U64()
	m.Values = r.BytesSlice()
	m.ExecSeq = types.SeqNum(r.U64())
	m.StateDigest = types.ReadDigest(r)
	m.View = types.View(r.U64())
	m.Tier = types.Consistency(r.U8())
	m.Repaired = r.Bool()
	m.Tag = r.Bytes()
	return r.Close()
}

// WireID implements wire.Message.
func (m *LeaseGrant) WireID() uint16 { return wire.IDLeaseGrant }

// MarshalTo implements wire.Message.
func (m *LeaseGrant) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = wire.AppendI64(buf, m.DurationNanos)
	return wire.AppendBytes(buf, m.Sig)
}

// Unmarshal implements wire.Message.
func (m *LeaseGrant) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.DurationNanos = r.I64()
	m.Sig = r.Bytes()
	return r.Close()
}

// WireID implements wire.Message.
func (m *SnapshotChunk) WireID() uint16 { return wire.IDSnapshotChunk }

// MarshalTo implements wire.Message.
func (m *SnapshotChunk) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = wire.AppendI64(buf, int64(m.Index))
	return wire.AppendBytes(buf, m.Data)
}

// Unmarshal implements wire.Message.
func (m *SnapshotChunk) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Seq = types.SeqNum(r.U64())
	m.Index = int(r.I64())
	m.Data = r.Bytes()
	return r.Close()
}
