package protocol

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
)

// leaseFixture builds a lease with an injectable clock.
func leaseFixture(n, f int) (*Lease, *time.Time) {
	cfg := Config{ID: 0, N: n, F: f, LeaseDuration: 120 * time.Millisecond}.WithDefaults()
	cfg.LeaseDuration = 120 * time.Millisecond
	l := NewLease(cfg)
	now := time.Unix(1000, 0)
	l.Now = func() time.Time { return now }
	return l, &now
}

func grant(from types.ReplicaID, view types.View, dur time.Duration) *LeaseGrant {
	return &LeaseGrant{From: from, View: view, DurationNanos: int64(dur)}
}

func TestLeaseHolderQuorum(t *testing.T) {
	l, now := leaseFixture(4, 1)
	if l.HolderValid(0) {
		t.Fatal("lease valid with no grants")
	}
	// nf = 3: own implicit grant + 2 others.
	l.OnGrant(grant(1, 0, 120*time.Millisecond))
	if l.HolderValid(0) {
		t.Fatal("lease valid with only 2 of 3 grants")
	}
	l.OnGrant(grant(2, 0, 120*time.Millisecond))
	if !l.HolderValid(0) {
		t.Fatal("lease invalid with nf grants")
	}
	// Validity is half the grantor's declared window, from receipt.
	*now = now.Add(61 * time.Millisecond)
	if l.HolderValid(0) {
		t.Fatal("lease still valid past half the grant window")
	}
	// A renewal from one grantor is not enough; both must renew.
	l.OnGrant(grant(1, 0, 120*time.Millisecond))
	if l.HolderValid(0) {
		t.Fatal("lease valid after only one renewal")
	}
	l.OnGrant(grant(2, 0, 120*time.Millisecond))
	if !l.HolderValid(0) {
		t.Fatal("lease invalid after full renewal")
	}
}

func TestLeaseGrantsForOtherViewsIgnored(t *testing.T) {
	l, _ := leaseFixture(4, 1)
	l.OnGrant(grant(1, 1, 120*time.Millisecond))
	l.OnGrant(grant(2, 1, 120*time.Millisecond))
	if l.HolderValid(0) || l.HolderValid(1) {
		t.Fatal("grants for view 1 counted while holder is at view 0")
	}
	l.ResetHolder(1)
	// ResetHolder discards grants received before the switch: they were
	// checked against the old view and dropped, so the holder starts empty.
	if l.HolderValid(1) {
		t.Fatal("holder valid immediately after view switch")
	}
	l.OnGrant(grant(1, 1, 120*time.Millisecond))
	l.OnGrant(grant(2, 1, 120*time.Millisecond))
	if !l.HolderValid(1) {
		t.Fatal("holder invalid with nf grants for its view")
	}
}

func TestLeasePromiseBlocksViewAdvance(t *testing.T) {
	l, now := leaseFixture(4, 1)
	if !l.CanAdvanceView(1) {
		t.Fatal("advance blocked with no promise outstanding")
	}
	l.NoteGranted(0)
	if l.CanAdvanceView(1) {
		t.Fatal("advance to a higher view allowed inside the promise window")
	}
	// Advancing to the promised view itself is always allowed.
	if !l.CanAdvanceView(0) {
		t.Fatal("advance to the promised view blocked")
	}
	*now = now.Add(120 * time.Millisecond)
	if !l.CanAdvanceView(1) {
		t.Fatal("advance still blocked after the promise expired")
	}
}

func TestLeaseGrantCadence(t *testing.T) {
	l, now := leaseFixture(4, 1)
	if !l.GrantDue(0) {
		t.Fatal("no grant due initially")
	}
	l.NoteGranted(0)
	if l.GrantDue(0) {
		t.Fatal("grant due immediately after granting")
	}
	*now = now.Add(40 * time.Millisecond) // LeaseDuration/3
	if !l.GrantDue(0) {
		t.Fatal("renewal not due after LeaseDuration/3")
	}
	// A view switch makes a grant due immediately.
	l.NoteGranted(0)
	if !l.GrantDue(1) {
		t.Fatal("no grant due for a new view")
	}
}

func TestStrongReadsDrainServeAndTimeout(t *testing.T) {
	var q StrongReads
	now := time.Unix(1000, 0)
	mk := func(seq uint64) *types.Request {
		return &types.Request{Txn: types.Transaction{Client: 1, Seq: seq}}
	}
	q.Defer(mk(1), now)
	q.Defer(mk(2), now)
	q.Defer(mk(3), now.Add(50*time.Millisecond))
	var served, fell []uint64
	serveOdd := func(r *types.Request) bool {
		if r.Txn.Seq%2 == 1 {
			served = append(served, r.Txn.Seq)
			return true
		}
		return false
	}
	fallback := func(r *types.Request) { fell = append(fell, r.Txn.Seq) }

	// At +60ms with maxWait 100ms: 1 and 3 serve, 2 stays queued.
	q.Drain(now.Add(60*time.Millisecond), 100*time.Millisecond, serveOdd, fallback)
	if len(served) != 2 || served[0] != 1 || served[1] != 3 {
		t.Fatalf("served %v, want [1 3]", served)
	}
	if len(fell) != 0 || q.Len() != 1 {
		t.Fatalf("fell=%v len=%d, want none queued but seq 2", fell, q.Len())
	}
	// At +110ms, 2 has waited past maxWait and falls back to ordering.
	q.Drain(now.Add(110*time.Millisecond), 100*time.Millisecond,
		func(*types.Request) bool { return false }, fallback)
	if len(fell) != 1 || fell[0] != 2 || q.Len() != 0 {
		t.Fatalf("fell=%v len=%d, want [2] and empty", fell, q.Len())
	}

	// FlushAll hands everything to fallback regardless of age.
	q.Defer(mk(4), now)
	fell = nil
	q.FlushAll(fallback)
	if len(fell) != 1 || fell[0] != 4 || q.Len() != 0 {
		t.Fatalf("flush: fell=%v len=%d", fell, q.Len())
	}
}

// TestReplyRingDigestExactMatch covers the dedup-replay cache: the ring must
// hold several recent replies per client and only answer a retransmission
// whose (client seq, request digest) BOTH match — a tiered read sharing a
// sequence number with a cached write must never be "answered" by the
// write's cached reply.
func TestReplyRingDigestExactMatch(t *testing.T) {
	var ring replyRing
	d := func(b byte) types.Digest { return types.Digest{b} }
	for i := 1; i <= replyRingSize+2; i++ {
		ring.add(&Inform{ClientSeq: uint64(i), Digest: d(byte(i)), Seq: types.SeqNum(i)})
	}
	// The two oldest were evicted.
	if m := ring.find(1, d(1)); m != nil {
		t.Fatalf("evicted entry still found: %+v", m)
	}
	if m := ring.find(3, d(3)); m == nil || m.ClientSeq != 3 {
		t.Fatalf("recent entry not found: %+v", m)
	}
	// Same seq, different digest: a read colliding with a cached write.
	if m := ring.find(5, d(99)); m != nil {
		t.Fatalf("digest mismatch answered from cache: %+v", m)
	}
	if got := ring.newestSeq(); got != types.SeqNum(replyRingSize+2) {
		t.Fatalf("newestSeq=%d want %d", got, replyRingSize+2)
	}
}
