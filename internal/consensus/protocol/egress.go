package protocol

import (
	"context"
	"runtime"
	"sync"
)

// This file implements the egress pipeline: the outbound twin of the
// parallel authentication pipeline in verifier.go. The replica event loop
// hands outbound messages over *unsigned*; their authenticators — Ed25519
// broadcast signatures, per-replica MAC vectors, threshold shares, reply
// MACs — are computed on a pool of worker goroutines, and the messages are
// released to the transport strictly in submission order. Together with the
// inbound Verifier this removes the last asymmetric crypto from the replica
// state machine: signatures are verified before dispatch and produced after
// it, and the single-goroutine event loop only moves protocol state.
//
// Ordering contract: jobs are released one at a time, in the order they were
// enqueued, on a single releaser goroutine. Because every send the replica
// issues through the pipeline funnels through that goroutine, global
// submission order — and therefore per-destination FIFO order — is
// preserved, exactly as if the event loop had sent the messages itself. The
// signing stages of different jobs still run concurrently; only the release
// is serialized (sequence-stamped, arrival-order release — the same design
// the Verifier uses for delivery).
//
// Self-delivery: a replica counts its own share/vote toward its quorums. The
// event loop cannot do that before the share exists, so a job may carry a
// `local` continuation: after the job's send is released, the continuation
// is delivered on the Local channel, which the replica's Run loop drains on
// its own goroutine. Local continuations therefore run on the event loop, in
// submission order relative to the job's send, and may touch replica state —
// but they run *later* than the enqueue, so they must re-check any state
// (view, status) they assumed.
//
// Lifecycle: an Egress starts in inline mode — Enqueue runs the three stages
// synchronously on the caller's goroutine, which keeps direct handler-driving
// tests (and benchmarks that never start a Run loop) behaving exactly like
// the pre-pipeline code. Start arms the asynchronous pipeline; the Run loops
// call it through Runtime.StartPipeline.

// Egress is the outbound signing pipeline for one replica.
type Egress struct {
	workers int
	metrics *Metrics

	mu      sync.Mutex
	queue   []*egressJob
	started bool

	wake  chan struct{}
	local chan func()
}

// egressJob is one outbound unit moving through the pipeline.
type egressJob struct {
	sign  func() // worker pool: compute authenticators, fill the message
	send  func() // releaser goroutine, submission order: transport writes
	local func() // event loop, after send: count own share/vote
	done  chan struct{}
}

// NewEgress creates an egress pipeline with the given worker-pool size
// (<= 0 means GOMAXPROCS). It runs inline until Start is called.
func NewEgress(workers int, m *Metrics) *Egress {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Egress{
		workers: workers,
		metrics: m,
		wake:    make(chan struct{}, 1),
		local:   make(chan func(), 1024),
	}
}

// Local is the channel of event-loop continuations. The replica Run loop
// must drain it alongside its inbox; each received function is executed on
// the loop goroutine.
func (e *Egress) Local() <-chan func() { return e.local }

// Enqueue submits one outbound unit. sign runs on a pipeline worker; send
// runs on the releaser goroutine in submission order after sign completes;
// local (optional) is then delivered to the Local channel for the event
// loop. Any stage may be nil. Enqueue never blocks (the input queue is
// unbounded, so the event loop can never deadlock against its own egress),
// and it is safe to call from any goroutine — the event loop, the storage
// group-commit callback, or a test.
//
// Before Start, the three stages run synchronously on the caller.
func (e *Egress) Enqueue(sign, send, local func()) {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		if sign != nil {
			sign()
		}
		if send != nil {
			send()
		}
		if local != nil {
			local()
		}
		return
	}
	e.queue = append(e.queue, &egressJob{sign: sign, send: send, local: local, done: make(chan struct{})})
	// Count while still holding mu — after unlock the pipeline may already
	// have released the job and decremented the depth gauge.
	if m := e.metrics; m != nil {
		m.EgressQueued.Add(1)
		d := m.EgressDepth.Add(1)
		for {
			max := m.EgressMaxDepth.Load()
			if d <= max || m.EgressMaxDepth.CompareAndSwap(max, d) {
				break
			}
		}
	}
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// Start arms the asynchronous pipeline: a feeder draining the unbounded
// input queue, `workers` signing goroutines, and one releaser that issues
// sends (and local continuations) in submission order. All goroutines exit
// when ctx is done; jobs still queued at that point are dropped, like
// messages on a closing transport.
func (e *Egress) Start(ctx context.Context) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()

	if e.workers == 1 {
		// Single-worker degenerate case (GOMAXPROCS=1): signing cannot
		// overlap with itself, so the fan-out/fan-in plumbing only adds
		// channel handoffs. One goroutine drains the queue and runs
		// sign+send back to back — submission order, and therefore
		// per-destination FIFO order, is trivially preserved.
		go func() {
			for {
				e.mu.Lock()
				batch := e.queue
				e.queue = nil
				e.mu.Unlock()
				if len(batch) == 0 {
					select {
					case <-ctx.Done():
						return
					case <-e.wake:
						continue
					}
				}
				for _, j := range batch {
					if j.sign != nil {
						j.sign()
						if e.metrics != nil {
							e.metrics.EgressSignedOffLoop.Add(1)
						}
					}
					if j.send != nil {
						j.send()
					}
					if e.metrics != nil {
						e.metrics.EgressDepth.Add(-1)
					}
					if j.local != nil {
						select {
						case e.local <- j.local:
						case <-ctx.Done():
							return
						}
					}
				}
			}
		}()
		return
	}

	work := make(chan *egressJob, 4*e.workers)
	order := make(chan *egressJob, 4*e.workers)

	// Feeder: move queued jobs into the worker pool, stamping arrival order
	// via the order channel.
	go func() {
		defer close(work)
		defer close(order)
		for {
			e.mu.Lock()
			batch := e.queue
			e.queue = nil
			e.mu.Unlock()
			if len(batch) == 0 {
				select {
				case <-ctx.Done():
					return
				case <-e.wake:
					continue
				}
			}
			for _, j := range batch {
				select {
				case order <- j:
				case <-ctx.Done():
					return
				}
				select {
				case work <- j:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: compute authenticators in parallel.
	for i := 0; i < e.workers; i++ {
		go func() {
			for j := range work {
				if j.sign != nil {
					j.sign()
					if e.metrics != nil {
						e.metrics.EgressSignedOffLoop.Add(1)
					}
				}
				close(j.done)
			}
		}()
	}

	// Releaser: issue sends in submission order, then hand local
	// continuations to the event loop.
	go func() {
		for j := range order {
			select {
			case <-j.done:
			case <-ctx.Done():
				return
			}
			if j.send != nil {
				j.send()
			}
			if e.metrics != nil {
				e.metrics.EgressDepth.Add(-1)
			}
			if j.local != nil {
				select {
				case e.local <- j.local:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
}
