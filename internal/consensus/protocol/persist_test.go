package protocol

// Recovery tests: a durable executor must come back from snapshot + WAL
// replay with the exact state digest it crashed with, under every
// combination the acceptance criteria name — pure WAL replay, snapshot plus
// partial WAL, dedup history crossing the snapshot, and speculative rollback
// mirrored on disk.

import (
	"testing"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// durableExec builds an executor over a data dir, recovering whatever the
// dir holds, mirroring NewRuntime's recovery sequence.
func durableExec(t *testing.T, dir string) (*Executor, *storage.Store) {
	t.Helper()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("open storage: %v", err)
	}
	rec := st.Recovered()
	kv := store.New()
	var chain *ledger.Chain
	if rec.Snapshot != nil {
		kv.Restore(rec.Snapshot.Data, rec.Snapshot.Seq)
		chain = ledger.Restore(rec.Snapshot.Head)
	} else {
		chain = ledger.NewChain(0)
	}
	e := NewExecutor(kv, chain)
	e.RetainSlack = 1 << 20
	if rec.Snapshot != nil {
		e.Restore(rec.Snapshot.Seq, rec.Snapshot.LastCli)
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		e.Commit(r.Seq, r.View, r.Batch, r.Proof)
	}
	e.AttachStorage(st)
	return e, st
}

func writeBatch(client types.ClientID, cliSeq uint64, key string, val byte) types.Batch {
	return types.Batch{Requests: []types.Request{{Txn: types.Transaction{
		Client: client, Seq: cliSeq,
		Ops: []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte{val}}},
	}}}}
}

// TestWALReplayDeterminism writes N batches, recovers, and requires equal
// state and ledger digests — no checkpoint involved, pure log replay.
func TestWALReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	const n = 25
	for seq := types.SeqNum(1); seq <= n; seq++ {
		b := writeBatch(types.ClientIDBase+types.ClientID(seq%3), uint64(seq), "key", byte(seq))
		if evs := e.Commit(seq, 0, b, []byte{byte(seq)}); len(evs) != 1 {
			t.Fatalf("seq %d did not execute", seq)
		}
	}
	wantState := e.StateDigest()
	h := e.Chain().Head()
	wantHead := h.Hash()
	st.Close()

	e2, st2 := durableExec(t, dir)
	defer st2.Close()
	if e2.LastExecuted() != n {
		t.Fatalf("recovered to seq %d, want %d", e2.LastExecuted(), n)
	}
	if e2.StateDigest() != wantState {
		t.Fatal("state digest diverged after replay")
	}
	head := e2.Chain().Head()
	if head.Hash() != wantHead {
		t.Fatal("ledger head diverged after replay")
	}
	if _, ok := e2.Chain().Verify(); !ok {
		t.Fatal("recovered chain fails hash-link verification")
	}
}

// TestSnapshotPlusPartialWALRecovery checkpoints mid-stream, keeps
// executing, recovers, and requires the snapshot + WAL-suffix combination to
// land on the live replicas' digest.
func TestSnapshotPlusPartialWALRecovery(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	for seq := types.SeqNum(1); seq <= 10; seq++ {
		e.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "a", byte(seq)), nil)
	}
	e.MarkStable(8)
	for seq := types.SeqNum(11); seq <= 17; seq++ {
		e.Commit(seq, 1, writeBatch(types.ClientIDBase, uint64(seq), "b", byte(seq)), nil)
	}
	wantState := e.StateDigest()
	hh := e.Chain().Head()
	wantHead := hh.Hash()
	st.Close()

	e2, st2 := durableExec(t, dir)
	defer st2.Close()
	if e2.LastExecuted() != 17 {
		t.Fatalf("recovered to %d, want 17", e2.LastExecuted())
	}
	if e2.StableCheckpointSeq() != 8 {
		t.Fatalf("stable checkpoint %d, want 8", e2.StableCheckpointSeq())
	}
	if e2.StateDigest() != wantState || headBlock(e2) != wantHead {
		t.Fatal("snapshot+WAL recovery diverged")
	}
	if e2.Chain().Base() != 8 {
		t.Fatalf("restored chain base %d, want 8", e2.Chain().Base())
	}
	// The recovered replica keeps executing and checkpointing normally.
	e2.Commit(18, 1, writeBatch(types.ClientIDBase, 18, "c", 18), nil)
	e2.MarkStable(16)
	if e2.StableCheckpointSeq() != 16 {
		t.Fatal("post-recovery checkpoint failed")
	}
}

// TestSnapshotStateExcludesSpeculativeSuffix: the snapshot at a stable
// checkpoint must capture the table as of the checkpoint even though
// execution has speculatively run ahead; the suffix lives in the WAL only.
func TestSnapshotStateExcludesSpeculativeSuffix(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	for seq := types.SeqNum(1); seq <= 9; seq++ {
		e.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "k", byte(seq)), nil)
	}
	e.MarkStable(5) // state digest of the snapshot must be as of seq 5
	st.Close()

	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap := st2.Recovered().Snapshot
	if snap == nil || snap.Seq != 5 {
		t.Fatalf("snapshot = %+v, want seq 5", snap)
	}
	if got := snap.Data["k"]; len(got) != 1 || got[0] != 5 {
		t.Fatalf("snapshot captured k=%v, want the value as of seq 5", got)
	}
	if len(st2.Recovered().Records) != 4 {
		t.Fatalf("WAL suffix has %d records, want 4 (6..9)", len(st2.Recovered().Records))
	}
}

// TestDedupHistorySurvivesRecovery: a client transaction executed before the
// snapshot must still be deduplicated after recovery, and one that was
// deduplicated inside the replayed suffix must replay identically.
func TestDedupHistorySurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	cli := types.ClientIDBase
	// seq 1..4: client reaches cliSeq 4. Checkpoint at 4.
	for seq := types.SeqNum(1); seq <= 4; seq++ {
		e.Commit(seq, 0, writeBatch(cli, uint64(seq), "k", byte(seq)), nil)
	}
	e.MarkStable(4)
	// seq 5 carries a replay of cliSeq 2 (deduplicated: must not re-apply)
	// plus fresh cliSeq 5.
	dup := types.Batch{Requests: []types.Request{
		{Txn: types.Transaction{Client: cli, Seq: 2, Ops: []types.Op{{Kind: types.OpWrite, Key: "k", Value: []byte{99}}}}},
		{Txn: types.Transaction{Client: cli, Seq: 5, Ops: []types.Op{{Kind: types.OpWrite, Key: "fresh", Value: []byte{5}}}}},
	}}
	e.Commit(5, 0, dup, nil)
	wantState := e.StateDigest()
	if v, _ := e.Store().Get("k"); len(v) != 1 || v[0] != 4 {
		t.Fatalf("dup write applied live: k=%v", v)
	}
	st.Close()

	e2, st2 := durableExec(t, dir)
	defer st2.Close()
	if e2.StateDigest() != wantState {
		t.Fatal("replayed dedup decision diverged")
	}
	if v, _ := e2.Store().Get("k"); len(v) != 1 || v[0] != 4 {
		t.Fatalf("recovery resurrected a deduplicated write: k=%v", v)
	}
	if !e2.AlreadyExecuted(cli, 5) || !e2.AlreadyExecuted(cli, 1) {
		t.Fatal("dedup history lost across recovery")
	}
	// A pre-snapshot duplicate arriving after recovery must still be skipped.
	e2.Commit(6, 0, types.Batch{Requests: []types.Request{
		{Txn: types.Transaction{Client: cli, Seq: 3, Ops: []types.Op{{Kind: types.OpWrite, Key: "k", Value: []byte{77}}}}},
	}}, nil)
	if v, _ := e2.Store().Get("k"); len(v) != 1 || v[0] != 4 {
		t.Fatalf("post-recovery duplicate applied: k=%v", v)
	}
}

// TestRollbackTruncatesWAL: a speculative rollback must cut the durable log
// too, so recovery replays the replacement history, not the abandoned one.
func TestRollbackTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	for seq := types.SeqNum(1); seq <= 8; seq++ {
		e.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "k", byte(seq)), nil)
	}
	if err := e.Rollback(5); err != nil {
		t.Fatal(err)
	}
	// Re-execute 6..7 with different content in a later view.
	for seq := types.SeqNum(6); seq <= 7; seq++ {
		e.Commit(seq, 1, writeBatch(types.ClientIDBase+1, uint64(seq), "j", byte(seq+100)), nil)
	}
	wantState := e.StateDigest()
	hh := e.Chain().Head()
	wantHead := hh.Hash()
	st.Close()

	e2, st2 := durableExec(t, dir)
	defer st2.Close()
	if e2.LastExecuted() != 7 {
		t.Fatalf("recovered to %d, want 7", e2.LastExecuted())
	}
	if e2.StateDigest() != wantState || headBlock(e2) != wantHead {
		t.Fatal("recovery resurrected rolled-back history")
	}
	if e2.AlreadyExecuted(types.ClientIDBase, 8) {
		t.Fatal("dedup history kept a rolled-back transaction")
	}
}

// TestRollbackRevertsDedupThroughJournal exercises the journal-based lastCli
// revert directly (no storage): a rolled-back transaction must execute
// again, while older history — beyond the retained execution log — still
// suppresses duplicates.
func TestRollbackRevertsDedupThroughJournal(t *testing.T) {
	e := newExec()
	cli := types.ClientIDBase
	e.Commit(1, 0, writeBatch(cli, 1, "k", 1), nil)
	e.Commit(2, 0, writeBatch(cli, 2, "k", 2), nil)
	e.Commit(3, 0, writeBatch(cli, 3, "k", 3), nil)
	if err := e.Rollback(2); err != nil {
		t.Fatal(err)
	}
	if e.AlreadyExecuted(cli, 3) {
		t.Fatal("rolled-back cliSeq 3 still marked executed")
	}
	if !e.AlreadyExecuted(cli, 2) {
		t.Fatal("surviving cliSeq 2 lost from dedup history")
	}
	// Re-execution of the rolled-back transaction must apply.
	e.Commit(3, 1, writeBatch(cli, 3, "k", 33), nil)
	if v, _ := e.Store().Get("k"); len(v) != 1 || v[0] != 33 {
		t.Fatalf("re-execution after rollback did not apply: k=%v", v)
	}
}

// TestRuntimeRecovery drives recovery through NewRuntime itself: the
// integration NewRuntime performs (snapshot restore, WAL replay, RecoveredSeq)
// must match a live runtime's executor state.
func TestRuntimeRecovery(t *testing.T) {
	dir := t.TempDir()
	net := network.NewChanNet()
	defer net.Close()
	ring := crypto.NewKeyRing(4, []byte("persist-test"))
	cfg := Config{ID: 0, N: 4, F: 1, Scheme: crypto.SchemeNone, CheckpointInterval: 4}

	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg, ring, net.Join(types.ReplicaNode(0)), RuntimeOptions{Storage: st})
	for seq := types.SeqNum(1); seq <= 10; seq++ {
		rt.Exec.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "k", byte(seq)), nil)
	}
	rt.Exec.MarkStable(8)
	wantState := rt.Exec.StateDigest()
	st.Close()

	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rt2 := NewRuntime(cfg, ring, net.Join(types.ReplicaNode(0)), RuntimeOptions{Storage: st2})
	if rt2.RecoveredSeq != 10 {
		t.Fatalf("RecoveredSeq = %d, want 10", rt2.RecoveredSeq)
	}
	if rt2.Exec.LastExecuted() != 10 || rt2.Exec.StateDigest() != wantState {
		t.Fatal("runtime recovery diverged")
	}
	if rt2.Exec.StableCheckpointSeq() != 8 {
		t.Fatalf("stable = %d, want 8", rt2.Exec.StableCheckpointSeq())
	}
}

func headBlock(e *Executor) types.Digest {
	h := e.Chain().Head()
	return h.Hash()
}
