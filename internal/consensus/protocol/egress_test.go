package protocol

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/poexec/poe/internal/types"
)

// TestEgressChaosFIFO floods a started egress pipeline from a producer while
// the workers sign concurrently, and asserts the two invariants the
// protocols rely on: every release observes its own sign stage completed,
// and releases happen in submission order — which implies per-destination
// FIFO order for every destination. Run under -race (the CI chaos smoke job
// matches this test) it also proves the sign/send handoff is properly
// synchronized.
func TestEgressChaosFIFO(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := NewEgress(4, &Metrics{})
	e.Start(ctx)

	const jobs = 2000
	const dests = 7
	var mu sync.Mutex
	perDest := make(map[int][]int)
	signed := make([]bool, jobs)
	release := make(chan struct{})

	go func() {
		for i := 0; i < jobs; i++ {
			i := i
			dest := i % dests
			e.Enqueue(
				func() {
					// Workers run concurrently; each job signs exactly once.
					signed[i] = true
				},
				func() {
					if !signed[i] {
						t.Errorf("job %d released before its sign stage ran", i)
					}
					mu.Lock()
					perDest[dest] = append(perDest[dest], i)
					mu.Unlock()
					if i == jobs-1 {
						close(release)
					}
				},
				nil)
		}
	}()

	select {
	case <-release:
	case <-time.After(30 * time.Second):
		t.Fatal("egress pipeline stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for dest, seq := range perDest {
		total += len(seq)
		for j := 1; j < len(seq); j++ {
			if seq[j] <= seq[j-1] {
				t.Fatalf("destination %d saw out-of-order releases: %d after %d", dest, seq[j], seq[j-1])
			}
		}
	}
	if total != jobs {
		t.Fatalf("released %d jobs, want %d", total, jobs)
	}
}

// TestEgressLocalOrdering: a job's local continuation is delivered after its
// send, and continuations arrive in submission order.
func TestEgressLocalOrdering(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := NewEgress(2, nil)
	e.Start(ctx)

	const jobs = 200
	var mu sync.Mutex
	sent := make(map[int]bool)
	for i := 0; i < jobs; i++ {
		i := i
		e.Enqueue(nil, func() {
			mu.Lock()
			sent[i] = true
			mu.Unlock()
		}, func() {
			mu.Lock()
			ok := sent[i]
			mu.Unlock()
			if !ok {
				t.Errorf("local continuation %d ran before its send", i)
			}
		})
	}
	// Drain the local channel the way a Run loop would.
	want := 0
	timeout := time.After(30 * time.Second)
	for want < jobs {
		select {
		case fn := <-e.Local():
			fn()
			want++
		case <-timeout:
			t.Fatalf("drained only %d/%d local continuations", want, jobs)
		}
	}
}

// TestEgressInlineBeforeStart: before Start, Enqueue runs all three stages
// synchronously on the caller — the mode direct handler-driving tests rely
// on.
func TestEgressInlineBeforeStart(t *testing.T) {
	e := NewEgress(2, nil)
	var order []string
	e.Enqueue(
		func() { order = append(order, "sign") },
		func() { order = append(order, "send") },
		func() { order = append(order, "local") },
	)
	if len(order) != 3 || order[0] != "sign" || order[1] != "send" || order[2] != "local" {
		t.Fatalf("inline mode ran %v, want [sign send local]", order)
	}
}

// TestEgressMetrics: queued/signed-off-loop counters advance and the depth
// gauge returns to zero once the pipeline drains.
func TestEgressMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := &Metrics{}
	e := NewEgress(2, m)
	e.Start(ctx)
	done := make(chan struct{})
	for i := 0; i < 50; i++ {
		last := i == 49
		e.Enqueue(func() {}, func() {
			if last {
				close(done)
			}
		}, nil)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline stalled")
	}
	if got := m.EgressQueued.Load(); got != 50 {
		t.Fatalf("EgressQueued = %d, want 50", got)
	}
	if got := m.EgressSignedOffLoop.Load(); got != 50 {
		t.Fatalf("EgressSignedOffLoop = %d, want 50", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.EgressDepth.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("EgressDepth = %d after drain, want 0", m.EgressDepth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if m.EgressMaxDepth.Load() <= 0 {
		t.Fatal("EgressMaxDepth never observed a backlog")
	}
}

// TestBatcherPruneProposed: entries covered by the executor dedup history are
// dropped, unexecuted ones stay.
func TestBatcherPruneProposed(t *testing.T) {
	b := NewBatcher(10, 0, false)
	b.Add(types.Request{Txn: types.Transaction{Client: 1, Seq: 5}})
	b.Add(types.Request{Txn: types.Transaction{Client: 2, Seq: 9}})
	b.PruneProposed(func(c types.ClientID, seq uint64) bool { return c == 1 })
	if len(b.proposed) != 1 {
		t.Fatalf("proposed has %d entries, want 1", len(b.proposed))
	}
	if _, ok := b.proposed[2]; !ok {
		t.Fatal("unexecuted client 2 was pruned")
	}
}
