package protocol

import "fmt"

// CostModel is the analytic comparison behind Fig 1 of the paper: the
// normal-case cost of one consensus decision with a good primary.
type CostModel struct {
	Protocol string
	// Phases is the number of communication phases per decision.
	Phases int
	// Messages returns the number of protocol messages exchanged for one
	// decision in a system of n replicas.
	Messages func(n int) int
	// MessagesExpr is the closed form shown in the paper's table.
	MessagesExpr string
	// Resilience is the number of faulty replicas tolerated without
	// degradation (Zyzzyva and SBFT's fast paths tolerate 0).
	Resilience func(f int) int
	// ResilienceExpr is the closed form ("f" or "0").
	ResilienceExpr string
	// Requirements summarizes the extra assumptions the protocol makes.
	Requirements string
}

// CostModels returns the Fig 1 table rows, in the paper's order.
func CostModels() []CostModel {
	id := func(f int) int { return f }
	zero := func(int) int { return 0 }
	return []CostModel{
		{
			Protocol: "Zyzzyva", Phases: 1,
			Messages: func(n int) int { return n }, MessagesExpr: "O(n)",
			Resilience: zero, ResilienceExpr: "0",
			Requirements: "reliable clients and unsafe",
		},
		{
			Protocol: "PoE", Phases: 3,
			Messages: func(n int) int { return 3 * n }, MessagesExpr: "O(3n)",
			Resilience: id, ResilienceExpr: "f",
			Requirements: "sign. agnostic",
		},
		{
			Protocol: "PBFT", Phases: 3,
			Messages: func(n int) int { return n + 2*n*n }, MessagesExpr: "O(n+2n^2)",
			Resilience: id, ResilienceExpr: "f",
			Requirements: "",
		},
		{
			Protocol: "HotStuff-TS", Phases: 8,
			Messages: func(n int) int { return 8 * n }, MessagesExpr: "O(8n)",
			Resilience: id, ResilienceExpr: "f",
			Requirements: "Sequential Consensuses",
		},
		{
			Protocol: "SBFT", Phases: 5,
			Messages: func(n int) int { return 5 * n }, MessagesExpr: "O(5n)",
			Resilience: zero, ResilienceExpr: "0",
			Requirements: "Twin paths",
		},
	}
}

// FormatCostTable renders the Fig 1 table for a concrete n and f.
func FormatCostTable(n, f int) string {
	s := fmt.Sprintf("%-12s %-7s %-14s %-11s %s\n", "Protocol", "Phases", "Messages", "Resilience", "Requirements")
	for _, m := range CostModels() {
		s += fmt.Sprintf("%-12s %-7d %-14s %-11s %s\n",
			m.Protocol, m.Phases,
			fmt.Sprintf("%s = %d", m.MessagesExpr, m.Messages(n)),
			fmt.Sprintf("%s = %d", m.ResilienceExpr, m.Resilience(f)),
			m.Requirements)
	}
	return s
}
