package protocol

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

func TestConfigValidate(t *testing.T) {
	good := Config{ID: 0, N: 4, F: 1}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{ID: 0, N: 3, F: 1},  // n ≤ 3f
		{ID: 4, N: 4, F: 1},  // id out of range
		{ID: 0, N: 0, F: 0},  // empty system
		{ID: -1, N: 4, F: 1}, // negative id
	}
	for i, cfg := range bad {
		if err := cfg.WithDefaults().Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	if q := good.NF(); q != 3 {
		t.Fatalf("nf = %d", q)
	}
	if q := good.FPlus1(); q != 2 {
		t.Fatalf("f+1 = %d", q)
	}
}

func newExec() *Executor {
	return NewExecutor(store.New(), ledger.NewChain(0))
}

func batchFor(client types.ClientID, seq uint64) types.Batch {
	return types.Batch{Requests: []types.Request{{Txn: types.Transaction{
		Client: client, Seq: seq,
		Ops: []types.Op{{Kind: types.OpWrite, Key: "k", Value: []byte{byte(seq)}}},
	}}}}
}

func TestExecutorOrdersOutOfOrderCommits(t *testing.T) {
	e := newExec()
	if evs := e.Commit(3, 0, batchFor(types.ClientIDBase, 3), nil); len(evs) != 0 {
		t.Fatal("seq 3 must wait for 1 and 2")
	}
	if evs := e.Commit(2, 0, batchFor(types.ClientIDBase, 2), nil); len(evs) != 0 {
		t.Fatal("seq 2 must wait for 1")
	}
	evs := e.Commit(1, 0, batchFor(types.ClientIDBase, 1), nil)
	if len(evs) != 3 {
		t.Fatalf("expected a 3-batch drain, got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Rec.Seq != types.SeqNum(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Rec.Seq)
		}
	}
	if e.LastExecuted() != 3 {
		t.Fatalf("last executed %d", e.LastExecuted())
	}
}

func TestExecutorIdempotentCommit(t *testing.T) {
	e := newExec()
	if evs := e.Commit(1, 0, batchFor(types.ClientIDBase, 1), nil); len(evs) != 1 {
		t.Fatal("first commit should execute")
	}
	if evs := e.Commit(1, 0, batchFor(types.ClientIDBase, 99), nil); len(evs) != 0 {
		t.Fatal("re-committing an executed seq must be a no-op")
	}
}

func TestExecutorDedupAcrossBatches(t *testing.T) {
	e := newExec()
	e.Commit(1, 0, batchFor(types.ClientIDBase, 1), nil)
	// The same client transaction re-proposed at seq 2 must not re-apply.
	evs := e.Commit(2, 0, batchFor(types.ClientIDBase, 1), nil)
	if len(evs) != 1 {
		t.Fatal("seq 2 should still execute (as an effectively empty batch)")
	}
	if len(evs[0].Results) != 0 {
		t.Fatal("duplicate transaction produced results")
	}
	if !e.AlreadyExecuted(types.ClientIDBase, 1) {
		t.Fatal("dedup history lost")
	}
}

func TestExecutorRollbackRebuildsDedup(t *testing.T) {
	e := newExec()
	e.Commit(1, 0, batchFor(types.ClientIDBase, 1), nil)
	e.Commit(2, 0, batchFor(types.ClientIDBase, 2), nil)
	if err := e.Rollback(1); err != nil {
		t.Fatal(err)
	}
	if e.AlreadyExecuted(types.ClientIDBase, 2) {
		t.Fatal("rolled-back transaction still marked executed")
	}
	if !e.AlreadyExecuted(types.ClientIDBase, 1) {
		t.Fatal("surviving transaction lost from dedup history")
	}
	// The rolled-back transaction can execute again.
	evs := e.Commit(2, 1, batchFor(types.ClientIDBase, 2), nil)
	if len(evs) != 1 || len(evs[0].Results) != 1 {
		t.Fatal("re-execution after rollback failed")
	}
}

func TestExecutorGap(t *testing.T) {
	e := newExec()
	if _, _, gapped := e.Gap(); gapped {
		t.Fatal("empty executor reports a gap")
	}
	e.Commit(5, 0, batchFor(types.ClientIDBase, 5), nil)
	after, waiting, gapped := e.Gap()
	if !gapped || after != 0 || waiting != 1 {
		t.Fatalf("gap = (%d,%d,%v)", after, waiting, gapped)
	}
}

func TestBatcherDedupAndLinger(t *testing.T) {
	b := NewBatcher(3, 10*time.Millisecond, false)
	req := func(c types.ClientID, s uint64) types.Request {
		return types.Request{Txn: types.Transaction{Client: c, Seq: s}}
	}
	if b.Add(req(types.ClientIDBase, 1)) {
		t.Fatal("batch reported full after one request")
	}
	// Duplicate (same client seq) is dropped.
	b.Add(req(types.ClientIDBase, 1))
	if b.Pending() != 1 {
		t.Fatalf("pending %d after duplicate", b.Pending())
	}
	if _, ok := b.Take(false); ok {
		t.Fatal("partial batch taken without force")
	}
	b.Add(req(types.ClientIDBase, 2))
	if !b.Add(req(types.ClientIDBase, 3)) {
		t.Fatal("batch should be full at 3")
	}
	batch, ok := b.Take(false)
	if !ok || len(batch.Requests) != 3 {
		t.Fatalf("take full: %v %d", ok, len(batch.Requests))
	}
	// Linger: a partial batch ripens after the linger interval.
	b.Add(req(types.ClientIDBase, 4))
	if b.Ripe(time.Now()) {
		t.Fatal("fresh partial batch should not be ripe")
	}
	if !b.Ripe(time.Now().Add(20 * time.Millisecond)) {
		t.Fatal("lingered batch should be ripe")
	}
	if batch, ok := b.Take(true); !ok || len(batch.Requests) != 1 {
		t.Fatal("force-take failed")
	}
}

func TestBatcherZeroPayload(t *testing.T) {
	b := NewBatcher(2, time.Millisecond, true)
	b.Add(types.Request{Txn: types.Transaction{Client: types.ClientIDBase, Seq: 1}})
	b.Add(types.Request{Txn: types.Transaction{Client: types.ClientIDBase, Seq: 2}})
	batch, ok := b.Take(false)
	if !ok || !batch.ZeroPayload || batch.ZeroCount != 2 {
		t.Fatalf("zero-payload batch: %+v", batch)
	}
}

func TestCostModelMatchesPaperTable(t *testing.T) {
	models := CostModels()
	want := map[string]struct {
		phases int
		msgs   int // at n = 10
	}{
		"Zyzzyva":     {1, 10},
		"PoE":         {3, 30},
		"PBFT":        {3, 10 + 200},
		"HotStuff-TS": {8, 80},
		"SBFT":        {5, 50},
	}
	for _, m := range models {
		w, ok := want[m.Protocol]
		if !ok {
			t.Fatalf("unexpected protocol %q", m.Protocol)
		}
		if m.Phases != w.phases || m.Messages(10) != w.msgs {
			t.Fatalf("%s: phases=%d msgs=%d, want %d/%d", m.Protocol, m.Phases, m.Messages(10), w.phases, w.msgs)
		}
	}
	if s := FormatCostTable(91, 30); len(s) == 0 {
		t.Fatal("empty cost table")
	}
}

func TestCheckpointQuorum(t *testing.T) {
	// Build two runtimes over a shared ring and drive the checkpoint votes
	// by hand.
	ring := crypto.NewKeyRing(4, []byte("cp-test"))
	net := fakeNet{}
	cfg := Config{ID: 0, N: 4, F: 1, Scheme: crypto.SchemeMAC, CheckpointInterval: 1}
	rt := NewRuntime(cfg, ring, net, RuntimeOptions{})
	rt.Exec.Commit(1, 0, types.Batch{}, nil)

	state := rt.Exec.StateDigest()
	head := rt.Exec.Chain().Head()
	ledgerHash := head.Hash()
	mkVote := func(from types.ReplicaID) *Checkpoint {
		cp := &Checkpoint{From: from, Seq: 1, State: state, Ledger: ledgerHash}
		cp.Sig = ring.NodeKeys(types.ReplicaNode(from)).Sign(cp.SignedPayload())
		return cp
	}
	if _, stable := rt.OnCheckpoint(mkVote(0)); stable {
		t.Fatal("one vote should not stabilize")
	}
	if _, stable := rt.OnCheckpoint(mkVote(1)); stable {
		t.Fatal("two votes should not stabilize")
	}
	seq, stable := rt.OnCheckpoint(mkVote(2))
	if !stable || seq != 1 {
		t.Fatalf("three votes (nf) should stabilize seq 1, got (%d,%v)", seq, stable)
	}
	if rt.Exec.StableCheckpointSeq() != 1 {
		t.Fatal("stable checkpoint not recorded")
	}
	// A forged vote is rejected.
	forged := mkVote(3)
	forged.Sig[0] ^= 1
	if _, stable := rt.OnCheckpoint(forged); stable {
		t.Fatal("forged checkpoint accepted")
	}
}

// fakeNet is a transport that swallows everything (for runtime unit tests).
type fakeNet struct{}

func (fakeNet) Node() types.NodeID                    { return types.ReplicaNode(0) }
func (fakeNet) Send(to types.NodeID, msg any)         {}
func (fakeNet) Broadcast(tos []types.NodeID, msg any) {}
func (fakeNet) Inbox() <-chan network.Envelope        { return nil }
func (fakeNet) Close() error                          { return nil }
