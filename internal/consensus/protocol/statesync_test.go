package protocol

// Snapshot state-transfer unit tests, driven entirely by hand on the
// StateSync state machine: detection from checkpoint votes, the certificate
// trust rule, rejection of corrupt chunks with rotation to the next peer,
// and convergence once an honest peer serves the same snapshot.

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
)

// syncedServer commits seqs 1..k on a fresh runtime and stabilizes its
// checkpoint at k with signed votes from replicas 0..2, returning the
// runtime and those votes (the checkpoint certificate).
func syncedServer(t *testing.T, ring *crypto.KeyRing, cfg Config, k types.SeqNum) (*Runtime, []*Checkpoint) {
	t.Helper()
	rt := NewRuntime(cfg, ring, fakeNet{}, RuntimeOptions{})
	for seq := types.SeqNum(1); seq <= k; seq++ {
		if evs := rt.Exec.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "k", byte(seq)), nil); len(evs) != 1 {
			t.Fatalf("seq %d did not execute", seq)
		}
	}
	state, ledgerHead, ok := rt.Exec.DigestsAt(k)
	if !ok {
		t.Fatalf("no recorded digests at seq %d", k)
	}
	votes := make([]*Checkpoint, 0, 3)
	for from := types.ReplicaID(0); from < 3; from++ {
		cp := &Checkpoint{From: from, Seq: k, State: state, Ledger: ledgerHead}
		cp.Sig = ring.NodeKeys(types.ReplicaNode(from)).Sign(cp.SignedPayload())
		votes = append(votes, cp)
		rt.OnCheckpoint(cp)
	}
	if rt.Exec.StableCheckpointSeq() != k {
		t.Fatalf("server checkpoint not stable at %d", k)
	}
	if rt.stableCertSeq != k || len(rt.stableCert) < cfg.F+1 {
		t.Fatalf("server retained no usable checkpoint certificate (seq %d, %d votes)", rt.stableCertSeq, len(rt.stableCert))
	}
	return rt, votes
}

// serveSnapshot builds the offer + chunk messages an honest server with
// rt's state would send, impersonating replica `as`.
func serveSnapshot(t *testing.T, rt *Runtime, as types.ReplicaID) (*SnapshotOffer, []*SnapshotChunk) {
	t.Helper()
	stable := rt.Exec.StableCheckpointSeq()
	data, ok := rt.encodedSnapshot(stable)
	if !ok {
		t.Fatal("server could not encode its stable snapshot")
	}
	nchunks := (len(data) + snapshotChunkSize - 1) / snapshotChunkSize
	offer := &SnapshotOffer{
		From:   as,
		Seq:    stable,
		Size:   int64(len(data)),
		Chunks: nchunks,
		Cert:   append([]Checkpoint(nil), rt.stableCert...),
	}
	// Deep-copy the signatures so a test mutating the served certificate
	// never corrupts the server's own copy.
	for i := range offer.Cert {
		offer.Cert[i].Sig = append([]byte(nil), offer.Cert[i].Sig...)
	}
	chunks := make([]*SnapshotChunk, nchunks)
	for i := range chunks {
		lo := i * snapshotChunkSize
		hi := min(lo+snapshotChunkSize, len(data))
		chunk := append([]byte(nil), data[lo:hi]...)
		chunks[i] = &SnapshotChunk{From: as, Seq: stable, Index: i, Data: chunk}
	}
	return offer, chunks
}

func TestStateSyncCorruptChunkRotatesAndConverges(t *testing.T) {
	ring := crypto.NewKeyRing(4, []byte("statesync-test"))
	cfg := Config{ID: 0, N: 4, F: 1, Scheme: crypto.SchemeMAC, CheckpointInterval: 2}
	const k = types.SeqNum(8) // > RetainSlack (2×interval): Fetch cannot close this gap
	server, votes := syncedServer(t, ring, cfg, k)

	fcfg := cfg
	fcfg.ID = 3
	fetcher := NewRuntime(fcfg, ring, fakeNet{}, RuntimeOptions{})
	s := fetcher.Sync

	// Detection: f+1 matching votes (below the nf stabilization quorum)
	// establish the trusted target; the gap exceeds RetainSlack, so the
	// fetcher is Behind and an attempt begins on the next tick.
	for _, cp := range votes[:2] {
		fetcher.OnCheckpoint(cp)
	}
	if s.target != k {
		t.Fatalf("detection target = %d, want %d", s.target, k)
	}
	if !s.Behind() {
		t.Fatal("fetcher should be behind the retained-record horizon")
	}
	now := time.Now()
	s.Tick(now)
	if !s.active {
		t.Fatal("tick should have started a transfer attempt")
	}
	firstServer := s.server

	// Attempt 1: the serving peer is Byzantine — valid offer and certificate,
	// but a flipped byte in the snapshot bytes. Reassembly must fail the
	// digest trust rule and abandon the attempt (one retry recorded).
	offer, chunks := serveSnapshot(t, server, firstServer)
	s.OnOffer(offer)
	if s.offer == nil {
		t.Fatal("valid offer rejected")
	}
	chunks[0].Data[0] ^= 0x40
	for _, c := range chunks {
		s.OnChunk(c)
	}
	if s.active {
		t.Fatal("corrupt chunk must abandon the attempt")
	}
	if got := fetcher.Metrics.StateSyncRetries.Load(); got != 1 {
		t.Fatalf("StateSyncRetries = %d, want 1", got)
	}
	if fetcher.Exec.LastExecuted() != 0 {
		t.Fatal("corrupt snapshot must not install")
	}

	// The immediate re-tick is inside the backoff pause; past it, the
	// fetcher rotates to a different peer.
	s.Tick(now)
	if s.active {
		t.Fatal("retry must respect the backoff pause")
	}
	s.Tick(now.Add(2 * stateSyncMaxBackoff))
	if !s.active {
		t.Fatal("backoff elapsed: a new attempt should have started")
	}
	if s.server == firstServer {
		t.Fatalf("fetcher did not rotate peers (still %d)", s.server)
	}

	// Attempt 2: an honest peer serves the same snapshot; the fetcher
	// verifies and installs it and the executor jumps to the checkpoint.
	offer, chunks = serveSnapshot(t, server, s.server)
	s.OnOffer(offer)
	for _, c := range chunks {
		s.OnChunk(c)
	}
	if s.active {
		t.Fatal("transfer should have completed")
	}
	if got := fetcher.Exec.LastExecuted(); got != k {
		t.Fatalf("fetcher executed head = %d, want %d", got, k)
	}
	if got := fetcher.Metrics.SnapshotsInstalled.Load(); got != 1 {
		t.Fatalf("SnapshotsInstalled = %d, want 1", got)
	}
	wantState, wantLedger, _ := server.Exec.DigestsAt(k)
	if fetcher.Exec.StateDigest() != wantState {
		t.Fatal("installed state digest does not match the certified digest")
	}
	if head := fetcher.Exec.Chain().Head(); head.Hash() != wantLedger {
		t.Fatal("installed ledger head does not match the certified digest")
	}
}

func TestStateSyncRejectsBadCertificates(t *testing.T) {
	ring := crypto.NewKeyRing(4, []byte("statesync-cert-test"))
	cfg := Config{ID: 0, N: 4, F: 1, Scheme: crypto.SchemeMAC, CheckpointInterval: 2}
	const k = types.SeqNum(8)
	server, votes := syncedServer(t, ring, cfg, k)

	fresh := func() (*Runtime, *StateSync) {
		fcfg := cfg
		fcfg.ID = 3
		rt := NewRuntime(fcfg, ring, fakeNet{}, RuntimeOptions{})
		for _, cp := range votes[:2] {
			rt.OnCheckpoint(cp)
		}
		rt.Sync.Tick(time.Now())
		if !rt.Sync.active {
			t.Fatal("attempt did not start")
		}
		return rt, rt.Sync
	}

	corrupt := []struct {
		name string
		mut  func(*SnapshotOffer)
	}{
		{"forged signature", func(o *SnapshotOffer) { o.Cert[0].Sig[0] ^= 1 }},
		{"duplicate signer", func(o *SnapshotOffer) { o.Cert[1] = o.Cert[0] }},
		{"digest disagreement", func(o *SnapshotOffer) { o.Cert[1].State[0] ^= 1 }},
		{"wrong seq", func(o *SnapshotOffer) { o.Cert[0].Seq++ }},
		{"too few signers", func(o *SnapshotOffer) { o.Cert = o.Cert[:1] }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			_, s := fresh()
			offer, _ := serveSnapshot(t, server, s.server)
			tc.mut(offer)
			s.OnOffer(offer)
			if s.offer != nil {
				t.Fatal("offer with an invalid certificate accepted")
			}
			if s.active {
				t.Fatal("invalid certificate must abandon the attempt")
			}
		})
	}
}
