package protocol

import "github.com/poexec/poe/internal/types"

// AdversarySpec is the harness-level Byzantine behaviour specification: one
// declarative description of a faulty leader that every protocol package
// understands, replacing the PoE-only test hook the attack scenarios grew up
// on. The harness installs a spec on exactly one replica (via each
// protocol's Options.Adversary); that replica then misbehaves on its
// propose/certify paths whenever it holds the leader role, while its backup
// roles stay honest — the classic "corrupt primary" adversary of the
// paper's Example 3 and of DESIGN.md §6.
//
// How each protocol applies the spec (the leader-side message is re-signed
// with the faulty replica's real keys, so honest verifiers accept it — this
// is equivocation, not corruption):
//
//   - PoE: PROPOSE variants/suppression per backup; SilenceCertificates
//     withholds the CERTIFY broadcast in the threshold-signature mode
//     (Example 3's darkness attack).
//   - PBFT: PRE-PREPARE variants/suppression per backup.
//   - SBFT: PRE-PREPARE variants/suppression; SilenceCertificates makes the
//     collector withhold FULL-COMMIT-PROOF.
//   - Zyzzyva: ORDER-REQ variants (with a consistently re-derived history
//     digest, so victims speculatively execute the conflicting batch) and
//     suppression per backup.
//   - HotStuff: proposal variants/suppression per replica in rounds where
//     the faulty replica leads.
//
// A nil *AdversarySpec everywhere means an honest replica; the methods are
// nil-safe so call sites need no guards.
type AdversarySpec struct {
	// EquivocateTo lists the replicas that receive a conflicting — but
	// well-formed and correctly signed — variant of every proposal instead
	// of the real one. All listed replicas receive the same variant.
	EquivocateTo map[types.ReplicaID]bool
	// SilenceTo lists the replicas that receive no proposals at all (kept
	// in the dark).
	SilenceTo map[types.ReplicaID]bool
	// SilenceCertificates withholds leader-distributed certificates (PoE's
	// CERTIFY, SBFT's FULL-COMMIT-PROOF): backups support but can never
	// commit, so the failure detector must fire.
	SilenceCertificates bool
}

// ProposeAction is what a faulty leader does with one proposal destination.
type ProposeAction int

// The three per-destination behaviours of a Byzantine proposer.
const (
	ProposeHonest ProposeAction = iota
	ProposeEquivocate
	ProposeSilence
)

// ActionFor returns the leader's behaviour toward one destination. Nil-safe.
func (a *AdversarySpec) ActionFor(to types.ReplicaID) ProposeAction {
	switch {
	case a == nil:
		return ProposeHonest
	case a.SilenceTo[to]:
		return ProposeSilence
	case a.EquivocateTo[to]:
		return ProposeEquivocate
	default:
		return ProposeHonest
	}
}

// SilenceCert reports whether leader-distributed certificates for this
// sequence number are withheld. Nil-safe.
func (a *AdversarySpec) SilenceCert(types.SeqNum) bool {
	return a != nil && a.SilenceCertificates
}

// EquivocateBatch derives the conflicting variant batch a Byzantine leader
// proposes to its equivocation targets. The variant must (1) carry a
// different batch digest — otherwise it is not an equivocation — and
// (2) still pass honest verification, which checks every client signature;
// so rather than tampering with any request (the signature would break and
// the pipeline would drop the whole proposal, degrading the attack to
// silence), the variant reorders or duplicates the *legitimately signed*
// requests: batch digests hash the request-digest sequence, so both edits
// change the digest while every signature stays valid. Deterministic, so
// all equivocation targets see the same variant.
func EquivocateBatch(b types.Batch) types.Batch {
	v := b.Clone()
	switch {
	case len(v.Requests) >= 2:
		for i, j := 0, len(v.Requests)-1; i < j; i, j = i+1, j-1 {
			v.Requests[i], v.Requests[j] = v.Requests[j], v.Requests[i]
		}
	case len(v.Requests) == 1:
		v.Requests = append(v.Requests, v.Requests[0])
	default:
		// Zero-payload batch: the dummy-execution count is part of the
		// digest.
		v.ZeroCount++
	}
	return types.Batch{Requests: v.Requests, ZeroPayload: v.ZeroPayload, ZeroCount: v.ZeroCount}
}

// EquivocateHalf builds the quorum-splitting equivocator: the faulty leader
// sends the variant batch to every second other replica starting with the
// first — ⌈(n−1)/2⌉ receivers, the larger half. The honest side is then the
// leader plus ⌊(n−1)/2⌋ backups, and for every n ≥ 4 both sides stay below
// the n−f support quorum (at n=4: 2 variant receivers and a 2-strong honest
// side against a quorum of 3), so nothing can commit and the view must
// change — the strongest safety test the paper's Example 3(1) describes.
// Rounding the other way would leave the honest side at quorum strength for
// small n and quietly degrade the attack to a single lagging victim.
func EquivocateHalf(n int, faulty types.ReplicaID) *AdversarySpec {
	spec := &AdversarySpec{EquivocateTo: make(map[types.ReplicaID]bool)}
	parity := 0
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		if id == faulty {
			continue
		}
		if parity%2 == 0 {
			spec.EquivocateTo[id] = true
		}
		parity++
	}
	return spec
}

// DarkQuorum builds the selective-silence adversary of Example 3(2): the
// faulty leader keeps f replicas in the dark. The remaining n−f can still
// decide, so the protocol keeps committing while the dark replicas must
// recover through state transfer.
func DarkQuorum(n, f int, faulty types.ReplicaID) *AdversarySpec {
	spec := &AdversarySpec{SilenceTo: make(map[types.ReplicaID]bool)}
	for i := n - 1; i >= 0 && len(spec.SilenceTo) < f; i-- {
		id := types.ReplicaID(i)
		if id == faulty {
			continue
		}
		spec.SilenceTo[id] = true
	}
	return spec
}
