package protocol

import (
	"time"

	"github.com/poexec/poe/internal/types"
)

// Batcher is the primary-side batch-creation stage (Fig 6, §III "Batching"):
// it aggregates incoming client requests into batches of a configured size,
// deduplicating retransmissions against both the pending queue and the
// already-proposed history.
//
// Batcher is used from a single replica event loop and is not safe for
// concurrent use.
type Batcher struct {
	max         int
	linger      time.Duration
	zeroPayload bool

	pending  []types.Request
	oldest   time.Time
	proposed map[types.ClientID]uint64
}

// NewBatcher creates a batcher producing batches of at most max requests.
// If zeroPayload is set, produced batches carry the zero-payload marker so
// replicas execute dummy instructions (§IV-E).
func NewBatcher(max int, linger time.Duration, zeroPayload bool) *Batcher {
	return &Batcher{
		max:         max,
		linger:      linger,
		zeroPayload: zeroPayload,
		proposed:    make(map[types.ClientID]uint64),
	}
}

// Add queues a client request. It returns true if a full batch is now
// available. Duplicate requests (client-local sequence number not newer than
// the last queued or proposed one) are dropped.
func (b *Batcher) Add(req types.Request) bool {
	if dedupExempt(&req.Txn) {
		// Tiered reads falling back to ordering run in their own client-local
		// sequence space: letting them touch the write watermark would either
		// drop the read (seq at or below the watermark) or mask genuine
		// writes (seq above it). They skip the watermark entirely; execution
		// is idempotent, so a retransmitted fallback read merely re-executes.
		if len(b.pending) == 0 {
			b.oldest = time.Now()
		}
		b.pending = append(b.pending, req)
		return len(b.pending) >= b.max
	}
	if req.Txn.Seq <= b.proposed[req.Txn.Client] {
		return len(b.pending) >= b.max
	}
	b.proposed[req.Txn.Client] = req.Txn.Seq
	if len(b.pending) == 0 {
		b.oldest = time.Now()
	}
	b.pending = append(b.pending, req)
	return len(b.pending) >= b.max
}

// Pending returns the number of queued requests.
func (b *Batcher) Pending() int { return len(b.pending) }

// Ripe reports whether a partial batch has lingered long enough to propose.
func (b *Batcher) Ripe(now time.Time) bool {
	return len(b.pending) > 0 && now.Sub(b.oldest) >= b.linger
}

// Take removes and returns the next batch. If force is false, a batch is
// returned only when full; if force is true, any non-empty pending set is
// batched. The second return is false when no batch is available.
func (b *Batcher) Take(force bool) (types.Batch, bool) {
	if len(b.pending) == 0 {
		return types.Batch{}, false
	}
	if !force && len(b.pending) < b.max {
		return types.Batch{}, false
	}
	n := b.max
	if n > len(b.pending) {
		n = len(b.pending)
	}
	reqs := make([]types.Request, n)
	copy(reqs, b.pending[:n])
	rest := b.pending[n:]
	b.pending = append(b.pending[:0:0], rest...)
	if len(b.pending) > 0 {
		b.oldest = time.Now()
	}
	batch := types.Batch{Requests: reqs}
	if b.zeroPayload {
		batch.ZeroPayload = true
		batch.ZeroCount = n
	}
	return batch, true
}

// Forget removes a client's dedup entry (used when a view change discards a
// proposal so the request can be re-proposed by the next primary).
func (b *Batcher) Forget(client types.ClientID) {
	delete(b.proposed, client)
}

// ResetProposed clears the proposed-history dedup map. A new primary calls
// this on taking over: its knowledge of what was proposed comes from the
// new-view state, not from its own batching history.
func (b *Batcher) ResetProposed() {
	b.proposed = make(map[types.ClientID]uint64)
}

// PruneProposed drops proposed-history entries that executed reports as
// already covered by the executor's dedup history. Called at stable
// checkpoints: without it the map grows by one entry per client forever. A
// pruned client's retransmission re-enters the pending queue, where the
// executor's deterministic dedup (and the reply cache) still suppress
// re-execution.
func (b *Batcher) PruneProposed(executed func(types.ClientID, uint64) bool) {
	for c, seq := range b.proposed {
		if executed(c, seq) {
			delete(b.proposed, c)
		}
	}
}
