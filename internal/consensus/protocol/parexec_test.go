package protocol

// Serial-vs-parallel executor twins: the same decided stream fed to a plain
// executor and to one with the conflict-aware engine attached must produce
// identical per-sequence checkpoint digests, reply results, dedup behaviour,
// rollback outcomes, WAL bytes on disk, and recovery results. These tests
// pin the protocol-layer half of the determinism contract (docs/DESIGN.md
// §7); the engine-internal half lives in internal/exec.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/poexec/poe/internal/exec"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// volatileExec builds an in-memory executor, optionally with the parallel
// engine attached.
func volatileExec(workers int) *Executor {
	e := NewExecutor(store.New(), ledger.NewChain(0))
	e.RetainSlack = 1 << 20
	if workers > 0 {
		e.EnableParallel(exec.New(workers), nil)
	}
	return e
}

// durableParallelExec mirrors durableExec with the parallel engine attached
// before recovery, replaying the WAL suffix through CommitMany as one window
// — exactly NewRuntime's recovery sequence with ParallelExec set.
func durableParallelExec(t *testing.T, dir string, workers int) (*Executor, *storage.Store) {
	t.Helper()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("open storage: %v", err)
	}
	rec := st.Recovered()
	kv := store.New()
	var chain *ledger.Chain
	if rec.Snapshot != nil {
		kv.Restore(rec.Snapshot.Data, rec.Snapshot.Seq)
		chain = ledger.Restore(rec.Snapshot.Head)
	} else {
		chain = ledger.NewChain(0)
	}
	e := NewExecutor(kv, chain)
	e.RetainSlack = 1 << 20
	e.EnableParallel(exec.New(workers), nil)
	if rec.Snapshot != nil {
		e.Restore(rec.Snapshot.Seq, rec.Snapshot.LastCli)
	}
	e.CommitMany(rec.Records)
	e.AttachStorage(st)
	return e, st
}

// parBatch builds a batch of read-modify-write transactions over a small key
// space, deterministic in (seq, salt): conflict-heavy across batches.
func parBatch(seq types.SeqNum, salt int) types.Batch {
	var b types.Batch
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", (int(seq)+i*salt)%5)
		b.Requests = append(b.Requests, types.Request{Txn: types.Transaction{
			Client: types.ClientIDBase + types.ClientID(i),
			Seq:    uint64(seq),
			Ops: []types.Op{
				{Kind: types.OpRead, Key: key},
				{Kind: types.OpWrite, Key: key, Value: []byte{byte(seq), byte(i), byte(salt)}},
			},
		}})
	}
	return b
}

// assertTwinsEqual compares every observable the checkpoint/chaos machinery
// relies on, at every executed sequence number.
func assertTwinsEqual(t *testing.T, serial, par *Executor) {
	t.Helper()
	if s, p := serial.LastExecuted(), par.LastExecuted(); s != p {
		t.Fatalf("executed head diverged: serial %d, parallel %d", s, p)
	}
	if serial.StateDigest() != par.StateDigest() {
		t.Fatal("state digest diverged")
	}
	sh, ph := serial.Chain().Head(), par.Chain().Head()
	if sh.Hash() != ph.Hash() {
		t.Fatal("ledger head diverged")
	}
	for seq := types.SeqNum(1); seq <= serial.LastExecuted(); seq++ {
		ss, sl, sok := serial.DigestsAt(seq)
		ps, pl, pok := par.DigestsAt(seq)
		if sok != pok || ss != ps || sl != pl {
			t.Fatalf("checkpoint digests diverged at seq %d", seq)
		}
	}
}

// assertEventsEqual compares the Executed streams (records and reply
// results) from one Commit call.
func assertEventsEqual(t *testing.T, serial, par []Executed) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("event count diverged: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Rec.Seq != par[i].Rec.Seq || serial[i].Rec.Digest != par[i].Rec.Digest {
			t.Fatalf("event %d record diverged", i)
		}
		if !reflect.DeepEqual(serial[i].Results, par[i].Results) {
			t.Fatalf("event %d results diverged at seq %d:\n serial   %v\n parallel %v",
				i, serial[i].Rec.Seq, serial[i].Results, par[i].Results)
		}
	}
}

// TestParallelTwinSingleBatches drives both executors one batch at a time —
// parallel windows of depth 1, the live steady state.
func TestParallelTwinSingleBatches(t *testing.T) {
	serial, par := volatileExec(0), volatileExec(4)
	for seq := types.SeqNum(1); seq <= 30; seq++ {
		b := parBatch(seq, 3)
		se := serial.Commit(seq, 0, b, []byte{byte(seq)})
		pe := par.Commit(seq, 0, b, []byte{byte(seq)})
		assertEventsEqual(t, se, pe)
	}
	assertTwinsEqual(t, serial, par)
}

// TestParallelTwinDeepWindows commits out of order so the parallel executor
// drains multi-batch windows (cross-batch conflict scheduling) while the
// serial twin executes the same batches one by one.
func TestParallelTwinDeepWindows(t *testing.T) {
	serial, par := volatileExec(0), volatileExec(4)
	rng := rand.New(rand.NewSource(7))
	next := types.SeqNum(1)
	for round := 0; round < 12; round++ {
		depth := 1 + rng.Intn(6)
		batches := make([]types.Batch, depth)
		for i := range batches {
			batches[i] = parBatch(next+types.SeqNum(i), 1+rng.Intn(4))
		}
		// Feed the window back-to-front: everything parks in pending until
		// the first sequence number arrives, then drains as one window.
		var pe, se []Executed
		for i := depth - 1; i >= 0; i-- {
			seq := next + types.SeqNum(i)
			se = append(se, serial.Commit(seq, 0, batches[i], nil)...)
			pe = append(pe, par.Commit(seq, 0, batches[i], nil)...)
		}
		assertEventsEqual(t, se, pe)
		next += types.SeqNum(depth)
	}
	assertTwinsEqual(t, serial, par)
}

// TestParallelTwinDedup sends duplicate client sequence numbers inside and
// across batches: the dedup pre-pass must suppress exactly what the serial
// path suppresses, and AlreadyExecuted must agree.
func TestParallelTwinDedup(t *testing.T) {
	serial, par := volatileExec(0), volatileExec(4)
	mk := func(seq types.SeqNum, cliSeq uint64) types.Batch {
		return writeBatch(types.ClientIDBase, cliSeq, "dup", byte(seq))
	}
	// seq 1 executes cliSeq 5; seq 2 repeats cliSeq 5 (fully stale batch);
	// seq 3 mixes a stale and a fresh request; feed 2 and 3 before 1 so the
	// parallel side handles the duplicates inside one window.
	b1, b2 := mk(1, 5), mk(2, 5)
	b3 := mk(3, 5)
	b3.Requests = append(b3.Requests, types.Request{Txn: types.Transaction{
		Client: types.ClientIDBase, Seq: 6,
		Ops: []types.Op{{Kind: types.OpWrite, Key: "dup", Value: []byte{99}}},
	}})
	var se, pe []Executed
	for _, c := range []struct {
		seq types.SeqNum
		b   types.Batch
	}{{3, b3}, {2, b2}, {1, b1}} {
		se = append(se, serial.Commit(c.seq, 0, c.b, nil)...)
		pe = append(pe, par.Commit(c.seq, 0, c.b, nil)...)
	}
	assertEventsEqual(t, se, pe)
	assertTwinsEqual(t, serial, par)
	for _, cs := range []uint64{4, 5, 6, 7} {
		if s, p := serial.AlreadyExecuted(types.ClientIDBase, cs), par.AlreadyExecuted(types.ClientIDBase, cs); s != p {
			t.Fatalf("AlreadyExecuted(%d) diverged: serial %v, parallel %v", cs, s, p)
		}
	}
}

// TestParallelRollbackMidStream speculatively executes a window, rolls both
// twins back mid-window, and re-executes a different suffix — the PoE
// view-change shape. Undo journals (store preimages and lastCli marks) must
// rewind identically.
func TestParallelRollbackMidStream(t *testing.T) {
	serial, par := volatileExec(0), volatileExec(4)
	commitBoth := func(seq types.SeqNum, b types.Batch) {
		t.Helper()
		se := serial.Commit(seq, 0, b, nil)
		pe := par.Commit(seq, 0, b, nil)
		assertEventsEqual(t, se, pe)
	}
	for seq := types.SeqNum(1); seq <= 10; seq++ {
		commitBoth(seq, parBatch(seq, 2))
	}
	if err := serial.Rollback(4); err != nil {
		t.Fatalf("serial rollback: %v", err)
	}
	if err := par.Rollback(4); err != nil {
		t.Fatalf("parallel rollback: %v", err)
	}
	assertTwinsEqual(t, serial, par)
	// Dedup history must also have rewound: cliSeq 5..10 are executable again.
	for _, cs := range []uint64{4, 5, 10} {
		if s, p := serial.AlreadyExecuted(types.ClientIDBase, cs), par.AlreadyExecuted(types.ClientIDBase, cs); s != p {
			t.Fatalf("post-rollback AlreadyExecuted(%d) diverged", cs)
		}
	}
	// Re-execute a different history over the rolled-back range.
	for seq := types.SeqNum(5); seq <= 12; seq++ {
		commitBoth(seq, parBatch(seq, 5))
	}
	assertTwinsEqual(t, serial, par)
}

// walBytes reads the concatenated WAL file contents of a data dir.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	return all
}

// TestParallelWALByteStream runs durable twins and requires their on-disk
// WAL streams to be byte-identical — the strongest form of "the WAL cannot
// tell which engine executed it".
func TestParallelWALByteStream(t *testing.T) {
	serialDir, parDir := t.TempDir(), t.TempDir()
	se, sst := durableExec(t, serialDir)
	pe, pst := durableExec(t, parDir)
	pe.EnableParallel(exec.New(4), nil)
	next := types.SeqNum(1)
	for round := 0; round < 5; round++ {
		depth := types.SeqNum(3 + round)
		for i := depth; i >= 1; i-- {
			seq := next + i - 1
			b := parBatch(seq, round+1)
			se.Commit(seq, 0, b, []byte{byte(seq)})
			pe.Commit(seq, 0, b, []byte{byte(seq)})
		}
		next += depth
	}
	assertTwinsEqual(t, se, pe)
	sst.Close()
	pst.Close()
	sb, pb := walBytes(t, serialDir), walBytes(t, parDir)
	if len(sb) == 0 {
		t.Fatal("serial WAL is empty; test is vacuous")
	}
	if !bytes.Equal(sb, pb) {
		t.Fatalf("WAL byte streams diverge: serial %d bytes, parallel %d bytes", len(sb), len(pb))
	}
}

// TestParallelRecoveryReplayDeterminism crashes a durable run and recovers
// it twice from copies of the same directory — once serially, once through
// the parallel engine (replaying the whole WAL suffix as one window via
// CommitMany) — and requires identical recovered state.
func TestParallelRecoveryReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	e, st := durableExec(t, dir)
	for seq := types.SeqNum(1); seq <= 20; seq++ {
		e.Commit(seq, 0, parBatch(seq, 3), []byte{byte(seq)})
	}
	e.MarkStable(8) // snapshot at 8, WAL suffix 9..20 replays at recovery
	for seq := types.SeqNum(21); seq <= 25; seq++ {
		e.Commit(seq, 0, parBatch(seq, 4), []byte{byte(seq)})
	}
	wantState := e.StateDigest()
	wantHead := headBlock(e)
	st.Close()

	// Copy the dir so both twins recover from the identical byte state.
	parDir := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(parDir, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	se, sst := durableExec(t, dir)
	defer sst.Close()
	pe, pst := durableParallelExec(t, parDir, 4)
	defer pst.Close()
	if se.LastExecuted() != 25 || pe.LastExecuted() != 25 {
		t.Fatalf("recovered heads: serial %d, parallel %d, want 25", se.LastExecuted(), pe.LastExecuted())
	}
	if se.StateDigest() != wantState || pe.StateDigest() != wantState {
		t.Fatal("recovered state digest diverged from pre-crash state")
	}
	if headBlock(se) != wantHead || headBlock(pe) != wantHead {
		t.Fatal("recovered ledger head diverged from pre-crash head")
	}
	assertTwinsEqual(t, se, pe)
}
