package protocol

import (
	"context"
	"sync"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// Runtime bundles the pieces every protocol replica needs: configuration,
// keys, transport, the parallel authentication pipeline, the ordered
// executor, the primary-side batcher, metrics, the reply cache, and the
// shared checkpoint sub-protocol. It corresponds to the per-replica fabric
// of §III that all five protocols are implemented on.
type Runtime struct {
	Cfg     Config
	Ring    *crypto.KeyRing
	Keys    *crypto.NodeKeys
	TS      crypto.ThresholdScheme
	Net     network.Transport
	Exec    *Executor
	Batcher *Batcher
	Metrics *Metrics

	// Pipeline is the replica's authentication pipeline, set by
	// StartPipeline when the replica's Run loop starts.
	Pipeline *Verifier

	// reqSeen remembers digests of client requests whose signature this
	// replica has already verified, so retransmissions and re-proposals
	// (view changes, rotating leaders) don't pay Ed25519 twice. Guarded by
	// reqMu: the pipeline verifies from worker goroutines.
	reqMu   sync.Mutex
	reqSeen map[types.Digest]struct{}

	// lastReply caches the most recent Inform per client so duplicates can
	// be answered without re-execution.
	lastReply map[types.ClientID]*Inform

	// checkpoint vote bookkeeping
	cpVotes map[types.SeqNum]map[types.ReplicaID]types.Digest

	// RecoveredSeq is the last sequence number rebuilt from durable state
	// (snapshot + WAL replay) at construction; 0 for a fresh replica.
	// Protocols use it to resume their sequencing (nextPropose, rounds)
	// past the recovered prefix instead of restarting at 1.
	RecoveredSeq types.SeqNum

	verifyWorkers int
}

// RuntimeOptions tune runtime construction.
type RuntimeOptions struct {
	// ZeroPayload puts the batcher in zero-payload mode.
	ZeroPayload bool
	// InitialTable pre-loads the store (identical on every replica). When
	// Storage recovers a snapshot, the snapshot supersedes it: the table
	// was loaded before the first executed batch and is part of the
	// snapshotted state.
	InitialTable map[string][]byte
	// VerifyWorkers overrides the authentication pipeline's pool size
	// (default GOMAXPROCS).
	VerifyWorkers int
	// Storage, when set, makes the replica durable: the state recovered
	// from its data directory (checkpoint snapshot + WAL replay) is
	// rebuilt into the executor at construction, every subsequent
	// execution is logged before the client is answered, and stable
	// checkpoints write snapshots. The replica catches up past its last
	// durable sequence number through the ordinary Fetch state transfer.
	Storage *storage.Store
}

// NewRuntime builds a runtime for one replica. With RuntimeOptions.Storage
// set, the store, ledger, and executor are rebuilt from the recovered
// durable state — snapshot restore followed by WAL replay through the
// ordinary Commit path — before the runtime is handed to the protocol.
func NewRuntime(cfg Config, ring *crypto.KeyRing, net network.Transport, opts RuntimeOptions) *Runtime {
	cfg = cfg.WithDefaults()
	var recovered *storage.Recovered
	if opts.Storage != nil {
		recovered = opts.Storage.Recovered()
	}
	kv := store.New()
	var chain *ledger.Chain
	if recovered != nil && recovered.Snapshot != nil {
		snap := recovered.Snapshot
		kv.Restore(snap.Data, snap.Seq)
		chain = ledger.Restore(snap.Head)
	} else {
		if opts.InitialTable != nil {
			kv.Load(opts.InitialTable)
		}
		chain = ledger.NewChain(cfg.Primary(0))
	}
	rt := &Runtime{
		Cfg:  cfg,
		Ring: ring,
		Keys: ring.NodeKeys(types.ReplicaNode(cfg.ID)),
		// The threshold scheme follows the authentication scheme: the
		// asymmetric schemes get unforgeable Ed25519 aggregation (the
		// paper's BLS role), the symmetric/none schemes get the cheap
		// HMAC construction.
		TS: crypto.NewThresholdScheme(ring, cfg.ID, cfg.NF(),
			cfg.Scheme == crypto.SchemeTS || cfg.Scheme == crypto.SchemeED),
		Net:       net,
		Exec:      NewExecutor(kv, chain),
		Batcher:   NewBatcher(cfg.BatchSize, cfg.BatchLinger, opts.ZeroPayload),
		Metrics:   &Metrics{},
		reqSeen:   make(map[types.Digest]struct{}),
		lastReply: make(map[types.ClientID]*Inform),
		cpVotes:   make(map[types.SeqNum]map[types.ReplicaID]types.Digest),
	}
	rt.verifyWorkers = opts.VerifyWorkers
	// The pipeline object exists from construction so handlers may register
	// share payloads (NoteDigest) unconditionally; StartPipeline arms it
	// with the protocol's verify function when the Run loop starts.
	rt.Pipeline = NewVerifier(nil, rt.verifyWorkers)
	// Keep enough history beyond the stable checkpoint to serve state
	// transfer to replicas a malicious primary kept in the dark.
	rt.Exec.RetainSlack = 2 * cfg.CheckpointInterval
	if recovered != nil {
		if recovered.Snapshot != nil {
			rt.Exec.Restore(recovered.Snapshot.Seq, recovered.Snapshot.LastCli)
		}
		// Replay the WAL suffix through the ordinary Commit path: the same
		// deterministic execution, dedup, and ledger appends as the first
		// time around, so the recovered replica lands on the same state
		// digest. The WAL is attached only afterwards — replayed records
		// are already on disk and must not be re-appended.
		for i := range recovered.Records {
			rec := &recovered.Records[i]
			rec.Batch.MemoizeDigests()
			rt.Exec.Commit(rec.Seq, rec.View, rec.Batch, rec.Proof)
		}
		rt.Exec.AttachStorage(opts.Storage)
		rt.RecoveredSeq = recovered.LastSeq
	}
	return rt
}

// Broadcast sends msg to every replica except this one.
func (rt *Runtime) Broadcast(msg any) {
	network.Broadcast(rt.Net, rt.Cfg.N, msg, true)
}

// SendReplica sends msg to one replica.
func (rt *Runtime) SendReplica(to types.ReplicaID, msg any) {
	rt.Net.Send(types.ReplicaNode(to), msg)
}

// Inform sends the execution result for one transaction to its client and
// caches it for duplicate suppression. The reply carries a MAC: per §II-E
// replicas answer clients with cheap MACs rather than signatures.
func (rt *Runtime) Inform(view types.View, seq types.SeqNum, req *types.Request, res types.Result, speculative bool, orderProof types.Digest) {
	client := req.Txn.Client
	msg := &Inform{
		From:        rt.Cfg.ID,
		Digest:      req.Digest(),
		View:        view,
		Seq:         seq,
		ClientSeq:   req.Txn.Seq,
		Values:      res.Values,
		Speculative: speculative,
		OrderProof:  orderProof,
	}
	key := msg.Key()
	msg.Tag = rt.Keys.MAC(types.ClientNode(client), key.Digest[:])
	rt.lastReply[client] = msg
	rt.Net.Send(types.ClientNode(client), msg)
}

// ReplayReply re-sends the cached reply for a duplicate request, if any.
// It returns true when a cached reply existed.
func (rt *Runtime) ReplayReply(req *types.Request) bool {
	last, ok := rt.lastReply[req.Txn.Client]
	if !ok || last.ClientSeq != req.Txn.Seq {
		return false
	}
	rt.Net.Send(types.ClientNode(req.Txn.Client), last)
	return true
}

// InformBatch sends INFORMs for every result of an executed batch.
func (rt *Runtime) InformBatch(rec *types.ExecRecord, results []types.Result, speculative bool, orderProof types.Digest) {
	// Results are produced in batch order for the deduplicated effective
	// batch; match them to requests by (client, seq).
	byKey := make(map[types.ClientID]map[uint64]types.Result, len(results))
	for _, r := range results {
		inner, ok := byKey[r.Client]
		if !ok {
			inner = make(map[uint64]types.Result)
			byKey[r.Client] = inner
		}
		inner[r.Seq] = r
	}
	for i := range rec.Batch.Requests {
		req := &rec.Batch.Requests[i]
		res, ok := byKey[req.Txn.Client][req.Txn.Seq]
		if !ok {
			// Deduplicated away: answer from the reply cache instead.
			rt.ReplayReply(req)
			continue
		}
		rt.Inform(rec.View, rec.Seq, req, res, speculative, orderProof)
	}
}

// StartPipeline starts the replica's authentication pipeline over the
// transport inbox and returns the channel of pre-verified envelopes the Run
// loop consumes. The protocol-specific verify function runs on worker
// goroutines; see VerifyFunc for its constraints.
func (rt *Runtime) StartPipeline(ctx context.Context, verify VerifyFunc) <-chan network.Envelope {
	rt.Pipeline.verify = verify
	return rt.Pipeline.Pipe(ctx, rt.Net.Inbox())
}

// VerifyClientRequest checks the client's signature on a request. With
// SchemeNone all authentication is disabled (Fig 8's "None" column). The
// caller must own the request (see types.Request): its digest is memoized
// as a side effect. A signature is Ed25519-verified at most once per
// replica; repeats (retransmissions, re-proposals after a view change,
// rotating-leader rebroadcasts) are memo lookups.
func (rt *Runtime) VerifyClientRequest(req *types.Request) bool {
	if rt.Cfg.Scheme == crypto.SchemeNone {
		return true
	}
	d := req.Digest()
	rt.reqMu.Lock()
	_, hit := rt.reqSeen[d]
	rt.reqMu.Unlock()
	if hit {
		return true
	}
	if !rt.Keys.VerifyFrom(types.ClientNode(req.Txn.Client), d[:], req.Sig) {
		return false
	}
	rt.reqMu.Lock()
	if len(rt.reqSeen) >= 1<<15 {
		rt.reqSeen = make(map[types.Digest]struct{})
	}
	rt.reqSeen[d] = struct{}{}
	rt.reqMu.Unlock()
	return true
}

// VerifyBatch checks every client signature in an owned batch, fanning the
// Ed25519 work out across the verification pool, and memoizes all digests.
// It is the pipeline-side replacement for the per-request loop replicas used
// to run on their event loop when handling a proposal.
func (rt *Runtime) VerifyBatch(b *types.Batch) bool {
	b.MemoizeDigests()
	if rt.Cfg.Scheme == crypto.SchemeNone {
		return true
	}
	return crypto.ParallelAll(len(b.Requests), func(i int) bool {
		return rt.VerifyClientRequest(&b.Requests[i])
	})
}

// VerifyCommonInbound handles the message types shared by every protocol:
// client requests (signature checked, envelope rewritten to an owned clone),
// forwarded requests, and fetch replies (cloned so digest memoization stays
// replica-local; certificates are still validated by the handler through the
// memoized threshold scheme). It reports (keep, handled); handled false
// means the message is protocol-specific and the caller must classify it.
func (rt *Runtime) VerifyCommonInbound(env *network.Envelope) (keep, handled bool) {
	switch m := env.Msg.(type) {
	case *ClientRequest:
		cp := &ClientRequest{Req: types.CloneRequest(m.Req)}
		if !env.From.IsClient() || cp.Req.Txn.Client != env.From.Client() {
			return false, true
		}
		if !rt.VerifyClientRequest(&cp.Req) {
			return false, true
		}
		env.Msg = cp
		return true, true
	case *ForwardRequest:
		cp := &ForwardRequest{Req: types.CloneRequest(m.Req)}
		if !rt.VerifyClientRequest(&cp.Req) {
			return false, true
		}
		env.Msg = cp
		return true, true
	case *FetchReply:
		cp := &FetchReply{From: m.From, Records: types.CloneRecords(m.Records)}
		for i := range cp.Records {
			cp.Records[i].Batch.MemoizeDigests()
		}
		env.Msg = cp
		return true, true
	case *Checkpoint:
		// Signatures are verified by OnCheckpoint (rare path), which skips
		// the check for our own vote — so a network message claiming our
		// identity is a spoof and must not reach it.
		return m.From != rt.Cfg.ID, true
	case *Fetch:
		// Unauthenticated by design.
		return true, true
	}
	return true, false
}

// HandleFetch answers a state-transfer request with retained records.
func (rt *Runtime) HandleFetch(f *Fetch) {
	recs := rt.Exec.ExecutedSince(f.After)
	if f.Max > 0 && len(recs) > f.Max {
		recs = recs[:f.Max]
	}
	if len(recs) == 0 {
		return
	}
	rt.SendReplica(f.From, &FetchReply{From: rt.Cfg.ID, Records: recs})
}

// --- checkpoint sub-protocol (§II-D) ---

// MaybeCheckpoint is called after executing seq; when seq crosses a
// checkpoint boundary the replica broadcasts a signed Checkpoint message.
func (rt *Runtime) MaybeCheckpoint(seq types.SeqNum) {
	if seq == 0 || seq%rt.Cfg.CheckpointInterval != 0 {
		return
	}
	cp := &Checkpoint{
		From:   rt.Cfg.ID,
		Seq:    seq,
		State:  rt.Exec.StateDigest(),
		Ledger: headHash(rt.Exec.Chain()),
	}
	cp.Sig = rt.Keys.Sign(cp.SignedPayload())
	rt.OnCheckpoint(cp) // count own vote
	rt.Broadcast(cp)
}

// OnCheckpoint records a checkpoint vote. When nf distinct replicas vote the
// same digests for a sequence number at or above the current stable
// checkpoint, that checkpoint becomes stable. It returns the new stable
// sequence number and true on the transition.
func (rt *Runtime) OnCheckpoint(cp *Checkpoint) (types.SeqNum, bool) {
	if cp.From != rt.Cfg.ID && !rt.Keys.VerifyFrom(types.ReplicaNode(cp.From), cp.SignedPayload(), cp.Sig) {
		return 0, false
	}
	if cp.Seq <= rt.Exec.StableCheckpointSeq() {
		return 0, false
	}
	votes, ok := rt.cpVotes[cp.Seq]
	if !ok {
		votes = make(map[types.ReplicaID]types.Digest)
		rt.cpVotes[cp.Seq] = votes
	}
	votes[cp.From] = types.DigestConcat(cp.State[:], cp.Ledger[:])
	// Count the plurality digest; non-faulty replicas agree, so requiring
	// nf matching votes tolerates f liars.
	counts := make(map[types.Digest]int, len(votes))
	for _, d := range votes {
		counts[d]++
	}
	for _, c := range counts {
		if c >= rt.Cfg.NF() {
			rt.Exec.MarkStable(cp.Seq)
			rt.Metrics.Checkpoints.Add(1)
			for s := range rt.cpVotes {
				if s <= cp.Seq {
					delete(rt.cpVotes, s)
				}
			}
			return cp.Seq, true
		}
	}
	return 0, false
}

func headHash(c *ledger.Chain) types.Digest {
	head := c.Head()
	return head.Hash()
}
