package protocol

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/exec"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// Runtime bundles the pieces every protocol replica needs: configuration,
// keys, transport, the parallel authentication pipeline, the ordered
// executor, the primary-side batcher, metrics, the reply cache, and the
// shared checkpoint sub-protocol. It corresponds to the per-replica fabric
// of §III that all five protocols are implemented on.
type Runtime struct {
	Cfg     Config
	Ring    *crypto.KeyRing
	Keys    *crypto.NodeKeys
	TS      crypto.ThresholdScheme
	Net     network.Transport
	Exec    *Executor
	Batcher *Batcher
	Metrics *Metrics

	// Pipeline is the replica's inbound authentication pipeline, armed by
	// StartPipeline when the replica's Run loop starts. Egress is its
	// outbound twin: the signing pipeline every normal-case send goes
	// through (inline until StartPipeline starts it).
	Pipeline *Verifier
	Egress   *Egress

	// Store is the durable store backing the executor's WAL, nil for a
	// volatile replica. The durability gate mirrors its group-commit stats
	// into Metrics on every committed group, which is what the harness
	// reads.
	Store *storage.Store

	// reqSeen remembers digests of client requests whose signature this
	// replica has already verified, so retransmissions and re-proposals
	// (view changes, rotating leaders) don't pay Ed25519 twice. The value is
	// the stable-checkpoint sequence number at verification time, which is
	// what lets PruneAtStable age entries out instead of leaking one per
	// request forever. Guarded by reqMu: the pipeline verifies from worker
	// goroutines.
	reqMu   sync.Mutex
	reqSeen map[types.Digest]types.SeqNum

	// stableSeq mirrors the executor's stable checkpoint for lock-free reads
	// from pipeline workers (reqSeen stamping).
	stableSeq atomic.Int64

	// lastReply caches a small ring of recent Informs per client so
	// duplicates can be answered without re-execution — a ring rather than
	// depth-1, so a pipelined client's retry of an *older* in-flight
	// sequence is still answered from cache exactly. Guarded by replyMu:
	// replies are cached by egress workers and read by the event loop.
	replyMu   sync.Mutex
	lastReply map[types.ClientID]*replyRing

	// Lease is the read-lease state machine (lease.go); specReads is the
	// registry of served speculative reads still exposed to rollback
	// (readpath.go). readMu guards the registry: repair fires from
	// Executor.Rollback under the executor lock.
	Lease     *Lease
	readMu    sync.Mutex
	specReads []specRead

	// Durability gate: with storage attached, client replies are held here
	// until the WAL group carrying their batch has been committed (and, in
	// Sync mode, fsynced). durWater is the highest group-durable sequence
	// number; durPending holds the release continuations of replies whose
	// batches are executed but not yet durable.
	durMu      sync.Mutex
	durable    bool
	durWater   types.SeqNum
	durPending map[types.SeqNum][]func()

	// checkpoint vote bookkeeping. The full signed votes are retained (not
	// just their digests): when a checkpoint stabilizes, the matching-digest
	// subset becomes stableCert — the self-contained proof a snapshot server
	// attaches to offers so a fetcher that never saw the votes can still
	// verify the state it installs.
	cpVotes       map[types.SeqNum]map[types.ReplicaID]*Checkpoint
	stableCert    []Checkpoint
	stableCertSeq types.SeqNum

	// snapCache caches the encoded snapshot last served for state transfer,
	// keyed by its checkpoint sequence number, so a burst of lagging peers
	// does not rebuild and re-encode the table per request. Event-loop owned.
	snapCache struct {
		seq  types.SeqNum
		data []byte
	}

	// fetchRound rotates record-fetch and snapshot requests across peers so
	// one slow or Byzantine server cannot wedge catch-up. Event-loop owned.
	fetchRound int

	// Sync is the snapshot state-transfer manager (statesync.go): it watches
	// checkpoint certificates for proof the cluster's stable checkpoint has
	// outrun Fetch's retention horizon and then drives chunked snapshot
	// transfer. Event-loop owned; protocols route its messages and tick it.
	Sync *StateSync

	// RecoveredSeq is the last sequence number rebuilt from durable state
	// (snapshot + WAL replay) at construction; 0 for a fresh replica.
	// Protocols use it to resume their sequencing (nextPropose, rounds)
	// past the recovered prefix instead of restarting at 1.
	RecoveredSeq types.SeqNum

	// peers is the fixed broadcast destination list (every replica but this
	// one), built once so the hot path hands the transport a ready-made
	// fan-out for its marshal-once Broadcast.
	peers []types.NodeID

	verifyWorkers int
}

// RuntimeOptions tune runtime construction.
type RuntimeOptions struct {
	// ZeroPayload puts the batcher in zero-payload mode.
	ZeroPayload bool
	// InitialTable pre-loads the store (identical on every replica). When
	// Storage recovers a snapshot, the snapshot supersedes it: the table
	// was loaded before the first executed batch and is part of the
	// snapshotted state.
	InitialTable map[string][]byte
	// VerifyWorkers overrides the authentication pipeline's pool size
	// (default GOMAXPROCS).
	VerifyWorkers int
	// Storage, when set, makes the replica durable: the state recovered
	// from its data directory (checkpoint snapshot + WAL replay) is
	// rebuilt into the executor at construction, every subsequent
	// execution is logged before the client is answered, and stable
	// checkpoints write snapshots. The replica catches up past its last
	// durable sequence number through the ordinary Fetch state transfer.
	Storage *storage.Store
	// ParallelExec routes post-ordering execution — live Commit drains and
	// the recovery WAL replay — through the conflict-aware parallel engine
	// (internal/exec). Output is bit-identical to serial execution; only
	// the wall-clock cost of the execute step changes.
	ParallelExec bool
	// ExecWorkers overrides the parallel engine's worker-pool size
	// (default GOMAXPROCS). Ignored unless ParallelExec is set.
	ExecWorkers int
}

// NewRuntime builds a runtime for one replica. With RuntimeOptions.Storage
// set, the store, ledger, and executor are rebuilt from the recovered
// durable state — snapshot restore followed by WAL replay through the
// ordinary Commit path — before the runtime is handed to the protocol.
func NewRuntime(cfg Config, ring *crypto.KeyRing, net network.Transport, opts RuntimeOptions) *Runtime {
	cfg = cfg.WithDefaults()
	var recovered *storage.Recovered
	if opts.Storage != nil {
		recovered = opts.Storage.Recovered()
	}
	kv := store.New()
	var chain *ledger.Chain
	if recovered != nil && recovered.Snapshot != nil {
		snap := recovered.Snapshot
		kv.Restore(snap.Data, snap.Seq)
		chain = ledger.Restore(snap.Head)
	} else {
		if opts.InitialTable != nil {
			kv.Load(opts.InitialTable)
		}
		chain = ledger.NewChain(cfg.Primary(0))
	}
	rt := &Runtime{
		Cfg:  cfg,
		Ring: ring,
		Keys: ring.NodeKeys(types.ReplicaNode(cfg.ID)),
		// The threshold scheme follows the authentication scheme: the
		// asymmetric schemes get unforgeable Ed25519 aggregation (the
		// paper's BLS role), the symmetric/none schemes get the cheap
		// HMAC construction.
		TS: crypto.NewThresholdScheme(ring, cfg.ID, cfg.NF(),
			cfg.Scheme == crypto.SchemeTS || cfg.Scheme == crypto.SchemeED),
		Net:        net,
		Exec:       NewExecutor(kv, chain),
		Batcher:    NewBatcher(cfg.BatchSize, cfg.BatchLinger, opts.ZeroPayload),
		Metrics:    &Metrics{},
		reqSeen:    make(map[types.Digest]types.SeqNum),
		lastReply:  make(map[types.ClientID]*replyRing),
		durPending: make(map[types.SeqNum][]func()),
		cpVotes:    make(map[types.SeqNum]map[types.ReplicaID]*Checkpoint),
	}
	rt.Sync = newStateSync(rt)
	rt.Lease = NewLease(cfg)
	for i := 0; i < cfg.N; i++ {
		if types.ReplicaID(i) != cfg.ID {
			rt.peers = append(rt.peers, types.ReplicaNode(types.ReplicaID(i)))
		}
	}
	rt.verifyWorkers = opts.VerifyWorkers
	// The pipeline objects exist from construction so handlers may register
	// share payloads (NoteDigest) and enqueue sends unconditionally;
	// StartPipeline arms the verifier with the protocol's verify function
	// and starts the egress workers when the Run loop starts. Until then the
	// egress runs inline, preserving synchronous semantics for direct
	// handler-driving tests.
	rt.Pipeline = NewVerifier(nil, rt.verifyWorkers)
	rt.Egress = NewEgress(rt.verifyWorkers, rt.Metrics)
	// Keep enough history beyond the stable checkpoint to serve state
	// transfer to replicas a malicious primary kept in the dark.
	rt.Exec.RetainSlack = 2 * cfg.CheckpointInterval
	if opts.ParallelExec {
		// Attach the engine before recovery replay so the WAL suffix is
		// re-executed through the exact code path live execution will use.
		rt.Exec.EnableParallel(exec.New(opts.ExecWorkers), rt.Metrics)
	}
	if recovered != nil {
		if recovered.Snapshot != nil {
			rt.Exec.Restore(recovered.Snapshot.Seq, recovered.Snapshot.LastCli)
		}
		// Replay the WAL suffix through the ordinary commit path: the same
		// deterministic execution, dedup, and ledger appends as the first
		// time around, so the recovered replica lands on the same state
		// digest. The WAL is attached only afterwards — replayed records
		// are already on disk and must not be re-appended.
		for i := range recovered.Records {
			recovered.Records[i].Batch.MemoizeDigests()
		}
		rt.Exec.CommitMany(recovered.Records)
		rt.Exec.AttachStorage(opts.Storage)
		rt.RecoveredSeq = recovered.LastSeq
	}
	if opts.Storage != nil {
		// Arm the durability gate: replies release only once their batch's
		// WAL group is committed. Everything recovered is durable already.
		rt.durable = true
		rt.Store = opts.Storage
		rt.durWater = rt.Exec.LastExecuted()
		rt.Exec.onDurable = rt.noteDurable
	}
	rt.Exec.onRollback = rt.dropPendingReplies
	rt.Exec.afterRollback = rt.RepairSpecReads
	rt.stableSeq.Store(int64(rt.Exec.StableCheckpointSeq()))
	return rt
}

// --- durability gate ---

// GateOnDurable runs release once seq is group-durable: immediately when the
// replica is volatile or seq has already been committed to disk, otherwise
// from the storage committer's callback. release must therefore be safe to
// run off the event loop (the reply paths only touch internally synchronized
// state: the reply cache and the egress queue).
func (rt *Runtime) GateOnDurable(seq types.SeqNum, release func()) {
	if !rt.durable {
		release()
		return
	}
	rt.durMu.Lock()
	if seq <= rt.durWater {
		rt.durMu.Unlock()
		release()
		return
	}
	rt.durPending[seq] = append(rt.durPending[seq], release)
	rt.durMu.Unlock()
}

// noteDurable is the executor's durability callback: the WAL group carrying
// seq is on disk, so every reply gated at or below it may go out.
func (rt *Runtime) noteDurable(seq types.SeqNum) {
	rt.durMu.Lock()
	if seq > rt.durWater {
		rt.durWater = seq
	}
	var ready []func()
	if len(rt.durPending) > 0 {
		var seqs []types.SeqNum
		for s := range rt.durPending {
			if s <= rt.durWater {
				seqs = append(seqs, s)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			ready = append(ready, rt.durPending[s]...)
			delete(rt.durPending, s)
		}
	}
	rt.durMu.Unlock()
	for _, release := range ready {
		release()
	}
	if rt.Store != nil {
		groups, recs := rt.Store.GroupStats()
		rt.Metrics.WALGroups.Store(groups)
		rt.Metrics.WALGroupedRecords.Store(recs)
	}
}

// dropPendingReplies discards gated replies above toSeq: their batches were
// rolled back (and the WAL truncated), so the replies must never be sent —
// the crash-consistency contract is "lose the reply, keep the durability".
func (rt *Runtime) dropPendingReplies(toSeq types.SeqNum) {
	rt.durMu.Lock()
	for s := range rt.durPending {
		if s > toSeq {
			delete(rt.durPending, s)
		}
	}
	if rt.durWater > toSeq {
		rt.durWater = toSeq
	}
	rt.durMu.Unlock()
}

// Broadcast sends msg to every replica except this one, through the
// transport's marshal-once fan-out: over TCP the message is encoded exactly
// once and the same bytes are written to every peer.
func (rt *Runtime) Broadcast(msg any) {
	rt.Net.Broadcast(rt.peers, msg)
}

// SendReplica sends msg to one replica.
func (rt *Runtime) SendReplica(to types.ReplicaID, msg any) {
	rt.Net.Send(types.ReplicaNode(to), msg)
}

// Reply is one client reply staged for delivery through the durability gate
// and the egress pipeline.
type Reply struct {
	Client types.ClientID
	Msg    *Inform
}

// SendReplies stages a batch's client replies. Once seq clears the
// durability gate (immediately on a volatile replica), one egress job
// computes every reply's MAC off the event loop — running prep first, which
// protocols use to compute a shared threshold share — caches the replies for
// duplicate suppression when cache is set, and releases the sends in
// submission order. The replies and their messages must be owned by the
// caller and never touched again after this call.
func (rt *Runtime) SendReplies(seq types.SeqNum, replies []Reply, cache bool, prep func()) {
	if len(replies) == 0 {
		return
	}
	rt.GateOnDurable(seq, func() {
		rt.Egress.Enqueue(func() {
			if prep != nil {
				prep()
			}
			for _, rp := range replies {
				key := rp.Msg.Key()
				rp.Msg.Tag = rt.Keys.MAC(types.ClientNode(rp.Client), key.Digest[:])
			}
			if cache {
				// Cache only fully built replies: ReplayReply may re-send
				// them from another goroutine the moment they are visible.
				rt.replyMu.Lock()
				for _, rp := range replies {
					ring, ok := rt.lastReply[rp.Client]
					if !ok {
						ring = &replyRing{}
						rt.lastReply[rp.Client] = ring
					}
					ring.add(rp.Msg)
				}
				rt.replyMu.Unlock()
			}
		}, func() {
			for _, rp := range replies {
				rt.Net.Send(types.ClientNode(rp.Client), rp.Msg)
			}
		}, nil)
	})
}

// replyRingSize is the number of recent replies cached per client. Sized to
// cover a pipelined client's realistic outstanding window: a retry of any of
// the last replyRingSize sequences is answered from cache exactly, instead
// of only the very latest one.
const replyRingSize = 8

// replyRing is a per-client ring of the most recent replies, newest-first
// lookup. Guarded by the runtime's replyMu.
type replyRing struct {
	replies [replyRingSize]*Inform
	next    int
}

// add records a reply, evicting the oldest when full.
func (r *replyRing) add(m *Inform) {
	r.replies[r.next] = m
	r.next = (r.next + 1) % replyRingSize
}

// find returns the cached reply matching a request exactly — same
// client-local sequence number AND same request digest — newest first (a
// pipelined client's retries skew recent). The digest match matters because
// tiered reads that fall back to ordering run in their own sequence space: a
// read's seq can collide with a write's, and replaying across that collision
// would answer one request with the other's reply.
func (r *replyRing) find(clientSeq uint64, digest types.Digest) *Inform {
	for i := 1; i <= replyRingSize; i++ {
		m := r.replies[(r.next-i+replyRingSize)%replyRingSize]
		if m == nil {
			return nil
		}
		if m.ClientSeq == clientSeq && m.Digest == digest {
			return m
		}
	}
	return nil
}

// newestSeq returns the global sequence number of the most recent cached
// reply (0 when empty) — the idleness signal stable-checkpoint pruning uses.
func (r *replyRing) newestSeq() types.SeqNum {
	m := r.replies[(r.next-1+replyRingSize)%replyRingSize]
	if m == nil {
		return 0
	}
	return m.Seq
}

// ReplayReply re-sends the cached reply for a duplicate request, if any.
// It returns true when a cached reply existed. Cached replies are durable by
// construction (they are cached only after their WAL group committed), so
// replaying never answers from volatile state.
func (rt *Runtime) ReplayReply(req *types.Request) bool {
	d := req.Digest()
	rt.replyMu.Lock()
	ring, ok := rt.lastReply[req.Txn.Client]
	var last *Inform
	if ok {
		last = ring.find(req.Txn.Seq, d)
	}
	rt.replyMu.Unlock()
	if last == nil {
		return false
	}
	rt.Net.Send(types.ClientNode(req.Txn.Client), last)
	return true
}

// InformBatch stages INFORMs for every result of an executed batch.
func (rt *Runtime) InformBatch(rec *types.ExecRecord, results []types.Result, speculative bool, orderProof types.Digest) {
	replies := make([]Reply, 0, len(results))
	ri := 0
	for i := range rec.Batch.Requests {
		req := &rec.Batch.Requests[i]
		// Results are produced in batch order for the deduplicated effective
		// batch, so they zip against the requests with a single cursor.
		if ri >= len(results) || results[ri].Client != req.Txn.Client || results[ri].Seq != req.Txn.Seq {
			// Deduplicated away: answer from the reply cache instead.
			rt.ReplayReply(req)
			continue
		}
		res := results[ri]
		ri++
		replies = append(replies, Reply{Client: req.Txn.Client, Msg: &Inform{
			From:        rt.Cfg.ID,
			Digest:      req.Digest(),
			View:        rec.View,
			Seq:         rec.Seq,
			ClientSeq:   req.Txn.Seq,
			Values:      res.Values,
			Speculative: speculative,
			OrderProof:  orderProof,
		}})
	}
	rt.SendReplies(rec.Seq, replies, true, nil)
}

// StartPipeline starts the replica's authentication pipelines — the inbound
// verifier over the transport inbox and the outbound egress signer — and
// returns the channel of pre-verified envelopes the Run loop consumes. The
// protocol-specific verify function runs on worker goroutines; see
// VerifyFunc for its constraints. The Run loop must also drain
// rt.Egress.Local().
func (rt *Runtime) StartPipeline(ctx context.Context, verify VerifyFunc) <-chan network.Envelope {
	rt.Egress.Start(ctx)
	rt.Pipeline.verify = verify
	return rt.Pipeline.Pipe(ctx, rt.Net.Inbox())
}

// VerifyClientRequest checks the client's signature on a request. With
// SchemeNone all authentication is disabled (Fig 8's "None" column). The
// caller must own the request (see types.Request): its digest is memoized
// as a side effect. A signature is Ed25519-verified at most once per
// replica; repeats (retransmissions, re-proposals after a view change,
// rotating-leader rebroadcasts) are memo lookups.
func (rt *Runtime) VerifyClientRequest(req *types.Request) bool {
	if rt.Cfg.Scheme == crypto.SchemeNone {
		return true
	}
	d := req.Digest()
	rt.reqMu.Lock()
	_, hit := rt.reqSeen[d]
	rt.reqMu.Unlock()
	if hit {
		return true
	}
	if !rt.Keys.VerifyFrom(types.ClientNode(req.Txn.Client), d[:], req.Sig) {
		return false
	}
	rt.reqMu.Lock()
	if len(rt.reqSeen) >= 1<<17 {
		// Backstop against a burst outrunning checkpoint-time pruning.
		rt.reqSeen = make(map[types.Digest]types.SeqNum)
	}
	rt.reqSeen[d] = types.SeqNum(rt.stableSeq.Load())
	rt.reqMu.Unlock()
	return true
}

// VerifyBatch checks every client signature in an owned batch, fanning the
// Ed25519 work out across the verification pool, and memoizes all digests.
// It is the pipeline-side replacement for the per-request loop replicas used
// to run on their event loop when handling a proposal.
func (rt *Runtime) VerifyBatch(b *types.Batch) bool {
	b.MemoizeDigests()
	if rt.Cfg.Scheme == crypto.SchemeNone {
		return true
	}
	return crypto.ParallelAll(len(b.Requests), func(i int) bool {
		return rt.VerifyClientRequest(&b.Requests[i])
	})
}

// VerifyCommonInbound handles the message types shared by every protocol:
// client requests (signature checked, envelope rewritten to an owned clone),
// forwarded requests, and fetch replies (cloned so digest memoization stays
// replica-local; certificates are still validated by the handler through the
// memoized threshold scheme). It reports (keep, handled); handled false
// means the message is protocol-specific and the caller must classify it.
func (rt *Runtime) VerifyCommonInbound(env *network.Envelope) (keep, handled bool) {
	switch m := env.Msg.(type) {
	case *ClientRequest:
		// Wire-decoded (Owned) envelopes are exclusively ours; in-process
		// deliveries are cloned before digest memoization (see types.Request).
		cp := m
		if !env.Owned {
			cp = &ClientRequest{Req: types.CloneRequest(m.Req)}
			env.Msg = cp
		}
		if !env.From.IsClient() || cp.Req.Txn.Client != env.From.Client() {
			return false, true
		}
		if !rt.VerifyClientRequest(&cp.Req) {
			return false, true
		}
		return true, true
	case *ForwardRequest:
		cp := m
		if !env.Owned {
			cp = &ForwardRequest{Req: types.CloneRequest(m.Req)}
			env.Msg = cp
		}
		if !rt.VerifyClientRequest(&cp.Req) {
			return false, true
		}
		return true, true
	case *FetchReply:
		cp := m
		if !env.Owned {
			cp = &FetchReply{From: m.From, Records: types.CloneRecords(m.Records)}
			env.Msg = cp
		}
		for i := range cp.Records {
			cp.Records[i].Batch.MemoizeDigests()
		}
		return true, true
	case *Checkpoint:
		// Signatures are verified by OnCheckpoint (rare path), which skips
		// the check for our own vote — so a network message claiming our
		// identity is a spoof and must not reach it.
		return m.From != rt.Cfg.ID, true
	case *ReadRequest:
		cp := m
		if !env.Owned {
			cp = &ReadRequest{Req: types.CloneRequest(m.Req)}
			env.Msg = cp
		}
		if !env.From.IsClient() || cp.Req.Txn.Client != env.From.Client() {
			return false, true
		}
		// Only read-only transactions with a non-ordered tier belong here;
		// anything else must pay for ordering and is dropped (the client's
		// ordered retransmission path still works).
		if !cp.Req.Txn.ReadOnly() || cp.Req.Txn.Consistency == types.ConsistencyOrdered {
			return false, true
		}
		if !rt.VerifyClientRequest(&cp.Req) {
			return false, true
		}
		return true, true
	case *LeaseGrant:
		// The Ed25519 grant signature is verified by OnLeaseGrant on the
		// event loop (grants are low-rate); here only spoofs of our own
		// identity are rejected, mirroring Checkpoint.
		return m.From != rt.Cfg.ID, true
	case *ReadReply:
		// Client-bound only; a replica receiving one is a misroute.
		return false, true
	case *Fetch:
		// Unauthenticated by design.
		return true, true
	case *SnapshotRequest:
		// Unauthenticated like Fetch, but the claimed sender must match the
		// transport identity: the reply fan-out goes to m.From.
		return env.From.IsReplica() && env.From.Replica() == m.From, true
	case *SnapshotOffer:
		// The certificate inside is verified by StateSync on the event loop
		// (rare path); here only the sender identity is pinned so a peer
		// cannot spoof offers from the server the fetcher selected.
		return env.From.IsReplica() && env.From.Replica() == m.From, true
	case *SnapshotChunk:
		return env.From.IsReplica() && env.From.Replica() == m.From, true
	}
	return true, false
}

// Fetch pagination caps: whatever the requester asked for, one reply never
// carries more than maxFetchRecords records or (approximately)
// maxFetchBytes of payload — a far-behind peer pulls pages instead of
// triggering one giant allocation and frame on the server.
const (
	maxFetchRecords = 512
	maxFetchBytes   = 1 << 20
)

// HandleFetch answers a state-transfer request with one page of retained
// records. The reply carries the server's executed head so the fetcher knows
// a full page is not the end of history and re-requests from its new head.
func (rt *Runtime) HandleFetch(f *Fetch) {
	max := f.Max
	if max <= 0 || max > maxFetchRecords {
		max = maxFetchRecords
	}
	recs, head := rt.Exec.ExecutedRange(f.After, max, maxFetchBytes)
	if len(recs) == 0 {
		return
	}
	rt.SendReplica(f.From, &FetchReply{From: rt.Cfg.ID, Head: head, Records: recs})
}

// FetchFrom requests the records above after from the next peer in the
// rotation. Rotating per request keeps catch-up alive when some peers are
// crashed, partitioned away, or Byzantine-silent.
func (rt *Runtime) FetchFrom(after types.SeqNum) {
	peer, ok := rt.NextPeer()
	if !ok {
		return
	}
	rt.SendReplica(peer, &Fetch{From: rt.Cfg.ID, After: after, Max: 4 * rt.Cfg.Window})
}

// FetchContinue re-requests immediately when a paginated fetch made progress
// but the server's head is still ahead; protocols call it after applying a
// FetchReply. It reports whether another page was requested.
func (rt *Runtime) FetchContinue(head types.SeqNum) bool {
	last := rt.Exec.LastExecuted()
	if head <= last {
		return false
	}
	if _, _, gapped := rt.Exec.Gap(); gapped {
		// The reply didn't connect to our head (stale page after rotation);
		// the regular tick-driven fetch retries.
		return false
	}
	rt.Metrics.FetchPages.Add(1)
	rt.FetchFrom(last)
	return true
}

// NextPeer returns the next replica in the round-robin rotation, skipping
// this one. ok is false in a single-replica system.
func (rt *Runtime) NextPeer() (types.ReplicaID, bool) {
	if rt.Cfg.N <= 1 {
		return 0, false
	}
	rt.fetchRound++
	peer := types.ReplicaID(rt.fetchRound % rt.Cfg.N)
	if peer == rt.Cfg.ID {
		rt.fetchRound++
		peer = types.ReplicaID(rt.fetchRound % rt.Cfg.N)
	}
	return peer, true
}

// --- checkpoint sub-protocol (§II-D) ---

// MaybeCheckpoint is called after executing seq; when seq crosses a
// checkpoint boundary the replica broadcasts a signed Checkpoint message.
// The Ed25519 signature is produced on the egress pool; the replica's own
// vote is counted through the pipeline's local continuation, back on the
// event loop (OnCheckpoint skips signature verification for own votes).
func (rt *Runtime) MaybeCheckpoint(seq types.SeqNum) {
	if seq == 0 || seq%rt.Cfg.CheckpointInterval != 0 {
		return
	}
	// Vote the digests recorded when seq executed, not the current ones: the
	// executor may have drained several batches in the Commit that crossed
	// the boundary, and votes for the same checkpoint must match across
	// replicas that drained differently.
	state, ledgerHead, ok := rt.Exec.DigestsAt(seq)
	if !ok {
		return
	}
	cp := &Checkpoint{
		From:   rt.Cfg.ID,
		Seq:    seq,
		State:  state,
		Ledger: ledgerHead,
	}
	payload := cp.SignedPayload()
	rt.Egress.Enqueue(
		func() { cp.Sig = rt.Keys.Sign(payload) },
		func() { rt.Broadcast(cp) },
		func() { rt.OnCheckpoint(cp) }, // count own vote
	)
}

// OnCheckpoint records a checkpoint vote. When nf distinct replicas vote the
// same digests for a sequence number at or above the current stable
// checkpoint, that checkpoint becomes stable. It returns the new stable
// sequence number and true on the transition.
func (rt *Runtime) OnCheckpoint(cp *Checkpoint) (types.SeqNum, bool) {
	if cp.From != rt.Cfg.ID && !rt.Keys.VerifyFrom(types.ReplicaNode(cp.From), cp.SignedPayload(), cp.Sig) {
		return 0, false
	}
	// Feed the state-sync detector before any short-circuit: a replica that
	// is far behind needs the evidence precisely when it cannot participate
	// in the vote itself.
	rt.Sync.OnVote(cp)
	if cp.Seq <= rt.Exec.StableCheckpointSeq() {
		return 0, false
	}
	votes, ok := rt.cpVotes[cp.Seq]
	if !ok {
		votes = make(map[types.ReplicaID]*Checkpoint)
		rt.cpVotes[cp.Seq] = votes
	}
	votes[cp.From] = cp
	// Count the plurality digest; non-faulty replicas agree, so requiring
	// nf matching votes tolerates f liars.
	counts := make(map[types.Digest]int, len(votes))
	for _, v := range votes {
		counts[types.DigestConcat(v.State[:], v.Ledger[:])]++
	}
	for d, c := range counts {
		if c >= rt.Cfg.NF() {
			// Stash the matching votes as the certificate snapshot offers
			// will carry: ≥ nf ≥ f+1 signed votes for one digest pair.
			cert := make([]Checkpoint, 0, c)
			for _, v := range votes {
				if types.DigestConcat(v.State[:], v.Ledger[:]) == d {
					cert = append(cert, *v)
				}
			}
			rt.stableCert, rt.stableCertSeq = cert, cp.Seq
			rt.Exec.MarkStable(cp.Seq)
			rt.Metrics.Checkpoints.Add(1)
			for s := range rt.cpVotes {
				if s <= cp.Seq {
					delete(rt.cpVotes, s)
				}
			}
			rt.PruneAtStable(cp.Seq)
			return cp.Seq, true
		}
	}
	return 0, false
}

// replyCacheCap is the lastReply size above which stable-checkpoint pruning
// starts aging idle clients out. Below the cap every client's last reply is
// retained, so a lost INFORM is always answerable from the cache; above it,
// memory wins — the classic BFT reply-cache low-water-mark tradeoff.
const replyCacheCap = 1 << 16

// PruneAtStable bounds the request-path caches when a checkpoint becomes
// stable, so a long-lived replica serving millions of clients does not grow
// without bound: verified-request digests older than one checkpoint interval
// below the stable point are dropped (a pruned digest merely re-verifies on
// the next retransmission), the batcher forgets proposed-history entries the
// executor's dedup history already covers (a pruned entry merely re-enters
// the pending queue, where execution-time dedup and the reply cache still
// suppress it), and — only once more than replyCacheCap clients are cached —
// replies of clients idle for over a checkpoint interval are evicted. That
// last eviction is the one genuine tradeoff: such a client retransmitting a
// request whose INFORM was lost can no longer be answered from the cache,
// which is the standard price of a bounded reply cache (PBFT's low-water
// mark); under the cap behaviour is unchanged. Called on the event loop
// (OnCheckpoint); the batcher is loop-owned.
func (rt *Runtime) PruneAtStable(stable types.SeqNum) {
	rt.stableSeq.Store(int64(stable))
	rt.reqMu.Lock()
	for d, s := range rt.reqSeen {
		if s+rt.Cfg.CheckpointInterval < stable {
			delete(rt.reqSeen, d)
		}
	}
	rt.reqMu.Unlock()
	rt.replyMu.Lock()
	if len(rt.lastReply) > replyCacheCap {
		for c, ring := range rt.lastReply {
			if ring.newestSeq()+rt.Cfg.CheckpointInterval < stable {
				delete(rt.lastReply, c)
			}
		}
	}
	rt.replyMu.Unlock()
	rt.PruneSpecReads(stable)
	rt.Batcher.PruneProposed(func(c types.ClientID, seq uint64) bool {
		return rt.Exec.AlreadyExecuted(c, seq)
	})
}
