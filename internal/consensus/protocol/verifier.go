package protocol

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// This file implements the parallel authentication pipeline: a pool of
// worker goroutines that verifies the authenticators on inbound messages —
// broadcast signatures/MAC vectors, per-request client signatures, threshold
// shares — *before* dispatch, delivering pre-verified envelopes to the
// replica event loop in arrival order. The single-threaded state machine
// therefore never executes an Ed25519 verification on its own goroutine in
// the normal case; it either trusts that delivery implies validity (messages
// failing verification are dropped in the pipeline) or re-checks through the
// crypto layer's verified-share/certificate memo, which the pipeline has
// already warmed.
//
// This mirrors the substrate PoE's evaluation ran on: ResilientDB pipelines
// signature verification and ordering across threads (§III of the paper),
// so the scheme sweeps of Fig 8/Fig 9 measure the protocols rather than one
// core of serial crypto.
//
// Ownership rule: the in-process transport delivers the *same* message
// pointer to every addressee, so a VerifyFunc must never mutate the inbound
// message. Messages carrying batches or requests are cloned (types.Batch
// Clone / CloneRequest) and the envelope is rewritten to the owned copy;
// digest memoization then happens on the clone, off the event loop, and the
// memo travels with the value into slots, the executor, and replies.

// VerifyFunc checks one inbound envelope. Returning false drops the message
// before dispatch. The function runs on pipeline worker goroutines: it must
// only touch immutable or internally synchronized state (Config, NodeKeys,
// KeyRing, ThresholdScheme, the Verifier's digest table), never replica
// state. It may rewrite env.Msg with an owned clone.
type VerifyFunc func(env *network.Envelope) bool

// Verifier is the parallel authentication pipeline for one replica.
type Verifier struct {
	verify  VerifyFunc
	workers int

	// digests maps (kind, view, seq) to the payload that threshold shares of
	// that phase sign. The event loop registers payloads as soon as it knows
	// them (NoteDigest); workers then verify arriving shares off-loop,
	// warming the crypto layer's share memo and dropping invalid shares
	// early. The table is purely an optimization: a miss passes the message
	// through, and the event loop's own (memoized) checks remain the
	// authority.
	mu      sync.RWMutex
	digests map[digestKey][]byte

	// Verified and Dropped count messages that passed and failed pipeline
	// verification.
	Verified atomic.Int64
	Dropped  atomic.Int64
}

type digestKey struct {
	kind uint8
	view types.View
	seq  types.SeqNum
}

// maxDigestKinds bounds the per-protocol phase kinds ForgetDigests clears.
const maxDigestKinds = 4

// digestTableCap bounds the digest table; overflow clears it (only an
// optimization is lost).
const digestTableCap = 8192

// NewVerifier creates a pipeline running verify on workers goroutines;
// workers <= 0 sizes the pool to GOMAXPROCS.
func NewVerifier(verify VerifyFunc, workers int) *Verifier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Verifier{
		verify:  verify,
		workers: workers,
		digests: make(map[digestKey][]byte),
	}
}

// NoteDigest registers the payload that shares of phase kind at (view, seq)
// sign. Safe for concurrent use; called by the event loop.
func (v *Verifier) NoteDigest(kind uint8, view types.View, seq types.SeqNum, payload []byte) {
	v.mu.Lock()
	if len(v.digests) >= digestTableCap {
		v.digests = make(map[digestKey][]byte)
	}
	v.digests[digestKey{kind, view, seq}] = payload
	v.mu.Unlock()
}

// PayloadFor looks up a registered share payload.
func (v *Verifier) PayloadFor(kind uint8, view types.View, seq types.SeqNum) ([]byte, bool) {
	v.mu.RLock()
	p, ok := v.digests[digestKey{kind, view, seq}]
	v.mu.RUnlock()
	return p, ok
}

// ForgetDigests drops every registered payload for (view, seq); called when
// a slot retires.
func (v *Verifier) ForgetDigests(view types.View, seq types.SeqNum) {
	v.mu.Lock()
	for kind := uint8(0); kind < maxDigestKinds; kind++ {
		delete(v.digests, digestKey{kind, view, seq})
	}
	v.mu.Unlock()
}

// Reset drops every registered payload. Replicas call it on entering a new
// view: all registered payloads belong to the old view's slots, and keeping
// them would leak entries for slots the view change abandoned or re-proposed
// under a different view.
func (v *Verifier) Reset() {
	v.mu.Lock()
	v.digests = make(map[digestKey][]byte)
	v.mu.Unlock()
}

// VerifyShareFor verifies a threshold share against the registered payload
// of (kind, view, seq). It returns false only when the payload is known and
// the share is invalid — the caller should drop the message. On a table
// miss it returns true (the event loop re-checks through the share memo).
// Intended to be called from VerifyFuncs.
func (v *Verifier) VerifyShareFor(ts crypto.ThresholdScheme, kind uint8, view types.View, seq types.SeqNum, share crypto.Share) bool {
	payload, ok := v.PayloadFor(kind, view, seq)
	if !ok {
		return true
	}
	return ts.VerifyShare(payload, share)
}

// job tracks one envelope through the pipeline.
type job struct {
	env  network.Envelope
	keep bool
	done chan struct{}
}

// Pipe starts the pipeline over an inbox and returns the channel of
// pre-verified envelopes, closed when the inbox closes or ctx is done.
// Envelopes are verified concurrently but delivered strictly in arrival
// order, so the pipeline is transparent to the protocol's ordering
// assumptions.
func (v *Verifier) Pipe(ctx context.Context, in <-chan network.Envelope) <-chan network.Envelope {
	out := make(chan network.Envelope, 256)
	work := make(chan *job, 4*v.workers)
	order := make(chan *job, 4*v.workers)

	// Feeder: tag every envelope with its arrival position.
	go func() {
		defer close(work)
		defer close(order)
		for {
			select {
			case <-ctx.Done():
				return
			case env, ok := <-in:
				if !ok {
					return
				}
				j := &job{env: env, done: make(chan struct{})}
				select {
				case order <- j:
				case <-ctx.Done():
					return
				}
				select {
				case work <- j:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: verify in parallel.
	for i := 0; i < v.workers; i++ {
		go func() {
			for j := range work {
				j.keep = v.verify(&j.env)
				close(j.done)
			}
		}()
	}

	// Deliverer: release results in arrival order.
	go func() {
		defer close(out)
		for j := range order {
			select {
			case <-j.done:
			case <-ctx.Done():
				return
			}
			if !j.keep {
				v.Dropped.Add(1)
				continue
			}
			v.Verified.Add(1)
			select {
			case out <- j.env:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
