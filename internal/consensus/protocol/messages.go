package protocol

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// ClientRequest carries a signed transaction 〈T〉c from a client to a
// replica. Normally it is sent to the primary; after a client timeout it is
// broadcast to all replicas, which forward it to the primary and start
// failure-detection timers (§II-B).
type ClientRequest struct {
	Req types.Request
}

// ForwardRequest is a replica forwarding a client request to the primary
// after receiving it via client broadcast.
type ForwardRequest struct {
	Req types.Request
}

// Inform tells a client that its transaction executed: the paper's
// INFORM(D(〈T〉c), v, k, r) message. Clients collect identical Informs from
// a protocol-specific number of distinct replicas.
type Inform struct {
	From      types.ReplicaID
	Digest    types.Digest // D(〈T〉c)
	View      types.View
	Seq       types.SeqNum // global sequence number k
	ClientSeq uint64       // client-local sequence number of the transaction
	Values    [][]byte     // execution result r, if any
	Tag       []byte       // MAC over the reply (replicas answer clients with MACs, §II-E)

	// Speculative marks replies sent before the request's position is
	// final. Zyzzyva's fast-path replies set this; PoE replies do not
	// (PoE's reply already carries the proof-of-execution guarantee).
	Speculative bool
	// OrderProof is protocol-specific material for the client (Zyzzyva's
	// history digest; unused by other protocols).
	OrderProof types.Digest
	// Share is a transferable signature share over the ordering (Zyzzyva
	// clients assemble nf of these into a commit certificate; SBFT's
	// executor puts the aggregated certificate in Cert instead).
	Share crypto.Share
	// Cert is an aggregated certificate accompanying the reply (SBFT's
	// execute-ack path).
	Cert []byte
}

// ReplyKey is the portion of an Inform that must match across replicas for
// a client to count them as identical.
type ReplyKey struct {
	Digest    types.Digest
	Seq       types.SeqNum
	ClientSeq uint64
	ValueHash types.Digest
}

// Key projects an Inform to its comparable core. The view is deliberately
// not part of the key: after a view change replicas may re-inform in a later
// view for the same slot.
func (m *Inform) Key() ReplyKey {
	h := types.DigestConcat(flatten(m.Values)...)
	return ReplyKey{Digest: m.Digest, Seq: m.Seq, ClientSeq: m.ClientSeq, ValueHash: h}
}

func flatten(values [][]byte) [][]byte {
	if len(values) == 0 {
		return [][]byte{nil}
	}
	return values
}

// Fetch asks a peer for the executed batches with sequence numbers in
// (After, After+Max]; used by replicas that were left in the dark to catch
// up outside the critical path (checkpoint-based state transfer, §II-D).
type Fetch struct {
	From  types.ReplicaID
	After types.SeqNum
	Max   int
}

// FetchReply returns executed records. Each record carries the certificate
// that justified it, so the receiver can validate before applying. Head is
// the server's last executed sequence number: a reply whose records end
// below it is one page of a longer transfer, and the fetcher re-requests
// from its new head.
type FetchReply struct {
	From    types.ReplicaID
	Head    types.SeqNum
	Records []types.ExecRecord
}

// SnapshotRequest asks a peer for its stable checkpoint snapshot, provided
// it is newer than Have (the requester's last executed sequence number).
// Replicas send it when checkpoint certificates prove the cluster's stable
// checkpoint is beyond Fetch's retained-record horizon — a freshly wiped
// replica, or one partitioned away for longer than the retention window.
type SnapshotRequest struct {
	From types.ReplicaID
	Have types.SeqNum
}

// SnapshotOffer announces an incoming snapshot transfer: the checkpoint
// sequence number, total encoded size, chunk count, and the checkpoint
// certificate (f+1 or more signed Checkpoint votes with matching digests)
// that lets the fetcher verify the installed state before trusting it. The
// chunks themselves are unauthenticated; all trust derives from the cert.
type SnapshotOffer struct {
	From   types.ReplicaID
	Seq    types.SeqNum
	Size   int64
	Chunks int
	Cert   []Checkpoint
}

// SnapshotChunk carries one size-capped slice of the snapshot's canonical
// wire encoding.
type SnapshotChunk struct {
	From  types.ReplicaID
	Seq   types.SeqNum
	Index int
	Data  []byte
}

// Checkpoint announces that the sender executed every batch up to Seq and
// has the given state and ledger digests (§II-D). Signed so it can be used
// as a view-change base.
type Checkpoint struct {
	From   types.ReplicaID
	Seq    types.SeqNum
	State  types.Digest
	Ledger types.Digest
	Sig    []byte
}

// SignedPayload returns the bytes covered by the checkpoint signature.
func (c *Checkpoint) SignedPayload() []byte {
	d := types.DigestConcat(
		[]byte("checkpoint"),
		uint64Bytes(uint64(c.From)),
		uint64Bytes(uint64(c.Seq)),
		c.State[:],
		c.Ledger[:],
	)
	return d[:]
}

func uint64Bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &ClientRequest{} })
	wire.Register(func() wire.Message { return &ForwardRequest{} })
	wire.Register(func() wire.Message { return &Inform{} })
	wire.Register(func() wire.Message { return &Fetch{} })
	wire.Register(func() wire.Message { return &FetchReply{} })
	wire.Register(func() wire.Message { return &Checkpoint{} })
	wire.Register(func() wire.Message { return &SnapshotRequest{} })
	wire.Register(func() wire.Message { return &SnapshotOffer{} })
	wire.Register(func() wire.Message { return &SnapshotChunk{} })
}
