package protocol

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// ClientRequest carries a signed transaction 〈T〉c from a client to a
// replica. Normally it is sent to the primary; after a client timeout it is
// broadcast to all replicas, which forward it to the primary and start
// failure-detection timers (§II-B).
type ClientRequest struct {
	Req types.Request
}

// ForwardRequest is a replica forwarding a client request to the primary
// after receiving it via client broadcast.
type ForwardRequest struct {
	Req types.Request
}

// Inform tells a client that its transaction executed: the paper's
// INFORM(D(〈T〉c), v, k, r) message. Clients collect identical Informs from
// a protocol-specific number of distinct replicas.
type Inform struct {
	From      types.ReplicaID
	Digest    types.Digest // D(〈T〉c)
	View      types.View
	Seq       types.SeqNum // global sequence number k
	ClientSeq uint64       // client-local sequence number of the transaction
	Values    [][]byte     // execution result r, if any
	Tag       []byte       // MAC over the reply (replicas answer clients with MACs, §II-E)

	// Speculative marks replies sent before the request's position is
	// final. Zyzzyva's fast-path replies set this; PoE replies do not
	// (PoE's reply already carries the proof-of-execution guarantee).
	Speculative bool
	// OrderProof is protocol-specific material for the client (Zyzzyva's
	// history digest; unused by other protocols).
	OrderProof types.Digest
	// Share is a transferable signature share over the ordering (Zyzzyva
	// clients assemble nf of these into a commit certificate; SBFT's
	// executor puts the aggregated certificate in Cert instead).
	Share crypto.Share
	// Cert is an aggregated certificate accompanying the reply (SBFT's
	// execute-ack path).
	Cert []byte
}

// ReplyKey is the portion of an Inform that must match across replicas for
// a client to count them as identical.
type ReplyKey struct {
	Digest    types.Digest
	Seq       types.SeqNum
	ClientSeq uint64
	ValueHash types.Digest
}

// Key projects an Inform to its comparable core. The view is deliberately
// not part of the key: after a view change replicas may re-inform in a later
// view for the same slot.
func (m *Inform) Key() ReplyKey {
	h := types.DigestConcat(flatten(m.Values)...)
	return ReplyKey{Digest: m.Digest, Seq: m.Seq, ClientSeq: m.ClientSeq, ValueHash: h}
}

func flatten(values [][]byte) [][]byte {
	if len(values) == 0 {
		return [][]byte{nil}
	}
	return values
}

// Fetch asks a peer for the executed batches with sequence numbers in
// (After, After+Max]; used by replicas that were left in the dark to catch
// up outside the critical path (checkpoint-based state transfer, §II-D).
type Fetch struct {
	From  types.ReplicaID
	After types.SeqNum
	Max   int
}

// FetchReply returns executed records. Each record carries the certificate
// that justified it, so the receiver can validate before applying. Head is
// the server's last executed sequence number: a reply whose records end
// below it is one page of a longer transfer, and the fetcher re-requests
// from its new head.
type FetchReply struct {
	From    types.ReplicaID
	Head    types.SeqNum
	Records []types.ExecRecord
}

// SnapshotRequest asks a peer for its stable checkpoint snapshot, provided
// it is newer than Have (the requester's last executed sequence number).
// Replicas send it when checkpoint certificates prove the cluster's stable
// checkpoint is beyond Fetch's retained-record horizon — a freshly wiped
// replica, or one partitioned away for longer than the retention window.
type SnapshotRequest struct {
	From types.ReplicaID
	Have types.SeqNum
}

// SnapshotOffer announces an incoming snapshot transfer: the checkpoint
// sequence number, total encoded size, chunk count, and the checkpoint
// certificate (f+1 or more signed Checkpoint votes with matching digests)
// that lets the fetcher verify the installed state before trusting it. The
// chunks themselves are unauthenticated; all trust derives from the cert.
type SnapshotOffer struct {
	From   types.ReplicaID
	Seq    types.SeqNum
	Size   int64
	Chunks int
	Cert   []Checkpoint
}

// SnapshotChunk carries one size-capped slice of the snapshot's canonical
// wire encoding.
type SnapshotChunk struct {
	From  types.ReplicaID
	Seq   types.SeqNum
	Index int
	Data  []byte
}

// ReadRequest carries a read-only transaction a client wants served on the
// fast read path (no ordering): SPECULATIVE reads go to any replica, STRONG
// reads to the current primary. The request is signed like any transaction —
// the consistency tier is inside the signed encoding — so a replica can
// verify the client really asked for the weaker tier.
type ReadRequest struct {
	Req types.Request
}

// ReadReply answers a ReadRequest from a replica's local executed prefix,
// without consensus. ExecSeq and StateDigest pin the exact prefix the values
// were read from — the client-side anchor of digest-prefix safety: an
// unrepaired speculative reply must quote a (seq, digest) pair that some
// honest replica's history actually contained. Repaired marks a re-answer
// sent after a rollback truncated past ExecSeq of the original reply.
type ReadReply struct {
	From        types.ReplicaID
	Digest      types.Digest // D(〈T〉c) of the read request
	ClientSeq   uint64       // client-local read sequence number
	Values      [][]byte
	ExecSeq     types.SeqNum      // executed prefix the values were read from
	StateDigest types.Digest      // store digest at ExecSeq
	View        types.View        // serving replica's view
	Tier        types.Consistency // tier actually served
	Repaired    bool
	Tag         []byte // MAC over Payload(), replica → client
}

// Payload returns the digest the reply MAC covers: everything the client
// relies on, so a network adversary can neither retier nor retarget a reply.
func (m *ReadReply) Payload() types.Digest {
	return types.DigestConcat(
		[]byte("readreply"),
		uint64Bytes(uint64(m.From)),
		m.Digest[:],
		uint64Bytes(m.ClientSeq),
		uint64Bytes(uint64(m.ExecSeq)),
		m.StateDigest[:],
		uint64Bytes(uint64(m.View)),
		[]byte{byte(m.Tier), boolByte(m.Repaired)},
		valuesDigest(m.Values),
	)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func valuesDigest(values [][]byte) []byte {
	d := types.DigestConcat(flatten(values)...)
	return d[:]
}

// LeaseGrant is one replica's read-lease vote for the primary of View: the
// grantor promises not to join any view higher than View until LeaseDuration
// (the granting replica's config) has elapsed on its own clock since it sent
// the grant. A primary holding nf unexpired grants (its own implicit) may
// serve STRONG reads locally: any higher view needs nf join votes, which
// must intersect the grant quorum in a non-faulty promiser — so no
// conflicting view can commit writes while the lease is valid. Both sides
// measure only durations on their own clocks; clock synchronization is never
// assumed (only bounded drift and delivery delay, and those affect just the
// fast path — expiry falls back to ordering).
type LeaseGrant struct {
	From          types.ReplicaID
	View          types.View
	Seq           types.SeqNum // grantor's executed head at grant time
	DurationNanos int64        // grantor's promise window
	Sig           []byte
}

// SignedPayload returns the bytes covered by the grant signature.
func (g *LeaseGrant) SignedPayload() []byte {
	d := types.DigestConcat(
		[]byte("leasegrant"),
		uint64Bytes(uint64(g.From)),
		uint64Bytes(uint64(g.View)),
		uint64Bytes(uint64(g.Seq)),
		uint64Bytes(uint64(g.DurationNanos)),
	)
	return d[:]
}

// Checkpoint announces that the sender executed every batch up to Seq and
// has the given state and ledger digests (§II-D). Signed so it can be used
// as a view-change base.
type Checkpoint struct {
	From   types.ReplicaID
	Seq    types.SeqNum
	State  types.Digest
	Ledger types.Digest
	Sig    []byte
}

// SignedPayload returns the bytes covered by the checkpoint signature.
func (c *Checkpoint) SignedPayload() []byte {
	d := types.DigestConcat(
		[]byte("checkpoint"),
		uint64Bytes(uint64(c.From)),
		uint64Bytes(uint64(c.Seq)),
		c.State[:],
		c.Ledger[:],
	)
	return d[:]
}

func uint64Bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &ClientRequest{} })
	wire.Register(func() wire.Message { return &ForwardRequest{} })
	wire.Register(func() wire.Message { return &Inform{} })
	wire.Register(func() wire.Message { return &Fetch{} })
	wire.Register(func() wire.Message { return &FetchReply{} })
	wire.Register(func() wire.Message { return &Checkpoint{} })
	wire.Register(func() wire.Message { return &SnapshotRequest{} })
	wire.Register(func() wire.Message { return &SnapshotOffer{} })
	wire.Register(func() wire.Message { return &SnapshotChunk{} })
	wire.Register(func() wire.Message { return &ReadRequest{} })
	wire.Register(func() wire.Message { return &ReadReply{} })
	wire.Register(func() wire.Message { return &LeaseGrant{} })
}
