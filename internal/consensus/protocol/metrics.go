package protocol

import (
	"sync/atomic"
	"time"
)

// Metrics collects replica-side counters. All fields are safe for concurrent
// use; the harness samples them while the replica runs (Fig 10's throughput
// timeline is built by periodic sampling of ExecutedTxns).
type Metrics struct {
	ExecutedTxns    atomic.Int64
	ExecutedBatches atomic.Int64
	ProposedBatches atomic.Int64
	MessagesIn      atomic.Int64
	ViewChanges     atomic.Int64
	Rollbacks       atomic.Int64
	Checkpoints     atomic.Int64

	// Egress pipeline: jobs submitted, authenticators computed off the event
	// loop, the current queue depth, and the deepest backlog observed —
	// sustained depth near EgressQueued/runtime means the signing pool, not
	// the state machine, is the bottleneck.
	EgressQueued        atomic.Int64
	EgressSignedOffLoop atomic.Int64
	EgressDepth         atomic.Int64
	EgressMaxDepth      atomic.Int64

	// WAL group commit: groups written and records they carried
	// (records/groups = mean group size; 1.0 means no batching was needed).
	WALGroups         atomic.Int64
	WALGroupedRecords atomic.Int64

	// Parallel execution engine: windows drained through the conflict-aware
	// scheduler, the waves they split into, and the transactions they
	// carried. ParallelTxns/ParallelWaves is the achieved intra-wave
	// parallelism; ParallelWaves/ParallelWindows near 1.0 means a
	// low-conflict workload scheduled almost flat.
	ParallelWindows atomic.Int64
	ParallelWaves   atomic.Int64
	ParallelTxns    atomic.Int64

	// ViewChangesDone counts view changes that completed — the replica
	// entered the new view and resumed progress — as opposed to ViewChanges,
	// which counts attempts started. The soak harness asserts on completions.
	ViewChangesDone atomic.Int64

	// Hybrid-consistency read path: reads served locally per tier (no
	// consensus slot consumed), reads that fell back to ordering (no lease,
	// wrong replica, deferral timeout), speculative serves re-answered after
	// a rollback, and lease grants sent.
	SpecReads     atomic.Int64
	StrongReads   atomic.Int64
	ReadFallbacks atomic.Int64
	ReadRepairs   atomic.Int64
	LeaseGrants   atomic.Int64

	// Snapshot state transfer: snapshots served to lagging peers and
	// installed from peers, chunks and bytes moved in each direction, extra
	// pages pulled by the paginated record fetch, and state-sync attempts
	// abandoned (timeout, invalid offer, corrupt chunk) before converging.
	SnapshotsServed    atomic.Int64
	SnapshotsInstalled atomic.Int64
	SnapshotChunksSent atomic.Int64
	SnapshotChunksRecv atomic.Int64
	SnapshotBytesSent  atomic.Int64
	SnapshotBytesRecv  atomic.Int64
	FetchPages         atomic.Int64
	StateSyncRetries   atomic.Int64

	startNanos atomic.Int64
}

// Start records the measurement start time.
func (m *Metrics) Start() { m.startNanos.Store(time.Now().UnixNano()) }

// MetricsSnapshot is a plain-value copy of Metrics, the schema of
// poeserver's -metrics-json exit dump (collected per replica by the
// multi-process runner, internal/deploy).
type MetricsSnapshot struct {
	ExecutedTxns    int64 `json:"executed_txns"`
	ExecutedBatches int64 `json:"executed_batches"`
	ProposedBatches int64 `json:"proposed_batches"`
	MessagesIn      int64 `json:"messages_in"`
	ViewChanges     int64 `json:"view_changes"`
	ViewChangesDone int64 `json:"view_changes_done"`
	Rollbacks       int64 `json:"rollbacks"`
	Checkpoints     int64 `json:"checkpoints"`

	EgressQueued        int64 `json:"egress_queued"`
	EgressSignedOffLoop int64 `json:"egress_signed_off_loop"`
	EgressMaxDepth      int64 `json:"egress_max_depth"`

	WALGroups         int64 `json:"wal_groups"`
	WALGroupedRecords int64 `json:"wal_grouped_records"`

	ParallelWindows int64 `json:"parallel_windows"`
	ParallelWaves   int64 `json:"parallel_waves"`
	ParallelTxns    int64 `json:"parallel_txns"`

	SpecReads     int64 `json:"spec_reads"`
	StrongReads   int64 `json:"strong_reads"`
	ReadFallbacks int64 `json:"read_fallbacks"`
	ReadRepairs   int64 `json:"read_repairs"`
	LeaseGrants   int64 `json:"lease_grants"`

	SnapshotsServed    int64 `json:"snapshots_served"`
	SnapshotsInstalled int64 `json:"snapshots_installed"`
	SnapshotChunksSent int64 `json:"snapshot_chunks_sent"`
	SnapshotChunksRecv int64 `json:"snapshot_chunks_recv"`
	SnapshotBytesSent  int64 `json:"snapshot_bytes_sent"`
	SnapshotBytesRecv  int64 `json:"snapshot_bytes_recv"`
	FetchPages         int64 `json:"fetch_pages"`
	StateSyncRetries   int64 `json:"state_sync_retries"`

	// UptimeSeconds and ThroughputTxnS are measured since Start (0 when
	// Start was never called).
	UptimeSeconds  float64 `json:"uptime_seconds"`
	ThroughputTxnS float64 `json:"throughput_txn_s"`
}

// Snapshot copies every counter into a plain struct for JSON export.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		ExecutedTxns:    m.ExecutedTxns.Load(),
		ExecutedBatches: m.ExecutedBatches.Load(),
		ProposedBatches: m.ProposedBatches.Load(),
		MessagesIn:      m.MessagesIn.Load(),
		ViewChanges:     m.ViewChanges.Load(),
		ViewChangesDone: m.ViewChangesDone.Load(),
		Rollbacks:       m.Rollbacks.Load(),
		Checkpoints:     m.Checkpoints.Load(),

		EgressQueued:        m.EgressQueued.Load(),
		EgressSignedOffLoop: m.EgressSignedOffLoop.Load(),
		EgressMaxDepth:      m.EgressMaxDepth.Load(),

		WALGroups:         m.WALGroups.Load(),
		WALGroupedRecords: m.WALGroupedRecords.Load(),

		ParallelWindows: m.ParallelWindows.Load(),
		ParallelWaves:   m.ParallelWaves.Load(),
		ParallelTxns:    m.ParallelTxns.Load(),

		SpecReads:     m.SpecReads.Load(),
		StrongReads:   m.StrongReads.Load(),
		ReadFallbacks: m.ReadFallbacks.Load(),
		ReadRepairs:   m.ReadRepairs.Load(),
		LeaseGrants:   m.LeaseGrants.Load(),

		SnapshotsServed:    m.SnapshotsServed.Load(),
		SnapshotsInstalled: m.SnapshotsInstalled.Load(),
		SnapshotChunksSent: m.SnapshotChunksSent.Load(),
		SnapshotChunksRecv: m.SnapshotChunksRecv.Load(),
		SnapshotBytesSent:  m.SnapshotBytesSent.Load(),
		SnapshotBytesRecv:  m.SnapshotBytesRecv.Load(),
		FetchPages:         m.FetchPages.Load(),
		StateSyncRetries:   m.StateSyncRetries.Load(),
	}
	if start := m.startNanos.Load(); start != 0 {
		s.UptimeSeconds = time.Since(time.Unix(0, start)).Seconds()
		s.ThroughputTxnS = m.Throughput()
	}
	return s
}

// Throughput returns executed transactions per second since Start.
func (m *Metrics) Throughput() float64 {
	start := m.startNanos.Load()
	if start == 0 {
		return 0
	}
	elapsed := time.Since(time.Unix(0, start)).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.ExecutedTxns.Load()) / elapsed
}
