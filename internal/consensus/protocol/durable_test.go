package protocol

// Tests for the reply durability gate: a durable replica must never answer a
// client before the WAL group carrying the batch is committed, and a crash
// (or rollback) in the window between execute and group-sync must lose the
// reply — never the durability.

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
)

func gateRuntime(t *testing.T, st *storage.Store) (*Runtime, network.Transport) {
	t.Helper()
	net := network.NewChanNet()
	t.Cleanup(func() { net.Close() })
	ring := crypto.NewKeyRing(4, []byte("durable-test"))
	cfg := Config{ID: 0, N: 4, F: 1, Scheme: crypto.SchemeNone, CheckpointInterval: 1 << 20}
	rt := NewRuntime(cfg, ring, net.Join(types.ReplicaNode(0)), RuntimeOptions{Storage: st})
	cli := net.Join(types.ClientNode(types.ClientIDBase))
	return rt, cli
}

func recvInform(t *testing.T, cli network.Transport, timeout time.Duration) *Inform {
	t.Helper()
	select {
	case env := <-cli.Inbox():
		msg, ok := env.Msg.(*Inform)
		if !ok {
			t.Fatalf("client received %T, want *Inform", env.Msg)
		}
		return msg
	case <-time.After(timeout):
		return nil
	}
}

// TestDurableReplyHeldUntilGroupSync uses the gate directly (no storage, so
// the durability notification is fully under test control): the reply must
// not leave before noteDurable covers its sequence number, and must leave
// afterwards.
func TestDurableReplyHeldUntilGroupSync(t *testing.T) {
	rt, cli := gateRuntime(t, nil)
	// Arm the gate without storage: the test plays the committer.
	rt.durable = true

	evs := rt.Exec.Commit(1, 0, writeBatch(types.ClientIDBase, 1, "k", 1), nil)
	if len(evs) != 1 {
		t.Fatalf("executed %d batches, want 1", len(evs))
	}
	rt.InformBatch(evs[0].Rec, evs[0].Results, false, types.ZeroDigest)

	if msg := recvInform(t, cli, 50*time.Millisecond); msg != nil {
		t.Fatalf("client answered before the WAL group was durable: %+v", msg)
	}
	rt.noteDurable(1)
	msg := recvInform(t, cli, 5*time.Second)
	if msg == nil {
		t.Fatal("reply never released after group sync")
	}
	if msg.Seq != 1 || msg.ClientSeq != 1 {
		t.Fatalf("released reply = seq %d cliSeq %d, want 1/1", msg.Seq, msg.ClientSeq)
	}
	// The released reply is now cached for duplicate suppression.
	req := writeBatch(types.ClientIDBase, 1, "k", 1).Requests[0]
	if !rt.ReplayReply(&req) {
		t.Fatal("released reply was not cached")
	}
}

// TestCrashBeforeGroupSyncLosesReply: a crash (modelled by the rollback/drop
// path) between execute and group-sync discards the gated reply — the client
// is never answered from state that did not survive.
func TestCrashBeforeGroupSyncLosesReply(t *testing.T) {
	rt, cli := gateRuntime(t, nil)
	rt.durable = true

	evs := rt.Exec.Commit(1, 0, writeBatch(types.ClientIDBase, 1, "k", 1), nil)
	rt.InformBatch(evs[0].Rec, evs[0].Results, false, types.ZeroDigest)
	// Crash window: seq 1 never reached the disk; the recovered replica
	// resumes below it.
	rt.dropPendingReplies(0)
	// Later durability progress must not resurrect the dropped reply.
	rt.noteDurable(5)
	if msg := recvInform(t, cli, 100*time.Millisecond); msg != nil {
		t.Fatalf("dropped reply was sent anyway: %+v", msg)
	}
	// And nothing was cached: a retransmission cannot be answered from the
	// lost execution.
	req := writeBatch(types.ClientIDBase, 1, "k", 1).Requests[0]
	if rt.ReplayReply(&req) {
		t.Fatal("lost reply still answerable from the cache")
	}
}

// TestDurableReplyGroupSyncIntegration runs the real chain — executor →
// group-commit queue → committer callback → gate → egress — and asserts
// that whenever a reply reaches the client, the store already reports its
// sequence number durable.
func TestDurableReplyGroupSyncIntegration(t *testing.T) {
	st, err := storage.Open(t.TempDir(), storage.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rt, cli := gateRuntime(t, st)

	const n = 8
	for seq := types.SeqNum(1); seq <= n; seq++ {
		evs := rt.Exec.Commit(seq, 0, writeBatch(types.ClientIDBase, uint64(seq), "k", byte(seq)), nil)
		if len(evs) != 1 {
			t.Fatalf("seq %d did not execute", seq)
		}
		rt.InformBatch(evs[0].Rec, evs[0].Results, false, types.ZeroDigest)
	}
	for i := 0; i < n; i++ {
		msg := recvInform(t, cli, 10*time.Second)
		if msg == nil {
			t.Fatalf("received only %d/%d replies", i, n)
		}
		if durable := st.LastSeq(); durable < msg.Seq {
			t.Fatalf("reply for seq %d released while WAL only durable to %d", msg.Seq, durable)
		}
	}
	if groups, recs := st.GroupStats(); groups == 0 || recs != n {
		t.Fatalf("group stats = %d groups/%d records, want >0/%d", groups, recs, n)
	}
}
