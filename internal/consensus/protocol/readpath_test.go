package protocol

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// captureNet records every Send so tests can observe client-bound replies
// produced through the egress pipeline.
type captureNet struct {
	mu   sync.Mutex
	sent []network.Envelope
}

func (c *captureNet) Node() types.NodeID { return types.ReplicaNode(1) }
func (c *captureNet) Send(to types.NodeID, msg any) {
	c.mu.Lock()
	c.sent = append(c.sent, network.Envelope{To: to, Msg: msg})
	c.mu.Unlock()
}
func (c *captureNet) Broadcast(tos []types.NodeID, msg any) {
	for _, to := range tos {
		c.Send(to, msg)
	}
}
func (c *captureNet) Inbox() <-chan network.Envelope { return nil }
func (c *captureNet) Close() error                   { return nil }

// readReplies returns the ReadReply messages captured so far.
func (c *captureNet) readReplies() []*ReadReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*ReadReply
	for _, env := range c.sent {
		if m, ok := env.Msg.(*ReadReply); ok {
			out = append(out, m)
		}
	}
	return out
}

func (c *captureNet) awaitReadReplies(t *testing.T, n int) []*ReadReply {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := c.readReplies()
		if len(rs) >= n {
			return rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d read replies, have %d", n, len(rs))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadPathRollbackRepair drives the speculative-read invalidation
// machinery end to end at the runtime level: a SPECULATIVE read served from
// an executed prefix that a view change later rolls back must be re-answered
// with the repaired value (Repaired set), re-anchored at the rollback point,
// and repaired again by a second, deeper rollback.
func TestReadPathRollbackRepair(t *testing.T) {
	ring := crypto.NewKeyRing(4, []byte("repair-test"))
	nt := &captureNet{}
	cfg := Config{ID: 1, N: 4, F: 1, Scheme: crypto.SchemeMAC}
	rt := NewRuntime(cfg, ring, nt, RuntimeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Egress.Start(ctx)

	rt.Exec.Commit(1, 0, writeBatch(7, 1, "k", 1), nil)
	rt.Exec.Commit(2, 0, writeBatch(7, 2, "k", 2), nil)

	const readerID = types.ClientID(9)
	req := types.Request{Txn: types.Transaction{
		Client:      readerID,
		Seq:         1, // read-space sequence
		Ops:         []types.Op{{Kind: types.OpRead, Key: "k"}},
		Consistency: types.ConsistencySpeculative,
	}}
	rt.ServeLocalRead(&req, types.ConsistencySpeculative, 0)

	first := nt.awaitReadReplies(t, 1)[0]
	if string(first.Values[0]) != "\x02" || first.ExecSeq != 2 || first.Repaired {
		t.Fatalf("first answer: values=%q seq=%d repaired=%v, want 0x02@2 unrepaired",
			first.Values, first.ExecSeq, first.Repaired)
	}
	// The reply must be MAC'd for the client exactly as the client verifies it.
	p := first.Payload()
	if !ring.NodeKeys(types.ClientNode(readerID)).CheckMAC(types.ReplicaNode(1), p[:], first.Tag) {
		t.Fatal("read reply MAC does not verify for the client")
	}
	// Its prefix tag must match the digest recorded when seq 2 executed.
	if state, _, ok := rt.Exec.DigestsAt(2); !ok || state != first.StateDigest {
		t.Fatalf("prefix tag mismatch: reply=%x recorded ok=%v", first.StateDigest, ok)
	}

	// A view change rolls back past the serving sequence: the read observed
	// state the cluster abandoned and must be re-answered.
	if err := rt.Exec.Rollback(1); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	second := nt.awaitReadReplies(t, 2)[1]
	if !second.Repaired || string(second.Values[0]) != "\x01" || second.ExecSeq != 1 {
		t.Fatalf("repair: values=%q seq=%d repaired=%v, want 0x01@1 repaired",
			second.Values, second.ExecSeq, second.Repaired)
	}
	if second.StateDigest != rt.Exec.StateDigest() {
		t.Fatal("repaired reply does not carry the rewound state digest")
	}
	if got := rt.Metrics.ReadRepairs.Load(); got != 1 {
		t.Fatalf("ReadRepairs=%d, want 1", got)
	}

	// The registry re-anchored the read at the rollback point, so a second,
	// deeper rollback repairs it again — now to the pre-write state.
	if err := rt.Exec.Rollback(0); err != nil {
		t.Fatalf("second rollback: %v", err)
	}
	third := nt.awaitReadReplies(t, 3)[2]
	if !third.Repaired || third.ExecSeq != 0 || len(third.Values[0]) != 0 {
		t.Fatalf("second repair: values=%q seq=%d repaired=%v, want empty@0 repaired",
			third.Values, third.ExecSeq, third.Repaired)
	}

	// Once the serve is covered by a stable checkpoint it can never roll
	// back; pruning must drop it so the registry stays bounded.
	rt.PruneSpecReads(0)
	rt.readMu.Lock()
	left := len(rt.specReads)
	rt.readMu.Unlock()
	if left != 0 {
		t.Fatalf("%d spec reads still tracked after pruning", left)
	}
}
