// Package protocol contains the replica framework shared by every consensus
// protocol in this repository: configuration and quorum arithmetic, the
// client-facing message types, the ordered executor that drives the store
// and ledger, the parallel authentication pipeline, the primary-side
// request batcher, the checkpoint sub-protocol, and the analytic cost model
// behind the paper's Fig 1.
//
// Individual protocols (poe, pbft, zyzzyva, sbft, hotstuff) build their
// replicas on these pieces, mirroring how the paper implements all five
// protocols inside the one ResilientDB fabric (§III).
//
// Durability is opt-in through RuntimeOptions.Storage: the executor then
// write-ahead-logs every executed batch before the replica answers its
// clients, stable checkpoints persist snapshots, and NewRuntime rebuilds
// the executed prefix (snapshot restore + WAL replay) at construction; see
// the internal/storage package for the on-disk format and recovery rules.
package protocol

import (
	"fmt"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
)

// Config describes one replica's view of the system and the protocol tuning
// parameters shared by all protocols.
type Config struct {
	// ID is this replica's identifier, 0 ≤ ID < N.
	ID types.ReplicaID
	// N is the number of replicas; the paper requires N > 3F.
	N int
	// F is the number of byzantine replicas tolerated.
	F int

	// Scheme selects the authentication instantiation (ingredient I3).
	Scheme crypto.Scheme

	// BatchSize is the number of client requests aggregated per proposal
	// (the paper's default is 100).
	BatchSize int
	// BatchLinger bounds how long the primary waits to fill a batch before
	// proposing a partial one.
	BatchLinger time.Duration

	// Window is the out-of-order window: the primary may run consensus for
	// sequence numbers up to Window ahead of the last executed one (§II-F,
	// PBFT's high/low watermarks). Window 1 disables out-of-order
	// processing.
	Window int

	// CheckpointInterval is the number of sequence numbers between
	// checkpoints (§II-D).
	CheckpointInterval types.SeqNum

	// ViewTimeout is the initial failure-detection timeout; it doubles on
	// every consecutive view change (exponential backoff, Theorem 7).
	ViewTimeout time.Duration

	// LeaseDuration is the read-lease promise window (protocol/lease.go): a
	// replica granting a lease promises not to join a higher view for this
	// long on its own clock, and the primary treats each grant as valid for
	// half of it from receipt. Must stay well below ViewTimeout — a pending
	// view change waits out at most one promise window.
	LeaseDuration time.Duration

	// Seed seeds the deterministic key ring shared by the cluster.
	Seed []byte
}

// Validate checks the configuration against the paper's system model.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("protocol: N must be positive, got %d", c.N)
	}
	if c.N <= 3*c.F {
		return fmt.Errorf("protocol: need n > 3f, got n=%d f=%d", c.N, c.F)
	}
	if c.ID < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("protocol: replica id %d out of range [0,%d)", c.ID, c.N)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("protocol: batch size must be ≥ 1, got %d", c.BatchSize)
	}
	if c.Window < 1 {
		return fmt.Errorf("protocol: window must be ≥ 1, got %d", c.Window)
	}
	if c.CheckpointInterval < 1 {
		return fmt.Errorf("protocol: checkpoint interval must be ≥ 1, got %d", c.CheckpointInterval)
	}
	return nil
}

// WithDefaults fills unset tuning fields with sensible defaults and returns
// the completed config.
func (c Config) WithDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.BatchLinger == 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = 128
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 128
	}
	if c.ViewTimeout == 0 {
		c.ViewTimeout = 300 * time.Millisecond
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = c.ViewTimeout / 4
	}
	return c
}

// NF returns nf = n − f, the size of the paper's large quorum.
func (c Config) NF() int { return c.N - c.F }

// FPlus1 returns f + 1, the size of the paper's small quorum (at least one
// non-faulty member).
func (c Config) FPlus1() int { return c.F + 1 }

// Primary returns the primary of view v.
func (c Config) Primary(v types.View) types.ReplicaID { return v.Primary(c.N) }

// IsPrimary reports whether this replica is the primary of view v.
func (c Config) IsPrimary(v types.View) bool { return c.Primary(v) == c.ID }
