package protocol

import (
	"errors"
	"time"

	"github.com/poexec/poe/internal/types"
)

// Hybrid-consistency read path: read-only transactions tagged STRONG or
// SPECULATIVE bypass the ordering pipeline entirely — no consensus slot, no
// egress signing rounds, no WAL bandwidth. SPECULATIVE reads are answered by
// any replica from its executed (possibly still speculative) prefix and are
// invalidation-tracked: if a rollback truncates past the serving sequence
// number, the replica re-answers the client with the repaired value. STRONG
// reads are answered only by the current primary under a quorum-granted read
// lease (lease.go); without a valid lease they fall back to ordering, so
// linearizability never depends on the lease being live.

// ErrReadPathUnsupported is returned by protocols that do not implement the
// fast read path; callers fall back to ordering the read.
var ErrReadPathUnsupported = errors.New("protocol: fast read path unsupported, ordering the read")

// maxSpecReadsTracked bounds the invalidation registry. Entries at or below
// the stable checkpoint can never roll back and are pruned at every stable
// checkpoint; the cap is a backstop for bursts between checkpoints — when it
// overflows, the oldest (lowest-seq, least rollback-exposed) entries are
// dropped and their clients rely on retransmission instead of repair.
const maxSpecReadsTracked = 8192

// specRead is one served speculative read still exposed to rollback.
type specRead struct {
	client    types.ClientID
	clientSeq uint64
	digest    types.Digest
	ops       []types.Op
	seq       types.SeqNum // executed prefix it was served from
}

// ServeLocalRead answers a read-only request from this replica's executed
// prefix, without ordering. The caller has established the tier's
// precondition (any replica for SPECULATIVE; primary with a valid lease and
// a caught-up committed prefix for STRONG). Must run on the event loop: the
// executed prefix only changes there, so seq, digest, and values are a
// consistent cut. The MAC is computed on the egress pool.
func (rt *Runtime) ServeLocalRead(req *types.Request, tier types.Consistency, view types.View) {
	kv := rt.Exec.Store()
	values := make([][]byte, len(req.Txn.Ops))
	for i := range req.Txn.Ops {
		if v, ok := kv.Get(req.Txn.Ops[i].Key); ok {
			values[i] = v
		}
	}
	reply := &ReadReply{
		From:        rt.Cfg.ID,
		Digest:      req.Digest(),
		ClientSeq:   req.Txn.Seq,
		Values:      values,
		ExecSeq:     kv.LastApplied(),
		StateDigest: kv.StateDigest(),
		View:        view,
		Tier:        tier,
	}
	if tier == types.ConsistencySpeculative {
		rt.trackSpecRead(req, reply.ExecSeq)
		rt.Metrics.SpecReads.Add(1)
	} else {
		rt.Metrics.StrongReads.Add(1)
	}
	rt.sendReadReply(req.Txn.Client, reply)
}

// sendReadReply MACs and sends one read reply through the egress pipeline.
// Read replies never wait on the durability gate: they assert nothing about
// durable history beyond the (seq, digest) prefix tag they carry.
func (rt *Runtime) sendReadReply(client types.ClientID, m *ReadReply) {
	rt.Egress.Enqueue(func() {
		p := m.Payload()
		m.Tag = rt.Keys.MAC(types.ClientNode(client), p[:])
	}, func() {
		rt.Net.Send(types.ClientNode(client), m)
	}, nil)
}

// trackSpecRead registers a served speculative read for rollback
// invalidation. Guarded by readMu: registration happens on the event loop,
// but repair fires from Executor.Rollback under the executor lock.
func (rt *Runtime) trackSpecRead(req *types.Request, seq types.SeqNum) {
	rt.readMu.Lock()
	if len(rt.specReads) >= maxSpecReadsTracked {
		rt.specReads = append(rt.specReads[:0], rt.specReads[len(rt.specReads)/2:]...)
	}
	rt.specReads = append(rt.specReads, specRead{
		client:    req.Txn.Client,
		clientSeq: req.Txn.Seq,
		digest:    req.Digest(),
		ops:       req.Txn.Ops,
		seq:       seq,
	})
	rt.readMu.Unlock()
}

// RepairSpecReads is the executor's afterRollback hook: the store has just
// been rewound to toSeq, so every tracked speculative read served from a
// higher sequence number observed state the cluster abandoned. Each one is
// re-executed against the repaired store and re-answered with Repaired set,
// then re-anchored at toSeq (a second, deeper rollback repairs it again).
//
// Called with the executor lock held — it must touch only the store (its own
// lock), the registry (readMu), and the egress queue (internally
// synchronized); Executor methods would deadlock.
func (rt *Runtime) RepairSpecReads(toSeq types.SeqNum) {
	kv := rt.Exec.Store()
	rt.readMu.Lock()
	var repairs []*ReadReply
	var clients []types.ClientID
	for i := range rt.specReads {
		sr := &rt.specReads[i]
		if sr.seq <= toSeq {
			continue
		}
		values := make([][]byte, len(sr.ops))
		for j := range sr.ops {
			if v, ok := kv.Get(sr.ops[j].Key); ok {
				values[j] = v
			}
		}
		repairs = append(repairs, &ReadReply{
			From:        rt.Cfg.ID,
			Digest:      sr.digest,
			ClientSeq:   sr.clientSeq,
			Values:      values,
			ExecSeq:     toSeq,
			StateDigest: kv.StateDigest(),
			Tier:        types.ConsistencySpeculative,
			Repaired:    true,
		})
		clients = append(clients, sr.client)
		sr.seq = toSeq
	}
	rt.readMu.Unlock()
	for i, m := range repairs {
		rt.sendReadReply(clients[i], m)
	}
	rt.Metrics.ReadRepairs.Add(int64(len(repairs)))
}

// PruneSpecReads drops registry entries at or below the stable checkpoint:
// rollback can never reach below it, so those serves are final.
func (rt *Runtime) PruneSpecReads(stable types.SeqNum) {
	rt.readMu.Lock()
	kept := rt.specReads[:0]
	for i := range rt.specReads {
		if rt.specReads[i].seq > stable {
			kept = append(kept, rt.specReads[i])
		}
	}
	rt.specReads = kept
	rt.readMu.Unlock()
}

// --- lease plumbing ---

// MaybeGrantLease sends a fresh read-lease grant to the primary of view when
// one is due. Protocols call it from their tick (and after checkpoint
// broadcasts, which is the common carrier under load) with suspecting set
// while they distrust the primary — a suspecting replica stops renewing, so
// the outstanding promise expires and the view change proceeds. The primary
// itself never sends (its grant is implicit in HolderValid).
func (rt *Runtime) MaybeGrantLease(view types.View, suspecting bool) {
	if suspecting || rt.Cfg.IsPrimary(view) || !rt.Lease.GrantDue(view) {
		return
	}
	g := &LeaseGrant{
		From:          rt.Cfg.ID,
		View:          view,
		Seq:           rt.Exec.LastExecuted(),
		DurationNanos: int64(rt.Cfg.LeaseDuration),
	}
	// The promise must start before the grant can possibly arrive.
	rt.Lease.NoteGranted(view)
	rt.Metrics.LeaseGrants.Add(1)
	payload := g.SignedPayload()
	primary := rt.Cfg.Primary(view)
	rt.Egress.Enqueue(
		func() { g.Sig = rt.Keys.Sign(payload) },
		func() { rt.SendReplica(primary, g) },
		nil,
	)
}

// OnLeaseGrant verifies and records a received grant. Only the primary of
// the grant's view accumulates them; anyone else ignores the message.
func (rt *Runtime) OnLeaseGrant(g *LeaseGrant) {
	if !rt.Cfg.IsPrimary(g.View) || g.From == rt.Cfg.ID {
		return
	}
	if !rt.Keys.VerifyFrom(types.ReplicaNode(g.From), g.SignedPayload(), g.Sig) {
		return
	}
	rt.Lease.OnGrant(g)
}

// --- primary-side STRONG read deferral ---

// StrongReads queues STRONG reads the primary cannot serve at arrival —
// typically because its committed prefix lags its proposals — so they can be
// served the moment it catches up instead of paying a full ordering round.
// Reads that wait longer than maxWait fall back to ordering. Event-loop
// owned.
type StrongReads struct {
	pending []strongPending
}

type strongPending struct {
	req   types.Request
	since time.Time
}

// Defer queues one read. The request must be owned by the caller.
func (q *StrongReads) Defer(req *types.Request, now time.Time) {
	q.pending = append(q.pending, strongPending{req: *req, since: now})
}

// Len returns the number of queued reads.
func (q *StrongReads) Len() int { return len(q.pending) }

// Drain retries every queued read: serve returns true when it answered the
// read (the entry is dropped); entries older than maxWait are handed to
// fallback (ordering) and dropped; the rest stay queued.
func (q *StrongReads) Drain(now time.Time, maxWait time.Duration, serve func(*types.Request) bool, fallback func(*types.Request)) {
	kept := q.pending[:0]
	for i := range q.pending {
		p := &q.pending[i]
		if serve(&p.req) {
			continue
		}
		if now.Sub(p.since) >= maxWait {
			fallback(&p.req)
			continue
		}
		kept = append(kept, *p)
	}
	q.pending = kept
}

// FlushAll hands every queued read to fallback — called on view change,
// when the primary can no longer promise to serve them under the old lease.
func (q *StrongReads) FlushAll(fallback func(*types.Request)) {
	for i := range q.pending {
		fallback(&q.pending[i].req)
	}
	q.pending = q.pending[:0]
}
