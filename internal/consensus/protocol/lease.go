package protocol

import (
	"sync"
	"time"

	"github.com/poexec/poe/internal/types"
)

// Lease is the read-lease state machine of the hybrid-consistency read path:
// it lets the current primary answer STRONG (linearizable) reads from its
// local executed prefix without ordering them, while guaranteeing that no
// higher view can commit conflicting writes for as long as the primary
// believes the lease valid.
//
// Both roles live in this one struct because every replica plays both:
//
//   - As a *grantor*, a replica periodically sends the primary of its
//     current view a signed LeaseGrant and promises not to join any higher
//     view until LeaseDuration has elapsed on its own clock since the grant
//     was produced. Protocols enforce the promise by consulting
//     CanAdvanceView before starting or joining a view change; a blocked
//     advance is retried from the regular tick, so the promise delays a view
//     change by at most one LeaseDuration.
//
//   - As a *holder*, the primary counts a received grant as valid for only
//     half the grantor's promise window, measured from receipt on its own
//     clock. The halved window absorbs delivery delay: the grantor's promise
//     clock started before the grant was even sent, so as long as one-way
//     delivery takes less than LeaseDuration/2 (and clock *rates* agree —
//     absolute clock synchronization is never used), the holder's validity
//     window is strictly contained in the grantor's promise window.
//
// Safety is quorum intersection, not clocks: the holder requires nf grants
// (its own implicit), a view change needs nf joiners, and the two quorums
// intersect in at least f+1 replicas — at least one non-faulty grantor whose
// unexpired promise keeps it out of the join quorum. Clocks and delay bounds
// only size the windows; when they are violated the worst case is a lease
// the holder cannot use (falls back to ordering the read), never a stale
// serve racing a committed write in a newer view, provided the containment
// assumption above holds. On view change ResetHolder discards all grants.
type Lease struct {
	mu  sync.Mutex
	cfg Config

	// Now is the clock, injectable by tests. Defaults to time.Now.
	Now func() time.Time

	// grantor side: the promise currently outstanding.
	promiseUntil time.Time
	promisedView types.View
	lastGrantAt  time.Time

	// holder side: per-grantor validity deadlines for holderView.
	holderView types.View
	grants     map[types.ReplicaID]time.Time
}

// NewLease builds the lease state machine for one replica.
func NewLease(cfg Config) *Lease {
	return &Lease{cfg: cfg, Now: time.Now, grants: make(map[types.ReplicaID]time.Time)}
}

// GrantDue reports whether the grantor should send a fresh grant for view:
// renewals go out every LeaseDuration/3 so the holder's halved validity
// windows overlap with slack, and immediately after a view switch.
func (l *Lease) GrantDue(view types.View) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if view != l.promisedView {
		return true
	}
	return l.Now().Sub(l.lastGrantAt) >= l.cfg.LeaseDuration/3
}

// NoteGranted records the promise a grant about to be sent carries. It must
// be called before the grant leaves the replica — the promise clock has to
// cover the grant's entire lifetime at the holder.
func (l *Lease) NoteGranted(view types.View) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.Now()
	l.lastGrantAt = now
	if until := now.Add(l.cfg.LeaseDuration); until.After(l.promiseUntil) || view > l.promisedView {
		l.promiseUntil = until
		l.promisedView = view
	}
}

// OnGrant records a received grant at the holder. Grants for other views are
// ignored; ResetHolder switches the holder view. The validity deadline is
// receipt time plus half the grantor's declared window (see type comment).
func (l *Lease) OnGrant(g *LeaseGrant) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if g.View != l.holderView {
		return
	}
	deadline := l.Now().Add(time.Duration(g.DurationNanos) / 2)
	if deadline.After(l.grants[g.From]) {
		l.grants[g.From] = deadline
	}
}

// HolderValid reports whether the primary of view currently holds a valid
// read lease: nf unexpired grants, counting its own implicit one.
func (l *Lease) HolderValid(view types.View) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if view != l.holderView {
		return false
	}
	now := l.Now()
	valid := 1 // own implicit grant
	for from, deadline := range l.grants {
		if from == l.cfg.ID {
			continue
		}
		if now.Before(deadline) {
			valid++
		}
	}
	return valid >= l.cfg.NF()
}

// CanAdvanceView reports whether the grantor's outstanding promise allows
// starting or joining a view change to the target view. Advancing to a view
// at or below the promised one is always allowed (the promise only protects
// the promised view's primary from *higher* views).
func (l *Lease) CanAdvanceView(to types.View) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to <= l.promisedView {
		return true
	}
	return !l.Now().Before(l.promiseUntil)
}

// ResetHolder discards all held grants and re-targets the holder side at
// view. Protocols call it whenever their view changes; grants from the old
// view must never count toward a lease in the new one.
func (l *Lease) ResetHolder(view types.View) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if view == l.holderView {
		return
	}
	l.holderView = view
	for k := range l.grants {
		delete(l.grants, k)
	}
}

// HolderView returns the view the holder side is collecting grants for.
func (l *Lease) HolderView() types.View {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.holderView
}
