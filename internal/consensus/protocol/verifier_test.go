package protocol

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

func feedEnvelopes(in chan<- network.Envelope, n int) {
	for i := 0; i < n; i++ {
		in <- network.Envelope{From: types.ReplicaNode(0), Msg: i}
	}
	close(in)
}

// TestPipelineOrderedDelivery: envelopes verified concurrently (with skewed
// per-message verification latency) must still be delivered in arrival
// order.
func TestPipelineOrderedDelivery(t *testing.T) {
	const n = 400
	verify := func(env *network.Envelope) bool {
		// Skew verification time so later messages routinely finish
		// verification before earlier ones.
		if env.Msg.(int)%7 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return true
	}
	v := NewVerifier(verify, 8)
	in := make(chan network.Envelope, n)
	out := v.Pipe(context.Background(), in)
	go feedEnvelopes(in, n)

	want := 0
	for env := range out {
		if env.Msg.(int) != want {
			t.Fatalf("out of order: got %d, want %d", env.Msg.(int), want)
		}
		want++
	}
	if want != n {
		t.Fatalf("delivered %d of %d", want, n)
	}
	if v.Verified.Load() != n || v.Dropped.Load() != 0 {
		t.Fatalf("counters: verified=%d dropped=%d", v.Verified.Load(), v.Dropped.Load())
	}
}

// TestPipelineDropsInvalid: messages failing verification never reach the
// consumer, and the survivors keep their relative order.
func TestPipelineDropsInvalid(t *testing.T) {
	const n = 200
	verify := func(env *network.Envelope) bool { return env.Msg.(int)%2 == 0 }
	v := NewVerifier(verify, 4)
	in := make(chan network.Envelope, n)
	out := v.Pipe(context.Background(), in)
	go feedEnvelopes(in, n)

	want := 0
	for env := range out {
		if env.Msg.(int) != want {
			t.Fatalf("got %d, want %d", env.Msg.(int), want)
		}
		want += 2
	}
	if v.Dropped.Load() != n/2 || v.Verified.Load() != n/2 {
		t.Fatalf("counters: verified=%d dropped=%d", v.Verified.Load(), v.Dropped.Load())
	}
}

// TestPipelineRewritesEnvelopes: a VerifyFunc may replace the message with
// an owned clone; the consumer must observe the replacement.
func TestPipelineRewritesEnvelopes(t *testing.T) {
	verify := func(env *network.Envelope) bool {
		env.Msg = env.Msg.(int) + 1000
		return true
	}
	v := NewVerifier(verify, 2)
	in := make(chan network.Envelope, 8)
	out := v.Pipe(context.Background(), in)
	go feedEnvelopes(in, 8)
	for i := 0; i < 8; i++ {
		env, ok := <-out
		if !ok || env.Msg.(int) != i+1000 {
			t.Fatalf("envelope %d not rewritten: %v", i, env.Msg)
		}
	}
}

// TestDigestTable: share payloads registered by the event loop are visible
// to workers and removed when the slot retires.
func TestDigestTable(t *testing.T) {
	v := NewVerifier(nil, 1)
	v.NoteDigest(1, 3, 7, []byte("payload"))
	if p, ok := v.PayloadFor(1, 3, 7); !ok || string(p) != "payload" {
		t.Fatalf("lookup failed: %q %v", p, ok)
	}
	if _, ok := v.PayloadFor(0, 3, 7); ok {
		t.Fatal("wrong kind resolved")
	}
	v.ForgetDigests(3, 7)
	if _, ok := v.PayloadFor(1, 3, 7); ok {
		t.Fatal("payload survived ForgetDigests")
	}
}

// TestReplicaLoopsDoNotVerifyInline is the grep-able invariant behind the
// parallel authentication pipeline: no replica state-machine file may verify
// client requests or broadcast authenticators inline — that work lives in
// each protocol's verify.go, which runs on pipeline workers. Threshold
// share/certificate checks are allowed on the loop because they resolve
// through the crypto layer's memo (warmed by the pipeline) rather than raw
// Ed25519.
func TestReplicaLoopsDoNotVerifyInline(t *testing.T) {
	forbidden := []string{"VerifyClientRequest", "VerifyBroadcast", "VerifyBatch", "ed25519"}
	for _, pkg := range []string{"poe", "pbft", "sbft", "zyzzyva", "hotstuff"} {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || name == "verify.go" || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			for _, needle := range forbidden {
				if strings.Contains(string(src), needle) {
					t.Errorf("%s/%s calls %s on the replica event loop; move it into verify.go (the authentication pipeline)", pkg, name, needle)
				}
			}
		}
	}
}
