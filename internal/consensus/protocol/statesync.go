package protocol

import (
	"time"

	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Snapshot state transfer: the recovery layer below the record-based Fetch.
//
// Fetch can only close gaps whose records peers still retain — RetainSlack
// sequence numbers below the stable checkpoint. A replica that fell further
// behind (long partition, crash with a wiped data directory) would stall
// forever: the records just above its head are pruned cluster-wide. The
// paper's checkpoint sub-protocol (§II-D) already produces everything needed
// to recover from that: periodic signed digests of the full state. StateSync
// turns them into a transfer protocol:
//
//  1. Detection. Checkpoint votes flow through Runtime.OnCheckpoint into
//     OnVote. When f+1 distinct replicas vote matching digests for a
//     sequence number, at least one honest replica vouches for that state;
//     if that trusted checkpoint is more than RetainSlack ahead of the local
//     executed head, Fetch cannot help and snapshot transfer starts.
//  2. Transfer. The replica asks one peer (round-robin) for its stable
//     snapshot. The server answers with a SnapshotOffer — size, chunk
//     count, and the checkpoint certificate (the signed votes that
//     stabilized the checkpoint) — followed by size-capped SnapshotChunks
//     carrying the snapshot's canonical wire encoding.
//  3. Verification. The fetcher accepts the offer only after verifying the
//     certificate itself (f+1 distinct, signature-valid, digest-matching
//     votes), and installs the reassembled snapshot only if its state
//     digest and ledger-head hash equal the certified digests. The chunks
//     are untrusted bytes until that check passes.
//  4. Install + bridge. The snapshot is persisted through internal/storage
//     as if locally taken, the executor jumps to it, and the ordinary
//     record fetch bridges the remaining distance to the live head.
//
// A per-request deadline, peer rotation, and exponential backoff keep a
// slow or Byzantine server from wedging recovery: any timeout, malformed
// offer, or corrupt chunk abandons the attempt and the next peer is asked.
//
// StateSync is owned by the replica event loop: protocols route
// SnapshotOffer/SnapshotChunk messages to it and call Tick from their
// timers. No internal locking is needed.

const (
	// snapshotChunkSize caps one SnapshotChunk's payload.
	snapshotChunkSize = 256 << 10
	// maxSnapshotBytes caps the total transfer a fetcher will accept; a
	// Byzantine offer cannot bait an arbitrarily large allocation.
	maxSnapshotBytes = 256 << 20
	// stateSyncBackoff/stateSyncMaxBackoff bound the retry backoff between
	// failed attempts.
	stateSyncBackoff    = 25 * time.Millisecond
	stateSyncMaxBackoff = time.Second
)

// StateSync drives snapshot state transfer for one replica.
type StateSync struct {
	rt *Runtime

	// votes is the detection evidence: digest votes per checkpoint sequence
	// number above the local executed head. target is the highest sequence
	// number with f+1 matching votes.
	votes  map[types.SeqNum]map[types.ReplicaID]types.Digest
	target types.SeqNum

	// One in-flight attempt.
	active   bool
	server   types.ReplicaID
	deadline time.Time
	nextTry  time.Time
	backoff  time.Duration

	// Startup probing. Vote-driven detection assumes checkpoint votes keep
	// flowing, but a replica that (re)starts behind an IDLE cluster never
	// hears one — worse, it may itself be required for the quorum that would
	// commit the next batch and emit votes, a rejoin deadlock. Probe() marks
	// the sync exploratory: attempts run exactly as for a vote-detected lag,
	// and the SERVER decides whether a snapshot is warranted (it stays
	// silent when the prober is within the fetch horizon, see
	// HandleSnapshotRequest). A probe is bounded: it ends on any execution
	// progress or after probeTries unanswered attempts.
	probing    bool
	probeMark  types.SeqNum
	probeTries int

	offer      *SnapshotOffer
	certState  types.Digest
	certLedger types.Digest
	chunks     [][]byte
	got        int
	bytes      int64

	// AfterInstall, set by the protocol, runs on the event loop after a
	// snapshot installs, with the executions the install unblocked. The
	// protocol uses it to discard per-slot state the snapshot superseded,
	// resume its sequencing past the snapshot, and kick the bridging fetch.
	AfterInstall func(snap *storage.Snapshot, events []Executed)
}

func newStateSync(rt *Runtime) *StateSync {
	return &StateSync{
		rt:      rt,
		votes:   make(map[types.SeqNum]map[types.ReplicaID]types.Digest),
		backoff: stateSyncBackoff,
	}
}

// OnVote records one verified checkpoint vote as detection evidence.
// Runtime.OnCheckpoint calls it for every signature-valid vote, including
// ones below the voter's own stable checkpoint short-circuit.
func (s *StateSync) OnVote(cp *Checkpoint) {
	if cp.Seq <= s.rt.Exec.LastExecuted() || cp.Seq <= s.target {
		return
	}
	votes, ok := s.votes[cp.Seq]
	if !ok {
		votes = make(map[types.ReplicaID]types.Digest)
		s.votes[cp.Seq] = votes
	}
	votes[cp.From] = types.DigestConcat(cp.State[:], cp.Ledger[:])
	counts := make(map[types.Digest]int, len(votes))
	for _, d := range votes {
		counts[d]++
	}
	for _, c := range counts {
		if c >= s.rt.Cfg.F+1 {
			s.target = cp.Seq
			for seq := range s.votes {
				if seq <= s.target {
					delete(s.votes, seq)
				}
			}
			return
		}
	}
}

// Behind reports whether the trusted checkpoint has outrun Fetch's retained
// record horizon, i.e. snapshot transfer is the only way forward.
func (s *StateSync) Behind() bool {
	return s.target > s.rt.Exec.LastExecuted()+s.rt.Exec.RetainSlack
}

// Probe starts a bounded exploratory sync: a replica that (re)starts from
// durable state asks peers outright whether it needs a snapshot instead of
// waiting for checkpoint votes that an idle cluster will never send.
// Idempotent while a probe is running.
func (s *StateSync) Probe() {
	if s.rt.Cfg.N <= 1 || s.probing {
		return
	}
	s.probing = true
	s.probeMark = s.rt.Exec.LastExecuted()
	s.probeTries = 2 * (s.rt.Cfg.N - 1)
	s.nextTry = time.Time{}
}

// Tick drives deadlines and (re)starts attempts; protocols call it from
// their timer handler.
func (s *StateSync) Tick(now time.Time) {
	if s.rt.Cfg.N <= 1 {
		return
	}
	if s.probing && s.rt.Exec.LastExecuted() > s.probeMark {
		// Progress by any means — fetch, snapshot install, or normal commits
		// — answers the probe's question.
		s.probing = false
	}
	if s.active {
		if now.After(s.deadline) {
			s.fail(now)
		}
		return
	}
	if !s.Behind() && !s.probing {
		return
	}
	if now.Before(s.nextTry) {
		return
	}
	s.begin(now)
}

func (s *StateSync) begin(now time.Time) {
	peer, ok := s.rt.NextPeer()
	if !ok {
		return
	}
	s.active = true
	s.server = peer
	s.offer = nil
	s.chunks = nil
	s.got = 0
	s.bytes = 0
	s.deadline = now.Add(s.requestTimeout())
	s.rt.SendReplica(peer, &SnapshotRequest{From: s.rt.Cfg.ID, Have: s.rt.Exec.LastExecuted()})
}

// fail abandons the in-flight attempt: rotate to the next peer after an
// exponentially backed-off pause.
func (s *StateSync) fail(now time.Time) {
	s.active = false
	s.offer = nil
	s.chunks = nil
	s.rt.Metrics.StateSyncRetries.Add(1)
	s.nextTry = now.Add(s.backoff)
	s.backoff *= 2
	if s.backoff > stateSyncMaxBackoff {
		s.backoff = stateSyncMaxBackoff
	}
	if s.probing {
		// An unanswered probe usually means the server judged us within the
		// fetch horizon and stayed silent; a few rotations cover dead peers
		// too, then vote-driven detection is the steady-state answer.
		s.probeTries--
		if s.probeTries <= 0 {
			s.probing = false
		}
	}
}

func (s *StateSync) requestTimeout() time.Duration {
	t := 2 * s.rt.Cfg.ViewTimeout
	if t < 200*time.Millisecond {
		t = 200 * time.Millisecond
	}
	return t
}

// OnOffer validates a snapshot offer from the current server: plausible
// size and chunk arithmetic, and a checkpoint certificate with f+1 distinct
// signature-valid votes agreeing on one digest pair for the offered
// sequence number. Anything else abandons the attempt.
func (s *StateSync) OnOffer(m *SnapshotOffer) {
	if !s.active || m.From != s.server || s.offer != nil {
		return
	}
	now := time.Now()
	if m.Seq <= s.rt.Exec.LastExecuted() ||
		m.Size < 1 || m.Size > maxSnapshotBytes ||
		m.Chunks != int((m.Size+snapshotChunkSize-1)/snapshotChunkSize) {
		s.fail(now)
		return
	}
	state, ledgerHead, ok := s.verifyCert(m.Cert, m.Seq)
	if !ok {
		s.fail(now)
		return
	}
	s.offer = m
	s.certState = state
	s.certLedger = ledgerHead
	s.chunks = make([][]byte, m.Chunks)
	s.deadline = now.Add(s.requestTimeout())
}

// verifyCert checks a checkpoint certificate: every vote is for seq, all
// votes agree on one (state, ledger) digest pair, signatures verify, and at
// least f+1 distinct replicas signed — so at least one honest replica
// vouches for the digests.
func (s *StateSync) verifyCert(cert []Checkpoint, seq types.SeqNum) (state, ledgerHead types.Digest, ok bool) {
	signers := make(map[types.ReplicaID]bool, len(cert))
	for i := range cert {
		v := &cert[i]
		if v.Seq != seq || signers[v.From] {
			return state, ledgerHead, false
		}
		if i == 0 {
			state, ledgerHead = v.State, v.Ledger
		} else if v.State != state || v.Ledger != ledgerHead {
			return state, ledgerHead, false
		}
		if !s.rt.Keys.VerifyFrom(types.ReplicaNode(v.From), v.SignedPayload(), v.Sig) {
			return state, ledgerHead, false
		}
		signers[v.From] = true
	}
	return state, ledgerHead, len(signers) >= s.rt.Cfg.F+1
}

// OnChunk accepts one chunk of the offered snapshot; the last missing chunk
// triggers reassembly, verification against the certificate digests, and
// install.
func (s *StateSync) OnChunk(m *SnapshotChunk) {
	if !s.active || s.offer == nil || m.From != s.server || m.Seq != s.offer.Seq {
		return
	}
	now := time.Now()
	if m.Index < 0 || m.Index >= len(s.chunks) || s.chunks[m.Index] != nil || len(m.Data) == 0 {
		s.fail(now)
		return
	}
	s.bytes += int64(len(m.Data))
	if s.bytes > s.offer.Size {
		s.fail(now)
		return
	}
	s.chunks[m.Index] = m.Data
	s.got++
	s.rt.Metrics.SnapshotChunksRecv.Add(1)
	s.rt.Metrics.SnapshotBytesRecv.Add(int64(len(m.Data)))
	s.deadline = now.Add(s.requestTimeout())
	if s.got < len(s.chunks) {
		return
	}
	s.finish(now)
}

// finish reassembles, decodes, verifies, and installs the snapshot. Trust
// rule: the decoded snapshot is installed only if its recomputed state
// digest and its head block's hash equal the certificate's digests — the
// chunks themselves prove nothing.
func (s *StateSync) finish(now time.Time) {
	if s.bytes != s.offer.Size {
		s.fail(now)
		return
	}
	buf := make([]byte, 0, s.offer.Size)
	for _, c := range s.chunks {
		buf = append(buf, c...)
	}
	var snap storage.Snapshot
	r := wire.NewReader(buf)
	snap.ReadWire(r)
	if r.Close() != nil || snap.Seq != s.offer.Seq || snap.Head.Seq != snap.Seq {
		s.fail(now)
		return
	}
	if store.DigestOf(snap.Data, snap.Seq) != s.certState || snap.Head.Hash() != s.certLedger {
		s.fail(now)
		return
	}
	events, err := s.rt.InstallSnapshot(&snap)
	if err != nil {
		// The replica advanced past the snapshot while it streamed in;
		// nothing to install is not a server fault. Reset and re-detect.
		s.active = false
		s.offer = nil
		s.chunks = nil
		return
	}
	s.active = false
	s.offer = nil
	s.chunks = nil
	s.backoff = stateSyncBackoff
	for seq := range s.votes {
		if seq <= snap.Seq {
			delete(s.votes, seq)
		}
	}
	if s.AfterInstall != nil {
		s.AfterInstall(&snap, events)
	}
}

// --- server side ---

// HandleSnapshotRequest serves the stable checkpoint snapshot to a lagging
// peer: one offer carrying the checkpoint certificate, then the snapshot's
// canonical encoding in size-capped chunks. The encoded snapshot is cached
// per checkpoint so a burst of lagging peers costs one build. Replicas that
// cannot serve (no stable checkpoint yet, stabilized without the state in
// hand, certificate already superseded) stay silent and the fetcher rotates
// on.
func (rt *Runtime) HandleSnapshotRequest(m *SnapshotRequest) {
	stable := rt.Exec.StableCheckpointSeq()
	// Serve only when the requester is beyond the fetch horizon: records
	// down to stable−RetainSlack are still retained, so a requester inside
	// that window closes its gap with ordinary Fetch pages. This is also
	// what makes startup probes cheap — a current or nearly-current prober
	// gets silence, not a snapshot.
	if stable == 0 || stable <= m.Have+rt.Exec.RetainSlack || m.From == rt.Cfg.ID {
		return
	}
	if rt.stableCertSeq != stable || len(rt.stableCert) < rt.Cfg.F+1 {
		return
	}
	data, ok := rt.encodedSnapshot(stable)
	if !ok {
		return
	}
	nchunks := (len(data) + snapshotChunkSize - 1) / snapshotChunkSize
	offer := &SnapshotOffer{
		From:   rt.Cfg.ID,
		Seq:    stable,
		Size:   int64(len(data)),
		Chunks: nchunks,
		Cert:   append([]Checkpoint(nil), rt.stableCert...),
	}
	chunks := make([]*SnapshotChunk, nchunks)
	for i := range chunks {
		lo := i * snapshotChunkSize
		hi := lo + snapshotChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		chunks[i] = &SnapshotChunk{From: rt.Cfg.ID, Seq: stable, Index: i, Data: data[lo:hi]}
	}
	rt.Metrics.SnapshotsServed.Add(1)
	rt.Metrics.SnapshotChunksSent.Add(int64(nchunks))
	rt.Metrics.SnapshotBytesSent.Add(int64(len(data)))
	to := m.From
	rt.Egress.Enqueue(nil, func() {
		rt.SendReplica(to, offer)
		for _, c := range chunks {
			rt.SendReplica(to, c)
		}
	}, nil)
}

// encodedSnapshot returns the canonical encoding of the stable checkpoint
// snapshot, building and caching it on first use per checkpoint.
func (rt *Runtime) encodedSnapshot(stable types.SeqNum) ([]byte, bool) {
	if rt.snapCache.seq == stable && rt.snapCache.data != nil {
		return rt.snapCache.data, true
	}
	snap, err := rt.Exec.BuildSnapshot()
	if err != nil || snap.Seq != stable {
		return nil, false
	}
	data := snap.AppendWire(nil)
	rt.snapCache.seq, rt.snapCache.data = stable, data
	return data, true
}

// InstallSnapshot installs a verified peer snapshot into the executor and
// re-synchronizes the runtime around it: the durability watermark jumps to
// the snapshot (it was persisted as part of the install), and the
// stable-checkpoint caches prune exactly as if the checkpoint had
// stabilized locally. Returns the executions the install unblocked.
func (rt *Runtime) InstallSnapshot(snap *storage.Snapshot) ([]Executed, error) {
	events, err := rt.Exec.InstallSnapshot(snap)
	if err != nil {
		return nil, err
	}
	rt.durMu.Lock()
	if snap.Seq > rt.durWater {
		rt.durWater = snap.Seq
	}
	rt.durMu.Unlock()
	for s := range rt.cpVotes {
		if s <= snap.Seq {
			delete(rt.cpVotes, s)
		}
	}
	rt.PruneAtStable(snap.Seq)
	rt.Metrics.SnapshotsInstalled.Add(1)
	return events, nil
}
