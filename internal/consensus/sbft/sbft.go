// Package sbft implements SBFT (Gueta et al., DSN'19) as evaluated in the
// paper (§IV-A): a linearized, threshold-signature-based protocol with five
// linear phases and designated collector and executor roles.
//
// Normal case:
//
//  1. PRE-PREPARE: the primary proposes a batch.
//  2. SIGN-SHARE: every replica sends a signature share to the collector.
//  3. FULL-COMMIT-PROOF: the collector distributes the combined certificate.
//     The fast path requires shares from ALL n replicas; if any share is
//     missing when the collector's timer fires, the slow path inserts two
//     additional linear phases (PREPARE2 / SHARE2) before the proof goes
//     out — this timer-driven fallback is why a single crashed backup
//     degrades SBFT in the paper's Fig 9(a).
//  4. SIGN-STATE: replicas execute the committed batch and send a share over
//     the resulting ledger position to the executor.
//  5. EXECUTE-ACK: the executor combines nf shares and sends the aggregated
//     certificate with the results to the clients and all replicas, sparing
//     clients the need to collect reply quorums (what PoE's ingredient I4
//     deliberately avoids paying for).
//
// The executor waits for nf (rather than f+1) state shares so that a
// client-visible execution implies f+1 non-faulty replicas hold the commit
// certificate, which makes the PoE-style longest-certified-prefix view
// change safe (see DESIGN.md §3).
package sbft

import (
	"context"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/ledger"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// PrePrepare is the primary's proposal.
type PrePrepare struct {
	View  types.View
	Seq   types.SeqNum
	Batch types.Batch
	Auth  [][]byte
}

// SignedPayload returns the bytes covered by the authenticator.
func (m *PrePrepare) SignedPayload() []byte {
	bd := m.Batch.Digest()
	d := types.ProposalDigest(m.Seq, m.View, bd)
	return d[:]
}

// SignShare carries a replica's signature share to the collector.
type SignShare struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// Prepare2 opens the slow path: the collector distributes the nf-share
// certificate it has and asks for second-round shares.
type Prepare2 struct {
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest
	Cert   []byte
}

// Share2 is the second-round share of the slow path.
type Share2 struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// FullCommitProof distributes the commit certificate; replicas execute on
// receiving it.
type FullCommitProof struct {
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest // h
	Cert   []byte
}

// SignState carries a replica's post-execution share to the executor.
type SignState struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// ExecuteAck is the executor's aggregated acknowledgement, broadcast to
// replicas; clients receive the same certificate inside their Inform.Cert.
type ExecuteAck struct {
	View types.View
	Seq  types.SeqNum
	Head types.Digest // ledger block hash at Seq
	Cert []byte
}

// ExecPayload is the payload state shares sign: position + ledger block
// hash, which transitively binds the whole executed prefix. Exported so
// clients can verify Inform.Cert.
func ExecPayload(seq types.SeqNum, head types.Digest) []byte {
	d := types.DigestConcat([]byte("sbft-exec"), u64(uint64(seq)), head[:])
	return d[:]
}

// VCRequest and NVPropose mirror PoE's view change; entries carry
// full-commit certificates.
type VCRequest struct {
	From      types.ReplicaID
	View      types.View
	StableSeq types.SeqNum
	Executed  []types.ExecRecord
	Sig       []byte
}

// SignedPayload returns the bytes covered by the view-change signature.
func (m *VCRequest) SignedPayload() []byte {
	parts := [][]byte{[]byte("sbft-vc"), u64(uint64(m.From)), u64(uint64(m.View)), u64(uint64(m.StableSeq))}
	for i := range m.Executed {
		e := &m.Executed[i]
		parts = append(parts, u64(uint64(e.Seq)), u64(uint64(e.View)), e.Digest[:], e.Proof)
	}
	d := types.DigestConcat(parts...)
	return d[:]
}

// NVPropose is the new primary's new-view message.
type NVPropose struct {
	NewView  types.View
	Requests []VCRequest
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &PrePrepare{} })
	wire.Register(func() wire.Message { return &SignShare{} })
	wire.Register(func() wire.Message { return &Prepare2{} })
	wire.Register(func() wire.Message { return &Share2{} })
	wire.Register(func() wire.Message { return &FullCommitProof{} })
	wire.Register(func() wire.Message { return &SignState{} })
	wire.Register(func() wire.Message { return &ExecuteAck{} })
	wire.Register(func() wire.Message { return &VCRequest{} })
	wire.Register(func() wire.Message { return &NVPropose{} })
}

// Collector returns the collector replica of view v (the primary, per the
// paper's note that the primary can play both roles).
func Collector(cfg protocol.Config, v types.View) types.ReplicaID { return cfg.Primary(v) }

// Executor returns the executor replica of view v: the replica after the
// primary, so the two roles are distinct (as SBFT suggests for the fast
// path).
func Executor(cfg protocol.Config, v types.View) types.ReplicaID {
	return types.ReplicaID((uint64(v) + 1) % uint64(cfg.N))
}

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// Options configure an SBFT replica.
type Options struct {
	protocol.RuntimeOptions
	// Adversary makes this replica a Byzantine primary/collector per the
	// shared cross-protocol spec: equivocating or suppressed PRE-PREPAREs
	// toward the listed backups, and — with SilenceCertificates — a
	// collector that withholds FULL-COMMIT-PROOF so backups sign-share but
	// never commit. Nil means honest.
	Adversary *protocol.AdversarySpec
	Tick      time.Duration
	// CollectorTimeout is how long the collector waits for all n shares
	// before falling back to the slow path (the paper's replica-side
	// timeout, chosen small in §IV-D).
	CollectorTimeout time.Duration
}

// Replica is one SBFT replica.
type Replica struct {
	rt  *protocol.Runtime
	adv *protocol.AdversarySpec

	view        types.View
	status      status
	nextPropose types.SeqNum
	slots       map[types.SeqNum]*slot

	pendingReqs  map[types.Digest]pendingReq
	lastProgress time.Time
	curTimeout   time.Duration

	vcTarget  types.View
	vcStarted time.Time
	vcResent  time.Time
	vcVotes   map[types.View]map[types.ReplicaID]*VCRequest
	sentVC    map[types.View]bool
	lastNV    *NVPropose

	// catchup marks a replica restarted from durable state: the first tick
	// proactively fetches past the recovered prefix.
	catchup bool

	tick        time.Duration
	collTimeout time.Duration
}

type slot struct {
	view       types.View
	haveBatch  bool
	batch      types.Batch
	digest     types.Digest // h
	shares     map[types.ReplicaID]crypto.Share
	firstShare time.Time
	slowPath   bool
	shares2    map[types.ReplicaID]crypto.Share
	proofSent  bool
	committed  bool
	// executor-side
	stateShares map[types.ReplicaID]crypto.Share
	ackSent     bool
	execHead    types.Digest
	results     []types.Result
	rec         *types.ExecRecord
}

type pendingReq struct {
	req   types.Request
	since time.Time
}

// New creates an SBFT replica.
func New(cfg protocol.Config, ring *crypto.KeyRing, net network.Transport, opts Options) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := protocol.NewRuntime(cfg, ring, net, opts.RuntimeOptions)
	tick := opts.Tick
	if tick == 0 {
		// The tick drives both failure detection (needs ≲ ViewTimeout/4)
		// and batch-linger flushing (needs milliseconds).
		tick = cfg.ViewTimeout / 4
		if tick > 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
	}
	ct := opts.CollectorTimeout
	if ct == 0 {
		ct = 50 * time.Millisecond
	}
	if tick > ct/2 {
		tick = ct / 2
	}
	if tick <= 0 {
		tick = time.Millisecond
	}
	r := &Replica{
		rt:           rt,
		adv:          opts.Adversary,
		nextPropose:  rt.Exec.LastExecuted() + 1,
		slots:        make(map[types.SeqNum]*slot),
		pendingReqs:  make(map[types.Digest]pendingReq),
		lastProgress: time.Now(),
		curTimeout:   cfg.ViewTimeout,
		vcVotes:      make(map[types.View]map[types.ReplicaID]*VCRequest),
		sentVC:       make(map[types.View]bool),
		tick:         tick,
		collTimeout:  ct,
	}
	rt.Sync.AfterInstall = r.afterInstall
	if rt.RecoveredSeq > 0 {
		// Crash-restart: resume after the recovered prefix, rejoin in the
		// last durably executed view (view-change catch-up handles any
		// further drift), and fetch proactively on the first tick.
		r.view = rt.Exec.Chain().Head().View
		r.catchup = true
	}
	if rt.Store != nil {
		// Durable (re)start — including a wiped rejoin that recovered
		// nothing: ask peers whether a snapshot is needed rather than wait
		// for checkpoint votes an idle cluster will never emit.
		rt.Sync.Probe()
	}
	return r, nil
}

// Runtime exposes the replica runtime.
func (r *Replica) Runtime() *protocol.Runtime { return r.rt }

// View returns the current view (racy while running; for tests).
func (r *Replica) View() types.View { return r.view }

// Run processes messages until ctx is cancelled. Inbound messages pass
// through the parallel authentication pipeline (verify.go); outbound
// pre-prepares, sign/state shares, checkpoint votes, and reply MACs are
// signed on the egress pipeline, whose Local channel loops deferred
// self-shares back onto the loop. The loop below performs no asymmetric
// crypto of its own in either direction on the normal-case path.
func (r *Replica) Run(ctx context.Context) {
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	inbox := r.rt.StartPipeline(ctx, r.verifyInbound)
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.rt.Metrics.MessagesIn.Add(1)
			r.dispatch(env)
		case fn := <-r.rt.Egress.Local():
			fn()
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) dispatch(env network.Envelope) {
	switch m := env.Msg.(type) {
	case *protocol.ClientRequest:
		r.onClientRequest(env.From, &m.Req)
	case *protocol.ForwardRequest:
		r.onForwardRequest(&m.Req)
	case *protocol.ReadRequest:
		// SBFT does not implement the fast read path
		// (protocol.ErrReadPathUnsupported): tiered reads are ordered like
		// any other request. They are dedup-exempt end to end, so their
		// separate client-local sequence space cannot collide with writes.
		r.fallbackRead(&m.Req)
	case *protocol.LeaseGrant:
		// No lease machinery without the fast read path; grants are inert.
	case *PrePrepare:
		if env.From.IsReplica() {
			r.handlePrePrepare(env.From.Replica(), m)
		}
	case *SignShare:
		if env.From.IsReplica() {
			r.onSignShare(env.From.Replica(), m)
		}
	case *Prepare2:
		if env.From.IsReplica() {
			r.onPrepare2(env.From.Replica(), m)
		}
	case *Share2:
		if env.From.IsReplica() {
			r.onShare2(env.From.Replica(), m)
		}
	case *FullCommitProof:
		r.onFullCommitProof(m)
	case *SignState:
		if env.From.IsReplica() {
			r.onSignState(env.From.Replica(), m)
		}
	case *ExecuteAck:
		// Replicas learn the execution is client-visible; nothing further
		// to do in this implementation (the record is already durable).
	case *protocol.Checkpoint:
		r.rt.OnCheckpoint(m)
	case *protocol.Fetch:
		r.rt.HandleFetch(m)
	case *protocol.FetchReply:
		r.onFetchReply(m)
	case *protocol.SnapshotRequest:
		r.rt.HandleSnapshotRequest(m)
	case *protocol.SnapshotOffer:
		r.rt.Sync.OnOffer(m)
	case *protocol.SnapshotChunk:
		r.rt.Sync.OnChunk(m)
	case *VCRequest:
		r.onVCRequest(m)
	case *NVPropose:
		if env.From.IsReplica() {
			r.onNVPropose(env.From.Replica(), m)
		}
	}
}

func (r *Replica) isPrimary() bool   { return r.rt.Cfg.IsPrimary(r.view) }
func (r *Replica) isCollector() bool { return Collector(r.rt.Cfg, r.view) == r.rt.Cfg.ID }
func (r *Replica) isExecutor() bool  { return Executor(r.rt.Cfg, r.view) == r.rt.Cfg.ID }

// --- client requests ---

func (r *Replica) onClientRequest(from types.NodeID, req *types.Request) {
	if !from.IsClient() || req.Txn.Client != from.Client() {
		return
	}
	// The request signature was checked by the authentication pipeline.
	if r.rt.ReplayReply(req) {
		return
	}
	if r.status != statusNormal {
		r.trackPending(req)
		return
	}
	if r.isPrimary() {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.trackPending(req)
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

func (r *Replica) onForwardRequest(req *types.Request) {
	if r.status != statusNormal || !r.isPrimary() {
		return
	}
	if r.rt.ReplayReply(req) {
		return
	}
	r.rt.Batcher.Add(*req)
	r.proposeReady(false)
}

func (r *Replica) trackPending(req *types.Request) {
	d := req.Digest()
	if _, ok := r.pendingReqs[d]; !ok {
		r.pendingReqs[d] = pendingReq{req: *req, since: time.Now()}
	}
}

// fallbackRead routes a tiered read through the ordering pipeline: the
// primary batches it; a backup forwards it.
func (r *Replica) fallbackRead(req *types.Request) {
	r.rt.Metrics.ReadFallbacks.Add(1)
	if r.isPrimary() && r.status == statusNormal {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.rt.SendReplica(r.rt.Cfg.Primary(r.view), &protocol.ForwardRequest{Req: *req})
}

// --- normal case ---

func (r *Replica) proposeReady(force bool) {
	if !r.isPrimary() || r.status != statusNormal {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	for r.nextPropose <= lastExec+types.SeqNum(r.rt.Cfg.Window) {
		batch, ok := r.rt.Batcher.Take(force)
		if !ok {
			return
		}
		seq := r.nextPropose
		r.nextPropose++
		m := &PrePrepare{View: r.view, Seq: seq, Batch: batch}
		r.rt.Metrics.ProposedBatches.Add(1)
		if r.adv == nil {
			payload := m.SignedPayload() // memoizes the batch digest on the loop
			r.rt.Egress.Enqueue(
				func() { m.Auth = r.rt.AuthBroadcast(payload) },
				func() { r.rt.Broadcast(m) },
				nil)
		} else {
			// Byzantine variants sign inline: not the hot path.
			m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
			r.broadcastPrePrepare(m)
		}
		r.handlePrePrepare(r.rt.Cfg.ID, m)
	}
}

// broadcastPrePrepare sends an adversarial proposal to every backup
// (equivocating variants are re-signed with this replica's real keys, so
// honest verifiers accept them).
func (r *Replica) broadcastPrePrepare(m *PrePrepare) {
	if r.adv == nil {
		r.rt.Broadcast(m)
		return
	}
	var variant *PrePrepare
	for i := 0; i < r.rt.Cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == r.rt.Cfg.ID {
			continue
		}
		switch r.adv.ActionFor(id) {
		case protocol.ProposeSilence:
		case protocol.ProposeEquivocate:
			if variant == nil {
				v := *m
				v.Batch = protocol.EquivocateBatch(m.Batch)
				v.Auth = r.rt.AuthBroadcast(v.SignedPayload())
				variant = &v
			}
			r.rt.SendReplica(id, variant)
		default:
			r.rt.SendReplica(id, m)
		}
	}
}

func (r *Replica) slot(seq types.SeqNum) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{
			shares:      make(map[types.ReplicaID]crypto.Share),
			shares2:     make(map[types.ReplicaID]crypto.Share),
			stateShares: make(map[types.ReplicaID]crypto.Share),
		}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) handlePrePrepare(from types.ReplicaID, m *PrePrepare) {
	cfg := r.rt.Cfg
	if r.status != statusNormal || m.View != r.view || from != cfg.Primary(r.view) {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec || m.Seq > lastExec+types.SeqNum(8*cfg.Window) {
		return
	}
	s := r.slot(m.Seq)
	if s.haveBatch {
		return
	}
	// Broadcast authenticator and client signatures were verified by the
	// authentication pipeline before dispatch.
	s.view = m.View
	s.haveBatch = true
	s.batch = m.Batch
	s.digest = types.ProposalDigest(m.Seq, m.View, m.Batch.Digest())
	// Register the share payloads (first round and the slow path's second
	// round) so the pipeline verifies arriving shares off the event loop.
	d2 := share2Digest(s.digest)
	r.rt.Pipeline.NoteDigest(kindSign, m.View, m.Seq, s.digest[:])
	r.rt.Pipeline.NoteDigest(kindShare2, m.View, m.Seq, d2[:])
	// The SIGN-SHARE is signed on the egress pool; the collector's own share
	// loops back onto the event loop, re-checking view/status.
	ss := &SignShare{View: m.View, Seq: m.Seq}
	digest := s.digest
	view := m.View
	coll := Collector(cfg, r.view)
	isColl := coll == cfg.ID
	var local func()
	if isColl {
		local = func() {
			if r.status == statusNormal && r.view == view {
				r.addSignShare(cfg.ID, ss, s)
			}
		}
	}
	r.rt.Egress.Enqueue(
		func() { ss.Share = r.rt.TS.Share(digest[:]) },
		func() {
			if !isColl {
				r.rt.SendReplica(coll, ss)
			}
		},
		local)
	// Validate shares stashed by onSignShare before this proposal fixed the
	// digest, dropping mismatches; the collector's own share still has to
	// loop back before the fast path can complete, so no threshold re-check
	// is needed here.
	for id, sh := range s.shares {
		if id != cfg.ID && !r.rt.TS.VerifyShare(s.digest[:], sh) {
			delete(s.shares, id)
		}
	}
}

func (r *Replica) onSignShare(from types.ReplicaID, m *SignShare) {
	if r.status != statusNormal || m.View != r.view || !r.isCollector() || m.Share.Signer != from {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec || m.Seq > lastExec+types.SeqNum(8*r.rt.Cfg.Window) {
		return
	}
	// The slot is created even when the pre-prepare has not arrived yet: the
	// verify pipeline dispatches small SIGN-SHAREs ahead of large proposals,
	// and shares are sent exactly once — dropping an early one permanently
	// costs a share, which here means the fast path (all n shares) can never
	// complete and every such slot pays the collector-timeout slow path.
	s := r.slot(m.Seq)
	if s.proofSent {
		return
	}
	r.addSignShare(from, m, s)
}

func (r *Replica) addSignShare(from types.ReplicaID, m *SignShare, s *slot) {
	if s.proofSent || s.slowPath {
		return
	}
	if _, dup := s.shares[from]; dup {
		return
	}
	// Before the pre-prepare fixes the digest there is nothing to verify
	// against: the share is stashed and handlePrePrepare validates the stash
	// once the digest is known. Our own share (looped back after the
	// pre-prepare) needs no check.
	if s.haveBatch && from != r.rt.Cfg.ID && !r.rt.TS.VerifyShare(s.digest[:], m.Share) {
		return
	}
	if len(s.shares) == 0 {
		s.firstShare = time.Now()
	}
	s.shares[from] = m.Share
	// Fast path: all n replicas answered (only decidable once the digest is
	// fixed — stashed shares cannot combine against a zero digest).
	if s.haveBatch && len(s.shares) == r.rt.Cfg.N {
		r.sendProof(m.Seq, s)
	}
}

// sendProof combines the collected shares and distributes the full commit
// proof.
func (r *Replica) sendProof(seq types.SeqNum, s *slot) {
	shares := make([]crypto.Share, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	cert, err := r.rt.TS.Combine(s.digest[:], shares)
	if err != nil {
		return
	}
	s.proofSent = true
	if !r.adv.SilenceCert(seq) {
		proof := &FullCommitProof{View: s.view, Seq: seq, Digest: s.digest, Cert: cert}
		r.rt.Broadcast(proof)
	}
	r.commit(seq, s, cert)
}

// startSlowPath runs the two extra linear phases after the collector's
// timer fires with at least nf (but not all n) shares.
func (r *Replica) startSlowPath(seq types.SeqNum, s *slot) {
	shares := make([]crypto.Share, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	cert, err := r.rt.TS.Combine(s.digest[:], shares)
	if err != nil {
		return
	}
	s.slowPath = true
	p2 := &Prepare2{View: s.view, Seq: seq, Digest: s.digest, Cert: cert}
	r.rt.Broadcast(p2)
	r.onPrepare2(r.rt.Cfg.ID, p2)
}

func share2Digest(h types.Digest) types.Digest {
	return types.DigestConcat([]byte("sbft-share2"), h[:])
}

func (r *Replica) onPrepare2(from types.ReplicaID, m *Prepare2) {
	if r.status != statusNormal || m.View != r.view || from != Collector(r.rt.Cfg, r.view) {
		return
	}
	s := r.slot(m.Seq)
	if !s.haveBatch || s.digest != m.Digest || !r.rt.TS.Verify(m.Digest[:], m.Cert) {
		return
	}
	d2 := share2Digest(s.digest)
	sh := &Share2{View: m.View, Seq: m.Seq}
	view := m.View
	coll := Collector(r.rt.Cfg, r.view)
	isColl := coll == r.rt.Cfg.ID
	var local func()
	if isColl {
		local = func() {
			if r.status == statusNormal && r.view == view {
				r.addShare2(r.rt.Cfg.ID, sh, s)
			}
		}
	}
	r.rt.Egress.Enqueue(
		func() { sh.Share = r.rt.TS.Share(d2[:]) },
		func() {
			if !isColl {
				r.rt.SendReplica(coll, sh)
			}
		},
		local)
}

func (r *Replica) onShare2(from types.ReplicaID, m *Share2) {
	if r.status != statusNormal || m.View != r.view || !r.isCollector() || m.Share.Signer != from {
		return
	}
	// No pre-proposal stash needed here, unlike onSignShare: second-round
	// shares only answer a Prepare2 this collector itself sent, which it can
	// only have done after the pre-prepare fixed the slot's batch and digest.
	s, ok := r.slots[m.Seq]
	if !ok || !s.haveBatch || s.proofSent {
		return
	}
	r.addShare2(from, m, s)
}

func (r *Replica) addShare2(from types.ReplicaID, m *Share2, s *slot) {
	if s.proofSent {
		return
	}
	if _, dup := s.shares2[from]; dup {
		return
	}
	d2 := share2Digest(s.digest)
	if !r.rt.TS.VerifyShare(d2[:], m.Share) {
		return
	}
	s.shares2[from] = m.Share
	if len(s.shares2) < r.rt.Cfg.NF() {
		return
	}
	// The slow path completed; the proof carries the first-round cert (the
	// second round's cert proves liveness of the fallback quorum, and both
	// commit the same digest).
	shares := make([]crypto.Share, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	cert, err := r.rt.TS.Combine(s.digest[:], shares)
	if err != nil {
		return
	}
	s.proofSent = true
	if !r.adv.SilenceCert(m.Seq) {
		proof := &FullCommitProof{View: s.view, Seq: m.Seq, Digest: s.digest, Cert: cert}
		r.rt.Broadcast(proof)
	}
	r.commit(m.Seq, s, cert)
}

func (r *Replica) onFullCommitProof(m *FullCommitProof) {
	if r.status != statusNormal || m.View != r.view {
		return
	}
	s := r.slot(m.Seq)
	if s.committed || !s.haveBatch {
		return
	}
	if s.digest != m.Digest || !r.rt.TS.Verify(m.Digest[:], m.Cert) {
		return
	}
	r.commit(m.Seq, s, m.Cert)
}

// commit schedules execution; after executing, replicas send SIGN-STATE to
// the executor (phase 4).
func (r *Replica) commit(seq types.SeqNum, s *slot, cert []byte) {
	if s.committed {
		return
	}
	s.committed = true
	r.lastProgress = time.Now()
	events := r.rt.Exec.Commit(seq, s.view, s.batch, cert)
	r.afterExecution(events)
}

func (r *Replica) afterExecution(events []protocol.Executed) {
	if len(events) == 0 {
		return
	}
	exec := Executor(r.rt.Cfg, r.view)
	for _, ev := range events {
		r.lastProgress = time.Now()
		r.rt.Metrics.ExecutedBatches.Add(1)
		r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
		for i := range ev.Rec.Batch.Requests {
			delete(r.pendingReqs, ev.Rec.Batch.Requests[i].Digest())
		}
		head, _ := r.rt.Exec.Chain().Get(ev.Rec.Seq)
		headHash := blockHash(head)
		r.noteExecution(ev, headHash)
		// The SIGN-STATE share is signed on the egress pool; the executor
		// replica's own share loops back onto the event loop.
		payload := ExecPayload(ev.Rec.Seq, headHash)
		ss := &SignState{View: r.view, Seq: ev.Rec.Seq}
		view := r.view
		isExec := exec == r.rt.Cfg.ID
		var local func()
		if isExec {
			local = func() {
				if r.status == statusNormal && r.view == view {
					r.addSignState(r.rt.Cfg.ID, ss)
				}
			}
		}
		r.rt.Egress.Enqueue(
			func() { ss.Share = r.rt.TS.Share(payload) },
			func() {
				if !isExec {
					r.rt.SendReplica(exec, ss)
				}
			},
			local)
		r.rt.MaybeCheckpoint(ev.Rec.Seq)
	}
	r.proposeReady(false)
}

// noteExecution retains the executor-side context needed to answer clients
// once the state certificate forms, and registers the state-share payload so
// the pipeline verifies arriving SIGN-STATE shares off the event loop.
func (r *Replica) noteExecution(ev protocol.Executed, headHash types.Digest) {
	s := r.slot(ev.Rec.Seq)
	s.execHead = headHash
	s.results = ev.Results
	s.rec = ev.Rec
	r.rt.Pipeline.NoteDigest(kindState, r.view, ev.Rec.Seq, ExecPayload(ev.Rec.Seq, headHash))
}

func (r *Replica) onSignState(from types.ReplicaID, m *SignState) {
	if r.status != statusNormal || m.View != r.view || !r.isExecutor() || m.Share.Signer != from {
		return
	}
	r.addSignState(from, m)
}

func (r *Replica) addSignState(from types.ReplicaID, m *SignState) {
	s := r.slot(m.Seq)
	if s.ackSent {
		return
	}
	if _, dup := s.stateShares[from]; dup {
		return
	}
	s.stateShares[from] = m.Share
	r.tryAck(m.Seq, s)
}

// tryAck fires once the executor has executed seq itself and holds nf state
// shares: phase 5, EXECUTE-ACK to replicas and the aggregated reply to
// clients.
func (r *Replica) tryAck(seq types.SeqNum, s *slot) {
	if s.ackSent || s.rec == nil || len(s.stateShares) < r.rt.Cfg.NF() {
		return
	}
	payload := ExecPayload(seq, s.execHead)
	shares := crypto.FilterValidShares(r.rt.TS, payload, s.stateShares)
	if len(shares) < r.rt.Cfg.NF() {
		return
	}
	cert, err := r.rt.TS.Combine(payload, shares)
	if err != nil {
		return
	}
	s.ackSent = true
	r.rt.Broadcast(&ExecuteAck{View: r.view, Seq: seq, Head: s.execHead, Cert: cert})
	// Aggregated replies to the clients: one message each, carrying the
	// certificate (the paper's executor role).
	r.informClients(s, cert)
	delete(r.slots, seq)
	r.rt.Pipeline.ForgetDigests(s.view, seq)
	r.rt.Pipeline.ForgetDigests(r.view, seq)
}

// informClients stages the executor's aggregated replies: MACs are computed
// on the egress pool and, on a durable replica, the sends are held until the
// batch's WAL group is committed.
func (r *Replica) informClients(s *slot, cert []byte) {
	byKey := make(map[types.ClientID]map[uint64]types.Result, len(s.results))
	for _, res := range s.results {
		inner, ok := byKey[res.Client]
		if !ok {
			inner = make(map[uint64]types.Result)
			byKey[res.Client] = inner
		}
		inner[res.Seq] = res
	}
	replies := make([]protocol.Reply, 0, len(s.rec.Batch.Requests))
	for i := range s.rec.Batch.Requests {
		req := &s.rec.Batch.Requests[i]
		res, ok := byKey[req.Txn.Client][req.Txn.Seq]
		if !ok {
			r.rt.ReplayReply(req)
			continue
		}
		replies = append(replies, protocol.Reply{Client: req.Txn.Client, Msg: &protocol.Inform{
			From:       r.rt.Cfg.ID,
			Digest:     req.Digest(),
			View:       s.rec.View,
			Seq:        s.rec.Seq,
			ClientSeq:  req.Txn.Seq,
			Values:     res.Values,
			OrderProof: s.execHead,
			Cert:       cert,
		}})
	}
	r.rt.SendReplies(s.rec.Seq, replies, false, nil)
}

// --- housekeeping ---

func (r *Replica) onTick() {
	now := time.Now()
	if r.catchup {
		r.catchup = false
		r.fetchFrom(r.rt.Exec.LastExecuted())
	}
	// Snapshot state transfer runs in every status: a replica too far behind
	// for Fetch needs it exactly when it cannot follow the normal case.
	r.rt.Sync.Tick(now)
	switch r.status {
	case statusNormal:
		if r.isPrimary() && r.rt.Batcher.Ripe(now) {
			r.proposeReady(true)
		}
		if r.isCollector() {
			r.checkCollectorTimeouts(now)
		}
		r.maybeFetch()
		if r.suspect(now) {
			r.startViewChange(r.view + 1)
		}
	case statusViewChange:
		if now.Sub(r.vcStarted) > r.curTimeout {
			r.startViewChange(r.vcTarget + 1)
		} else if now.Sub(r.vcResent) > r.rt.Cfg.ViewTimeout {
			r.broadcastVC(r.vcTarget)
			r.maybeProposeNewView(r.vcTarget)
		}
	}
}

// maybeFetch requests state transfer when decided batches are stuck behind
// missing predecessors (a replica left in the dark, §II-D).
func (r *Replica) maybeFetch() {
	after, _, gapped := r.rt.Exec.Gap()
	if !gapped {
		return
	}
	r.fetchFrom(after)
}

// fetchFrom asks the next peer (round-robin) for executed records above after.
func (r *Replica) fetchFrom(after types.SeqNum) {
	r.rt.FetchFrom(after)
}

// afterInstall resumes the protocol around an installed snapshot: per-slot
// state the snapshot superseded is discarded, sequencing and view jump
// forward, and the ordinary record fetch bridges snapshot → live head.
func (r *Replica) afterInstall(snap *storage.Snapshot, events []protocol.Executed) {
	for seq := range r.slots {
		if seq <= snap.Seq {
			delete(r.slots, seq)
		}
	}
	if r.nextPropose <= snap.Seq {
		r.nextPropose = snap.Seq + 1
	}
	if snap.Head.View > r.view {
		r.view = snap.Head.View
		r.status = statusNormal
	}
	r.lastProgress = time.Now()
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.afterExecution(events)
	r.fetchFrom(r.rt.Exec.LastExecuted())
}

// checkCollectorTimeouts moves stalled fast-path slots to the slow path. A
// slot that holds only stashed pre-proposal shares (no batch yet) cannot
// start the slow path: there is no digest to combine against.
func (r *Replica) checkCollectorTimeouts(now time.Time) {
	for seq, s := range r.slots {
		if !s.haveBatch || s.proofSent || s.slowPath || len(s.shares) == 0 {
			continue
		}
		if len(s.shares) >= r.rt.Cfg.NF() && now.Sub(s.firstShare) > r.collTimeout {
			r.startSlowPath(seq, s)
		}
	}
}

func (r *Replica) suspect(now time.Time) bool {
	if now.Sub(r.lastProgress) <= r.curTimeout {
		return false
	}
	if len(r.pendingReqs) > 0 {
		return true
	}
	lastExec := r.rt.Exec.LastExecuted()
	for seq, s := range r.slots {
		if seq > lastExec && !s.committed {
			return true
		}
	}
	if _, _, gapped := r.rt.Exec.Gap(); gapped {
		return true
	}
	return false
}

func (r *Replica) onFetchReply(m *protocol.FetchReply) {
	for i := range m.Records {
		rec := &m.Records[i]
		if rec.Digest != rec.Batch.Digest() {
			continue
		}
		h := types.ProposalDigest(rec.Seq, rec.View, rec.Digest)
		if !r.rt.TS.Verify(h[:], rec.Proof) {
			continue
		}
		events := r.rt.Exec.Commit(rec.Seq, rec.View, rec.Batch, rec.Proof)
		r.afterExecution(events)
	}
	// Paginated transfer: a server whose head is still ahead has more pages.
	r.rt.FetchContinue(m.Head)
}

func blockHash(b ledger.Block) types.Digest { return b.Hash() }
