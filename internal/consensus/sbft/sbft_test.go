package sbft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

type cluster struct {
	t        *testing.T
	net      *network.ChanNet
	ring     *crypto.KeyRing
	replicas []*Replica
	cfgs     []protocol.Config
}

func startCluster(t *testing.T, n, f int, scheme crypto.Scheme, collTimeout time.Duration) *cluster {
	t.Helper()
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("test-seed"))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, net: net, ring: ring}
	for i := 0; i < n; i++ {
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: scheme,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 32, CheckpointInterval: 8,
			ViewTimeout: 400 * time.Millisecond,
		}
		tr := net.Join(types.ReplicaNode(cfg.ID))
		r, err := New(cfg, ring, tr, Options{CollectorTimeout: collTimeout})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
		go r.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return c
}

// certAccept verifies SBFT's aggregated execute-ack certificate.
func certAccept(ring *crypto.KeyRing, cfg protocol.Config) func(m *protocol.Inform) bool {
	verifier := crypto.NewVerifier(ring, cfg.N-cfg.F,
		cfg.Scheme == crypto.SchemeTS || cfg.Scheme == crypto.SchemeED)
	return func(m *protocol.Inform) bool {
		if len(m.Cert) == 0 {
			return false
		}
		return verifier.Verify(ExecPayload(m.Seq, m.OrderProof), m.Cert)
	}
}

func (c *cluster) newClient(i int) *client.Client {
	c.t.Helper()
	cfg := c.cfgs[0]
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	cl, err := client.New(client.Config{
		ID: id, N: cfg.N, F: cfg.F, Scheme: cfg.Scheme,
		Quorum:     1, // a single certificate-bearing reply suffices
		CertAccept: certAccept(c.ring, cfg),
		Timeout:    300 * time.Millisecond,
	}, c.ring, c.net.Join(types.ClientNode(id)))
	if err != nil {
		c.t.Fatalf("client: %v", err)
	}
	cl.Start(context.Background())
	return cl
}

func writeOp(key, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

// waitExecuted blocks until every replica has executed through seq (or the
// deadline passes, which fails the test).
func waitExecuted(t *testing.T, replicas []*Replica, seq types.SeqNum, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		behind := -1
		for i, r := range replicas {
			if r.Runtime().Exec.LastExecuted() < seq {
				behind = i
				break
			}
		}
		if behind == -1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d behind: %d < %d", behind, replicas[behind].Runtime().Exec.LastExecuted(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFastPath(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, 50*time.Millisecond)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 15; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// The client's certified reply proves nf replicas executed; the last
	// replica may still be draining its inbox, so allow it a moment.
	waitExecuted(t, c.replicas, 15, 2*time.Second)
	var digests []types.Digest
	for _, r := range c.replicas {
		digests = append(digests, r.Runtime().Exec.StateDigest())
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			t.Fatal("state divergence")
		}
	}
}

func TestSlowPathUnderBackupFailure(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, 30*time.Millisecond)
	// Crash the last replica: neither collector (0) nor executor (1) of
	// view 0, like the paper's generic backup failure.
	c.net.Crash(types.ReplicaNode(3))
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 8; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d via slow path: %v", i, err)
		}
	}
	waitExecuted(t, c.replicas[:3], 8, 2*time.Second)
}

func TestPrimaryFailureViewChange(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, 30*time.Millisecond)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("pre%d", i), "v")); err != nil {
			t.Fatalf("submit pre-%d: %v", i, err)
		}
	}
	c.net.Crash(types.ReplicaNode(0))
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("post%d", i), "v")); err != nil {
			t.Fatalf("submit post-%d: %v", i, err)
		}
	}
	for i := 1; i < 4; i++ {
		if c.replicas[i].View() == 0 {
			t.Fatalf("replica %d did not change view", i)
		}
	}
}
