package sbft

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// TestEarlySignShareStashedBeforePrePrepare drives the collector by hand
// with the message order the verify pipeline actually produces under load:
// small SIGN-SHAREs dispatch ahead of the large pre-prepare they answer.
// Before the stash port (from PoE's onSupport), the collector dropped those
// early shares — and since shares are sent exactly once, the all-n fast path
// could never complete for the slot and every reordered slot paid the
// collector-timeout slow path. The stash must hold the early shares, validate
// them once the pre-prepare fixes the digest, and still commit on the fast
// path with no extra share traffic.
func TestEarlySignShareStashedBeforePrePrepare(t *testing.T) {
	net := network.NewChanNet()
	defer net.Close()
	ring := crypto.NewKeyRing(4, []byte("stash-test"))
	cfg := protocol.Config{
		ID: 0, N: 4, F: 1, Scheme: crypto.SchemeTS,
		BatchSize: 1, BatchLinger: time.Millisecond,
		Window: 8, CheckpointInterval: 8, ViewTimeout: time.Second,
	}
	r, err := New(cfg, ring, net.Join(types.ReplicaNode(0)), Options{})
	if err != nil {
		t.Fatal(err)
	}

	m := &PrePrepare{View: 0, Seq: 1, Batch: types.Batch{}}
	m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
	digest := types.ProposalDigest(1, 0, m.Batch.Digest())
	shareFrom := func(id types.ReplicaID, msg []byte) crypto.Share {
		return crypto.NewThresholdScheme(ring, id, cfg.NF(), true).Share(msg)
	}

	// All three backup shares arrive before the pre-prepare.
	for id := types.ReplicaID(1); id <= 3; id++ {
		r.onSignShare(id, &SignShare{View: 0, Seq: 1, Share: shareFrom(id, digest[:])})
	}
	s := r.slot(1)
	if s.haveBatch || len(s.shares) != 3 {
		t.Fatalf("stash state: haveBatch=%v shares=%d, want 3 stashed pre-proposal shares",
			s.haveBatch, len(s.shares))
	}
	if r.rt.Exec.LastExecuted() != 0 {
		t.Fatal("slot executed before the pre-prepare arrived")
	}

	// The pre-prepare fixes the digest: the stash validates, the collector's
	// own share completes all n = 4, and the fast path commits — no
	// collector timeout, no second share round.
	r.handlePrePrepare(0, m)
	if !s.proofSent {
		t.Fatal("fast path did not complete from stashed shares")
	}
	if s.slowPath {
		t.Fatal("reordered delivery forced the slow path")
	}
	if r.rt.Exec.LastExecuted() != 1 {
		t.Fatalf("slot did not commit: last executed %d", r.rt.Exec.LastExecuted())
	}

	// A mismatched early share (wrong digest — Byzantine or from a stale
	// view) must be dropped when the stash validates, not poison the slot.
	m2 := &PrePrepare{View: 0, Seq: 2, Batch: types.Batch{}}
	m2.Auth = r.rt.AuthBroadcast(m2.SignedPayload())
	digest2 := types.ProposalDigest(2, 0, m2.Batch.Digest())
	r.onSignShare(1, &SignShare{View: 0, Seq: 2, Share: shareFrom(1, []byte("wrong"))})
	r.handlePrePrepare(0, m2)
	s2 := r.slot(2)
	if _, held := s2.shares[1]; held {
		t.Fatal("mismatched stashed share survived digest validation")
	}
	// The honest shares arrive after the pre-prepare; replica 1 resends a
	// correct share (its bogus one was discarded, not counted as a dup) and
	// the fast path still completes.
	for id := types.ReplicaID(1); id <= 3; id++ {
		r.onSignShare(id, &SignShare{View: 0, Seq: 2, Share: shareFrom(id, digest2[:])})
	}
	if !s2.proofSent || r.rt.Exec.LastExecuted() != 2 {
		t.Fatalf("slot 2 did not commit after stash cleanup: proofSent=%v lastExec=%d",
			s2.proofSent, r.rt.Exec.LastExecuted())
	}
}
