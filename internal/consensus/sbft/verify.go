package sbft

import (
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// SBFT's hook into the parallel authentication pipeline: broadcast
// authenticators, client signatures, self-certifying certificates, and —
// once the pre-prepare (or execution) has registered the phase payload —
// sign-shares, second-round shares, and state shares are verified on worker
// goroutines before dispatch. See the poe package's verify.go for the
// pipeline's ownership and concurrency rules.

// Share-payload kinds in the pipeline's digest table.
const (
	kindSign   uint8 = 0 // h = D(k||v||D(batch))
	kindShare2 uint8 = 1 // D("sbft-share2" || h)
	kindState  uint8 = 2 // ExecPayload(seq, ledger head hash)
)

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *PrePrepare:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		cp := *m
		cp.Batch = m.Batch.Clone()
		env.Msg = &cp
		if !rt.VerifyBroadcast(env.From.Replica(), cp.SignedPayload(), cp.Auth) {
			return false
		}
		return rt.VerifyBatch(&cp.Batch)
	case *SignShare:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindSign, m.View, m.Seq, m.Share)
	case *Share2:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindShare2, m.View, m.Seq, m.Share)
	case *SignState:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindState, m.View, m.Seq, m.Share)
	case *Prepare2:
		// The certificate authenticates itself; prove it here so the
		// handler's re-check is a memo hit.
		return env.From.IsReplica() && rt.TS.Verify(m.Digest[:], m.Cert)
	case *FullCommitProof:
		return rt.TS.Verify(m.Digest[:], m.Cert)
	case *VCRequest:
		env.Msg = cloneVCRequest(m)
		return true
	case *NVPropose:
		cp := *m
		cp.Requests = make([]VCRequest, len(m.Requests))
		for i := range m.Requests {
			cp.Requests[i] = *cloneVCRequest(&m.Requests[i])
		}
		env.Msg = &cp
		return true
	}
	return true
}

// cloneVCRequest gives the replica its own copy of the execution records so
// digest memoization stays local; signatures and certificates are validated
// by the view-change path on the event loop (rare, off the normal case).
func cloneVCRequest(m *VCRequest) *VCRequest {
	cp := *m
	cp.Executed = types.CloneRecords(m.Executed)
	for i := range cp.Executed {
		cp.Executed[i].Batch.MemoizeDigests()
	}
	return &cp
}
