package sbft

import (
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// SBFT's hook into the parallel authentication pipeline: broadcast
// authenticators, client signatures, self-certifying certificates, and —
// once the pre-prepare (or execution) has registered the phase payload —
// sign-shares, second-round shares, and state shares are verified on worker
// goroutines before dispatch. See the poe package's verify.go for the
// pipeline's ownership and concurrency rules.

// Share-payload kinds in the pipeline's digest table.
const (
	kindSign   uint8 = 0 // h = D(k||v||D(batch))
	kindShare2 uint8 = 1 // D("sbft-share2" || h)
	kindState  uint8 = 2 // ExecPayload(seq, ledger head hash)
)

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *PrePrepare:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		p := m
		if !env.Owned {
			cp := *m
			cp.Batch = m.Batch.Clone()
			env.Msg = &cp
			p = &cp
		}
		if !rt.VerifyBroadcast(env.From.Replica(), p.SignedPayload(), p.Auth) {
			return false
		}
		return rt.VerifyBatch(&p.Batch)
	case *SignShare:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindSign, m.View, m.Seq, m.Share)
	case *Share2:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindShare2, m.View, m.Seq, m.Share)
	case *SignState:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		return rt.Pipeline.VerifyShareFor(rt.TS, kindState, m.View, m.Seq, m.Share)
	case *Prepare2:
		// The certificate authenticates itself; prove it here so the
		// handler's re-check is a memo hit.
		return env.From.IsReplica() && rt.TS.Verify(m.Digest[:], m.Cert)
	case *FullCommitProof:
		return rt.TS.Verify(m.Digest[:], m.Cert)
	case *VCRequest:
		env.Msg = ownVCRequest(m, env.Owned)
		return true
	case *NVPropose:
		if env.Owned {
			for i := range m.Requests {
				ownVCRequest(&m.Requests[i], true)
			}
			return true
		}
		cp := *m
		cp.Requests = make([]VCRequest, len(m.Requests))
		for i := range m.Requests {
			cp.Requests[i] = *ownVCRequest(&m.Requests[i], false)
		}
		env.Msg = &cp
		return true
	}
	return true
}

// ownVCRequest gives the replica its own copy of the execution records so
// digest memoization stays local — wire-decoded (owned) requests memoize in
// place. Signatures and certificates are validated by the view-change path
// on the event loop (rare, off the normal case).
func ownVCRequest(m *VCRequest, owned bool) *VCRequest {
	if !owned {
		cp := *m
		cp.Executed = types.CloneRecords(m.Executed)
		m = &cp
	}
	for i := range m.Executed {
		m.Executed[i].Batch.MemoizeDigests()
	}
	return m
}
