package sbft

import (
	"fmt"
	"sort"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/types"
)

// SBFT's view change follows the PoE-style longest-certified-prefix scheme:
// every executed batch carries its full-commit certificate, so view-change
// requests are third-party verifiable (see the package comment for why the
// executor's nf-share rule makes this safe).

func (r *Replica) startViewChange(target types.View) {
	if target <= r.view {
		return
	}
	if r.status == statusViewChange && target <= r.vcTarget {
		return
	}
	r.status = statusViewChange
	r.vcTarget = target
	r.vcStarted = time.Now()
	r.curTimeout *= 2
	r.rt.Metrics.ViewChanges.Add(1)
	if r.sentVC[target] {
		return
	}
	r.sentVC[target] = true
	r.broadcastVC(target)
	r.maybeProposeNewView(target)
}

// broadcastVC signs and broadcasts this replica's view-change request for
// target. Called on entry and then periodically while the view change is
// pending: VIEW-CHANGE messages lost to a partition are not otherwise
// retransmitted, and the new-view primary cannot assemble its quorum
// without them.
func (r *Replica) broadcastVC(target types.View) {
	r.vcResent = time.Now()
	stable := r.rt.Exec.StableCheckpointSeq()
	req := &VCRequest{
		From:      r.rt.Cfg.ID,
		View:      target - 1,
		StableSeq: stable,
		Executed:  r.rt.Exec.ExecutedSince(stable),
	}
	req.Sig = r.rt.Keys.Sign(req.SignedPayload())
	r.recordVCVote(req)
	r.rt.Broadcast(req)
}

func (r *Replica) recordVCVote(m *VCRequest) {
	target := m.View + 1
	votes, ok := r.vcVotes[target]
	if !ok {
		votes = make(map[types.ReplicaID]*VCRequest)
		r.vcVotes[target] = votes
	}
	if _, dup := votes[m.From]; !dup {
		votes[m.From] = m
	}
}

func (r *Replica) validateVCRequest(m *VCRequest) bool {
	if m.From < 0 || int(m.From) >= r.rt.Cfg.N {
		return false
	}
	if !r.rt.Keys.VerifyFrom(types.ReplicaNode(m.From), m.SignedPayload(), m.Sig) {
		return false
	}
	next := m.StableSeq + 1
	for i := range m.Executed {
		e := &m.Executed[i]
		if e.Seq != next || e.Digest != e.Batch.Digest() {
			return false
		}
		next++
		h := types.ProposalDigest(e.Seq, e.View, e.Digest)
		if !r.rt.TS.Verify(h[:], e.Proof) {
			return false
		}
	}
	return true
}

func (r *Replica) onVCRequest(m *VCRequest) {
	target := m.View + 1
	if target <= r.view {
		if r.lastNV != nil && r.lastNV.NewView >= target && r.rt.Cfg.IsPrimary(r.lastNV.NewView) {
			r.rt.SendReplica(m.From, r.lastNV)
		}
		return
	}
	if !r.validateVCRequest(m) {
		return
	}
	r.recordVCVote(m)
	if len(r.vcVotes[target]) >= r.rt.Cfg.FPlus1() {
		if r.status == statusNormal || r.vcTarget < target {
			r.startViewChange(target)
		}
	}
	r.joinDivergedViewChange()
	r.maybeProposeNewView(target)
}

// joinDivergedViewChange applies the Castro-Liskov liveness rule: when f+1
// distinct replicas are view-changing to views beyond this replica's own
// target, at least one of them is honest — adopt the smallest such view
// immediately instead of waiting out the (exponentially backed-off) local
// timer. Without it a storm of staggered leader failures can strand the
// replicas on pairwise-different targets, none of which ever gathers a
// quorum.
func (r *Replica) joinDivergedViewChange() {
	cur := r.view
	if r.status == statusViewChange && r.vcTarget > cur {
		cur = r.vcTarget
	}
	voters := make(map[types.ReplicaID]types.View)
	for target, votes := range r.vcVotes {
		if target <= cur {
			continue
		}
		for id := range votes {
			if t, ok := voters[id]; !ok || target < t {
				voters[id] = target
			}
		}
	}
	if len(voters) < r.rt.Cfg.FPlus1() {
		return
	}
	join := types.View(0)
	for _, target := range voters {
		if join == 0 || target < join {
			join = target
		}
	}
	r.startViewChange(join)
	r.maybeProposeNewView(join)
}

func (r *Replica) maybeProposeNewView(target types.View) {
	cfg := r.rt.Cfg
	if !cfg.IsPrimary(target) || r.status != statusViewChange || r.vcTarget != target {
		return
	}
	if r.lastNV != nil && r.lastNV.NewView >= target {
		return
	}
	votes := r.vcVotes[target]
	if len(votes) < cfg.NF() {
		return
	}
	ids := make([]types.ReplicaID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nv := &NVPropose{NewView: target}
	for _, id := range ids[:cfg.NF()] {
		nv.Requests = append(nv.Requests, *votes[id])
	}
	r.lastNV = nv
	r.rt.Broadcast(nv)
	r.applyNVPropose(nv)
}

func (r *Replica) onNVPropose(from types.ReplicaID, m *NVPropose) {
	if from != r.rt.Cfg.Primary(m.NewView) {
		return
	}
	if m.NewView < r.view || (m.NewView == r.view && r.status == statusNormal) {
		return
	}
	if !r.validateNVPropose(m) {
		r.startViewChange(m.NewView + 1)
		return
	}
	r.applyNVPropose(m)
}

func (r *Replica) validateNVPropose(m *NVPropose) bool {
	if len(m.Requests) < r.rt.Cfg.NF() {
		return false
	}
	seen := make(map[types.ReplicaID]bool, len(m.Requests))
	for i := range m.Requests {
		req := &m.Requests[i]
		if req.View != m.NewView-1 || seen[req.From] {
			return false
		}
		seen[req.From] = true
		if !r.validateVCRequest(req) {
			return false
		}
	}
	return true
}

func (r *Replica) applyNVPropose(m *NVPropose) {
	best := &m.Requests[0]
	bestEnd := best.StableSeq + types.SeqNum(len(best.Executed))
	for i := 1; i < len(m.Requests); i++ {
		req := &m.Requests[i]
		end := req.StableSeq + types.SeqNum(len(req.Executed))
		switch {
		case end > bestEnd:
			best, bestEnd = req, end
		case end == bestEnd && req.StableSeq > best.StableSeq:
			best = req
		case end == bestEnd && req.StableSeq == best.StableSeq && req.From < best.From:
			best = req
		}
	}
	kmax := bestEnd

	myLast := r.rt.Exec.LastExecuted()
	rollbackTo := myLast
	if kmax < rollbackTo {
		rollbackTo = kmax
	}
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq > rollbackTo {
			break
		}
		if rec, ok := r.rt.Exec.Record(e.Seq); ok && rec.Digest != e.Digest {
			rollbackTo = e.Seq - 1
			break
		}
	}
	if rollbackTo < myLast {
		if err := r.rt.Exec.Rollback(rollbackTo); err != nil {
			panic(fmt.Sprintf("sbft: view change rollback to %d: %v", rollbackTo, err))
		}
		r.rt.Metrics.Rollbacks.Add(1)
	}

	var events [][]protocol.Executed
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq <= r.rt.Exec.LastExecuted() {
			continue
		}
		evs := r.rt.Exec.Commit(e.Seq, e.View, e.Batch, e.Proof)
		if len(evs) > 0 {
			events = append(events, evs)
		}
	}

	r.enterView(m.NewView, kmax)
	for _, evs := range events {
		r.afterExecution(evs)
	}
}

func (r *Replica) enterView(v types.View, kmax types.SeqNum) {
	r.view = v
	r.status = statusNormal
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.lastProgress = time.Now()
	r.rt.Metrics.ViewChangesDone.Add(1)
	r.slots = make(map[types.SeqNum]*slot)
	// Every share payload in the pipeline's digest table belongs to the old
	// view's slots; drop them with the slots.
	r.rt.Pipeline.Reset()
	for target := range r.vcVotes {
		if target <= v {
			delete(r.vcVotes, target)
		}
	}
	for target := range r.sentVC {
		if target <= v {
			delete(r.sentVC, target)
		}
	}
	if r.rt.Cfg.IsPrimary(v) {
		if kmax < r.rt.Exec.LastExecuted() {
			kmax = r.rt.Exec.LastExecuted()
		}
		r.nextPropose = kmax + 1
		r.rt.Batcher.ResetProposed()
		for _, p := range r.pendingReqs {
			r.rt.Batcher.Add(p.req)
		}
		r.proposeReady(true)
	} else {
		for _, p := range r.pendingReqs {
			r.rt.SendReplica(r.rt.Cfg.Primary(v), &protocol.ForwardRequest{Req: p.req})
		}
	}
}
