package sbft

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for SBFT's messages (ids in wire/ids.go).

// WireID implements wire.Message.
func (m *PrePrepare) WireID() uint16 { return wire.IDSbftPrePrepare }

// MarshalTo implements wire.Message.
func (m *PrePrepare) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.Seq))
	buf = m.Batch.AppendWire(buf)
	return wire.AppendBytesSlice(buf, m.Auth)
}

// Unmarshal implements wire.Message.
func (m *PrePrepare) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.View = types.View(r.U64())
	m.Seq = types.SeqNum(r.U64())
	m.Batch.ReadWire(r)
	m.Auth = r.BytesSlice()
	return r.Close()
}

// appendShareMsg/readShareMsg cover the three share-carrying phases, which
// share one layout: view, seq, share.
func appendShareMsg(buf []byte, v types.View, k types.SeqNum, s crypto.Share) []byte {
	buf = wire.AppendU64(buf, uint64(v))
	buf = wire.AppendU64(buf, uint64(k))
	return crypto.AppendShare(buf, s)
}

func readShareMsg(r *wire.Reader, v *types.View, k *types.SeqNum, s *crypto.Share) {
	*v = types.View(r.U64())
	*k = types.SeqNum(r.U64())
	*s = crypto.ReadShare(r)
}

// WireID implements wire.Message.
func (m *SignShare) WireID() uint16 { return wire.IDSbftSignShare }

// MarshalTo implements wire.Message.
func (m *SignShare) MarshalTo(buf []byte) []byte { return appendShareMsg(buf, m.View, m.Seq, m.Share) }

// Unmarshal implements wire.Message.
func (m *SignShare) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readShareMsg(r, &m.View, &m.Seq, &m.Share)
	return r.Close()
}

// WireID implements wire.Message.
func (m *Share2) WireID() uint16 { return wire.IDSbftShare2 }

// MarshalTo implements wire.Message.
func (m *Share2) MarshalTo(buf []byte) []byte { return appendShareMsg(buf, m.View, m.Seq, m.Share) }

// Unmarshal implements wire.Message.
func (m *Share2) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readShareMsg(r, &m.View, &m.Seq, &m.Share)
	return r.Close()
}

// WireID implements wire.Message.
func (m *SignState) WireID() uint16 { return wire.IDSbftSignState }

// MarshalTo implements wire.Message.
func (m *SignState) MarshalTo(buf []byte) []byte { return appendShareMsg(buf, m.View, m.Seq, m.Share) }

// Unmarshal implements wire.Message.
func (m *SignState) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readShareMsg(r, &m.View, &m.Seq, &m.Share)
	return r.Close()
}

// appendCertMsg/readCertMsg cover the certificate-carrying phases: view,
// seq, digest, certificate.
func appendCertMsg(buf []byte, v types.View, k types.SeqNum, d types.Digest, cert []byte) []byte {
	buf = wire.AppendU64(buf, uint64(v))
	buf = wire.AppendU64(buf, uint64(k))
	buf = types.AppendDigest(buf, d)
	return wire.AppendBytes(buf, cert)
}

func readCertMsg(r *wire.Reader, v *types.View, k *types.SeqNum, d *types.Digest, cert *[]byte) {
	*v = types.View(r.U64())
	*k = types.SeqNum(r.U64())
	*d = types.ReadDigest(r)
	*cert = r.Bytes()
}

// WireID implements wire.Message.
func (m *Prepare2) WireID() uint16 { return wire.IDSbftPrepare2 }

// MarshalTo implements wire.Message.
func (m *Prepare2) MarshalTo(buf []byte) []byte {
	return appendCertMsg(buf, m.View, m.Seq, m.Digest, m.Cert)
}

// Unmarshal implements wire.Message.
func (m *Prepare2) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readCertMsg(r, &m.View, &m.Seq, &m.Digest, &m.Cert)
	return r.Close()
}

// WireID implements wire.Message.
func (m *FullCommitProof) WireID() uint16 { return wire.IDSbftFullCommitProof }

// MarshalTo implements wire.Message.
func (m *FullCommitProof) MarshalTo(buf []byte) []byte {
	return appendCertMsg(buf, m.View, m.Seq, m.Digest, m.Cert)
}

// Unmarshal implements wire.Message.
func (m *FullCommitProof) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readCertMsg(r, &m.View, &m.Seq, &m.Digest, &m.Cert)
	return r.Close()
}

// WireID implements wire.Message.
func (m *ExecuteAck) WireID() uint16 { return wire.IDSbftExecuteAck }

// MarshalTo implements wire.Message.
func (m *ExecuteAck) MarshalTo(buf []byte) []byte {
	return appendCertMsg(buf, m.View, m.Seq, m.Head, m.Cert)
}

// Unmarshal implements wire.Message.
func (m *ExecuteAck) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readCertMsg(r, &m.View, &m.Seq, &m.Head, &m.Cert)
	return r.Close()
}

func appendVCRequest(buf []byte, m *VCRequest) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.View))
	buf = wire.AppendU64(buf, uint64(m.StableSeq))
	buf = types.AppendRecords(buf, m.Executed)
	return wire.AppendBytes(buf, m.Sig)
}

func readVCRequest(r *wire.Reader, m *VCRequest) {
	m.From = types.ReplicaID(r.I32())
	m.View = types.View(r.U64())
	m.StableSeq = types.SeqNum(r.U64())
	m.Executed = types.ReadRecords(r)
	m.Sig = r.Bytes()
}

// WireID implements wire.Message.
func (m *VCRequest) WireID() uint16 { return wire.IDSbftVCRequest }

// MarshalTo implements wire.Message.
func (m *VCRequest) MarshalTo(buf []byte) []byte { return appendVCRequest(buf, m) }

// Unmarshal implements wire.Message.
func (m *VCRequest) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readVCRequest(r, m)
	return r.Close()
}

// WireID implements wire.Message.
func (m *NVPropose) WireID() uint16 { return wire.IDSbftNVPropose }

// MarshalTo implements wire.Message.
func (m *NVPropose) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.NewView))
	buf = wire.AppendU32(buf, uint32(len(m.Requests)))
	for i := range m.Requests {
		buf = appendVCRequest(buf, &m.Requests[i])
	}
	return buf
}

// Unmarshal implements wire.Message.
func (m *NVPropose) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.NewView = types.View(r.U64())
	n := r.Count(24)
	if n > 0 {
		m.Requests = make([]VCRequest, n)
		for i := range m.Requests {
			readVCRequest(r, &m.Requests[i])
		}
	} else {
		m.Requests = nil
	}
	return r.Close()
}
