// Package hotstuff implements chained HotStuff (Yin et al., PODC'19) as the
// paper's rotating-leader baseline (§IV-A): the leader of round i proposes a
// node justified by a quorum certificate (QC) over its parent; replicas vote
// by sending threshold shares to the NEXT leader, which combines them into
// the next QC and proposes round i+1. A node commits once it heads a
// three-chain of consecutive rounds.
//
// The defining performance property the paper measures: consensus is
// sequential. Each leader must wait for the previous round's QC before
// proposing, so requests cannot be processed out-of-order (§II-F, Fig 9k/l);
// chaining pipelines the phases but not the decisions.
package hotstuff

import (
	"context"
	"sort"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// QC is a quorum certificate: nf threshold shares over a node hash.
type QC struct {
	Round types.View
	Node  types.Digest
	Cert  []byte
}

// Node is one entry in the HotStuff chain.
type Node struct {
	Round      types.View
	ParentHash types.Digest
	Batch      types.Batch
	Justify    QC // certificate over the parent
}

// Hash identifies the node.
func (n *Node) Hash() types.Digest {
	bd := n.Batch.Digest()
	return types.DigestConcat([]byte("hs-node"), u64(uint64(n.Round)), n.ParentHash[:], bd[:], n.Justify.Node[:])
}

// Proposal is the round leader's broadcast.
type Proposal struct {
	Node Node
	Auth [][]byte
}

// SignedPayload returns the bytes covered by the proposal authenticator.
func (m *Proposal) SignedPayload() []byte {
	h := m.Node.Hash()
	return h[:]
}

// Vote is a replica's threshold share over the node hash, sent to the next
// leader.
type Vote struct {
	Round types.View
	Node  types.Digest
	Share crypto.Share
}

// NewView is the pacemaker message: on round timeout, replicas advance and
// hand the next leader their highest QC.
type NewView struct {
	From  types.ReplicaID
	Round types.View // the round being entered
	High  QC
}

// FetchNodes asks a peer for the ancestor chain of a node (catch-up).
type FetchNodes struct {
	From types.ReplicaID
	Hash types.Digest
	Max  int
}

// NodeBundle answers FetchNodes.
type NodeBundle struct {
	Nodes []Node
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &Proposal{} })
	wire.Register(func() wire.Message { return &Vote{} })
	wire.Register(func() wire.Message { return &NewView{} })
	wire.Register(func() wire.Message { return &FetchNodes{} })
	wire.Register(func() wire.Message { return &NodeBundle{} })
}

// Leader returns the leader of a round: the replica with id = round mod n.
func Leader(n int, round types.View) types.ReplicaID {
	return types.ReplicaID(uint64(round) % uint64(n))
}

// Options configure a HotStuff replica.
type Options struct {
	protocol.RuntimeOptions
	// Adversary makes this replica a Byzantine leader per the shared
	// cross-protocol spec: in rounds it leads, targeted replicas receive a
	// conflicting (re-signed) proposal variant or no proposal at all. The
	// vote split keeps either variant from forming a QC, so the round times
	// out and the rotating pacemaker recovers on the next honest leader.
	// Nil means honest.
	Adversary *protocol.AdversarySpec
	Tick      time.Duration
	// Pipeline is the number of client requests the paper grants HotStuff
	// in the no-out-of-order experiment (Fig 9k allows 4, one per phase of
	// the chained pipeline). It only affects the harness; the replica
	// itself always chains.
	Pipeline int
}

// Replica is one chained-HotStuff replica.
type Replica struct {
	rt  *protocol.Runtime
	adv *protocol.AdversarySpec

	curRound  types.View
	nodes     map[types.Digest]*Node
	committed map[types.Digest]bool
	highQC    QC
	lockedQC  QC
	lastVoted types.View
	execSeq   types.SeqNum // decision counter driving the executor

	votes    map[types.Digest]map[types.ReplicaID]crypto.Share
	newViews map[types.View]map[types.ReplicaID]QC
	sentNV   map[types.View]bool

	// anchorRound is the round of the newest block executed outside the
	// live node chain — durable recovery or an installed snapshot. The
	// commit walk treats nodes at or below it as already executed: it stops
	// there instead of needing ancestry back to genesis.
	anchorRound types.View

	// lastFetch/lastFetchAt throttle ancestry fetches from the commit walk
	// so a burst of tryCommit calls asks for one gap once per timeout.
	lastFetch   types.Digest
	lastFetchAt time.Time

	// timedOut marks that the current disruption started with a round
	// expiry; the first commit after it counts as a completed view change.
	timedOut bool

	roundStart time.Time
	curTimeout time.Duration

	genesisHash types.Digest

	tick time.Duration
}

// New creates a HotStuff replica.
func New(cfg protocol.Config, ring *crypto.KeyRing, net network.Transport, opts Options) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := protocol.NewRuntime(cfg, ring, net, opts.RuntimeOptions)
	tick := opts.Tick
	if tick == 0 {
		// The tick drives both failure detection (needs ≲ ViewTimeout/4)
		// and batch-linger flushing (needs milliseconds).
		tick = cfg.ViewTimeout / 4
		if tick > 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
	}
	r := &Replica{
		rt:         rt,
		adv:        opts.Adversary,
		curRound:   1,
		nodes:      make(map[types.Digest]*Node),
		committed:  make(map[types.Digest]bool),
		votes:      make(map[types.Digest]map[types.ReplicaID]crypto.Share),
		newViews:   make(map[types.View]map[types.ReplicaID]QC),
		sentNV:     make(map[types.View]bool),
		roundStart: time.Now(),
		curTimeout: cfg.ViewTimeout,
		tick:       tick,
	}
	// The genesis node anchors the chain; its QC is implicit (round 0).
	genesis := &Node{Round: 0}
	r.genesisHash = genesis.Hash()
	r.nodes[r.genesisHash] = genesis
	r.committed[r.genesisHash] = true
	r.highQC = QC{Round: 0, Node: r.genesisHash}
	r.lockedQC = r.highQC
	rt.Sync.AfterInstall = r.afterInstall
	if rt.RecoveredSeq > 0 {
		// Crash-restart: the executor already holds the recovered prefix,
		// so new decisions continue at execSeq+1. The node chain itself is
		// not persisted — it is re-fetched from peers (FetchNodes) — and
		// the recovered head's round anchors the commit walk so it never
		// re-executes (or needs the ancestry of) the recovered prefix.
		// Rejoin one round past the last executed one; the pacemaker's
		// new-view synchronization covers the rest.
		r.execSeq = rt.Exec.LastExecuted()
		head := rt.Exec.Chain().Head()
		r.anchorRound = head.View
		r.curRound = head.View + 1
	}
	return r, nil
}

// Runtime exposes the replica runtime.
func (r *Replica) Runtime() *protocol.Runtime { return r.rt }

// Round returns the current round (racy while running; for tests).
func (r *Replica) Round() types.View { return r.curRound }

// Run processes messages until ctx is cancelled. Inbound messages pass
// through the parallel authentication pipeline (verify.go); outbound
// proposals, vote shares, checkpoint votes, and reply MACs are signed on
// the egress pipeline, whose Local channel loops the leader's own vote back
// onto the loop. The loop below performs no asymmetric crypto of its own in
// either direction on the normal-case path.
func (r *Replica) Run(ctx context.Context) {
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	inbox := r.rt.StartPipeline(ctx, r.verifyInbound)
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.rt.Metrics.MessagesIn.Add(1)
			r.dispatch(env)
		case fn := <-r.rt.Egress.Local():
			fn()
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) dispatch(env network.Envelope) {
	switch m := env.Msg.(type) {
	case *protocol.ClientRequest:
		r.onClientRequest(env.From, &m.Req)
	case *protocol.ForwardRequest:
		// The request signature was checked by the authentication pipeline.
		if !r.rt.ReplayReply(&m.Req) {
			r.enqueue(m.Req)
		}
	case *protocol.ReadRequest:
		// HotStuff does not implement the fast read path
		// (protocol.ErrReadPathUnsupported): tiered reads are ordered like
		// any other request, skipping the executed-watermark check — they
		// run in their own client-local sequence space, which the batcher
		// and executor already exempt from dedup.
		r.rt.Metrics.ReadFallbacks.Add(1)
		r.rt.Batcher.Add(m.Req)
		r.maybePropose(false)
	case *protocol.LeaseGrant:
		// No lease machinery without the fast read path; grants are inert.
	case *Proposal:
		if env.From.IsReplica() {
			r.onProposal(env.From.Replica(), m)
		}
	case *Vote:
		if env.From.IsReplica() {
			r.onVote(env.From.Replica(), m)
		}
	case *NewView:
		r.onNewView(m)
	case *FetchNodes:
		r.onFetchNodes(m)
	case *NodeBundle:
		r.onNodeBundle(m)
	case *protocol.Checkpoint:
		r.rt.OnCheckpoint(m)
	case *protocol.SnapshotRequest:
		r.rt.HandleSnapshotRequest(m)
	case *protocol.SnapshotOffer:
		r.rt.Sync.OnOffer(m)
	case *protocol.SnapshotChunk:
		r.rt.Sync.OnChunk(m)
	}
}

// --- client requests ---

func (r *Replica) onClientRequest(from types.NodeID, req *types.Request) {
	if !from.IsClient() || req.Txn.Client != from.Client() {
		return
	}
	// The request signature was checked by the authentication pipeline.
	if r.rt.ReplayReply(req) {
		return
	}
	r.enqueue(*req)
}

func (r *Replica) enqueue(req types.Request) {
	if r.rt.Exec.AlreadyExecuted(req.Txn.Client, req.Txn.Seq) {
		return
	}
	// A request may have been consumed into a proposal that was orphaned by
	// a round timeout (its QC never formed). The batcher's proposed-history
	// dedup would silently drop the client's retransmission and the request
	// would be lost forever, so unexecuted retransmissions re-enter the
	// queue; duplicate execution is prevented by the executor's dedup.
	r.rt.Batcher.Forget(req.Txn.Client)
	r.rt.Batcher.Add(req)
	r.maybePropose(false)
}

// --- proposing ---

// maybePropose lets the current round's leader propose once it holds the
// previous round's QC. This wait is HotStuff's sequential bottleneck.
func (r *Replica) maybePropose(force bool) {
	cfg := r.rt.Cfg
	if Leader(cfg.N, r.curRound) != cfg.ID {
		return
	}
	if r.highQC.Round != r.curRound-1 {
		// Not yet entitled: either the previous QC hasn't formed, or this
		// round was entered via timeouts and needs nf NewViews (onNewView
		// proposes then).
		return
	}
	batch, ok := r.rt.Batcher.Take(force)
	if !ok {
		// Propose an empty node only when needed to flush uncommitted
		// ancestors through the three-chain; otherwise wait for load.
		if !r.pendingUncommitted() {
			return
		}
		batch = types.Batch{}
	}
	r.propose(batch)
}

// pendingUncommitted reports whether the high-QC branch still has
// uncommitted non-empty nodes that an empty extension would help commit.
func (r *Replica) pendingUncommitted() bool {
	h := r.highQC.Node
	for i := 0; i < 3; i++ {
		node, ok := r.nodes[h]
		if !ok || r.committed[h] {
			return false
		}
		if node.Batch.Size() > 0 || len(node.Batch.Requests) > 0 {
			return true
		}
		h = node.ParentHash
	}
	return false
}

func (r *Replica) propose(batch types.Batch) {
	// Drop requests another leader already got executed (clients broadcast
	// to all replicas, so queues overlap across replicas).
	if len(batch.Requests) > 0 {
		kept := batch.Requests[:0]
		for i := range batch.Requests {
			txn := &batch.Requests[i].Txn
			if !r.rt.Exec.AlreadyExecuted(txn.Client, txn.Seq) {
				kept = append(kept, batch.Requests[i])
			}
		}
		batch.Requests = kept
		if batch.ZeroPayload {
			batch.ZeroCount = len(kept)
		}
		if len(kept) == 0 && !r.pendingUncommitted() {
			return
		}
	}
	node := Node{
		Round:      r.curRound,
		ParentHash: r.highQC.Node,
		Batch:      batch,
		Justify:    r.highQC,
	}
	p := &Proposal{Node: node}
	r.rt.Metrics.ProposedBatches.Add(1)
	r.emitProposal(p)
	r.onProposal(r.rt.Cfg.ID, p)
}

// emitProposal signs and broadcasts a proposal: through the egress pipeline
// when honest, inline per-target when an adversary spec is installed (the
// attack path is not the hot path).
func (r *Replica) emitProposal(p *Proposal) {
	if r.adv == nil {
		payload := p.SignedPayload() // memoizes the node/batch digest on the loop
		r.rt.Egress.Enqueue(
			func() { p.Auth = r.rt.AuthBroadcast(payload) },
			func() { r.rt.Broadcast(p) },
			nil)
		return
	}
	p.Auth = r.rt.AuthBroadcast(p.SignedPayload())
	r.broadcastProposal(p)
}

// broadcastProposal sends a proposal to every other replica, applying the
// Byzantine adversary spec if one is installed (variants are re-signed with
// this replica's real keys, so honest verifiers accept them).
func (r *Replica) broadcastProposal(p *Proposal) {
	if r.adv == nil {
		r.rt.Broadcast(p)
		return
	}
	var variant *Proposal
	for i := 0; i < r.rt.Cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == r.rt.Cfg.ID {
			continue
		}
		switch r.adv.ActionFor(id) {
		case protocol.ProposeSilence:
		case protocol.ProposeEquivocate:
			if variant == nil {
				v := *p
				v.Node.Batch = protocol.EquivocateBatch(p.Node.Batch)
				v.Auth = r.rt.AuthBroadcast(v.SignedPayload())
				variant = &v
			}
			r.rt.SendReplica(id, variant)
		default:
			r.rt.SendReplica(id, p)
		}
	}
}

// --- voting ---

func (r *Replica) verifyQC(qc QC) bool {
	if qc.Round == 0 && qc.Node == r.genesisHash {
		return true
	}
	return r.rt.TS.Verify(qc.Node[:], qc.Cert)
}

func (r *Replica) onProposal(from types.ReplicaID, m *Proposal) {
	cfg := r.rt.Cfg
	node := m.Node
	if node.Round < r.curRound || Leader(cfg.N, node.Round) != from {
		return
	}
	// Authenticator and client signatures were verified by the
	// authentication pipeline before dispatch; the QC re-check below is a
	// certificate-memo hit.
	if !r.verifyQC(node.Justify) || node.Justify.Node != node.ParentHash {
		return
	}
	h := node.Hash()
	if _, dup := r.nodes[h]; !dup {
		cp := node
		r.nodes[h] = &cp
	}
	// Seeing a valid QC advances the pacemaker.
	r.updateHighQC(node.Justify)
	if node.Round > r.curRound {
		r.advanceRound(node.Round)
	}
	if _, ok := r.nodes[node.ParentHash]; !ok && node.ParentHash != r.genesisHash {
		// Missing ancestry: catch up from the proposer before voting.
		r.rt.SendReplica(from, &FetchNodes{From: cfg.ID, Hash: node.ParentHash, Max: 64})
		return
	}
	r.tryCommit(&node)

	// safeNode: vote if the node extends the locked branch, or its justify
	// is fresher than the lock (liveness rule).
	if node.Round <= r.lastVoted {
		return
	}
	if !r.extendsLocked(&node) && node.Justify.Round <= r.lockedQC.Round {
		return
	}
	r.lastVoted = node.Round
	// The vote share is signed on the egress pool. When this replica leads
	// the next round, its own vote loops back onto the event loop; onVote's
	// own guards (round, leader) handle any staleness.
	vote := &Vote{Round: node.Round, Node: h}
	next := Leader(cfg.N, node.Round+1)
	if next == cfg.ID {
		r.rt.Egress.Enqueue(
			func() { vote.Share = r.rt.TS.Share(h[:]) },
			nil,
			func() { r.onVote(cfg.ID, vote) })
	} else {
		r.rt.Egress.Enqueue(
			func() { vote.Share = r.rt.TS.Share(h[:]) },
			func() { r.rt.SendReplica(next, vote) },
			nil)
	}
}

// extendsLocked walks the parent chain to check the node descends from the
// locked node.
func (r *Replica) extendsLocked(node *Node) bool {
	h := node.ParentHash
	for {
		if h == r.lockedQC.Node {
			return true
		}
		parent, ok := r.nodes[h]
		if !ok || parent.Round <= r.lockedQC.Round {
			return h == r.lockedQC.Node
		}
		h = parent.ParentHash
	}
}

func (r *Replica) onVote(from types.ReplicaID, m *Vote) {
	cfg := r.rt.Cfg
	if Leader(cfg.N, m.Round+1) != cfg.ID || m.Share.Signer != from {
		return
	}
	if !r.rt.TS.VerifyShare(m.Node[:], m.Share) {
		return
	}
	votes, ok := r.votes[m.Node]
	if !ok {
		votes = make(map[types.ReplicaID]crypto.Share)
		r.votes[m.Node] = votes
	}
	if _, dup := votes[from]; dup {
		return
	}
	votes[from] = m.Share
	if len(votes) < cfg.NF() {
		return
	}
	shares := make([]crypto.Share, 0, len(votes))
	for _, sh := range votes {
		shares = append(shares, sh)
	}
	cert, err := r.rt.TS.Combine(m.Node[:], shares)
	if err != nil {
		return
	}
	delete(r.votes, m.Node)
	qc := QC{Round: m.Round, Node: m.Node, Cert: cert}
	r.updateHighQC(qc)
	r.advanceRound(m.Round + 1)
	r.maybePropose(true)
}

func (r *Replica) updateHighQC(qc QC) {
	if qc.Round > r.highQC.Round && r.verifyQC(qc) {
		r.highQC = qc
	}
	// Two-chain lock: lock the parent of the newest QC'd node.
	if node, ok := r.nodes[qc.Node]; ok {
		if parentQC := node.Justify; parentQC.Round > r.lockedQC.Round {
			r.lockedQC = parentQC
		}
	}
}

func (r *Replica) advanceRound(round types.View) {
	if round <= r.curRound {
		return
	}
	r.curRound = round
	r.roundStart = time.Now()
	r.curTimeout = r.rt.Cfg.ViewTimeout
	for rd := range r.newViews {
		if rd < round {
			delete(r.newViews, rd)
		}
	}
	for rd := range r.sentNV {
		if rd < round {
			delete(r.sentNV, rd)
		}
	}
}

// --- commit rule ---

// tryCommit applies the two-chain commit rule: a node commits when its
// direct child is certified and the two have consecutive rounds. This is
// the rule the paper itself uses to model HotStuff ("the two rounds of
// HotStuff", §IV-I / Fig 11) and the one adopted by deployed descendants
// (Jolteon/DiemBFT). The original three-consecutive-round rule cannot make
// progress at n = 4 with one crashed replica under strict round-robin
// rotation — three consecutive live-leader rounds never occur — which the
// paper's single-failure HotStuff numbers show is not the behaviour of the
// evaluated implementation.
func (r *Replica) tryCommit(node *Node) {
	// node.Justify certifies b1; b1.Justify certifies b2 = b1's parent.
	// If their rounds are consecutive, b2 commits.
	b1, ok := r.nodes[node.Justify.Node]
	if !ok {
		return
	}
	b2, ok := r.nodes[b1.Justify.Node]
	if !ok {
		return
	}
	if b1.Round != b2.Round+1 {
		return
	}
	r.commitChain(b2)
}

// commitChain commits b3 and all its uncommitted ancestors, oldest first.
func (r *Replica) commitChain(tip *Node) {
	var chain []*Node
	h := tip.Hash()
	for {
		if r.committed[h] {
			break
		}
		node, ok := r.nodes[h]
		if !ok {
			// Cannot execute with missing ancestry: ask a rotating peer
			// for the gap (throttled — a bundle triggers many walks) and
			// retry when the bundle arrives.
			if h != r.lastFetch || time.Since(r.lastFetchAt) > r.curTimeout {
				r.lastFetch, r.lastFetchAt = h, time.Now()
				if peer, ok := r.rt.NextPeer(); ok {
					r.rt.SendReplica(peer, &FetchNodes{From: r.rt.Cfg.ID, Hash: h, Max: 256})
				}
			}
			return
		}
		if node.Round <= r.anchorRound {
			// At or below the anchor: executed via durable recovery or an
			// installed snapshot — the commit boundary, not a gap.
			r.committed[h] = true
			break
		}
		chain = append(chain, node)
		h = node.ParentHash
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].Round < chain[j].Round })
	for _, node := range chain {
		nh := node.Hash()
		r.committed[nh] = true
		r.execSeq++
		events := r.rt.Exec.Commit(r.execSeq, node.Round, node.Batch, node.Justify.Cert)
		for _, ev := range events {
			r.rt.Metrics.ExecutedBatches.Add(1)
			r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
			r.rt.InformBatch(ev.Rec, ev.Results, false, types.ZeroDigest)
			r.rt.MaybeCheckpoint(ev.Rec.Seq)
		}
	}
	if len(chain) > 0 && r.timedOut {
		// Progress resumed after a round expiry: the rotating pacemaker
		// completed its leader change.
		r.timedOut = false
		r.rt.Metrics.ViewChangesDone.Add(1)
	}
	r.pruneNodes()
}

// afterInstall resumes the protocol around an installed snapshot: the
// decision counter jumps to the snapshot sequence, the snapshot head's
// round becomes the commit-walk anchor (the live chain above it is fetched
// from peers on demand), and the pacemaker rejoins one round past it.
func (r *Replica) afterInstall(snap *storage.Snapshot, events []protocol.Executed) {
	r.execSeq = snap.Seq
	r.anchorRound = snap.Head.View
	if r.curRound <= r.anchorRound {
		r.curRound = r.anchorRound + 1
		r.roundStart = time.Now()
		r.curTimeout = r.rt.Cfg.ViewTimeout
	}
	for _, ev := range events {
		r.rt.Metrics.ExecutedBatches.Add(1)
		r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
		r.rt.InformBatch(ev.Rec, ev.Results, false, types.ZeroDigest)
		r.rt.MaybeCheckpoint(ev.Rec.Seq)
	}
}

// pruneNodes bounds the in-memory chain: committed nodes far behind the
// high QC are dropped (their effects live in the store and ledger).
func (r *Replica) pruneNodes() {
	// Retention mirrors the executor's record horizon: execution records
	// below stable-RetainSlack are discarded, so a peer that far behind can
	// only recover via snapshot transfer anyway — serving it the node chain
	// would replay batches whose records no longer exist. The ledger block
	// at the record cutoff maps that sequence horizon to a round cutoff.
	// The count cap below stays as a backstop for uncommitted clutter.
	if stable := r.rt.Exec.StableCheckpointSeq(); stable > r.rt.Exec.RetainSlack {
		if blk, ok := r.rt.Exec.Chain().Get(stable - r.rt.Exec.RetainSlack); ok {
			for h, node := range r.nodes {
				if node.Round > 0 && node.Round < blk.View && r.committed[h] {
					delete(r.nodes, h)
					delete(r.committed, h)
				}
			}
		}
	}
	if len(r.nodes) < 4096 {
		return
	}
	cutoff := r.highQC.Round
	if cutoff > 256 {
		cutoff -= 256
	} else {
		return
	}
	for h, node := range r.nodes {
		if node.Round > 0 && node.Round < cutoff && r.committed[h] {
			delete(r.nodes, h)
			delete(r.committed, h)
		}
	}
}

// --- pacemaker ---

func (r *Replica) onTick() {
	now := time.Now()
	cfg := r.rt.Cfg
	// Snapshot state transfer runs on every tick: a replica whose node-chain
	// gap has been pruned by every peer needs it to rejoin at all.
	r.rt.Sync.Tick(now)
	if Leader(cfg.N, r.curRound) == cfg.ID && r.rt.Batcher.Ripe(now) {
		r.maybePropose(true)
	}
	if now.Sub(r.roundStart) > r.curTimeout {
		// Round expired: move on. NewView is broadcast to ALL replicas so
		// the pacemaker stays synchronized even when the next leader is
		// crashed (votes or point-to-point NewViews to it would vanish and
		// replicas would drift apart one round at a time).
		r.roundStart = now
		r.curTimeout *= 2
		r.timedOut = true
		r.rt.Metrics.ViewChanges.Add(1)
		r.broadcastNewView(r.curRound + 1)
	}
}

// broadcastNewView announces this replica's move to the given round.
func (r *Replica) broadcastNewView(round types.View) {
	if r.sentNV[round] {
		return
	}
	r.sentNV[round] = true
	if round > r.curRound {
		r.curRound = round
	}
	nv := &NewView{From: r.rt.Cfg.ID, Round: round, High: r.highQC}
	r.rt.Broadcast(nv)
	r.onNewView(nv)
}

func (r *Replica) onNewView(m *NewView) {
	cfg := r.rt.Cfg
	if m.Round < r.curRound {
		return
	}
	if !r.verifyQC(m.High) {
		return
	}
	r.updateHighQC(m.High)
	nvs, ok := r.newViews[m.Round]
	if !ok {
		nvs = make(map[types.ReplicaID]QC)
		r.newViews[m.Round] = nvs
	}
	nvs[m.From] = m.High
	// f+1 replicas entered the round: at least one is honest, so join it
	// (keeps the pacemaker synchronized across skewed timeouts).
	if len(nvs) >= cfg.FPlus1() {
		r.broadcastNewView(m.Round)
	}
	if len(nvs) < cfg.NF() || Leader(cfg.N, m.Round) != cfg.ID {
		return
	}
	if m.Round > r.curRound {
		r.advanceRound(m.Round)
	} else {
		r.roundStart = time.Now()
		r.curTimeout = r.rt.Cfg.ViewTimeout
	}
	// Propose on the highest QC we learned, even with an empty batch, to
	// restore progress.
	batch, ok := r.rt.Batcher.Take(true)
	if !ok {
		batch = types.Batch{}
	}
	node := Node{Round: r.curRound, ParentHash: r.highQC.Node, Batch: batch, Justify: r.highQC}
	p := &Proposal{Node: node}
	r.emitProposal(p)
	r.onProposal(cfg.ID, p)
}

// --- catch-up ---

func (r *Replica) onFetchNodes(m *FetchNodes) {
	var out []Node
	h := m.Hash
	for len(out) < m.Max {
		node, ok := r.nodes[h]
		if !ok || node.Round == 0 {
			break
		}
		out = append(out, *node)
		h = node.ParentHash
	}
	if len(out) > 0 {
		r.rt.SendReplica(m.From, &NodeBundle{Nodes: out})
	}
}

func (r *Replica) onNodeBundle(m *NodeBundle) {
	for i := range m.Nodes {
		node := m.Nodes[i]
		if !r.verifyQC(node.Justify) || node.Justify.Node != node.ParentHash {
			continue
		}
		h := node.Hash()
		if _, dup := r.nodes[h]; !dup {
			cp := node
			r.nodes[h] = &cp
		}
		r.tryCommit(&node)
	}
}
