package hotstuff

import (
	"github.com/poexec/poe/internal/network"
)

// HotStuff's hook into the parallel authentication pipeline: proposal
// authenticators, per-request client signatures, vote shares (which sign the
// node hash carried in the vote itself), and quorum certificates are
// verified on worker goroutines before dispatch. See the poe package's
// verify.go for the pipeline's ownership and concurrency rules.

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *Proposal:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		p := m
		if !env.Owned {
			cp := *m
			cp.Node.Batch = m.Node.Batch.Clone()
			env.Msg = &cp
			p = &cp
		}
		if !rt.VerifyBroadcast(env.From.Replica(), p.SignedPayload(), p.Auth) {
			return false
		}
		if !rt.VerifyBatch(&p.Node.Batch) {
			return false
		}
		// Prove the justifying QC here; the handler's verifyQC re-check is a
		// certificate-memo hit.
		return r.verifyQC(p.Node.Justify)
	case *Vote:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		// Vote shares sign the node hash the vote itself carries, so they
		// are verifiable without any replica state.
		return rt.TS.VerifyShare(m.Node[:], m.Share)
	case *NewView:
		return r.verifyQC(m.High)
	case *NodeBundle:
		b := m
		if !env.Owned {
			cp := *m
			cp.Nodes = append([]Node(nil), m.Nodes...)
			for i := range cp.Nodes {
				cp.Nodes[i].Batch = cp.Nodes[i].Batch.Clone()
			}
			env.Msg = &cp
			b = &cp
		}
		for i := range b.Nodes {
			b.Nodes[i].Batch.MemoizeDigests()
			// Warm the certificate memo; the handler skips nodes whose QC
			// fails, so an invalid entry doesn't condemn the bundle.
			r.verifyQC(b.Nodes[i].Justify)
		}
		return true
	}
	return true
}
