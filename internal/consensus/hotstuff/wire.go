package hotstuff

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for HotStuff's messages (ids in wire/ids.go).

func appendQC(buf []byte, qc *QC) []byte {
	buf = wire.AppendU64(buf, uint64(qc.Round))
	buf = types.AppendDigest(buf, qc.Node)
	return wire.AppendBytes(buf, qc.Cert)
}

func readQC(r *wire.Reader, qc *QC) {
	qc.Round = types.View(r.U64())
	qc.Node = types.ReadDigest(r)
	qc.Cert = r.Bytes()
}

func appendNode(buf []byte, n *Node) []byte {
	buf = wire.AppendU64(buf, uint64(n.Round))
	buf = types.AppendDigest(buf, n.ParentHash)
	buf = n.Batch.AppendWire(buf)
	return appendQC(buf, &n.Justify)
}

func readNode(r *wire.Reader, n *Node) {
	n.Round = types.View(r.U64())
	n.ParentHash = types.ReadDigest(r)
	n.Batch.ReadWire(r)
	readQC(r, &n.Justify)
}

// WireID implements wire.Message.
func (m *Proposal) WireID() uint16 { return wire.IDHsProposal }

// MarshalTo implements wire.Message.
func (m *Proposal) MarshalTo(buf []byte) []byte {
	buf = appendNode(buf, &m.Node)
	return wire.AppendBytesSlice(buf, m.Auth)
}

// Unmarshal implements wire.Message.
func (m *Proposal) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	readNode(r, &m.Node)
	m.Auth = r.BytesSlice()
	return r.Close()
}

// WireID implements wire.Message.
func (m *Vote) WireID() uint16 { return wire.IDHsVote }

// MarshalTo implements wire.Message.
func (m *Vote) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(m.Round))
	buf = types.AppendDigest(buf, m.Node)
	return crypto.AppendShare(buf, m.Share)
}

// Unmarshal implements wire.Message.
func (m *Vote) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.Round = types.View(r.U64())
	m.Node = types.ReadDigest(r)
	m.Share = crypto.ReadShare(r)
	return r.Close()
}

// WireID implements wire.Message.
func (m *NewView) WireID() uint16 { return wire.IDHsNewView }

// MarshalTo implements wire.Message.
func (m *NewView) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = wire.AppendU64(buf, uint64(m.Round))
	return appendQC(buf, &m.High)
}

// Unmarshal implements wire.Message.
func (m *NewView) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Round = types.View(r.U64())
	readQC(r, &m.High)
	return r.Close()
}

// WireID implements wire.Message.
func (m *FetchNodes) WireID() uint16 { return wire.IDHsFetchNodes }

// MarshalTo implements wire.Message.
func (m *FetchNodes) MarshalTo(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(m.From))
	buf = types.AppendDigest(buf, m.Hash)
	return wire.AppendI64(buf, int64(m.Max))
}

// Unmarshal implements wire.Message.
func (m *FetchNodes) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	m.From = types.ReplicaID(r.I32())
	m.Hash = types.ReadDigest(r)
	m.Max = int(r.I64())
	return r.Close()
}

// WireID implements wire.Message.
func (m *NodeBundle) WireID() uint16 { return wire.IDHsNodeBundle }

// MarshalTo implements wire.Message.
func (m *NodeBundle) MarshalTo(buf []byte) []byte {
	buf = wire.AppendU32(buf, uint32(len(m.Nodes)))
	for i := range m.Nodes {
		buf = appendNode(buf, &m.Nodes[i])
	}
	return buf
}

// Unmarshal implements wire.Message.
func (m *NodeBundle) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(8 + 32 + 9 + 8 + 32 + 4)
	if n > 0 {
		m.Nodes = make([]Node, n)
		for i := range m.Nodes {
			readNode(r, &m.Nodes[i])
		}
	} else {
		m.Nodes = nil
	}
	return r.Close()
}
