package hotstuff

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

type cluster struct {
	t        *testing.T
	net      *network.ChanNet
	ring     *crypto.KeyRing
	replicas []*Replica
	cfgs     []protocol.Config
}

func startCluster(t *testing.T, n, f int) *cluster {
	t.Helper()
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("test-seed"))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, net: net, ring: ring}
	for i := 0; i < n; i++ {
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: crypto.SchemeTS,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 32, CheckpointInterval: 8,
			ViewTimeout: 300 * time.Millisecond,
		}
		tr := net.Join(types.ReplicaNode(cfg.ID))
		r, err := New(cfg, ring, tr, Options{})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
		go r.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return c
}

func (c *cluster) newClient(i int) *client.Client {
	c.t.Helper()
	cfg := c.cfgs[0]
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	cl, err := client.New(client.Config{
		ID: id, N: cfg.N, F: cfg.F, Scheme: cfg.Scheme,
		Quorum:            cfg.F + 1,
		Timeout:           400 * time.Millisecond,
		BroadcastRequests: true,
	}, c.ring, c.net.Join(types.ClientNode(id)))
	if err != nil {
		c.t.Fatalf("client: %v", err)
	}
	cl.Start(context.Background())
	return cl
}

func writeOp(key, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

func TestNormalCase(t *testing.T) {
	c := startCluster(t, 4, 1)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i := 0; i < 15; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// All replicas converge on the same state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var digests []types.Digest
		ok := true
		for _, r := range c.replicas {
			if r.Runtime().Exec.Store().LastApplied() == 0 {
				ok = false
			}
			digests = append(digests, r.Runtime().Exec.StateDigest())
		}
		if ok {
			same := true
			for _, d := range digests[1:] {
				if d != digests[0] {
					same = false
				}
			}
			if same {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, r := range c.replicas {
		v, ok := r.Runtime().Exec.Store().Get("k14")
		if !ok || string(v) != "v14" {
			t.Fatalf("missing final write: %q %v", v, ok)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	c := startCluster(t, 4, 1)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Rounds must have advanced well past the number of decisions (leader
	// rotates every round) and more than one replica must have proposed.
	proposers := 0
	for _, r := range c.replicas {
		if r.Runtime().Metrics.ProposedBatches.Load() > 0 {
			proposers++
		}
	}
	if proposers < 2 {
		t.Fatalf("expected rotating proposers, got %d", proposers)
	}
}

func TestCrashedLeaderRotatesPast(t *testing.T) {
	c := startCluster(t, 4, 1)
	cl := c.newClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := cl.Submit(ctx, writeOp("a", "1")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Crash one replica; the pacemaker must skip its leadership rounds.
	// Progress is slow by design — every fourth round has a dead leader and
	// must time out, which is exactly the degradation the paper's
	// single-failure HotStuff numbers show — so only a few requests are
	// pushed through here.
	c.net.Crash(types.ReplicaNode(2))
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("b%d", i), "v")); err != nil {
			t.Fatalf("submit %d with crashed replica: %v", i, err)
		}
	}
}
