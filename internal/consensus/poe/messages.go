// Package poe implements the Proof-of-Execution consensus protocol, the
// primary contribution of the paper (§II).
//
// Normal case with threshold signatures (Fig 2b, Fig 3):
//
//	client ──〈T〉c──▶ primary ──PROPOSE──▶ all
//	replica ──SUPPORT(share)──▶ primary
//	primary ──CERTIFY(cert)──▶ all
//	replica: view-commit, speculative execute, ──INFORM──▶ client
//
// Normal case with MACs (Fig 2a, Appendix A): the SUPPORT message is
// broadcast all-to-all and each replica assembles the certificate locally;
// there is no CERTIFY phase.
//
// The client treats a transaction as executed once it has identical INFORM
// messages from nf = n − f distinct replicas: its proof-of-execution.
// Execution is speculative — non-divergent because every replica has
// view-committed (prepared) before executing — and the view-change algorithm
// (Fig 5) rolls back any speculative suffix not carried into the new view.
package poe

import (
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/wire"
)

// Propose is the primary's proposal of a batch as the k-th transaction of
// view v: PROPOSE(〈T〉c, v, k).
type Propose struct {
	View  types.View
	Seq   types.SeqNum
	Batch types.Batch
	Auth  [][]byte // broadcast authenticator over SignedPayload
}

// SignedPayload returns the bytes covered by the proposal's authenticator.
func (m *Propose) SignedPayload() []byte {
	bd := m.Batch.Digest()
	d := types.ProposalDigest(m.Seq, m.View, bd)
	return d[:]
}

// Support carries replica i's signature share s〈h〉i over the proposal
// digest h = D(k||v||〈T〉c) back to the primary (TS mode), or broadcast to
// all replicas (MAC mode).
type Support struct {
	View  types.View
	Seq   types.SeqNum
	Share crypto.Share
}

// Certify distributes the aggregated threshold signature 〈h〉 (TS mode
// only). It needs no additional authentication: tampering invalidates the
// certificate (§II-E).
type Certify struct {
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest // h, the certified proposal digest
	Cert   []byte
}

// VCRequest is the view-change request VC-REQUEST(v, E): it announces the
// failure of view View's primary and carries the sender's execution summary
// E — every batch executed after its stable checkpoint, each justified by
// its certificate. VC-REQUESTs are signed (they are forwarded inside
// NV-PROPOSE and must not be forgeable, §II-E).
type VCRequest struct {
	From      types.ReplicaID
	View      types.View // the failed view; the request asks for View+1
	StableSeq types.SeqNum
	Executed  []types.ExecRecord
	Sig       []byte
}

// SignedPayload returns the bytes covered by the view-change signature.
func (m *VCRequest) SignedPayload() []byte {
	parts := [][]byte{
		[]byte("poe-vcrequest"),
		u64(uint64(m.From)), u64(uint64(m.View)), u64(uint64(m.StableSeq)),
	}
	for i := range m.Executed {
		e := &m.Executed[i]
		parts = append(parts, u64(uint64(e.Seq)), u64(uint64(e.View)), e.Digest[:], e.Proof)
	}
	d := types.DigestConcat(parts...)
	return d[:]
}

// NVPropose is the new primary's NV-PROPOSE(v+1, m1, …, mnf) message: the
// set of nf view-change requests from which every replica deterministically
// derives the new view's starting state.
type NVPropose struct {
	NewView  types.View
	Requests []VCRequest
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

func init() {
	wire.Register(func() wire.Message { return &Propose{} })
	wire.Register(func() wire.Message { return &Support{} })
	wire.Register(func() wire.Message { return &Certify{} })
	wire.Register(func() wire.Message { return &VCRequest{} })
	wire.Register(func() wire.Message { return &NVPropose{} })
}
